package patterns

import (
	"fmt"
	"math/rand"
)

// This file generates synthetic stand-ins for the rule sets the paper
// measured with (Section 6.2): "exact-match patterns of length eight
// characters or more from Snort (up to 4,356 patterns) and ClamAV
// (31,827 patterns)". Real rule distributions are reproduced in the
// properties that matter to the matcher — cardinality, length
// distribution, alphabet skew (ASCII-protocol tokens vs. binary malware
// bodies), and shared-prefix structure — while the generators remain
// fully deterministic in their seed.

// Cardinalities of the paper's rule sets.
const (
	SnortFullSize  = 4356
	ClamAVFullSize = 31827
)

// snortTokens are protocol fragments typical of Snort content options;
// generated patterns begin with one, giving the ASCII-heavy, shared-
// prefix shape of real IDS sets.
var snortTokens = []string{
	"GET /", "POST /", "HEAD /", "/cgi-bin/", "/scripts/", "/admin/",
	"User-Agent: ", "Content-Type: ", "Authorization: Basic ", "Cookie: SESS",
	"/etc/passwd", "/bin/sh", "cmd.exe", "powershell", "SELECT ", "UNION SELECT ",
	"<script>", "javascript:", "eval(", "document.cookie", "xp_cmdshell",
	"\xeb\x03\x59\xeb\x05", "\x90\x90\x90\x90", "\xcc\xcc\xcc\xcc",
	"INVITE sip:", "SSH-2.0-", "SMB\x72", "\xffSMB", "RETR ", "STOR ",
	"HTTP/1.1 ", "Host: ", "\r\nReferer: ", "index.php?id=",
}

// SnortLike deterministically generates n unique Snort-style patterns:
// a protocol token followed by random ASCII, length 8..32 bytes.
func SnortLike(n int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	s := &Set{Name: "snortlike"}
	const ascii = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/.-_=&%"
	for len(s.Patterns) < n {
		tok := snortTokens[rng.Intn(len(snortTokens))]
		l := 8 + rng.Intn(25)
		if l < len(tok)+2 {
			l = len(tok) + 2
		}
		buf := make([]byte, 0, l)
		buf = append(buf, tok...)
		for len(buf) < l {
			buf = append(buf, ascii[rng.Intn(len(ascii))])
		}
		p := string(buf)
		if seen[p] {
			continue
		}
		seen[p] = true
		s.Patterns = append(s.Patterns, Pattern{ID: len(s.Patterns), Content: p})
	}
	return s
}

// ClamAVLike deterministically generates n unique ClamAV-style
// patterns: binary byte strings of length 8..12, with 25% of patterns
// sharing a 4-byte "malware family" prefix with others, mimicking
// variant clusters in AV databases. The short lengths keep the
// full-table automaton for the 31,827-pattern set within a few hundred
// megabytes, matching the relative scale of the paper's sets.
func ClamAVLike(n int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	// Family prefixes.
	nFam := n/64 + 1
	families := make([][]byte, nFam)
	for i := range families {
		families[i] = randBytes(rng, 4)
	}
	seen := make(map[string]bool, n)
	s := &Set{Name: "clamavlike"}
	for len(s.Patterns) < n {
		l := 8 + rng.Intn(5)
		var buf []byte
		if rng.Intn(4) == 0 {
			buf = append(append([]byte(nil), families[rng.Intn(nFam)]...), randBytes(rng, l-4)...)
		} else {
			buf = randBytes(rng, l)
		}
		p := string(buf)
		if seen[p] {
			continue
		}
		seen[p] = true
		s.Patterns = append(s.Patterns, Pattern{ID: len(s.Patterns), Content: p})
	}
	return s
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// SnortLikeRules deterministically generates n Snort-style rule lines in
// the textual rule language, for exercising the parser path end to end
// (the controller receives textual rules from middleboxes).
func SnortLikeRules(n int, seed int64) []string {
	set := SnortLike(n, seed)
	rules := make([]string, n)
	for i, p := range set.Patterns {
		content := escapeSnortContent(p.Content)
		rules[i] = fmt.Sprintf(
			`alert tcp any any -> any any (msg:"synthetic rule %d"; content:"%s"; sid:%d;)`,
			i, content, 1000000+i)
	}
	return rules
}

// escapeSnortContent renders raw bytes in content-option syntax, using
// |hex| runs for non-printable bytes and escaping the metacharacters.
func escapeSnortContent(s string) string {
	var out []byte
	inHex := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		printable := c >= 0x20 && c < 0x7f
		if printable && c != '|' && c != '"' && c != ';' && c != '\\' {
			if inHex {
				out = append(out, '|')
				inHex = false
			}
			out = append(out, c)
			continue
		}
		if !inHex {
			out = append(out, '|')
			inHex = true
		} else {
			out = append(out, ' ')
		}
		out = append(out, hexDigit(c>>4), hexDigit(c&0xf))
	}
	if inHex {
		out = append(out, '|')
	}
	return string(out)
}

func hexDigit(v byte) byte {
	if v < 10 {
		return '0' + v
	}
	return 'A' + v - 10
}
