package patterns

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file parses ClamAV-style .ndb signature lines:
//
//	MalwareName:TargetType:Offset:HexSignature
//
// The hex signature may contain the wildcards ClamAV supports — `??`
// (any byte), `*` (any gap) and `{n-m}` (bounded gap) — which split the
// signature into exact fragments. Each fragment of sufficient length
// becomes a DPI pattern; a signature "matches" when all its fragments
// match, which the anti-virus middlebox confirms from the match report.

// ClamAVSignature is one parsed signature.
type ClamAVSignature struct {
	Name      string
	Fragments []string // exact byte fragments, in order
}

// ParseClamAVSignatures reads .ndb-style lines from r. Blank lines and
// #-comments are skipped.
func ParseClamAVSignatures(r io.Reader) ([]ClamAVSignature, error) {
	var sigs []ClamAVSignature
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sig, err := ParseClamAVSignature(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		sigs = append(sigs, sig)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sigs, nil
}

// ParseClamAVSignature parses one signature line.
func ParseClamAVSignature(line string) (ClamAVSignature, error) {
	var sig ClamAVSignature
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 {
		return sig, fmt.Errorf("signature %q does not have 4 colon-separated fields", line)
	}
	sig.Name = parts[0]
	frags, err := decodeClamAVHex(parts[3])
	if err != nil {
		return sig, fmt.Errorf("signature %s: %w", sig.Name, err)
	}
	sig.Fragments = frags
	return sig, nil
}

// decodeClamAVHex decodes a hex signature body into exact fragments,
// splitting at wildcards.
func decodeClamAVHex(h string) ([]string, error) {
	var frags []string
	var cur []byte
	flush := func() {
		if len(cur) > 0 {
			frags = append(frags, string(cur))
			cur = nil
		}
	}
	for i := 0; i < len(h); {
		switch {
		case h[i] == '*':
			flush()
			i++
		case h[i] == '{':
			end := strings.IndexByte(h[i:], '}')
			if end < 0 {
				return nil, fmt.Errorf("unterminated {n-m} gap")
			}
			flush()
			i += end + 1
		case h[i] == '?':
			if i+1 >= len(h) || h[i+1] != '?' {
				return nil, fmt.Errorf("lone ? wildcard")
			}
			flush()
			i += 2
		default:
			if i+1 >= len(h) {
				return nil, fmt.Errorf("odd-length hex body")
			}
			b, err := strconv.ParseUint(h[i:i+2], 16, 8)
			if err != nil {
				return nil, fmt.Errorf("bad hex byte %q", h[i:i+2])
			}
			cur = append(cur, byte(b))
			i += 2
		}
	}
	flush()
	if len(frags) == 0 {
		return nil, fmt.Errorf("signature has no exact fragments")
	}
	return frags, nil
}

// SetFromClamAVSignatures converts signatures into a pattern Set,
// keeping fragments of length >= minLen. Signatures whose every fragment
// is shorter than minLen are dropped (they would flood the matcher with
// incidental matches).
func SetFromClamAVSignatures(name string, sigs []ClamAVSignature, minLen int) *Set {
	s := &Set{Name: name}
	nextID := 0
	for _, sig := range sigs {
		for _, f := range sig.Fragments {
			if len(f) < minLen {
				continue
			}
			s.Patterns = append(s.Patterns, Pattern{ID: nextID, Content: f})
			nextID++
		}
	}
	return s
}
