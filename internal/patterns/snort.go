package patterns

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file parses the subset of the Snort rule language needed to
// extract DPI patterns: the rule header, and the content, pcre, msg and
// sid options. It mirrors what the paper's prototype consumes — "We use
// exact-match patterns ... from Snort" — and what the Snort-plugin
// integration (Section 6.1) feeds back.

// SnortContent is one content option with its positional modifiers.
type SnortContent struct {
	Data string
	// NoCase marks the content as case-insensitive.
	NoCase bool
	// Offset and Depth mirror Snort's modifiers: the content must
	// begin at or after Offset, and with Depth > 0 must end within
	// Offset+Depth bytes of the payload.
	Offset int
	Depth  int
}

// SnortRule is one parsed rule.
type SnortRule struct {
	Action   string // alert, log, pass, drop, ...
	Protocol string
	SID      int
	Msg      string
	Contents []SnortContent // decoded content options (pipes expanded)
	PCREs    []string       // raw pcre bodies, delimiters stripped
}

// ParseSnortRules reads rules from r, one per line; blank lines and
// #-comments are skipped. Malformed lines produce an error naming the
// line number.
func ParseSnortRules(r io.Reader) ([]SnortRule, error) {
	var rules []SnortRule
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := ParseSnortRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		rules = append(rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rules, nil
}

// ParseSnortRule parses a single rule line.
func ParseSnortRule(line string) (SnortRule, error) {
	var rule SnortRule
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ")") {
		return rule, fmt.Errorf("missing option body in %q", line)
	}
	header := strings.Fields(line[:open])
	if len(header) < 2 {
		return rule, fmt.Errorf("short rule header in %q", line)
	}
	rule.Action = header[0]
	rule.Protocol = header[1]

	body := line[open+1 : len(line)-1]
	opts, err := splitOptions(body)
	if err != nil {
		return rule, err
	}
	for _, opt := range opts {
		key, val, hasVal := strings.Cut(opt, ":")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "content":
			if !hasVal {
				return rule, fmt.Errorf("content option without value")
			}
			neg := strings.HasPrefix(val, "!")
			if neg {
				// Negated contents cannot be offered to a shared
				// matcher (absence is not reportable); skip.
				continue
			}
			decoded, err := decodeSnortContent(val)
			if err != nil {
				return rule, err
			}
			rule.Contents = append(rule.Contents, SnortContent{Data: decoded})
		case "nocase":
			if len(rule.Contents) == 0 {
				return rule, fmt.Errorf("nocase modifier before any content")
			}
			rule.Contents[len(rule.Contents)-1].NoCase = true
		case "offset", "depth":
			if !hasVal {
				return rule, fmt.Errorf("%s option without value", key)
			}
			if len(rule.Contents) == 0 {
				return rule, fmt.Errorf("%s modifier before any content", key)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return rule, fmt.Errorf("bad %s value %q", key, val)
			}
			c := &rule.Contents[len(rule.Contents)-1]
			if key == "offset" {
				c.Offset = n
			} else {
				c.Depth = n
			}
		case "pcre":
			if !hasVal {
				return rule, fmt.Errorf("pcre option without value")
			}
			expr, err := stripPCREDelims(val)
			if err != nil {
				return rule, err
			}
			rule.PCREs = append(rule.PCREs, expr)
		case "msg":
			rule.Msg = strings.Trim(val, `"`)
		case "sid":
			sid, err := strconv.Atoi(val)
			if err != nil {
				return rule, fmt.Errorf("bad sid %q", val)
			}
			rule.SID = sid
		}
	}
	return rule, nil
}

// splitOptions splits a rule body on semicolons, honoring quoted strings
// and backslash escapes.
func splitOptions(body string) ([]string, error) {
	var opts []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c == '\\' && i+1 < len(body):
			cur.WriteByte(c)
			i++
			cur.WriteByte(body[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ';' && !inQuote:
			if s := strings.TrimSpace(cur.String()); s != "" {
				opts = append(opts, s)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote in rule body")
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		opts = append(opts, s)
	}
	return opts, nil
}

// decodeSnortContent decodes a quoted content value, expanding |AB CD|
// hex runs and \x escapes of ; " \.
func decodeSnortContent(val string) (string, error) {
	val = strings.TrimSpace(val)
	if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
		return "", fmt.Errorf("content value %q not quoted", val)
	}
	val = val[1 : len(val)-1]
	var out []byte
	for i := 0; i < len(val); i++ {
		switch c := val[i]; c {
		case '\\':
			if i+1 >= len(val) {
				return "", fmt.Errorf("trailing backslash in content")
			}
			i++
			out = append(out, val[i])
		case '|':
			end := strings.IndexByte(val[i+1:], '|')
			if end < 0 {
				return "", fmt.Errorf("unterminated hex run in content")
			}
			hexRun := strings.ReplaceAll(val[i+1:i+1+end], " ", "")
			if len(hexRun)%2 != 0 {
				return "", fmt.Errorf("odd-length hex run %q", hexRun)
			}
			for j := 0; j < len(hexRun); j += 2 {
				b, err := strconv.ParseUint(hexRun[j:j+2], 16, 8)
				if err != nil {
					return "", fmt.Errorf("bad hex run %q: %w", hexRun, err)
				}
				out = append(out, byte(b))
			}
			i += end + 1
		default:
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return "", fmt.Errorf("empty content")
	}
	return string(out), nil
}

// stripPCREDelims removes the quotes, slashes and trailing modifiers of
// a pcre option value: `"/expr/smi"` -> `expr`.
func stripPCREDelims(val string) (string, error) {
	val = strings.Trim(val, `"`)
	start := strings.IndexByte(val, '/')
	end := strings.LastIndexByte(val, '/')
	if start < 0 || end <= start {
		return "", fmt.Errorf("pcre value %q missing delimiters", val)
	}
	return val[start+1 : end], nil
}

// SetFromSnortRules converts parsed rules into a pattern Set: each
// content of length >= minLen becomes an exact pattern carrying the
// rule's SID-derived ID; pcre bodies are retained as Regexes for anchor
// extraction by the regex engine.
func SetFromSnortRules(name string, rules []SnortRule, minLen int) *Set {
	s := &Set{Name: name}
	nextID := 0
	for _, r := range rules {
		for _, c := range r.Contents {
			if len(c.Data) < minLen {
				continue
			}
			s.Patterns = append(s.Patterns, Pattern{
				ID: nextID, Content: c.Data, Offset: c.Offset, Depth: c.Depth,
				NoCase: c.NoCase,
			})
			nextID++
		}
		for _, p := range r.PCREs {
			s.Regexes = append(s.Regexes, Regex{ID: len(s.Regexes), Expr: p})
		}
	}
	return s
}
