package patterns

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSnortRuleBasic(t *testing.T) {
	line := `alert tcp $EXTERNAL_NET any -> $HOME_NET 80 (msg:"WEB-ATTACK /etc/passwd"; flow:to_server,established; content:"/etc/passwd"; nocase; sid:1122; rev:5;)`
	r, err := ParseSnortRule(line)
	if err != nil {
		t.Fatal(err)
	}
	if r.Action != "alert" || r.Protocol != "tcp" {
		t.Errorf("header = %s %s", r.Action, r.Protocol)
	}
	if r.SID != 1122 {
		t.Errorf("sid = %d", r.SID)
	}
	if r.Msg != "WEB-ATTACK /etc/passwd" {
		t.Errorf("msg = %q", r.Msg)
	}
	if len(r.Contents) != 1 || r.Contents[0].Data != "/etc/passwd" {
		t.Errorf("contents = %v", r.Contents)
	}
}

func TestParseSnortRuleHexContent(t *testing.T) {
	line := `alert tcp any any -> any any (content:"AB|00 01 fF|CD"; sid:1;)`
	r, err := ParseSnortRule(line)
	if err != nil {
		t.Fatal(err)
	}
	want := "AB\x00\x01\xffCD"
	if len(r.Contents) != 1 || r.Contents[0].Data != want {
		t.Errorf("contents = %v, want %q", r.Contents, want)
	}
}

func TestParseSnortRuleEscapes(t *testing.T) {
	line := `alert tcp any any -> any any (content:"a\;b\"c\\d"; sid:2;)`
	r, err := ParseSnortRule(line)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Contents) != 1 || r.Contents[0].Data != `a;b"c\d` {
		t.Errorf("contents = %v", r.Contents)
	}
}

func TestParseSnortRulePCREAndMultipleContents(t *testing.T) {
	line := `alert tcp any any -> any 80 (msg:"x"; content:"User-Agent:"; content:"evil-bot"; pcre:"/evil-bot\/(\d+\.\d+)/i"; sid:3;)`
	r, err := ParseSnortRule(line)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Contents) != 2 {
		t.Fatalf("contents = %v", r.Contents)
	}
	if len(r.PCREs) != 1 || r.PCREs[0] != `evil-bot\/(\d+\.\d+)` {
		t.Errorf("pcres = %q", r.PCREs)
	}
}

func TestParseSnortRuleOffsetDepth(t *testing.T) {
	line := `alert tcp any any -> any 80 (content:"POST /api"; offset:0; depth:16; content:"token-marker"; offset:32; sid:9;)`
	r, err := ParseSnortRule(line)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Contents) != 2 {
		t.Fatalf("contents = %v", r.Contents)
	}
	if r.Contents[0].Offset != 0 || r.Contents[0].Depth != 16 {
		t.Errorf("content 0 modifiers = %+v", r.Contents[0])
	}
	if r.Contents[1].Offset != 32 || r.Contents[1].Depth != 0 {
		t.Errorf("content 1 modifiers = %+v", r.Contents[1])
	}
	set := SetFromSnortRules("x", []SnortRule{r}, 4)
	if set.Patterns[0].Depth != 16 || set.Patterns[1].Offset != 32 {
		t.Errorf("set = %+v", set.Patterns)
	}

	for _, bad := range []string{
		`alert tcp any any -> any any (offset:4; content:"abcd"; sid:1;)`,  // modifier first
		`alert tcp any any -> any any (content:"abcd"; depth:x; sid:1;)`,   // non-numeric
		`alert tcp any any -> any any (content:"abcd"; offset:-1; sid:1;)`, // negative
		`alert tcp any any -> any any (content:"abcd"; depth:; sid:1;)`,    // empty
	} {
		if _, err := ParseSnortRule(bad); err == nil {
			t.Errorf("ParseSnortRule(%q) accepted", bad)
		}
	}
}

func TestParseSnortRuleNegatedContentSkipped(t *testing.T) {
	line := `alert tcp any any -> any any (content:!"benign"; content:"bad"; sid:4;)`
	r, err := ParseSnortRule(line)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Contents) != 1 || r.Contents[0].Data != "bad" {
		t.Errorf("contents = %v, want only bad", r.Contents)
	}
}

func TestParseSnortRuleErrors(t *testing.T) {
	for _, line := range []string{
		`alert tcp any any -> any any`,                          // no body
		`alert (content:"x"; sid:1;)`,                           // short header
		`alert tcp any any -> any any (content:"a|0|"; sid:1;)`, // odd hex
		`alert tcp any any -> any any (content:"a|00"; sid:1;)`, // unterminated hex
		`alert tcp any any -> any any (content:x; sid:1;)`,      // unquoted
		`alert tcp any any -> any any (content:""; sid:1;)`,     // empty
		`alert tcp any any -> any any (sid:abc;)`,               // bad sid
		`alert tcp any any -> any any (pcre:"noslash"; sid:1;)`, // bad pcre
		`alert tcp any any -> any any (content:"a"; sid:1; msg:"unterminated)`,
	} {
		if _, err := ParseSnortRule(line); err == nil {
			t.Errorf("ParseSnortRule(%q) succeeded, want error", line)
		}
	}
}

func TestParseSnortRulesStream(t *testing.T) {
	input := `# comment
alert tcp any any -> any any (content:"one-pattern"; sid:1;)

alert udp any any -> any 53 (content:"two-pattern"; sid:2;)
`
	rules, err := ParseSnortRules(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules", len(rules))
	}
	if rules[1].Protocol != "udp" || rules[1].SID != 2 {
		t.Errorf("rule 2 = %+v", rules[1])
	}
}

func TestSetFromSnortRules(t *testing.T) {
	rules := []SnortRule{
		{Contents: []SnortContent{{Data: "longenough1"}, {Data: "shrt"}}, PCREs: []string{`a\d+b`}},
		{Contents: []SnortContent{{Data: "longenough2"}}},
	}
	s := SetFromSnortRules("test", rules, 8)
	if len(s.Patterns) != 2 {
		t.Fatalf("patterns = %+v", s.Patterns)
	}
	if s.Patterns[0].ID != 0 || s.Patterns[1].ID != 1 {
		t.Errorf("IDs not sequential: %+v", s.Patterns)
	}
	if len(s.Regexes) != 1 {
		t.Errorf("regexes = %+v", s.Regexes)
	}
}

func TestParseClamAVSignature(t *testing.T) {
	sig, err := ParseClamAVSignature("Win.Test.A:0:*:deadbeef??cafebabe*0102030405060708")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"\xde\xad\xbe\xef", "\xca\xfe\xba\xbe", "\x01\x02\x03\x04\x05\x06\x07\x08"}
	if !reflect.DeepEqual(sig.Fragments, want) {
		t.Errorf("fragments = %q, want %q", sig.Fragments, want)
	}
	if sig.Name != "Win.Test.A" {
		t.Errorf("name = %q", sig.Name)
	}
}

func TestParseClamAVSignatureGaps(t *testing.T) {
	sig, err := ParseClamAVSignature("X:0:0:aabb{4-8}ccdd")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"\xaa\xbb", "\xcc\xdd"}
	if !reflect.DeepEqual(sig.Fragments, want) {
		t.Errorf("fragments = %q, want %q", sig.Fragments, want)
	}
}

func TestParseClamAVSignatureErrors(t *testing.T) {
	for _, line := range []string{
		"onlyname",
		"X:0:0:xyz",    // bad hex
		"X:0:0:a",      // odd length
		"X:0:0:aa?b",   // lone ?
		"X:0:0:aa{4-8", // unterminated gap
		"X:0:0:**",     // no exact fragments
	} {
		if _, err := ParseClamAVSignature(line); err == nil {
			t.Errorf("ParseClamAVSignature(%q) succeeded, want error", line)
		}
	}
}

func TestParseClamAVSignaturesStream(t *testing.T) {
	input := "# db\nA:0:*:aabbccddeeff0011\nB:0:*:1122334455667788\n"
	sigs, err := ParseClamAVSignatures(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 2 || sigs[0].Name != "A" || sigs[1].Name != "B" {
		t.Fatalf("sigs = %+v", sigs)
	}
	set := SetFromClamAVSignatures("cav", sigs, 8)
	if len(set.Patterns) != 2 {
		t.Errorf("patterns = %+v", set.Patterns)
	}
}

func TestGeneratorsDeterministicAndUnique(t *testing.T) {
	a := SnortLike(500, 1)
	b := SnortLike(500, 1)
	if !reflect.DeepEqual(a, b) {
		t.Error("SnortLike not deterministic in seed")
	}
	c := SnortLike(500, 2)
	if reflect.DeepEqual(a, c) {
		t.Error("SnortLike ignores seed")
	}
	seen := map[string]bool{}
	for _, p := range a.Patterns {
		if len(p.Content) < 8 {
			t.Fatalf("pattern %q shorter than 8", p.Content)
		}
		if seen[p.Content] {
			t.Fatalf("duplicate pattern %q", p.Content)
		}
		seen[p.Content] = true
	}

	x := ClamAVLike(500, 1)
	y := ClamAVLike(500, 1)
	if !reflect.DeepEqual(x, y) {
		t.Error("ClamAVLike not deterministic in seed")
	}
	for _, p := range x.Patterns {
		if len(p.Content) < 8 || len(p.Content) > 12 {
			t.Fatalf("clamav pattern length %d out of range", len(p.Content))
		}
	}
}

func TestSnortLikeRulesRoundTrip(t *testing.T) {
	// Generated textual rules must parse back to exactly the generated
	// pattern contents, covering the escape path with binary tokens.
	rules := SnortLikeRules(300, 7)
	parsed, err := ParseSnortRules(strings.NewReader(strings.Join(rules, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	want := SnortLike(300, 7)
	if len(parsed) != len(want.Patterns) {
		t.Fatalf("parsed %d rules, want %d", len(parsed), len(want.Patterns))
	}
	for i, r := range parsed {
		if len(r.Contents) != 1 || r.Contents[0].Data != want.Patterns[i].Content {
			t.Fatalf("rule %d content %v, want %q", i, r.Contents, want.Patterns[i].Content)
		}
	}
}

func TestEscapeSnortContentProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		esc := escapeSnortContent(string(raw))
		dec, err := decodeSnortContent(`"` + esc + `"`)
		return err == nil && dec == string(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSplit(t *testing.T) {
	s := SnortLike(1001, 3)
	parts, err := Split(s, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	if parts[0].Name != "snortlike1" || parts[1].Name != "snortlike2" {
		t.Errorf("names = %q, %q", parts[0].Name, parts[1].Name)
	}
	if got := len(parts[0].Patterns) + len(parts[1].Patterns); got != 1001 {
		t.Errorf("total after split = %d", got)
	}
	if d := len(parts[0].Patterns) - len(parts[1].Patterns); d < -1 || d > 1 {
		t.Errorf("unbalanced split: %d vs %d", len(parts[0].Patterns), len(parts[1].Patterns))
	}
	// Partition: no content lost or duplicated.
	all := map[string]int{}
	for _, p := range s.Patterns {
		all[p.Content]++
	}
	for _, part := range parts {
		for i, p := range part.Patterns {
			if p.ID != i {
				t.Fatalf("IDs not renumbered: %+v", p)
			}
			all[p.Content]--
		}
	}
	for c, n := range all {
		if n != 0 {
			t.Errorf("pattern %q count off by %d after split", c, n)
		}
	}
	// Determinism.
	parts2, _ := Split(s, 2, 42)
	if !reflect.DeepEqual(parts, parts2) {
		t.Error("Split not deterministic")
	}
	if _, err := Split(s, 0, 1); err != ErrBadSplit {
		t.Errorf("Split k=0 err = %v", err)
	}
}

func TestCompressedSize(t *testing.T) {
	s := SnortLike(2000, 9)
	raw := s.RawSize()
	comp, err := s.CompressedSize()
	if err != nil {
		t.Fatal(err)
	}
	if comp <= 0 || comp >= raw {
		t.Errorf("compressed %d vs raw %d: expected 0 < comp < raw", comp, raw)
	}
}

func TestStringsOrder(t *testing.T) {
	s := &Set{Patterns: []Pattern{{ID: 2, Content: "c"}, {ID: 0, Content: "a"}, {ID: 1, Content: "b"}}}
	got := s.Strings()
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Strings() = %q", got)
	}
}

func TestFromStrings(t *testing.T) {
	s := FromStrings("x", []string{"p0", "p1"})
	if s.Name != "x" || len(s.Patterns) != 2 || s.Patterns[1].ID != 1 || s.Patterns[1].Content != "p1" {
		t.Errorf("FromStrings = %+v", s)
	}
}
