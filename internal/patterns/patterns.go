// Package patterns manages the DPI pattern sets that middleboxes
// register with the controller (Section 4.1): parsers for a subset of
// the Snort rule language and the ClamAV signature format, seeded
// synthetic generators that stand in for the proprietary rule sets the
// paper measured with, set splitting for the Snort1/Snort2 experiments,
// and the compressed-size accounting used to argue that shipping pattern
// sets (rather than DFAs) over the network is cheap.
package patterns

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Pattern is one exact-match pattern of a set. Content is the raw byte
// string to be matched (it may contain arbitrary binary). ID is the
// pattern's identifier within its middlebox's rule set — the ID the DPI
// service echoes back in match reports.
type Pattern struct {
	ID      int
	Content string
	// NoCase marks a case-insensitive pattern (Snort's nocase
	// modifier); the engine matches it against a case-folded view of
	// the payload.
	NoCase bool
	// Offset and Depth carry Snort-style positional modifiers: the
	// pattern must begin at or after byte Offset of the payload, and
	// when Depth > 0 it must end within Offset+Depth. Zero values mean
	// unconstrained.
	Offset int
	Depth  int
	// FromRegex marks anchors extracted from a regular expression; the
	// middlebox must confirm the full expression before acting
	// (Section 5.3).
	FromRegex bool
	// RegexID identifies the originating regular expression when
	// FromRegex is set.
	RegexID int
}

// Set is a named collection of patterns, optionally with regular
// expressions whose anchors were folded into Patterns.
type Set struct {
	Name     string
	Patterns []Pattern
	Regexes  []Regex
}

// Regex is a regular-expression rule retained for post-filter
// confirmation.
type Regex struct {
	ID   int
	Expr string
	// AnchorIDs are the pattern IDs of the anchors extracted from this
	// expression. All must match before the expression is evaluated.
	AnchorIDs []int
}

// Strings returns the pattern contents in ID order.
func (s *Set) Strings() []string {
	ps := append([]Pattern(nil), s.Patterns...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Content
	}
	return out
}

// FromStrings builds a Set with sequential IDs.
func FromStrings(name string, pats []string) *Set {
	s := &Set{Name: name}
	for i, p := range pats {
		s.Patterns = append(s.Patterns, Pattern{ID: i, Content: p})
	}
	return s
}

// ErrBadSplit is returned by Split for invalid k.
var ErrBadSplit = errors.New("patterns: split count must be >= 1")

// Split randomly partitions the set into k disjoint subsets of
// near-equal size, as the paper does to produce Snort1 and Snort2 from
// the full Snort set (Section 6.4). Pattern IDs are renumbered
// sequentially within each subset. The split is deterministic in seed.
func Split(s *Set, k int, seed int64) ([]*Set, error) {
	if k < 1 {
		return nil, ErrBadSplit
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(s.Patterns))
	out := make([]*Set, k)
	for i := range out {
		out[i] = &Set{Name: fmt.Sprintf("%s%d", s.Name, i+1)}
	}
	for i, pi := range perm {
		sub := out[i%k]
		p := s.Patterns[pi]
		p.ID = len(sub.Patterns)
		sub.Patterns = append(sub.Patterns, p)
	}
	return out, nil
}

// RawSize returns the total size in bytes of the pattern contents — the
// quantity a middlebox ships to the controller at registration.
func (s *Set) RawSize() int {
	n := 0
	for _, p := range s.Patterns {
		n += len(p.Content) + 1
	}
	for _, r := range s.Regexes {
		n += len(r.Expr) + 1
	}
	return n
}

// CompressedSize returns the DEFLATE-compressed size of the set's
// contents, supporting the paper's observation that even large sets
// compress to no more than a couple of megabytes in transit
// (Section 4.1).
func (s *Set) CompressedSize() (int, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return 0, err
	}
	for _, p := range s.Patterns {
		if _, err := w.Write(append([]byte(p.Content), 0)); err != nil {
			return 0, err
		}
	}
	for _, r := range s.Regexes {
		if _, err := w.Write(append([]byte(r.Expr), 0)); err != nil {
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}
