package patterns

import (
	"strings"
	"testing"
)

// FuzzParseSnortRule drives the rule parser with arbitrary lines. The
// parser fronts operator-supplied rule files (paper Section 6.1), so it
// must reject garbage with an error — never panic — and anything it
// accepts must satisfy the invariants the MPM compiler relies on.
func FuzzParseSnortRule(f *testing.F) {
	seeds := []string{
		`alert tcp any any -> any 80 (msg:"plain"; content:"attack"; sid:1;)`,
		`alert tcp any any -> any any (msg:"hex"; content:"|41 42 43|"; sid:2;)`,
		`alert tcp any any -> any any (msg:"mixed"; content:"GET|20|/ad"; nocase; sid:3;)`,
		`alert tcp any any -> any any (msg:"mods"; content:"evil"; offset:4; depth:16; sid:4;)`,
		`alert tcp any any -> any any (msg:"pcre"; pcre:"/^GET\s+\/admin/i"; sid:5;)`,
		`drop udp 10.0.0.0/8 any -> any 53 (msg:"two"; content:"one"; content:"two"; sid:6;)`,
		`alert tcp any any -> any any (content:"no msg"; sid:7;)`,
		`# comment`,
		``,
		`alert tcp any any -> any any`,
		`alert tcp any any -> any any (content:"|zz|"; sid:8;)`,
		`alert tcp any any -> any any (content:""; sid:9;)`,
		`)(`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		rule, err := ParseSnortRule(line)
		if err != nil {
			return
		}
		for _, c := range rule.Contents {
			if c.Data == "" {
				t.Fatalf("accepted empty content in %q", line)
			}
			if c.Offset < 0 || c.Depth < 0 {
				t.Fatalf("negative modifier (offset=%d depth=%d) in %q", c.Offset, c.Depth, line)
			}
		}
		for _, p := range rule.PCREs {
			if p == "" {
				t.Fatalf("accepted empty pcre body in %q", line)
			}
		}
		// Round-trip through the file reader: a line the rule parser
		// accepts must also parse as a one-rule file.
		if !strings.ContainsAny(line, "\n\r") {
			if _, err := ParseSnortRules(strings.NewReader(line)); err != nil {
				t.Fatalf("ParseSnortRule accepted %q but ParseSnortRules rejected it: %v", line, err)
			}
		}
	})
}
