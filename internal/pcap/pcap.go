// Package pcap reads and writes classic libpcap capture files
// (Ethernet link type), so the synthetic traces standing in for the
// paper's campus and web captures (Section 6.2) can be exported,
// re-read, and exchanged with standard tools. Only the stable classic
// format (magic 0xa1b2c3d4, microsecond timestamps) is implemented;
// both byte orders are accepted on read.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

const (
	magicNative  = 0xa1b2c3d4
	magicSwapped = 0xd4c3b2a1
	versionMajor = 2
	versionMinor = 4
	linkEthernet = 1

	fileHeaderLen   = 24
	packetHeaderLen = 16
)

// Errors returned by the codec.
var (
	ErrBadMagic  = errors.New("pcap: bad magic number")
	ErrBadLink   = errors.New("pcap: not an Ethernet capture")
	ErrTruncated = errors.New("pcap: truncated file")
)

// DefaultSnapLen is the snapshot length written by NewWriter when the
// caller passes 0.
const DefaultSnapLen = 65535

// Writer emits a capture file.
type Writer struct {
	w       io.Writer
	snapLen uint32
}

// NewWriter writes the file header and returns a Writer.
func NewWriter(w io.Writer, snapLen uint32) (*Writer, error) {
	if snapLen == 0 {
		snapLen = DefaultSnapLen
	}
	var hdr [fileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicNative)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone (4B) and sigfigs (4B) stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w, snapLen: snapLen}, nil
}

// WritePacket appends one frame with the given capture timestamp. A
// frame longer than the snapshot length is truncated on disk with its
// original length recorded, exactly as capture tools do.
func (w *Writer) WritePacket(ts time.Time, frame []byte) error {
	incl := len(frame)
	if uint32(incl) > w.snapLen {
		incl = int(w.snapLen)
	}
	var hdr [packetHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(incl))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(frame)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(frame[:incl])
	return err
}

// Reader consumes a capture file.
type Reader struct {
	r       io.Reader
	order   binary.ByteOrder
	snapLen uint32
}

// NewReader validates the file header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[0:4]) {
	case magicNative:
		order = binary.LittleEndian
	case magicSwapped:
		order = binary.BigEndian
	default:
		return nil, ErrBadMagic
	}
	if order.Uint32(hdr[20:24]) != linkEthernet {
		return nil, ErrBadLink
	}
	return &Reader{r: r, order: order, snapLen: order.Uint32(hdr[16:20])}, nil
}

// SnapLen reports the capture's snapshot length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// Next returns the next frame and its timestamp; io.EOF signals a clean
// end of file. The frame is appended to buf (which may be nil) so
// callers can reuse storage.
func (r *Reader) Next(buf []byte) (frame []byte, ts time.Time, err error) {
	var hdr [packetHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, time.Time{}, io.EOF
		}
		return nil, time.Time{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	sec := r.order.Uint32(hdr[0:4])
	usec := r.order.Uint32(hdr[4:8])
	incl := r.order.Uint32(hdr[8:12])
	if incl > r.snapLen && r.snapLen > 0 {
		return nil, time.Time{}, fmt.Errorf("pcap: packet length %d exceeds snaplen %d", incl, r.snapLen)
	}
	frame = append(buf[:0], make([]byte, incl)...)
	if _, err := io.ReadFull(r.r, frame); err != nil {
		return nil, time.Time{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return frame, time.Unix(int64(sec), int64(usec)*1000), nil
}
