package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"dpiservice/internal/packet"
	"dpiservice/internal/traffic"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}, SrcPort: 5, DstPort: 80, Protocol: packet.IPProtoTCP}
	base := time.Unix(1700000000, 123456000)
	var frames [][]byte
	for i := 0; i < 10; i++ {
		f := fb.Build(tuple, []byte("payload number "+string(rune('0'+i))))
		frames = append(frames, f)
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Millisecond), f); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.SnapLen() != DefaultSnapLen {
		t.Errorf("SnapLen = %d", r.SnapLen())
	}
	var scratch []byte
	for i := 0; ; i++ {
		frame, ts, err := r.Next(scratch)
		if err == io.EOF {
			if i != 10 {
				t.Fatalf("read %d frames, want 10", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		scratch = frame
		if !bytes.Equal(frame, frames[i]) {
			t.Fatalf("frame %d corrupted", i)
		}
		want := base.Add(time.Duration(i) * time.Millisecond)
		if !ts.Equal(want) {
			t.Errorf("frame %d ts = %v, want %v", i, ts, want)
		}
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xAB}, 500)
	if err := w.WritePacket(time.Unix(0, 0), big); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frame, _, err := r.Next(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != 64 {
		t.Errorf("truncated frame len = %d, want 64", len(frame))
	}
}

func TestSwappedByteOrder(t *testing.T) {
	// Hand-build a big-endian capture with one 4-byte frame.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], 0xa1b2c3d4)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], 1)
	buf.Write(hdr)
	ph := make([]byte, 16)
	binary.BigEndian.PutUint32(ph[0:4], 42)
	binary.BigEndian.PutUint32(ph[4:8], 7)
	binary.BigEndian.PutUint32(ph[8:12], 4)
	binary.BigEndian.PutUint32(ph[12:16], 4)
	buf.Write(ph)
	buf.Write([]byte{1, 2, 3, 4})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frame, ts, err := r.Next(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, []byte{1, 2, 3, 4}) {
		t.Errorf("frame = %v", frame)
	}
	if ts.Unix() != 42 || ts.Nanosecond() != 7000 {
		t.Errorf("ts = %v", ts)
	}
}

func TestReaderErrors(t *testing.T) {
	// Bad magic.
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("zero header err = %v", err)
	}
	// Short header.
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header err = %v", err)
	}
	// Non-Ethernet link type.
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], 0xa1b2c3d4)
	binary.LittleEndian.PutUint32(hdr[20:24], 101 /* raw IP */)
	if _, err := NewReader(bytes.NewReader(hdr)); !errors.Is(err, ErrBadLink) {
		t.Errorf("link err = %v", err)
	}
	// Truncated packet body.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(time.Unix(0, 0), []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 25; cut < len(full); cut += 5 {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Next(nil); err == nil || err == io.EOF {
			t.Errorf("cut at %d: err = %v, want truncation", cut, err)
		}
	}
}
