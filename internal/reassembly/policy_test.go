package reassembly

import (
	"bytes"
	"testing"

	"dpiservice/internal/obs"
	"dpiservice/internal/packet"
)

func TestPolicyNewWins(t *testing.T) {
	// The three conflict geometries distinguish all four policies
	// pairwise: "before" separates First from BSD, "after" separates
	// Last from Linux, "equal" separates BSD from Linux.
	cases := []struct {
		name          string
		newStart, old uint32
		first, last   bool
		bsd, linux    bool
	}{
		{"new-before-old", 100, 104, false, true, true, true},
		{"equal-start", 104, 104, false, true, false, true},
		{"new-after-old", 104, 100, false, true, false, false},
	}
	for _, c := range cases {
		got := map[Policy]bool{
			PolicyFirst: PolicyFirst.newWins(c.newStart, c.old),
			PolicyLast:  PolicyLast.newWins(c.newStart, c.old),
			PolicyBSD:   PolicyBSD.newWins(c.newStart, c.old),
			PolicyLinux: PolicyLinux.newWins(c.newStart, c.old),
		}
		want := map[Policy]bool{
			PolicyFirst: c.first, PolicyLast: c.last,
			PolicyBSD: c.bsd, PolicyLinux: c.linux,
		}
		for _, p := range Policies() {
			if got[p] != want[p] {
				t.Errorf("%s: %v.newWins(%d, %d) = %v, want %v",
					c.name, p, c.newStart, c.old, got[p], want[p])
			}
		}
	}
}

type tseg struct {
	seq  uint32
	data string
}

// policyOutcome drives segments through an assembler anchored so the
// overlap region stays pending (SYN at isn means payload starts at
// isn+1), then returns the delivered stream.
func policyOutcome(t *testing.T, p Policy, isn uint32, segs []tseg) (string, *Assembler) {
	t.Helper()
	var out bytes.Buffer
	a := NewAssembler(Config{Policy: p}, func(_ packet.FiveTuple, _ int64, data []byte, _ int64) {
		out.Write(data)
	})
	a.SYN(tpl, isn)
	for _, s := range segs {
		if err := a.Segment(tpl, s.seq, []byte(s.data), false); err != nil {
			t.Fatal(err)
		}
	}
	a.Flush(tpl)
	return out.String(), a
}

// TestOverlapPolicies drives conflicting pending overlaps through every
// policy. The stream is anchored at 100 with a leading gap, so both
// copies of the contested range are pending when they meet; the gap
// fill then drains the resolved bytes.
func TestOverlapPolicies(t *testing.T) {
	cases := []struct {
		name string
		segs []tseg
		want map[Policy]string
	}{
		{
			name: "equal-start",
			segs: []tseg{{104, "AAAA"}, {104, "BBBB"}, {100, "gap-"}},
			want: map[Policy]string{
				PolicyFirst: "gap-AAAA", PolicyLast: "gap-BBBB",
				PolicyBSD: "gap-AAAA", PolicyLinux: "gap-BBBB",
			},
		},
		{
			name: "new-before-old",
			segs: []tseg{{106, "CCCC"}, {104, "XXXXXX"}, {100, "gap-"}},
			want: map[Policy]string{
				PolicyFirst: "gap-XXCCCC", PolicyLast: "gap-XXXXXX",
				PolicyBSD: "gap-XXXXXX", PolicyLinux: "gap-XXXXXX",
			},
		},
		{
			name: "new-after-old",
			segs: []tseg{{104, "AAAAAA"}, {106, "ZZZZ"}, {100, "gap-"}},
			want: map[Policy]string{
				PolicyFirst: "gap-AAAAAA", PolicyLast: "gap-AAZZZZ",
				PolicyBSD: "gap-AAAAAA", PolicyLinux: "gap-AAAAAA",
			},
		},
	}
	for _, c := range cases {
		for _, p := range Policies() {
			got, a := policyOutcome(t, p, 99, c.segs)
			if got != c.want[p] {
				t.Errorf("%s/%v: stream = %q, want %q", c.name, p, got, c.want[p])
			}
			if a.OverlapConflicts == 0 {
				t.Errorf("%s/%v: conflict not counted", c.name, p)
			}
		}
	}
}

// TestDeliveredImmutable: a conflicting retransmission of an
// already-delivered range is trimmed under EVERY policy — a synchronous
// scan cannot be rescinded, so policies only ever act on pending bytes.
// This is what confines policy disagreement to ambiguous regions.
func TestDeliveredImmutable(t *testing.T) {
	for _, p := range Policies() {
		var out bytes.Buffer
		a := NewAssembler(Config{Policy: p}, func(_ packet.FiveTuple, _ int64, data []byte, _ int64) {
			out.Write(data)
		})
		if err := a.Segment(tpl, 100, []byte("ABCD"), false); err != nil {
			t.Fatal(err)
		}
		if err := a.Segment(tpl, 100, []byte("WXYZ"), false); err != nil {
			t.Fatal(err)
		}
		if got := out.String(); got != "ABCD" {
			t.Errorf("%v: delivered bytes mutated: %q", p, got)
		}
		if a.OverlapConflicts != 0 {
			t.Errorf("%v: trim of delivered range counted as conflict", p)
		}
		if a.Overlapped != 4 {
			t.Errorf("%v: Overlapped = %d, want 4", p, a.Overlapped)
		}
	}
}

// TestLRAEviction: when the stream table fills, the victim is the
// stream that went longest without delivering a byte — a gap-flooding
// no-progress flow — never one that is actively advancing.
func TestLRAEviction(t *testing.T) {
	a := NewAssembler(Config{MaxStreams: 2}, nil)
	active := tpl
	stuck := tpl
	stuck.SrcPort = 2000
	third := tpl
	third.SrcPort = 3000

	// active delivers (forward progress refreshes its position).
	if err := a.Segment(active, 0, []byte("go"), false); err != nil {
		t.Fatal(err)
	}
	// stuck only buffers behind a gap: no progress, stays evictable.
	a.SYN(stuck, 0)
	if err := a.Segment(stuck, 500, []byte("held"), false); err != nil {
		t.Fatal(err)
	}
	if err := a.Segment(active, 2, []byte("es"), false); err != nil {
		t.Fatal(err)
	}
	// Table is full; the newcomer must evict stuck, not active.
	if err := a.Segment(third, 0, []byte("new"), false); err != nil {
		t.Fatal(err)
	}
	if a.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", a.Evictions)
	}
	if a.ShedBytes != 4 {
		t.Errorf("ShedBytes = %d, want stuck's 4 buffered bytes", a.ShedBytes)
	}
	// active survived: its next in-order byte continues the old stream.
	before := a.Delivered
	if err := a.Segment(active, 4, []byte("!"), false); err != nil {
		t.Fatal(err)
	}
	if a.Delivered != before+1 {
		t.Errorf("active stream lost its state after eviction pass")
	}
	if a.ActiveStreams() != 2 {
		t.Errorf("ActiveStreams = %d, want 2", a.ActiveStreams())
	}
}

// TestGlobalBufferShed: the cross-stream bound discards the backlog of
// the least-recently-advanced stream without delivering it.
func TestGlobalBufferShed(t *testing.T) {
	var delivered int
	a := NewAssembler(Config{MaxBufferedTotal: 64}, func(_ packet.FiveTuple, _ int64, data []byte, _ int64) {
		delivered += len(data)
	})
	flood := tpl
	flood.SrcPort = 2000
	// The flood stream buffers 60 bytes behind a gap it never fills.
	a.SYN(flood, 0)
	if err := a.Segment(flood, 1000, bytes.Repeat([]byte{'F'}, 60), false); err != nil {
		t.Fatal(err)
	}
	// A second stream's buffered bytes push the total over 64.
	a.SYN(tpl, 0)
	if err := a.Segment(tpl, 1000, bytes.Repeat([]byte{'G'}, 30), false); err != nil {
		t.Fatal(err)
	}
	if a.Buffered > 64 {
		t.Errorf("Buffered = %d, exceeds global bound", a.Buffered)
	}
	if a.ShedBytes == 0 {
		t.Error("no bytes shed")
	}
	if delivered != 0 {
		t.Errorf("shed bytes were delivered (%d)", delivered)
	}
}

func TestSeqJumpClamp(t *testing.T) {
	c := &collector{t: t}
	a := NewAssembler(Config{MaxSeqJump: 1000}, c.deliver)
	if err := a.Segment(tpl, 0, []byte("ok"), false); err != nil {
		t.Fatal(err)
	}
	if err := a.Segment(tpl, 50000, []byte("far"), false); err != ErrSeqJump {
		t.Fatalf("jump ahead: err = %v, want ErrSeqJump", err)
	}
	if err := a.Segment(tpl, 0xFFFF0000, []byte("behind"), false); err != ErrSeqJump {
		t.Fatalf("jump behind: err = %v, want ErrSeqJump", err)
	}
	if a.DropsSeqJump != 2 {
		t.Errorf("DropsSeqJump = %d, want 2", a.DropsSeqJump)
	}
	// The rejected segments left no trace in the stream.
	if err := a.Segment(tpl, 2, []byte("!"), false); err != nil {
		t.Fatal(err)
	}
	if got := c.buf.String(); got != "ok!" {
		t.Errorf("stream = %q", got)
	}
	// Negative disables the clamp.
	a2 := NewAssembler(Config{MaxSeqJump: -1}, nil)
	if err := a2.Segment(tpl, 0, []byte("x"), false); err != nil {
		t.Fatal(err)
	}
	if err := a2.Segment(tpl, 0x40000000, []byte("y"), false); err != nil {
		t.Fatalf("clamp disabled but rejected: %v", err)
	}
}

func TestNormalizationMeta(t *testing.T) {
	c := &collector{t: t}
	a := NewAssembler(Config{}, c.deliver)
	// Bad checksum: rejected before any state exists.
	err := a.SegmentWithMeta(tpl, 0, []byte("evil"), false, SegmentMeta{BadChecksum: true})
	if err != ErrChecksum {
		t.Fatalf("bad checksum: err = %v, want ErrChecksum", err)
	}
	if a.TrackedStreams() != 0 {
		t.Error("rejected segment created stream state")
	}
	// Suspicious: counted but ingested by default.
	if err := a.SegmentWithMeta(tpl, 0, []byte("odd"), false, SegmentMeta{Suspicious: true}); err != nil {
		t.Fatalf("suspicious (count-only): %v", err)
	}
	if a.SuspiciousSeen != 1 || a.DropsSuspicious != 0 {
		t.Errorf("suspicious counters: seen=%d drops=%d", a.SuspiciousSeen, a.DropsSuspicious)
	}
	if c.buf.String() != "odd" {
		t.Errorf("stream = %q", c.buf.String())
	}
	// DropSuspicious: rejected.
	strict := NewAssembler(Config{DropSuspicious: true}, nil)
	if err := strict.SegmentWithMeta(tpl, 0, []byte("odd"), false, SegmentMeta{Suspicious: true}); err != ErrSuspicious {
		t.Fatalf("strict suspicious: err = %v, want ErrSuspicious", err)
	}
	if strict.DropsSuspicious != 1 {
		t.Errorf("DropsSuspicious = %d, want 1", strict.DropsSuspicious)
	}
}

// Wraparound suite: every ingest path exercised with streams anchored
// just below 2^32 so sequence arithmetic crosses zero.

func TestWraparoundTrim(t *testing.T) {
	c := &collector{t: t}
	a := NewAssembler(Config{}, c.deliver)
	start := uint32(0xFFFFFFFC)
	if err := a.Segment(tpl, start, []byte("abcdefgh"), false); err != nil {
		t.Fatal(err)
	}
	// Full retransmission spanning the wrap: trimmed entirely.
	if err := a.Segment(tpl, start, []byte("abcdXXXX"), false); err != nil {
		t.Fatal(err)
	}
	// Partial overlap whose delivered prefix crosses the wrap boundary.
	if err := a.Segment(tpl, 0, []byte("efghIJKL"), false); err != nil {
		t.Fatal(err)
	}
	if got := c.buf.String(); got != "abcdefghIJKL" {
		t.Errorf("stream = %q", got)
	}
	if a.Overlapped != 12 {
		t.Errorf("Overlapped = %d, want 12", a.Overlapped)
	}
}

func TestWraparoundSkipGap(t *testing.T) {
	c := &collector{t: t}
	a := NewAssembler(Config{MaxBufferedPerStream: 16}, c.deliver)
	a.SYN(tpl, 0xFFFFFFEF) // payload starts at 0xFFFFFFF0
	// 32 buffered bytes behind a 24-byte gap that crosses the wrap.
	big := bytes.Repeat([]byte{'Z'}, 32)
	if err := a.Segment(tpl, 8, big, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.buf.Bytes(), big) {
		t.Error("block not delivered after forced skip across wrap")
	}
	if c.skips != 24 {
		t.Errorf("skipped = %d, want the 24-byte wrap-crossing gap", c.skips)
	}
	if a.GapsSkipped != 24 {
		t.Errorf("GapsSkipped = %d, want 24", a.GapsSkipped)
	}
}

func TestWraparoundPendingDrain(t *testing.T) {
	c := &collector{t: t}
	a := NewAssembler(Config{}, c.deliver)
	a.SYN(tpl, 0xFFFFFFFB) // payload starts at 0xFFFFFFFC
	// Pending segment at the other side of the wrap.
	if err := a.Segment(tpl, 0, []byte("world"), false); err != nil {
		t.Fatal(err)
	}
	if c.buf.Len() != 0 {
		t.Fatalf("premature delivery: %q", c.buf.String())
	}
	// The head makes it contiguous across the boundary.
	if err := a.Segment(tpl, 0xFFFFFFFC, []byte("hell"), false); err != nil {
		t.Fatal(err)
	}
	if got := c.buf.String(); got != "hellworld" {
		t.Errorf("stream = %q", got)
	}
}

// TestWraparoundPendingCarve: a conflicting overlap whose contested
// range itself crosses the wrap boundary resolves per policy.
func TestWraparoundPendingCarve(t *testing.T) {
	want := map[Policy]string{
		// Old copy at 0xFFFFFFFC ("AAAAAAAA", crossing zero), new copy
		// at 0xFFFFFFFE ("bbbb") starts after it: only PolicyLast takes
		// the new bytes.
		PolicyFirst: "gapgapgpAAAAAAAA",
		PolicyLast:  "gapgapgpAAbbbbAA",
		PolicyBSD:   "gapgapgpAAAAAAAA",
		PolicyLinux: "gapgapgpAAAAAAAA",
	}
	for _, p := range Policies() {
		got, a := policyOutcome(t, p, 0xFFFFFFF3, []tseg{
			{0xFFFFFFFC, "AAAAAAAA"},
			{0xFFFFFFFE, "bbbb"},
			{0xFFFFFFF4, "gapgapgp"},
		})
		if got != want[p] {
			t.Errorf("%v: stream = %q, want %q", p, got, want[p])
		}
		if a.OverlapConflicts == 0 {
			t.Errorf("%v: wrap-crossing conflict not counted", p)
		}
	}
}

// TestMetricsExported: the obs registry the assembler is built with
// sees its counters, so evasion shows up at /metrics.
func TestMetricsExported(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAssembler(Config{Metrics: reg}, nil)
	_ = a.SegmentWithMeta(tpl, 0, []byte("x"), false, SegmentMeta{BadChecksum: true})
	if err := a.Segment(tpl, 0, []byte("hello"), false); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if v, ok := snap.Counter("reassembly.drop_bad_checksum"); !ok || v != 1 {
		t.Errorf("drop_bad_checksum = %d (ok=%v), want 1", v, ok)
	}
	if v, ok := snap.Counter("reassembly.delivered_bytes"); !ok || v != 5 {
		t.Errorf("delivered_bytes = %d (ok=%v), want 5", v, ok)
	}
}
