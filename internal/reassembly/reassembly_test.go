package reassembly

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dpiservice/internal/packet"
)

var tpl = packet.FiveTuple{
	Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2},
	SrcPort: 1000, DstPort: 80, Protocol: packet.IPProtoTCP,
}

// collector gathers delivered stream bytes and checks offsets are
// consistent.
type collector struct {
	t       *testing.T
	buf     bytes.Buffer
	nextOff int64
	skips   int64
}

func (c *collector) deliver(_ packet.FiveTuple, offset int64, data []byte, skipped int64) {
	c.skips += skipped
	if offset != c.nextOff+skipped {
		c.t.Fatalf("delivery offset %d, want %d (+%d skipped)", offset, c.nextOff, skipped)
	}
	c.nextOff = offset + int64(len(data))
	c.buf.Write(data)
}

func TestInOrderDelivery(t *testing.T) {
	c := &collector{t: t}
	a := NewAssembler(Config{}, c.deliver)
	seq := uint32(1000)
	for _, chunk := range []string{"hello ", "stream ", "world"} {
		if err := a.Segment(tpl, seq, []byte(chunk), false); err != nil {
			t.Fatal(err)
		}
		seq += uint32(len(chunk))
	}
	if got := c.buf.String(); got != "hello stream world" {
		t.Errorf("stream = %q", got)
	}
	if a.Delivered != 18 || a.Buffered != 0 {
		t.Errorf("counters: %+v", a)
	}
}

func TestOutOfOrderReordered(t *testing.T) {
	c := &collector{t: t}
	a := NewAssembler(Config{}, c.deliver)
	// Segments arrive 3, 1, 2.
	if err := a.Segment(tpl, 1000, []byte("AAAA"), false); err != nil {
		t.Fatal(err)
	}
	if err := a.Segment(tpl, 1008, []byte("CCCC"), false); err != nil {
		t.Fatal(err)
	}
	if c.buf.String() != "AAAA" {
		t.Fatalf("premature delivery: %q", c.buf.String())
	}
	if err := a.Segment(tpl, 1004, []byte("BBBB"), false); err != nil {
		t.Fatal(err)
	}
	if got := c.buf.String(); got != "AAAABBBBCCCC" {
		t.Errorf("stream = %q", got)
	}
}

func TestRetransmissionDiscarded(t *testing.T) {
	c := &collector{t: t}
	a := NewAssembler(Config{}, c.deliver)
	if err := a.Segment(tpl, 0, []byte("ABCDEFGH"), false); err != nil {
		t.Fatal(err)
	}
	// Full retransmission.
	if err := a.Segment(tpl, 0, []byte("ABCDEFGH"), false); err != nil {
		t.Fatal(err)
	}
	// Partial overlap extending the stream; first copy wins for the
	// overlapped range.
	if err := a.Segment(tpl, 4, []byte("XXXXIJKL"), false); err != nil {
		t.Fatal(err)
	}
	if got := c.buf.String(); got != "ABCDEFGHIJKL" {
		t.Errorf("stream = %q", got)
	}
	if a.Overlapped != 12 {
		t.Errorf("Overlapped = %d, want 12", a.Overlapped)
	}
}

func TestFINFlushesAndCloses(t *testing.T) {
	c := &collector{t: t}
	a := NewAssembler(Config{}, c.deliver)
	if err := a.Segment(tpl, 0, []byte("head"), false); err != nil {
		t.Fatal(err)
	}
	// Out-of-order tail, then FIN with no data: the gap is skipped.
	if err := a.Segment(tpl, 8, []byte("tail"), false); err != nil {
		t.Fatal(err)
	}
	if err := a.Segment(tpl, 12, nil, true); err != nil {
		t.Fatal(err)
	}
	if got := c.buf.String(); got != "headtail" {
		t.Errorf("stream = %q", got)
	}
	if c.skips != 4 {
		t.Errorf("skipped = %d, want the 4-byte gap", c.skips)
	}
	if a.ActiveStreams() != 0 {
		t.Errorf("stream not forgotten after FIN")
	}
	// A late segment inside the tombstone window is rejected and
	// counted — a forged post-FIN segment must not resurrect the stream
	// or start a fresh one the scanner would treat as new data.
	if err := a.Segment(tpl, 100, []byte("late"), false); err != ErrClosed {
		t.Fatalf("post-FIN segment: err = %v, want ErrClosed", err)
	}
	if a.PostFINDrops != 1 {
		t.Errorf("PostFINDrops = %d, want 1", a.PostFINDrops)
	}
}

func TestTombstoneExpiry(t *testing.T) {
	a := NewAssembler(Config{TombstoneTicks: 3}, nil)
	if err := a.Segment(tpl, 0, []byte("data"), true); err != nil {
		t.Fatal(err)
	}
	// Within the window: rejected.
	if err := a.Segment(tpl, 100, []byte("late"), false); err != ErrClosed {
		t.Fatalf("within window: err = %v, want ErrClosed", err)
	}
	// Age the tombstone past the window with unrelated traffic.
	other := tpl
	other.SrcPort = 4000
	for i := 0; i < 4; i++ {
		if err := a.Segment(other, uint32(i), []byte("x"), false); err != nil {
			t.Fatal(err)
		}
	}
	// Past the window: a fresh stream starts at offset 0 (port reuse).
	var lateOff int64 = -1
	a.deliver = func(tu packet.FiveTuple, offset int64, _ []byte, _ int64) {
		if tu == tpl {
			lateOff = offset
		}
	}
	if err := a.Segment(tpl, 500, []byte("new flow"), false); err != nil {
		t.Fatalf("post-expiry segment: %v", err)
	}
	if lateOff != 0 {
		t.Errorf("post-expiry delivery at offset %d, want fresh stream at 0", lateOff)
	}
	// A SYN on a tombstone also starts fresh immediately.
	a2 := NewAssembler(Config{}, nil)
	if err := a2.Segment(tpl, 0, []byte("x"), true); err != nil {
		t.Fatal(err)
	}
	a2.SYN(tpl, 999)
	if err := a2.Segment(tpl, 1000, []byte("y"), false); err != nil {
		t.Fatalf("segment after SYN on tombstone: %v", err)
	}
}

func TestBufferBoundSkipsGap(t *testing.T) {
	c := &collector{t: t}
	a := NewAssembler(Config{MaxBufferedPerStream: 64}, c.deliver)
	if err := a.Segment(tpl, 0, []byte("start"), false); err != nil {
		t.Fatal(err)
	}
	// A large out-of-order block beyond a gap overflows the bound and
	// forces a skip.
	big := bytes.Repeat([]byte{'Z'}, 100)
	if err := a.Segment(tpl, 1000, big, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(c.buf.Bytes(), big) {
		t.Error("big block not delivered after forced skip")
	}
	if a.GapsSkipped != 1000-5 {
		t.Errorf("GapsSkipped = %d, want %d", a.GapsSkipped, 995)
	}
	if a.Buffered != 0 {
		t.Errorf("Buffered = %d after skip", a.Buffered)
	}
}

func TestSYNAnchorsStream(t *testing.T) {
	c := &collector{t: t}
	a := NewAssembler(Config{}, c.deliver)
	// SYN at 999: payload starts at 1000. The tail arrives first and
	// must be held until the head fills the gap.
	a.SYN(tpl, 999)
	if err := a.Segment(tpl, 1004, []byte("tail"), false); err != nil {
		t.Fatal(err)
	}
	if c.buf.Len() != 0 {
		t.Fatalf("tail delivered before head: %q", c.buf.String())
	}
	if err := a.Segment(tpl, 1000, []byte("head"), false); err != nil {
		t.Fatal(err)
	}
	if got := c.buf.String(); got != "headtail" {
		t.Errorf("stream = %q", got)
	}
	// A second SYN (retransmitted) must not re-anchor.
	a.SYN(tpl, 2000)
	if err := a.Segment(tpl, 1008, []byte("more"), false); err != nil {
		t.Fatal(err)
	}
	if got := c.buf.String(); got != "headtailmore" {
		t.Errorf("stream after dup SYN = %q", got)
	}
}

func TestSequenceWraparound(t *testing.T) {
	c := &collector{t: t}
	a := NewAssembler(Config{}, c.deliver)
	start := uint32(0xFFFFFFFC) // 4 bytes before wrap
	if err := a.Segment(tpl, start, []byte("wrap"), false); err != nil {
		t.Fatal(err)
	}
	if err := a.Segment(tpl, 0, []byte("around"), false); err != nil {
		t.Fatal(err)
	}
	if got := c.buf.String(); got != "wraparound" {
		t.Errorf("stream = %q", got)
	}
}

func TestStreamsIndependent(t *testing.T) {
	got := map[packet.FiveTuple]*bytes.Buffer{}
	a := NewAssembler(Config{}, func(tu packet.FiveTuple, _ int64, data []byte, _ int64) {
		b := got[tu]
		if b == nil {
			b = &bytes.Buffer{}
			got[tu] = b
		}
		b.Write(data)
	})
	other := tpl
	other.SrcPort = 2000
	if err := a.Segment(tpl, 0, []byte("flow-one"), false); err != nil {
		t.Fatal(err)
	}
	if err := a.Segment(other, 500, []byte("flow-two"), false); err != nil {
		t.Fatal(err)
	}
	if got[tpl].String() != "flow-one" || got[other].String() != "flow-two" {
		t.Errorf("streams mixed: %v", got)
	}
	if a.ActiveStreams() != 2 {
		t.Errorf("ActiveStreams = %d", a.ActiveStreams())
	}
}

func TestMaxStreamsEviction(t *testing.T) {
	a := NewAssembler(Config{MaxStreams: 4}, nil)
	tu := tpl
	for i := 0; i < 10; i++ {
		tu.SrcPort = uint16(3000 + i)
		if err := a.Segment(tu, 0, []byte("x"), false); err != nil {
			t.Fatal(err)
		}
	}
	if n := a.ActiveStreams(); n > 4 {
		t.Errorf("ActiveStreams = %d, exceeds bound", n)
	}
}

// TestShuffledSegmentsProperty: any permutation of a stream's segments
// reassembles to the original byte stream (no gaps involved).
func TestShuffledSegmentsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(blob []byte, seed int64) bool {
		if len(blob) == 0 {
			return true
		}
		// Split into random segments.
		type seg struct {
			seq  uint32
			data []byte
		}
		var segs []seg
		base := uint32(rng.Intn(1 << 30))
		for off := 0; off < len(blob); {
			n := 1 + rng.Intn(9)
			if off+n > len(blob) {
				n = len(blob) - off
			}
			segs = append(segs, seg{seq: base + uint32(off), data: blob[off : off+n]})
			off += n
		}
		r2 := rand.New(rand.NewSource(seed))
		r2.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
		// The assembler locks onto the first-seen sequence as the
		// stream start, so ensure the true first segment leads.
		for i, s := range segs {
			if s.seq == base {
				segs[0], segs[i] = segs[i], segs[0]
				break
			}
		}
		var out bytes.Buffer
		a := NewAssembler(Config{}, func(_ packet.FiveTuple, _ int64, data []byte, skipped int64) {
			if skipped != 0 {
				t.Fatalf("unexpected skip of %d", skipped)
			}
			out.Write(data)
		})
		for _, s := range segs {
			if err := a.Segment(tpl, s.seq, s.data, false); err != nil {
				return false
			}
		}
		return bytes.Equal(out.Bytes(), blob)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDuplicatedSegmentsProperty: adding duplicates of already-sent
// segments never corrupts the stream.
func TestDuplicatedSegmentsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		blob := make([]byte, 1+rng.Intn(300))
		for i := range blob {
			blob[i] = byte(rng.Intn(256))
		}
		var out bytes.Buffer
		a := NewAssembler(Config{}, func(_ packet.FiveTuple, _ int64, data []byte, _ int64) {
			out.Write(data)
		})
		// Send in order, duplicating ~30% of segments immediately or
		// later.
		type seg struct {
			seq  uint32
			data []byte
		}
		var history []seg
		for off := 0; off < len(blob); {
			n := 1 + rng.Intn(20)
			if off+n > len(blob) {
				n = len(blob) - off
			}
			s := seg{seq: uint32(off), data: blob[off : off+n]}
			history = append(history, s)
			if err := a.Segment(tpl, s.seq, s.data, false); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(3) == 0 && len(history) > 1 {
				old := history[rng.Intn(len(history))]
				if err := a.Segment(tpl, old.seq, old.data, false); err != nil {
					t.Fatal(err)
				}
			}
			off += n
		}
		if !bytes.Equal(out.Bytes(), blob) {
			t.Fatalf("trial %d: stream corrupted by duplicates", trial)
		}
	}
}
