package reassembly_test

import (
	"bytes"
	"math/rand"
	"testing"

	"dpiservice/internal/packet"
	"dpiservice/internal/reassembly"
	"dpiservice/internal/traffic"
)

// FuzzReassembly feeds a randomly segmented, reordered and duplicated
// delivery schedule of an arbitrary byte stream through every overlap
// policy. With no conflicting copies and no poison in the schedule, the
// reassembled stream must reproduce the reference byte-exact under
// every policy — the correctness core all policy behavior rests on.
func FuzzReassembly(f *testing.F) {
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), int64(1), uint32(5000))
	f.Add(bytes.Repeat([]byte{7}, 300), int64(2), uint32(0xFFFFFF00))
	f.Add([]byte("x"), int64(3), uint32(0xFFFFFFFF))
	tuple := packet.FiveTuple{
		Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 80, Protocol: packet.IPProtoTCP,
	}
	f.Fuzz(func(t *testing.T, ref []byte, seed int64, isn uint32) {
		if len(ref) == 0 || len(ref) > 4096 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		adv := traffic.Adversarial(rng, ref, traffic.AdvConfig{
			MeanSeg:      32,
			ConflictProb: -1, // no conflicting copies and no poison:
			PoisonProb:   -1, // every copy agrees, so output is unique
			Fin:          true,
		})
		for _, p := range reassembly.Policies() {
			out := make([]byte, len(ref))
			covered := 0
			a := reassembly.NewAssembler(reassembly.Config{Policy: p},
				func(_ packet.FiveTuple, offset int64, data []byte, skipped int64) {
					if skipped != 0 {
						t.Fatalf("%v: unexpected %d-byte skip at offset %d", p, skipped, offset)
					}
					if offset+int64(len(data)) > int64(len(out)) {
						t.Fatalf("%v: delivery [%d,%d) beyond reference end %d",
							p, offset, offset+int64(len(data)), len(out))
					}
					copy(out[offset:], data)
					covered += len(data)
				})
			a.SYN(tuple, isn)
			for _, seg := range adv.Segments {
				if err := a.Segment(tuple, isn+1+uint32(seg.Offset), seg.Data, seg.Fin); err != nil {
					t.Fatalf("%v: segment at offset %d: %v", p, seg.Offset, err)
				}
			}
			if covered != len(ref) {
				t.Fatalf("%v: delivered %d bytes, want %d", p, covered, len(ref))
			}
			if !bytes.Equal(out, ref) {
				t.Fatalf("%v: reassembled stream differs from reference", p)
			}
		}
	})
}
