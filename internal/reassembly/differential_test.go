package reassembly_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dpiservice/internal/packet"
	"dpiservice/internal/reassembly"
	"dpiservice/internal/traffic"
)

var diffTuple = packet.FiveTuple{
	Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2},
	SrcPort: 1000, DstPort: 80, Protocol: packet.IPProtoTCP,
}

// runSchedule drives an adversarial schedule through one assembler
// configuration and returns the reconstructed stream. With normalize,
// poison segments carry their SegmentMeta verdicts (as the DPI node's
// normalization stage would compute them) and suspicious segments are
// dropped; a naive run ingests everything.
func runSchedule(t *testing.T, adv *traffic.AdvStream, isn uint32, p reassembly.Policy, normalize bool) ([]byte, *reassembly.Assembler) {
	t.Helper()
	out := make([]byte, len(adv.Ref))
	covered := 0
	a := reassembly.NewAssembler(reassembly.Config{
		Policy:         p,
		DropSuspicious: normalize,
	}, func(_ packet.FiveTuple, offset int64, data []byte, skipped int64) {
		if skipped != 0 {
			t.Fatalf("unexpected %d-byte skip at offset %d", skipped, offset)
		}
		copy(out[offset:], data)
		covered += len(data)
	})
	a.SYN(diffTuple, isn)
	for _, seg := range adv.Segments {
		var meta reassembly.SegmentMeta
		if normalize {
			meta.BadChecksum = seg.BadChecksum
			meta.Suspicious = seg.Evil || seg.ShortTTL
		}
		seq := isn + 1 + uint32(seg.Offset)
		err := a.SegmentWithMeta(diffTuple, seq, seg.Data, seg.Fin, meta)
		switch err {
		case nil:
		case reassembly.ErrChecksum, reassembly.ErrSuspicious:
			if !normalize || !seg.Poison() {
				t.Fatalf("genuine segment at offset %d rejected: %v", seg.Offset, err)
			}
		default:
			t.Fatalf("segment at offset %d: %v", seg.Offset, err)
		}
	}
	a.Flush(diffTuple)
	if covered != len(adv.Ref) {
		t.Fatalf("delivered %d bytes, want %d", covered, len(adv.Ref))
	}
	return out, a
}

// diffRanges returns the byte ranges where a and b differ.
func diffRanges(a, b []byte) []traffic.Range {
	var out []traffic.Range
	for i := 0; i < len(a); i++ {
		if a[i] == b[i] {
			continue
		}
		j := i
		for j < len(a) && a[j] != b[j] {
			j++
		}
		out = append(out, traffic.Range{Start: int64(i), End: int64(j)})
		i = j
	}
	return out
}

func within(rs []traffic.Range, r traffic.Range) bool {
	for _, x := range rs {
		if r.Start >= x.Start && r.End <= x.End {
			return true
		}
	}
	return false
}

var diffPatterns = []string{"ATTACK-SIGNATURE-ONE", "EVIL/payload.exe", "SELECT * FROM users"}

// TestDifferentialPolicies is the core differential property: one
// adversarial corpus through every overlap policy. With normalization,
// policies may disagree with the reference ONLY inside ranges where
// conflicting same-validity copies were sent, and every planted
// pattern outside those ranges survives reassembly byte-exact under
// every policy — zero false negatives.
func TestDifferentialPolicies(t *testing.T) {
	// Two anchors: a plain one and one that wraps the 32-bit sequence
	// space partway through the stream.
	for _, isn := range []uint32{5000, 0xFFFFF000} {
		isn := isn
		t.Run(fmt.Sprintf("isn=%#x", isn), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			ref := traffic.NewGenerator(traffic.Config{Seed: 7, Mix: traffic.HTTPMix}).PayloadN(16 << 10)
			sites := traffic.Plant(rng, ref, diffPatterns, 24)
			if len(sites) < 16 {
				t.Fatalf("only %d pattern sites planted", len(sites))
			}
			adv := traffic.Adversarial(rng, ref, traffic.AdvConfig{Fin: true})
			if len(adv.Ambiguous) == 0 || len(adv.Poisoned) == 0 {
				t.Fatalf("corpus not adversarial enough: %d ambiguous, %d poisoned ranges",
					len(adv.Ambiguous), len(adv.Poisoned))
			}

			outs := map[reassembly.Policy][]byte{}
			for _, p := range reassembly.Policies() {
				out, a := runSchedule(t, adv, isn, p, true)
				outs[p] = out
				// Normalized runs must reject every checksum poison and
				// count the conflicts they resolved.
				if a.OverlapConflicts == 0 {
					t.Errorf("%v: no overlap conflicts counted", p)
				}
				// Divergence from the reference only inside ambiguous
				// ranges.
				for _, d := range diffRanges(ref, out) {
					if !within(adv.Ambiguous, d) {
						t.Errorf("%v: diverges from ref at [%d,%d) outside ambiguous ranges",
							p, d.Start, d.End)
					}
				}
				// Zero false negatives: every planted pattern not touched
				// by an ambiguity is reproduced byte-exact.
				for _, site := range sites {
					if traffic.OverlapsAny(adv.Ambiguous, site) {
						continue
					}
					if !bytes.Equal(out[site.Start:site.End], ref[site.Start:site.End]) {
						t.Errorf("%v: pattern at [%d,%d) corrupted outside ambiguous ranges",
							p, site.Start, site.End)
					}
				}
			}
			// Policies must pairwise agree outside ambiguous ranges too
			// (a stronger form: they can only disagree with EACH OTHER
			// where conflicting copies coexisted).
			ps := reassembly.Policies()
			disagreed := false
			for i := 0; i < len(ps); i++ {
				for j := i + 1; j < len(ps); j++ {
					ds := diffRanges(outs[ps[i]], outs[ps[j]])
					if len(ds) > 0 {
						disagreed = true
					}
					for _, d := range ds {
						if !within(adv.Ambiguous, d) {
							t.Errorf("%v vs %v disagree at [%d,%d) outside ambiguous ranges",
								ps[i], ps[j], d.Start, d.End)
						}
					}
				}
			}
			if !disagreed {
				t.Error("corpus failed to distinguish any pair of policies")
			}
		})
	}
}

// TestDifferentialNaive runs the same corpus without normalization: the
// reassembler ingests poison segments the end host would discard, so
// divergence may additionally appear inside poisoned ranges — and only
// there. This quantifies exactly what normalization buys.
func TestDifferentialNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ref := traffic.NewGenerator(traffic.Config{Seed: 8, Mix: traffic.HTTPMix}).PayloadN(16 << 10)
	sites := traffic.Plant(rng, ref, diffPatterns, 24)
	adv := traffic.Adversarial(rng, ref, traffic.AdvConfig{Fin: true})
	if len(adv.Poisoned) == 0 {
		t.Fatal("corpus has no poison")
	}
	allowed := traffic.MergeRanges(append(append([]traffic.Range{}, adv.Ambiguous...), adv.Poisoned...))
	poisonMattered := false
	for _, p := range reassembly.Policies() {
		out, _ := runSchedule(t, adv, 5000, p, false)
		for _, d := range diffRanges(ref, out) {
			if !within(allowed, d) {
				t.Errorf("%v naive: diverges at [%d,%d) outside ambiguous+poisoned ranges",
					p, d.Start, d.End)
			}
			if !within(adv.Ambiguous, d) {
				poisonMattered = true
			}
		}
		for _, site := range sites {
			if traffic.OverlapsAny(allowed, site) {
				continue
			}
			if !bytes.Equal(out[site.Start:site.End], ref[site.Start:site.End]) {
				t.Errorf("%v naive: pattern at [%d,%d) corrupted outside allowed ranges",
					p, site.Start, site.End)
			}
		}
	}
	if !poisonMattered {
		t.Error("poison segments never changed a naive reconstruction; corpus too weak")
	}
}
