// Package reassembly implements TCP stream reassembly — the "session
// reconstruction" the paper's conclusion proposes as the next common
// middlebox task to turn into a service (Section 7). A stateful DPI
// scan is only sound if the byte stream it sees is the one the end host
// will reconstruct; this package orders out-of-order segments, discards
// retransmitted overlap (first-copy-wins, the policy Snort's
// stream reassembler defaults to), bounds per-stream buffering against
// gap-flooding attacks, and delivers contiguous payload runs.
package reassembly

import (
	"errors"
	"sort"
	"sync"

	"dpiservice/internal/packet"
)

// Config bounds the assembler.
type Config struct {
	// MaxBufferedPerStream bounds out-of-order bytes held for one
	// stream; exceeding it drops the stream's oldest gap by skipping
	// ahead (fail-open, like a memory-bounded NIDS). Default 256 KiB.
	MaxBufferedPerStream int
	// MaxStreams bounds tracked streams; a new stream evicts an
	// arbitrary old one when full. Default 65536.
	MaxStreams int
}

func (c *Config) defaults() {
	if c.MaxBufferedPerStream <= 0 {
		c.MaxBufferedPerStream = 256 << 10
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 1 << 16
	}
}

// DeliverFunc receives contiguous stream payload for one direction of a
// flow. offset is the byte offset of data within the reassembled
// stream (0 at the first byte seen). skipped is non-zero when the
// assembler had to jump over an unrecoverable gap of that many bytes
// (buffer bound or explicit flush).
type DeliverFunc func(tuple packet.FiveTuple, offset int64, data []byte, skipped int64)

// Assembler reassembles many unidirectional TCP streams.
type Assembler struct {
	cfg     Config
	deliver DeliverFunc

	mu sync.Mutex
	//dpi:guardedby(mu)
	streams map[packet.FiveTuple]*stream

	// Counters.
	//dpi:guardedby(mu)
	Delivered int64 // bytes handed to the callback
	//dpi:guardedby(mu)
	Buffered int64 // bytes currently held out of order
	//dpi:guardedby(mu)
	Overlapped int64 // duplicate bytes discarded
	//dpi:guardedby(mu)
	GapsSkipped int64 // bytes skipped over
}

type stream struct {
	nextSeq uint32
	started bool
	closed  bool
	offset  int64 // stream offset corresponding to nextSeq
	// pending holds out-of-order segments sorted by sequence.
	pending  []segment
	buffered int
}

type segment struct {
	seq  uint32
	data []byte
}

// ErrClosed is returned for segments on a stream already closed by FIN.
var ErrClosed = errors.New("reassembly: stream closed")

// NewAssembler creates an assembler invoking deliver for in-order data.
func NewAssembler(cfg Config, deliver DeliverFunc) *Assembler {
	cfg.defaults()
	return &Assembler{cfg: cfg, deliver: deliver, streams: make(map[packet.FiveTuple]*stream)}
}

// seqLess reports a < b in 32-bit sequence space.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// SYN anchors a stream at its initial sequence number (the SYN
// consumes one sequence number, so payload starts at seq+1). Without a
// SYN, the assembler anchors at the first data segment seen, which
// mis-orders a flow whose very first segments arrive out of order.
func (a *Assembler) SYN(tuple packet.FiveTuple, seq uint32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.streams[tuple]
	if s == nil {
		if len(a.streams) >= a.cfg.MaxStreams {
			for k := range a.streams {
				delete(a.streams, k)
				break
			}
		}
		s = &stream{}
		a.streams[tuple] = s
	}
	if !s.started {
		s.started = true
		s.nextSeq = seq + 1
	}
}

// Segment feeds one TCP segment. fin marks the last segment of the
// stream. Delivery callbacks run synchronously on the caller.
func (a *Assembler) Segment(tuple packet.FiveTuple, seq uint32, data []byte, fin bool) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.streams[tuple]
	if s == nil {
		if len(a.streams) >= a.cfg.MaxStreams {
			for k := range a.streams {
				delete(a.streams, k)
				break
			}
		}
		s = &stream{}
		a.streams[tuple] = s
	}
	if s.closed {
		return ErrClosed
	}
	if !s.started {
		s.started = true
		s.nextSeq = seq
	}

	if len(data) > 0 {
		a.ingest(tuple, s, seq, data)
	}
	if fin {
		// Flush whatever is pending (skipping gaps) and forget the
		// stream.
		a.flushAll(tuple, s)
		s.closed = true
		delete(a.streams, tuple)
	}
	return nil
}

// ingest merges one data segment and delivers any newly contiguous run.
//
//dpi:locked(mu)
func (a *Assembler) ingest(tuple packet.FiveTuple, s *stream, seq uint32, data []byte) {
	// Trim the part already delivered (retransmission / overlap).
	if seqLess(seq, s.nextSeq) {
		trim := s.nextSeq - seq // sequence-space distance
		if uint32(len(data)) <= trim {
			a.Overlapped += int64(len(data))
			return
		}
		a.Overlapped += int64(trim)
		data = data[trim:]
		seq = s.nextSeq
	}
	if seq == s.nextSeq {
		a.deliverRun(tuple, s, data, 0)
		a.drainPending(tuple, s)
		return
	}
	// Out of order: buffer a copy (the caller owns its slice).
	cp := make([]byte, len(data))
	copy(cp, data)
	s.pending = append(s.pending, segment{seq: seq, data: cp})
	sort.Slice(s.pending, func(i, j int) bool { return seqLess(s.pending[i].seq, s.pending[j].seq) })
	s.buffered += len(cp)
	a.Buffered += int64(len(cp))
	// Bound the buffer: skip to the first pending segment, declaring
	// the gap lost.
	if s.buffered > a.cfg.MaxBufferedPerStream {
		a.skipGap(tuple, s)
	}
}

// deliverRun hands contiguous bytes up and advances the stream.
//
//dpi:locked(mu)
func (a *Assembler) deliverRun(tuple packet.FiveTuple, s *stream, data []byte, skipped int64) {
	off := s.offset
	s.nextSeq += uint32(len(data))
	s.offset += int64(len(data)) + skipped
	a.Delivered += int64(len(data))
	if a.deliver != nil {
		a.deliver(tuple, off+skipped, data, skipped)
	}
}

// drainPending delivers buffered segments that became contiguous.
//
//dpi:locked(mu)
func (a *Assembler) drainPending(tuple packet.FiveTuple, s *stream) {
	for len(s.pending) > 0 {
		head := s.pending[0]
		if seqLess(s.nextSeq, head.seq) {
			return // still a gap
		}
		s.pending = s.pending[1:]
		s.buffered -= len(head.data)
		a.Buffered -= int64(len(head.data))
		data := head.data
		if seqLess(head.seq, s.nextSeq) {
			trim := s.nextSeq - head.seq
			if uint32(len(data)) <= trim {
				a.Overlapped += int64(len(data))
				continue
			}
			a.Overlapped += int64(trim)
			data = data[trim:]
		}
		a.deliverRun(tuple, s, data, 0)
	}
}

// skipGap jumps over the gap before the first pending segment.
//
//dpi:locked(mu)
func (a *Assembler) skipGap(tuple packet.FiveTuple, s *stream) {
	if len(s.pending) == 0 {
		return
	}
	head := s.pending[0]
	gap := int64(head.seq - s.nextSeq)
	a.GapsSkipped += gap
	s.pending = s.pending[1:]
	s.buffered -= len(head.data)
	a.Buffered -= int64(len(head.data))
	s.nextSeq = head.seq
	a.deliverRun(tuple, s, head.data, gap)
	a.drainPending(tuple, s)
}

// flushAll skips every remaining gap of a stream (used at FIN).
//
//dpi:locked(mu)
func (a *Assembler) flushAll(tuple packet.FiveTuple, s *stream) {
	for len(s.pending) > 0 {
		a.skipGap(tuple, s)
	}
}

// Flush forces out all pending data of one stream, skipping gaps.
func (a *Assembler) Flush(tuple packet.FiveTuple) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s := a.streams[tuple]; s != nil {
		a.flushAll(tuple, s)
	}
}

// ActiveStreams reports the number of tracked streams.
func (a *Assembler) ActiveStreams() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.streams)
}
