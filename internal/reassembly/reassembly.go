// Package reassembly implements evasion-resistant TCP stream
// reassembly — the "session reconstruction" the paper's conclusion
// proposes as the next common middlebox task to turn into a service
// (Section 7). A stateful DPI scan is only sound if the byte stream it
// sees is the one the end host will reconstruct, and real DPI boxes
// are fingerprinted and evaded precisely through reassembly
// ambiguities: overlapping segments carrying conflicting data,
// bad-checksum insertions the end host would discard, TTL-limited
// segments that never reach the host, and out-of-order floods that
// exhaust reassembly state.
//
// This package therefore makes every ambiguity-resolution decision
// explicit and observable:
//
//   - Overlap policy. Conflicting copies of the same sequence range are
//     resolved by a selectable Policy (First, Last, BSD, Linux) modeled
//     on target-based reassembly (Snort's stream5): the operator picks
//     the policy matching the protected host population, and
//     differential tests drive the same ambiguous corpus through every
//     policy to bound where they may disagree.
//   - Normalization. Callers pass packet-level verdicts (failed TCP
//     checksum, short-TTL/"evil-bit" suspicion) via SegmentMeta;
//     bad-checksum segments are rejected before they can poison the
//     stream, suspicious ones are counted (and optionally dropped), and
//     absurd sequence jumps are clamped.
//   - Resource bounds. Per-stream buffering is capped (gap floods force
//     a declared skip, fail-open like a memory-bounded NIDS), and the
//     stream table evicts the least-recently-advanced stream first — a
//     flow that buffers without ever making forward progress (an MCA²
//     state-exhaustion attack) is the first victim, never a flow that
//     is actually delivering bytes.
//
// Every drop, overlap conflict, gap skip and eviction is counted in an
// obs registry so evasion attempts are visible at /metrics.
package reassembly

import (
	"bytes"
	"errors"
	"sort"
	"sync"

	"dpiservice/internal/obs"
	"dpiservice/internal/packet"
	"dpiservice/internal/trace"
)

// Policy selects how conflicting copies of an overlapping sequence
// range are resolved while both copies are still pending (not yet
// delivered). Bytes already handed to the delivery callback are
// immutable under every policy — a scan cannot be rescinded — so
// retransmissions of delivered ranges are always trimmed.
type Policy int

// Overlap policies, modeled on target-based stream reassembly. The
// decision compares the starting sequence numbers of the new and the
// already-pending segment; "new wins" means the newly-arrived bytes
// replace the pending copy for the overlapped range.
const (
	// PolicyFirst keeps the first copy received for every overlapped
	// byte (Snort's historical default).
	PolicyFirst Policy = iota
	// PolicyLast always takes the latest copy received.
	PolicyLast
	// PolicyBSD keeps the pending copy unless the new segment starts
	// strictly before it.
	PolicyBSD
	// PolicyLinux keeps the pending copy unless the new segment starts
	// at or before it.
	PolicyLinux
)

// String returns the conventional lowercase policy name.
func (p Policy) String() string {
	switch p {
	case PolicyFirst:
		return "first"
	case PolicyLast:
		return "last"
	case PolicyBSD:
		return "bsd"
	case PolicyLinux:
		return "linux"
	default:
		return "unknown"
	}
}

// Policies lists every selectable overlap policy, in a fixed order —
// the iteration set for differential tests.
func Policies() []Policy {
	return []Policy{PolicyFirst, PolicyLast, PolicyBSD, PolicyLinux}
}

// newWins reports whether a newly-arrived copy of an overlapped range
// beats the pending copy, given the two segments' starting sequence
// numbers.
func (p Policy) newWins(newStart, oldStart uint32) bool {
	switch p {
	case PolicyLast:
		return true
	case PolicyBSD:
		return seqLess(newStart, oldStart)
	case PolicyLinux:
		return !seqLess(oldStart, newStart)
	default: // PolicyFirst
		return false
	}
}

// Config bounds and parameterizes the assembler.
type Config struct {
	// MaxBufferedPerStream bounds out-of-order bytes held for one
	// stream; exceeding it skips the stream's oldest gap (fail-open,
	// like a memory-bounded NIDS). Default 256 KiB.
	MaxBufferedPerStream int
	// MaxBufferedTotal bounds out-of-order bytes across all streams;
	// exceeding it sheds (discards without delivery) the backlog of the
	// least-recently-advanced stream. 0 disables the global bound.
	MaxBufferedTotal int
	// MaxStreams bounds tracked streams; a new stream evicts the
	// least-recently-advanced one when full. Default 65536.
	MaxStreams int
	// Policy resolves conflicting overlaps among pending segments.
	// The zero value is PolicyFirst, the historical behavior.
	Policy Policy
	// MaxSeqJump rejects a segment whose sequence number is more than
	// this many bytes away from the stream's next expected byte in
	// either direction — a desynchronization/gap-flood clamp. Default
	// 16 MiB; negative disables the check.
	MaxSeqJump int
	// DropSuspicious drops (rather than just counts) segments the
	// caller flagged Suspicious in SegmentMeta.
	DropSuspicious bool
	// TombstoneTicks retains a closed stream for this many subsequent
	// assembler operations so post-FIN segments are rejected with
	// ErrClosed and counted instead of silently resurrecting the
	// stream. Default 256; negative disables tombstones (a post-FIN
	// segment then starts a fresh stream immediately).
	TombstoneTicks int
	// Metrics receives the assembler's instruments; nil uses a private
	// registry (counters still maintained, just not exported).
	Metrics *obs.Registry
}

func (c *Config) defaults() {
	if c.MaxBufferedPerStream <= 0 {
		c.MaxBufferedPerStream = 256 << 10
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 1 << 16
	}
	if c.MaxSeqJump == 0 {
		c.MaxSeqJump = 16 << 20
	}
	if c.TombstoneTicks == 0 {
		c.TombstoneTicks = 256
	}
}

// SegmentMeta carries the caller's packet-level normalization verdicts
// into the assembler. The assembler never sees raw frames, so checksum
// validation and TTL/evil-bit heuristics are computed by the caller
// (see packet.TCPChecksumValid) and passed down as hints.
type SegmentMeta struct {
	// BadChecksum marks a segment whose TCP checksum failed
	// verification: the end host will discard it, so ingesting it would
	// desynchronize the scanned stream from the delivered one. Always
	// rejected.
	BadChecksum bool
	// Suspicious marks a segment the caller considers unlikely to reach
	// the end host (short TTL) or attack-labeled (IPv4 reserved "evil"
	// bit). Counted always, rejected when Config.DropSuspicious is set.
	Suspicious bool
}

// DeliverFunc receives contiguous stream payload for one direction of a
// flow. offset is the byte offset of data within the reassembled
// stream (0 at the first byte seen). skipped is non-zero when the
// assembler had to jump over an unrecoverable gap of that many bytes
// (buffer bound or explicit flush). The callback runs synchronously
// under the assembler's lock.
type DeliverFunc func(tuple packet.FiveTuple, offset int64, data []byte, skipped int64)

// metrics are the assembler's obs instruments; every ambiguity or
// resource decision increments one so evasion attempts show up at
// /metrics.
type metrics struct {
	delivered      *obs.Counter
	overlapBytes   *obs.Counter
	conflicts      *obs.Counter
	conflictBytes  *obs.Counter
	gapBytes       *obs.Counter
	dropChecksum   *obs.Counter
	suspicious     *obs.Counter
	dropSuspicious *obs.Counter
	dropSeqJump    *obs.Counter
	postFinDrops   *obs.Counter
	evictions      *obs.Counter
	shedBytes      *obs.Counter
	buffered       *obs.Gauge
	streams        *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &metrics{
		delivered:      reg.Counter("reassembly.delivered_bytes"),
		overlapBytes:   reg.Counter("reassembly.overlap_bytes"),
		conflicts:      reg.Counter("reassembly.overlap_conflicts"),
		conflictBytes:  reg.Counter("reassembly.overlap_conflict_bytes"),
		gapBytes:       reg.Counter("reassembly.gap_skipped_bytes"),
		dropChecksum:   reg.Counter("reassembly.drop_bad_checksum"),
		suspicious:     reg.Counter("reassembly.suspicious_segments"),
		dropSuspicious: reg.Counter("reassembly.drop_suspicious"),
		dropSeqJump:    reg.Counter("reassembly.drop_seq_jump"),
		postFinDrops:   reg.Counter("reassembly.post_fin_drops"),
		evictions:      reg.Counter("reassembly.evictions"),
		shedBytes:      reg.Counter("reassembly.shed_bytes"),
		buffered:       reg.Gauge("reassembly.buffered_bytes"),
		streams:        reg.Gauge("reassembly.streams_active"),
	}
}

// Assembler reassembles many unidirectional TCP streams.
type Assembler struct {
	cfg     Config
	deliver DeliverFunc
	met     *metrics
	// fl is the optional flight recorder: segment drops, stream
	// evictions and backlog sheds are recorded for post-mortem dumps.
	// Set once via SetFlight before traffic.
	fl *trace.Flight

	mu sync.Mutex
	//dpi:guardedby(mu)
	streams map[packet.FiveTuple]*stream
	// front/back are the ends of an intrusive list of streams ordered
	// by forward progress: front is the least-recently-advanced stream
	// (first eviction victim), back the most recent. A stream moves to
	// the back only when it delivers bytes — buffering alone never
	// refreshes it, so gap-flooding streams drift to the front.
	//dpi:guardedby(mu)
	front *stream
	//dpi:guardedby(mu)
	back *stream
	// tick is a logical clock advanced on every SYN/Segment call; it
	// ages tombstones deterministically without wall-clock time.
	//dpi:guardedby(mu)
	tick uint64
	//dpi:guardedby(mu)
	tombstones int

	// Counters (mirrored into the obs registry).
	//dpi:guardedby(mu)
	Delivered int64 // bytes handed to the callback
	//dpi:guardedby(mu)
	Buffered int64 // bytes currently held out of order
	//dpi:guardedby(mu)
	Overlapped int64 // duplicate bytes discarded or superseded
	//dpi:guardedby(mu)
	GapsSkipped int64 // bytes skipped over
	//dpi:guardedby(mu)
	OverlapConflicts int64 // overlap events whose copies disagreed
	//dpi:guardedby(mu)
	OverlapConflictBytes int64 // bytes over which copies disagreed
	//dpi:guardedby(mu)
	DropsBadChecksum int64 // segments rejected for a failed checksum
	//dpi:guardedby(mu)
	SuspiciousSeen int64 // segments flagged suspicious by the caller
	//dpi:guardedby(mu)
	DropsSuspicious int64 // suspicious segments rejected
	//dpi:guardedby(mu)
	DropsSeqJump int64 // segments rejected for an absurd sequence jump
	//dpi:guardedby(mu)
	PostFINDrops int64 // segments rejected on a tombstoned stream
	//dpi:guardedby(mu)
	Evictions int64 // streams evicted by the MaxStreams bound
	//dpi:guardedby(mu)
	ShedBytes int64 // buffered bytes discarded by eviction or shedding
}

type stream struct {
	tuple   packet.FiveTuple
	nextSeq uint32
	started bool
	offset  int64 // stream offset corresponding to nextSeq
	// pending holds out-of-order segments sorted by sequence, pairwise
	// non-overlapping (overlaps are resolved at insert time).
	pending  []segment
	buffered int

	// Tombstone state: a closed stream is retained briefly so post-FIN
	// segments are rejected and counted instead of resurrecting it.
	closed     bool
	closedTick uint64

	// Intrusive eviction-list links (least-recently-advanced order).
	prev, next *stream
}

type segment struct {
	seq  uint32
	data []byte
}

// Errors returned for rejected segments.
var (
	// ErrClosed is returned for segments on a stream recently closed by
	// FIN (within the tombstone window).
	ErrClosed = errors.New("reassembly: stream closed")
	// ErrChecksum is returned for segments whose TCP checksum failed.
	ErrChecksum = errors.New("reassembly: bad TCP checksum")
	// ErrSuspicious is returned for caller-flagged suspicious segments
	// when Config.DropSuspicious is set.
	ErrSuspicious = errors.New("reassembly: suspicious segment dropped")
	// ErrSeqJump is returned for segments too far from the next
	// expected sequence number.
	ErrSeqJump = errors.New("reassembly: sequence jump out of window")
)

// NewAssembler creates an assembler invoking deliver for in-order data.
func NewAssembler(cfg Config, deliver DeliverFunc) *Assembler {
	cfg.defaults()
	return &Assembler{
		cfg:     cfg,
		deliver: deliver,
		met:     newMetrics(cfg.Metrics),
		streams: make(map[packet.FiveTuple]*stream),
	}
}

// SetFlight attaches a flight recorder; normalization drops, stream
// evictions and backlog sheds are recorded into it. Call at setup
// time, before traffic flows; nil disables recording.
func (a *Assembler) SetFlight(f *trace.Flight) {
	a.mu.Lock()
	a.fl = f
	a.mu.Unlock()
}

// Flight-event reason codes carried in the B word of EvReassemblyDrop.
const (
	dropReasonChecksum   = 1
	dropReasonSuspicious = 2
	dropReasonPostFIN    = 3
	dropReasonSeqJump    = 4
)

// seqLess reports a < b in 32-bit sequence space.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// SYN anchors a stream at its initial sequence number (the SYN
// consumes one sequence number, so payload starts at seq+1). Without a
// SYN, the assembler anchors at the first data segment seen, which
// mis-orders a flow whose very first segments arrive out of order. A
// SYN on a tombstoned stream starts a fresh connection (port reuse).
func (a *Assembler) SYN(tuple packet.FiveTuple, seq uint32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tick++
	s := a.streams[tuple]
	if s != nil && s.closed {
		a.forget(s)
		s = nil
	}
	if s == nil {
		s = a.newStream(tuple)
	}
	if !s.started {
		s.started = true
		s.nextSeq = seq + 1
	}
}

// Segment feeds one TCP segment with no normalization hints. fin marks
// the last segment of the stream. Delivery callbacks run synchronously
// on the caller.
func (a *Assembler) Segment(tuple packet.FiveTuple, seq uint32, data []byte, fin bool) error {
	return a.SegmentWithMeta(tuple, seq, data, fin, SegmentMeta{})
}

// SegmentWithMeta feeds one TCP segment together with the caller's
// packet-level normalization verdicts. Rejected segments return a
// typed error and are counted; they never touch stream state (a forged
// segment cannot tear down or desynchronize a stream).
func (a *Assembler) SegmentWithMeta(tuple packet.FiveTuple, seq uint32, data []byte, fin bool, meta SegmentMeta) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tick++

	// Normalization stage: validate before any state is created.
	if meta.BadChecksum {
		a.DropsBadChecksum++
		a.met.dropChecksum.Inc()
		a.fl.Record(trace.EvReassemblyDrop, tuple.FastHash(), dropReasonChecksum)
		return ErrChecksum
	}
	if meta.Suspicious {
		a.SuspiciousSeen++
		a.met.suspicious.Inc()
		if a.cfg.DropSuspicious {
			a.DropsSuspicious++
			a.met.dropSuspicious.Inc()
			a.fl.Record(trace.EvReassemblyDrop, tuple.FastHash(), dropReasonSuspicious)
			return ErrSuspicious
		}
	}

	s := a.streams[tuple]
	if s != nil && s.closed {
		if a.cfg.TombstoneTicks >= 0 && a.tick-s.closedTick <= uint64(a.cfg.TombstoneTicks) {
			a.PostFINDrops++
			a.met.postFinDrops.Inc()
			a.fl.Record(trace.EvReassemblyDrop, tuple.FastHash(), dropReasonPostFIN)
			return ErrClosed
		}
		// Tombstone expired: the segment starts a fresh stream.
		a.forget(s)
		s = nil
	}
	if s != nil && s.started && a.cfg.MaxSeqJump >= 0 {
		// Clamp absurd sequence jumps relative to the next expected
		// byte — a desynchronization attack, not plausible reordering.
		if d := int64(int32(seq - s.nextSeq)); d > int64(a.cfg.MaxSeqJump) || d < -int64(a.cfg.MaxSeqJump) {
			a.DropsSeqJump++
			a.met.dropSeqJump.Inc()
			a.fl.Record(trace.EvReassemblyDrop, tuple.FastHash(), dropReasonSeqJump)
			return ErrSeqJump
		}
	}
	if s == nil {
		s = a.newStream(tuple)
	}
	if !s.started {
		s.started = true
		s.nextSeq = seq
	}

	if len(data) > 0 {
		a.ingest(tuple, s, seq, data)
	}
	if fin {
		a.finish(tuple, s)
	}
	return nil
}

// newStream allocates a tracked stream, evicting the
// least-recently-advanced one when the table is full.
//
//dpi:locked(mu)
func (a *Assembler) newStream(tuple packet.FiveTuple) *stream {
	if len(a.streams) >= a.cfg.MaxStreams {
		a.evictOne()
	}
	s := &stream{tuple: tuple}
	a.streams[tuple] = s
	a.pushBack(s)
	a.met.streams.Add(1)
	return s
}

// evictOne removes the stream at the front of the progress list — the
// one that went longest without delivering a byte. Under an MCA²-style
// state-exhaustion attack the flood's own no-progress streams sit at
// the front, so they are evicted before any flow that is actually
// advancing. Buffered bytes are discarded, not delivered.
//
//dpi:locked(mu)
func (a *Assembler) evictOne() {
	s := a.front
	if s == nil {
		return
	}
	a.Evictions++
	a.met.evictions.Inc()
	a.fl.Record(trace.EvStreamEvict, s.tuple.FastHash(), uint64(s.buffered))
	a.forget(s)
}

// forget drops a stream and its backlog from the table.
//
//dpi:locked(mu)
func (a *Assembler) forget(s *stream) {
	if s.buffered > 0 {
		a.ShedBytes += int64(s.buffered)
		a.met.shedBytes.Add(uint64(s.buffered))
		a.addBuffered(s, -s.buffered)
	}
	if s.closed {
		a.tombstones--
	}
	a.unlink(s)
	delete(a.streams, s.tuple)
	a.met.streams.Add(-1)
}

// finish flushes a stream at FIN and leaves a tombstone so late
// segments are rejected rather than resurrecting the stream.
//
//dpi:locked(mu)
func (a *Assembler) finish(tuple packet.FiveTuple, s *stream) {
	a.flushAll(tuple, s)
	if a.cfg.TombstoneTicks < 0 {
		a.forget(s)
		return
	}
	if !s.closed {
		s.closed = true
		a.tombstones++
	}
	s.closedTick = a.tick
	s.pending = nil
	a.moveFront(s) // tombstones are the preferred eviction victims
}

// ingest merges one data segment and delivers any newly contiguous run.
//
//dpi:locked(mu)
func (a *Assembler) ingest(tuple packet.FiveTuple, s *stream, seq uint32, data []byte) {
	// Trim the part already delivered. Delivered bytes are immutable
	// under every policy: the scanner saw them, and a scan cannot be
	// rescinded — exactly what the end host does with data it already
	// ACKed to the application.
	if seqLess(seq, s.nextSeq) {
		trim := s.nextSeq - seq // sequence-space distance
		if uint32(len(data)) <= trim {
			a.overlapped(int64(len(data)))
			return
		}
		a.overlapped(int64(trim))
		data = data[trim:]
		seq = s.nextSeq
	}
	// Fast path: in-order data touching no pending segment is delivered
	// without a copy.
	if seq == s.nextSeq && !s.overlapsPending(seq, len(data)) {
		a.deliverRun(tuple, s, data, 0)
		a.drainPending(tuple, s)
		return
	}
	a.insertPending(s, seq, data)
	a.drainPending(tuple, s)
	// Bound the buffer: skip to the first pending segment, declaring
	// the gap lost.
	if s.buffered > a.cfg.MaxBufferedPerStream {
		a.skipGap(tuple, s)
	}
	if a.cfg.MaxBufferedTotal > 0 && a.Buffered > int64(a.cfg.MaxBufferedTotal) {
		a.shedTotal()
	}
}

// overlapsPending reports whether [seq, seq+n) intersects any pending
// segment.
func (s *stream) overlapsPending(seq uint32, n int) bool {
	if len(s.pending) == 0 || n == 0 {
		return false
	}
	i := sort.Search(len(s.pending), func(i int) bool {
		p := &s.pending[i]
		return seqLess(seq, p.seq+uint32(len(p.data)))
	})
	return i < len(s.pending) && seqLess(s.pending[i].seq, seq+uint32(n))
}

// insertPending merges a segment into the pending set, resolving every
// overlap against already-buffered copies under the configured policy.
// Pending segments stay sorted and pairwise non-overlapping: when the
// new copy wins an overlap its bytes are written over the pending copy
// in place, and only the non-overlapped remainder is inserted.
//
//dpi:locked(mu)
func (a *Assembler) insertPending(s *stream, seq uint32, data []byte) {
	newStart := seq
	cur := data
	i := sort.Search(len(s.pending), func(i int) bool {
		p := &s.pending[i]
		return seqLess(seq, p.seq+uint32(len(p.data)))
	})
	var added []segment
	for len(cur) > 0 && i < len(s.pending) {
		ex := &s.pending[i]
		if seqLess(seq, ex.seq) {
			// Leading piece before ex does not overlap anything.
			n := int(ex.seq - seq)
			if n >= len(cur) {
				break
			}
			added = append(added, segment{seq: seq, data: cloneBytes(cur[:n])})
			seq += uint32(n)
			cur = cur[n:]
		}
		// cur now starts inside ex.
		off := int(seq - ex.seq)
		n := len(ex.data) - off
		if n > len(cur) {
			n = len(cur)
		}
		a.overlapped(int64(n))
		if !bytes.Equal(cur[:n], ex.data[off:off+n]) {
			// The ambiguity real stacks are fingerprinted by: two
			// copies of the same range with different content.
			a.OverlapConflicts++
			a.OverlapConflictBytes += int64(n)
			a.met.conflicts.Inc()
			a.met.conflictBytes.Add(uint64(n))
			if a.cfg.Policy.newWins(newStart, ex.seq) {
				copy(ex.data[off:off+n], cur[:n])
			}
		}
		seq += uint32(n)
		cur = cur[n:]
		i++
	}
	if len(cur) > 0 {
		added = append(added, segment{seq: seq, data: cloneBytes(cur)})
	}
	if len(added) == 0 {
		return
	}
	for _, g := range added {
		a.addBuffered(s, len(g.data))
	}
	s.pending = append(s.pending, added...)
	sort.Slice(s.pending, func(i, j int) bool { return seqLess(s.pending[i].seq, s.pending[j].seq) })
}

func cloneBytes(b []byte) []byte {
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp
}

// addBuffered adjusts the per-stream and global buffered accounting.
//
//dpi:locked(mu)
func (a *Assembler) addBuffered(s *stream, delta int) {
	s.buffered += delta
	a.Buffered += int64(delta)
	a.met.buffered.Add(int64(delta))
}

// overlapped counts duplicate/superseded overlap bytes.
//
//dpi:locked(mu)
func (a *Assembler) overlapped(n int64) {
	a.Overlapped += n
	a.met.overlapBytes.Add(uint64(n))
}

// deliverRun hands contiguous bytes up and advances the stream. Forward
// progress refreshes the stream's position in the eviction list.
//
//dpi:locked(mu)
func (a *Assembler) deliverRun(tuple packet.FiveTuple, s *stream, data []byte, skipped int64) {
	off := s.offset
	s.nextSeq += uint32(len(data))
	s.offset += int64(len(data)) + skipped
	a.Delivered += int64(len(data))
	a.met.delivered.Add(uint64(len(data)))
	a.moveBack(s)
	if a.deliver != nil {
		a.deliver(tuple, off+skipped, data, skipped)
	}
}

// drainPending delivers buffered segments that became contiguous.
//
//dpi:locked(mu)
func (a *Assembler) drainPending(tuple packet.FiveTuple, s *stream) {
	for len(s.pending) > 0 {
		head := s.pending[0]
		if seqLess(s.nextSeq, head.seq) {
			return // still a gap
		}
		s.pending = s.pending[1:]
		a.addBuffered(s, -len(head.data))
		data := head.data
		if seqLess(head.seq, s.nextSeq) {
			trim := s.nextSeq - head.seq
			if uint32(len(data)) <= trim {
				a.overlapped(int64(len(data)))
				continue
			}
			a.overlapped(int64(trim))
			data = data[trim:]
		}
		a.deliverRun(tuple, s, data, 0)
	}
}

// skipGap jumps over the gap before the first pending segment.
//
//dpi:locked(mu)
func (a *Assembler) skipGap(tuple packet.FiveTuple, s *stream) {
	if len(s.pending) == 0 {
		return
	}
	head := s.pending[0]
	gap := int64(head.seq - s.nextSeq)
	a.GapsSkipped += gap
	a.met.gapBytes.Add(uint64(gap))
	s.pending = s.pending[1:]
	a.addBuffered(s, -len(head.data))
	s.nextSeq = head.seq
	a.deliverRun(tuple, s, head.data, gap)
	a.drainPending(tuple, s)
}

// shedTotal enforces the global buffer bound by discarding (without
// delivery) the backlog of least-recently-advanced streams until back
// under the cap.
//
//dpi:locked(mu)
func (a *Assembler) shedTotal() {
	for a.Buffered > int64(a.cfg.MaxBufferedTotal) {
		var victim *stream
		for s := a.front; s != nil; s = s.next {
			if s.buffered > 0 {
				victim = s
				break
			}
		}
		if victim == nil {
			return
		}
		a.ShedBytes += int64(victim.buffered)
		a.met.shedBytes.Add(uint64(victim.buffered))
		a.fl.Record(trace.EvShed, victim.tuple.FastHash(), uint64(victim.buffered))
		a.addBuffered(victim, -victim.buffered)
		victim.pending = nil
	}
}

// flushAll skips every remaining gap of a stream (used at FIN).
//
//dpi:locked(mu)
func (a *Assembler) flushAll(tuple packet.FiveTuple, s *stream) {
	for len(s.pending) > 0 {
		a.skipGap(tuple, s)
	}
}

// Flush forces out all pending data of one stream, skipping gaps.
func (a *Assembler) Flush(tuple packet.FiveTuple) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s := a.streams[tuple]; s != nil {
		a.flushAll(tuple, s)
	}
}

// Close drops every tracked stream and its backlog, releasing the
// assembler's gauge contributions. Buffered bytes are discarded.
func (a *Assembler) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for s := a.front; s != nil; {
		next := s.next
		a.forget(s)
		s = next
	}
}

// ActiveStreams reports the number of live (non-tombstoned) streams.
func (a *Assembler) ActiveStreams() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.streams) - a.tombstones
}

// TrackedStreams reports all table entries including tombstones.
func (a *Assembler) TrackedStreams() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.streams)
}

// Intrusive progress-list operations.

//dpi:locked(mu)
func (a *Assembler) unlink(s *stream) {
	if s.prev != nil {
		s.prev.next = s.next
	} else {
		a.front = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else {
		a.back = s.prev
	}
	s.prev, s.next = nil, nil
}

//dpi:locked(mu)
func (a *Assembler) pushBack(s *stream) {
	s.prev, s.next = a.back, nil
	if a.back != nil {
		a.back.next = s
	} else {
		a.front = s
	}
	a.back = s
}

//dpi:locked(mu)
func (a *Assembler) pushFront(s *stream) {
	s.prev, s.next = nil, a.front
	if a.front != nil {
		a.front.prev = s
	} else {
		a.back = s
	}
	a.front = s
}

//dpi:locked(mu)
func (a *Assembler) moveBack(s *stream) {
	if a.back == s {
		return
	}
	a.unlink(s)
	a.pushBack(s)
}

//dpi:locked(mu)
func (a *Assembler) moveFront(s *stream) {
	if a.front == s {
		return
	}
	a.unlink(s)
	a.pushFront(s)
}
