// Package regexengine implements the paper's two-stage regular
// expression handling (Section 5.3): sufficiently long literal strings
// ("anchors") that must appear in any match are extracted from each
// expression and folded into the exact-match pattern set; the full
// expression is evaluated by an off-the-shelf engine only when all of
// its anchors were found in the packet. Expressions from which no usable
// anchors can be extracted go on the anchor-poor list and are evaluated
// directly against every packet, the paper's parallel fallback path.
//
// The off-the-shelf engine here is the Go standard library's regexp
// package, standing in for PCRE (see DESIGN.md, substitutions).
package regexengine

import (
	"fmt"
	"regexp"
	"regexp/syntax"
)

// MinAnchorLen is the paper's extraction threshold: "Short strings of
// length less than 4 characters are not extracted."
const MinAnchorLen = 4

// Compiled is one expression managed by an Engine.
type Compiled struct {
	ID      int
	Expr    string
	Anchors []string // empty iff the expression is anchor-poor
	re      *regexp.Regexp
}

// AnchorPoor reports whether the expression contributed no anchors and
// therefore requires the direct-evaluation fallback.
func (c *Compiled) AnchorPoor() bool { return len(c.Anchors) == 0 }

// FindIndex returns the [start, end) byte offsets of the expression's
// first match in data, or nil.
func (c *Compiled) FindIndex(data []byte) []int { return c.re.FindIndex(data) }

// Engine holds the compiled expressions of one middlebox's pattern set.
type Engine struct {
	minAnchorLen int
	exprs        map[int]*Compiled
	poor         []*Compiled
}

// New returns an Engine extracting anchors of at least minAnchorLen
// bytes; minAnchorLen <= 0 selects the paper's default of 4.
func New(minAnchorLen int) *Engine {
	if minAnchorLen <= 0 {
		minAnchorLen = MinAnchorLen
	}
	return &Engine{minAnchorLen: minAnchorLen, exprs: make(map[int]*Compiled)}
}

// Add compiles expr under the given ID and returns its anchor set. An
// expression the engine cannot compile (PCRE constructs such as
// backreferences) is rejected; the caller decides whether to drop the
// rule or handle it out of band.
func (e *Engine) Add(id int, expr string) (*Compiled, error) {
	if _, dup := e.exprs[id]; dup {
		return nil, fmt.Errorf("regexengine: duplicate expression id %d", id)
	}
	re, err := regexp.Compile(expr)
	if err != nil {
		return nil, fmt.Errorf("regexengine: compile %q: %w", expr, err)
	}
	anchors, err := ExtractAnchors(expr, e.minAnchorLen)
	if err != nil {
		return nil, err
	}
	c := &Compiled{ID: id, Expr: expr, Anchors: anchors, re: re}
	e.exprs[id] = c
	if c.AnchorPoor() {
		e.poor = append(e.poor, c)
	}
	return c, nil
}

// Confirm evaluates expression id against payload. It reports false for
// unknown IDs.
func (e *Engine) Confirm(id int, payload []byte) bool {
	c, ok := e.exprs[id]
	return ok && c.re.Match(payload)
}

// Get returns the compiled expression with the given ID, or nil.
func (e *Engine) Get(id int) *Compiled { return e.exprs[id] }

// Len reports the number of managed expressions.
func (e *Engine) Len() int { return len(e.exprs) }

// NumAnchorPoor reports how many expressions need direct evaluation.
func (e *Engine) NumAnchorPoor() int { return len(e.poor) }

// ScanAnchorPoor evaluates every anchor-poor expression against payload
// and returns the IDs that match — the parallel path that runs alongside
// string matching for expressions with no usable anchors.
func (e *Engine) ScanAnchorPoor(payload []byte) []int {
	var ids []int
	for _, c := range e.poor {
		if c.re.Match(payload) {
			ids = append(ids, c.ID)
		}
	}
	return ids
}

// ExtractAnchors returns the literal strings of at least minLen bytes
// that must each appear in any match of expr. Literals under
// case-folding are not extracted (their exact bytes are not required),
// and neither are literals inside alternations or optional
// subexpressions.
func ExtractAnchors(expr string, minLen int) ([]string, error) {
	re, err := syntax.Parse(expr, syntax.Perl)
	if err != nil {
		return nil, fmt.Errorf("regexengine: parse %q: %w", expr, err)
	}
	var anchors []string
	collectAnchors(re.Simplify(), minLen, &anchors)
	// Simplify can expand bounded repeats into concatenations, yielding
	// the same literal several times; one occurrence check suffices.
	seen := make(map[string]bool, len(anchors))
	dedup := anchors[:0]
	for _, a := range anchors {
		if !seen[a] {
			seen[a] = true
			dedup = append(dedup, a)
		}
	}
	if len(dedup) == 0 {
		return nil, nil
	}
	return dedup, nil
}

// collectAnchors walks only the subtrees guaranteed to occur at least
// once in every match.
func collectAnchors(re *syntax.Regexp, minLen int, out *[]string) {
	switch re.Op {
	case syntax.OpLiteral:
		if re.Flags&syntax.FoldCase != 0 {
			return
		}
		s := string(re.Rune)
		if len(s) >= minLen {
			*out = append(*out, s)
		}
	case syntax.OpConcat, syntax.OpCapture:
		for _, sub := range re.Sub {
			collectAnchors(sub, minLen, out)
		}
	case syntax.OpPlus:
		// The body occurs at least once.
		collectAnchors(re.Sub[0], minLen, out)
	case syntax.OpRepeat:
		if re.Min >= 1 {
			collectAnchors(re.Sub[0], minLen, out)
		}
	default:
		// Alternations, stars, quests, char classes: nothing is
		// guaranteed to appear.
	}
}
