package regexengine

import (
	"reflect"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

func TestExtractAnchorsPaperExample(t *testing.T) {
	// The paper's worked example (Section 5.3): from
	// regular\s*expression\s*\d+ the anchors "regular" and
	// "expression" are extracted.
	got, err := ExtractAnchors(`regular\s*expression\s*\d+`, MinAnchorLen)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"regular", "expression"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("anchors = %q, want %q", got, want)
	}
}

func TestExtractAnchorsCases(t *testing.T) {
	for _, tc := range []struct {
		expr string
		want []string
	}{
		{`abc`, nil},               // below threshold
		{`abcd`, []string{"abcd"}}, // exactly threshold
		{`foo(bar)?baz`, nil},      // optional group, short outers
		{`headvalue(opt)?`, []string{"headvalue"}},
		{`(attack)+`, []string{"attack"}}, // plus guarantees one occurrence
		{`(attack)*`, nil},                // star guarantees nothing
		{`(attack){2,5}`, []string{"attack"}},
		{`(attack){0,5}`, nil},
		{`evil|good`, nil}, // alternation: neither is required
		{`prefix(evil|good)suffix`, []string{"prefix", "suffix"}},
		{`User-Agent: [a-z]+ botnet`, []string{"User-Agent: ", " botnet"}},
		{`(?i)insensitive`, nil}, // folded literal bytes not required
		{`capture(inner)group`, []string{"capture", "inner", "group"}},
	} {
		got, err := ExtractAnchors(tc.expr, MinAnchorLen)
		if err != nil {
			t.Errorf("ExtractAnchors(%q): %v", tc.expr, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ExtractAnchors(%q) = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestExtractAnchorsParseError(t *testing.T) {
	if _, err := ExtractAnchors(`ab(`, MinAnchorLen); err == nil {
		t.Error("bad expression accepted")
	}
}

// TestAnchorsAreNecessary is the extraction soundness property: any
// input matched by the expression must contain every extracted anchor.
// (This is what lets the DPI service skip the expensive engine when an
// anchor is missing.)
func TestAnchorsAreNecessary(t *testing.T) {
	exprs := []string{
		`regular\s*expression\s*\d+`,
		`GET /admin/[a-z]{1,8}\.php\?id=\d+`,
		`(attack)+vector`,
		`prefix(evil|good)+suffix`,
		`Content-Length: \d+`,
	}
	inputs := []string{
		"regular   expression 42",
		"regularexpression9",
		"GET /admin/users.php?id=7",
		"attackattackvector",
		"prefixevilgoodevilsuffix",
		"Content-Length: 1234",
		"unrelated text with GET /admin/x.php?id=1 embedded",
		"no match at all here",
	}
	for _, es := range exprs {
		re := regexp.MustCompile(es)
		anchors, err := ExtractAnchors(es, MinAnchorLen)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range inputs {
			if !re.MatchString(in) {
				continue
			}
			for _, a := range anchors {
				if !strings.Contains(in, a) {
					t.Errorf("expr %q matches %q but anchor %q absent", es, in, a)
				}
			}
		}
	}
}

// TestAnchorsNecessaryProperty fuzzes the soundness property with
// machine-generated inputs: wherever the regexp matches, all anchors
// must be present.
func TestAnchorsNecessaryProperty(t *testing.T) {
	expr := `begin[a-c]{0,3}middlepart\d*finish`
	re := regexp.MustCompile(expr)
	anchors, err := ExtractAnchors(expr, MinAnchorLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(anchors) != 3 {
		t.Fatalf("anchors = %q", anchors)
	}
	f := func(pre, mid1, mid2 string, digits uint8) bool {
		in := pre + "begin" + mid1[:min(len(mid1), 3)] + "middlepart" +
			strings.Repeat("7", int(digits%4)) + "finish" + mid2
		if !re.MatchString(in) {
			// Construction can break the match (e.g. mid1 contains
			// chars outside [a-c]); the property is vacuous then.
			return true
		}
		for _, a := range anchors {
			if !strings.Contains(in, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEngineAddConfirm(t *testing.T) {
	e := New(0)
	c, err := e.Add(1, `GET /evil/[a-z]+\.cgi`)
	if err != nil {
		t.Fatal(err)
	}
	if c.AnchorPoor() {
		t.Errorf("anchors = %q, expected some", c.Anchors)
	}
	if !e.Confirm(1, []byte("GET /evil/run.cgi HTTP/1.1")) {
		t.Error("Confirm missed a real match")
	}
	if e.Confirm(1, []byte("GET /evil/RUN.CGI")) {
		t.Error("Confirm matched a non-match")
	}
	if e.Confirm(99, []byte("anything")) {
		t.Error("Confirm on unknown ID")
	}
	if e.Get(1) != c || e.Get(2) != nil || e.Len() != 1 {
		t.Error("Get/Len bookkeeping wrong")
	}
}

func TestEngineDuplicateAndBadExpr(t *testing.T) {
	e := New(0)
	if _, err := e.Add(1, `good\d+expr`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add(1, `another`); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := e.Add(2, `broken(`); err == nil {
		t.Error("uncompilable expression accepted")
	}
}

func TestEngineAnchorPoorPath(t *testing.T) {
	e := New(0)
	// Pure character-class expression: nothing extractable.
	if _, err := e.Add(1, `[0-9]{16}`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add(2, `cardnumber=[0-9]+`); err != nil {
		t.Fatal(err)
	}
	if e.NumAnchorPoor() != 1 {
		t.Fatalf("NumAnchorPoor = %d, want 1", e.NumAnchorPoor())
	}
	got := e.ScanAnchorPoor([]byte("pan=4111111111111111;"))
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("ScanAnchorPoor = %v, want [1]", got)
	}
	if got := e.ScanAnchorPoor([]byte("too short 123")); got != nil {
		t.Errorf("ScanAnchorPoor on clean payload = %v", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
