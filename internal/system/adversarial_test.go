package system

import (
	"math/rand"
	"testing"

	"dpiservice/internal/ctlproto"
	"dpiservice/internal/middlebox"
	"dpiservice/internal/packet"
	"dpiservice/internal/reassembly"
	"dpiservice/internal/sdn"
	"dpiservice/internal/traffic"
)

// TestAdversarialReassemblyE2E sends a full adversarial corpus —
// conflicting overlaps, checksum/TTL/evil-bit poison, reordering and
// retransmission floods — from a real host through the fabric to a
// reassembling DPI instance, and checks that (a) every pattern planted
// outside attacked ranges is still reported to the consumer middlebox,
// and (b) the evasion attempt is visible in the instance's exported
// obs counters, exactly as an operator would see it at /metrics.
func TestAdversarialReassemblyE2E(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()

	pats := []string{"adv-needle-pattern"}
	idsLogic := middlebox.NewCountLogic()
	if _, err := tb.AddConsumerMbox("ids-1", "ids",
		ctlproto.Register{Stateful: true, ReadOnly: true}, pats, idsLogic); err != nil {
		t.Fatal(err)
	}
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}
	tag, err := tb.TSA.InstallChainWithDPI(spec, "dpi-1")
	if err != nil {
		t.Fatal(err)
	}
	dpi, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false)
	if err != nil {
		t.Fatal(err)
	}
	dpi.SetReassembly(tag, true)
	dpi.SetNormalization(10, true)
	dpi.SetReassemblyConfig(reassembly.Config{Policy: reassembly.PolicyLast, DropSuspicious: true})

	rng := rand.New(rand.NewSource(31))
	ref := traffic.NewGenerator(traffic.Config{Seed: 32, Mix: traffic.HTTPMix}).PayloadN(4096)
	sites := traffic.Plant(rng, ref, pats, 8)
	adv := traffic.Adversarial(rng, ref, traffic.AdvConfig{Fin: true})
	noisy := traffic.MergeRanges(append(append([]traffic.Range{}, adv.Ambiguous...), adv.Poisoned...))
	clean := 0
	for _, s := range sites {
		if !traffic.OverlapsAny(noisy, s) {
			clean++
		}
	}
	if clean == 0 {
		t.Fatal("corpus left no pattern site outside attacked ranges")
	}

	tuple := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 7171, DstPort: 80, Protocol: packet.IPProtoTCP}
	var fb traffic.FrameBuilder
	const isn = 4000
	tb.Src.Send(fb.BuildSyn(tuple, isn))
	for _, seg := range adv.Segments {
		o := traffic.AdvFrameOpts{Checksum: traffic.ChecksumGood, Fin: seg.Fin}
		switch {
		case seg.BadChecksum:
			o.Checksum = traffic.ChecksumBad
		case seg.Evil:
			o.Evil = true
		case seg.ShortTTL:
			o.TTL = 2
		}
		tb.Src.Send(fb.BuildAdv(tuple, isn+1+uint32(seg.Offset), seg.Data, o))
	}

	waitFor(t, "clean pattern sites reported through the fabric", func() bool {
		return idsLogic.Total() >= uint64(clean)
	})

	// The evasion attempt is visible in the instance's metrics registry.
	snap := dpi.Engine().Metrics().Snapshot()
	for _, name := range []string{
		"reassembly.drop_bad_checksum",
		"reassembly.suspicious_segments",
		"reassembly.overlap_conflicts",
	} {
		if v, ok := snap.Counter(name); !ok || v == 0 {
			t.Errorf("counter %s = %d (ok=%v), want > 0", name, v, ok)
		}
	}
	if v, _ := snap.Counter("reassembly.delivered_bytes"); v != uint64(len(ref)) {
		t.Errorf("delivered_bytes = %d, want exactly %d (the whole genuine stream)", v, len(ref))
	}
}
