package system

import (
	"time"

	"dpiservice/internal/controller"
)

// This file wires the controller's failure domain (controller/health.go)
// to the data plane: lease renewals stand in for the dpinstance daemon's
// heartbeats, and failover plans are executed by the TSA's flow-mod
// rewrite. Re-steered flows restart their scan state on the survivor —
// the paper's per-flow DPI state (a DFA state and a stream offset,
// Section 4.3) lives on the instance and dies with it.

// FailoverEvent records one executed failover: the controller's plan and
// the TSA's execution result.
type FailoverEvent struct {
	Plan  controller.Failover
	Moved int // flows re-steered by the TSA
	Err   error
}

// EnableFailover installs the lease timings, connects the controller's
// failover plans to the TSA's flow-mod rewrite, and starts the lease
// monitor sweeping every sweep. Executed failovers are delivered on the
// returned channel (buffered; overflow is dropped, events are for test
// observation). The stop function halts the monitor.
func (tb *Testbed) EnableFailover(cfg controller.LeaseConfig, sweep time.Duration) (events <-chan FailoverEvent, stop func()) {
	ch := make(chan FailoverEvent, 16)
	tb.DPICtl.ConfigureLeases(cfg)
	tb.DPICtl.OnFailover(func(plan controller.Failover) {
		moved, err := tb.TSA.FailoverInstance(plan.Dead, plan.Reassigned)
		select {
		case ch <- FailoverEvent{Plan: plan, Moved: moved, Err: err}:
		default:
		}
	})
	return ch, tb.DPICtl.StartLeaseMonitor(sweep)
}

// StartLease renews the named instance's lease every interval until the
// returned stop function is called. Netsim instance nodes are in-process
// and do not speak ctlproto, so renewal is a direct controller call —
// but it is gated on the chaos layer: a crashed node (Net.CrashNode)
// stops renewing, exactly as a dead VM's heartbeats stop reaching the
// controller. A rejected renewal (lease already expired) is left for the
// operator: the instance must be explicitly re-admitted via AddInstance,
// mirroring the daemon's re-hello.
func (tb *Testbed) StartLease(id string, every time.Duration) (stop func()) {
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if tb.Net.NodeDown(id) {
					continue
				}
				_ = tb.DPICtl.RenewLease(id)
			}
		}
	}()
	return func() {
		close(done)
		<-stopped
	}
}
