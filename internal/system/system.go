// Package system wires the full DPI-as-a-service stack together — DPI
// controller, SDN switch and TSA, DPI service instances, and
// result-consuming middleboxes on the virtual network — and provides
// the topology builders shared by the integration tests, the examples
// and the benchmark harness. It corresponds to the complete prototype
// of Section 6.1.
package system

import (
	"fmt"

	"dpiservice/internal/controller"
	"dpiservice/internal/core"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/middlebox"
	"dpiservice/internal/netsim"
	"dpiservice/internal/openflow"
	"dpiservice/internal/packet"
	"dpiservice/internal/patterns"
	"dpiservice/internal/sdn"
)

// Testbed is the assembled experimental topology: the paper's basic
// setup of user hosts, middlebox hosts and DPI service instance hosts
// around a single switch, with the TSA steering traffic (Section 6.1).
type Testbed struct {
	Net    *netsim.Network
	Switch *openflow.Switch
	TSA    *sdn.TSA
	DPICtl *controller.Controller

	Src, Dst *netsim.Host
	nextIP   byte
}

// NewTestbed builds the empty fabric with src and dst user hosts.
func NewTestbed() (*Testbed, error) {
	tb := &Testbed{
		Net:    netsim.NewNetwork(),
		Switch: openflow.NewSwitch("s1"),
		DPICtl: controller.New(),
		nextIP: 10,
	}
	tb.TSA = sdn.NewTSA(tb.Switch, tb.DPICtl)
	if err := tb.Net.AddNode(tb.Switch); err != nil {
		return nil, err
	}
	var err error
	if tb.Src, err = tb.AddHost("src"); err != nil {
		return nil, err
	}
	if tb.Dst, err = tb.AddHost("dst"); err != nil {
		return nil, err
	}
	return tb, nil
}

// AddHost attaches a new host to the switch.
func (tb *Testbed) AddHost(name string) (*netsim.Host, error) {
	tb.nextIP++
	h := netsim.NewHost(name,
		packet.MAC{2, 0, 0, 0, 0, tb.nextIP},
		packet.IP4{10, 0, 0, tb.nextIP})
	if err := tb.Net.AddNode(h); err != nil {
		return nil, err
	}
	if err := tb.Net.Connect(h, tb.Switch, netsim.LinkOpts{}); err != nil {
		return nil, err
	}
	return h, nil
}

// AddConsumerMbox registers a middlebox with the DPI controller, adds
// its patterns, and attaches a result-consuming node for it.
func (tb *Testbed) AddConsumerMbox(id, typ string, reg ctlproto.Register, pats []string, logic middlebox.Logic) (*middlebox.ConsumerNode, error) {
	reg.MboxID, reg.Type = id, typ
	set, err := tb.DPICtl.Register(reg)
	if err != nil {
		return nil, err
	}
	defs := make([]ctlproto.PatternDef, len(pats))
	for i, p := range pats {
		defs[i] = ctlproto.PatternDef{RuleID: i, Content: []byte(p)}
	}
	if err := tb.DPICtl.AddPatterns(id, defs); err != nil {
		return nil, err
	}
	host, err := tb.AddHost(id)
	if err != nil {
		return nil, err
	}
	node := middlebox.NewConsumerNode(host, uint8(set), logic)
	// The registered degraded mode takes effect immediately; the janitor
	// that applies it to timed-out pairs is armed separately
	// (SetLossPolicy with a timeout) because the right timeout is
	// deployment-specific.
	mode := reg.FailMode
	if mode == "" {
		mode = ctlproto.DefaultFailMode(reg.ReadOnly)
	}
	node.SetLossPolicy(middlebox.PolicyFromFailMode(mode), 0)
	return node, nil
}

// AddDPIInstance builds an engine from the controller's current state
// (serving the given chains; nil = all) and attaches it as an instance
// node. Call after all middleboxes and chains are defined.
func (tb *Testbed) AddDPIInstance(id string, tags []uint16, dedicated bool) (*middlebox.DPINode, error) {
	cfg, err := tb.DPICtl.InstanceConfig(tags, dedicated)
	if err != nil {
		return nil, err
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	host, err := tb.AddHost(id)
	if err != nil {
		return nil, err
	}
	tb.DPICtl.AddInstance(id, tags, dedicated)
	return middlebox.NewDPINode(id, host, engine), nil
}

// AddParallelDPIInstance is AddDPIInstance plus a scan worker pool of
// the given size on the node: packets of different flows scan on up to
// `workers` cores inside one instance — the in-process equivalent of
// the paper's one-VM-per-core deployment (Section 6.2). Call
// node.SetWorkers(0) to stop the pool when tearing the testbed down.
func (tb *Testbed) AddParallelDPIInstance(id string, tags []uint16, dedicated bool, workers int) (*middlebox.DPINode, error) {
	node, err := tb.AddDPIInstance(id, tags, dedicated)
	if err != nil {
		return nil, err
	}
	node.SetWorkers(workers)
	return node, nil
}

// AddLegacyMbox registers a middlebox and attaches a self-scanning
// legacy node for it (the Figure 1(a) baseline). The chain tag must
// already exist.
func (tb *Testbed) AddLegacyMbox(id, typ string, tag uint16, pats []string, logic middlebox.Logic) (*middlebox.LegacyNode, error) {
	cfg := core.Config{
		Profiles: []core.Profile{{ID: 0, Name: typ, Patterns: patterns.FromStrings(typ, pats)}},
		Chains:   map[uint16][]int{tag: {0}},
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	host, err := tb.AddHost(id)
	if err != nil {
		return nil, err
	}
	return middlebox.NewLegacyNode(host, engine, tag, 0, logic), nil
}

// UpdateInstance rebuilds an instance node's engine from the
// controller's current state — the runtime pattern-update path
// (Section 4.1: patterns are added and removed with dedicated messages,
// and the controller re-initializes the affected instances).
func (tb *Testbed) UpdateInstance(node *middlebox.DPINode, tags []uint16, dedicated bool) error {
	cfg, err := tb.DPICtl.InstanceConfig(tags, dedicated)
	if err != nil {
		return err
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		return err
	}
	node.SwapEngine(engine)
	return nil
}

// RegisterLegacy records a legacy middlebox with the DPI controller so
// chains can reference it (no patterns are pushed: it scans for
// itself).
func (tb *Testbed) RegisterLegacy(id, typ string) error {
	_, err := tb.DPICtl.Register(ctlproto.Register{MboxID: id, Type: typ})
	return err
}

// Stop tears the fabric down.
func (tb *Testbed) Stop() { tb.Net.Stop() }

// String describes the testbed.
func (tb *Testbed) String() string {
	return fmt.Sprintf("testbed{flows=%d chains=%v}", tb.Switch.NumFlows(), tb.DPICtl.ChainTags())
}
