package system

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"dpiservice/internal/ctlproto"
	"dpiservice/internal/middlebox"
	"dpiservice/internal/obs"
	"dpiservice/internal/packet"
	"dpiservice/internal/sdn"
	"dpiservice/internal/traffic"
)

// scrape fetches and decodes one /metrics snapshot over HTTP.
func scrape(t *testing.T, addr string) *obs.Snapshot {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var s obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return &s
}

// TestObservabilityEndToEnd runs a full service chain with a live debug
// listener on the DPI instance's registry and scrapes it while traffic
// flows: counters must be monotone between scrapes, and after the
// system quiesces the scraped values must agree with the engine's own
// telemetry snapshot. Run under -race this also proves the scrape path
// (atomic reads under the registry lock) races with neither the scan
// hot path nor the node's worker pool.
func TestObservabilityEndToEnd(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()

	idsLogic := middlebox.NewCountLogic()
	if _, err := tb.AddConsumerMbox("ids-1", "ids",
		ctlproto.Register{ReadOnly: true},
		[]string{"attack-sig", "/etc/passwd"}, idsLogic); err != nil {
		t.Fatal(err)
	}
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}
	tag, err := tb.TSA.InstallChainWithDPI(spec, "dpi-1")
	if err != nil {
		t.Fatal(err)
	}
	node, err := tb.AddParallelDPIInstance("dpi-1", []uint16{tag}, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer node.SetWorkers(0)

	reg := node.Engine().Metrics()
	srv, err := obs.StartDebugServer("127.0.0.1:0", obs.NewDebugMux(reg, obs.Health{Service: "dpi-node"}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var fb traffic.FrameBuilder
	payloads := [][]byte{
		[]byte("a perfectly clean payload with nothing of note"),
		[]byte("contains attack-sig right here"),
		[]byte("clean again and again and again"),
	}
	const total = 120
	send := func(from, to int) {
		for i := from; i < to; i++ {
			tuple := packet.FiveTuple{
				Src: tb.Src.IP, Dst: tb.Dst.IP,
				SrcPort: uint16(40000 + i%8), DstPort: 80,
				Protocol: packet.IPProtoTCP,
			}
			if !tb.Src.Send(fb.Build(tuple, payloads[i%len(payloads)])) {
				t.Fatal("send failed")
			}
		}
	}

	// First half, scrape, second half, scrape: counters are monotone.
	send(0, total/2)
	s1 := scrape(t, srv.Addr())
	send(total/2, total)
	s2 := scrape(t, srv.Addr())
	for _, name := range []string{"core.packets", "core.bytes", "dpinode.frames"} {
		v1, ok1 := s1.Counter(name)
		v2, ok2 := s2.Counter(name)
		if !ok1 || !ok2 {
			t.Fatalf("%s missing from scrape (%v, %v)", name, ok1, ok2)
		}
		if v2 < v1 {
			t.Errorf("%s went backwards across scrapes: %d -> %d", name, v1, v2)
		}
	}

	// Quiesce: every data packet reaches dst.
	var dataAtDst int
	waitFor(t, fmt.Sprintf("%d data packets at dst", total), func() bool {
		for {
			select {
			case f := <-tb.Dst.Inbox():
				var s packet.Summary
				if packet.Summarize(f, &s) == nil && !s.IsReport {
					dataAtDst++
				}
			default:
				return dataAtDst == total
			}
		}
	})

	// The scraped view must agree with the engine's own telemetry.
	final := scrape(t, srv.Addr())
	snap := node.Engine().Snapshot()
	if got, _ := final.Counter("core.packets"); got != snap.Packets {
		t.Errorf("scraped core.packets = %d, engine telemetry says %d", got, snap.Packets)
	}
	if got, _ := final.Counter("core.packets"); got != total {
		t.Errorf("core.packets = %d, want %d", got, total)
	}
	if got, _ := final.Counter("core.bytes"); got != snap.Bytes {
		t.Errorf("scraped core.bytes = %d, engine telemetry says %d", got, snap.Bytes)
	}
	if got, _ := final.Counter("core.matches"); got != snap.Matches {
		t.Errorf("scraped core.matches = %d, engine telemetry says %d", got, snap.Matches)
	}
	if got, _ := final.Counter("core.matches"); got == 0 {
		t.Error("no matches counted despite attack-sig packets")
	}
	// Every inspected packet lands in the payload-size histogram.
	h, ok := final.Histogram("core.payload_bytes")
	if !ok {
		t.Fatal("core.payload_bytes histogram missing")
	}
	if h.Count != snap.Packets {
		t.Errorf("payload_bytes histogram count = %d, want %d packets", h.Count, snap.Packets)
	}
	var bucketSum uint64
	for _, b := range h.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != h.Count {
		t.Errorf("histogram buckets sum to %d, count is %d", bucketSum, h.Count)
	}
	// The worker pool feeds the scan-latency histogram.
	if h, ok := final.Histogram("core.scan_ns"); !ok || h.Count == 0 {
		t.Errorf("core.scan_ns not populated via the worker pool: %+v (present=%v)", h, ok)
	}
	if frames, _ := final.Counter("dpinode.frames"); frames < total {
		t.Errorf("dpinode.frames = %d, want >= %d", frames, total)
	}

	// Health endpoint answers while the system is live.
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", resp.StatusCode)
	}
}
