package system

import (
	"bytes"
	"testing"
	"time"

	"dpiservice/internal/ctlproto"
	"dpiservice/internal/mca2"
	"dpiservice/internal/middlebox"
	"dpiservice/internal/packet"
	"dpiservice/internal/sdn"
	"dpiservice/internal/traffic"
)

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestServiceChainEndToEnd is the Figure 1(b)/Figure 2(b) pipeline:
// src -> DPI service -> IDS -> AV -> dst, with the DPI instance
// scanning once for both middleboxes.
func TestServiceChainEndToEnd(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()

	idsLogic := middlebox.NewCountLogic()
	avLogic := middlebox.NewCountLogic()
	ids, err := tb.AddConsumerMbox("ids-1", "ids",
		ctlproto.Register{Stateful: true, ReadOnly: true},
		[]string{"attack-sig", "/etc/passwd"}, idsLogic)
	if err != nil {
		t.Fatal(err)
	}
	av, err := tb.AddConsumerMbox("av-1", "av", ctlproto.Register{},
		[]string{"malware-body", "attack-sig"}, avLogic)
	if err != nil {
		t.Fatal(err)
	}
	_ = ids
	_ = av

	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1", "av-1"}}
	// Define the DPI instance first so chain tags exist when rules are
	// laid. Order in this API: chain tags come from InstallChainWithDPI,
	// which defines the chain; instance config needs the chain... so
	// install the chain, then create the instance serving it.
	tag, err := tb.TSA.InstallChainWithDPI(spec, "dpi-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false); err != nil {
		t.Fatal(err)
	}

	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{
		Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 40000, DstPort: 80,
		Protocol: packet.IPProtoTCP,
	}
	payloads := [][]byte{
		[]byte("a perfectly clean payload with nothing of note"),
		[]byte("contains attack-sig right here"),
		[]byte("cat /etc/passwd and also malware-body twice malware-body"),
		[]byte("clean again"),
	}
	for _, p := range payloads {
		if !tb.Src.Send(fb.Build(tuple, p)) {
			t.Fatal("send failed")
		}
	}

	// dst receives all 4 data packets (reports are consumed/popped
	// along the way; any report reaching dst is ignorable — count only
	// data frames).
	var dataAtDst [][]byte
	waitFor(t, "4 data packets at dst", func() bool {
		for {
			select {
			case f := <-tb.Dst.Inbox():
				var s packet.Summary
				if packet.Summarize(f, &s) == nil && !s.IsReport {
					dataAtDst = append(dataAtDst, f)
				}
			default:
				return len(dataAtDst) == 4
			}
		}
	})

	// Payload integrity: L7 content arrives unmodified.
	for i, f := range dataAtDst {
		var s packet.Summary
		if err := packet.Summarize(f, &s); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s.Payload, payloads[i]) {
			t.Errorf("packet %d payload mutated: %q", i, s.Payload)
		}
		if s.Tagged {
			t.Errorf("packet %d still tagged at dst", i)
		}
	}
	// Clean packets must be entirely unmarked.
	var s packet.Summary
	_ = packet.Summarize(dataAtDst[0], &s)
	if s.ECNMarked {
		t.Error("clean packet carries the match mark")
	}

	// IDS saw attack-sig (pkt 2) and /etc/passwd (pkt 3) = 2 rules.
	waitFor(t, "IDS count", func() bool { return idsLogic.Total() == 2 })
	// AV saw malware-body twice and attack-sig once = 3.
	waitFor(t, "AV count", func() bool { return avLogic.Total() == 3 })

	// The DPI instance scanned each packet exactly once.
	if ids.DataPackets.Load() != 4 || av.DataPackets.Load() != 4 {
		t.Errorf("middleboxes saw %d/%d data packets, want 4/4",
			ids.DataPackets.Load(), av.DataPackets.Load())
	}
}

// TestLegacyChainEquivalence runs the same traffic through the
// Figure 1(a) baseline (each middlebox scans for itself) and checks the
// middleboxes reach identical conclusions.
func TestLegacyChainEquivalence(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()

	if err := tb.RegisterLegacy("ids-1", "ids"); err != nil {
		t.Fatal(err)
	}
	if err := tb.RegisterLegacy("av-1", "av"); err != nil {
		t.Fatal(err)
	}
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1", "av-1"}}
	tag, err := tb.TSA.InstallChainLegacy(spec)
	if err != nil {
		t.Fatal(err)
	}
	idsLogic := middlebox.NewCountLogic()
	avLogic := middlebox.NewCountLogic()
	if _, err := tb.AddLegacyMbox("ids-1", "ids", tag, []string{"attack-sig", "/etc/passwd"}, idsLogic); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddLegacyMbox("av-1", "av", tag, []string{"malware-body", "attack-sig"}, avLogic); err != nil {
		t.Fatal(err)
	}

	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 40000, DstPort: 80, Protocol: packet.IPProtoTCP}
	tb.Src.Send(fb.Build(tuple, []byte("contains attack-sig right here")))
	tb.Src.Send(fb.Build(tuple, []byte("cat /etc/passwd and malware-body")))

	waitFor(t, "dst receives", func() bool { return tb.Dst.Received() == 2 })
	waitFor(t, "IDS legacy count", func() bool { return idsLogic.Total() == 2 })
	waitFor(t, "AV legacy count", func() bool { return avLogic.Total() == 2 })
}

// TestResultOnlyChain exercises the third result-passing option of
// Section 4.2: a read-only IDS receives only result packets while data
// goes straight to the destination.
func TestResultOnlyChain(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()

	idsLogic := middlebox.NewCountLogic()
	ids, err := tb.AddConsumerMbox("ids-1", "ids",
		ctlproto.Register{ReadOnly: true}, []string{"attack-sig"}, idsLogic)
	if err != nil {
		t.Fatal(err)
	}
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}
	tag, err := tb.TSA.InstallResultOnlyChain(spec, "dpi-1")
	if err != nil {
		t.Fatal(err)
	}
	dpi, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false)
	if err != nil {
		t.Fatal(err)
	}
	dpi.SetResultOnly(tag, true)

	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 40000, DstPort: 80, Protocol: packet.IPProtoTCP}
	tb.Src.Send(fb.Build(tuple, []byte("clean one")))
	tb.Src.Send(fb.Build(tuple, []byte("with attack-sig inside")))

	waitFor(t, "dst gets both data packets", func() bool { return tb.Dst.Received() == 2 })
	waitFor(t, "IDS result", func() bool { return idsLogic.Total() == 1 })
	if ids.DataPackets.Load() != 0 {
		t.Errorf("read-only IDS received %d data packets, want 0", ids.DataPackets.Load())
	}
	if ids.ResultPackets.Load() != 1 {
		t.Errorf("IDS received %d result packets, want 1", ids.ResultPackets.Load())
	}
}

// TestBalancedChainMultiplexing is the Figure 3(b) scenario: flows are
// multiplexed across two DPI service instances by the TSA's reactive
// per-flow rules.
func TestBalancedChainMultiplexing(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()

	counter := middlebox.NewCountLogic()
	if _, err := tb.AddConsumerMbox("ids-1", "ids", ctlproto.Register{}, []string{"needle-pattern"}, counter); err != nil {
		t.Fatal(err)
	}
	tb.Switch.SetController(tb.TSA)
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}
	tag, err := tb.TSA.InstallBalancedChain(spec, []string{"dpi-1", "dpi-2"})
	if err != nil {
		t.Fatal(err)
	}
	dpi1, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false)
	if err != nil {
		t.Fatal(err)
	}
	dpi2, err := tb.AddDPIInstance("dpi-2", []uint16{tag}, false)
	if err != nil {
		t.Fatal(err)
	}

	gen := traffic.NewGenerator(traffic.Config{Seed: 1})
	flows := gen.Flows(8, 3)
	var fb traffic.FrameBuilder
	total := 0
	for _, fl := range flows {
		tuple := fl.Tuple
		tuple.Src, tuple.Dst = tb.Src.IP, tb.Dst.IP
		for _, p := range fl.Payloads {
			tb.Src.Send(fb.Build(tuple, p))
			total++
		}
	}
	waitFor(t, "all packets at dst", func() bool { return int(tb.Dst.Received()) >= total })

	s1 := dpi1.Engine().Snapshot()
	s2 := dpi2.Engine().Snapshot()
	if s1.Packets+s2.Packets != uint64(total) {
		t.Errorf("instances scanned %d+%d, want %d", s1.Packets, s2.Packets, total)
	}
	// Round-robin over 8 flows x 3 pkts: exactly half the flows each.
	if s1.Packets != 12 || s2.Packets != 12 {
		t.Errorf("flow split %d/%d, want 12/12", s1.Packets, s2.Packets)
	}
	// Flow affinity: all packets of a flow hit one instance.
	for _, fl := range flows {
		tuple := fl.Tuple
		tuple.Src, tuple.Dst = tb.Src.IP, tb.Dst.IP
		if _, ok := tb.TSA.InstanceOf(tuple); !ok {
			t.Errorf("flow %v not pinned", tuple)
		}
	}
}

// TestMCA2AttackMitigation drives the Figure 6 scenario: an attack flow
// is detected from instance telemetry and migrated to a dedicated
// instance running the compact automaton.
func TestMCA2AttackMitigation(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()

	pats := []string{"attack-sig", "evil-payload", "malware-body"}
	if _, err := tb.AddConsumerMbox("ids-1", "ids", ctlproto.Register{}, pats, middlebox.NewCountLogic()); err != nil {
		t.Fatal(err)
	}
	tb.Switch.SetController(tb.TSA)
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}
	tag, err := tb.TSA.InstallBalancedChain(spec, []string{"dpi-1"})
	if err != nil {
		t.Fatal(err)
	}
	dpi1, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false)
	if err != nil {
		t.Fatal(err)
	}
	dedicated, err := tb.AddDPIInstance("dpi-ded", []uint16{tag}, true)
	if err != nil {
		t.Fatal(err)
	}
	monitor := mca2.New(tb.DPICtl, mca2.Config{MinFlowBytes: 256, MatchDensity: 0.01})

	// A benign flow and an attack flow.
	benign := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 1000, DstPort: 80, Protocol: packet.IPProtoTCP}
	attack := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 6666, DstPort: 80, Protocol: packet.IPProtoTCP}
	atkGen := traffic.NewGenerator(traffic.Config{Seed: 2, Mix: traffic.AttackMix, InjectPatterns: pats})
	var fb traffic.FrameBuilder
	for i := 0; i < 10; i++ {
		tb.Src.Send(fb.Build(benign, []byte("just an ordinary web page body here")))
		tb.Src.Send(fb.Build(attack, atkGen.PayloadN(600)))
	}
	waitFor(t, "initial traffic scanned", func() bool {
		return dpi1.Engine().Snapshot().Packets >= 20
	})

	// Telemetry export and evaluation.
	if err := tb.DPICtl.ReportTelemetry(dpi1.Telemetry(4)); err != nil {
		t.Fatal(err)
	}
	decisions, err := monitor.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 {
		t.Fatalf("decisions = %+v, want the attack flow only", decisions)
	}
	flow, ok := middlebox.TupleOf(decisions[0].Flow)
	if !ok || flow != attack {
		t.Fatalf("decided flow = %v", flow)
	}
	if decisions[0].To != "dpi-ded" {
		t.Fatalf("target = %s", decisions[0].To)
	}

	// Execute the migration via the TSA and keep attacking.
	if err := tb.TSA.MigrateFlow(tag, spec, flow, "dpi-ded"); err != nil {
		t.Fatal(err)
	}
	before := dedicated.Engine().Snapshot().Packets
	for i := 0; i < 5; i++ {
		tb.Src.Send(fb.Build(attack, atkGen.PayloadN(600)))
	}
	waitFor(t, "attack packets on dedicated instance", func() bool {
		return dedicated.Engine().Snapshot().Packets >= before+5
	})
	// The regular instance no longer sees the attack flow.
	p1 := dpi1.Engine().Snapshot().Packets
	tb.Src.Send(fb.Build(attack, atkGen.PayloadN(600)))
	waitFor(t, "migrated packet delivered", func() bool {
		return dedicated.Engine().Snapshot().Packets >= before+6
	})
	if dpi1.Engine().Snapshot().Packets != p1 {
		t.Error("regular instance still receives the migrated flow")
	}
}

// TestInlineShimChain exercises the FIRST result-passing option of
// Section 4.2: results ride the data packet as an NSH-like shim; the
// last middlebox strips it and the destination receives the original
// packet.
func TestInlineShimChain(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()

	idsLogic := middlebox.NewCountLogic()
	avLogic := middlebox.NewCountLogic()
	ids, err := tb.AddConsumerMbox("ids-1", "ids", ctlproto.Register{},
		[]string{"attack-sig"}, idsLogic)
	if err != nil {
		t.Fatal(err)
	}
	av, err := tb.AddConsumerMbox("av-1", "av", ctlproto.Register{},
		[]string{"malware-body"}, avLogic)
	if err != nil {
		t.Fatal(err)
	}
	_ = ids
	av.StripShim = true // last middlebox removes the layer

	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1", "av-1"}}
	tag, err := tb.TSA.InstallChainWithDPI(spec, "dpi-1")
	if err != nil {
		t.Fatal(err)
	}
	dpi, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false)
	if err != nil {
		t.Fatal(err)
	}
	dpi.SetInlineResults(tag, true)

	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 40000, DstPort: 80, Protocol: packet.IPProtoTCP}
	payload := []byte("attack-sig plus malware-body in one packet")
	tb.Src.Send(fb.Build(tuple, payload))
	tb.Src.Send(fb.Build(tuple, []byte("clean packet")))

	// The destination receives exactly two plain data frames — no shim
	// layer, no separate result packets.
	var got [][]byte
	waitFor(t, "2 frames at dst", func() bool {
		for {
			select {
			case f := <-tb.Dst.Inbox():
				got = append(got, f)
			default:
				return len(got) == 2
			}
		}
	})
	for i, f := range got {
		var s packet.Summary
		if err := packet.Summarize(f, &s); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if s.IsReport || s.Tagged {
			t.Errorf("frame %d still carries shim/tag", i)
		}
	}
	var s packet.Summary
	_ = packet.Summarize(got[0], &s)
	if !bytes.Equal(s.Payload, payload) {
		t.Errorf("payload corrupted through shim round trip: %q", s.Payload)
	}
	waitFor(t, "IDS inline count", func() bool { return idsLogic.Total() == 1 })
	waitFor(t, "AV inline count", func() bool { return avLogic.Total() == 1 })
	// Exactly one frame per packet traversed the chain: no dedicated
	// result packets were emitted.
	if ids.ResultPackets.Load() != 1 {
		t.Errorf("IDS saw %d shim frames, want 1", ids.ResultPackets.Load())
	}
}

// TestRuntimePatternUpdate adds and removes patterns while traffic
// flows: after the controller update propagates (engine hot-swap), new
// patterns match and removed ones no longer do.
func TestRuntimePatternUpdate(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()

	counter := middlebox.NewCountLogic()
	if _, err := tb.AddConsumerMbox("ids-1", "ids", ctlproto.Register{},
		[]string{"old-threat"}, counter); err != nil {
		t.Fatal(err)
	}
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}
	tag, err := tb.TSA.InstallChainWithDPI(spec, "dpi-1")
	if err != nil {
		t.Fatal(err)
	}
	dpi, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false)
	if err != nil {
		t.Fatal(err)
	}
	v0 := tb.DPICtl.Version()

	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 1, DstPort: 80, Protocol: packet.IPProtoTCP}
	tb.Src.Send(fb.Build(tuple, []byte("old-threat and new-threat together")))
	waitFor(t, "old pattern matched", func() bool { return counter.Total() == 1 })

	// The middlebox updates its rule set: rule 0 retired, rule 1 added.
	if err := tb.DPICtl.RemovePatterns("ids-1", []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := tb.DPICtl.AddPatterns("ids-1",
		[]ctlproto.PatternDef{{RuleID: 1, Content: []byte("new-threat")}}); err != nil {
		t.Fatal(err)
	}
	if tb.DPICtl.Version() <= v0 {
		t.Fatal("controller version did not advance")
	}
	if err := tb.UpdateInstance(dpi, []uint16{tag}, false); err != nil {
		t.Fatal(err)
	}

	tb.Src.Send(fb.Build(tuple, []byte("old-threat and new-threat together")))
	waitFor(t, "new pattern matched post-update", func() bool {
		return counter.PerPattern()[1] == 1
	})
	if counter.PerPattern()[0] != 1 {
		t.Errorf("retired rule count = %d, want unchanged 1", counter.PerPattern()[0])
	}
}

// TestReassemblyThroughFabric sends a flow's TCP segments out of
// order; the instance's reassembly service (the paper's
// session-reconstruction extension) restores the stream before
// scanning, so a pattern spanning the reordered boundary is still
// caught and reported by stream offset.
func TestReassemblyThroughFabric(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()

	idsLogic := middlebox.NewCountLogic()
	ids, err := tb.AddConsumerMbox("ids-1", "ids",
		ctlproto.Register{Stateful: true, ReadOnly: true},
		[]string{"crosses-segments"}, idsLogic)
	if err != nil {
		t.Fatal(err)
	}
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}
	tag, err := tb.TSA.InstallChainWithDPI(spec, "dpi-1")
	if err != nil {
		t.Fatal(err)
	}
	dpi, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false)
	if err != nil {
		t.Fatal(err)
	}
	dpi.SetReassembly(tag, true)

	// Stream "xxcrosses-segmentsyy" split at seq 9 and sent tail
	// first; the SYN pins the initial sequence number so the
	// assembler knows the head is still missing.
	stream := []byte("xxcrosses-segmentsyy")
	tuple := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 7777, DstPort: 80, Protocol: packet.IPProtoTCP}
	var fb traffic.FrameBuilder
	tb.Src.Send(fb.BuildSyn(tuple, 999))
	tb.Src.Send(fb.BuildSeq(tuple, 1000+9, stream[9:], false))
	tb.Src.Send(fb.BuildSeq(tuple, 1000, stream[:9], false))

	waitFor(t, "reassembled match at IDS", func() bool { return idsLogic.Total() == 1 })
	// Data packets were forwarded without waiting for results.
	waitFor(t, "both data packets at dst", func() bool { return tb.Dst.Received() >= 2 })
	if got := ids.ResultPackets.Load(); got != 1 {
		t.Errorf("IDS result packets = %d, want 1", got)
	}
}

// TestStatefulAcrossPacketsThroughFabric checks that a pattern split
// across two packets of one flow is caught by the stateful service
// through the full network path.
func TestStatefulAcrossPacketsThroughFabric(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()

	idsLogic := middlebox.NewCountLogic()
	if _, err := tb.AddConsumerMbox("ids-1", "ids",
		ctlproto.Register{Stateful: true, ReadOnly: true},
		[]string{"split-across-packets"}, idsLogic); err != nil {
		t.Fatal(err)
	}
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}
	tag, err := tb.TSA.InstallChainWithDPI(spec, "dpi-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false); err != nil {
		t.Fatal(err)
	}

	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 5555, DstPort: 80, Protocol: packet.IPProtoTCP}
	tb.Src.Send(fb.Build(tuple, []byte("xxx split-acr")))
	tb.Src.Send(fb.Build(tuple, []byte("oss-packets yyy")))
	waitFor(t, "stateful match", func() bool { return idsLogic.Total() == 1 })
}

// TestParallelDPIInstanceEndToEnd reruns the Figure 1(b) chain with the
// instance node scanning on a worker pool: forwarding must stay in
// arrival order and the middleboxes must reach the same conclusions as
// with the synchronous node.
func TestParallelDPIInstanceEndToEnd(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()

	idsLogic := middlebox.NewCountLogic()
	avLogic := middlebox.NewCountLogic()
	if _, err := tb.AddConsumerMbox("ids-1", "ids",
		ctlproto.Register{Stateful: true, ReadOnly: true},
		[]string{"attack-sig", "/etc/passwd"}, idsLogic); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddConsumerMbox("av-1", "av", ctlproto.Register{},
		[]string{"malware-body", "attack-sig"}, avLogic); err != nil {
		t.Fatal(err)
	}
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1", "av-1"}}
	tag, err := tb.TSA.InstallChainWithDPI(spec, "dpi-1")
	if err != nil {
		t.Fatal(err)
	}
	node, err := tb.AddParallelDPIInstance("dpi-1", []uint16{tag}, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer node.SetWorkers(0)

	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{
		Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 41000, DstPort: 80,
		Protocol: packet.IPProtoTCP,
	}
	payloads := [][]byte{
		[]byte("a perfectly clean payload with nothing of note"),
		[]byte("contains attack-sig right here"),
		[]byte("cat /etc/passwd and also malware-body twice malware-body"),
		[]byte("clean again"),
	}
	for _, p := range payloads {
		if !tb.Src.Send(fb.Build(tuple, p)) {
			t.Fatal("send failed")
		}
	}

	var dataAtDst [][]byte
	waitFor(t, "4 data packets at dst", func() bool {
		for {
			select {
			case f := <-tb.Dst.Inbox():
				var s packet.Summary
				if packet.Summarize(f, &s) == nil && !s.IsReport {
					dataAtDst = append(dataAtDst, f)
				}
			default:
				return len(dataAtDst) == 4
			}
		}
	})
	// Forwarding preserved arrival order despite the worker pool.
	for i, f := range dataAtDst {
		var s packet.Summary
		if err := packet.Summarize(f, &s); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s.Payload, payloads[i]) {
			t.Errorf("packet %d out of order or mutated: %q", i, s.Payload)
		}
	}
	waitFor(t, "IDS count", func() bool { return idsLogic.Total() == 2 })
	waitFor(t, "AV count", func() bool { return avLogic.Total() == 3 })
}
