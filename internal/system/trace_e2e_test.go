package system

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpiservice/internal/trace"
)

// This file holds the trace/flight-recorder side of the e2e harnesses:
// stitching distributed traces scraped from live daemons, and dumping
// flight-recorder state when a test fails so CI failures come with the
// recent-event window attached (uploaded as artifacts by the chaos,
// wire-e2e and soak jobs — set DPI_FLIGHT_DUMP_DIR to keep the files).

// flightDumpDir returns the directory failure dumps are written to, or
// "" to log them inline instead.
func flightDumpDir() string { return os.Getenv("DPI_FLIGHT_DUMP_DIR") }

// writeFailureDump persists one named debug-endpoint body captured at
// failure time: to a file under DPI_FLIGHT_DUMP_DIR when set (the CI
// artifact path), to the test log otherwise.
func writeFailureDump(t *testing.T, name string, body []byte) {
	t.Helper()
	if dir := flightDumpDir(); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			path := filepath.Join(dir, name+".json")
			if err := os.WriteFile(path, body, 0o644); err == nil {
				t.Logf("flight dump written to %s", path)
				return
			}
		}
	}
	t.Logf("== %s ==\n%s", name, body)
}

// fetchDebug reads one debug endpoint's raw body; best-effort — at
// failure time the daemon may already be gone.
func fetchDebug(debugPort int, path string) ([]byte, error) {
	resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d%s", debugPort, path))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// dumpDebugOnFailure arranges for a daemon's /flight and /trace state
// to be captured if the test fails. Registered before the daemons are
// torn down so the cleanup runs while they are still reachable.
func dumpDebugOnFailure(t *testing.T, name string, debugPort int) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		for _, ep := range []string{"/flight", "/trace"} {
			body, err := fetchDebug(debugPort, ep)
			if err != nil {
				t.Logf("%s%s unreachable at failure: %v", name, ep, err)
				continue
			}
			writeFailureDump(t, name+strings.ReplaceAll(ep, "/", "-"), body)
		}
	})
}

// dumpFlightOnFailure captures an in-process flight recorder (the chaos
// tests run the controller in-process, no debug listener) when the test
// fails.
func dumpFlightOnFailure(t *testing.T, name string, fl *trace.Flight) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		var b strings.Builder
		if err := fl.WriteJSON(&b); err != nil {
			t.Logf("flight dump %s: %v", name, err)
			return
		}
		writeFailureDump(t, name, []byte(b.String()))
	})
}

// fetchTraceDump scrapes and decodes a daemon's /trace endpoint.
func fetchTraceDump(t *testing.T, debugPort int) trace.TraceDump {
	t.Helper()
	body, err := fetchDebug(debugPort, "/trace")
	if err != nil {
		t.Fatalf("fetch /trace on %d: %v", debugPort, err)
	}
	var d trace.TraceDump
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("decode /trace on %d: %v\n%s", debugPort, err, body)
	}
	return d
}

// traceIDsFromLog extracts the trace IDs trafficgen printed ("trace
// ids: <hex> <hex> ...") from its log file.
func traceIDsFromLog(t *testing.T, logPath string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("read %s: %v", logPath, err)
	}
	const marker = "trace ids: "
	ids := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		i := strings.Index(line, marker)
		if i < 0 {
			continue
		}
		for _, id := range strings.Fields(line[i+len(marker):]) {
			ids[id] = true
		}
	}
	return ids
}

// stageSets joins a set of per-node trace dumps into one id -> stage-set
// view, keyed by the hex trace ID.
func stageSets(dumps ...trace.TraceDump) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, d := range dumps {
		for _, tr := range d.Traces {
			set := out[tr.ID]
			if set == nil {
				set = make(map[string]bool)
				out[tr.ID] = set
			}
			for _, sp := range tr.Spans {
				set[sp.Stage] = true
			}
		}
	}
	return out
}
