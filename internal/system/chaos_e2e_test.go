package system

import (
	"testing"
	"time"

	"dpiservice/internal/controller"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/middlebox"
	"dpiservice/internal/packet"
	"dpiservice/internal/sdn"
	"dpiservice/internal/trace"
	"dpiservice/internal/traffic"
)

// chaosSeed makes the fault layer's schedule reproducible; the CI chaos
// job runs these tests with -race and this fixed seed.
const chaosSeed = 1

// TestChaosInstanceDeathFailover is the failure-domain end-to-end: a
// two-instance balanced deployment loses one DPI instance under live
// traffic (netsim CrashNode: connectivity severed, heartbeats stop).
// The lease monitor must declare it dead and the TSA must re-steer its
// flows to the survivor within the lease timeout; nothing may be
// reported as scanned that no engine actually scanned; and the outage
// must be visible in the controller metrics.
func TestChaosInstanceDeathFailover(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()
	tb.Net.SetChaosSeed(chaosSeed)

	// Always-on flight recorder on the controller: the outage must leave
	// an event trail, and on failure the window is dumped for post-mortem
	// (CI uploads it as an artifact).
	fl := trace.NewFlight("chaos-ctl", trace.DefaultFlightCapacity)
	clk := trace.StartClock(0)
	defer clk.Stop()
	fl.SetClock(clk)
	tb.DPICtl.SetFlight(fl)
	dumpFlightOnFailure(t, "chaos-controller-flight", fl)

	idsLogic := middlebox.NewCountLogic()
	ids, err := tb.AddConsumerMbox("ids-1", "ids", ctlproto.Register{},
		[]string{"needle-pattern"}, idsLogic)
	if err != nil {
		t.Fatal(err)
	}
	// Monitoring posture: orphaned pairs (data scanned, result lost in
	// the crash) flush fail-open instead of pinning memory.
	defer ids.SetLossPolicy(middlebox.FailOpen, 200*time.Millisecond)()

	tb.Switch.SetController(tb.TSA)
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}
	tag, err := tb.TSA.InstallBalancedChain(spec, []string{"dpi-1", "dpi-2"})
	if err != nil {
		t.Fatal(err)
	}
	dpi1, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false)
	if err != nil {
		t.Fatal(err)
	}
	dpi2, err := tb.AddDPIInstance("dpi-2", []uint16{tag}, false)
	if err != nil {
		t.Fatal(err)
	}

	cfg := controller.LeaseConfig{TTL: 100 * time.Millisecond, DeadAfter: 250 * time.Millisecond}
	sweep := 20 * time.Millisecond
	events, stopMon := tb.EnableFailover(cfg, sweep)
	defer stopMon()
	defer tb.StartLease("dpi-1", 20*time.Millisecond)()
	defer tb.StartLease("dpi-2", 20*time.Millisecond)()

	flowT := func(n int) packet.FiveTuple {
		return packet.FiveTuple{
			Src: tb.Src.IP, Dst: tb.Dst.IP,
			SrcPort: uint16(40000 + n), DstPort: 80, Protocol: packet.IPProtoTCP,
		}
	}

	// Pin four flows; round-robin splits them across both instances.
	var fb traffic.FrameBuilder
	const flows = 4
	for n := 0; n < flows; n++ {
		tb.Src.Send(fb.Build(flowT(n), []byte("has needle-pattern inside")))
		waitFor(t, "flow pinned", func() bool {
			_, ok := tb.TSA.InstanceOf(flowT(n))
			return ok
		})
	}
	var onDead, onSurvivor []int
	for n := 0; n < flows; n++ {
		if inst, _ := tb.TSA.InstanceOf(flowT(n)); inst == "dpi-1" {
			onDead = append(onDead, n)
		} else {
			onSurvivor = append(onSurvivor, n)
		}
	}
	if len(onDead) == 0 || len(onSurvivor) == 0 {
		t.Fatalf("balanced chain did not split flows: dead=%v survivor=%v", onDead, onSurvivor)
	}
	waitFor(t, "pre-crash matches", func() bool { return idsLogic.Total() >= flows })

	// Kill dpi-1 mid-traffic: a generator keeps all flows active across
	// the outage so the failure hits live, steered flows.
	trafficDone := make(chan struct{})
	trafficStopped := make(chan struct{})
	go func() {
		defer close(trafficStopped)
		var gfb traffic.FrameBuilder
		for {
			select {
			case <-trafficDone:
				return
			default:
				for n := 0; n < flows; n++ {
					tb.Src.Send(gfb.Build(flowT(n), []byte("has needle-pattern inside")))
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	crashed := time.Now()
	tb.Net.CrashNode("dpi-1")

	var ev FailoverEvent
	select {
	case ev = <-events:
	case <-time.After(5 * time.Second):
		t.Fatal("no failover within 5s of the crash")
	}
	elapsed := time.Since(crashed)
	close(trafficDone)
	<-trafficStopped

	// Failover must land within the lease timeout (DeadAfter) plus one
	// sweep; the slack absorbs scheduler jitter under -race.
	if bound := cfg.DeadAfter + sweep + 750*time.Millisecond; elapsed > bound {
		t.Errorf("failover took %v, want <= %v", elapsed, bound)
	}
	if ev.Plan.Dead != "dpi-1" || ev.Err != nil {
		t.Fatalf("failover event = %+v", ev)
	}
	if ev.Plan.Reassigned[tag] != "dpi-2" {
		t.Fatalf("chain %d reassigned to %q, want dpi-2", tag, ev.Plan.Reassigned[tag])
	}
	if h, _ := tb.DPICtl.InstanceHealth("dpi-1"); h != controller.Dead {
		t.Fatalf("dpi-1 health = %v, want dead", h)
	}
	if h, _ := tb.DPICtl.InstanceHealth("dpi-2"); h != controller.Healthy {
		t.Fatalf("dpi-2 health = %v, want healthy", h)
	}

	// Every flow is off the dead instance and traffic keeps flowing
	// through the survivor.
	for n := 0; n < flows; n++ {
		if inst, ok := tb.TSA.InstanceOf(flowT(n)); ok && inst == "dpi-1" {
			t.Fatalf("flow %d still pinned to the dead instance", n)
		}
	}
	before := idsLogic.Total()
	beforeScanned := dpi2.Engine().Snapshot().Packets
	for _, n := range onDead {
		tb.Src.Send(fb.Build(flowT(n), []byte("post-failover needle-pattern")))
	}
	waitFor(t, "post-failover matches", func() bool {
		return idsLogic.Total() >= before+uint64(len(onDead))
	})
	waitFor(t, "survivor scanned the re-steered flows", func() bool {
		return dpi2.Engine().Snapshot().Packets >= beforeScanned+uint64(len(onDead))
	})
	// A brand-new flow avoids the dead instance entirely.
	tb.Src.Send(fb.Build(flowT(100), []byte("fresh needle-pattern flow")))
	waitFor(t, "fresh flow pinned to survivor", func() bool {
		inst, ok := tb.TSA.InstanceOf(flowT(100))
		return ok && inst == "dpi-2"
	})

	// No packet was reported scanned that wasn't: every result the
	// middlebox consumed corresponds to a packet an engine scanned.
	scanned := dpi1.Engine().Snapshot().Packets + dpi2.Engine().Snapshot().Packets
	if got := ids.ResultPackets.Load(); got > scanned {
		t.Errorf("middlebox consumed %d results but engines scanned %d", got, scanned)
	}
	if got := idsLogic.Total(); got > scanned {
		t.Errorf("logic observed %d matches but engines scanned %d packets", got, scanned)
	}

	// The outage is visible in the metrics and the fault layer.
	reg := tb.DPICtl.Metrics()
	if v := reg.Counter("controller.lease_expiries").Value(); v != 1 {
		t.Errorf("lease_expiries = %d, want 1", v)
	}
	if v := reg.Counter("controller.failovers").Value(); v != 1 {
		t.Errorf("failovers = %d, want 1", v)
	}
	if v := reg.Counter("controller.chains_reassigned").Value(); v != 1 {
		t.Errorf("chains_reassigned = %d, want 1", v)
	}
	if v := reg.Gauge("controller.instances_dead").Value(); v != 1 {
		t.Errorf("instances_dead gauge = %d, want 1", v)
	}
	if s := tb.Net.ChaosStats(); s.Dropped == 0 {
		t.Error("chaos layer dropped nothing — the instance never really died")
	}

	// The flight recorder caught the outage: the lease death and the
	// failover are in the always-on event window, timestamped.
	var sawDead, sawFailover bool
	for _, e := range fl.Snapshot() {
		switch e.Kind {
		case trace.EvLeaseDead:
			sawDead = true
			if e.TsNs == 0 {
				t.Error("lease-death flight event has no timestamp")
			}
		case trace.EvFailover:
			sawFailover = true
		}
	}
	if !sawDead || !sawFailover {
		t.Errorf("flight recorder missed the outage: lease_dead=%v failover=%v", sawDead, sawFailover)
	}
}

// TestChaosInstanceRestartRejoins re-admits a crashed instance: after
// failover its lease renewals are rejected (re-hello required), and an
// explicit AddInstance — the daemon's re-hello path — restores it to
// Healthy with a fresh lease.
func TestChaosInstanceRestartRejoins(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()

	if _, err := tb.AddConsumerMbox("ids-1", "ids", ctlproto.Register{},
		[]string{"needle-pattern"}, middlebox.NewCountLogic()); err != nil {
		t.Fatal(err)
	}
	tb.Switch.SetController(tb.TSA)
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}
	tag, err := tb.TSA.InstallBalancedChain(spec, []string{"dpi-1", "dpi-2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"dpi-1", "dpi-2"} {
		if _, err := tb.AddDPIInstance(id, []uint16{tag}, false); err != nil {
			t.Fatal(err)
		}
	}

	cfg := controller.LeaseConfig{TTL: 50 * time.Millisecond, DeadAfter: 100 * time.Millisecond}
	events, stopMon := tb.EnableFailover(cfg, 10*time.Millisecond)
	defer stopMon()
	defer tb.StartLease("dpi-1", 10*time.Millisecond)()
	defer tb.StartLease("dpi-2", 10*time.Millisecond)()

	tb.Net.CrashNode("dpi-1")
	select {
	case ev := <-events:
		if ev.Plan.Dead != "dpi-1" {
			t.Fatalf("failover of %q, want dpi-1", ev.Plan.Dead)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no failover after crash")
	}

	// While dead, renewals are rejected: the lease loop alone cannot
	// resurrect the instance.
	tb.Net.RestartNode("dpi-1")
	if err := tb.DPICtl.RenewLease("dpi-1"); err == nil {
		t.Fatal("renewal of an expired lease succeeded")
	}
	waitFor(t, "dpi-1 still dead", func() bool {
		h, _ := tb.DPICtl.InstanceHealth("dpi-1")
		return h == controller.Dead
	})

	// Explicit re-hello re-admits it with a fresh lease.
	tb.DPICtl.AddInstance("dpi-1", []uint16{tag}, false)
	waitFor(t, "dpi-1 healthy after re-hello", func() bool {
		h, _ := tb.DPICtl.InstanceHealth("dpi-1")
		return h == controller.Healthy
	})
	// And the running lease loop keeps it healthy past a full DeadAfter.
	time.Sleep(2 * cfg.DeadAfter)
	if h, _ := tb.DPICtl.InstanceHealth("dpi-1"); h != controller.Healthy {
		t.Fatalf("re-admitted instance decayed to %v", h)
	}
}
