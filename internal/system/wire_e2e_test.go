package system

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestWireE2E is the multi-process end-to-end test: it builds the real
// daemon binaries and runs a full deployment — dpictl, two dpinstance
// processes, an mboxd verdict consumer — as separate OS processes
// exchanging batched UDP over loopback, then drives traffic with
// trafficgen and asserts results, wire metrics and SIGKILL failover.
//
// Gated behind DPI_WIRE_E2E=1 (it builds binaries and binds real
// sockets); CI runs it in the wire-e2e job. Logs land in the test temp
// dir and are dumped when the test fails.
func TestWireE2E(t *testing.T) {
	if os.Getenv("DPI_WIRE_E2E") != "1" {
		t.Skip("set DPI_WIRE_E2E=1 to run the multi-process wire e2e test")
	}
	bin := buildDaemons(t)
	dir := t.TempDir()

	var (
		ctlPort      = freePort(t)
		ctlDebugPort = freePort(t)
		mboxPort     = freePort(t)
		mboxDebug    = freePort(t)
		wire1Port    = freePort(t)
		wire2Port    = freePort(t)
		inst1Debug   = freePort(t)
		inst2Debug   = freePort(t)
		data1Port    = freePort(t)
		data2Port    = freePort(t)
	)
	ctlAddr := hostPort(ctlPort)

	// Controller first: everything else registers with it.
	dpictl := startDaemon(t, dir, "dpictl", bin["dpictl"],
		"-listen", ctlAddr,
		"-debug-addr", hostPort(ctlDebugPort),
		"-lease-ttl", "2s", "-lease-sweep", "1s",
		"-state", filepath.Join(dir, "dpictl.state"),
	)
	waitHealthy(t, ctlDebugPort, "dpictl")
	dumpDebugOnFailure(t, "dpictl", ctlDebugPort)

	// The middlebox registers its synthetic pattern set, reports the
	// policy chain, and stays up as the wire verdict consumer.
	startDaemon(t, dir, "mboxd", bin["mboxd"],
		"-controller", ctlAddr, "-id", "ids-1", "-type", "ids",
		"-synthetic", "256", "-seed", "1", "-chain", "ids-1",
		"-listen", hostPort(mboxPort), "-debug-addr", hostPort(mboxDebug),
	)
	waitHealthy(t, mboxDebug, "mboxd")
	dumpDebugOnFailure(t, "mboxd", mboxDebug)

	// Two DPI instances serve the chain; both forward verdicts to the
	// middlebox.
	inst1 := startDaemon(t, dir, "dpinstance-1", bin["dpinstance"],
		"-controller", ctlAddr, "-id", "dpi-1",
		"-data", hostPort(data1Port), "-listen", hostPort(wire1Port),
		"-verdicts", hostPort(mboxPort), "-debug-addr", hostPort(inst1Debug),
		"-lease", "500ms",
	)
	waitHealthy(t, inst1Debug, "dpinstance-1")
	dumpDebugOnFailure(t, "dpinstance-1", inst1Debug)
	startDaemon(t, dir, "dpinstance-2", bin["dpinstance"],
		"-controller", ctlAddr, "-id", "dpi-2",
		"-data", hostPort(data2Port), "-listen", hostPort(wire2Port),
		"-verdicts", hostPort(mboxPort), "-debug-addr", hostPort(inst2Debug),
		"-lease", "500ms",
	)
	waitHealthy(t, inst2Debug, "dpinstance-2")
	dumpDebugOnFailure(t, "dpinstance-2", inst2Debug)

	// Drive traffic at instance 1 over the wire transport. The injected
	// patterns are the first 64 of the middlebox's synthetic set (same
	// generator, same seed), so a healthy fraction of packets match and
	// verdicts must flow to mboxd. Every flow is traced (-trace-rate 1)
	// so the trace-stitching assertions below have spans to join.
	runTrafficgen(t, dir, "trafficgen-1", bin["trafficgen"],
		"-connect", hostPort(wire1Port), "-controller", ctlAddr,
		"-peer", "tg-1", "-tag", "1", "-bytes", strconv.Itoa(2<<20),
		"-inject", "64", "-seed", "1", "-match", "0.3",
		"-trace-rate", "1",
	)

	// Wire counters on the instance and the verdict consumer.
	m1 := fetchMetrics(t, inst1Debug)
	if m1["wire.frames_in"] == 0 || m1["wire.frames_out"] == 0 {
		t.Errorf("dpi-1 wire counters: frames_in=%d frames_out=%d, want nonzero",
			m1["wire.frames_in"], m1["wire.frames_out"])
	}
	if m1["wire.batches_in"] == 0 {
		t.Errorf("dpi-1 wire.batches_in = 0, want nonzero")
	}
	mv := fetchMetrics(t, mboxDebug)
	if mv["mbox.verdicts"] == 0 || mv["mbox.matches"] == 0 {
		t.Errorf("mboxd verdict counters: verdicts=%d matches=%d, want nonzero",
			mv["mbox.verdicts"], mv["mbox.matches"])
	}
	if mv["mbox.bad_reports"] != 0 {
		t.Errorf("mboxd decoded %d bad reports", mv["mbox.bad_reports"])
	}

	// Distributed traces: trafficgen printed the IDs it sampled; the
	// instance and the verdict consumer each hold spans for them, and at
	// least one ID must stitch into a single trace covering every
	// pipeline stage across the three processes (send is recorded by
	// trafficgen itself and evidenced by the printed ID; the daemons
	// contribute decode through consume).
	sentIDs := traceIDsFromLog(t, filepath.Join(dir, "trafficgen-1.log"))
	if len(sentIDs) == 0 {
		t.Fatal("trafficgen-1 printed no trace ids despite -trace-rate 1")
	}
	stitched := stageSets(fetchTraceDump(t, inst1Debug), fetchTraceDump(t, mboxDebug))
	wantStages := []string{"decode", "reassembly", "scan", "encode", "consume"}
	var complete int
	for id, stages := range stitched {
		if !sentIDs[id] {
			t.Errorf("daemons recorded trace %s that trafficgen never sent", id)
			continue
		}
		all := true
		for _, s := range wantStages {
			if !stages[s] {
				all = false
			}
		}
		if all {
			complete++
		}
	}
	if complete == 0 {
		t.Errorf("no stitched trace covers stages %v (saw %d traces)", wantStages, len(stitched))
	}

	// SIGKILL instance 1 — no cleanup, no FIN, the hard failure mode.
	// Traffic re-steered to the survivor must flow immediately, and the
	// controller must declare the corpse dead once its lease lapses.
	if err := inst1.Process.Kill(); err != nil {
		t.Fatalf("kill dpi-1: %v", err)
	}
	runTrafficgen(t, dir, "trafficgen-2", bin["trafficgen"],
		"-connect", hostPort(wire2Port), "-controller", ctlAddr,
		"-peer", "tg-2", "-tag", "1", "-bytes", strconv.Itoa(1<<20),
		"-inject", "64", "-seed", "1", "-match", "0.3",
	)
	waitInstanceHealth(t, ctlDebugPort, "dpi-1", "dead", 15*time.Second)

	// The controller survives a SIGTERM cycle with its state (including
	// the wire cluster key) intact — tokens issued before the restart
	// keep validating after it.
	if err := dpictl.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("stop dpictl: %v", err)
	}
	if err := dpictl.Wait(); err != nil {
		t.Fatalf("dpictl exit: %v", err)
	}
	startDaemon(t, dir, "dpictl-2", bin["dpictl"],
		"-listen", ctlAddr,
		"-debug-addr", hostPort(ctlDebugPort),
		"-lease-ttl", "2s", "-lease-sweep", "1s",
		"-state", filepath.Join(dir, "dpictl.state"),
	)
	waitHealthy(t, ctlDebugPort, "dpictl-2")
	runTrafficgen(t, dir, "trafficgen-3", bin["trafficgen"],
		"-connect", hostPort(wire2Port), "-controller", ctlAddr,
		"-peer", "tg-3", "-tag", "1", "-bytes", strconv.Itoa(1<<20),
		"-inject", "64", "-seed", "1", "-match", "0.3",
	)
}

// buildDaemons compiles the real binaries once into a shared temp dir.
func buildDaemons(t *testing.T) map[string]string {
	t.Helper()
	root := moduleRoot(t)
	dir := t.TempDir()
	bin := make(map[string]string)
	for _, name := range []string{"dpictl", "dpinstance", "mboxd", "trafficgen"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = root
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		bin[name] = out
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not in a module")
	}
	return filepath.Dir(gomod)
}

func hostPort(port int) string { return "127.0.0.1:" + strconv.Itoa(port) }

// freePort reserves an ephemeral TCP port and releases it for the
// daemon to claim. The small race window is acceptable on a loopback
// test host.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// startDaemon launches one binary with its stderr+stdout teed to a log
// file, killing it (and dumping the log on failure) at test end.
func startDaemon(t *testing.T, dir, name, bin string, args ...string) *exec.Cmd {
	t.Helper()
	logPath := filepath.Join(dir, name+".log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		logFile.Close()
		if t.Failed() {
			dumpLog(t, name, logPath)
		}
	})
	return cmd
}

// runTrafficgen executes one trafficgen run to completion and fails the
// test (with the log) if it exits nonzero.
func runTrafficgen(t *testing.T, dir, name, bin string, args ...string) {
	t.Helper()
	logPath := filepath.Join(dir, name+".log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer logFile.Close()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Run(); err != nil {
		dumpLog(t, name, logPath)
		t.Fatalf("%s: %v", name, err)
	}
}

func dumpLog(t *testing.T, name, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		t.Logf("== %s log unreadable: %v", name, err)
		return
	}
	t.Logf("== %s log ==\n%s", name, data)
}

// waitHealthy polls a daemon's /healthz until it answers 200.
func waitHealthy(t *testing.T, debugPort int, name string) {
	t.Helper()
	url := fmt.Sprintf("http://127.0.0.1:%d/healthz", debugPort)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy at %s", name, url)
}

// fetchMetrics reads a daemon's /metrics?format=text into a name ->
// value map.
func fetchMetrics(t *testing.T, debugPort int) map[string]uint64 {
	t.Helper()
	url := fmt.Sprintf("http://127.0.0.1:%d/metrics?format=text", debugPort)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("fetch %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	out := make(map[string]uint64)
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
			out[fields[0]] = v
		}
	}
	return out
}

// waitInstanceHealth polls the controller's /instances view until the
// named instance reports the wanted health state.
func waitInstanceHealth(t *testing.T, ctlDebugPort int, id, want string, timeout time.Duration) {
	t.Helper()
	url := fmt.Sprintf("http://127.0.0.1:%d/instances", ctlDebugPort)
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			var snaps []struct {
				ID     string `json:"ID"`
				Health string `json:"Health"`
			}
			err = json.NewDecoder(resp.Body).Decode(&snaps)
			resp.Body.Close()
			if err == nil {
				for _, s := range snaps {
					if s.ID == id {
						if strings.EqualFold(s.Health, want) {
							return
						}
						last = s.Health
					}
				}
			}
		}
		time.Sleep(250 * time.Millisecond)
	}
	t.Fatalf("instance %s never reached health %q (last seen %q)", id, want, last)
}
