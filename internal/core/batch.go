package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dpiservice/internal/mpm"
	"dpiservice/internal/packet"
)

// This file is the multi-core data-plane entry points: InspectBatch
// fans a slice of packets across worker goroutines, and Pool is the
// persistent worker-pool variant the instance daemons use. Both lean on
// Inspect being re-entrant (sharded flow table, pooled scratch), so one
// engine reproduces the paper's "k VMs = k engines" scaling in-process
// (Section 6.2, Figure 8).

// BatchItem couples one packet with its result slot for InspectBatch.
type BatchItem struct {
	Tag     uint16
	Tuple   packet.FiveTuple
	Payload []byte
	// Report and Err are filled by InspectBatch; Report is nil when
	// nothing matched.
	Report *packet.Report
	Err    error
}

const (
	// defaultBatchLanes is how many packets one InspectBatch worker
	// advances in lockstep through the DFA when Config.BatchInterleave
	// is unset. Four lanes keep four independent DFA rows in flight per
	// worker, enough to hide most of a row fetch's latency without
	// spilling lane state out of registers.
	defaultBatchLanes = 4
	// maxBatchLanes caps Config.BatchInterleave.
	maxBatchLanes = 8
)

// InspectBatch scans every item, using up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). Items are claimed in order but
// complete in any order: callers feeding stateful chains must keep a
// flow's packets in separate batches (or a single-worker batch) when
// stream order matters.
//
// When the engine's automaton supports it (AutoFull, the default), each
// worker claims a small group of items and advances the stateless ones'
// DFA scans in lockstep, so one lane's cache miss overlaps the other
// lanes' work instead of stalling the worker (Config.BatchInterleave).
func (e *Engine) InspectBatch(items []BatchItem, workers int) {
	g := 1
	if e.acLanes != nil {
		g = e.lanesPer
	}
	numGroups := (len(items) + g - 1) / g
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numGroups {
		workers = numGroups
	}
	if workers <= 1 {
		for lo := 0; lo < len(items); lo += g {
			hi := lo + g
			if hi > len(items) {
				hi = len(items)
			}
			e.inspectGroup(items[lo:hi])
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				gi := int(next.Add(1)) - 1
				if gi >= numGroups {
					return
				}
				lo := gi * g
				hi := lo + g
				if hi > len(items) {
					hi = len(items)
				}
				e.inspectGroup(items[lo:hi])
			}
		}()
	}
	wg.Wait()
}

// inspectGroup scans one worker's claimed run of items. Stateless-chain
// items are prepared, their DFA stages advanced together through
// acLanes.ScanLanes, then finished one by one. Stateful items are
// scanned solo: prepare holds the flow lock until finish, and two
// packets of one flow landing in the same group must not wait on each
// other's locks mid-group.
//
//dpi:hotpath
func (e *Engine) inspectGroup(items []BatchItem) {
	if e.acLanes == nil || len(items) < 2 {
		for i := range items {
			it := &items[i]
			it.Report, it.Err = e.Inspect(it.Tag, it.Tuple, it.Payload)
		}
		return
	}
	var (
		lanes    [maxBatchLanes]mpm.Lane
		scr      [maxBatchLanes]*scratch
		laneItem [maxBatchLanes]*BatchItem
		nLanes   int
	)
	for i := range items {
		it := &items[i]
		it.Report, it.Err = nil, nil
		chain, ok := e.chains[it.Tag]
		if !ok {
			//dpi:coldalloc(error branch: unknown chain tags are a config bug, not traffic)
			it.Err = &UnknownChainError{Tag: it.Tag}
			continue
		}
		if chain.anyStateful {
			s := e.scratchPool.Get().(*scratch)
			it.Report = e.inspect(chain, it.Tuple, it.Payload, s)
			e.scratchPool.Put(s)
			continue
		}
		s := e.scratchPool.Get().(*scratch)
		e.prepare(chain, it.Tuple, it.Payload, s)
		if s.ps.limit > 0 {
			lanes[nLanes] = mpm.Lane{
				Data:   s.ps.scanData[:s.ps.limit],
				State:  s.ps.state,
				Active: chain.mask,
				Emit:   s.emitFn,
			}
			scr[nLanes] = s
			laneItem[nLanes] = it
			nLanes++
		} else {
			it.Report = e.finish(s)
			e.scratchPool.Put(s)
		}
	}
	if nLanes == 0 {
		return
	}
	e.acLanes.ScanLanes(lanes[:nLanes])
	for k := 0; k < nLanes; k++ {
		s := scr[k]
		s.ps.state = lanes[k].State
		e.met.bytesScanned.Add(uint64(s.ps.limit))
		laneItem[k].Report = e.finish(s)
		e.scratchPool.Put(s)
		lanes[k] = mpm.Lane{}
	}
}

// Job is one packet scan submitted to a Pool. After Wait returns (or
// the job is received from its Done signal), Report and Err are set.
type Job struct {
	Tag     uint16
	Tuple   packet.FiveTuple
	Payload []byte
	Report  *packet.Report
	Err     error
	// Ctx rides along untouched for the submitter's bookkeeping (e.g.
	// the original frame awaiting forwarding).
	Ctx  any
	done chan struct{}
}

// Wait blocks until the job has been scanned.
func (j *Job) Wait() { <-j.done }

// Pool is a persistent worker pool scanning packets against an engine.
// The engine is resolved per job through the provided func, so
// controller-pushed hot swaps apply without restarting the pool.
type Pool struct {
	engine func() *Engine
	jobs   chan *Job
	wg     sync.WaitGroup
}

// NewPool starts workers goroutines (<= 0 selects GOMAXPROCS) feeding
// off a queue of the given depth (<= 0 selects 4x workers).
func NewPool(engine func() *Engine, workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = workers * 4
	}
	p := &Pool{engine: engine, jobs: make(chan *Job, queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				// InspectTimed feeds the core.scan_ns histogram; the
				// clock read happens out here in the worker, never on
				// the //dpi:hotpath scan path itself.
				j.Report, j.Err = p.engine().InspectTimed(j.Tag, j.Tuple, j.Payload)
				close(j.done)
			}
		}()
	}
	return p
}

// Submit queues one job; it blocks when the queue is full (natural
// backpressure toward the packet source).
func (p *Pool) Submit(j *Job) {
	if j.done == nil {
		j.done = make(chan struct{})
	}
	p.jobs <- j
}

// Close drains the queue and stops the workers. Submit must not be
// called after (or concurrently with) Close.
func (p *Pool) Close() {
	close(p.jobs)
	p.wg.Wait()
}
