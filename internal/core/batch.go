package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dpiservice/internal/packet"
)

// This file is the multi-core data-plane entry points: InspectBatch
// fans a slice of packets across worker goroutines, and Pool is the
// persistent worker-pool variant the instance daemons use. Both lean on
// Inspect being re-entrant (sharded flow table, pooled scratch), so one
// engine reproduces the paper's "k VMs = k engines" scaling in-process
// (Section 6.2, Figure 8).

// BatchItem couples one packet with its result slot for InspectBatch.
type BatchItem struct {
	Tag     uint16
	Tuple   packet.FiveTuple
	Payload []byte
	// Report and Err are filled by InspectBatch; Report is nil when
	// nothing matched.
	Report *packet.Report
	Err    error
}

// InspectBatch scans every item, using up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). Items are claimed in order but
// complete in any order: callers feeding stateful chains must keep a
// flow's packets in separate batches (or a single-worker batch) when
// stream order matters.
func (e *Engine) InspectBatch(items []BatchItem, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i := range items {
			it := &items[i]
			it.Report, it.Err = e.Inspect(it.Tag, it.Tuple, it.Payload)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				it := &items[i]
				it.Report, it.Err = e.Inspect(it.Tag, it.Tuple, it.Payload)
			}
		}()
	}
	wg.Wait()
}

// Job is one packet scan submitted to a Pool. After Wait returns (or
// the job is received from its Done signal), Report and Err are set.
type Job struct {
	Tag     uint16
	Tuple   packet.FiveTuple
	Payload []byte
	Report  *packet.Report
	Err     error
	// Ctx rides along untouched for the submitter's bookkeeping (e.g.
	// the original frame awaiting forwarding).
	Ctx  any
	done chan struct{}
}

// Wait blocks until the job has been scanned.
func (j *Job) Wait() { <-j.done }

// Pool is a persistent worker pool scanning packets against an engine.
// The engine is resolved per job through the provided func, so
// controller-pushed hot swaps apply without restarting the pool.
type Pool struct {
	engine func() *Engine
	jobs   chan *Job
	wg     sync.WaitGroup
}

// NewPool starts workers goroutines (<= 0 selects GOMAXPROCS) feeding
// off a queue of the given depth (<= 0 selects 4x workers).
func NewPool(engine func() *Engine, workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = workers * 4
	}
	p := &Pool{engine: engine, jobs: make(chan *Job, queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				// InspectTimed feeds the core.scan_ns histogram; the
				// clock read happens out here in the worker, never on
				// the //dpi:hotpath scan path itself.
				j.Report, j.Err = p.engine().InspectTimed(j.Tag, j.Tuple, j.Payload)
				close(j.done)
			}
		}()
	}
	return p
}

// Submit queues one job; it blocks when the queue is full (natural
// backpressure toward the packet source).
func (p *Pool) Submit(j *Job) {
	if j.done == nil {
		j.done = make(chan struct{})
	}
	p.jobs <- j
}

// Close drains the queue and stops the workers. Submit must not be
// called after (or concurrently with) Close.
func (p *Pool) Close() {
	close(p.jobs)
	p.wg.Wait()
}
