package core

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"dpiservice/internal/packet"
)

// parallelFlowTuple returns the tuple for one of the test's flows.
func parallelFlowTuple(i int) packet.FiveTuple {
	return packet.FiveTuple{
		Src: packet.IP4{10, 2, byte(i >> 8), byte(i)}, Dst: packet.IP4{10, 0, 0, 2},
		SrcPort: uint16(2000 + i), DstPort: 80, Protocol: packet.IPProtoTCP,
	}
}

// parallelFlowPackets builds a deterministic packet stream for flow i,
// including patterns split across packet boundaries so the stateful
// profile's cross-packet state matters.
func parallelFlowPackets(i int) [][]byte {
	return [][]byte{
		[]byte("GET /index.html HTTP/1.1 atta"),
		[]byte("ck-sig carried over"),
		[]byte("perfectly clean payload"),
		[]byte(fmt.Sprintf("flow %d reads /etc/pas", i)),
		[]byte("swd and some ev"),
		[]byte("il malware-body trailer"),
		[]byte("final clean packet"),
	}
}

// TestParallelInspectEquivalence hammers one engine from GOMAXPROCS
// goroutines (run under -race) and asserts the merged per-flow match
// records and the global telemetry equal a packet-by-packet sequential
// run on a second, identical engine. Flows are partitioned across
// workers so each flow's packets stay in order; different flows
// interleave freely across shards.
func TestParallelInspectEquivalence(t *testing.T) {
	const nFlows = 64
	workers := runtime.GOMAXPROCS(0) * 2 // oversubscribe to force interleaving

	par, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Sequential reference: flow-major order (flows are independent, so
	// any cross-flow interleaving yields the same per-packet reports).
	want := make([][][]rec, nFlows)
	for i := 0; i < nFlows; i++ {
		tuple := parallelFlowTuple(i)
		for _, p := range parallelFlowPackets(i) {
			rep, err := seq.Inspect(uint16(1+i%2), tuple, p)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = append(want[i], flatten(rep))
		}
	}

	got := make([][][]rec, nFlows)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < nFlows; i += workers {
				tuple := parallelFlowTuple(i)
				for _, p := range parallelFlowPackets(i) {
					rep, err := par.Inspect(uint16(1+i%2), tuple, p)
					if err != nil {
						errs[w] = err
						return
					}
					got[i] = append(got[i], flatten(rep))
				}
				// Telemetry reads must be safe mid-storm.
				par.ChainStats()
				par.Chains()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < nFlows; i++ {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("flow %d: parallel reports %v, sequential %v", i, got[i], want[i])
		}
	}

	ps, ss := par.Snapshot(), seq.Snapshot()
	if ps != ss {
		t.Errorf("snapshots differ: parallel %+v, sequential %+v", ps, ss)
	}
	if !reflect.DeepEqual(par.ChainStats(), seq.ChainStats()) {
		t.Errorf("chain stats differ: %+v vs %+v", par.ChainStats(), seq.ChainStats())
	}
	pf, sf := par.FlowStats(), seq.FlowStats()
	if !reflect.DeepEqual(pf, sf) {
		t.Errorf("flow stats differ: %+v vs %+v", pf, sf)
	}
}

// TestInspectBatchMatchesInspect runs the same packets through
// InspectBatch and the serial path and compares reports slot by slot
// (stateless chain 2, so batch completion order cannot matter).
func TestInspectBatchMatchesInspect(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	var items []BatchItem
	payloads := [][]byte{
		[]byte("clean"), []byte("has malware-body inside"),
		[]byte("an evil payload"), []byte("nothing here"),
	}
	for i := 0; i < 128; i++ {
		items = append(items, BatchItem{
			Tag: 2, Tuple: parallelFlowTuple(i % 16), Payload: payloads[i%len(payloads)],
		})
	}
	e.InspectBatch(items, 8)
	for i := range items {
		if items[i].Err != nil {
			t.Fatal(items[i].Err)
		}
		wantRep, err := ref.Inspect(2, items[i].Tuple, items[i].Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := flatten(items[i].Report), flatten(wantRep); !reflect.DeepEqual(got, want) {
			t.Errorf("item %d: report %v, want %v", i, got, want)
		}
	}
	if ps, rs := e.Snapshot(), ref.Snapshot(); ps != rs {
		t.Errorf("snapshots differ: batch %+v, serial %+v", ps, rs)
	}
}

// TestPoolScansAndHotSwaps exercises the persistent worker pool,
// including the engine-resolver indirection used for config hot swaps.
func TestPoolScansAndHotSwaps(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(func() *Engine { return e }, 4, 0)
	defer pool.Close()
	jobs := make([]*Job, 64)
	for i := range jobs {
		jobs[i] = &Job{Tag: 2, Tuple: parallelFlowTuple(i % 8), Payload: []byte("an evil payload"), Ctx: i}
		pool.Submit(jobs[i])
	}
	for i, j := range jobs {
		j.Wait()
		if j.Err != nil {
			t.Fatal(j.Err)
		}
		if j.Ctx.(int) != i {
			t.Errorf("job %d: ctx %v", i, j.Ctx)
		}
		if got := flatten(j.Report); len(got) != 1 || got[0].pat != 1 {
			t.Errorf("job %d: report %v", i, got)
		}
	}
	if s := e.Snapshot(); s.Packets != 64 {
		t.Errorf("Packets = %d, want 64", s.Packets)
	}
}

// TestTelemetrySorted pins the deterministic ordering of the telemetry
// accessors (consumers diff successive snapshots).
func TestTelemetrySorted(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 63; i >= 0; i-- { // insert flows in descending order
		if _, err := e.Inspect(1, parallelFlowTuple(i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	fs := e.FlowStats()
	if len(fs) != 64 {
		t.Fatalf("FlowStats len = %d", len(fs))
	}
	for i := 1; i < len(fs); i++ {
		if !tupleLess(fs[i-1].Tuple, fs[i].Tuple) {
			t.Fatalf("FlowStats unsorted at %d: %v before %v", i, fs[i-1].Tuple, fs[i].Tuple)
		}
	}
	if got := e.Chains(); !reflect.DeepEqual(got, []uint16{1, 2}) {
		t.Errorf("Chains = %v", got)
	}
	cs := e.ChainStats()
	if len(cs) != 2 || cs[0].Tag != 1 || cs[1].Tag != 2 {
		t.Errorf("ChainStats = %+v", cs)
	}
}
