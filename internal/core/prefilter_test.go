package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"dpiservice/internal/obs"
	"dpiservice/internal/patterns"
)

// longPatternConfig builds a two-middlebox instance whose patterns are
// all long enough (>= 7 bytes) for the prefilter to compile active
// (stride 4), unlike twoBoxConfig whose "evil" forces fallback.
func longPatternConfig() Config {
	return Config{
		Profiles: []Profile{
			{ID: 0, Name: "ids", Stateful: true, ReadOnly: true,
				Patterns: patterns.FromStrings("ids", []string{"attack-signature", "/etc/passwd", "User-Agent: evilbot"})},
			{ID: 1, Name: "av", Stateful: false,
				Patterns: patterns.FromStrings("av", []string{"malware-body", "X5O!P%@AP[4\\PZX54(P^)7CC)7"})},
		},
		Chains: map[uint16][]int{1: {0, 1}, 2: {1}},
	}
}

// prefilterTestPayloads builds a deterministic payload mix: mostly
// innocent HTTP-ish text, some payloads with injected patterns, one
// splitting a pattern across two packets (stateful path).
func prefilterTestPayloads(rng *rand.Rand) [][]byte {
	inject := []string{"attack-signature", "/etc/passwd", "malware-body", "User-Agent: evilbot"}
	var out [][]byte
	for i := 0; i < 60; i++ {
		n := 100 + rng.Intn(1200)
		p := make([]byte, n)
		for j := range p {
			p[j] = byte(' ' + rng.Intn(95))
		}
		if i%5 == 0 {
			pat := inject[rng.Intn(len(inject))]
			pos := rng.Intn(n - len(pat))
			copy(p[pos:], pat)
		}
		out = append(out, p)
	}
	out = append(out, []byte("prefix carrying attack-si"), []byte("gnature completed here"))
	return out
}

// TestAutoPrefilterMatchesAutoFull runs identical traffic through an
// AutoFull engine and an AutoPrefilter engine and requires identical
// reports and counters — the engine-level version of the mpm
// equivalence guarantee.
func TestAutoPrefilterMatchesAutoFull(t *testing.T) {
	for name, mk := range map[string]func() Config{"active": longPatternConfig, "fallback": twoBoxConfig} {
		t.Run(name, func(t *testing.T) {
			cfgPf := mk()
			cfgPf.Kind = AutoPrefilter
			pf, err := NewEngine(cfgPf)
			if err != nil {
				t.Fatal(err)
			}
			full, err := NewEngine(mk())
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			for i, payload := range prefilterTestPayloads(rng) {
				tag := uint16(1 + i%2)
				gotRep, err := pf.Inspect(tag, parallelFlowTuple(i%4), payload)
				if err != nil {
					t.Fatal(err)
				}
				wantRep, err := full.Inspect(tag, parallelFlowTuple(i%4), payload)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := flatten(gotRep), flatten(wantRep); !reflect.DeepEqual(got, want) {
					t.Fatalf("payload %d: report %v, want %v", i, got, want)
				}
			}
			if ps, fs := pf.Snapshot(), full.Snapshot(); ps != fs {
				t.Errorf("snapshots differ: prefilter %+v, full %+v", ps, fs)
			}
		})
	}
}

// TestPrefilterCounters checks the obs wiring: an active-prefilter
// engine advances probe counters on long innocent payloads and sets the
// enabled gauge; a fallback engine routes scans to plain counters.
func TestPrefilterCounters(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := longPatternConfig()
	cfg.Kind = AutoPrefilter
	cfg.Metrics = reg
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Gauge("core.prefilter_enabled").Value() != 1 {
		t.Error("core.prefilter_enabled gauge not set")
	}
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	if _, err := e.Inspect(2, testTuple, payload); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("core.prefilter_probes").Value(); v == 0 {
		t.Error("core.prefilter_probes did not advance")
	}
	// A payload shorter than the plain-scan threshold routes plain.
	if _, err := e.Inspect(2, testTuple, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("core.prefilter_plain_scans").Value(); v == 0 {
		t.Error("core.prefilter_plain_scans did not advance")
	}

	regFb := obs.NewRegistry()
	cfgFb := twoBoxConfig() // "evil" is 4 bytes: compile-time fallback
	cfgFb.Kind = AutoPrefilter
	cfgFb.Metrics = regFb
	fb, err := NewEngine(cfgFb)
	if err != nil {
		t.Fatal(err)
	}
	if regFb.Gauge("core.prefilter_enabled").Value() != 0 {
		t.Error("fallback engine reported prefilter enabled")
	}
	if _, err := fb.Inspect(2, testTuple, payload); err != nil {
		t.Fatal(err)
	}
	if v := regFb.Counter("core.prefilter_plain_scans").Value(); v == 0 {
		t.Error("fallback engine did not count plain scans")
	}
}

// TestBatchInterleaveConfig pins the BatchInterleave knob: 1 disables
// lane batching, negative values are rejected, and a disabled engine
// still batches correctly.
func TestBatchInterleaveConfig(t *testing.T) {
	cfg := twoBoxConfig()
	cfg.BatchInterleave = -2
	if _, err := NewEngine(cfg); !errors.Is(err, ErrBadProfile) {
		t.Fatalf("negative BatchInterleave: err = %v, want ErrBadProfile", err)
	}

	off := twoBoxConfig()
	off.BatchInterleave = 1
	e, err := NewEngine(off)
	if err != nil {
		t.Fatal(err)
	}
	if e.acLanes != nil {
		t.Fatal("BatchInterleave=1 left lane batching enabled")
	}
	ref, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ref.acLanes == nil || ref.lanesPer != defaultBatchLanes {
		t.Fatalf("default engine lanes: %v x%d, want enabled x%d", ref.acLanes != nil, ref.lanesPer, defaultBatchLanes)
	}
	var items, refItems []BatchItem
	for i := 0; i < 64; i++ {
		p := []byte("an evil payload with malware-body inside")
		items = append(items, BatchItem{Tag: 2, Tuple: parallelFlowTuple(i % 8), Payload: p})
		refItems = append(refItems, BatchItem{Tag: 2, Tuple: parallelFlowTuple(i % 8), Payload: p})
	}
	e.InspectBatch(items, 4)
	ref.InspectBatch(refItems, 4)
	for i := range items {
		if items[i].Err != nil || refItems[i].Err != nil {
			t.Fatal(items[i].Err, refItems[i].Err)
		}
		if got, want := flatten(items[i].Report), flatten(refItems[i].Report); !reflect.DeepEqual(got, want) {
			t.Fatalf("item %d: solo %v, interleaved %v", i, got, want)
		}
	}
}

// TestInspectBatchMixedChains drives stateful and stateless chains plus
// unknown tags through the grouped batch path: stateful items must scan
// solo (same-flow packets in one group must not deadlock), unknown tags
// must error per item, and every report must match a serial reference.
func TestInspectBatchMixedChains(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	var items []BatchItem
	for i := 0; i < 40; i++ {
		tag := uint16(1 + i%2) // chain 1 is stateful, chain 2 stateless
		if i%13 == 12 {
			tag = 999 // unknown
		}
		items = append(items, BatchItem{
			// One tuple per stateful chain keeps a flow's packets
			// repeatedly in the same group.
			Tag: tag, Tuple: parallelFlowTuple(int(tag)), Payload: []byte("an evil payload"),
		})
	}
	// Single worker so the stateful chain sees its packets in order and
	// the serial reference below is comparable.
	e.InspectBatch(items, 1)
	for i := range items {
		if items[i].Tag == 999 {
			if !errors.Is(items[i].Err, ErrUnknownChain) {
				t.Fatalf("item %d: err = %v, want unknown chain", i, items[i].Err)
			}
			continue
		}
		if items[i].Err != nil {
			t.Fatal(items[i].Err)
		}
		wantRep, err := ref.Inspect(items[i].Tag, items[i].Tuple, items[i].Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := flatten(items[i].Report), flatten(wantRep); !reflect.DeepEqual(got, want) {
			t.Fatalf("item %d: report %v, want %v", i, got, want)
		}
	}
}
