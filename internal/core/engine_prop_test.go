package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dpiservice/internal/patterns"
)

// TestFragmentationInvariance is the engine-level version of the mpm
// streaming property: for a stateful middlebox, any fragmentation of a
// byte stream into packets yields exactly the same match set (patterns
// and stream positions) as any other fragmentation.
func TestFragmentationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pats := []string{"abab", "babb", "aaaa", "abba", "bbbb"}
	mkEngine := func() *Engine {
		cfg := Config{
			Profiles: []Profile{{ID: 0, Stateful: true, Patterns: patterns.FromStrings("s", pats)}},
			Chains:   map[uint16][]int{1: {0}},
		}
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	type m struct {
		pat uint16
		pos uint16
	}
	scan := func(e *Engine, stream []byte, cuts []int) []m {
		var out []m
		prev := 0
		for _, c := range append(cuts, len(stream)) {
			rep, err := e.Inspect(1, testTuple, stream[prev:c])
			if err != nil {
				t.Fatal(err)
			}
			prev = c
			if rep == nil {
				continue
			}
			for _, sec := range rep.Sections {
				for _, en := range sec.Entries {
					for k := uint16(0); k < en.Count; k++ {
						out = append(out, m{en.Pattern, en.Pos + k})
					}
				}
			}
		}
		return out
	}
	for trial := 0; trial < 40; trial++ {
		stream := make([]byte, 200+rng.Intn(200))
		for i := range stream {
			stream[i] = byte('a' + rng.Intn(2))
		}
		// Two random fragmentations of the same stream.
		mkCuts := func() []int {
			var cuts []int
			for p := 1 + rng.Intn(40); p < len(stream); p += 1 + rng.Intn(40) {
				cuts = append(cuts, p)
			}
			return cuts
		}
		a := scan(mkEngine(), stream, mkCuts())
		b := scan(mkEngine(), stream, mkCuts())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: fragmentations disagree:\n%v\n%v", trial, a, b)
		}
	}
}

// TestConcurrentInspect hammers one engine from several goroutines
// (mixed flows, chains and payloads) to exercise the engine's internal
// synchronization under the race detector.
func TestConcurrentInspect(t *testing.T) {
	cfg := twoBoxConfig()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			tuple := testTuple
			payloads := [][]byte{
				[]byte("nothing here"),
				[]byte("attack-sig"),
				[]byte("evil evil evil"),
				[]byte("malware-body and /etc/passwd"),
			}
			for i := 0; i < 500; i++ {
				tuple.SrcPort = uint16(rng.Intn(32))
				tag := uint16(1 + rng.Intn(2))
				if _, err := e.Inspect(tag, tuple, payloads[rng.Intn(len(payloads))]); err != nil {
					t.Error(err)
					return
				}
				if rng.Intn(50) == 0 {
					e.EndFlow(tuple)
				}
				if rng.Intn(100) == 0 {
					_ = e.FlowStats()
					_ = e.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := e.Snapshot()
	if s.Packets != 2000 {
		t.Errorf("Packets = %d, want 2000", s.Packets)
	}
}

// TestManyMiddleboxChains exercises an instance serving several chains
// over eight middlebox sets, checking that every chain sees exactly its
// own sets' matches.
func TestManyMiddleboxChains(t *testing.T) {
	cfg := Config{Chains: map[uint16][]int{}}
	needle := make([]string, 8)
	for i := 0; i < 8; i++ {
		needle[i] = "needle-of-set-" + string(rune('0'+i))
		cfg.Profiles = append(cfg.Profiles, Profile{
			ID: i, Patterns: patterns.FromStrings("s", []string{needle[i], "shared-by-all"}),
		})
	}
	cfg.Chains[1] = []int{0, 1, 2, 3, 4, 5, 6, 7}
	cfg.Chains[2] = []int{0}
	cfg.Chains[3] = []int{6, 7}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("shared-by-all plus needle-of-set-6 here")
	for tag, wantSets := range map[uint16][]uint8{
		1: {0, 1, 2, 3, 4, 5, 6, 7},
		2: {0},
		3: {6, 7},
	} {
		tuple := testTuple
		tuple.SrcPort = tag
		rep, err := e.Inspect(tag, tuple, payload)
		if err != nil {
			t.Fatal(err)
		}
		var gotSets []uint8
		for _, sec := range rep.Sections {
			gotSets = append(gotSets, sec.Mbox)
		}
		if !reflect.DeepEqual(gotSets, wantSets) {
			t.Errorf("tag %d: sets %v, want %v", tag, gotSets, wantSets)
		}
		// Set 6 must additionally carry its needle on chains that
		// include it.
		if sec := rep.SectionFor(6); sec != nil {
			if len(sec.Entries) != 2 {
				t.Errorf("tag %d set 6 entries = %v", tag, sec.Entries)
			}
		}
	}
}

// TestDecompressedRegexConfirmation combines two engine features: a
// regex whose anchors live inside a gzip-compressed payload.
func TestDecompressedRegexConfirmation(t *testing.T) {
	set := &patterns.Set{Name: "rx"}
	set.Regexes = []patterns.Regex{{ID: 0, Expr: `token=[a-f0-9]{8}secret`}}
	cfg := Config{
		Profiles:   []Profile{{ID: 0, Patterns: set}},
		Chains:     map[uint16][]int{1: {0}},
		Decompress: true,
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzipBytes(t, []byte("blah token=deadbeefsecret blah"))
	rep, err := e.Inspect(1, testTuple, gz)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.NumMatches() != 1 {
		t.Fatalf("report = %+v", rep)
	}
}
