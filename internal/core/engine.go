package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dpiservice/internal/mpm"
	"dpiservice/internal/obs"
	"dpiservice/internal/packet"
	"dpiservice/internal/regexengine"
	"dpiservice/internal/trace"
)

// Engine is one DPI service instance's scanning engine. It is safe for
// concurrent use and scans different flows in parallel: the flow table
// is sharded by tuple hash, every per-scan mutable structure lives in a
// pooled scratch record, and telemetry counters are atomic, so the hot
// path takes no global lock. A single instance can therefore use all of
// a machine's cores — the in-process equivalent of the paper's "k VMs,
// one per core" deployment (Section 6.2, Figure 8).
type Engine struct {
	auto mpm.Automaton
	// pf is the concrete two-stage matcher when Kind is AutoPrefilter
	// (the same object as auto); the scan path uses it directly so
	// prefilter telemetry flows without an interface indirection.
	pf *mpm.PrefilteredAC
	// acLanes is the concrete full-table automaton when Kind is AutoFull
	// and batch interleaving is enabled: InspectBatch advances up to
	// lanesPer packets' scans in lockstep through it.
	acLanes  *mpm.ACFull
	lanesPer int
	// autoFold matches the case-insensitive (Snort nocase) patterns
	// against a case-folded view of the payload; nil when no profile
	// has any.
	autoFold mpm.Automaton
	foldMask uint64 // sets contributing nocase patterns
	profiles map[int]*compiledProfile
	// profileBySet is the hot-path view of profiles, indexed by set ID
	// (dense, nil holes) so emit avoids a map lookup per match.
	profileBySet []*compiledProfile
	// rxProfiles lists the profiles with regular expressions, in the
	// order their per-scan anchor scratch is laid out in scratch.rx.
	rxProfiles []*compiledProfile
	chains     map[uint16]*chainInfo
	cfg        Config

	// The flow table is sharded by FiveTuple.FastHash. Each shard has
	// its own lock, map and LRU clock, so packets of different flows
	// proceed concurrently.
	shards    []*flowShard
	shardMask uint64

	scratchPool sync.Pool // of *scratch
	// met caches the obs instruments (Config.Metrics or a private
	// registry); the hot path updates them through cached pointers.
	met *engineMetrics
	// fl is the optional flight recorder; rare events (flow evictions)
	// land there for post-mortem dumps. Set once before traffic.
	fl *trace.Flight
}

// SetFlight attaches a flight recorder so rare engine events (flow
// evictions) are captured for post-mortem dumps. Call once at setup
// time, before traffic flows; a nil recorder disables recording.
func (e *Engine) SetFlight(f *trace.Flight) { e.fl = f }

// StatsSnapshot is a plain-value copy of the engine's cumulative
// counters: Packets/Bytes presented, BytesScanned fed to the
// automaton, Matches reported post-filter, Reports produced non-empty,
// and the flow/regex/decompression counters.
type StatsSnapshot struct {
	Packets, Bytes, BytesScanned, Matches, Reports       uint64
	FlowsEvicted, RegexConfirms, RegexHits, Decompressed uint64
}

type chainInfo struct {
	tag     uint16
	members []*compiledProfile
	mask    uint64
	// anyUnlimited is set when some member scans unbounded; otherwise
	// statelessStop is the deepest finite stopping condition among the
	// stateless members (packet coordinates) and statefulLimited holds
	// the stateful members whose remaining depth shrinks with the flow
	// offset — the only per-packet recomputation left (Section 5.2).
	anyUnlimited    bool
	statelessStop   int
	statefulLimited []*compiledProfile
	anyStateful     bool
	// rxMembers holds the members with regular expressions so the
	// confirmation stage skips the rest.
	rxMembers []*compiledProfile

	// Per-chain counters — the controller uses these to decide
	// grouping and scale-out (Section 4.3). Atomic: chains are scanned
	// from many goroutines at once.
	packets atomic.Uint64
	bytes   atomic.Uint64
	matches atomic.Uint64
}

type compiledProfile struct {
	Profile
	bit uint64
	rx  *regexengine.Engine
	// rxIndex is this profile's slot in scratch.rx (per-scan anchor
	// bookkeeping); -1 when the profile has no regexes.
	rxIndex int
	// constraints holds Snort-style offset/depth windows for the
	// patterns that declared them; nil when the set has none so the
	// hot path pays nothing.
	constraints map[uint16]posConstraint
	// anchorOwner maps anchor ordinal (automaton pattern ID minus
	// RegexReportBase) to the owning regex slot and the anchor's index
	// within that regex.
	anchorOwner []anchorOwner
	regexSlots  []regexSlot
	hasPoor     bool
}

// posConstraint is a Snort offset/depth window: the match must start at
// or after Start, and with Limit > 0 must end at or before Limit.
type posConstraint struct {
	Start int64
	Limit int64
}

type anchorOwner struct {
	slot int // index into regexSlots
	idx  int // anchor index within the regex
}

type regexSlot struct {
	id         int // regex ID within the middlebox's set
	numAnchors int
}

// numShards picks a power-of-two shard count scaled to GOMAXPROCS (with
// headroom so unrelated flows rarely contend), bounded so that every
// shard can hold at least one flow under the configured table limit.
func numShards(override, maxFlows int) int {
	n := override
	if n <= 0 {
		n = runtime.GOMAXPROCS(0) * 4
		if n < 8 {
			n = 8
		}
	}
	shards := 1
	for shards < n && shards < 256 {
		shards <<= 1
	}
	for shards > 1 && maxFlows/shards < 1 {
		shards >>= 1
	}
	return shards
}

// NewEngine compiles the configuration into a ready engine: it merges
// every profile's exact patterns and extracted regex anchors into one
// automaton and precomputes the per-chain masks and stopping conditions
// (Section 5.1's initialization).
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		profiles:     make(map[int]*compiledProfile, len(cfg.Profiles)),
		profileBySet: make([]*compiledProfile, mpm.MaxSets),
		chains:       make(map[uint16]*chainInfo, len(cfg.Chains)),
		cfg:          cfg,
	}
	b := mpm.NewBuilder()
	bFold := mpm.NewBuilder()
	for _, p := range cfg.Profiles {
		cp := &compiledProfile{Profile: p, bit: 1 << uint(p.ID), rxIndex: -1}
		for _, pat := range p.Patterns.Patterns {
			if pat.NoCase {
				// Case-insensitive patterns live in the fold automaton
				// and are matched against a lowercased payload view.
				if err := bFold.Add(p.ID, pat.ID, strings.ToLower(pat.Content)); err != nil {
					return nil, fmt.Errorf("core: middlebox %d nocase pattern %d: %w", p.ID, pat.ID, err)
				}
				e.foldMask |= 1 << uint(p.ID)
			} else if err := b.Add(p.ID, pat.ID, pat.Content); err != nil {
				return nil, fmt.Errorf("core: middlebox %d pattern %d: %w", p.ID, pat.ID, err)
			}
			if pat.Offset > 0 || pat.Depth > 0 {
				if cp.constraints == nil {
					cp.constraints = make(map[uint16]posConstraint)
				}
				c := posConstraint{Start: int64(pat.Offset)}
				if pat.Depth > 0 {
					c.Limit = int64(pat.Offset + pat.Depth)
				}
				cp.constraints[uint16(pat.ID)] = c
			}
		}
		if len(p.Patterns.Regexes) > 0 {
			cp.rx = regexengine.New(cfg.MinAnchorLen)
			for _, rx := range p.Patterns.Regexes {
				c, err := cp.rx.Add(rx.ID, rx.Expr)
				if err != nil {
					return nil, fmt.Errorf("core: middlebox %d: %w", p.ID, err)
				}
				slot := len(cp.regexSlots)
				cp.regexSlots = append(cp.regexSlots, regexSlot{id: rx.ID, numAnchors: len(c.Anchors)})
				if c.AnchorPoor() {
					cp.hasPoor = true
					continue
				}
				for ai, anchor := range c.Anchors {
					ord := len(cp.anchorOwner)
					autoID := RegexReportBase + ord
					if autoID >= mpm.MaxPatternsPerSet {
						return nil, fmt.Errorf("core: middlebox %d: too many regex anchors", p.ID)
					}
					if err := b.Add(p.ID, autoID, anchor); err != nil {
						return nil, fmt.Errorf("core: middlebox %d anchor %q: %w", p.ID, anchor, err)
					}
					cp.anchorOwner = append(cp.anchorOwner, anchorOwner{slot: slot, idx: ai})
				}
			}
			cp.rxIndex = len(e.rxProfiles)
			e.rxProfiles = append(e.rxProfiles, cp)
		}
		e.profiles[p.ID] = cp
		e.profileBySet[p.ID] = cp
	}
	e.lanesPer = cfg.BatchInterleave
	if e.lanesPer == 0 {
		e.lanesPer = defaultBatchLanes
	}
	if e.lanesPer > maxBatchLanes {
		e.lanesPer = maxBatchLanes
	}
	var (
		auto mpm.Automaton
		err  error
	)
	switch cfg.Kind {
	case AutoFull:
		var full *mpm.ACFull
		if full, err = b.BuildFull(); err == nil {
			auto = full
			if e.lanesPer > 1 {
				e.acLanes = full
			}
		}
	case AutoCompact:
		auto, err = b.BuildCompact()
	case AutoBitmap:
		auto, err = b.BuildBitmap()
	case AutoPrefilter:
		var pf *mpm.PrefilteredAC
		if pf, err = b.BuildPrefiltered(); err == nil {
			auto = pf
			e.pf = pf
		}
	default:
		return nil, fmt.Errorf("core: unknown automaton kind %d", cfg.Kind)
	}
	if err != nil {
		// A configuration with only regexes and no extractable anchors
		// yields an empty automaton; that is still a valid instance.
		if err != mpm.ErrNoPatterns {
			return nil, err
		}
		auto = nil
	}
	e.auto = auto
	if bFold.NumPatterns() > 0 {
		var fold mpm.Automaton
		switch cfg.Kind {
		case AutoCompact:
			fold, err = bFold.BuildCompact()
		case AutoBitmap:
			fold, err = bFold.BuildBitmap()
		default:
			fold, err = bFold.BuildFull()
		}
		if err != nil {
			return nil, err
		}
		e.autoFold = fold
	}
	for tag, members := range cfg.Chains {
		ci := &chainInfo{tag: tag}
		for _, id := range members {
			p := e.profiles[id]
			ci.members = append(ci.members, p)
			ci.mask |= p.bit
			if p.Stateful {
				ci.anyStateful = true
			}
			if p.rx != nil {
				ci.rxMembers = append(ci.rxMembers, p)
			}
			// Stopping conditions are resolved here, once, instead of
			// per packet: only stateful members with a finite depth
			// still depend on the flow offset at scan time.
			switch {
			case p.StopAfter == 0:
				ci.anyUnlimited = true
			case p.Stateful:
				ci.statefulLimited = append(ci.statefulLimited, p)
			case p.StopAfter > ci.statelessStop:
				ci.statelessStop = p.StopAfter
			}
		}
		e.chains[tag] = ci
	}
	n := numShards(cfg.Shards, cfg.MaxFlows)
	e.shards = make([]*flowShard, n)
	e.shardMask = uint64(n - 1)
	perShard := cfg.MaxFlows / n
	if perShard < 1 {
		perShard = 1
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e.met = newEngineMetrics(reg, n)
	for i := range e.shards {
		e.shards[i] = &flowShard{
			flows:    make(map[packet.FiveTuple]*flowState),
			maxFlows: perShard,
			scans:    e.met.shardScans[i],
		}
	}
	// Build-time facts exported as gauges so a /metrics scrape carries
	// the instance's static shape alongside its traffic counters.
	reg.Gauge("core.shards").Set(int64(n))
	reg.Gauge("core.patterns").Set(int64(e.NumPatterns()))
	reg.Gauge("core.states").Set(int64(e.NumStates()))
	reg.Gauge("core.memory_bytes").Set(e.MemoryBytes())
	if e.pf != nil && !e.pf.Fallback() {
		reg.Gauge("core.prefilter_enabled").Set(1)
	}
	if e.acLanes != nil {
		reg.Gauge("core.batch_lanes").Set(int64(e.lanesPer))
	}
	e.scratchPool.New = func() any { return e.newScratch() }
	return e, nil
}

// appendLowerASCII appends an ASCII-lowercased copy of src to dst.
func appendLowerASCII(dst, src []byte) []byte {
	for _, c := range src {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

// checkWindow applies a pattern's offset/depth window given its end
// position; patterns without a declared window always pass.
func checkWindow(constraints map[uint16]posConstraint, r mpm.PatternRef, end int64) bool {
	c, ok := constraints[r.ID]
	if !ok {
		return true
	}
	start := end - int64(r.Len)
	if start < c.Start {
		return false
	}
	if c.Limit > 0 && end > c.Limit {
		return false
	}
	return true
}

// Inspect scans one packet payload belonging to the given policy-chain
// tag and flow tuple, returning the match report for the chain's
// middleboxes, or nil when nothing matched (the common case — the packet
// is then forwarded entirely unmodified). The returned report is freshly
// allocated and owned by the caller.
//
// Inspect is re-entrant: calls for different flows run fully in
// parallel, and calls for the same flow contend only on that flow's
// state (and only when the chain is stateful). Concurrent packets of
// one stateful flow are serialized in lock-acquisition order, so
// callers needing exact stream order must submit a flow's packets
// sequentially.
//
//dpi:hotpath
func (e *Engine) Inspect(tag uint16, tuple packet.FiveTuple, payload []byte) (*packet.Report, error) {
	chain, ok := e.chains[tag]
	if !ok {
		//dpi:coldalloc(error branch: unknown chain tags are a config bug, not traffic)
		return nil, &UnknownChainError{Tag: tag}
	}
	s := e.scratchPool.Get().(*scratch)
	rep := e.inspect(chain, tuple, payload, s)
	e.scratchPool.Put(s)
	return rep, nil
}

// inspect runs one scan using the given scratch. The chain has already
// been resolved. The body is split into prepare / DFA stage / finish so
// InspectBatch can run the DFA stage of several prepared scans in
// lockstep (see inspectGroup); this function is the one-packet
// composition of the three stages.
//
//dpi:hotpath
func (e *Engine) inspect(chain *chainInfo, tuple packet.FiveTuple, payload []byte, s *scratch) *packet.Report {
	e.prepare(chain, tuple, payload, s)
	if e.auto != nil && s.ps.limit > 0 {
		if e.pf != nil {
			// The concrete two-stage matcher, so telemetry accumulates
			// into the scratch and finish can fold it into the counters.
			s.ps.state = e.pf.ScanStats(s.ps.scanData[:s.ps.limit], s.ps.state, chain.mask, s.emitFn, &s.pfStats)
		} else {
			s.ps.state = e.auto.Scan(s.ps.scanData[:s.ps.limit], s.ps.state, chain.mask, s.emitFn)
		}
		e.met.bytesScanned.Add(uint64(s.ps.limit))
	}
	return e.finish(s)
}

// prepare runs everything ahead of the main DFA stage of one scan:
// per-packet metrics, decompression, flow lookup (taking the flow lock
// on stateful chains — held until finish), stopping conditions, and
// report reset. The resulting scan plan is left in s.ps.
//
//dpi:hotpath
func (e *Engine) prepare(chain *chainInfo, tuple packet.FiveTuple, payload []byte, s *scratch) {
	e.met.packets.Inc()
	e.met.bytes.Add(uint64(len(payload)))
	e.met.payloadBytes.Observe(uint64(len(payload)))
	s.epoch++

	// One-time decompression (Section 1): the service decompresses so
	// no middlebox has to.
	scanData := payload
	if e.cfg.Decompress && len(payload) >= 2 && payload[0] == 0x1f && payload[1] == 0x8b {
		if dec, err := s.decompress(payload); err == nil {
			scanData = dec
			e.met.decompressed.Inc()
		}
	}

	// The flow record carries the DFA scan state for stateful chains
	// and, for every chain, the per-flow telemetry MCA² consumes
	// (Section 4.3.1).
	sh := e.shards[tuple.FastHash()&e.shardMask]
	sh.scans.Inc()
	fs := sh.flow(e, tuple)
	state := mpm.State(0)
	if e.auto != nil {
		state = e.auto.Start()
	}
	foldState := mpm.State(0)
	if e.autoFold != nil {
		foldState = e.autoFold.Start()
	}
	var offset int64
	if chain.anyStateful {
		// The flow lock serializes stateful scans of this one flow;
		// packets of other flows are unaffected.
		fs.mu.Lock()
		state = fs.state
		if e.autoFold != nil && fs.foldStarted {
			foldState = fs.foldState
		}
		offset = fs.offset
	}

	// Determine how deep this packet must be scanned: the most
	// conservative (deepest) stopping condition among active
	// middleboxes (Section 5.2). The stateless part was folded into
	// one number at engine build time; only stateful members' windows
	// move with the flow offset.
	limit := len(scanData)
	if !chain.anyUnlimited {
		deepest := int64(chain.statelessStop)
		for _, p := range chain.statefulLimited {
			if remaining := int64(p.StopAfter) - offset; remaining > deepest {
				deepest = remaining
			}
		}
		if deepest < int64(limit) {
			limit = int(deepest)
		}
	}

	s.report.Reset()
	s.cur = scanCtx{chain: chain, report: &s.report, offset: offset, fromRestore: chain.anyStateful && offset > 0}
	s.ps = pscan{chain: chain, fs: fs, scanData: scanData, limit: limit, state: state, foldState: foldState, offset: offset}
}

// finish completes a prepared scan after the main DFA stage has run
// (s.ps.state updated): the case-fold scan, regex confirmation, flow
// state write-back, counters, and the report hand-off. On stateful
// chains the flow lock prepare took is still held on entry and is
// released here — the locked(mu) contract below.
//
//dpi:hotpath
//dpi:locked(mu)
func (e *Engine) finish(s *scratch) *packet.Report {
	chain, fs := s.ps.chain, s.ps.fs
	scanData, limit, offset := s.ps.scanData, s.ps.limit, s.ps.offset
	foldState := s.ps.foldState
	if e.pf != nil {
		e.met.notePrefilter(&s.pfStats)
		s.pfStats = mpm.PrefilterStats{}
	}
	if e.autoFold != nil && limit > 0 && chain.mask&e.foldMask != 0 {
		s.foldBuf = appendLowerASCII(s.foldBuf[:0], scanData[:limit])
		foldState = e.autoFold.Scan(s.foldBuf, foldState, chain.mask, s.emitFn)
	}
	s.finishRegexes(chain, scanData, offset)

	if chain.anyStateful {
		fs.state = s.ps.state
		if e.autoFold != nil {
			fs.foldState = foldState
			fs.foldStarted = true
		}
		fs.offset = offset + int64(len(scanData))
		fs.mu.Unlock()
	}
	fs.bytes.Add(uint64(len(scanData)))
	fs.matches.Add(s.cur.matches)
	chain.packets.Add(1)
	chain.bytes.Add(uint64(len(scanData)))
	chain.matches.Add(s.cur.matches)
	e.met.matches.Add(s.cur.matches)
	s.cur = scanCtx{}
	s.ps = pscan{}
	if s.report.Empty() {
		return nil
	}
	e.met.reports.Inc()
	// The scratch (and its report) go back to the pool; hand the
	// caller an owned copy. Non-empty reports are the rare case
	// (Section 6.5: >90% of packets match nothing), so the common path
	// stays allocation-free.
	//dpi:coldalloc(match path: Clone inlined here, runs only for matched packets)
	return s.report.Clone()
}

// EndFlow discards the scan state of a finished flow (e.g. on TCP FIN).
func (e *Engine) EndFlow(tuple packet.FiveTuple) {
	sh := e.shards[tuple.FastHash()&e.shardMask]
	sh.mu.Lock()
	_, ok := sh.flows[tuple]
	if ok {
		delete(sh.flows, tuple)
	}
	sh.mu.Unlock()
	if ok {
		e.met.flowsActive.Add(-1)
	}
}

// ActiveFlows reports the number of tracked flows.
func (e *Engine) ActiveFlows() int {
	n := 0
	for _, sh := range e.shards {
		sh.mu.Lock()
		n += len(sh.flows)
		sh.mu.Unlock()
	}
	return n
}

// NumShards reports the flow-table shard count (the engine's degree of
// flow-level parallelism).
func (e *Engine) NumShards() int { return len(e.shards) }

// FlowStat is the per-flow telemetry MCA² uses to spot heavy flows.
type FlowStat struct {
	Tuple   packet.FiveTuple
	Bytes   uint64
	Matches uint64
}

// FlowStats snapshots per-flow telemetry, sorted by tuple so repeated
// snapshots diff cleanly.
func (e *Engine) FlowStats() []FlowStat {
	var out []FlowStat
	for _, sh := range e.shards {
		sh.mu.Lock()
		for t, fs := range sh.flows {
			out = append(out, FlowStat{Tuple: t, Bytes: fs.bytes.Load(), Matches: fs.matches.Load()})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return tupleLess(out[i].Tuple, out[j].Tuple) })
	return out
}

// tupleLess orders five-tuples lexicographically by (src, dst, sport,
// dport, proto) — the deterministic telemetry order.
func tupleLess(a, b packet.FiveTuple) bool {
	if a.Src != b.Src {
		return string(a.Src[:]) < string(b.Src[:])
	}
	if a.Dst != b.Dst {
		return string(a.Dst[:]) < string(b.Dst[:])
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Protocol < b.Protocol
}

// Snapshot returns a copy of the cumulative counters (read from the
// engine's obs registry, which is the single source of truth).
func (e *Engine) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Packets:       e.met.packets.Value(),
		Bytes:         e.met.bytes.Value(),
		BytesScanned:  e.met.bytesScanned.Value(),
		Matches:       e.met.matches.Value(),
		Reports:       e.met.reports.Value(),
		FlowsEvicted:  e.met.flowsEvicted.Value(),
		RegexConfirms: e.met.regexConfirms.Value(),
		RegexHits:     e.met.regexHits.Value(),
		Decompressed:  e.met.decompressed.Value(),
	}
}

// MemoryBytes estimates the engine's data-structure footprint — the
// quantity Table 2's Space column reports.
func (e *Engine) MemoryBytes() int64 {
	if e.auto == nil {
		return 0
	}
	return e.auto.MemoryBytes()
}

// NumStates reports the merged automaton's state count.
func (e *Engine) NumStates() int {
	if e.auto == nil {
		return 0
	}
	return e.auto.NumStates()
}

// NumPatterns reports the merged automaton's pattern count, including
// regex anchors.
func (e *Engine) NumPatterns() int {
	if e.auto == nil {
		return 0
	}
	return e.auto.NumPatterns()
}

// ChainStat is one chain's traffic counters.
type ChainStat struct {
	Tag     uint16
	Packets uint64
	Bytes   uint64
	Matches uint64
}

// ChainStats snapshots per-chain counters, sorted by tag.
func (e *Engine) ChainStats() []ChainStat {
	out := make([]ChainStat, 0, len(e.chains))
	for tag, ci := range e.chains {
		out = append(out, ChainStat{
			Tag:     tag,
			Packets: ci.packets.Load(),
			Bytes:   ci.bytes.Load(),
			Matches: ci.matches.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// Chains returns the configured policy-chain tags, sorted.
func (e *Engine) Chains() []uint16 {
	tags := make([]uint16, 0, len(e.chains))
	for t := range e.chains {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags
}
