package core

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dpiservice/internal/mpm"
	"dpiservice/internal/packet"
	"dpiservice/internal/regexengine"
)

// Engine is one DPI service instance's scanning engine. It is safe for
// concurrent use; scans are serialized internally (an instance is a
// single logical core, as in the paper's deployment — parallelism comes
// from running more instances, Section 4.3).
type Engine struct {
	mu sync.Mutex

	auto mpm.Automaton
	// autoFold matches the case-insensitive (Snort nocase) patterns
	// against a case-folded view of the payload; nil when no profile
	// has any.
	autoFold mpm.Automaton
	foldMask uint64 // sets contributing nocase patterns
	foldBuf  []byte
	profiles map[int]*compiledProfile
	chains   map[uint16]*chainInfo
	cfg      Config

	flows   map[packet.FiveTuple]*flowState
	useSeq  uint64 // logical clock for LRU eviction
	epoch   uint64 // per-scan epoch for anchor scratch invalidation
	cur     scanCtx
	emitFn  mpm.EmitFunc
	gzRdr   *gzip.Reader
	gzBuf   []byte
	counter Stats
}

// Stats are cumulative engine counters, safe to read concurrently.
type Stats struct {
	Packets       atomic.Uint64
	Bytes         atomic.Uint64 // payload bytes presented
	BytesScanned  atomic.Uint64 // bytes actually fed to the automaton
	Matches       atomic.Uint64 // occurrences reported (post-filter)
	Reports       atomic.Uint64 // non-empty reports produced
	FlowsEvicted  atomic.Uint64
	RegexConfirms atomic.Uint64 // full-engine invocations
	RegexHits     atomic.Uint64
	Decompressed  atomic.Uint64 // packets decompressed before scanning
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Packets, Bytes, BytesScanned, Matches, Reports       uint64
	FlowsEvicted, RegexConfirms, RegexHits, Decompressed uint64
}

type chainInfo struct {
	tag     uint16
	members []int
	mask    uint64
	// anyUnlimited is set when some member scans unbounded; maxStop is
	// the deepest finite stopping condition otherwise.
	anyUnlimited bool
	maxStop      int
	anyStateful  bool

	// Per-chain counters (guarded by the engine mutex) — the
	// controller uses these to decide grouping and scale-out
	// (Section 4.3).
	packets uint64
	bytes   uint64
	matches uint64
}

type compiledProfile struct {
	Profile
	bit uint64
	rx  *regexengine.Engine
	// constraints holds Snort-style offset/depth windows for the
	// patterns that declared them; nil when the set has none so the
	// hot path pays nothing.
	constraints map[uint16]posConstraint
	// anchorOwner maps anchor ordinal (automaton pattern ID minus
	// RegexReportBase) to the owning regex slot and the anchor's index
	// within that regex.
	anchorOwner []anchorOwner
	regexSlots  []regexSlot
	hasPoor     bool

	// Per-scan scratch, valid when the stored epoch matches the
	// engine's current epoch.
	anchorSeenEpoch [][]uint64 // [regexSlot][anchorIdx]
	distinctSeen    []int      // per regexSlot, distinct anchors this epoch
	slotEpoch       []uint64
	candidates      []int // regex slots with all anchors seen this scan
}

// posConstraint is a Snort offset/depth window: the match must start at
// or after Start, and with Limit > 0 must end at or before Limit.
type posConstraint struct {
	Start int64
	Limit int64
}

type anchorOwner struct {
	slot int // index into regexSlots
	idx  int // anchor index within the regex
}

type regexSlot struct {
	id         int // regex ID within the middlebox's set
	numAnchors int
}

type flowState struct {
	state       mpm.State
	foldState   mpm.State
	foldStarted bool
	offset      int64
	lastUsed    uint64
	// MCA² telemetry (Section 4.3.1).
	bytes   uint64
	matches uint64
}

// scanCtx carries the state of the scan in progress, referenced by the
// engine's pre-bound emit closure to keep the hot path allocation-free.
type scanCtx struct {
	chain       *chainInfo
	report      *packet.Report
	offset      int64
	fromRestore bool // scan resumed from a non-start DFA state
	matches     uint64
}

// NewEngine compiles the configuration into a ready engine: it merges
// every profile's exact patterns and extracted regex anchors into one
// automaton and precomputes the per-chain masks and stopping conditions
// (Section 5.1's initialization).
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		profiles: make(map[int]*compiledProfile, len(cfg.Profiles)),
		chains:   make(map[uint16]*chainInfo, len(cfg.Chains)),
		flows:    make(map[packet.FiveTuple]*flowState),
		cfg:      cfg,
	}
	b := mpm.NewBuilder()
	bFold := mpm.NewBuilder()
	for _, p := range cfg.Profiles {
		cp := &compiledProfile{Profile: p, bit: 1 << uint(p.ID)}
		for _, pat := range p.Patterns.Patterns {
			if pat.NoCase {
				// Case-insensitive patterns live in the fold automaton
				// and are matched against a lowercased payload view.
				if err := bFold.Add(p.ID, pat.ID, strings.ToLower(pat.Content)); err != nil {
					return nil, fmt.Errorf("core: middlebox %d nocase pattern %d: %w", p.ID, pat.ID, err)
				}
				e.foldMask |= 1 << uint(p.ID)
			} else if err := b.Add(p.ID, pat.ID, pat.Content); err != nil {
				return nil, fmt.Errorf("core: middlebox %d pattern %d: %w", p.ID, pat.ID, err)
			}
			if pat.Offset > 0 || pat.Depth > 0 {
				if cp.constraints == nil {
					cp.constraints = make(map[uint16]posConstraint)
				}
				c := posConstraint{Start: int64(pat.Offset)}
				if pat.Depth > 0 {
					c.Limit = int64(pat.Offset + pat.Depth)
				}
				cp.constraints[uint16(pat.ID)] = c
			}
		}
		if len(p.Patterns.Regexes) > 0 {
			cp.rx = regexengine.New(cfg.MinAnchorLen)
			for _, rx := range p.Patterns.Regexes {
				c, err := cp.rx.Add(rx.ID, rx.Expr)
				if err != nil {
					return nil, fmt.Errorf("core: middlebox %d: %w", p.ID, err)
				}
				slot := len(cp.regexSlots)
				cp.regexSlots = append(cp.regexSlots, regexSlot{id: rx.ID, numAnchors: len(c.Anchors)})
				if c.AnchorPoor() {
					cp.hasPoor = true
					continue
				}
				for ai, anchor := range c.Anchors {
					ord := len(cp.anchorOwner)
					autoID := RegexReportBase + ord
					if autoID >= mpm.MaxPatternsPerSet {
						return nil, fmt.Errorf("core: middlebox %d: too many regex anchors", p.ID)
					}
					if err := b.Add(p.ID, autoID, anchor); err != nil {
						return nil, fmt.Errorf("core: middlebox %d anchor %q: %w", p.ID, anchor, err)
					}
					cp.anchorOwner = append(cp.anchorOwner, anchorOwner{slot: slot, idx: ai})
				}
			}
			cp.anchorSeenEpoch = make([][]uint64, len(cp.regexSlots))
			for i, rs := range cp.regexSlots {
				cp.anchorSeenEpoch[i] = make([]uint64, rs.numAnchors)
			}
			cp.distinctSeen = make([]int, len(cp.regexSlots))
			cp.slotEpoch = make([]uint64, len(cp.regexSlots))
		}
		e.profiles[p.ID] = cp
	}
	var (
		auto mpm.Automaton
		err  error
	)
	switch cfg.Kind {
	case AutoFull:
		auto, err = b.BuildFull()
	case AutoCompact:
		auto, err = b.BuildCompact()
	case AutoBitmap:
		auto, err = b.BuildBitmap()
	default:
		return nil, fmt.Errorf("core: unknown automaton kind %d", cfg.Kind)
	}
	if err != nil {
		// A configuration with only regexes and no extractable anchors
		// yields an empty automaton; that is still a valid instance.
		if err != mpm.ErrNoPatterns {
			return nil, err
		}
		auto = nil
	}
	e.auto = auto
	if bFold.NumPatterns() > 0 {
		var fold mpm.Automaton
		switch cfg.Kind {
		case AutoCompact:
			fold, err = bFold.BuildCompact()
		case AutoBitmap:
			fold, err = bFold.BuildBitmap()
		default:
			fold, err = bFold.BuildFull()
		}
		if err != nil {
			return nil, err
		}
		e.autoFold = fold
	}
	for tag, members := range cfg.Chains {
		ci := &chainInfo{tag: tag, members: append([]int(nil), members...)}
		for _, id := range members {
			p := e.profiles[id]
			ci.mask |= p.bit
			if p.Stateful {
				ci.anyStateful = true
			}
			if p.StopAfter == 0 {
				ci.anyUnlimited = true
			} else if p.StopAfter > ci.maxStop {
				ci.maxStop = p.StopAfter
			}
		}
		e.chains[tag] = ci
	}
	e.emitFn = e.emit
	return e, nil
}

// emit is the automaton callback: it applies the per-middlebox filters
// of Section 5.2 and records surviving matches in the report under
// construction.
func (e *Engine) emit(refs []mpm.PatternRef, end int) {
	c := &e.cur
	for _, r := range refs {
		bit := uint64(1) << uint(r.Set)
		if c.chain.mask&bit == 0 {
			continue
		}
		p := e.profiles[int(r.Set)]
		if int(r.ID) >= RegexReportBase {
			// Anchor hit: record toward its regex's completion.
			e.noteAnchor(p, int(r.ID)-RegexReportBase)
			continue
		}
		if p.Stateful {
			pos := c.offset + int64(end)
			if p.StopAfter > 0 && pos > int64(p.StopAfter) {
				continue
			}
			// Offset/depth windows apply over the stream for a
			// stateful middlebox.
			if p.constraints != nil && !checkWindow(p.constraints, r, pos) {
				continue
			}
			c.report.AddMatch(uint8(r.Set), r.ID, uint32(pos))
		} else {
			// Stateless: a pattern longer than the bytes consumed in
			// this packet began in a previous packet — not a match for
			// a per-packet middlebox.
			if c.fromRestore && int(r.Len) > end {
				continue
			}
			if p.StopAfter > 0 && end > p.StopAfter {
				continue
			}
			if p.constraints != nil && !checkWindow(p.constraints, r, int64(end)) {
				continue
			}
			c.report.AddMatch(uint8(r.Set), r.ID, uint32(end))
		}
		c.matches++
	}
}

// appendLowerASCII appends an ASCII-lowercased copy of src to dst.
func appendLowerASCII(dst, src []byte) []byte {
	for _, c := range src {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

// checkWindow applies a pattern's offset/depth window given its end
// position; patterns without a declared window always pass.
func checkWindow(constraints map[uint16]posConstraint, r mpm.PatternRef, end int64) bool {
	c, ok := constraints[r.ID]
	if !ok {
		return true
	}
	start := end - int64(r.Len)
	if start < c.Start {
		return false
	}
	if c.Limit > 0 && end > c.Limit {
		return false
	}
	return true
}

func (e *Engine) noteAnchor(p *compiledProfile, ord int) {
	if ord >= len(p.anchorOwner) {
		return
	}
	ao := p.anchorOwner[ord]
	if p.slotEpoch[ao.slot] != e.epoch {
		p.slotEpoch[ao.slot] = e.epoch
		p.distinctSeen[ao.slot] = 0
	}
	if p.anchorSeenEpoch[ao.slot][ao.idx] == e.epoch {
		return // same anchor seen again this packet
	}
	p.anchorSeenEpoch[ao.slot][ao.idx] = e.epoch
	p.distinctSeen[ao.slot]++
	if p.distinctSeen[ao.slot] == p.regexSlots[ao.slot].numAnchors {
		p.candidates = append(p.candidates, ao.slot)
	}
}

// Inspect scans one packet payload belonging to the given policy-chain
// tag and flow tuple, returning the match report for the chain's
// middleboxes, or nil when nothing matched (the common case — the packet
// is then forwarded entirely unmodified). The returned report is freshly
// allocated and owned by the caller.
func (e *Engine) Inspect(tag uint16, tuple packet.FiveTuple, payload []byte) (*packet.Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	chain, ok := e.chains[tag]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownChain, tag)
	}
	e.counter.Packets.Add(1)
	e.counter.Bytes.Add(uint64(len(payload)))
	e.epoch++

	// One-time decompression (Section 1): the service decompresses so
	// no middlebox has to.
	scanData := payload
	if e.cfg.Decompress && len(payload) >= 2 && payload[0] == 0x1f && payload[1] == 0x8b {
		if dec, err := e.decompress(payload); err == nil {
			scanData = dec
			e.counter.Decompressed.Add(1)
		}
	}

	// The flow record carries the DFA scan state for stateful chains
	// and, for every chain, the per-flow telemetry MCA² consumes
	// (Section 4.3.1).
	fs := e.flow(tuple)
	state := mpm.State(0)
	if e.auto != nil {
		state = e.auto.Start()
	}
	foldState := mpm.State(0)
	if e.autoFold != nil {
		foldState = e.autoFold.Start()
	}
	var offset int64
	if chain.anyStateful {
		state = fs.state
		if e.autoFold != nil && fs.foldStarted {
			foldState = fs.foldState
		}
		offset = fs.offset
	}

	// Determine how deep this packet must be scanned: the most
	// conservative (deepest) stopping condition among active
	// middleboxes (Section 5.2).
	limit := len(scanData)
	if !chain.anyUnlimited {
		deepest := 0
		for _, id := range chain.members {
			p := e.profiles[id]
			var remaining int64
			if p.Stateful {
				remaining = int64(p.StopAfter) - offset
			} else {
				remaining = int64(p.StopAfter)
			}
			if remaining > int64(deepest) {
				deepest = int(remaining)
			}
		}
		if deepest < limit {
			limit = deepest
		}
	}

	report := &packet.Report{}
	e.cur = scanCtx{chain: chain, report: report, offset: offset, fromRestore: chain.anyStateful && offset > 0}
	if e.auto != nil && limit > 0 {
		state = e.auto.Scan(scanData[:limit], state, chain.mask, e.emitFn)
		e.counter.BytesScanned.Add(uint64(limit))
	}
	if e.autoFold != nil && limit > 0 && chain.mask&e.foldMask != 0 {
		e.foldBuf = appendLowerASCII(e.foldBuf[:0], scanData[:limit])
		foldState = e.autoFold.Scan(e.foldBuf, foldState, chain.mask, e.emitFn)
	}
	e.finishRegexes(chain, scanData, offset, report)

	if chain.anyStateful {
		fs.state = state
		if e.autoFold != nil {
			fs.foldState = foldState
			fs.foldStarted = true
		}
		fs.offset = offset + int64(len(scanData))
	}
	fs.bytes += uint64(len(scanData))
	fs.matches += e.cur.matches
	chain.packets++
	chain.bytes += uint64(len(scanData))
	chain.matches += e.cur.matches
	e.counter.Matches.Add(e.cur.matches)
	e.cur = scanCtx{}
	if report.Empty() {
		return nil, nil
	}
	e.counter.Reports.Add(1)
	return report, nil
}

// finishRegexes runs the confirmation stage (Section 5.3): expressions
// whose anchors were all found are evaluated by the full engine, and
// anchor-poor expressions are evaluated directly.
func (e *Engine) finishRegexes(chain *chainInfo, scanData []byte, offset int64, report *packet.Report) {
	for _, id := range chain.members {
		p := e.profiles[id]
		if p.rx == nil {
			continue
		}
		for _, slot := range p.candidates {
			rs := p.regexSlots[slot]
			e.counter.RegexConfirms.Add(1)
			if loc := p.rx.Get(rs.id); loc != nil {
				if m := locMatch(loc, scanData); m >= 0 {
					e.counter.RegexHits.Add(1)
					e.addRegexMatch(p, rs.id, m, offset, report)
				}
			}
		}
		p.candidates = p.candidates[:0]
		if p.hasPoor {
			for _, rid := range p.rx.ScanAnchorPoor(scanData) {
				e.counter.RegexHits.Add(1)
				e.addRegexMatch(p, rid, len(scanData), offset, report)
			}
		}
	}
}

func (e *Engine) addRegexMatch(p *compiledProfile, regexID, end int, offset int64, report *packet.Report) {
	pos := int64(end)
	if p.Stateful {
		pos += offset
	}
	if p.StopAfter > 0 && pos > int64(p.StopAfter) {
		return
	}
	report.AddMatch(uint8(p.ID), uint16(RegexReportBase+regexID), uint32(pos))
	e.cur.matches++
}

// locMatch returns the end offset of the expression's first match in
// data, or -1.
func locMatch(c *regexengine.Compiled, data []byte) int {
	loc := c.FindIndex(data)
	if loc == nil {
		return -1
	}
	return loc[1]
}

// flow returns the state record for tuple, creating (and possibly
// evicting) as needed.
func (e *Engine) flow(tuple packet.FiveTuple) *flowState {
	fs, ok := e.flows[tuple]
	if !ok {
		if len(e.flows) >= e.cfg.MaxFlows {
			e.evictFlow()
		}
		start := mpm.State(0)
		if e.auto != nil {
			start = e.auto.Start()
		}
		fs = &flowState{state: start}
		e.flows[tuple] = fs
	}
	e.useSeq++
	fs.lastUsed = e.useSeq
	return fs
}

// evictFlow removes the least recently used among a small random sample
// of flows — an O(1) approximation of LRU adequate for a table whose
// entries are tiny (a DFA state and an offset, the paper's point about
// instance state in Section 4.3).
func (e *Engine) evictFlow() {
	var victim packet.FiveTuple
	var oldest uint64 = ^uint64(0)
	n := 0
	for t, fs := range e.flows {
		if fs.lastUsed < oldest {
			oldest = fs.lastUsed
			victim = t
		}
		n++
		if n >= 8 {
			break
		}
	}
	if n > 0 {
		delete(e.flows, victim)
		e.counter.FlowsEvicted.Add(1)
	}
}

// EndFlow discards the scan state of a finished flow (e.g. on TCP FIN).
func (e *Engine) EndFlow(tuple packet.FiveTuple) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.flows, tuple)
}

// ActiveFlows reports the number of tracked flows.
func (e *Engine) ActiveFlows() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.flows)
}

// FlowStat is the per-flow telemetry MCA² uses to spot heavy flows.
type FlowStat struct {
	Tuple   packet.FiveTuple
	Bytes   uint64
	Matches uint64
}

// FlowStats snapshots per-flow telemetry.
func (e *Engine) FlowStats() []FlowStat {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]FlowStat, 0, len(e.flows))
	for t, fs := range e.flows {
		out = append(out, FlowStat{Tuple: t, Bytes: fs.bytes, Matches: fs.matches})
	}
	return out
}

// Snapshot returns a copy of the cumulative counters.
func (e *Engine) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Packets:       e.counter.Packets.Load(),
		Bytes:         e.counter.Bytes.Load(),
		BytesScanned:  e.counter.BytesScanned.Load(),
		Matches:       e.counter.Matches.Load(),
		Reports:       e.counter.Reports.Load(),
		FlowsEvicted:  e.counter.FlowsEvicted.Load(),
		RegexConfirms: e.counter.RegexConfirms.Load(),
		RegexHits:     e.counter.RegexHits.Load(),
		Decompressed:  e.counter.Decompressed.Load(),
	}
}

// MemoryBytes estimates the engine's data-structure footprint — the
// quantity Table 2's Space column reports.
func (e *Engine) MemoryBytes() int64 {
	if e.auto == nil {
		return 0
	}
	return e.auto.MemoryBytes()
}

// NumStates reports the merged automaton's state count.
func (e *Engine) NumStates() int {
	if e.auto == nil {
		return 0
	}
	return e.auto.NumStates()
}

// NumPatterns reports the merged automaton's pattern count, including
// regex anchors.
func (e *Engine) NumPatterns() int {
	if e.auto == nil {
		return 0
	}
	return e.auto.NumPatterns()
}

// ChainStat is one chain's traffic counters.
type ChainStat struct {
	Tag     uint16
	Packets uint64
	Bytes   uint64
	Matches uint64
}

// ChainStats snapshots per-chain counters.
func (e *Engine) ChainStats() []ChainStat {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ChainStat, 0, len(e.chains))
	for tag, ci := range e.chains {
		out = append(out, ChainStat{Tag: tag, Packets: ci.packets, Bytes: ci.bytes, Matches: ci.matches})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// Chains returns the configured policy-chain tags.
func (e *Engine) Chains() []uint16 {
	tags := make([]uint16, 0, len(e.chains))
	for t := range e.chains {
		tags = append(tags, t)
	}
	return tags
}

// decompress inflates a gzip payload up to the configured bound.
func (e *Engine) decompress(payload []byte) ([]byte, error) {
	rd := bytes.NewReader(payload)
	if e.gzRdr == nil {
		r, err := gzip.NewReader(rd)
		if err != nil {
			return nil, err
		}
		e.gzRdr = r
	} else if err := e.gzRdr.Reset(rd); err != nil {
		return nil, err
	}
	if e.gzBuf == nil {
		e.gzBuf = make([]byte, e.cfg.MaxDecompressedBytes)
	}
	n, err := io.ReadFull(e.gzRdr, e.gzBuf)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	return e.gzBuf[:n], nil
}
