package core

import (
	"bytes"
	"compress/gzip"
	"io"

	"dpiservice/internal/mpm"
	"dpiservice/internal/packet"
	"dpiservice/internal/regexengine"
)

// scratch holds every mutable structure one scan needs: the scan
// context read by the emit callback, the report under construction, the
// case-fold buffer, the gzip reader, and the per-profile regex anchor
// bookkeeping. Engines hand scratches out of a sync.Pool, so concurrent
// Inspect calls never share per-scan state and steady-state scanning
// allocates nothing.
type scratch struct {
	e       *Engine
	cur     scanCtx
	emitFn  mpm.EmitFunc // pre-bound s.emit, so Scan gets a stable closure
	report  packet.Report
	foldBuf []byte
	gzSrc   bytes.Reader // reused source for gzRdr: no per-body reader alloc
	gzRdr   *gzip.Reader
	gzBuf   []byte
	// epoch invalidates the anchor bookkeeping between scans without
	// clearing it; it is scratch-local, bumped once per scan.
	epoch uint64
	// rx is indexed parallel to Engine.rxProfiles.
	rx []rxScratch
	// ps carries one inspection's in-flight scan between prepare and
	// finish, so InspectBatch can interleave the DFA stage of several
	// prepared scans before finishing each.
	ps pscan
	// pfStats accumulates the prefilter telemetry of the scan in
	// progress; finish folds it into the engine counters and clears it.
	pfStats mpm.PrefilterStats
}

// pscan is the state of one inspection between prepare (metrics,
// decompression, flow lookup, stopping conditions, report reset) and
// finish (fold scan, regex confirmation, flow-state store, counters).
// For a stateful chain the flow's lock is held across the whole span.
type pscan struct {
	chain     *chainInfo
	fs        *flowState
	scanData  []byte
	limit     int
	state     mpm.State
	foldState mpm.State
	offset    int64
}

// rxScratch is one profile's per-scan anchor bookkeeping (Section 5.3):
// which anchors were seen this scan, and which regex slots saw all of
// theirs and await confirmation.
type rxScratch struct {
	anchorSeen   [][]uint64 // [regexSlot][anchorIdx], epoch-stamped
	distinctSeen []int      // per regexSlot, distinct anchors this epoch
	slotEpoch    []uint64
	candidates   []int // regex slots with all anchors seen this scan
}

// scanCtx carries the state of the scan in progress, referenced by the
// scratch's pre-bound emit closure to keep the hot path allocation-free.
type scanCtx struct {
	chain       *chainInfo
	report      *packet.Report
	offset      int64
	fromRestore bool // scan resumed from a non-start DFA state
	matches     uint64
}

// newScratch sizes a scratch for the engine's compiled profiles.
func (e *Engine) newScratch() *scratch {
	s := &scratch{e: e, rx: make([]rxScratch, len(e.rxProfiles))}
	for i, p := range e.rxProfiles {
		rs := &s.rx[i]
		rs.anchorSeen = make([][]uint64, len(p.regexSlots))
		for j, slot := range p.regexSlots {
			rs.anchorSeen[j] = make([]uint64, slot.numAnchors)
		}
		rs.distinctSeen = make([]int, len(p.regexSlots))
		rs.slotEpoch = make([]uint64, len(p.regexSlots))
	}
	s.emitFn = s.emit
	return s
}

// emit is the automaton callback: it applies the per-middlebox filters
// of Section 5.2 and records surviving matches in the report under
// construction. It is annotated directly because it reaches the scan
// only as a func value (scratch.emitFn), which the static call graph
// cannot follow.
//
//dpi:hotpath
func (s *scratch) emit(refs []mpm.PatternRef, end int) {
	c := &s.cur
	for _, r := range refs {
		bit := uint64(1) << uint(r.Set)
		if c.chain.mask&bit == 0 {
			continue
		}
		p := s.e.profileBySet[r.Set]
		if int(r.ID) >= RegexReportBase {
			// Anchor hit: record toward its regex's completion.
			s.noteAnchor(p, int(r.ID)-RegexReportBase)
			continue
		}
		if p.Stateful {
			pos := c.offset + int64(end)
			if p.StopAfter > 0 && pos > int64(p.StopAfter) {
				continue
			}
			// Offset/depth windows apply over the stream for a
			// stateful middlebox.
			if p.constraints != nil && !checkWindow(p.constraints, r, pos) {
				continue
			}
			c.report.AddMatch(uint8(r.Set), r.ID, uint32(pos))
		} else {
			// Stateless: a pattern longer than the bytes consumed in
			// this packet began in a previous packet — not a match for
			// a per-packet middlebox.
			if c.fromRestore && int(r.Len) > end {
				continue
			}
			if p.StopAfter > 0 && end > p.StopAfter {
				continue
			}
			if p.constraints != nil && !checkWindow(p.constraints, r, int64(end)) {
				continue
			}
			c.report.AddMatch(uint8(r.Set), r.ID, uint32(end))
		}
		c.matches++
	}
}

func (s *scratch) noteAnchor(p *compiledProfile, ord int) {
	if ord >= len(p.anchorOwner) {
		return
	}
	rs := &s.rx[p.rxIndex]
	ao := p.anchorOwner[ord]
	if rs.slotEpoch[ao.slot] != s.epoch {
		rs.slotEpoch[ao.slot] = s.epoch
		rs.distinctSeen[ao.slot] = 0
	}
	if rs.anchorSeen[ao.slot][ao.idx] == s.epoch {
		return // same anchor seen again this packet
	}
	rs.anchorSeen[ao.slot][ao.idx] = s.epoch
	rs.distinctSeen[ao.slot]++
	if rs.distinctSeen[ao.slot] == p.regexSlots[ao.slot].numAnchors {
		rs.candidates = append(rs.candidates, ao.slot)
	}
}

// finishRegexes runs the confirmation stage (Section 5.3): expressions
// whose anchors were all found are evaluated by the full engine, and
// anchor-poor expressions are evaluated directly.
func (s *scratch) finishRegexes(chain *chainInfo, scanData []byte, offset int64) {
	for _, p := range chain.rxMembers {
		rs := &s.rx[p.rxIndex]
		for _, slot := range rs.candidates {
			sl := p.regexSlots[slot]
			s.e.met.regexConfirms.Inc()
			if loc := p.rx.Get(sl.id); loc != nil {
				if m := locMatch(loc, scanData); m >= 0 {
					s.e.met.regexHits.Inc()
					s.addRegexMatch(p, sl.id, m, offset)
				}
			}
		}
		rs.candidates = rs.candidates[:0]
		if p.hasPoor {
			for _, rid := range p.rx.ScanAnchorPoor(scanData) {
				s.e.met.regexHits.Inc()
				s.addRegexMatch(p, rid, len(scanData), offset)
			}
		}
	}
}

func (s *scratch) addRegexMatch(p *compiledProfile, regexID, end int, offset int64) {
	pos := int64(end)
	if p.Stateful {
		pos += offset
	}
	if p.StopAfter > 0 && pos > int64(p.StopAfter) {
		return
	}
	s.cur.report.AddMatch(uint8(p.ID), uint16(RegexReportBase+regexID), uint32(pos))
	s.cur.matches++
}

// locMatch returns the end offset of the expression's first match in
// data, or -1.
func locMatch(c *regexengine.Compiled, data []byte) int {
	loc := c.FindIndex(data)
	if loc == nil {
		return -1
	}
	return loc[1]
}

// decompress inflates a gzip payload up to the configured bound. The
// source reader and output buffer live in the scratch, so only the
// first compressed body a scratch ever sees pays an allocation.
func (s *scratch) decompress(payload []byte) ([]byte, error) {
	s.gzSrc.Reset(payload)
	if s.gzRdr == nil {
		//dpi:coldalloc(one gzip.Reader per pooled scratch, first compressed body only)
		r, err := gzip.NewReader(&s.gzSrc)
		if err != nil {
			return nil, err
		}
		s.gzRdr = r
	} else if err := s.gzRdr.Reset(&s.gzSrc); err != nil {
		return nil, err
	}
	if s.gzBuf == nil {
		//dpi:coldalloc(decompression buffer, sized once per scratch)
		s.gzBuf = make([]byte, s.e.cfg.MaxDecompressedBytes)
	}
	n, err := io.ReadFull(s.gzRdr, s.gzBuf)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	return s.gzBuf[:n], nil
}
