// Package core implements the DPI service instance (Section 5 of the
// paper): the merged "virtual DPI" engine that scans each packet exactly
// once against the pattern sets of every middlebox on its policy chain
// and emits per-middlebox match reports.
//
// The engine combines:
//   - the merged Aho-Corasick automaton with dense accepting-state IDs,
//     per-state middlebox bitmaps and a direct-access match table
//     (Section 5.1, built by internal/mpm);
//   - per-packet active-middlebox masking, stateful flow tracking (DFA
//     state + byte offset per flow direction), stopping conditions, and
//     the stateless cross-packet filtering rules (Section 5.2);
//   - two-stage regular expression handling via anchor extraction with
//     confirmation by a full regex engine, plus the direct-evaluation
//     path for anchor-poor expressions (Section 5.3);
//   - optional one-time gzip decompression before scanning, one of the
//     consolidation benefits the paper highlights (Section 1).
package core

import (
	"errors"
	"fmt"
	"strconv"

	"dpiservice/internal/mpm"
	"dpiservice/internal/obs"
	"dpiservice/internal/patterns"
)

// RegexReportBase is added to a regular expression's ID to form the
// pattern ID under which its confirmed matches are reported, keeping
// exact-match IDs and regex IDs distinct in one 15-bit space.
const RegexReportBase = 1 << 14

// AutomatonKind selects the matcher representation.
type AutomatonKind int

const (
	// AutoFull selects the full-table Aho-Corasick DFA (fastest,
	// largest; the paper's primary engine).
	AutoFull AutomatonKind = iota
	// AutoCompact selects the failure-link representation used by MCA²
	// dedicated instances (Section 4.3.1).
	AutoCompact
	// AutoBitmap selects the bitmap-compressed representation (Tuck et
	// al. style), the intermediate space-time point.
	AutoBitmap
	// AutoPrefilter selects the two-stage matcher: a q-gram prefilter
	// dismisses innocent payload with L1-resident probes and the full
	// DFA confirms only candidate windows. Equivalent match-for-match to
	// AutoFull; pattern sets the filter cannot serve (any pattern under
	// 5 bytes, or a gram table too dense) compile in fallback mode and
	// scan as plain AutoFull.
	AutoPrefilter
)

// Profile describes one registered middlebox as the controller passes it
// at instance initialization (Section 5.1): its patterns and the
// properties governing how its results are produced.
type Profile struct {
	// ID is the middlebox's set index within this instance, in
	// [0, mpm.MaxSets).
	ID int
	// Name is the middlebox's registered name (diagnostics only).
	Name string
	// Stateful middleboxes need scan state carried across the packets
	// of a flow; stateless ones are given only matches contained
	// entirely within a single packet.
	Stateful bool
	// ReadOnly middleboxes receive only results, never packets
	// (an IDS as opposed to an IPS).
	ReadOnly bool
	// StopAfter is the middlebox's stopping condition: how deep into
	// the L7 byte stream it cares about, 0 meaning unlimited. Matches
	// ending beyond it are filtered from this middlebox's results, and
	// the scan itself stops early when every active middlebox's
	// condition has passed.
	StopAfter int
	// Patterns holds the exact patterns and regular expressions.
	Patterns *patterns.Set
}

// Config configures a DPI service instance.
type Config struct {
	// Profiles lists the registered middleboxes. IDs must be unique.
	Profiles []Profile
	// Chains maps a policy-chain tag — the VLAN/MPLS tag the TSA
	// assigns (Section 4.1) — to the middlebox IDs on that chain.
	Chains map[uint16][]int
	// Kind selects the automaton representation.
	Kind AutomatonKind
	// MinAnchorLen overrides the regex anchor extraction threshold;
	// 0 selects the paper's default of 4.
	MinAnchorLen int
	// Decompress enables one-time gzip decompression of payloads that
	// carry the gzip magic before scanning.
	Decompress bool
	// MaxFlows bounds the stateful flow table; 0 selects a default.
	// When full, the least recently scanned flow is evicted.
	MaxFlows int
	// MaxDecompressedBytes bounds decompression output per packet to
	// contain decompression bombs; 0 selects a default of 256 KiB.
	MaxDecompressedBytes int
	// Shards overrides the flow-table shard count (rounded to a power
	// of two, capped at 256); 0 scales with GOMAXPROCS. Shards bound
	// the engine's flow-level parallelism: packets of flows in
	// different shards never contend.
	Shards int
	// Metrics is the registry the engine publishes its instruments
	// into; nil gives the engine a private registry (reachable via
	// Engine.Metrics). Sharing one registry across engines aggregates
	// their counters — usually wrong for per-instance telemetry, so
	// pass a dedicated registry per engine.
	Metrics *obs.Registry
	// BatchInterleave sets how many packets one InspectBatch worker
	// advances in lockstep through the DFA, hiding each lane's cache-miss
	// latency behind the others' work. 0 selects the default of 4,
	// 1 disables interleaving, values above 8 are capped at 8. Only the
	// full-table automaton (AutoFull) interleaves; other kinds scan one
	// packet at a time regardless.
	BatchInterleave int
}

// Errors returned by the engine.
var (
	ErrUnknownChain = errors.New("core: unknown policy chain tag")
	ErrDuplicateID  = errors.New("core: duplicate middlebox ID")
	ErrBadProfile   = errors.New("core: invalid middlebox profile")
)

// UnknownChainError reports a scan against an unconfigured chain tag.
// It is a dedicated type (rather than fmt.Errorf at the call site) so
// constructing it on the per-packet path costs one small allocation and
// no formatting; the message is rendered only if something prints it.
// It unwraps to ErrUnknownChain.
type UnknownChainError struct {
	Tag uint16
}

func (e *UnknownChainError) Error() string {
	return ErrUnknownChain.Error() + " " + strconv.Itoa(int(e.Tag))
}

func (e *UnknownChainError) Unwrap() error { return ErrUnknownChain }

const (
	defaultMaxFlows        = 1 << 16
	defaultMaxDecompressed = 256 << 10
)

// validate checks cross-field invariants and applies defaults.
func (c *Config) validate() error {
	if len(c.Profiles) == 0 {
		return fmt.Errorf("%w: no middlebox profiles", ErrBadProfile)
	}
	seen := make(map[int]bool, len(c.Profiles))
	for _, p := range c.Profiles {
		if p.ID < 0 || p.ID >= mpm.MaxSets {
			return fmt.Errorf("%w: middlebox ID %d out of range", ErrBadProfile, p.ID)
		}
		if seen[p.ID] {
			return fmt.Errorf("%w: %d", ErrDuplicateID, p.ID)
		}
		seen[p.ID] = true
		if p.Patterns == nil || (len(p.Patterns.Patterns) == 0 && len(p.Patterns.Regexes) == 0) {
			return fmt.Errorf("%w: middlebox %d has no patterns", ErrBadProfile, p.ID)
		}
		if p.StopAfter < 0 {
			return fmt.Errorf("%w: middlebox %d negative stopping condition", ErrBadProfile, p.ID)
		}
		for _, pat := range p.Patterns.Patterns {
			if pat.ID < 0 || pat.ID >= RegexReportBase {
				return fmt.Errorf("%w: middlebox %d pattern ID %d out of range [0,%d)",
					ErrBadProfile, p.ID, pat.ID, RegexReportBase)
			}
		}
		for _, rx := range p.Patterns.Regexes {
			if rx.ID < 0 || rx.ID >= RegexReportBase {
				return fmt.Errorf("%w: middlebox %d regex ID %d out of range [0,%d)",
					ErrBadProfile, p.ID, rx.ID, RegexReportBase)
			}
		}
	}
	for tag, chain := range c.Chains {
		for _, id := range chain {
			if !seen[id] {
				return fmt.Errorf("%w: chain %d references unknown middlebox %d", ErrBadProfile, tag, id)
			}
		}
	}
	if c.BatchInterleave < 0 {
		return fmt.Errorf("%w: negative batch interleave %d", ErrBadProfile, c.BatchInterleave)
	}
	if c.MaxFlows <= 0 {
		c.MaxFlows = defaultMaxFlows
	}
	if c.MaxDecompressedBytes <= 0 {
		c.MaxDecompressedBytes = defaultMaxDecompressed
	}
	return nil
}
