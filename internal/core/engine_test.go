package core

import (
	"bytes"
	"compress/gzip"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"dpiservice/internal/packet"
	"dpiservice/internal/patterns"
)

var testTuple = packet.FiveTuple{
	Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2},
	SrcPort: 1234, DstPort: 80, Protocol: packet.IPProtoTCP,
}

// twoBoxConfig builds the canonical two-middlebox instance: an IDS-like
// stateful box (set 0) and an AV-like stateless box (set 1), both on
// chain 1; chain 2 carries only set 1.
func twoBoxConfig() Config {
	return Config{
		Profiles: []Profile{
			{ID: 0, Name: "ids", Stateful: true, ReadOnly: true,
				Patterns: patterns.FromStrings("ids", []string{"attack-sig", "/etc/passwd", "evil"})},
			{ID: 1, Name: "av", Stateful: false,
				Patterns: patterns.FromStrings("av", []string{"malware-body", "evil"})},
		},
		Chains: map[uint16][]int{1: {0, 1}, 2: {1}},
	}
}

type rec struct {
	mbox uint8
	pat  uint16
	pos  uint16
	cnt  uint16
}

func flatten(r *packet.Report) []rec {
	if r == nil {
		return nil
	}
	var out []rec
	for _, s := range r.Sections {
		for _, e := range s.Entries {
			out = append(out, rec{s.Mbox, e.Pattern, e.Pos, e.Count})
		}
	}
	return out
}

func TestInspectBasicMatch(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Inspect(1, testTuple, []byte("GET /etc/passwd HTTP/1.1"))
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(rep)
	want := []rec{{0, 1, 15, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report = %v, want %v", got, want)
	}
}

func TestInspectNoMatchReturnsNil(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Inspect(1, testTuple, []byte("perfectly clean payload"))
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Errorf("report = %v, want nil", flatten(rep))
	}
	s := e.Snapshot()
	if s.Packets != 1 || s.Reports != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestInspectSharedPatternBothBoxes(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Inspect(1, testTuple, []byte("an evil payload"))
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(rep)
	// "evil" is pattern 2 of set 0 and pattern 1 of set 1 — both must
	// be reported from one scan.
	want := []rec{{0, 2, 7, 1}, {1, 1, 7, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report = %v, want %v", got, want)
	}
}

func TestInspectChainMaskFiltering(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Chain 2 includes only set 1; set 0's exclusive patterns must not
	// appear even though they are in the merged automaton.
	rep, err := e.Inspect(2, testTuple, []byte("attack-sig and malware-body"))
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(rep)
	want := []rec{{1, 0, 27, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report = %v, want %v", got, want)
	}
}

func TestInspectUnknownChain(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Inspect(99, testTuple, []byte("x")); !errors.Is(err, ErrUnknownChain) {
		t.Errorf("err = %v, want ErrUnknownChain", err)
	}
}

func TestStatefulCrossPacketMatch(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	// "attack-sig" split across two packets of the same flow: the
	// stateful IDS must see it; the stateless AV must not see anything.
	rep1, err := e.Inspect(1, testTuple, []byte("xxattack-"))
	if err != nil {
		t.Fatal(err)
	}
	if rep1 != nil {
		t.Fatalf("first fragment reported %v", flatten(rep1))
	}
	rep2, err := e.Inspect(1, testTuple, []byte("sigyy"))
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(rep2)
	// Position is offset+cnt: 9 bytes in packet 1 + 3 in packet 2 = 12.
	want := []rec{{0, 0, 12, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report = %v, want %v", got, want)
	}
}

func TestStatelessCrossPacketFiltered(t *testing.T) {
	cfg := Config{
		Profiles: []Profile{
			{ID: 0, Stateful: true, Patterns: patterns.FromStrings("s", []string{"spanning"})},
			{ID: 1, Stateful: false, Patterns: patterns.FromStrings("p", []string{"spanning", "inside"})},
		},
		Chains: map[uint16][]int{1: {0, 1}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Inspect(1, testTuple, []byte("..span")); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Inspect(1, testTuple, []byte("ning inside too"))
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(rep)
	// Stateful set 0 sees the spanning match at 6+4=10; stateless set 1
	// must NOT see "spanning" (it began in the previous packet) but
	// must see "inside" fully contained in packet 2 at cnt=11.
	want := []rec{{0, 0, 10, 1}, {1, 1, 11, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report = %v, want %v", got, want)
	}
}

func TestStatelessSamePacketStillReportedAfterRestore(t *testing.T) {
	cfg := Config{
		Profiles: []Profile{
			{ID: 0, Stateful: true, Patterns: patterns.FromStrings("s", []string{"zzzzzzzz"})},
			{ID: 1, Stateful: false, Patterns: patterns.FromStrings("p", []string{"whole"})},
		},
		Chains: map[uint16][]int{1: {0, 1}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Inspect(1, testTuple, []byte("first packet")); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Inspect(1, testTuple, []byte("a whole match"))
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(rep)
	want := []rec{{1, 0, 7, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report = %v, want %v", got, want)
	}
}

func TestFlowIsolation(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	other := testTuple
	other.SrcPort = 9999
	// Fragment split across two DIFFERENT flows must not match.
	if _, err := e.Inspect(1, testTuple, []byte("attack-")); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Inspect(1, other, []byte("sig"))
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Errorf("cross-flow match leaked: %v", flatten(rep))
	}
	if e.ActiveFlows() != 2 {
		t.Errorf("ActiveFlows = %d, want 2", e.ActiveFlows())
	}
}

func TestEndFlowResetsState(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Inspect(1, testTuple, []byte("attack-")); err != nil {
		t.Fatal(err)
	}
	e.EndFlow(testTuple)
	rep, err := e.Inspect(1, testTuple, []byte("sig"))
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Errorf("match survived EndFlow: %v", flatten(rep))
	}
	if e.ActiveFlows() != 1 {
		t.Errorf("ActiveFlows = %d, want 1", e.ActiveFlows())
	}
}

func TestStoppingConditionStateless(t *testing.T) {
	cfg := Config{
		Profiles: []Profile{
			{ID: 0, StopAfter: 10, Patterns: patterns.FromStrings("hdr", []string{"deep-pattern", "early"})},
		},
		Chains: map[uint16][]int{1: {0}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// "early" ends at 6 <= 10: reported. "deep-pattern" ends at 30: not.
	rep, err := e.Inspect(1, testTuple, []byte("xearly padding... deep-pattern"))
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(rep)
	want := []rec{{0, 1, 6, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report = %v, want %v", got, want)
	}
	// The scan itself must have stopped at the condition.
	if s := e.Snapshot(); s.BytesScanned != 10 {
		t.Errorf("BytesScanned = %d, want 10 (scan truncated at stop)", s.BytesScanned)
	}
}

func TestStoppingConditionStatefulAcrossPackets(t *testing.T) {
	cfg := Config{
		Profiles: []Profile{
			{ID: 0, Stateful: true, StopAfter: 12, Patterns: patterns.FromStrings("hdr", []string{"token"})},
		},
		Chains: map[uint16][]int{1: {0}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Packet 1: 8 bytes, no match. Packet 2: "token" would end at
	// offset 8+5=13 > 12 — filtered; and the scan is limited to
	// stop-offset = 4 bytes.
	if _, err := e.Inspect(1, testTuple, []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Inspect(1, testTuple, []byte("token"))
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Errorf("match beyond stateful stopping condition: %v", flatten(rep))
	}
	// Third packet: entirely beyond the stop; zero additional bytes
	// scanned.
	before := e.Snapshot().BytesScanned
	if _, err := e.Inspect(1, testTuple, []byte("more data")); err != nil {
		t.Fatal(err)
	}
	if after := e.Snapshot().BytesScanned; after != before {
		t.Errorf("scanned %d bytes beyond stopping condition", after-before)
	}
}

func TestStoppingConditionMostConservativeWins(t *testing.T) {
	cfg := Config{
		Profiles: []Profile{
			{ID: 0, StopAfter: 8, Patterns: patterns.FromStrings("a", []string{"headonly"})},
			{ID: 1, StopAfter: 0, Patterns: patterns.FromStrings("b", []string{"deepdeep"})},
		},
		Chains: map[uint16][]int{1: {0, 1}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := append(bytes.Repeat([]byte("x"), 100), []byte("deepdeep")...)
	rep, err := e.Inspect(1, testTuple, payload)
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(rep)
	// Set 1 is unlimited, so the whole packet is scanned and set 1's
	// deep match reported; set 0 gets nothing past byte 8.
	want := []rec{{1, 0, 108, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report = %v, want %v", got, want)
	}
}

func TestOffsetDepthWindows(t *testing.T) {
	set := &patterns.Set{Name: "w", Patterns: []patterns.Pattern{
		{ID: 0, Content: "headmark", Offset: 0, Depth: 16}, // must end within first 16 bytes
		{ID: 1, Content: "deepmark", Offset: 10},           // must start at byte >= 10
		{ID: 2, Content: "anywhere"},
	}}
	cfg := Config{
		Profiles: []Profile{{ID: 0, Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := func(payload string, want []rec) {
		t.Helper()
		tpl := testTuple
		tpl.SrcPort++
		rep, err := e.Inspect(1, tpl, []byte(payload))
		if err != nil {
			t.Fatal(err)
		}
		if got := flatten(rep); !reflect.DeepEqual(got, want) {
			t.Errorf("payload %q: report = %v, want %v", payload, got, want)
		}
	}
	// headmark at start: within its window. deepmark at byte 9:
	// violates its offset >= 10 and is filtered. anywhere always
	// reports.
	check("headmark deepmark anywhere",
		[]rec{{0, 0, 8, 1}, {0, 2, 26, 1}})
	// With two spaces deepmark starts at byte 10 and passes.
	check("headmark  deepmark anywhere",
		[]rec{{0, 0, 8, 1}, {0, 1, 18, 1}, {0, 2, 27, 1}})
	// headmark too deep (ends at 20 > 16): filtered.
	check("xxxxxxxxxxxxheadmark", nil)
	// deepmark starting exactly at byte 10: allowed.
	check("0123456789deepmark", []rec{{0, 1, 18, 1}})
	// deepmark starting at byte 9: filtered.
	check("012345678deepmark", nil)
}

func TestOffsetDepthWindowsStateful(t *testing.T) {
	set := &patterns.Set{Name: "w", Patterns: []patterns.Pattern{
		{ID: 0, Content: "marker", Offset: 0, Depth: 10}, // first 10 stream bytes only
	}}
	cfg := Config{
		Profiles: []Profile{{ID: 0, Stateful: true, Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stream position 0..5: inside the window even split over packets.
	if _, err := e.Inspect(1, testTuple, []byte("mar")); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Inspect(1, testTuple, []byte("ker"))
	if err != nil {
		t.Fatal(err)
	}
	if got := flatten(rep); !reflect.DeepEqual(got, []rec{{0, 0, 6, 1}}) {
		t.Errorf("windowed stateful match = %v", got)
	}
	// Beyond stream byte 10: filtered even though each packet is small.
	tpl := testTuple
	tpl.SrcPort = 777
	if _, err := e.Inspect(1, tpl, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	rep, err = e.Inspect(1, tpl, []byte("marker"))
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Errorf("match beyond stream window reported: %v", flatten(rep))
	}
}

func TestNoCaseMatching(t *testing.T) {
	set := &patterns.Set{Name: "nc", Patterns: []patterns.Pattern{
		{ID: 0, Content: "CaseSensitive"},
		{ID: 1, Content: "select union", NoCase: true},
	}}
	cfg := Config{
		Profiles: []Profile{{ID: 0, Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := func(payload string, want []rec) {
		t.Helper()
		tpl := testTuple
		tpl.SrcPort++
		rep, err := e.Inspect(1, tpl, []byte(payload))
		if err != nil {
			t.Fatal(err)
		}
		if got := flatten(rep); !reflect.DeepEqual(got, want) {
			t.Errorf("payload %q: report = %v, want %v", payload, got, want)
		}
	}
	// The nocase rule fires for any casing.
	check("x SELECT UNION y", []rec{{0, 1, 14, 1}})
	check("x SeLeCt UnIoN y", []rec{{0, 1, 14, 1}})
	check("x select union y", []rec{{0, 1, 14, 1}})
	// The case-sensitive rule only fires on exact bytes.
	check("CaseSensitive", []rec{{0, 0, 13, 1}})
	check("casesensitive", nil)
	check("CASESENSITIVE", nil)
}

func TestNoCaseStatefulAcrossPackets(t *testing.T) {
	set := &patterns.Set{Name: "nc", Patterns: []patterns.Pattern{
		{ID: 0, Content: "crosscase", NoCase: true},
	}}
	cfg := Config{
		Profiles: []Profile{{ID: 0, Stateful: true, Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Inspect(1, testTuple, []byte("..CrOsS")); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Inspect(1, testTuple, []byte("cAsE.."))
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(rep)
	want := []rec{{0, 0, 11, 1}} // 7 bytes + 4 = stream position 11
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report = %v, want %v", got, want)
	}
}

func TestRegexAnchorConfirmation(t *testing.T) {
	set := patterns.FromStrings("rx", []string{"plainpattern"})
	set.Regexes = []patterns.Regex{{ID: 0, Expr: `regular\s*expression\s*\d+`}}
	cfg := Config{
		Profiles: []Profile{{ID: 0, Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both anchors present AND the full expression matches.
	rep, err := e.Inspect(1, testTuple, []byte("a regular expression 42 here"))
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(rep)
	want := []rec{{0, RegexReportBase + 0, 23, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report = %v, want %v", got, want)
	}
	s := e.Snapshot()
	if s.RegexConfirms != 1 || s.RegexHits != 1 {
		t.Errorf("regex stats = %+v", s)
	}
}

func TestRegexAnchorsPresentButExpressionFails(t *testing.T) {
	set := &patterns.Set{Name: "rx"}
	set.Regexes = []patterns.Regex{{ID: 0, Expr: `regular\s*expression\s*\d+`}}
	cfg := Config{
		Profiles: []Profile{{ID: 0, Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Anchors in the wrong order: the engine must be invoked (all
	// anchors present) but report nothing.
	rep, err := e.Inspect(1, testTuple, []byte("expression then regular but no digits"))
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Errorf("false regex report: %v", flatten(rep))
	}
	s := e.Snapshot()
	if s.RegexConfirms != 1 || s.RegexHits != 0 {
		t.Errorf("regex stats = %+v, want one confirm, zero hits", s)
	}
}

func TestRegexMissingAnchorSkipsEngine(t *testing.T) {
	set := &patterns.Set{Name: "rx"}
	set.Regexes = []patterns.Regex{{ID: 0, Expr: `regular\s*expression\s*\d+`}}
	cfg := Config{
		Profiles: []Profile{{ID: 0, Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Inspect(1, testTuple, []byte("only the word regular appears")); err != nil {
		t.Fatal(err)
	}
	if s := e.Snapshot(); s.RegexConfirms != 0 {
		t.Errorf("full engine invoked with a missing anchor (confirms=%d)", s.RegexConfirms)
	}
}

func TestRegexAnchorPoorDirectEvaluation(t *testing.T) {
	set := &patterns.Set{Name: "rx"}
	set.Regexes = []patterns.Regex{{ID: 3, Expr: `[0-9]{16}`}}
	cfg := Config{
		Profiles: []Profile{{ID: 0, Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Inspect(1, testTuple, []byte("pan=4111111111111111"))
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(rep)
	want := []rec{{0, RegexReportBase + 3, 20, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report = %v, want %v", got, want)
	}
}

func TestRegexAnchorStateDoesNotLeakAcrossPackets(t *testing.T) {
	set := &patterns.Set{Name: "rx"}
	set.Regexes = []patterns.Regex{{ID: 0, Expr: `firstanchor.*secondanchor`}}
	cfg := Config{
		Profiles: []Profile{{ID: 0, Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One anchor per packet: per-packet regex handling must not
	// accumulate anchors across packets.
	if _, err := e.Inspect(1, testTuple, []byte("has firstanchor only")); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Inspect(1, testTuple, []byte("has secondanchor only"))
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Errorf("anchors leaked across packets: %v", flatten(rep))
	}
	if s := e.Snapshot(); s.RegexConfirms != 0 {
		t.Errorf("confirms = %d, want 0", s.RegexConfirms)
	}
}

// gzipBytes compresses data for the decompression tests.
func gzipBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var gz bytes.Buffer
	w := gzip.NewWriter(&gz)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return gz.Bytes()
}

func TestDecompression(t *testing.T) {
	var gz bytes.Buffer
	w := gzip.NewWriter(&gz)
	if _, err := w.Write([]byte("compressed evil content")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := twoBoxConfig()
	cfg.Decompress = true
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Inspect(1, testTuple, gz.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(rep)
	// "evil" ends at byte 15 of the DECOMPRESSED stream.
	want := []rec{{0, 2, 15, 1}, {1, 1, 15, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report = %v, want %v", got, want)
	}
	if s := e.Snapshot(); s.Decompressed != 1 {
		t.Errorf("Decompressed = %d", s.Decompressed)
	}

	// Without the option, the same bytes must not match.
	e2, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err = e2.Inspect(1, testTuple, gz.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Errorf("matched inside compressed bytes without Decompress: %v", flatten(rep))
	}
}

func TestDecompressionBombBounded(t *testing.T) {
	var gz bytes.Buffer
	w := gzip.NewWriter(&gz)
	if _, err := w.Write(bytes.Repeat([]byte{'A'}, 10<<20)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := twoBoxConfig()
	cfg.Decompress = true
	cfg.MaxDecompressedBytes = 4096
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Inspect(1, testTuple, gz.Bytes()); err != nil {
		t.Fatal(err)
	}
	if s := e.Snapshot(); s.BytesScanned > 4096 {
		t.Errorf("scanned %d bytes of a bomb, bound was 4096", s.BytesScanned)
	}
}

func TestFlowTableEviction(t *testing.T) {
	cfg := twoBoxConfig()
	cfg.MaxFlows = 16
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tpl := testTuple
	for i := 0; i < 100; i++ {
		tpl.SrcPort = uint16(1000 + i)
		if _, err := e.Inspect(1, tpl, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.ActiveFlows(); got > 16 {
		t.Errorf("ActiveFlows = %d, exceeds MaxFlows", got)
	}
	if s := e.Snapshot(); s.FlowsEvicted == 0 {
		t.Error("no evictions recorded")
	}
}

func TestRangeCoalescingThroughEngine(t *testing.T) {
	cfg := Config{
		Profiles: []Profile{{ID: 0, Patterns: patterns.FromStrings("r", []string{"aaaa"})}},
		Chains:   map[uint16][]int{1: {0}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Inspect(1, testTuple, bytes.Repeat([]byte{'a'}, 10))
	if err != nil {
		t.Fatal(err)
	}
	got := flatten(rep)
	want := []rec{{0, 0, 4, 7}} // ends 4..10 coalesce into one range
	if !reflect.DeepEqual(got, want) {
		t.Errorf("report = %v, want %v", got, want)
	}
}

func TestCompactKindEquivalence(t *testing.T) {
	mk := func(kind AutomatonKind) *Engine {
		cfg := twoBoxConfig()
		cfg.Kind = kind
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	full, compact, bitmap := mk(AutoFull), mk(AutoCompact), mk(AutoBitmap)
	rng := rand.New(rand.NewSource(3))
	inputs := [][]byte{
		[]byte("attack-sig"), []byte("malware-body evil /etc/passwd"),
		[]byte("nothing here"),
	}
	for i := 0; i < 20; i++ {
		buf := make([]byte, 200)
		for j := range buf {
			buf[j] = byte(rng.Intn(256))
		}
		copy(buf[50:], "evil")
		inputs = append(inputs, buf)
	}
	for i, in := range inputs {
		tpl := testTuple
		tpl.SrcPort = uint16(i)
		rf, err := full.Inspect(1, tpl, in)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := compact.Inspect(1, tpl, in)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := bitmap.Inspect(1, tpl, in)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(flatten(rf), flatten(rc)) {
			t.Errorf("input %d: full %v, compact %v", i, flatten(rf), flatten(rc))
		}
		if !reflect.DeepEqual(flatten(rf), flatten(rb)) {
			t.Errorf("input %d: full %v, bitmap %v", i, flatten(rf), flatten(rb))
		}
	}
	if full.MemoryBytes() <= compact.MemoryBytes() {
		t.Errorf("full (%d B) not larger than compact (%d B)", full.MemoryBytes(), compact.MemoryBytes())
	}
}

func TestConfigValidation(t *testing.T) {
	base := twoBoxConfig()
	for name, mut := range map[string]func(*Config){
		"no profiles":    func(c *Config) { c.Profiles = nil },
		"dup id":         func(c *Config) { c.Profiles[1].ID = 0 },
		"id range":       func(c *Config) { c.Profiles[0].ID = 64 },
		"no patterns":    func(c *Config) { c.Profiles[0].Patterns = &patterns.Set{} },
		"neg stop":       func(c *Config) { c.Profiles[0].StopAfter = -1 },
		"chain unknown":  func(c *Config) { c.Chains[7] = []int{42} },
		"pattern id big": func(c *Config) { c.Profiles[0].Patterns.Patterns[0].ID = RegexReportBase },
		"bad kind":       func(c *Config) { c.Kind = AutomatonKind(9) },
	} {
		cfg := twoBoxConfig()
		_ = base
		mut(&cfg)
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("%s: NewEngine succeeded, want error", name)
		}
	}
	// Bad regex must be rejected at init.
	set := &patterns.Set{Name: "rx", Regexes: []patterns.Regex{{ID: 0, Expr: "("}}}
	if _, err := NewEngine(Config{Profiles: []Profile{{ID: 0, Patterns: set}}}); err == nil {
		t.Error("bad regex accepted")
	}
}

func TestEngineAccessors(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.NumPatterns() != 5 {
		t.Errorf("NumPatterns = %d, want 5", e.NumPatterns())
	}
	if e.NumStates() == 0 || e.MemoryBytes() == 0 {
		t.Error("zero states or memory")
	}
	tags := e.Chains()
	if len(tags) != 2 {
		t.Errorf("Chains = %v", tags)
	}
}

func TestChainStats(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Inspect(1, testTuple, []byte("evil here")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Inspect(1, testTuple, []byte("clean")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Inspect(2, testTuple, []byte("evil again")); err != nil {
		t.Fatal(err)
	}
	stats := e.ChainStats()
	if len(stats) != 2 || stats[0].Tag != 1 || stats[1].Tag != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Packets != 2 || stats[0].Matches != 2 { // evil x2 sets on chain 1
		t.Errorf("chain 1 = %+v", stats[0])
	}
	if stats[1].Packets != 1 || stats[1].Matches != 1 { // only set 1 on chain 2
		t.Errorf("chain 2 = %+v", stats[1])
	}
	if stats[0].Bytes != uint64(len("evil here")+len("clean")) {
		t.Errorf("chain 1 bytes = %d", stats[0].Bytes)
	}
}

func TestFlowStatsTelemetry(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("evil evil evil")
	for i := 0; i < 3; i++ {
		if _, err := e.Inspect(1, testTuple, payload); err != nil {
			t.Fatal(err)
		}
	}
	stats := e.FlowStats()
	if len(stats) != 1 {
		t.Fatalf("FlowStats = %+v", stats)
	}
	if stats[0].Bytes != uint64(3*len(payload)) {
		t.Errorf("Bytes = %d", stats[0].Bytes)
	}
	if stats[0].Matches != 18 { // 3 occurrences x 2 sets x 3 packets
		t.Errorf("Matches = %d, want 18", stats[0].Matches)
	}
}
