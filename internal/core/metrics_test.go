package core

import (
	"testing"

	"dpiservice/internal/obs"
)

// TestMetricsMatchSnapshot checks that the obs registry and the legacy
// StatsSnapshot view agree — they are the same counters.
func TestMetricsMatchSnapshot(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		[]byte("GET /etc/passwd HTTP/1.1"),
		[]byte("nothing to see here"),
		[]byte("an evil malware-body payload"),
	}
	for i, p := range payloads {
		tuple := parallelFlowTuple(i)
		if _, err := e.Inspect(1, tuple, p); err != nil {
			t.Fatal(err)
		}
	}
	ss := e.Snapshot()
	ms := e.Metrics().Snapshot()
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"core.packets", ss.Packets},
		{"core.bytes", ss.Bytes},
		{"core.bytes_scanned", ss.BytesScanned},
		{"core.matches", ss.Matches},
		{"core.reports", ss.Reports},
		{"core.flows_evicted", ss.FlowsEvicted},
		{"core.regex_confirms", ss.RegexConfirms},
		{"core.regex_hits", ss.RegexHits},
		{"core.decompressed", ss.Decompressed},
	} {
		got, ok := ms.Counter(c.name)
		if !ok || got != c.want {
			t.Errorf("%s = %d (present=%v), want %d", c.name, got, ok, c.want)
		}
	}
	if ss.Packets != uint64(len(payloads)) {
		t.Fatalf("packets = %d, want %d", ss.Packets, len(payloads))
	}
	// Every payload hit a distinct new flow: misses == flows, hits == 0.
	if v, _ := ms.Counter("core.flow_misses"); v != uint64(len(payloads)) {
		t.Errorf("core.flow_misses = %d, want %d", v, len(payloads))
	}
	if v, _ := ms.Counter("core.flow_hits"); v != 0 {
		t.Errorf("core.flow_hits = %d, want 0", v)
	}
	if v, _ := ms.Gauge("core.flows_active"); v != int64(len(payloads)) {
		t.Errorf("core.flows_active = %d, want %d", v, len(payloads))
	}
	hv, ok := ms.Histogram("core.payload_bytes")
	if !ok || hv.Count != ss.Packets {
		t.Errorf("core.payload_bytes count = %d (present=%v), want %d", hv.Count, ok, ss.Packets)
	}
	// Shard scan counters must sum to the packet total.
	var shardSum uint64
	for _, c := range ms.Counters {
		if len(c.Name) > 11 && c.Name[:11] == "core.shard." {
			shardSum += c.Value
		}
	}
	if shardSum != ss.Packets {
		t.Errorf("sum of shard scans = %d, want %d", shardSum, ss.Packets)
	}

	// EndFlow releases the active-flow gauge.
	e.EndFlow(parallelFlowTuple(0))
	e.EndFlow(parallelFlowTuple(0)) // double-end must not underflow
	if v, _ := e.Metrics().Snapshot().Gauge("core.flows_active"); v != int64(len(payloads)-1) {
		t.Errorf("core.flows_active after EndFlow = %d, want %d", v, len(payloads)-1)
	}
}

// TestSharedRegistryAggregates covers Config.Metrics: two engines on
// one registry accumulate into the same counters.
func TestSharedRegistryAggregates(t *testing.T) {
	reg := obs.NewRegistry()
	cfg1 := twoBoxConfig()
	cfg1.Metrics = reg
	cfg2 := twoBoxConfig()
	cfg2.Metrics = reg
	e1, err := NewEngine(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Metrics() != reg || e2.Metrics() != reg {
		t.Fatal("engines did not adopt the provided registry")
	}
	e1.Inspect(1, parallelFlowTuple(0), []byte("x"))
	e2.Inspect(1, parallelFlowTuple(1), []byte("y"))
	if v, _ := reg.Snapshot().Counter("core.packets"); v != 2 {
		t.Fatalf("shared core.packets = %d, want 2", v)
	}
}

// TestInspectMetricsAllocFree is the acceptance gate for the metrics
// layer: steady-state Inspect — now fully instrumented — must still
// allocate nothing for a non-matching packet.
func TestInspectMetricsAllocFree(t *testing.T) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	tuple := parallelFlowTuple(0)
	payload := []byte("completely innocuous payload bytes")
	// Warm up: create the flow state and populate the scratch pool.
	for i := 0; i < 16; i++ {
		if _, err := e.Inspect(1, tuple, payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		rep, err := e.Inspect(1, tuple, payload)
		if err != nil {
			t.Fatal(err)
		}
		if rep != nil {
			t.Fatal("unexpected match")
		}
	})
	if allocs != 0 {
		t.Fatalf("instrumented Inspect allocated %v allocs/op, want 0", allocs)
	}
}

// BenchmarkInspectAllocs reports allocs/op for the instrumented scan
// path; CI-visible companion to TestInspectMetricsAllocFree.
func BenchmarkInspectAllocs(b *testing.B) {
	e, err := NewEngine(twoBoxConfig())
	if err != nil {
		b.Fatal(err)
	}
	tuple := parallelFlowTuple(0)
	payload := []byte("completely innocuous payload bytes")
	for i := 0; i < 16; i++ {
		e.Inspect(1, tuple, payload)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Inspect(1, tuple, payload)
	}
}
