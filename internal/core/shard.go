package core

import (
	"sync"
	"sync/atomic"

	"dpiservice/internal/mpm"
	"dpiservice/internal/obs"
	"dpiservice/internal/packet"
	"dpiservice/internal/trace"
)

// The shard lock and a flow's lock are never held together today (flow
// returns the state after releasing the shard); the declared order pins
// the only acceptable nesting should one ever appear — the short
// hash-lookup lock outside the long per-flow scan lock, never a shard
// operation waiting on a DFA traversal.
//
//dpi:lockorder(core.flowShard.mu < core.flowState.mu)

// flowShard is one slice of the sharded flow table. The shard lock
// guards only the map and the LRU clock — never a scan — so the time a
// packet holds it is a hash lookup, not a DFA traversal.
type flowShard struct {
	mu sync.Mutex
	//dpi:guardedby(mu)
	flows map[packet.FiveTuple]*flowState
	//dpi:guardedby(mu)
	useSeq   uint64 // logical clock for LRU eviction
	maxFlows int    // immutable after NewEngine
	// scans counts packets routed to this shard (core.shard.NNN.scans)
	// — the skew monitor for the FastHash distribution. Set once in
	// NewEngine.
	scans *obs.Counter
}

type flowState struct {
	// mu serializes stateful scans of this one flow (a flow's DFA
	// state must advance in packet order); stateless chains never take
	// it.
	mu sync.Mutex
	//dpi:guardedby(mu)
	state mpm.State
	//dpi:guardedby(mu)
	foldState mpm.State
	//dpi:guardedby(mu)
	foldStarted bool
	//dpi:guardedby(mu)
	offset int64
	//dpi:guardedby(mu)
	lastUsed uint64 // the guarding mu is the owning shard's, not the flow's
	// MCA² telemetry (Section 4.3.1), updated outside the locks.
	bytes   atomic.Uint64
	matches atomic.Uint64
}

// flow returns the state record for tuple, creating (and possibly
// evicting) as needed. The returned pointer stays valid even if the
// entry is evicted mid-scan; the replacement simply restarts clean.
//
//dpi:hotpath
func (sh *flowShard) flow(e *Engine, tuple packet.FiveTuple) *flowState {
	sh.mu.Lock()
	fs, ok := sh.flows[tuple]
	if !ok {
		if len(sh.flows) >= sh.maxFlows {
			sh.evictFlow(e)
		}
		start := mpm.State(0)
		if e.auto != nil {
			start = e.auto.Start()
		}
		// Not recycled through a freelist on purpose: an evicted
		// flowState may still be referenced by an in-flight scan (see
		// the contract above), so reuse would alias live state.
		//dpi:coldalloc(once per new flow, amortized across the flow's packets)
		fs = &flowState{state: start}
		sh.flows[tuple] = fs
	}
	sh.useSeq++
	fs.lastUsed = sh.useSeq
	sh.mu.Unlock()
	if ok {
		e.met.flowHits.Inc()
	} else {
		e.met.flowMisses.Inc()
		e.met.flowsActive.Add(1)
	}
	return fs
}

// evictFlow removes the least recently used among a small random sample
// of the shard's flows — an O(1) approximation of LRU adequate for a
// table whose entries are tiny (a DFA state and an offset, the paper's
// point about instance state in Section 4.3). Caller holds sh.mu.
//
//dpi:hotpath
//dpi:locked(mu)
func (sh *flowShard) evictFlow(e *Engine) {
	var victim packet.FiveTuple
	var oldest uint64 = ^uint64(0)
	n := 0
	for t, fs := range sh.flows {
		if fs.lastUsed < oldest {
			oldest = fs.lastUsed
			victim = t
		}
		n++
		if n >= 8 {
			break
		}
	}
	if n > 0 {
		delete(sh.flows, victim)
		e.met.flowsEvicted.Inc()
		e.met.flowsActive.Add(-1)
		e.fl.Record(trace.EvFlowEvict, victim.FastHash(), oldest)
	}
}
