package core

import (
	"fmt"
	"reflect"
	"testing"

	"dpiservice/internal/trace"
)

// TestInspectStagedEquivalence runs the same stateful packet sequence
// through Inspect and InspectStaged on twin engines and asserts the
// reports are identical — the staged entry point may add timing but
// must never change scan semantics.
func TestInspectStagedEquivalence(t *testing.T) {
	plain, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}
	staged, err := NewEngine(twoBoxConfig())
	if err != nil {
		t.Fatal(err)
	}

	payloads := [][]byte{
		[]byte("GET /etc/passwd HTTP/1.1"),
		[]byte("nothing interesting here"),
		[]byte("attack-"), // split across packets: stateful chain must stitch
		[]byte("sig and malware-body too"),
		[]byte("evil"),
	}
	for i, p := range payloads {
		want, err := plain.Inspect(1, testTuple, p)
		if err != nil {
			t.Fatalf("Inspect %d: %v", i, err)
		}
		got, prepNs, scanNs, err := staged.InspectStaged(1, testTuple, p)
		if err != nil {
			t.Fatalf("InspectStaged %d: %v", i, err)
		}
		if !reflect.DeepEqual(flatten(got), flatten(want)) {
			t.Errorf("packet %d: staged report = %v, want %v", i, flatten(got), flatten(want))
		}
		if prepNs < 0 || scanNs < 0 {
			t.Errorf("packet %d: negative stage durations %d/%d", i, prepNs, scanNs)
		}
	}

	// Unknown chain errors identically.
	if _, _, _, err := staged.InspectStaged(99, testTuple, []byte("x")); err == nil {
		t.Error("InspectStaged accepted unknown chain")
	}

	// The staged path feeds the latency histogram.
	snap := staged.Metrics().Snapshot()
	h, ok := snap.Histogram("core.scan_ns")
	if !ok || h.Count != uint64(len(payloads)) {
		t.Errorf("scan_ns histogram count = %d (ok=%v), want %d", h.Count, ok, len(payloads))
	}
}

// TestFlowEvictFlightRecorder overflows a tiny flow table and asserts
// evictions land in the attached flight recorder.
func TestFlowEvictFlightRecorder(t *testing.T) {
	cfg := twoBoxConfig()
	cfg.MaxFlows = 8
	cfg.Shards = 1
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fl := trace.NewFlight("test", 64)
	e.SetFlight(fl)

	for i := 0; i < 64; i++ {
		tuple := testTuple
		tuple.SrcPort = uint16(1024 + i)
		if _, err := e.Inspect(1, tuple, []byte(fmt.Sprintf("pkt-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	evictions := 0
	for _, ev := range fl.Snapshot() {
		if ev.Kind == trace.EvFlowEvict {
			evictions++
		}
	}
	if evictions == 0 {
		t.Fatal("no flow evictions recorded in flight recorder")
	}
	if got := e.Snapshot().FlowsEvicted; uint64(evictions) > got {
		t.Fatalf("flight evictions %d > counter %d", evictions, got)
	}
}
