package core

import (
	"fmt"
	"time"

	"dpiservice/internal/mpm"
	"dpiservice/internal/obs"
	"dpiservice/internal/packet"
)

// engineMetrics caches the engine's obs instruments. Lookup by name
// happens once, in NewEngine; the hot path touches only the cached
// pointers, so a metric update is a single atomic RMW — no map access,
// no lock, no allocation.
type engineMetrics struct {
	reg *obs.Registry

	packets       *obs.Counter
	bytes         *obs.Counter
	bytesScanned  *obs.Counter
	matches       *obs.Counter
	reports       *obs.Counter
	flowsEvicted  *obs.Counter
	regexConfirms *obs.Counter
	regexHits     *obs.Counter
	decompressed  *obs.Counter
	flowHits      *obs.Counter
	flowMisses    *obs.Counter

	// Prefilter telemetry (AutoPrefilter engines only): probe volume,
	// hit volume, bytes the exact automaton re-scanned, and the two
	// escape hatches (per-scan bailouts and plain-routed scans).
	pfProbes    *obs.Counter
	pfHits      *obs.Counter
	pfConfirmed *obs.Counter
	pfBailouts  *obs.Counter
	pfPlain     *obs.Counter

	flowsActive *obs.Gauge

	payloadBytes *obs.Histogram
	scanNs       *obs.Histogram

	// shardScans is indexed parallel to Engine.shards.
	shardScans []*obs.Counter
}

func newEngineMetrics(reg *obs.Registry, shards int) *engineMetrics {
	m := &engineMetrics{
		reg:           reg,
		packets:       reg.Counter("core.packets"),
		bytes:         reg.Counter("core.bytes"),
		bytesScanned:  reg.Counter("core.bytes_scanned"),
		matches:       reg.Counter("core.matches"),
		reports:       reg.Counter("core.reports"),
		flowsEvicted:  reg.Counter("core.flows_evicted"),
		regexConfirms: reg.Counter("core.regex_confirms"),
		regexHits:     reg.Counter("core.regex_hits"),
		decompressed:  reg.Counter("core.decompressed"),
		flowHits:      reg.Counter("core.flow_hits"),
		flowMisses:    reg.Counter("core.flow_misses"),
		pfProbes:      reg.Counter("core.prefilter_probes"),
		pfHits:        reg.Counter("core.prefilter_hits"),
		pfConfirmed:   reg.Counter("core.prefilter_confirmed_bytes"),
		pfBailouts:    reg.Counter("core.prefilter_bailouts"),
		pfPlain:       reg.Counter("core.prefilter_plain_scans"),
		flowsActive:   reg.Gauge("core.flows_active"),
		payloadBytes:  reg.Histogram("core.payload_bytes", obs.SizeBounds),
		scanNs:        reg.Histogram("core.scan_ns", obs.LatencyBounds),
	}
	m.shardScans = make([]*obs.Counter, shards)
	for i := range m.shardScans {
		m.shardScans[i] = reg.Counter(fmt.Sprintf("core.shard.%03d.scans", i))
	}
	return m
}

// notePrefilter folds one scan's accumulated prefilter stats into the
// cached counters. Zero fields are skipped so the common all-dismissed
// scan costs two atomic adds, not five.
//
//dpi:hotpath
func (m *engineMetrics) notePrefilter(st *mpm.PrefilterStats) {
	if st.Probes != 0 {
		m.pfProbes.Add(st.Probes)
	}
	if st.Hits != 0 {
		m.pfHits.Add(st.Hits)
	}
	if st.ConfirmedBytes != 0 {
		m.pfConfirmed.Add(st.ConfirmedBytes)
	}
	if st.Bailouts != 0 {
		m.pfBailouts.Add(st.Bailouts)
	}
	if st.PlainScans != 0 {
		m.pfPlain.Add(st.PlainScans)
	}
}

// Metrics returns the engine's metrics registry — the one passed in
// Config.Metrics, or the engine's private registry when none was.
func (e *Engine) Metrics() *obs.Registry { return e.met.reg }

// InspectTimed is Inspect plus a scan-latency observation into the
// core.scan_ns histogram. The clock read lives here, outside the
// //dpi:hotpath-checked scan path, so daemons and worker pools get
// latency telemetry while Inspect itself stays clock-free for callers
// (like dpibench) that measure externally.
func (e *Engine) InspectTimed(tag uint16, tuple packet.FiveTuple, payload []byte) (*packet.Report, error) {
	start := time.Now()
	rep, err := e.Inspect(tag, tuple, payload)
	e.met.scanNs.Observe(uint64(time.Since(start)))
	return rep, err
}

// InspectStaged is Inspect with per-stage timing: it reports how long
// the prepare stage (decompression, flow admission, stopping
// conditions — the wire pipeline's "reassembly" stage) and the scan
// stage (DFA traversal plus regex confirmation and flow write-back)
// each took, for span-level tracing. The clock reads live here,
// between the //dpi:hotpath-checked stages, so the checked scan path
// itself stays clock-free and Inspect is unchanged for untraced
// traffic. The combined duration also feeds core.scan_ns.
func (e *Engine) InspectStaged(tag uint16, tuple packet.FiveTuple, payload []byte) (rep *packet.Report, prepareNs, scanNs int64, err error) {
	chain, ok := e.chains[tag]
	if !ok {
		return nil, 0, 0, &UnknownChainError{Tag: tag}
	}
	s := e.scratchPool.Get().(*scratch)
	t0 := time.Now()
	e.prepare(chain, tuple, payload, s)
	t1 := time.Now()
	if e.auto != nil && s.ps.limit > 0 {
		if e.pf != nil {
			s.ps.state = e.pf.ScanStats(s.ps.scanData[:s.ps.limit], s.ps.state, chain.mask, s.emitFn, &s.pfStats)
		} else {
			s.ps.state = e.auto.Scan(s.ps.scanData[:s.ps.limit], s.ps.state, chain.mask, s.emitFn)
		}
		e.met.bytesScanned.Add(uint64(s.ps.limit))
	}
	rep = e.finish(s)
	t2 := time.Now()
	e.scratchPool.Put(s)
	e.met.scanNs.Observe(uint64(t2.Sub(t0)))
	return rep, t1.Sub(t0).Nanoseconds(), t2.Sub(t1).Nanoseconds(), nil
}
