// Package trace is the per-flow distributed-tracing and flight-recorder
// layer of the DPI service. It answers the question the aggregate
// counters in package obs cannot: where did one packet's time go as it
// crossed trafficgen -> dpinstance -> mboxd, and what happened in the
// moments before a failure.
//
// Two instruments share one lock-free storage primitive (a sharded ring
// of seqlock slots, see ring.go):
//
//   - Tracer records per-stage spans for *sampled* flows. The sampling
//     decision is made once, at the traffic origin, by a deterministic
//     hash of the flow five-tuple (Sampler); the resulting trace ID and
//     per-flow packet index travel in-band in the wire frames
//     (wire.FlagTrace + the 12-byte trace extension), so spans recorded
//     by different processes stitch into one trace by ID alone — no
//     clock agreement or out-of-band correlation needed.
//
//   - Flight is the always-on flight recorder: a bounded ring of recent
//     rare events (flow evictions, retransmits, lease transitions,
//     failovers, shed/normalization decisions) that costs a few atomic
//     stores per event and can be dumped on demand (/flight) or on test
//     failure.
//
// Both write paths are //dpi:hotpath-safe: no locks, no allocation, no
// clock reads (flight timestamps come from a coarse background Clock).
package trace

import (
	"dpiservice/internal/packet"
)

// Stage identifies one pipeline stage of a traced packet's journey.
type Stage uint8

// Pipeline stages, in path order. Send is the origin-side stage
// (trafficgen queueing the packet on the wire); the five service
// stages follow the packet through the DPI instance and the consuming
// middlebox.
const (
	StageSend       Stage = iota + 1 // origin: queue on the wire
	StageDecode                      // wire receive -> frame decode -> dispatch
	StageReassembly                  // flow admission, stream state, decompression
	StageScan                        // prefilter/MPM DFA scan + confirmation
	StageEncode                      // report encode + result/verdict transmit
	StageConsume                     // middlebox verdict consumption
)

// stageNames indexes Stage. Index 0 is the invalid zero stage.
var stageNames = [...]string{"", "send", "decode", "reassembly", "scan", "encode", "consume"}

// String renders the stage for dumps and logs.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// NumStages is the count of defined pipeline stages.
const NumStages = 6

// splitmix64 is the finalizer used to derive trace IDs and shard
// indexes; one multiply-xor round is enough to decorrelate the flow
// hash from the sampling decision.
//
//dpi:hotpath
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString folds a string into a uint64 (FNV-1a) so cold-path events
// can attach identities (instance IDs) to flight records without
// carrying allocations onto the ring.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Sampler makes the per-flow sampling decision at the traffic origin.
// The decision is a deterministic function of the flow five-tuple, so
// every packet of a flow is either fully traced or not at all, and
// repeated runs with the same base sample the same flows. The zero
// value samples nothing.
type Sampler struct {
	rate uint64 // sample 1-in-rate flows; 0 disables
	base uint64 // run identity mixed into trace IDs
}

// NewSampler samples one in rate flows (rate <= 0 disables sampling
// entirely; rate 1 traces every flow). base distinguishes runs: two
// trafficgen invocations with different bases produce disjoint trace
// IDs for the same flows.
func NewSampler(rate int, base uint64) Sampler {
	if rate <= 0 {
		return Sampler{}
	}
	return Sampler{rate: uint64(rate), base: base}
}

// Enabled reports whether the sampler can ever say yes.
func (s Sampler) Enabled() bool { return s.rate > 0 }

// Sampled reports whether the flow is traced. Deterministic in the
// tuple: both directions of a flow hash identically (FastHash is
// symmetric), so request and response packets land in the same trace.
//
//dpi:hotpath
func (s Sampler) Sampled(t packet.FiveTuple) bool {
	if s.rate == 0 {
		return false
	}
	return splitmix64(t.FastHash()^s.base)%s.rate == 0
}

// TraceID derives the flow's trace identity. Never zero (zero marks an
// empty ring slot and an absent wire extension).
//
//dpi:hotpath
func (s Sampler) TraceID(t packet.FiveTuple) uint64 {
	id := splitmix64(t.FastHash() ^ s.base ^ 0xa5a5a5a5a5a5a5a5)
	if id == 0 {
		id = 1
	}
	return id
}
