package trace

import (
	"sort"
	"strconv"
	"sync/atomic"
)

// Span is one recorded pipeline stage of a traced packet: which trace
// and packet it belongs to, the stage, and wall-clock start/duration in
// nanoseconds (each process stamps its own clock; stitching relies on
// the trace ID, not on clock agreement).
type Span struct {
	TraceID uint64
	PktIdx  uint32
	Stage   Stage
	StartNs int64
	DurNs   int64
}

// Trace is one stitched trace within a node: every span this process
// recorded under one trace ID, ordered by packet index then stage.
type Trace struct {
	ID    uint64
	Spans []Span
}

// IDString renders a trace ID the way dumps and the wire e2e stitcher
// compare them: lowercase hex, no prefix.
func IDString(id uint64) string { return strconv.FormatUint(id, 16) }

// Tracer records spans for sampled packets into per-shard lossy rings.
// All methods are nil-receiver safe so instrumented code records
// unconditionally and only traced deployments pay anything; the record
// path is lock- and allocation-free.
type Tracer struct {
	node     string
	shards   []*ring
	mask     uint64
	recorded atomic.Uint64
}

// DefaultSpanCapacity is the per-tracer span window when NewTracer is
// given no explicit size: 4 shards x 2048 spans = 8192 recent spans,
// about 320 KiB of fixed memory.
const DefaultSpanCapacity = 8192

// NewTracer builds a tracer identified as node (stamped into dumps).
// capacity is the total span window, split over power-of-two shards;
// <= 0 selects DefaultSpanCapacity. Memory is fixed at construction.
func NewTracer(node string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	const shards = 4
	per := (capacity + shards - 1) / shards
	t := &Tracer{node: node, shards: make([]*ring, shards), mask: shards - 1}
	for i := range t.shards {
		t.shards[i] = newRing(per)
	}
	return t
}

// Node returns the identity stamped into this tracer's dumps.
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Record appends one span. id must be non-zero (zero marks empty ring
// slots; Sampler.TraceID never returns it). Safe from any goroutine,
// never blocks, never allocates.
//
//dpi:hotpath
func (t *Tracer) Record(id uint64, pktIdx uint32, stage Stage, startNs, durNs int64) {
	if t == nil || id == 0 {
		return
	}
	sh := t.shards[splitmix64(id)&t.mask]
	sh.put(id, uint64(pktIdx)<<32|uint64(stage), uint64(startNs), uint64(durNs))
	t.recorded.Add(1)
}

// Recorded returns the number of spans ever recorded (including any
// that have since been overwritten in the ring window).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.recorded.Load()
}

// Capacity returns the fixed span window size.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, sh := range t.shards {
		n += sh.capSlots()
	}
	return n
}

// Snapshot copies the current span window. Concurrent with Record;
// spans overwritten mid-read are skipped, never returned torn.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, sh := range t.shards {
		sh.snapshot(func(w0, w1, w2, w3 uint64) {
			out = append(out, Span{
				TraceID: w0,
				PktIdx:  uint32(w1 >> 32),
				Stage:   Stage(w1 & 0xff),
				StartNs: int64(w2),
				DurNs:   int64(w3),
			})
		})
	}
	return out
}

// Traces groups the current span window by trace ID, spans ordered by
// packet index then stage, traces by ID — the /trace dump shape.
func (t *Tracer) Traces() []Trace {
	spans := t.Snapshot()
	byID := make(map[uint64][]Span)
	for _, s := range spans {
		byID[s.TraceID] = append(byID[s.TraceID], s)
	}
	out := make([]Trace, 0, len(byID))
	for id, ss := range byID {
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].PktIdx != ss[j].PktIdx {
				return ss[i].PktIdx < ss[j].PktIdx
			}
			if ss[i].Stage != ss[j].Stage {
				return ss[i].Stage < ss[j].Stage
			}
			return ss[i].StartNs < ss[j].StartNs
		})
		out = append(out, Trace{ID: id, Spans: ss})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
