package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies flight-recorder events. Kinds are stable wire
// numbers only within one process lifetime; dumps carry the name.
type EventKind uint8

// Flight-recorder event kinds. Each carries two uint64 arguments whose
// meaning is listed per kind; identities (instance IDs) ride as
// HashString values.
const (
	EvNone           EventKind = iota
	EvFlowEvict                // a=flow tuple hash, b=shard index
	EvStreamEvict              // a=stream key hash, b=streams tracked
	EvReassemblyDrop           // a=drop reason (reassembly-defined), b=seq
	EvShed                     // a=bytes shed, b=stream key hash
	EvRetransmit               // a=frame seq, b=retry count
	EvSessionDead              // a=session token, b=1 if retransmit limit, 0 if idle expiry
	EvLeaseSuspect             // a=HashString(instance id)
	EvLeaseDead                // a=HashString(instance id)
	EvFailover                 // a=chains reassigned, b=chains unassigned
	EvUnscanned                // a=flow tuple hash, b=1 if dropped (fail-closed), 0 if passed
)

var eventNames = [...]string{
	"none", "flow_evict", "stream_evict", "reassembly_drop", "shed",
	"retransmit", "session_dead", "lease_suspect", "lease_dead",
	"failover", "unscanned",
}

// String renders the kind for dumps and logs.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "event?"
}

// Event is one decoded flight-recorder record. Seq is a global
// admission order (monotonic per recorder); TsNs is the coarse clock
// reading, zero when the recorder has no clock attached.
type Event struct {
	Seq  uint64
	Kind EventKind
	A    uint64
	B    uint64
	TsNs int64
}

// Clock is a coarse wall clock readable from //dpi:hotpath code: a
// background goroutine refreshes an atomic nanosecond value on a fixed
// resolution, so hot-path readers pay one atomic load instead of a
// banned time.Now call. Nil-receiver reads return 0.
type Clock struct {
	ns   atomic.Int64
	done chan struct{}
	wg   sync.WaitGroup
}

// StartClock launches the updater at the given resolution (<= 0 picks
// 10ms). Stop the clock when its readers are gone.
func StartClock(res time.Duration) *Clock {
	if res <= 0 {
		res = 10 * time.Millisecond
	}
	c := &Clock{done: make(chan struct{})}
	c.ns.Store(time.Now().UnixNano())
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(res)
		defer t.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-t.C:
				c.ns.Store(time.Now().UnixNano())
			}
		}
	}()
	return c
}

// Stop halts the updater and joins its goroutine.
func (c *Clock) Stop() {
	close(c.done)
	c.wg.Wait()
}

// Nanos returns the last coarse reading (0 for a nil clock).
//
//dpi:hotpath
func (c *Clock) Nanos() int64 {
	if c == nil {
		return 0
	}
	return c.ns.Load()
}

// Flight is the always-on flight recorder: a fixed window of recent
// rare events held in per-shard lossy rings. Record is nil-receiver
// safe, lock-free and allocation-free, so hooks in hot code (flow
// eviction under the shard lock, retransmission in the wire tick) cost
// a handful of atomic operations when armed and one nil check when not.
type Flight struct {
	node   string
	shards []*ring
	mask   uint64
	seq    atomic.Uint64
	clk    *Clock
}

// DefaultFlightCapacity is the event window when NewFlight is given no
// explicit size: 4 shards x 512 events.
const DefaultFlightCapacity = 2048

// NewFlight builds a recorder identified as node. capacity is the
// total event window (<= 0 selects DefaultFlightCapacity); memory is
// fixed at construction.
func NewFlight(node string, capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	const shards = 4
	per := (capacity + shards - 1) / shards
	f := &Flight{node: node, shards: make([]*ring, shards), mask: shards - 1}
	for i := range f.shards {
		f.shards[i] = newRing(per)
	}
	return f
}

// SetClock attaches the coarse timestamp source. Call before the
// recorder is shared; nil leaves events stamped 0.
func (f *Flight) SetClock(c *Clock) {
	if f != nil {
		f.clk = c
	}
}

// Node returns the identity stamped into this recorder's dumps.
func (f *Flight) Node() string {
	if f == nil {
		return ""
	}
	return f.node
}

// Record appends one event. Safe from any goroutine, never blocks,
// never allocates, never reads the real clock.
//
//dpi:hotpath
func (f *Flight) Record(kind EventKind, a, b uint64) {
	if f == nil || kind == EvNone {
		return
	}
	seq := f.seq.Add(1)
	// Kind rides the top byte of the first word so zero still marks an
	// empty slot (seq starts at 1 and kinds start at 1).
	w0 := uint64(kind)<<56 | seq&(1<<56-1)
	f.shards[seq&f.mask].put(w0, a, b, uint64(f.clk.Nanos()))
}

// Recorded returns the number of events ever recorded.
func (f *Flight) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Capacity returns the fixed event window size.
func (f *Flight) Capacity() int {
	if f == nil {
		return 0
	}
	n := 0
	for _, sh := range f.shards {
		n += sh.capSlots()
	}
	return n
}

// Snapshot copies the current event window in admission order.
// Concurrent with Record; events overwritten mid-read are skipped,
// never returned torn.
func (f *Flight) Snapshot() []Event {
	if f == nil {
		return nil
	}
	var out []Event
	for _, sh := range f.shards {
		sh.snapshot(func(w0, w1, w2, w3 uint64) {
			out = append(out, Event{
				Seq:  w0 & (1<<56 - 1),
				Kind: EventKind(w0 >> 56),
				A:    w1,
				B:    w2,
				TsNs: int64(w3),
			})
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
