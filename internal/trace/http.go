package trace

import (
	"encoding/json"
	"io"
	"net/http"
)

// The debug-endpoint JSON shapes. Trace IDs render as lowercase hex
// strings: a uint64 does not survive a round-trip through every JSON
// consumer, and the wire-e2e stitcher joins on the string form.

type spanJSON struct {
	Pkt     uint32 `json:"pkt"`
	Stage   string `json:"stage"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

type traceJSON struct {
	ID    string     `json:"id"`
	Spans []spanJSON `json:"spans"`
}

// TraceDump is the /trace response body.
type TraceDump struct {
	Node     string      `json:"node"`
	Recorded uint64      `json:"recorded"`
	Capacity int         `json:"capacity"`
	Traces   []traceJSON `json:"traces"`
}

// Dump assembles the current stitched-trace view.
func (t *Tracer) Dump() TraceDump {
	d := TraceDump{Node: t.Node(), Recorded: t.Recorded(), Capacity: t.Capacity()}
	for _, tr := range t.Traces() {
		tj := traceJSON{ID: IDString(tr.ID)}
		for _, s := range tr.Spans {
			tj.Spans = append(tj.Spans, spanJSON{
				Pkt: s.PktIdx, Stage: s.Stage.String(), StartNs: s.StartNs, DurNs: s.DurNs,
			})
		}
		d.Traces = append(d.Traces, tj)
	}
	return d
}

// WriteJSON writes the trace dump as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Dump())
}

// Handler serves the tracer's /trace endpoint: the current span window
// grouped into traces, JSON. Safe while traffic is flowing.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		t.WriteJSON(w)
	})
}

type eventJSON struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	A    uint64 `json:"a"`
	B    uint64 `json:"b"`
	TsNs int64  `json:"ts_ns,omitempty"`
}

// FlightDump is the /flight response body.
type FlightDump struct {
	Node     string      `json:"node"`
	Recorded uint64      `json:"recorded"`
	Capacity int         `json:"capacity"`
	Events   []eventJSON `json:"events"`
}

// Dump assembles the current event window.
func (f *Flight) Dump() FlightDump {
	d := FlightDump{Node: f.Node(), Recorded: f.Recorded(), Capacity: f.Capacity()}
	for _, e := range f.Snapshot() {
		d.Events = append(d.Events, eventJSON{
			Seq: e.Seq, Kind: e.Kind.String(), A: e.A, B: e.B, TsNs: e.TsNs,
		})
	}
	return d
}

// WriteJSON writes the flight dump as indented JSON.
func (f *Flight) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.Dump())
}

// Handler serves the recorder's /flight endpoint: the recent-event
// window in admission order, JSON. Safe while traffic is flowing.
func (f *Flight) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		f.WriteJSON(w)
	})
}
