package trace

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"dpiservice/internal/packet"
)

func tup(i int) packet.FiveTuple {
	return packet.FiveTuple{
		Src:      packet.IP4{10, 0, byte(i >> 8), byte(i)},
		Dst:      packet.IP4{10, 0, 0, 2},
		SrcPort:  uint16(1024 + i),
		DstPort:  80,
		Protocol: packet.IPProtoTCP,
	}
}

func TestSamplerDeterministic(t *testing.T) {
	s := NewSampler(4, 42)
	sampled := 0
	for i := 0; i < 4096; i++ {
		a, b := s.Sampled(tup(i)), s.Sampled(tup(i))
		if a != b {
			t.Fatalf("flow %d: sampling decision not deterministic", i)
		}
		if a {
			sampled++
			if s.TraceID(tup(i)) == 0 {
				t.Fatalf("flow %d: zero trace ID", i)
			}
			if s.TraceID(tup(i)) != s.TraceID(tup(i)) {
				t.Fatalf("flow %d: trace ID not deterministic", i)
			}
		}
	}
	// 1-in-4 sampling over 4096 flows: expect roughly a quarter.
	if sampled < 4096/8 || sampled > 4096/2 {
		t.Fatalf("sampled %d of 4096 flows at rate 4", sampled)
	}
	// A symmetric tuple (reversed direction) samples identically.
	fwd := tup(7)
	rev := packet.FiveTuple{Src: fwd.Dst, Dst: fwd.Src, SrcPort: fwd.DstPort, DstPort: fwd.SrcPort, Protocol: fwd.Protocol}
	if s.Sampled(fwd) != s.Sampled(rev) {
		t.Fatal("sampling decision differs between flow directions")
	}
}

func TestSamplerDisabled(t *testing.T) {
	var zero Sampler
	if zero.Enabled() || zero.Sampled(tup(1)) {
		t.Fatal("zero sampler must sample nothing")
	}
	off := NewSampler(0, 99)
	if off.Enabled() || off.Sampled(tup(1)) {
		t.Fatal("rate-0 sampler must sample nothing")
	}
	every := NewSampler(1, 99)
	for i := 0; i < 64; i++ {
		if !every.Sampled(tup(i)) {
			t.Fatalf("rate-1 sampler skipped flow %d", i)
		}
	}
}

func TestTracerRecordAndStitch(t *testing.T) {
	tr := NewTracer("node-a", 64)
	stages := []Stage{StageDecode, StageReassembly, StageScan, StageEncode}
	for pkt := uint32(0); pkt < 3; pkt++ {
		for i, st := range stages {
			tr.Record(0xabc, pkt, st, int64(1000*pkt)+int64(i*10), 5)
		}
	}
	tr.Record(0xdef, 0, StageConsume, 50, 7)

	traces := tr.Traces()
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	if traces[0].ID != 0xabc || len(traces[0].Spans) != 12 {
		t.Fatalf("trace[0] = id %x with %d spans", traces[0].ID, len(traces[0].Spans))
	}
	// Within one packet, spans are ordered by stage.
	for i, s := range traces[0].Spans[:4] {
		if s.PktIdx != 0 || s.Stage != stages[i] {
			t.Fatalf("span %d = pkt %d stage %v", i, s.PktIdx, s.Stage)
		}
	}
	if got := tr.Recorded(); got != 13 {
		t.Fatalf("Recorded = %d, want 13", got)
	}
}

func TestTracerNilAndZeroID(t *testing.T) {
	var tr *Tracer
	tr.Record(1, 0, StageScan, 0, 0) // must not panic
	if len(tr.Snapshot()) != 0 || len(tr.Traces()) != 0 || tr.Recorded() != 0 {
		t.Fatal("nil tracer must be empty")
	}
	live := NewTracer("n", 8)
	live.Record(0, 0, StageScan, 0, 0) // zero ID is dropped
	if len(live.Snapshot()) != 0 {
		t.Fatal("zero trace ID must not be recorded")
	}
}

func TestRingBoundedUnderWraparound(t *testing.T) {
	tr := NewTracer("node-a", 64)
	capacity := tr.Capacity()
	for i := 0; i < 50*capacity; i++ {
		tr.Record(uint64(i)+1, uint32(i), StageScan, int64(i), 1)
	}
	if got := len(tr.Snapshot()); got > capacity {
		t.Fatalf("snapshot holds %d spans, capacity %d", got, capacity)
	}
	fl := NewFlight("node-a", 32)
	for i := 0; i < 50*fl.Capacity(); i++ {
		fl.Record(EvRetransmit, uint64(i), 0)
	}
	if got := len(fl.Snapshot()); got > fl.Capacity() {
		t.Fatalf("flight snapshot holds %d events, capacity %d", got, fl.Capacity())
	}
}

// TestRingNoTornReads hammers one ring from many writers while readers
// continuously snapshot, and asserts every observed record satisfies
// the writers' invariant (w3 = w0 ^ w1 ^ w2). Run under -race this also
// proves the seqlock scheme is data-race-free.
func TestRingNoTornReads(t *testing.T) {
	r := newRing(64)
	const writers, perWriter = 8, 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	torn := make(chan string, 1)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.snapshot(func(w0, w1, w2, w3 uint64) {
					if w3 != w0^w1^w2 {
						select {
						case torn <- "torn record observed":
						default:
						}
					}
				})
			}
		}()
	}
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				w0 := uint64(g*perWriter+i) | 1 // non-zero
				w1 := splitmix64(w0)
				w2 := splitmix64(w1)
				r.put(w0, w1, w2, w0^w1^w2)
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	select {
	case msg := <-torn:
		t.Fatal(msg)
	default:
	}
}

func TestFlightEventOrderAndClock(t *testing.T) {
	fl := NewFlight("node-b", 32)
	clk := StartClock(0)
	defer clk.Stop()
	fl.SetClock(clk)
	fl.Record(EvLeaseSuspect, HashString("dpi-1"), 0)
	fl.Record(EvLeaseDead, HashString("dpi-1"), 0)
	fl.Record(EvFailover, 3, 1)
	evs := fl.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %v", evs)
		}
	}
	if evs[0].Kind != EvLeaseSuspect || evs[1].Kind != EvLeaseDead || evs[2].Kind != EvFailover {
		t.Fatalf("kinds = %v %v %v", evs[0].Kind, evs[1].Kind, evs[2].Kind)
	}
	if evs[0].TsNs == 0 {
		t.Fatal("clocked event has zero timestamp")
	}
	if evs[2].A != 3 || evs[2].B != 1 {
		t.Fatalf("failover args = %d %d", evs[2].A, evs[2].B)
	}
}

func TestHTTPHandlers(t *testing.T) {
	tr := NewTracer("node-a", 64)
	tr.Record(0xbeef, 0, StageDecode, 10, 2)
	tr.Record(0xbeef, 0, StageScan, 12, 3)
	fl := NewFlight("node-a", 32)
	fl.Record(EvFlowEvict, 0x1234, 2)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	var td TraceDump
	if err := json.Unmarshal(rec.Body.Bytes(), &td); err != nil {
		t.Fatalf("trace dump: %v", err)
	}
	if td.Node != "node-a" || len(td.Traces) != 1 || td.Traces[0].ID != "beef" {
		t.Fatalf("trace dump = %+v", td)
	}
	if len(td.Traces[0].Spans) != 2 || td.Traces[0].Spans[1].Stage != "scan" {
		t.Fatalf("spans = %+v", td.Traces[0].Spans)
	}

	rec = httptest.NewRecorder()
	fl.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/flight", nil))
	var fd FlightDump
	if err := json.Unmarshal(rec.Body.Bytes(), &fd); err != nil {
		t.Fatalf("flight dump: %v", err)
	}
	if fd.Node != "node-a" || len(fd.Events) != 1 || fd.Events[0].Kind != "flow_evict" {
		t.Fatalf("flight dump = %+v", fd)
	}
}

// TestConcurrentScrape runs writers against both instruments while
// scraping their HTTP handlers, under -race in CI: no torn reads and
// bounded memory regardless of scrape timing.
func TestConcurrentScrape(t *testing.T) {
	tr := NewTracer("node-a", 256)
	fl := NewFlight("node-a", 64)
	clk := StartClock(0)
	defer clk.Stop()
	fl.SetClock(clk)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				tr.Record(uint64(g)<<32|i%97+1, uint32(i), Stage(i%6+1), int64(i), 1)
				if i%13 == 0 {
					fl.Record(EvRetransmit, i, uint64(g))
				}
			}
		}(g)
	}
	for n := 0; n < 50; n++ {
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
		var td TraceDump
		if err := json.Unmarshal(rec.Body.Bytes(), &td); err != nil {
			t.Fatalf("scrape %d: %v", n, err)
		}
		total := 0
		for _, tj := range td.Traces {
			total += len(tj.Spans)
		}
		if total > tr.Capacity() {
			t.Fatalf("scrape %d: %d spans exceed capacity %d", n, total, tr.Capacity())
		}
		rec = httptest.NewRecorder()
		fl.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/flight", nil))
		var fd FlightDump
		if err := json.Unmarshal(rec.Body.Bytes(), &fd); err != nil {
			t.Fatalf("flight scrape %d: %v", n, err)
		}
		if len(fd.Events) > fl.Capacity() {
			t.Fatalf("flight scrape %d: %d events exceed capacity %d", n, len(fd.Events), fl.Capacity())
		}
	}
	close(stop)
	wg.Wait()
}
