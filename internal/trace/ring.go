package trace

import "sync/atomic"

// ring is the shared storage primitive: a fixed, power-of-two array of
// four-word records written lock-free and read without ever blocking a
// writer. Each slot is a seqlock with fully atomic fields:
//
//	writer: CAS seq even->odd (claim), store the four words, store
//	        seq+2 (release, even again)
//	reader: load seq (skip if odd), load the words, re-load seq and
//	        discard the record if it changed
//
// A writer that loses the claim CAS — possible only when another
// writer laps the whole ring mid-write — drops its record instead of
// spinning: the ring is a lossy window by design, and the hot path must
// never wait. Because every field is accessed atomically, concurrent
// dumps are race-detector-clean and a reader can never observe a torn
// record: it either sees a fully consistent write or rejects the slot.
type ring struct {
	next  atomic.Uint64
	mask  uint64
	slots []slot
}

type slot struct {
	seq atomic.Uint64 // even = stable, odd = write in progress
	w0  atomic.Uint64
	w1  atomic.Uint64
	w2  atomic.Uint64
	w3  atomic.Uint64
}

// newRing rounds n up to a power of two and allocates the slots.
func newRing(n int) *ring {
	size := 1
	for size < n {
		size <<= 1
	}
	return &ring{mask: uint64(size - 1), slots: make([]slot, size)}
}

// put claims the next slot round-robin and writes one record.
//
//dpi:hotpath
func (r *ring) put(w0, w1, w2, w3 uint64) {
	s := &r.slots[(r.next.Add(1)-1)&r.mask]
	seq := s.seq.Load()
	if seq&1 != 0 || !s.seq.CompareAndSwap(seq, seq+1) {
		return // another writer lapped the ring into this slot; drop
	}
	s.w0.Store(w0)
	s.w1.Store(w1)
	s.w2.Store(w2)
	s.w3.Store(w3)
	s.seq.Store(seq + 2)
}

// snapshot visits every stable, non-empty record (w0 != 0 marks a
// written slot; both instruments reserve zero in their first word).
// Records overwritten mid-read are skipped, never observed torn.
func (r *ring) snapshot(visit func(w0, w1, w2, w3 uint64)) {
	for i := range r.slots {
		s := &r.slots[i]
		seq := s.seq.Load()
		if seq&1 != 0 {
			continue
		}
		w0 := s.w0.Load()
		w1 := s.w1.Load()
		w2 := s.w2.Load()
		w3 := s.w3.Load()
		if s.seq.Load() != seq || w0 == 0 {
			continue
		}
		visit(w0, w1, w2, w3)
	}
}

// capSlots reports the ring's slot capacity.
func (r *ring) capSlots() int { return len(r.slots) }
