// Package openflow implements the OpenFlow-style data plane the paper's
// prototype steers traffic with (Sections 4.1 and 6.1): a learning-free
// flow-table switch matching on ingress port, Ethernet fields, the
// VLAN steering tag, and the IP five-tuple, with actions to forward,
// push/pop/rewrite tags, flood, drop, or punt to the SDN controller.
// Matching beyond OpenFlow 1.0 (MPLS push/pop) is included since
// Section 4.2 discusses MPLS-label result tagging.
package openflow

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpiservice/internal/netsim"
	"dpiservice/internal/packet"
)

// AnyPort is the wildcard ingress port.
const AnyPort = -1

// Match is an OpenFlow-style match with explicit wildcards: nil or zero
// fields (per the comments) match anything.
type Match struct {
	InPort  int         // AnyPort (-1) = any
	EthDst  *packet.MAC // nil = any
	EthType uint16      // 0 = any (outermost type, before tags)
	VLANID  int         // -1 = any, >= 0 exact outer tag, NoVLAN = untagged
	IPProto uint8       // 0 = any
	SrcIP   *packet.IP4 // nil = any
	DstIP   *packet.IP4 // nil = any
	L4Src   uint16      // 0 = any
	L4Dst   uint16      // 0 = any
}

// NoVLAN in Match.VLANID matches only untagged frames.
const NoVLAN = -2

// NewMatch returns a match-anything Match; callers narrow fields.
func NewMatch() Match { return Match{InPort: AnyPort, VLANID: -1} }

// frameInfo is the per-frame parse the switch matches against.
type frameInfo struct {
	inPort  int
	ethDst  packet.MAC
	ethType uint16
	sum     packet.Summary
	sumOK   bool
}

// Matches reports whether the frame satisfies the match.
func (m *Match) matches(fi *frameInfo) bool {
	if m.InPort != AnyPort && m.InPort != fi.inPort {
		return false
	}
	if m.EthDst != nil && *m.EthDst != fi.ethDst {
		return false
	}
	if m.EthType != 0 && m.EthType != fi.ethType {
		return false
	}
	switch {
	case m.VLANID == NoVLAN:
		if fi.sumOK && fi.sum.Tagged {
			return false
		}
	case m.VLANID >= 0:
		if !fi.sumOK || !fi.sum.Tagged || int(fi.sum.VLANID) != m.VLANID {
			return false
		}
	}
	if m.IPProto != 0 && (!fi.sumOK || fi.sum.Tuple.Protocol != m.IPProto) {
		return false
	}
	if m.SrcIP != nil && (!fi.sumOK || fi.sum.Tuple.Src != *m.SrcIP) {
		return false
	}
	if m.DstIP != nil && (!fi.sumOK || fi.sum.Tuple.Dst != *m.DstIP) {
		return false
	}
	if m.L4Src != 0 && (!fi.sumOK || fi.sum.Tuple.SrcPort != m.L4Src) {
		return false
	}
	if m.L4Dst != 0 && (!fi.sumOK || fi.sum.Tuple.DstPort != m.L4Dst) {
		return false
	}
	return true
}

// ActionType enumerates flow actions.
type ActionType int

// Flow actions.
const (
	ActOutput ActionType = iota
	ActFlood
	ActDrop
	ActController
	ActPushVLAN
	ActPopVLAN
	ActSetVLAN
	ActSetECN
)

// Action is one step of a flow entry's action list, applied in order.
type Action struct {
	Type ActionType
	Port int    // ActOutput
	VLAN uint16 // ActPushVLAN / ActSetVLAN
}

// Output returns an ActOutput action.
func Output(port int) Action { return Action{Type: ActOutput, Port: port} }

// PushVLAN returns an ActPushVLAN action.
func PushVLAN(id uint16) Action { return Action{Type: ActPushVLAN, VLAN: id} }

// PopVLAN returns an ActPopVLAN action.
func PopVLAN() Action { return Action{Type: ActPopVLAN} }

// SetVLAN returns an ActSetVLAN action.
func SetVLAN(id uint16) Action { return Action{Type: ActSetVLAN, VLAN: id} }

// FlowEntry is one row of the flow table.
type FlowEntry struct {
	Priority int
	Match    Match
	Actions  []Action
	// Cookie is an opaque owner tag; controllers use it to delete all
	// rules of one chain at once (as OpenFlow cookies are used).
	Cookie uint64
	// IdleTimeout expires the entry when no packet has hit it for this
	// long (lazily, on lookup), like OpenFlow idle_timeout. Zero means
	// permanent. Reactive per-flow rules use it so the table does not
	// accumulate dead flows.
	IdleTimeout time.Duration

	packets atomic.Uint64
	bytes   atomic.Uint64
	lastHit atomic.Int64 // unixnano of last match (or installation)
	expired atomic.Bool
}

// Stats reports packets and bytes that hit this entry.
func (f *FlowEntry) Stats() (packets, bytes uint64) {
	return f.packets.Load(), f.bytes.Load()
}

// PacketInHandler receives table-miss frames (and explicit
// ActController punts), as an SDN controller would via packet-in.
type PacketInHandler interface {
	PacketIn(sw *Switch, inPort int, frame []byte)
}

// Switch is a flow-table switch. It implements netsim.Node and
// netsim.PortMapper: ports are numbered in the order peers are
// connected, or explicitly via MapPort.
type Switch struct {
	name string

	mu       sync.Mutex
	table    []*FlowEntry // sorted by priority, descending
	ports    map[int]*netsim.Port
	portByNm map[string]int
	nextPort int
	handler  PacketInHandler

	misses atomic.Uint64
	drops  atomic.Uint64
}

// NewSwitch creates an empty switch.
func NewSwitch(name string) *Switch {
	return &Switch{
		name:     name,
		ports:    make(map[int]*netsim.Port),
		portByNm: make(map[string]int),
	}
}

// Name implements netsim.Node.
func (s *Switch) Name() string { return s.name }

// MapPort pre-assigns a port number to a peer name; unmapped peers get
// sequential numbers starting at 1 on first use.
func (s *Switch) MapPort(peer string, port int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.portByNm[peer] = port
	if port >= s.nextPort {
		s.nextPort = port + 1
	}
}

// PortTo implements netsim.PortMapper.
func (s *Switch) PortTo(peer string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.portByNm[peer]; ok {
		return p
	}
	if s.nextPort == 0 {
		s.nextPort = 1
	}
	p := s.nextPort
	s.nextPort++
	s.portByNm[peer] = p
	return p
}

// PortOf reports the switch port a peer is attached to.
func (s *Switch) PortOf(peer string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.portByNm[peer]
	return p, ok
}

// Attach implements netsim.Node.
func (s *Switch) Attach(port int, tx *netsim.Port) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ports[port] = tx
}

// SetController installs the packet-in handler.
func (s *Switch) SetController(h PacketInHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handler = h
}

// AddFlow installs a flow entry and returns it (for stats reads).
func (s *Switch) AddFlow(priority int, match Match, actions ...Action) *FlowEntry {
	return s.addFlow(0, priority, match, actions)
}

// AddFlowWithCookie installs a flow entry tagged with an owner cookie.
func (s *Switch) AddFlowWithCookie(cookie uint64, priority int, match Match, actions ...Action) *FlowEntry {
	return s.addFlow(cookie, priority, match, actions)
}

func (s *Switch) addFlow(cookie uint64, priority int, match Match, actions []Action) *FlowEntry {
	fe := &FlowEntry{Priority: priority, Match: match, Actions: actions, Cookie: cookie}
	fe.lastHit.Store(time.Now().UnixNano())
	s.mu.Lock()
	defer s.mu.Unlock()
	s.table = append(s.table, fe)
	sort.SliceStable(s.table, func(i, j int) bool { return s.table[i].Priority > s.table[j].Priority })
	return fe
}

// SetIdleTimeout arms an entry's idle expiry and returns the entry.
func (fe *FlowEntry) SetIdleTimeout(d time.Duration) *FlowEntry {
	fe.IdleTimeout = d
	return fe
}

// Revoke permanently disables the entry, as if its timeout had fired.
// Safe to call concurrently with lookups; the entry stops matching
// immediately and is reaped on the next table cleanup. The TSA revokes
// a flow's old steering rule when re-steering it (migration, failover),
// since an equal-priority replacement would otherwise lose the
// first-inserted-wins tie.
func (fe *FlowEntry) Revoke() { fe.expired.Store(true) }

// alive reports whether the entry is usable at time now, marking it
// expired when its idle timeout has elapsed.
func (fe *FlowEntry) alive(now int64) bool {
	if fe.expired.Load() {
		return false
	}
	if fe.IdleTimeout <= 0 {
		return true
	}
	if now-fe.lastHit.Load() > int64(fe.IdleTimeout) {
		fe.expired.Store(true)
		return false
	}
	return true
}

// DeleteFlows removes every entry whose cookie matches and reports how
// many were removed.
func (s *Switch) DeleteFlows(cookie uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.table[:0]
	removed := 0
	for _, fe := range s.table {
		if fe.Cookie == cookie {
			removed++
			continue
		}
		kept = append(kept, fe)
	}
	s.table = kept
	return removed
}

// ClearFlows empties the flow table.
func (s *Switch) ClearFlows() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.table = nil
}

// NumFlows reports the table size.
func (s *Switch) NumFlows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.table)
}

// Misses reports table misses (frames punted or dropped).
func (s *Switch) Misses() uint64 { return s.misses.Load() }

// Recv implements netsim.Node: one flow-table lookup and action
// execution per frame.
func (s *Switch) Recv(inPort int, frame []byte) {
	fi := frameInfo{inPort: inPort}
	if len(frame) >= packet.EthernetHeaderLen {
		copy(fi.ethDst[:], frame[0:6])
		fi.ethType = uint16(frame[12])<<8 | uint16(frame[13])
	}
	fi.sumOK = packet.Summarize(frame, &fi.sum) == nil

	now := time.Now().UnixNano()
	s.mu.Lock()
	var hit *FlowEntry
	sawExpired := false
	for _, fe := range s.table {
		if !fe.alive(now) {
			sawExpired = true
			continue
		}
		if fe.Match.matches(&fi) {
			hit = fe
			break
		}
	}
	if sawExpired {
		kept := s.table[:0]
		for _, fe := range s.table {
			if !fe.expired.Load() {
				kept = append(kept, fe)
			}
		}
		s.table = kept
	}
	handler := s.handler
	s.mu.Unlock()

	if hit == nil {
		s.misses.Add(1)
		if handler != nil {
			handler.PacketIn(s, inPort, frame)
		} else {
			s.drops.Add(1)
		}
		return
	}
	hit.packets.Add(1)
	hit.bytes.Add(uint64(len(frame)))
	hit.lastHit.Store(now)
	s.apply(hit.Actions, inPort, frame, handler)
}

func (s *Switch) apply(actions []Action, inPort int, frame []byte, handler PacketInHandler) {
	cur := frame
	for _, a := range actions {
		switch a.Type {
		case ActOutput:
			// Copy: the frame may be output to several ports and
			// receivers own (and may mutate) what they get.
			dup := make([]byte, len(cur))
			copy(dup, cur)
			s.output(a.Port, dup)
		case ActFlood:
			s.mu.Lock()
			outs := make([]int, 0, len(s.ports))
			for p := range s.ports {
				if p != inPort {
					outs = append(outs, p)
				}
			}
			s.mu.Unlock()
			for _, p := range outs {
				dup := make([]byte, len(cur))
				copy(dup, cur)
				s.output(p, dup)
			}
		case ActDrop:
			s.drops.Add(1)
			return
		case ActController:
			if handler != nil {
				handler.PacketIn(s, inPort, cur)
			}
		case ActPushVLAN:
			if out, err := packet.PushVLAN(cur, a.VLAN, 0); err == nil {
				cur = out
			}
		case ActPopVLAN:
			if out, err := packet.PopVLAN(cur); err == nil {
				cur = out
			}
		case ActSetVLAN:
			mut := make([]byte, len(cur))
			copy(mut, cur)
			if packet.SetVLAN(mut, a.VLAN) == nil {
				cur = mut
			}
		case ActSetECN:
			mut := make([]byte, len(cur))
			copy(mut, cur)
			if packet.SetECNMark(mut) == nil {
				cur = mut
			}
		}
	}
}

func (s *Switch) output(port int, frame []byte) {
	s.mu.Lock()
	tx := s.ports[port]
	s.mu.Unlock()
	if tx != nil {
		tx.Send(frame)
	}
}

// DumpFlows renders the flow table for diagnostics.
func (s *Switch) DumpFlows() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	for _, fe := range s.table {
		pk, by := fe.Stats()
		fmt.Fprintf(&b, "prio=%d match=%+v actions=%v packets=%d bytes=%d\n",
			fe.Priority, fe.Match, fe.Actions, pk, by)
	}
	return b.String()
}
