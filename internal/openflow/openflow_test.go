package openflow

import (
	"testing"
	"time"

	"dpiservice/internal/netsim"
	"dpiservice/internal/packet"
)

var (
	srcIP = packet.IP4{10, 0, 0, 1}
	dstIP = packet.IP4{10, 0, 0, 2}
)

func buildFrame(t testing.TB, payload []byte) []byte {
	t.Helper()
	buf := packet.NewSerializeBuffer(64)
	err := packet.SerializeLayers(buf,
		&packet.Ethernet{Src: packet.MAC{2, 0, 0, 0, 0, 1}, Dst: packet.MAC{2, 0, 0, 0, 0, 2}, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{TTL: 64, Protocol: packet.IPProtoTCP, Src: srcIP, Dst: dstIP},
		&packet.TCP{SrcPort: 1111, DstPort: 80},
		packet.Payload(payload),
	)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(buf.Bytes()))
	copy(out, buf.Bytes())
	return out
}

// testFabric wires hosts h1..hN to one switch and returns them.
func testFabric(t *testing.T, nHosts int) (*netsim.Network, *Switch, []*netsim.Host) {
	t.Helper()
	n := netsim.NewNetwork()
	t.Cleanup(n.Stop)
	sw := NewSwitch("s1")
	if err := n.AddNode(sw); err != nil {
		t.Fatal(err)
	}
	hosts := make([]*netsim.Host, nHosts)
	for i := range hosts {
		hosts[i] = netsim.NewHost(hostName(i), packet.MAC{2, 0, 0, 0, 0, byte(i + 1)}, packet.IP4{10, 0, 0, byte(i + 1)})
		if err := n.AddNode(hosts[i]); err != nil {
			t.Fatal(err)
		}
		if err := n.Connect(hosts[i], sw, netsim.LinkOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	return n, sw, hosts
}

func hostName(i int) string { return string(rune('a' + i)) }

func expectFrame(t *testing.T, h *netsim.Host) []byte {
	t.Helper()
	select {
	case f := <-h.Inbox():
		return f
	case <-time.After(time.Second):
		t.Fatalf("host %s: no frame", h.Name())
		return nil
	}
}

func expectNoFrame(t *testing.T, h *netsim.Host) {
	t.Helper()
	select {
	case <-h.Inbox():
		t.Fatalf("host %s: unexpected frame", h.Name())
	case <-time.After(50 * time.Millisecond):
	}
}

func TestOutputByPortMatch(t *testing.T) {
	_, sw, hosts := testFabric(t, 3)
	pa, _ := sw.PortOf("a")
	pb, _ := sw.PortOf("b")
	m := NewMatch()
	m.InPort = pa
	sw.AddFlow(10, m, Output(pb))
	hosts[0].Send(buildFrame(t, []byte("x")))
	expectFrame(t, hosts[1])
	expectNoFrame(t, hosts[2])
}

func TestPriorityOrdering(t *testing.T) {
	_, sw, hosts := testFabric(t, 3)
	pa, _ := sw.PortOf("a")
	pb, _ := sw.PortOf("b")
	pc, _ := sw.PortOf("c")
	low := NewMatch()
	low.InPort = pa
	sw.AddFlow(1, low, Output(pb))
	hi := NewMatch()
	hi.InPort = pa
	hi.IPProto = packet.IPProtoTCP
	sw.AddFlow(100, hi, Output(pc))
	hosts[0].Send(buildFrame(t, []byte("x")))
	expectFrame(t, hosts[2])
	expectNoFrame(t, hosts[1])
}

func TestFiveTupleMatch(t *testing.T) {
	_, sw, hosts := testFabric(t, 3)
	pa, _ := sw.PortOf("a")
	pb, _ := sw.PortOf("b")
	pc, _ := sw.PortOf("c")
	m := NewMatch()
	m.InPort = pa
	src, dst := srcIP, dstIP
	m.SrcIP, m.DstIP = &src, &dst
	m.L4Src, m.L4Dst = 1111, 80
	m.IPProto = packet.IPProtoTCP
	sw.AddFlow(10, m, Output(pc))
	def := NewMatch()
	sw.AddFlow(1, def, Output(pb))

	hosts[0].Send(buildFrame(t, []byte("tuple match")))
	expectFrame(t, hosts[2])

	// A frame with a different source port falls to the default rule.
	other := buildFrame(t, []byte("y"))
	// Rewrite TCP source port (offset: 14 eth + 20 ip).
	other[34], other[35] = 0x11, 0x11 // port 4369
	hosts[0].Send(other)
	expectFrame(t, hosts[1])
}

func TestVLANMatchAndActions(t *testing.T) {
	_, sw, hosts := testFabric(t, 3)
	pa, _ := sw.PortOf("a")
	pb, _ := sw.PortOf("b")
	pc, _ := sw.PortOf("c")

	// Untagged from a: push VLAN 5, send to b.
	mu := NewMatch()
	mu.InPort = pa
	mu.VLANID = NoVLAN
	sw.AddFlow(10, mu, PushVLAN(5), Output(pb))
	// Tagged 5 from b: pop, send to c.
	mt := NewMatch()
	mt.InPort = pb
	mt.VLANID = 5
	sw.AddFlow(10, mt, PopVLAN(), Output(pc))

	orig := buildFrame(t, []byte("vlan trip"))
	hosts[0].Send(append([]byte(nil), orig...))

	tagged := expectFrame(t, hosts[1])
	if id, ok := packet.OuterVLAN(tagged); !ok || id != 5 {
		t.Fatalf("b got tag %d/%v, want 5", id, ok)
	}
	// b bounces it back.
	hosts[1].Send(tagged)
	popped := expectFrame(t, hosts[2])
	if _, ok := packet.OuterVLAN(popped); ok {
		t.Error("tag not popped at c")
	}
	if string(popped) != string(orig) {
		t.Error("frame mutated beyond tag push/pop")
	}
}

func TestSetVLANAction(t *testing.T) {
	_, sw, hosts := testFabric(t, 2)
	pa, _ := sw.PortOf("a")
	pb, _ := sw.PortOf("b")
	m := NewMatch()
	m.InPort = pa
	sw.AddFlow(10, m, PushVLAN(5), SetVLAN(9), Output(pb))
	hosts[0].Send(buildFrame(t, []byte("x")))
	got := expectFrame(t, hosts[1])
	if id, ok := packet.OuterVLAN(got); !ok || id != 9 {
		t.Errorf("tag = %d/%v, want 9", id, ok)
	}
}

func TestSetECNAction(t *testing.T) {
	_, sw, hosts := testFabric(t, 2)
	pa, _ := sw.PortOf("a")
	pb, _ := sw.PortOf("b")
	m := NewMatch()
	m.InPort = pa
	sw.AddFlow(10, m, Action{Type: ActSetECN}, Output(pb))
	hosts[0].Send(buildFrame(t, []byte("x")))
	if !packet.HasECNMark(expectFrame(t, hosts[1])) {
		t.Error("ECN mark not set")
	}
}

func TestFloodAction(t *testing.T) {
	_, sw, hosts := testFabric(t, 4)
	pa, _ := sw.PortOf("a")
	m := NewMatch()
	m.InPort = pa
	sw.AddFlow(10, m, Action{Type: ActFlood})
	hosts[0].Send(buildFrame(t, []byte("flood")))
	for _, h := range hosts[1:] {
		expectFrame(t, h)
	}
	expectNoFrame(t, hosts[0]) // not back out the ingress port
}

func TestDropActionAndStats(t *testing.T) {
	_, sw, hosts := testFabric(t, 2)
	pa, _ := sw.PortOf("a")
	m := NewMatch()
	m.InPort = pa
	fe := sw.AddFlow(10, m, Action{Type: ActDrop})
	frame := buildFrame(t, []byte("dropme"))
	hosts[0].Send(frame)
	expectNoFrame(t, hosts[1])
	// Entry stats must still count the hit.
	deadline := time.Now().Add(time.Second)
	for {
		if p, b := fe.Stats(); p == 1 && b == uint64(len(frame)) {
			break
		}
		if time.Now().After(deadline) {
			p, b := fe.Stats()
			t.Fatalf("stats = %d pkts, %d bytes", p, b)
		}
		time.Sleep(time.Millisecond)
	}
}

type capturingController struct {
	got chan []byte
}

func (c *capturingController) PacketIn(sw *Switch, inPort int, frame []byte) {
	select {
	case c.got <- frame:
	default:
	}
}

func TestTableMissToController(t *testing.T) {
	_, sw, hosts := testFabric(t, 2)
	ctl := &capturingController{got: make(chan []byte, 1)}
	sw.SetController(ctl)
	hosts[0].Send(buildFrame(t, []byte("miss")))
	select {
	case <-ctl.got:
	case <-time.After(time.Second):
		t.Fatal("packet-in not delivered")
	}
	if sw.Misses() != 1 {
		t.Errorf("Misses = %d", sw.Misses())
	}
}

func TestTableMissNoControllerDrops(t *testing.T) {
	_, sw, hosts := testFabric(t, 2)
	hosts[0].Send(buildFrame(t, []byte("miss")))
	expectNoFrame(t, hosts[1])
	if sw.Misses() != 1 {
		t.Errorf("Misses = %d", sw.Misses())
	}
}

func TestEthTypeAndDstMatch(t *testing.T) {
	_, sw, hosts := testFabric(t, 3)
	pa, _ := sw.PortOf("a")
	pb, _ := sw.PortOf("b")
	pc, _ := sw.PortOf("c")
	mac := packet.MAC{2, 0, 0, 0, 0, 2}
	m := NewMatch()
	m.InPort = pa
	m.EthType = packet.EtherTypeIPv4
	m.EthDst = &mac
	sw.AddFlow(10, m, Output(pb))
	wrongMAC := NewMatch()
	wrongMAC.InPort = pa
	sw.AddFlow(1, wrongMAC, Output(pc))

	hosts[0].Send(buildFrame(t, []byte("to b")))
	expectFrame(t, hosts[1])

	f := buildFrame(t, []byte("to other mac"))
	f[5] = 9 // perturb eth dst
	hosts[0].Send(f)
	expectFrame(t, hosts[2])
}

func TestClearAndNumFlows(t *testing.T) {
	_, sw, _ := testFabric(t, 2)
	sw.AddFlow(1, NewMatch(), Output(1))
	sw.AddFlow(2, NewMatch(), Output(1))
	if sw.NumFlows() != 2 {
		t.Errorf("NumFlows = %d", sw.NumFlows())
	}
	if sw.DumpFlows() == "" {
		t.Error("DumpFlows empty")
	}
	sw.ClearFlows()
	if sw.NumFlows() != 0 {
		t.Errorf("NumFlows after clear = %d", sw.NumFlows())
	}
}

func TestIdleTimeoutExpiresEntry(t *testing.T) {
	_, sw, hosts := testFabric(t, 3)
	pa, _ := sw.PortOf("a")
	pb, _ := sw.PortOf("b")
	pc, _ := sw.PortOf("c")
	hi := NewMatch()
	hi.InPort = pa
	sw.AddFlow(10, hi, Output(pb)).SetIdleTimeout(30 * time.Millisecond)
	lo := NewMatch()
	lo.InPort = pa
	sw.AddFlow(1, lo, Output(pc))

	// While fresh, the high-priority rule wins.
	hosts[0].Send(buildFrame(t, []byte("fresh")))
	expectFrame(t, hosts[1])

	// After idling past the timeout, traffic falls to the low rule and
	// the expired entry is garbage collected.
	time.Sleep(60 * time.Millisecond)
	before := sw.NumFlows()
	hosts[0].Send(buildFrame(t, []byte("stale")))
	expectFrame(t, hosts[2])
	expectNoFrame(t, hosts[1])
	deadline := time.Now().Add(time.Second)
	for sw.NumFlows() == before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sw.NumFlows() != before-1 {
		t.Errorf("NumFlows = %d, want %d (expired entry GC'd)", sw.NumFlows(), before-1)
	}
}

func TestIdleTimeoutRefreshedByTraffic(t *testing.T) {
	_, sw, hosts := testFabric(t, 2)
	pa, _ := sw.PortOf("a")
	pb, _ := sw.PortOf("b")
	m := NewMatch()
	m.InPort = pa
	sw.AddFlow(10, m, Output(pb)).SetIdleTimeout(50 * time.Millisecond)
	// Keep the entry warm past several timeout periods.
	for i := 0; i < 6; i++ {
		hosts[0].Send(buildFrame(t, []byte("keepalive")))
		expectFrame(t, hosts[1])
		time.Sleep(25 * time.Millisecond)
	}
	if sw.NumFlows() != 1 {
		t.Errorf("active entry expired despite traffic")
	}
}

func TestDeleteFlowsByCookie(t *testing.T) {
	_, sw, _ := testFabric(t, 2)
	sw.AddFlowWithCookie(7, 1, NewMatch(), Output(1))
	sw.AddFlowWithCookie(7, 2, NewMatch(), Output(1))
	sw.AddFlowWithCookie(9, 3, NewMatch(), Output(1))
	if n := sw.DeleteFlows(7); n != 2 {
		t.Errorf("DeleteFlows(7) = %d", n)
	}
	if sw.NumFlows() != 1 {
		t.Errorf("NumFlows = %d", sw.NumFlows())
	}
	if n := sw.DeleteFlows(7); n != 0 {
		t.Errorf("second delete = %d", n)
	}
}

func TestMapPortExplicit(t *testing.T) {
	sw := NewSwitch("s")
	sw.MapPort("dpi", 42)
	if p := sw.PortTo("dpi"); p != 42 {
		t.Errorf("PortTo = %d", p)
	}
	if p := sw.PortTo("other"); p == 42 || p == 0 {
		t.Errorf("auto port = %d", p)
	}
}
