package mpm

import (
	"math/rand"
	"sort"
	"testing"
)

// matchRec is a normalized match record for comparing engines.
type matchRec struct {
	set uint8
	id  uint16
	end int
}

func collect(dst *[]matchRec, active uint64) EmitFunc {
	return func(refs []PatternRef, end int) {
		for _, r := range refs {
			if active&(1<<uint(r.Set)) != 0 {
				*dst = append(*dst, matchRec{r.Set, r.ID, end})
			}
		}
	}
}

func normalize(ms []matchRec) []matchRec {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].end != ms[j].end {
			return ms[i].end < ms[j].end
		}
		if ms[i].set != ms[j].set {
			return ms[i].set < ms[j].set
		}
		return ms[i].id < ms[j].id
	})
	return ms
}

func equalMatches(a, b []matchRec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func scanAll(a Automaton, data []byte, active uint64) []matchRec {
	var ms []matchRec
	a.Scan(data, a.Start(), active, collect(&ms, active))
	return normalize(ms)
}

func findAll(m BufMatcher, data []byte) []matchRec {
	var ms []matchRec
	m.Find(data, collect(&ms, AllSets))
	return normalize(ms)
}

// paperBuilder returns the two pattern sets of the paper's running
// example (Figures 4 and 7).
func paperBuilder(t testing.TB) *Builder {
	t.Helper()
	b := NewBuilder()
	if err := b.AddSet(0, []string{"E", "BE", "BD", "BCD", "BCAA", "CDBCAB"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSet(1, []string{"EDAE", "BE", "CDBA", "CBD"}); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPaperExampleCombinedDFA(t *testing.T) {
	a, err := paperBuilder(t).BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 7 shows the merged DFA. Unique accepting labels:
	// E, BE, BD, BCD, BCAA, CDBCAB, EDAE, CDBA, CBD plus states that
	// inherit accepting suffixes: CDBCAB's prefix path has no extra
	// accepts beyond those; but BCD ends with the label BCD whose
	// suffix CD is not a pattern. The distinct accepting states are the
	// 9 distinct pattern ends plus any interior state whose label ends
	// with a pattern: "CDB" has suffix... no pattern; "BC" none; "EDA"
	// none; "CDBC" none; "CDBCA" none; "CB" none. "CBD" ends with BD
	// (set 0) — same state accepts both CBD and BD. And "BCD" also
	// ends with... "CD"? not a pattern; "D"? no. So f = 9.
	if got := a.NumAccepting(); got != 9 {
		t.Errorf("NumAccepting = %d, want 9", got)
	}

	// Scanning "CBD" must report CBD (set 1, id 3) and the suffix BD
	// (set 0, id 2) at the same position — the suffix-inheritance rule.
	got := scanAll(a, []byte("CBD"), AllSets)
	want := []matchRec{{0, 2, 3}, {1, 3, 3}}
	if !equalMatches(got, want) {
		t.Errorf("scan(CBD) = %v, want %v", got, want)
	}

	// "BE" is registered by both middleboxes; both pairs must be
	// reported (shared internal ID, Section 4.1).
	got = scanAll(a, []byte("XBEX"), AllSets)
	want = []matchRec{{0, 0, 3}, {0, 1, 3}, {1, 1, 3}}
	// Note: "BE" ends with "E" which is also set 0's pattern 0.
	if !equalMatches(got, want) {
		t.Errorf("scan(XBEX) = %v, want %v", got, want)
	}

	// Figure 7's long pattern with interleaved matches.
	got = scanAll(a, []byte("CDBCAB"), AllSets)
	want = []matchRec{{0, 5, 6}}
	if !equalMatches(got, want) {
		t.Errorf("scan(CDBCAB) = %v, want %v", got, want)
	}
}

func TestPaperExampleBitmapFiltering(t *testing.T) {
	a, err := paperBuilder(t).BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	// With only set 1 active, set-0-only patterns must not be emitted
	// even though they are present in the automaton.
	var ms []matchRec
	a.Scan([]byte("BCD E CDBA"), a.Start(), SetBit(1), func(refs []PatternRef, end int) {
		for _, r := range refs {
			ms = append(ms, matchRec{r.Set, r.ID, end})
		}
	})
	// BCD and E belong only to set 0; the accepting states reached for
	// them have no set-1 bit, so emit must not fire there at all.
	// CDBA (set 1 id 2) ends at position 10.
	for _, m := range ms {
		if m.set == 0 && m.end != 10 {
			// set-0 refs may only surface at states shared with set 1
			// (the CDBA state is set-1 only, BD/BE shared states not
			// reached here).
			t.Errorf("set-0-only match leaked through bitmap filter: %v", m)
		}
	}
	found := false
	for _, m := range ms {
		if m == (matchRec{1, 2, 10}) {
			found = true
		}
	}
	if !found {
		t.Errorf("CDBA not reported with set-1 mask: %v", ms)
	}
}

func TestAcceptingStatesAreDense(t *testing.T) {
	b := paperBuilder(t)
	a, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	// Every emit during any scan must present a state whose match refs
	// are non-empty, and the match table must be exactly f entries.
	if len(a.match) != a.NumAccepting() {
		t.Errorf("match table has %d entries, f = %d", len(a.match), a.NumAccepting())
	}
	for s := 0; s < a.NumAccepting(); s++ {
		if len(a.MatchRefs(State(s))) == 0 {
			t.Errorf("accepting state %d has empty match entry", s)
		}
	}
	if a.MatchRefs(State(a.NumAccepting())) != nil {
		t.Error("non-accepting state returned match refs")
	}
}

func TestSuffixInheritance(t *testing.T) {
	b := NewBuilder()
	if err := b.Add(0, 0, "DEF"); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(1, 0, "ABCDEF"); err != nil {
		t.Fatal(err)
	}
	for name, build := range map[string]func() (Automaton, error){
		"full":    func() (Automaton, error) { return b.BuildFull() },
		"compact": func() (Automaton, error) { return b.BuildCompact() },
	} {
		a, err := build()
		if err != nil {
			t.Fatal(err)
		}
		got := scanAll(a, []byte("ABCDEF"), AllSets)
		want := []matchRec{{0, 0, 6}, {1, 0, 6}}
		if !equalMatches(got, want) {
			t.Errorf("%s: scan(ABCDEF) = %v, want %v", name, got, want)
		}
	}
}

func TestOverlappingMatches(t *testing.T) {
	b := NewBuilder()
	if err := b.AddSet(0, []string{"aa"}); err != nil {
		t.Fatal(err)
	}
	a, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(a, []byte("aaaa"), AllSets)
	want := []matchRec{{0, 0, 2}, {0, 0, 3}, {0, 0, 4}}
	if !equalMatches(got, want) {
		t.Errorf("scan(aaaa) = %v, want %v", got, want)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if err := b.Add(0, 0, ""); err != ErrEmptyPattern {
		t.Errorf("empty pattern: err = %v", err)
	}
	if err := b.Add(MaxSets, 0, "x"); err != ErrTooManySets {
		t.Errorf("set out of range: err = %v", err)
	}
	if err := b.Add(0, MaxPatternsPerSet, "x"); err != ErrTooManyPats {
		t.Errorf("id out of range: err = %v", err)
	}
	if _, err := NewBuilder().BuildFull(); err != ErrNoPatterns {
		t.Errorf("no patterns full: err = %v", err)
	}
	if _, err := NewBuilder().BuildCompact(); err != ErrNoPatterns {
		t.Errorf("no patterns compact: err = %v", err)
	}
	if _, err := NewBuilder().BuildWuManber(); err != ErrNoPatterns {
		t.Errorf("no patterns wm: err = %v", err)
	}
	wb := NewBuilder()
	if err := wb.Add(0, 0, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := wb.BuildWuManber(); err == nil {
		t.Error("wu-manber accepted sub-block pattern")
	}
}

func TestStreamingEqualsWholeBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	pats := randomPatterns(rng, 40, 2, 8, 3)
	if err := b.AddSet(0, pats); err != nil {
		t.Fatal(err)
	}
	for name, a := range buildBoth(t, b) {
		text := randomText(rng, 4096, 3)
		whole := scanAll(a, text, AllSets)

		// Fragment the text at random boundaries and scan statefully;
		// positions must be rebased by the fragment offset.
		var frag []matchRec
		state := a.Start()
		off := 0
		for off < len(text) {
			n := 1 + rng.Intn(97)
			if off+n > len(text) {
				n = len(text) - off
			}
			base := off
			state = a.Scan(text[off:off+n], state, AllSets, func(refs []PatternRef, end int) {
				for _, r := range refs {
					frag = append(frag, matchRec{r.Set, r.ID, base + end})
				}
			})
			off += n
		}
		if !equalMatches(whole, normalize(frag)) {
			t.Errorf("%s: fragmented scan differs from whole-buffer scan", name)
		}
	}
}

func buildBoth(t testing.TB, b *Builder) map[string]Automaton {
	t.Helper()
	full, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	compact, err := b.BuildCompact()
	if err != nil {
		t.Fatal(err)
	}
	bitmap, err := b.BuildBitmap()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Automaton{"full": full, "compact": compact, "bitmap": bitmap}
}

// randomPatterns generates n patterns of length [minLen,maxLen] over an
// alphabet of `alpha` letters starting at 'a'. Small alphabets force
// heavy overlap and shared prefixes.
func randomPatterns(rng *rand.Rand, n, minLen, maxLen, alpha int) []string {
	pats := make([]string, n)
	for i := range pats {
		l := minLen + rng.Intn(maxLen-minLen+1)
		buf := make([]byte, l)
		for j := range buf {
			buf[j] = byte('a' + rng.Intn(alpha))
		}
		pats[i] = string(buf)
	}
	return pats
}

func randomText(rng *rand.Rand, n, alpha int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte('a' + rng.Intn(alpha))
	}
	return buf
}

func TestEnginesAgreeWithNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder()
		nSets := 1 + rng.Intn(3)
		for s := 0; s < nSets; s++ {
			if err := b.AddSet(s, randomPatterns(rng, 1+rng.Intn(20), 2, 6, 3)); err != nil {
				t.Fatal(err)
			}
		}
		naive, err := b.BuildNaive()
		if err != nil {
			t.Fatal(err)
		}
		wm, err := b.BuildWuManber()
		if err != nil {
			t.Fatal(err)
		}
		text := randomText(rng, 512, 3)
		want := findAll(naive, text)
		if got := findAll(wm, text); !equalMatches(got, want) {
			t.Fatalf("trial %d: wu-manber disagrees with naive\n got %v\nwant %v", trial, got, want)
		}
		for name, a := range buildBoth(t, b) {
			if got := scanAll(a, text, AllSets); !equalMatches(got, want) {
				t.Fatalf("trial %d: %s disagrees with naive\n got %v\nwant %v", trial, name, got, want)
			}
		}
	}
}

// TestMergedEqualsSeparate is the paper's central correctness claim
// (Section 5.1): one automaton over the union of all sets, filtered by
// the per-set bitmap, produces exactly what per-set automata produce.
func TestMergedEqualsSeparate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		nSets := 2 + rng.Intn(3)
		sets := make([][]string, nSets)
		merged := NewBuilder()
		for s := range sets {
			sets[s] = randomPatterns(rng, 1+rng.Intn(15), 2, 7, 3)
			if err := merged.AddSet(s, sets[s]); err != nil {
				t.Fatal(err)
			}
		}
		mergedA, err := merged.BuildFull()
		if err != nil {
			t.Fatal(err)
		}
		text := randomText(rng, 1024, 3)
		for s := range sets {
			solo := NewBuilder()
			// Register under the same set index so records compare
			// directly.
			if err := solo.AddSet(s, sets[s]); err != nil {
				t.Fatal(err)
			}
			soloA, err := solo.BuildFull()
			if err != nil {
				t.Fatal(err)
			}
			want := scanAll(soloA, text, AllSets)
			got := scanAll(mergedA, text, SetBit(s))
			if !equalMatches(got, want) {
				t.Fatalf("trial %d set %d: merged+bitmap differs from solo\n got %v\nwant %v",
					trial, s, got, want)
			}
		}
	}
}

func TestDuplicatePatternSharedState(t *testing.T) {
	b := NewBuilder()
	if err := b.Add(0, 5, "attack"); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(1, 9, "attack"); err != nil {
		t.Fatal(err)
	}
	a, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAccepting() != 1 {
		t.Errorf("NumAccepting = %d, want 1 (shared state)", a.NumAccepting())
	}
	got := scanAll(a, []byte("an attack!"), AllSets)
	want := []matchRec{{0, 5, 9}, {1, 9, 9}}
	if !equalMatches(got, want) {
		t.Errorf("scan = %v, want %v", got, want)
	}
}

func TestCompactMemorySmallerThanFull(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBuilder()
	if err := b.AddSet(0, randomPatterns(rng, 500, 8, 24, 26)); err != nil {
		t.Fatal(err)
	}
	full, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	compact, err := b.BuildCompact()
	if err != nil {
		t.Fatal(err)
	}
	if full.NumStates() != compact.NumStates() {
		t.Errorf("state counts differ: full %d, compact %d", full.NumStates(), compact.NumStates())
	}
	if compact.MemoryBytes()*4 > full.MemoryBytes() {
		t.Errorf("compact (%d B) not substantially smaller than full (%d B)",
			compact.MemoryBytes(), full.MemoryBytes())
	}
}

func TestMergedSmallerThanSum(t *testing.T) {
	// Table 2's space observation: the combined automaton is smaller
	// than the sum of the separate ones when sets share structure.
	rng := rand.New(rand.NewSource(6))
	// Force shared prefixes: both sets draw from the same prefix pool.
	prefixes := randomPatterns(rng, 50, 6, 6, 4)
	mkSet := func() []string {
		out := make([]string, 300)
		for i := range out {
			out[i] = prefixes[rng.Intn(len(prefixes))] + string(randomText(rng, 6, 4))
		}
		return out
	}
	s1, s2 := mkSet(), mkSet()
	b1, b2, bc := NewBuilder(), NewBuilder(), NewBuilder()
	if err := b1.AddSet(0, s1); err != nil {
		t.Fatal(err)
	}
	if err := b2.AddSet(0, s2); err != nil {
		t.Fatal(err)
	}
	if err := bc.AddSet(0, s1); err != nil {
		t.Fatal(err)
	}
	if err := bc.AddSet(1, s2); err != nil {
		t.Fatal(err)
	}
	a1, err := b1.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := b2.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	ac, err := bc.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	if ac.MemoryBytes() >= a1.MemoryBytes()+a2.MemoryBytes() {
		t.Errorf("combined %d B not smaller than %d + %d B",
			ac.MemoryBytes(), a1.MemoryBytes(), a2.MemoryBytes())
	}
}

func TestWuManberWindowEdgeCases(t *testing.T) {
	b := NewBuilder()
	if err := b.AddSet(0, []string{"ab", "abcdef"}); err != nil {
		t.Fatal(err)
	}
	wm, err := b.BuildWuManber()
	if err != nil {
		t.Fatal(err)
	}
	// Text shorter than minLen: no matches, no panic.
	var ms []matchRec
	wm.Find([]byte("a"), collect(&ms, AllSets))
	if len(ms) != 0 {
		t.Errorf("matches on short text: %v", ms)
	}
	// Long pattern must still be found despite minLen=2 window.
	got := findAll(wm, []byte("xxabcdefxx"))
	want := []matchRec{{0, 0, 4}, {0, 1, 8}}
	if !equalMatches(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	// Match at the very end of the buffer.
	got = findAll(wm, []byte("zzzab"))
	want = []matchRec{{0, 0, 5}}
	if !equalMatches(got, want) {
		t.Errorf("end match: got %v, want %v", got, want)
	}
}

func TestScanPositionSemantics(t *testing.T) {
	b := NewBuilder()
	if err := b.Add(0, 0, "needle"); err != nil {
		t.Fatal(err)
	}
	a, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	text := []byte("haystack needle haystack")
	got := scanAll(a, text, AllSets)
	if len(got) != 1 {
		t.Fatalf("matches = %v", got)
	}
	// end is 1-based count of consumed bytes; the pattern occupies
	// [end-len, end).
	start := got[0].end - len("needle")
	if string(text[start:got[0].end]) != "needle" {
		t.Errorf("position semantics wrong: end=%d", got[0].end)
	}
}
