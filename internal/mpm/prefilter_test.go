package mpm

import (
	"math/rand"
	"strings"
	"testing"

	"dpiservice/internal/patterns"
)

// streamScan records the raw emit stream (order-preserving, unfiltered)
// and the final state — the strictest equivalence observation.
func streamScan(a Automaton, data []byte, state State, active uint64) ([]matchRec, State) {
	var ms []matchRec
	end := a.Scan(data, state, active, collect(&ms, AllSets))
	return ms, end
}

func buildPrefilterPair(t testing.TB, sets ...[]string) (*ACFull, *PrefilteredAC) {
	t.Helper()
	b := NewBuilder()
	for i, set := range sets {
		if err := b.AddSet(i, set); err != nil {
			t.Fatal(err)
		}
	}
	plain, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	pf, err := b.BuildPrefiltered()
	if err != nil {
		t.Fatal(err)
	}
	return plain, pf
}

// injectInto plants patterns at random positions of the text.
func injectInto(rng *rand.Rand, text []byte, pats []string, count int) {
	for i := 0; i < count; i++ {
		p := pats[rng.Intn(len(pats))]
		if len(p) >= len(text) {
			continue
		}
		copy(text[rng.Intn(len(text)-len(p)):], p)
	}
}

func TestPrefilteredEquivalenceSnortlike(t *testing.T) {
	set := patterns.SnortLike(300, 1).Strings()
	plain, pf := buildPrefilterPair(t, set)
	if pf.Fallback() {
		t.Fatal("snortlike set should not compile to fallback")
	}
	if pf.Stride() != 4 {
		t.Fatalf("stride = %d, want 4 (minLen >= 7)", pf.Stride())
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(4000)
		text := randomText(rng, n, 80)
		injectInto(rng, text, set, rng.Intn(6))
		wantMs, wantSt := streamScan(plain, text, plain.Start(), AllSets)
		gotMs, gotSt := streamScan(pf, text, pf.Start(), AllSets)
		if !equalMatches(wantMs, gotMs) {
			t.Fatalf("trial %d (n=%d): prefiltered stream diverges: got %d matches, want %d",
				trial, n, len(gotMs), len(wantMs))
		}
		if gotSt != wantSt {
			t.Fatalf("trial %d: final state %d, want %d", trial, gotSt, wantSt)
		}
	}
}

func TestPrefilteredEquivalenceStreaming(t *testing.T) {
	set := patterns.SnortLike(200, 3).Strings()
	plain, pf := buildPrefilterPair(t, set)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		text := randomText(rng, 2000+rng.Intn(3000), 70)
		injectInto(rng, text, set, 4)
		// Fragment the stream at random cut points, including cuts in
		// the middle of planted patterns, and carry state across.
		var cuts []int
		for pos := 0; pos < len(text); {
			adv := 1 + rng.Intn(900)
			pos += adv
			if pos > len(text) {
				pos = len(text)
			}
			cuts = append(cuts, pos)
		}
		var wantMs, gotMs []matchRec
		wantSt, gotSt := plain.Start(), pf.Start()
		prev := 0
		var st PrefilterStats
		for _, cut := range cuts {
			frag := text[prev:cut]
			wantSt = plain.Scan(frag, wantSt, AllSets, collect(&wantMs, AllSets))
			gotSt = pf.ScanStats(frag, gotSt, AllSets, collect(&gotMs, AllSets), &st)
			if gotSt != wantSt {
				t.Fatalf("trial %d: state diverged after fragment ending at %d", trial, cut)
			}
			prev = cut
		}
		if !equalMatches(wantMs, gotMs) {
			t.Fatalf("trial %d: streaming match stream diverges (%d vs %d)", trial, len(gotMs), len(wantMs))
		}
	}
}

func TestPrefilteredEquivalenceClamavlike(t *testing.T) {
	set := patterns.ClamAVLike(250, 5).Strings()
	plain, pf := buildPrefilterPair(t, set)
	if pf.Fallback() {
		t.Fatal("clamavlike(250) should not fall back")
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		text := make([]byte, 500+rng.Intn(2000))
		rng.Read(text)
		injectInto(rng, text, set, rng.Intn(5))
		wantMs, wantSt := streamScan(plain, text, plain.Start(), AllSets)
		gotMs, gotSt := streamScan(pf, text, pf.Start(), AllSets)
		if !equalMatches(wantMs, gotMs) || gotSt != wantSt {
			t.Fatalf("trial %d: binary-set equivalence broken", trial)
		}
	}
}

func TestPrefilteredStride2(t *testing.T) {
	// Patterns of length 5..6 select the stride-2 probe loop.
	set := []string{"ABCDE", "qwert", "zxcvb", "hello!", "workd5", "\x01\x02\x03\x04\x05"}
	plain, pf := buildPrefilterPair(t, set)
	if pf.Fallback() || pf.Stride() != 2 {
		t.Fatalf("stride = %d fallback = %v, want stride 2", pf.Stride(), pf.Fallback())
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		text := randomText(rng, 30+rng.Intn(1500), 60)
		injectInto(rng, text, set, rng.Intn(4))
		wantMs, wantSt := streamScan(plain, text, plain.Start(), AllSets)
		gotMs, gotSt := streamScan(pf, text, pf.Start(), AllSets)
		if !equalMatches(wantMs, gotMs) || gotSt != wantSt {
			t.Fatalf("trial %d: stride-2 equivalence broken", trial)
		}
	}
}

func TestPrefilteredShortPatternFallback(t *testing.T) {
	// The paper's example sets contain single-byte patterns — no usable
	// fast window exists, so compilation must fall back to plain AC
	// while remaining exactly correct.
	b := paperBuilder(t)
	pf, err := b.BuildPrefiltered()
	if err != nil {
		t.Fatal(err)
	}
	if !pf.Fallback() {
		t.Fatal("single-byte patterns must compile to fallback mode")
	}
	plain, err := paperBuilder(t).BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("XEDAECDBCABBE")
	wantMs, wantSt := streamScan(plain, data, plain.Start(), AllSets)
	var st PrefilterStats
	var gotMs []matchRec
	gotSt := pf.ScanStats(data, pf.Start(), AllSets, collect(&gotMs, AllSets), &st)
	if !equalMatches(wantMs, gotMs) || gotSt != wantSt {
		t.Fatal("fallback scan diverges from plain AC")
	}
	if st.PlainScans != 1 {
		t.Fatalf("PlainScans = %d, want 1", st.PlainScans)
	}
}

func TestPrefilteredSaturationFallback(t *testing.T) {
	// A huge random binary set flags more buckets than the saturation
	// bound; the compiler must notice and fall back.
	set := patterns.ClamAVLike(8000, 9).Strings()
	b := NewBuilder()
	if err := b.AddSet(0, set); err != nil {
		t.Fatal(err)
	}
	pf, err := b.BuildPrefiltered()
	if err != nil {
		t.Fatal(err)
	}
	if !pf.Fallback() {
		t.Fatalf("8000 random patterns flag ~%d buckets; expected saturation fallback", 8000*4)
	}
	if pf.Stride() != 0 || pf.GramCount() == 0 {
		t.Fatalf("fallback metadata inconsistent: stride %d grams %d", pf.Stride(), pf.GramCount())
	}
}

func TestPrefilteredAdversarialBailout(t *testing.T) {
	set := patterns.SnortLike(150, 21).Strings()
	plain, pf := buildPrefilterPair(t, set)
	rng := rand.New(rand.NewSource(23))
	// All-match payload: back-to-back patterns. The hit budget must
	// trip, the scan must be rescanned plain, and the result must stay
	// identical.
	var sb strings.Builder
	for sb.Len() < 3000 {
		sb.WriteString(set[rng.Intn(len(set))])
	}
	data := []byte(sb.String())
	var st PrefilterStats
	var gotMs []matchRec
	gotSt := pf.ScanStats(data, pf.Start(), AllSets, collect(&gotMs, AllSets), &st)
	wantMs, wantSt := streamScan(plain, data, plain.Start(), AllSets)
	if !equalMatches(wantMs, gotMs) || gotSt != wantSt {
		t.Fatal("bailout scan diverges from plain AC")
	}
	if st.Bailouts != 1 {
		t.Fatalf("Bailouts = %d, want 1 on an all-match payload", st.Bailouts)
	}
}

func TestPrefilteredStatsLowMatch(t *testing.T) {
	set := patterns.SnortLike(300, 1).Strings()
	_, pf := buildPrefilterPair(t, set)
	rng := rand.New(rand.NewSource(29))
	text := randomText(rng, 64<<10, 90)
	var st PrefilterStats
	pf.ScanStats(text, pf.Start(), AllSets, func(refs []PatternRef, end int) {}, &st)
	if st.Probes == 0 {
		t.Fatal("no probes recorded")
	}
	if st.Bailouts != 0 || st.PlainScans != 0 {
		t.Fatalf("low-match text should not bail (bail=%d plain=%d)", st.Bailouts, st.PlainScans)
	}
	// The point of the filter: on innocent traffic the exact automaton
	// touches a small fraction of the payload.
	if frac := float64(st.ConfirmedBytes) / float64(len(text)); frac > 0.5 {
		t.Fatalf("confirm fraction %.2f, want < 0.5 on random text", frac)
	}
}

func TestPrefilteredFind(t *testing.T) {
	set := patterns.SnortLike(100, 31).Strings()
	plain, pf := buildPrefilterPair(t, set)
	rng := rand.New(rand.NewSource(37))
	text := randomText(rng, 5000, 80)
	injectInto(rng, text, set, 8)
	var got []matchRec
	pf.Find(text, collect(&got, AllSets))
	want, _ := streamScan(plain, text, plain.Start(), AllSets)
	if !equalMatches(want, got) {
		t.Fatal("Find diverges from a whole-buffer scan")
	}
}

func TestPrefilteredMultiSetMasking(t *testing.T) {
	setA := patterns.SnortLike(120, 41).Strings()
	setB := patterns.SnortLike(120, 43).Strings()
	plain, pf := buildPrefilterPair(t, setA, setB)
	rng := rand.New(rand.NewSource(47))
	for _, active := range []uint64{SetBit(0), SetBit(1), SetBit(0) | SetBit(1)} {
		text := randomText(rng, 3000, 80)
		injectInto(rng, text, setA, 3)
		injectInto(rng, text, setB, 3)
		wantMs, wantSt := streamScan(plain, text, plain.Start(), active)
		gotMs, gotSt := streamScan(pf, text, pf.Start(), active)
		if !equalMatches(wantMs, gotMs) || gotSt != wantSt {
			t.Fatalf("active=%#x: masked equivalence broken", active)
		}
	}
}

// TestPrefilterGoldenCompile pins the compiler's fast-window selection
// and table contents for a fixed set, so an unintended change to the
// byte-score model, hashing or window selection is visible in review as
// a golden-value diff.
func TestPrefilterGoldenCompile(t *testing.T) {
	b := NewBuilder()
	fixed := []string{
		"GET /admin/config",
		"User-Agent: evilbot",
		"\x90\x90\x90\x90shellcode",
		"SELECT * FROM users",
		"document.cookie",
	}
	if err := b.AddSet(0, fixed); err != nil {
		t.Fatal(err)
	}
	pf, err := b.BuildPrefiltered()
	if err != nil {
		t.Fatal(err)
	}
	if pf.Fallback() || pf.Stride() != 4 {
		t.Fatalf("fixed set: stride %d fallback %v, want stride 4", pf.Stride(), pf.Fallback())
	}
	wantOffs := []int{0, 0, 0, 1, 2}
	gotOffs := pf.WindowOffsets()
	if len(gotOffs) != len(wantOffs) {
		t.Fatalf("window offsets: got %v, want %v", gotOffs, wantOffs)
	}
	for i := range wantOffs {
		if gotOffs[i] != wantOffs[i] {
			t.Fatalf("window offsets: got %v, want %v", gotOffs, wantOffs)
		}
	}
	const wantGrams = 20
	if pf.GramCount() != wantGrams {
		t.Fatalf("gram count: got %d, want %d", pf.GramCount(), wantGrams)
	}
	const wantDigest = uint64(0xce7bc351db99acf4)
	if d := pf.TableDigest(); d != wantDigest {
		t.Fatalf("table digest: got %#x, want %#x", d, wantDigest)
	}
}
