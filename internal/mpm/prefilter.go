package mpm

import (
	"encoding/binary"
	"sync"
)

// This file implements the two-stage scan path: a q-gram prefilter that
// walks the payload 8 bytes per step on uint64 words and emits candidate
// windows, and a confirm stage that runs the exact AC automaton only
// over those windows. The construction follows the fast-pattern-matcher
// idea of production engines (Snort's fast_pattern, Hyperscan's literal
// prefilter): the overwhelming majority of innocent payload positions
// are dismissed with one hash probe into a 16 KiB bitset that lives in
// L1, and the big DFA — whose rows miss cache — is touched only near
// candidate positions. The result is bit-for-bit equivalent to a full
// scan (see the invariants on ScanStats) and degrades gracefully: sets
// the filter cannot serve (very short patterns, or so many grams the
// bitset saturates) fall back to the plain automaton at compile time,
// and adversarial match-dense payloads fall back per scan via a running
// hit budget that trips within the first few hundred bytes, bounding
// the worst-case overhead to a short aborted probe prefix.

const (
	// pfGram is the q-gram width: probes hash 4 payload bytes at a
	// time, loaded as one uint32.
	pfGram = 4
	// pfHashBits sizes the bitset: 2^17 bits = 16 KiB, small enough to
	// stay resident in L1/L2 next to the scan loop.
	pfHashBits   = 17
	pfHashMul    = 2654435761 // Knuth's multiplicative hash constant
	pfTableWords = 1 << pfHashBits / 64
	pfBuckets    = 1 << pfHashBits
	// pfMaxFlagged is the compile-time saturation bound: when more than
	// 1/8 of the buckets are flagged, random payload bytes hit so often
	// that confirm regions cover most of the buffer and the filter only
	// adds overhead — fall back to the plain automaton instead.
	pfMaxFlagged = pfBuckets / 8
	// pfMinSlack is the shortest buffer worth prefiltering beyond the
	// forced tail region; anything at or below maxLen+pfMinSlack scans
	// plain.
	pfMinSlack = 16
	// pfBailSlack is the flat allowance added to the running hit
	// budget. It absorbs the hit cluster a packet's protocol-header
	// region produces (HTTP-ish text shares grams with IDS patterns)
	// so a dense start followed by a clean body does not bail; on
	// uniformly dense adversarial payloads the budget still trips
	// within the first ~quarter of the buffer.
	pfBailSlack = 8
)

// pfByteScore is the rarity model used for fast-window selection: an
// estimated relative frequency of each byte in scanned traffic (higher =
// more common). Windows minimizing the summed score of their bytes
// produce the fewest false prefilter hits. The model is baked in —
// ASCII-protocol traffic is letter/space-heavy with moderate digits and
// URL punctuation, while control and high-half bytes are rare — so
// compilation stays deterministic and needs no traffic sample.
var pfByteScore = buildByteScore()

func buildByteScore() [256]uint8 {
	var s [256]uint8
	for i := 0x80; i < 0x100; i++ {
		s[i] = 30 // binary high half
	}
	for i := 0; i < 0x20; i++ {
		s[i] = 20 // control bytes
	}
	s['\r'], s['\n'] = 160, 160 // header line endings
	s['\t'] = 120
	for i := 0x20; i < 0x80; i++ {
		s[i] = 100 // printable default (rare punctuation)
	}
	for c := 'a'; c <= 'z'; c++ {
		s[c] = 230
	}
	for c := 'A'; c <= 'Z'; c++ {
		s[c] = 120
	}
	for c := '0'; c <= '9'; c++ {
		s[c] = 150
	}
	s[' '] = 255
	for _, c := range "/.:;,=-_\"'<>" {
		s[c] = 200 // markup and URL punctuation
	}
	return s
}

// PrefilterStats accumulates one or more scans' prefilter behavior.
// ScanStats adds into the caller's struct, so a caller can aggregate
// across a whole measurement or flush per packet.
type PrefilterStats struct {
	// Probes is the number of gram probes issued by the filter loop.
	Probes uint64
	// Hits is how many probes found a flagged bucket.
	Hits uint64
	// ConfirmedBytes is how many payload bytes the exact automaton
	// re-scanned (candidate regions plus the forced head/tail regions).
	ConfirmedBytes uint64
	// Bailouts counts scans that exceeded the hit budget and were
	// rescanned plain (the adversarial escape hatch).
	Bailouts uint64
	// PlainScans counts scans routed to the plain automaton without
	// probing at all (compile-time fallback or short buffers).
	PlainScans uint64
}

// pfRegion is one candidate byte range [start, end) of the buffer.
type pfRegion struct {
	start, end int
}

// pfScratch is the pooled per-scan state: the candidate region list and
// the rebasing emit closure that translates region-relative match
// positions back to buffer coordinates.
type pfScratch struct {
	regions []pfRegion
	user    EmitFunc
	base    int
	emitFn  EmitFunc // pre-bound ps.rebase, allocated once
}

func newPfScratch() *pfScratch {
	ps := &pfScratch{regions: make([]pfRegion, 0, 64)}
	ps.emitFn = ps.rebase
	return ps
}

// rebase forwards a confirm-stage match to the user's emit with the
// region's base offset added, so reported positions are identical to a
// full scan's. Annotated directly because it reaches the automaton only
// as a func value, which the static call graph cannot follow.
//
//dpi:hotpath
func (ps *pfScratch) rebase(refs []PatternRef, end int) {
	ps.user(refs, ps.base+end)
}

// add appends the candidate region [start, end), merging it with any
// overlapping or touching predecessors. Probe positions grow
// monotonically but per-bucket extents differ, so a later region can
// reach further back than an earlier one ends — the pop loop restores
// the invariant that the list is sorted and pairwise disjoint.
//
//dpi:hotpath
func (ps *pfScratch) add(start, end int) {
	if start < 0 {
		start = 0
	}
	for n := len(ps.regions); n > 0; n = len(ps.regions) {
		last := ps.regions[n-1]
		if start > last.end {
			break
		}
		if last.start < start {
			start = last.start
		}
		if last.end > end {
			end = last.end
		}
		ps.regions = ps.regions[:n-1]
	}
	ps.regions = append(ps.regions, pfRegion{start, end})
}

// PrefilteredAC is the two-stage matcher: a gram-hash bitset prefilter
// in front of the exact full-table automaton. It implements Automaton
// (streaming, state carried across buffers) and BufMatcher, and its
// match stream — refs, positions, order, and returned state — is
// identical to scanning the underlying ACFull directly.
type PrefilteredAC struct {
	ac *ACFull

	// table is the flagged-gram bitset: bit h set means some pattern's
	// fast window contains a gram hashing to h.
	table []uint64
	// back[h] is the maximum gram offset within its pattern over all
	// grams flagged into bucket h: how far before a probe hit an
	// occurrence can start. fwd[h] is the maximum remaining pattern
	// length (len - offset): how far past the probe it can end.
	back, fwd []uint16

	// stride is the probe step (4 when minLen >= 7, 2 when >= 5);
	// every pattern flags stride consecutive grams of its fast window
	// so any probe phase intersects the window.
	stride   int
	minLen   int
	maxLen   int
	fallback bool
	grams    int // distinct flagged buckets
	// bailDiv sets the running hit budget pos/bailDiv+pfBailSlack:
	// when the hits seen so far exceed the budget at the current scan
	// position, the payload is declared match-dense and rescanned
	// plain. Keying the budget to the position (not the buffer length)
	// trips the bailout within the first few hundred bytes of a dense
	// payload, so the wasted probe work stays flat per buffer.
	bailDiv int
	// windowOffs records each pattern's chosen fast-window offset in
	// Add order — compiler introspection for the golden tests; not
	// serialized.
	windowOffs []int

	pool sync.Pool // of *pfScratch
}

// BuildPrefiltered constructs the two-stage matcher over the builder's
// patterns. When the set has no usable fast windows (any pattern
// shorter than 5 bytes) or flags so many grams the filter would pass
// nearly everything, the matcher is built in fallback mode and scans
// route straight to the plain automaton.
func (b *Builder) BuildPrefiltered() (*PrefilteredAC, error) {
	ac, err := b.BuildFull()
	if err != nil {
		return nil, err
	}
	p := &PrefilteredAC{ac: ac}
	p.pool.New = func() any { return newPfScratch() }
	minL, maxL := len(b.patterns[0].pat), 0
	for _, bp := range b.patterns {
		if len(bp.pat) < minL {
			minL = len(bp.pat)
		}
		if len(bp.pat) > maxL {
			maxL = len(bp.pat)
		}
	}
	p.minLen, p.maxLen = minL, maxL
	switch {
	case maxL >= 1<<15:
		// Extents no longer fit uint16 comfortably; such sets are
		// pathological anyway.
	case minL >= pfGram+3:
		p.stride = 4
	case minL >= pfGram+1:
		p.stride = 2
	}
	if p.stride == 0 {
		p.fallback = true
		return p, nil
	}
	p.table = make([]uint64, pfTableWords)
	p.back = make([]uint16, pfBuckets)
	p.fwd = make([]uint16, pfBuckets)
	p.windowOffs = make([]int, len(b.patterns))
	w := pfGram + p.stride - 1
	for pi, bp := range b.patterns {
		off := selectWindow(bp.pat, w)
		p.windowOffs[pi] = off
		// Flag stride consecutive grams starting at the window: an
		// occurrence at any alignment then places at least one flagged
		// gram on a probe position (a multiple of stride).
		for j := off; j < off+p.stride; j++ {
			h := pfHash(gramAt(bp.pat, j))
			word, bit := h>>6, uint64(1)<<(h&63)
			if p.table[word]&bit == 0 {
				p.table[word] |= bit
				p.grams++
			}
			if uint16(j) > p.back[h] {
				p.back[h] = uint16(j)
			}
			if rest := uint16(len(bp.pat) - j); rest > p.fwd[h] {
				p.fwd[h] = rest
			}
		}
	}
	if p.grams > pfMaxFlagged {
		p.fallback = true
		p.stride = 0
		p.table, p.back, p.fwd = nil, nil, nil
		return p, nil
	}
	p.bailDiv = 2 * maxL
	return p, nil
}

// selectWindow picks the w-byte window of pat with the lowest summed
// byte score — the rarest stretch, minimizing false prefilter hits.
// Ties break to the leftmost window, keeping selection deterministic.
func selectWindow(pat string, w int) int {
	sum := 0
	for i := 0; i < w; i++ {
		sum += int(pfByteScore[pat[i]])
	}
	best, bestSum := 0, sum
	for i := w; i < len(pat); i++ {
		sum += int(pfByteScore[pat[i]]) - int(pfByteScore[pat[i-w]])
		if sum < bestSum {
			bestSum, best = sum, i-w+1
		}
	}
	return best
}

func gramAt(pat string, j int) uint32 {
	return uint32(pat[j]) | uint32(pat[j+1])<<8 | uint32(pat[j+2])<<16 | uint32(pat[j+3])<<24
}

func pfHash(g uint32) uint32 {
	return g * pfHashMul >> (32 - pfHashBits)
}

// Start implements Automaton.
func (p *PrefilteredAC) Start() State { return p.ac.Start() }

// NumStates implements Automaton.
func (p *PrefilteredAC) NumStates() int { return p.ac.NumStates() }

// NumPatterns implements Automaton and BufMatcher.
func (p *PrefilteredAC) NumPatterns() int { return p.ac.NumPatterns() }

// MemoryBytes implements Automaton and BufMatcher.
func (p *PrefilteredAC) MemoryBytes() int64 {
	return p.ac.MemoryBytes() + int64(len(p.table))*8 +
		int64(len(p.back))*2 + int64(len(p.fwd))*2
}

// Fallback reports whether the matcher compiled in fallback mode (every
// scan routes to the plain automaton).
func (p *PrefilteredAC) Fallback() bool { return p.fallback }

// Stride reports the probe step (0 in fallback mode).
func (p *PrefilteredAC) Stride() int { return p.stride }

// GramCount reports how many distinct bitset buckets the pattern set
// flagged.
func (p *PrefilteredAC) GramCount() int { return p.grams }

// WindowOffsets returns each pattern's chosen fast-window offset in Add
// order (nil in fallback mode or after deserialization).
func (p *PrefilteredAC) WindowOffsets() []int {
	return append([]int(nil), p.windowOffs...)
}

// TableDigest returns an FNV-1a digest of the prefilter bitset — a
// compact fingerprint for golden-compile tests.
func (p *PrefilteredAC) TableDigest() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	d := uint64(offset)
	for _, w := range p.table {
		d ^= w
		d *= prime
	}
	return d
}

// Underlying returns the exact automaton the confirm stage runs.
func (p *PrefilteredAC) Underlying() *ACFull { return p.ac }

// Find implements BufMatcher: a whole-buffer scan from the start state
// with every set active.
func (p *PrefilteredAC) Find(data []byte, emit EmitFunc) {
	p.Scan(data, p.ac.Start(), AllSets, emit)
}

// Scan implements Automaton. See ScanStats for the contract.
//
//dpi:hotpath
func (p *PrefilteredAC) Scan(data []byte, state State, active uint64, emit EmitFunc) State {
	var stats PrefilterStats
	return p.ScanStats(data, state, active, emit, &stats)
}

// ScanStats is Scan with prefilter telemetry accumulated into stats.
// The emitted match stream — refs slices, 1-based end positions, order —
// and the returned state are identical to p.Underlying().Scan on the
// same inputs. The equivalence rests on three invariants:
//
//   - Every occurrence of every pattern lying fully inside data places a
//     flagged gram on a probe position (the pattern flags stride
//     consecutive grams of its window, so some multiple of stride falls
//     on one of them), and that probe's region [pos-back, pos+fwd)
//     contains the whole occurrence by the definition of the extents.
//   - Occurrences continuing from a previous buffer end within the
//     first maxLen-1 bytes, which are covered by a forced head region
//     scanned from the carried state.
//   - The returned state is the DFA state after the final maxLen bytes,
//     which a forced tail region reproduces from the start state (the
//     state's label is a pattern prefix, hence at most maxLen long).
//
// Regions are disjoint after merging, each is confirmed left to right by
// the exact automaton, and a state's output list depends only on the
// pattern suffixes present at the position — so per-position emissions
// match the full scan exactly.
//
//dpi:hotpath
func (p *PrefilteredAC) ScanStats(data []byte, state State, active uint64, emit EmitFunc, stats *PrefilterStats) State {
	n := len(data)
	if p.fallback || n <= p.maxLen+pfMinSlack {
		stats.PlainScans++
		return p.ac.Scan(data, state, active, emit)
	}
	ps := p.pool.Get().(*pfScratch)
	ps.regions = ps.regions[:0]
	tbl := (*[pfTableWords]uint64)(p.table)
	back := (*[pfBuckets]uint16)(p.back)
	fwd := (*[pfBuckets]uint16)(p.fwd)
	hits := 0
	i := 0
	bailed := false
	if p.stride == 4 {
		// Main loop: one 8-byte load yields two probe grams. The
		// no-hit case — the overwhelming majority — is two multiplies,
		// two L1 loads and one branch per 8 payload bytes. The budget
		// check (a division) runs only on the hit path.
		for ; i+8 <= n; i += 8 {
			w := binary.LittleEndian.Uint64(data[i:])
			h0 := pfHash(uint32(w))
			h1 := pfHash(uint32(w >> 32))
			hit0 := tbl[h0>>6&(pfTableWords-1)] >> (h0 & 63) & 1
			hit1 := tbl[h1>>6&(pfTableWords-1)] >> (h1 & 63) & 1
			if hit0|hit1 == 0 {
				continue
			}
			if hit0 != 0 {
				hits++
				b := h0 & (pfBuckets - 1)
				ps.add(i-int(back[b]), i+int(fwd[b]))
			}
			if hit1 != 0 {
				hits++
				b := h1 & (pfBuckets - 1)
				ps.add(i+4-int(back[b]), i+4+int(fwd[b]))
			}
			if hits > i/p.bailDiv+pfBailSlack {
				bailed = true
				break
			}
		}
		if !bailed {
			// Tail probes: single-gram steps over the last sub-word.
			for ; i+pfGram <= n; i += 4 {
				h := pfHash(binary.LittleEndian.Uint32(data[i:]))
				if tbl[h>>6&(pfTableWords-1)]>>(h&63)&1 != 0 {
					hits++
					b := h & (pfBuckets - 1)
					ps.add(i-int(back[b]), i+int(fwd[b]))
				}
			}
		}
	} else {
		for ; i+pfGram <= n; i += p.stride {
			h := pfHash(binary.LittleEndian.Uint32(data[i:]))
			if tbl[h>>6&(pfTableWords-1)]>>(h&63)&1 != 0 {
				hits++
				b := h & (pfBuckets - 1)
				ps.add(i-int(back[b]), i+int(fwd[b]))
				if hits > i/p.bailDiv+pfBailSlack {
					bailed = true
					break
				}
			}
		}
	}
	stats.Probes += uint64(i / p.stride)
	stats.Hits += uint64(hits)
	if bailed {
		// Match-dense payload: nothing has been emitted yet, so one
		// plain scan reproduces the full result. The cost cap is the
		// aborted probe loop, a few percent of a full scan.
		p.pool.Put(ps)
		stats.Bailouts++
		return p.ac.Scan(data, state, active, emit)
	}
	for j := range ps.regions {
		if ps.regions[j].end > n {
			ps.regions[j].end = n
		}
	}
	// Forced tail region: rescanning the final maxLen bytes from the
	// start state yields exactly the full scan's end-of-buffer state.
	ps.add(n-p.maxLen, n)

	startSt := p.ac.Start()
	final := state
	ps.user = emit
	j := 0
	if state != startSt {
		// Carried state: occurrences straddling the buffer boundary end
		// within the first maxLen-1 bytes. Scan a head region from the
		// carried state, absorbing any candidate regions it overlaps.
		he := p.maxLen - 1
		for j < len(ps.regions) && ps.regions[j].start <= he {
			if ps.regions[j].end > he {
				he = ps.regions[j].end
			}
			j++
		}
		if he > n {
			he = n
		}
		ps.base = 0
		stats.ConfirmedBytes += uint64(he)
		final = p.ac.Scan(data[:he], state, active, ps.emitFn)
	}
	for ; j < len(ps.regions); j++ {
		rs, re := ps.regions[j].start, ps.regions[j].end
		ps.base = rs
		stats.ConfirmedBytes += uint64(re - rs)
		final = p.ac.Scan(data[rs:re], startSt, active, ps.emitFn)
	}
	ps.user = nil
	p.pool.Put(ps)
	return final
}
