package mpm

import (
	"math/rand"
	"testing"

	"dpiservice/internal/patterns"
)

func TestScanLanesMatchesScan(t *testing.T) {
	set := patterns.SnortLike(200, 51).Strings()
	b := NewBuilder()
	if err := b.AddSet(0, set); err != nil {
		t.Fatal(err)
	}
	a, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	// Sweep lane counts across the lockstep width (4): remainder lanes,
	// exact groups, and multiple groups.
	for _, nLanes := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
		for trial := 0; trial < 10; trial++ {
			lanes := make([]Lane, nLanes)
			wantStates := make([]State, nLanes)
			wantMs := make([][]matchRec, nLanes)
			gotMs := make([][]matchRec, nLanes)
			for i := range lanes {
				// Mixed lengths (including empty) exercise the common-
				// prefix lockstep plus per-lane tails.
				n := rng.Intn(1200)
				if trial == 0 && i == 0 {
					n = 0
				}
				text := randomText(rng, n, 70)
				injectInto(rng, text, set, rng.Intn(3))
				st := a.Start()
				if rng.Intn(2) == 0 && n > 4 {
					// Carried state from a previous fragment.
					st = a.Scan(text[:rng.Intn(4)], st, AllSets, func(refs []PatternRef, end int) {})
					text = text[rng.Intn(4):]
				}
				lanes[i] = Lane{Data: text, State: st, Active: AllSets, Emit: collect(&gotMs[i], AllSets)}
				wantStates[i] = a.Scan(text, st, AllSets, collect(&wantMs[i], AllSets))
			}
			a.ScanLanes(lanes)
			for i := range lanes {
				if lanes[i].State != wantStates[i] {
					t.Fatalf("lanes=%d trial=%d lane=%d: state %d, want %d",
						nLanes, trial, i, lanes[i].State, wantStates[i])
				}
				if !equalMatches(wantMs[i], gotMs[i]) {
					t.Fatalf("lanes=%d trial=%d lane=%d: match stream diverges (%d vs %d)",
						nLanes, trial, i, len(gotMs[i]), len(wantMs[i]))
				}
			}
		}
	}
}

func TestScanLanesDistinctMasks(t *testing.T) {
	setA := patterns.SnortLike(80, 61).Strings()
	setB := patterns.SnortLike(80, 63).Strings()
	b := NewBuilder()
	if err := b.AddSet(0, setA); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSet(1, setB); err != nil {
		t.Fatal(err)
	}
	a, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(67))
	masks := []uint64{SetBit(0), SetBit(1), SetBit(0) | SetBit(1), SetBit(0)}
	lanes := make([]Lane, 4)
	wantStates := make([]State, 4)
	wantMs := make([][]matchRec, 4)
	gotMs := make([][]matchRec, 4)
	for i := range lanes {
		text := randomText(rng, 800, 70)
		injectInto(rng, text, setA, 2)
		injectInto(rng, text, setB, 2)
		lanes[i] = Lane{Data: text, State: a.Start(), Active: masks[i], Emit: collect(&gotMs[i], masks[i])}
		wantStates[i] = a.Scan(text, a.Start(), masks[i], collect(&wantMs[i], masks[i]))
	}
	a.ScanLanes(lanes)
	for i := range lanes {
		if lanes[i].State != wantStates[i] || !equalMatches(wantMs[i], gotMs[i]) {
			t.Fatalf("lane %d (mask %#x): interleaved scan diverges", i, masks[i])
		}
	}
}
