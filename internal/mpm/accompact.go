package mpm

// ACCompact is the failure-link Aho-Corasick automaton: each state keeps
// only its real goto edges (sorted for binary search) plus an explicit
// failure pointer. Memory is proportional to the number of edges rather
// than states×256, at the cost of failure-chain chasing on misses.
//
// The paper's MCA² integration (Section 4.3.1) runs this representation
// on dedicated instances handling suspected complexity-attack traffic,
// because the full-table automaton's size makes it cache-hostile exactly
// when an adversary forces deep, scattered traversals.
type ACCompact struct {
	// Edge arrays, concatenated; state s owns
	// edgeLabels[edgeStart[s]:edgeStart[s+1]] (sorted) with parallel
	// targets.
	edgeStart   []int32
	edgeLabels  []byte
	edgeTargets []int32
	fail        []int32

	match        [][]PatternRef
	bitmaps      []uint64
	numAccepting int32
	numPatterns  int
	startState   State
}

// BuildCompact constructs the failure-link automaton from the builder's
// patterns.
func (b *Builder) BuildCompact() (*ACCompact, error) {
	t, err := b.buildTrie()
	if err != nil {
		return nil, err
	}
	oldToNew, newToOld, numAccepting := t.renumber()
	match, bitmaps := t.matchTable(newToOld, numAccepting)

	n := len(t.children)
	a := &ACCompact{
		edgeStart:    make([]int32, n+1),
		fail:         make([]int32, n),
		match:        match,
		bitmaps:      bitmaps,
		numAccepting: numAccepting,
		numPatterns:  len(b.patterns),
		startState:   oldToNew[0],
	}
	totalEdges := 0
	for _, ch := range t.children {
		totalEdges += len(ch)
	}
	a.edgeLabels = make([]byte, 0, totalEdges)
	a.edgeTargets = make([]int32, 0, totalEdges)

	// Lay out edges grouped by new state ID, labels sorted within each
	// state.
	for newID := int32(0); newID < int32(n); newID++ {
		a.edgeStart[newID] = int32(len(a.edgeLabels))
		old := newToOld[newID]
		a.fail[newID] = oldToNew[t.fail[old]]
		ch := t.children[old]
		if len(ch) == 0 {
			continue
		}
		var labels [256]bool
		for c := range ch {
			labels[c] = true
		}
		for c := 0; c < 256; c++ {
			if labels[c] {
				a.edgeLabels = append(a.edgeLabels, byte(c))
				a.edgeTargets = append(a.edgeTargets, oldToNew[ch[byte(c)]])
			}
		}
	}
	a.edgeStart[n] = int32(len(a.edgeLabels))
	return a, nil
}

// Start implements Automaton.
func (a *ACCompact) Start() State { return a.startState }

// step follows one input byte from state, chasing failure links on
// misses.
func (a *ACCompact) step(state State, c byte) State {
	for {
		lo, hi := a.edgeStart[state], a.edgeStart[state+1]
		// Binary search within the state's sorted labels.
		for lo < hi {
			mid := (lo + hi) / 2
			if l := a.edgeLabels[mid]; l == c {
				return a.edgeTargets[mid]
			} else if l < c {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if state == a.startState {
			return state
		}
		state = a.fail[state]
	}
}

// Scan implements Automaton.
//
//dpi:hotpath
func (a *ACCompact) Scan(data []byte, state State, active uint64, emit EmitFunc) State {
	acc := a.numAccepting
	for i := 0; i < len(data); i++ {
		state = a.step(state, data[i])
		if state < acc && a.bitmaps[state]&active != 0 {
			emit(a.match[state], i+1)
		}
	}
	return state
}

// NumStates implements Automaton.
func (a *ACCompact) NumStates() int { return len(a.fail) }

// NumPatterns implements Automaton.
func (a *ACCompact) NumPatterns() int { return a.numPatterns }

// NumAccepting reports f, the number of accepting states.
func (a *ACCompact) NumAccepting() int { return int(a.numAccepting) }

// MemoryBytes implements Automaton.
func (a *ACCompact) MemoryBytes() int64 {
	bytes := int64(len(a.edgeStart))*4 + int64(len(a.edgeLabels)) + int64(len(a.edgeTargets))*4 + int64(len(a.fail))*4
	bytes += int64(len(a.bitmaps)) * 8
	for _, refs := range a.match {
		bytes += 24 + int64(len(refs))*8
	}
	return bytes
}
