package mpm

import "sort"

// Builder accumulates the pattern sets of registered middleboxes and
// constructs merged automata over their union, as the DPI controller does
// when initializing a service instance (Section 5.1).
type Builder struct {
	numSets  int
	patterns []builderPattern
}

type builderPattern struct {
	ref PatternRef
	pat string
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Add registers pattern id of set with the given bytes. Duplicate strings
// — whether within a set or across sets — are legal and are all reported
// on a match, mirroring the controller's internal-ID sharing (Section 4.1).
func (b *Builder) Add(set, id int, pattern string) error {
	if len(pattern) == 0 {
		return ErrEmptyPattern
	}
	if set < 0 || set >= MaxSets {
		return ErrTooManySets
	}
	if id < 0 || id >= MaxPatternsPerSet {
		return ErrTooManyPats
	}
	if set >= b.numSets {
		b.numSets = set + 1
	}
	l := len(pattern)
	if l > 0xffff {
		l = 0xffff
	}
	b.patterns = append(b.patterns, builderPattern{
		ref: PatternRef{Set: uint8(set), ID: uint16(id), Len: uint16(l)},
		pat: pattern,
	})
	return nil
}

// AddSet registers all patterns of one set with sequential IDs.
func (b *Builder) AddSet(set int, patterns []string) error {
	for i, p := range patterns {
		if err := b.Add(set, i, p); err != nil {
			return err
		}
	}
	return nil
}

// NumPatterns reports how many patterns have been added.
func (b *Builder) NumPatterns() int { return len(b.patterns) }

// trie is the phase-one Aho-Corasick goto tree plus the phase-two failure
// function, with outputs already merged down failure chains (so a state
// whose label has an accepted suffix carries that suffix's refs too —
// the suffix-inheritance rule of Section 5.1).
type trie struct {
	children []map[byte]int32
	fail     []int32
	out      [][]PatternRef
	depth    []int32
	bfs      []int32 // states in breadth-first order (root first)
}

// buildTrie constructs the goto tree and failure function.
func (b *Builder) buildTrie() (*trie, error) {
	if len(b.patterns) == 0 {
		return nil, ErrNoPatterns
	}
	t := &trie{
		children: []map[byte]int32{nil},
		fail:     []int32{0},
		out:      [][]PatternRef{nil},
		depth:    []int32{0},
	}
	newNode := func(depth int32) int32 {
		t.children = append(t.children, nil)
		t.fail = append(t.fail, 0)
		t.out = append(t.out, nil)
		t.depth = append(t.depth, depth)
		return int32(len(t.children) - 1)
	}
	// Phase one: insert patterns as chains from the root, sharing
	// common prefixes.
	for _, bp := range b.patterns {
		s := int32(0)
		for i := 0; i < len(bp.pat); i++ {
			c := bp.pat[i]
			next, ok := t.children[s][c]
			if !ok {
				next = newNode(t.depth[s] + 1)
				if t.children[s] == nil {
					t.children[s] = make(map[byte]int32)
				}
				t.children[s][c] = next
			}
			s = next
		}
		t.out[s] = append(t.out[s], bp.ref)
	}
	// Phase two: BFS to compute failure links; merge the failure
	// target's outputs into each state so suffix patterns are reported.
	t.bfs = make([]int32, 0, len(t.children))
	t.bfs = append(t.bfs, 0)
	for head := 0; head < len(t.bfs); head++ {
		s := t.bfs[head]
		// Iterate edges in byte order, not map order, so the BFS order —
		// and therefore state numbering — is identical across builds.
		// Deterministic numbering lets snapshots and golden tests compare
		// automata built independently from the same pattern list.
		for c := 0; c < 256; c++ {
			child, ok := t.children[s][byte(c)]
			if !ok {
				continue
			}
			t.bfs = append(t.bfs, child)
			if s == 0 {
				t.fail[child] = 0
				continue
			}
			f := t.fail[s]
			for {
				if next, ok := t.children[f][byte(c)]; ok && next != child {
					t.fail[child] = next
					break
				}
				if f == 0 {
					t.fail[child] = 0
					break
				}
				f = t.fail[f]
			}
		}
	}
	// Merge outputs in BFS order (parents before children) and sort
	// each state's refs for deterministic reporting.
	for _, s := range t.bfs[1:] {
		if fo := t.out[t.fail[s]]; len(fo) > 0 {
			t.out[s] = append(t.out[s], fo...)
		}
		sortRefs(t.out[s])
	}
	return t, nil
}

func sortRefs(refs []PatternRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Set != refs[j].Set {
			return refs[i].Set < refs[j].Set
		}
		return refs[i].ID < refs[j].ID
	})
}

// renumber assigns dense new state IDs with all accepting states first,
// implementing the paper's trick of making acceptance a single
// "state < f" comparison and the match table a direct-access array
// (Section 5.1). It returns old→new and new→old mappings and f, the
// number of accepting states.
func (t *trie) renumber() (oldToNew, newToOld []int32, numAccepting int32) {
	n := int32(len(t.children))
	oldToNew = make([]int32, n)
	newToOld = make([]int32, n)
	next := int32(0)
	for _, s := range t.bfs {
		if len(t.out[s]) > 0 {
			oldToNew[s] = next
			newToOld[next] = s
			next++
		}
	}
	numAccepting = next
	for _, s := range t.bfs {
		if len(t.out[s]) == 0 {
			oldToNew[s] = next
			newToOld[next] = s
			next++
		}
	}
	return oldToNew, newToOld, numAccepting
}

// matchTable builds the direct-access match table and per-state
// middlebox bitmaps for the accepting states, indexed by new state ID.
func (t *trie) matchTable(newToOld []int32, numAccepting int32) (match [][]PatternRef, bitmaps []uint64) {
	match = make([][]PatternRef, numAccepting)
	bitmaps = make([]uint64, numAccepting)
	for newID := int32(0); newID < numAccepting; newID++ {
		refs := t.out[newToOld[newID]]
		match[newID] = refs
		var bm uint64
		for _, r := range refs {
			bm |= 1 << uint(r.Set)
		}
		bitmaps[newID] = bm
	}
	return match, bitmaps
}
