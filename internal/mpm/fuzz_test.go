package mpm

import (
	"sync"
	"testing"

	"dpiservice/internal/patterns"
)

// The fuzz target asserts the tentpole invariant of the two-stage scan
// path: over arbitrary payloads and arbitrary stream fragmentation, the
// prefiltered matcher emits exactly the match stream of the plain
// automaton and lands in the same state.

var (
	pfFuzzOnce  sync.Once
	pfFuzzPlain *ACFull
	pfFuzzPref  *PrefilteredAC
	pfFuzzPats  []string
)

func pfFuzzSetup(t interface{ Fatal(args ...any) }) {
	pfFuzzOnce.Do(func() {
		// A snortlike set (the bench workload) plus short and binary
		// patterns to stress window selection at the length boundary.
		set := patterns.SnortLike(150, 97).Strings()
		set = append(set, "passwd7", "\x00\x01\x02\x03\x04\x05\x06\x07", "AAAAAAAA")
		b := NewBuilder()
		if err := b.AddSet(0, set); err != nil {
			return
		}
		plain, err := b.BuildFull()
		if err != nil {
			return
		}
		pf, err := b.BuildPrefiltered()
		if err != nil {
			return
		}
		pfFuzzPlain, pfFuzzPref, pfFuzzPats = plain, pf, set
	})
	if pfFuzzPlain == nil {
		t.Fatal("fuzz automaton setup failed")
	}
}

func FuzzPrefilterEquivalence(f *testing.F) {
	pfFuzzSetup(f)
	f.Add([]byte("GET /admin/../../etc/passwd HTTP/1.1\r\nHost: x\r\n\r\n"), uint16(10))
	f.Add([]byte(pfFuzzPats[0]+pfFuzzPats[1]+pfFuzzPats[2]), uint16(3))
	f.Add(make([]byte, 4096), uint16(100))
	long := make([]byte, 0, 2048)
	for len(long) < 2048 {
		long = append(long, pfFuzzPats[len(long)%len(pfFuzzPats)]...)
	}
	f.Add(long, uint16(512))
	f.Fuzz(func(t *testing.T, data []byte, split uint16) {
		pfFuzzSetup(t)
		plain, pf := pfFuzzPlain, pfFuzzPref

		// Whole-buffer equivalence.
		var wantMs, gotMs []matchRec
		wantSt := plain.Scan(data, plain.Start(), AllSets, collect(&wantMs, AllSets))
		var stats PrefilterStats
		gotSt := pf.ScanStats(data, pf.Start(), AllSets, collect(&gotMs, AllSets), &stats)
		if gotSt != wantSt {
			t.Fatalf("whole buffer: state %d, want %d", gotSt, wantSt)
		}
		if !equalMatches(wantMs, gotMs) {
			t.Fatalf("whole buffer: %d matches, want %d", len(gotMs), len(wantMs))
		}

		// Streaming equivalence: cut at the fuzzer-chosen point and
		// carry state across, so the carried-state head-region path is
		// driven with adversarial boundaries.
		if len(data) > 0 {
			cut := int(split) % len(data)
			wantMs, gotMs = wantMs[:0], gotMs[:0]
			ws := plain.Scan(data[:cut], plain.Start(), AllSets, collect(&wantMs, AllSets))
			ws = plain.Scan(data[cut:], ws, AllSets, collect(&wantMs, AllSets))
			gs := pf.ScanStats(data[:cut], pf.Start(), AllSets, collect(&gotMs, AllSets), &stats)
			gs = pf.ScanStats(data[cut:], gs, AllSets, collect(&gotMs, AllSets), &stats)
			if gs != ws {
				t.Fatalf("split %d: state %d, want %d", cut, gs, ws)
			}
			if !equalMatches(wantMs, gotMs) {
				t.Fatalf("split %d: %d matches, want %d", cut, len(gotMs), len(wantMs))
			}
		}
	})
}
