package mpm

// WuManber is the classical block-based multi-pattern matcher (Wu &
// Manber 1994), cited by the paper alongside Aho-Corasick as one of the
// two standard exact-matching algorithms for DPI (Section 2.2). It is a
// whole-buffer matcher: the shift heuristic skips over regions that
// cannot end a match, so there is no per-byte state to carry across
// packets. It serves as an ablation baseline against the AC engines.
type WuManber struct {
	shift    []uint8          // indexed by 2-byte block value
	hash     map[uint16][]int // block at pattern end -> candidate patterns
	prefix   []uint16         // first 2 bytes of each pattern
	patterns []string
	refs     []PatternRef
	minLen   int
}

const wmBlock = 2

// BuildWuManber constructs the matcher from the builder's patterns.
// Patterns shorter than the block size (2 bytes) are rejected.
func (b *Builder) BuildWuManber() (*WuManber, error) {
	if len(b.patterns) == 0 {
		return nil, ErrNoPatterns
	}
	w := &WuManber{
		hash:   make(map[uint16][]int),
		minLen: 1 << 30,
	}
	for _, bp := range b.patterns {
		if len(bp.pat) < wmBlock {
			return nil, ErrEmptyPattern
		}
		if len(bp.pat) < w.minLen {
			w.minLen = len(bp.pat)
		}
		w.patterns = append(w.patterns, bp.pat)
		w.refs = append(w.refs, bp.ref)
	}
	// Default shift: we may safely skip minLen-block+1 positions when a
	// block never appears inside any pattern's first minLen bytes.
	maxShift := w.minLen - wmBlock + 1
	w.shift = make([]uint8, 1<<16)
	capped := maxShift
	if capped > 255 {
		capped = 255
	}
	for i := range w.shift {
		w.shift[i] = uint8(capped)
	}
	for pi, p := range w.patterns {
		// Only the first minLen bytes participate in the shift table,
		// as in the original algorithm.
		for j := 0; j+wmBlock <= w.minLen; j++ {
			blk := blockAt(p, j)
			sh := w.minLen - wmBlock - j
			if int(w.shift[blk]) > sh {
				w.shift[blk] = uint8(sh)
			}
		}
		endBlk := blockAt(p, w.minLen-wmBlock)
		w.hash[endBlk] = append(w.hash[endBlk], pi)
		w.prefix = append(w.prefix, blockAt(p, 0))
	}
	return w, nil
}

func blockAt(s string, i int) uint16 { return uint16(s[i])<<8 | uint16(s[i+1]) }

// Find implements BufMatcher, emitting each occurrence with its end
// position. Occurrences are emitted in order of the scan window; ties at
// one position follow pattern registration order.
func (w *WuManber) Find(data []byte, emit EmitFunc) {
	m := w.minLen
	if len(data) < m {
		return
	}
	// pos is the index of the window's last block.
	for pos := m - wmBlock; pos+wmBlock <= len(data); {
		blk := uint16(data[pos])<<8 | uint16(data[pos+1])
		if sh := w.shift[blk]; sh > 0 {
			pos += int(sh)
			continue
		}
		// A pattern may end at pos+wmBlock's window; verify candidates.
		winStart := pos - (m - wmBlock)
		for _, pi := range w.hash[blk] {
			p := w.patterns[pi]
			if w.prefix[pi] != uint16(data[winStart])<<8|uint16(data[winStart+1]) {
				continue
			}
			if winStart+len(p) <= len(data) && string(data[winStart:winStart+len(p)]) == p {
				emit(w.refs[pi:pi+1], winStart+len(p))
			}
		}
		pos++
	}
}

// NumPatterns implements BufMatcher.
func (w *WuManber) NumPatterns() int { return len(w.patterns) }

// MemoryBytes implements BufMatcher.
func (w *WuManber) MemoryBytes() int64 {
	bytes := int64(len(w.shift)) + int64(len(w.prefix))*2 + int64(len(w.refs))*8
	for blk, c := range w.hash {
		_ = blk
		bytes += 16 + int64(len(c))*8
	}
	for _, p := range w.patterns {
		bytes += 16 + int64(len(p))
	}
	return bytes
}
