// Package mpm implements the multi-pattern matching engines at the core
// of the DPI service (Sections 3 and 5.1 of the paper):
//
//   - ACFull: the full-table Aho-Corasick DFA — the de-facto standard for
//     NIDS string matching — extended with the paper's "virtual DPI"
//     merging: patterns from many middlebox sets are combined into one
//     automaton, accepting states are renumbered to the dense range
//     {0..f-1} so acceptance is a single compare, each accepting state
//     carries a per-middlebox bitmap for one-instruction relevance
//     filtering, and a direct-access match table maps accepting states to
//     their (set, pattern) pairs, including pairs inherited from patterns
//     that are suffixes of others.
//
//   - ACCompact: the same automaton with sorted-edge nodes and explicit
//     failure links instead of 256-entry rows. It trades roughly an order
//     of magnitude of memory for extra work per byte and is the
//     representation MCA² dedicated instances use for heavy traffic
//     (Section 4.3.1, following the space-time tradeoff of the authors'
//     earlier work).
//
//   - WuManber: the classical block-shift baseline, for whole-buffer
//     matching comparisons.
//
//   - Naive: an obviously-correct reference matcher used by the property
//     tests to validate all of the above.
//
// All engines report a match as a (set, pattern-ID, end-position) triple,
// where sets correspond to registered middlebox types.
package mpm

import (
	"errors"
	"fmt"
)

// MaxSets is the maximum number of pattern sets (middlebox types) a
// single merged automaton can serve. The per-state relevance filter is a
// single 64-bit bitmap, exactly as the paper suggests for small n
// (Section 5.1); an operator needing more types deploys additional
// grouped instances (Section 4.3).
const MaxSets = 64

// MaxPatternsPerSet bounds pattern IDs so they fit the 15-bit wire
// encoding of match reports.
const MaxPatternsPerSet = 1 << 15

// State is a DFA state handle. The start state of every engine is
// returned by Start; states are only meaningful to the engine that
// produced them.
type State = int32

// PatternRef locates one pattern of one set, with enough information
// (the pattern length) for the scanner's cross-packet filtering.
type PatternRef struct {
	Set uint8  // pattern-set (middlebox type) index
	ID  uint16 // pattern ID within the set
	Len uint16 // pattern length in bytes
}

// EmitFunc receives the refs of an accepting state and the 1-based scan
// position (number of bytes consumed) at which the state was reached: a
// pattern of length L matched the bytes [end-L, end).
type EmitFunc func(refs []PatternRef, end int)

// Automaton is a streaming multi-pattern matcher whose scan state can be
// carried across buffers — the property stateful DPI relies on
// (Section 5.2).
type Automaton interface {
	// Start returns the initial state.
	Start() State
	// Scan consumes data from state, invoking emit for every position
	// where at least one pattern of a set in the active bitmap ends,
	// and returns the resulting state. Bit i of active enables set i;
	// use AllSets to match everything.
	Scan(data []byte, state State, active uint64, emit EmitFunc) State
	// NumStates reports the automaton's state count.
	NumStates() int
	// NumPatterns reports the total number of registered patterns
	// across all sets (counting duplicates once per registration).
	NumPatterns() int
	// MemoryBytes estimates the resident size of the automaton's data
	// structures.
	MemoryBytes() int64
}

// AllSets is the active-bitmap value enabling every set.
const AllSets uint64 = ^uint64(0)

// BufMatcher is a whole-buffer matcher; engines that cannot carry state
// across buffers (Wu-Manber) implement only this.
type BufMatcher interface {
	// Find reports every occurrence of every pattern in data.
	Find(data []byte, emit EmitFunc)
	NumPatterns() int
	MemoryBytes() int64
}

// Errors returned by builders.
var (
	ErrEmptyPattern = errors.New("mpm: empty pattern")
	ErrTooManySets  = fmt.Errorf("mpm: more than %d pattern sets", MaxSets)
	ErrTooManyPats  = fmt.Errorf("mpm: more than %d patterns in one set", MaxPatternsPerSet)
	ErrNoPatterns   = errors.New("mpm: no patterns")
)

// SetBit returns the active-bitmap bit for set i.
func SetBit(i int) uint64 {
	if i < 0 || i >= MaxSets {
		panic(fmt.Sprintf("mpm: set index %d out of range", i))
	}
	return 1 << uint(i)
}
