package mpm

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder()
	if err := b.AddSet(0, randomPatterns(rng, 200, 4, 12, 8)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSet(1, randomPatterns(rng, 150, 4, 12, 8)); err != nil {
		t.Fatal(err)
	}
	orig, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadACFull(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumStates() != orig.NumStates() ||
		loaded.NumAccepting() != orig.NumAccepting() ||
		loaded.NumPatterns() != orig.NumPatterns() ||
		loaded.Start() != orig.Start() {
		t.Fatalf("metadata mismatch: %d/%d/%d/%d vs %d/%d/%d/%d",
			loaded.NumStates(), loaded.NumAccepting(), loaded.NumPatterns(), loaded.Start(),
			orig.NumStates(), orig.NumAccepting(), orig.NumPatterns(), orig.Start())
	}
	// Behavioural equivalence on random text.
	for trial := 0; trial < 20; trial++ {
		text := randomText(rng, 2048, 8)
		want := scanAll(orig, text, AllSets)
		got := scanAll(loaded, text, AllSets)
		if !equalMatches(got, want) {
			t.Fatalf("trial %d: loaded automaton disagrees with original", trial)
		}
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	b := NewBuilder()
	if err := b.AddSet(0, []string{"alpha", "beta", "gamma"}); err != nil {
		t.Fatal(err)
	}
	a, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	// Truncations at many cut points must fail cleanly.
	for cut := 0; cut < len(snap); cut += len(snap)/37 + 1 {
		if _, err := ReadACFull(bytes.NewReader(snap[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), snap...)
	bad[0] ^= 0xFF
	if _, err := ReadACFull(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), snap...)
	bad[4] = 99
	if _, err := ReadACFull(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Absurd state count.
	bad = append([]byte(nil), snap...)
	bad[8], bad[9], bad[10], bad[11] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := ReadACFull(bytes.NewReader(bad)); err == nil {
		t.Error("absurd state count accepted")
	}
	// Out-of-range transition target.
	bad = append([]byte(nil), snap...)
	// First transition word begins after the 6 header uint32s.
	bad[24], bad[25], bad[26], bad[27] = 0xFF, 0xFF, 0xFF, 0x0F
	if _, err := ReadACFull(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range transition accepted")
	}
}

func TestPrefilterSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	b := NewBuilder()
	if err := b.AddSet(0, randomPatterns(rng, 200, 8, 24, 40)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSet(1, randomPatterns(rng, 100, 8, 24, 40)); err != nil {
		t.Fatal(err)
	}
	orig, err := b.BuildPrefiltered()
	if err != nil {
		t.Fatal(err)
	}
	if orig.Fallback() {
		t.Fatal("test set unexpectedly compiled to fallback")
	}
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadPrefiltered(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stride() != orig.Stride() || loaded.Fallback() != orig.Fallback() ||
		loaded.GramCount() != orig.GramCount() || loaded.TableDigest() != orig.TableDigest() ||
		loaded.NumPatterns() != orig.NumPatterns() || loaded.NumStates() != orig.NumStates() {
		t.Fatal("prefilter metadata mismatch after round trip")
	}
	for trial := 0; trial < 20; trial++ {
		text := randomText(rng, 4096, 60)
		injectInto(rng, text, randomPatterns(rng, 5, 8, 24, 40), 2)
		wantMs, wantSt := streamScan(orig, text, orig.Start(), AllSets)
		gotMs, gotSt := streamScan(loaded, text, loaded.Start(), AllSets)
		if !equalMatches(wantMs, gotMs) || gotSt != wantSt {
			t.Fatalf("trial %d: loaded prefiltered matcher disagrees with original", trial)
		}
	}
}

func TestPrefilterSnapshotFallbackRoundTrip(t *testing.T) {
	b := paperBuilder(t)
	orig, err := b.BuildPrefiltered()
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Fallback() {
		t.Fatal("paper set should compile to fallback")
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadPrefiltered(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Fallback() || loaded.Stride() != 0 {
		t.Fatal("fallback flag lost in round trip")
	}
	data := []byte("XEDAECDBCABBE")
	wantMs, wantSt := streamScan(orig, data, orig.Start(), AllSets)
	gotMs, gotSt := streamScan(loaded, data, loaded.Start(), AllSets)
	if !equalMatches(wantMs, gotMs) || gotSt != wantSt {
		t.Fatal("loaded fallback matcher disagrees with original")
	}
}

func TestPrefilterSnapshotRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	b := NewBuilder()
	if err := b.AddSet(0, randomPatterns(rng, 50, 8, 16, 30)); err != nil {
		t.Fatal(err)
	}
	p, err := b.BuildPrefiltered()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	for cut := 0; cut < len(snap); cut += len(snap)/53 + 1 {
		if _, err := ReadPrefiltered(bytes.NewReader(snap[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	corrupt := func(name string, mutate func(b []byte)) {
		bad := append([]byte(nil), snap...)
		mutate(bad)
		if _, err := ReadPrefiltered(bytes.NewReader(bad)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	corrupt("bad magic", func(b []byte) { b[0] ^= 0xFF })
	corrupt("bad version", func(b []byte) { b[4] = 99 })
	corrupt("bad fallback flag", func(b []byte) { b[8] = 7 })
	corrupt("bad stride", func(b []byte) { b[12] = 3 })
	corrupt("bad hash bits", func(b []byte) { b[16] = 9 })
	corrupt("zero min length", func(b []byte) { b[20], b[21], b[22], b[23] = 0, 0, 0, 0 })
	corrupt("absurd max length", func(b []byte) { b[24], b[25], b[26], b[27] = 0xFF, 0xFF, 0xFF, 0x7F })
	corrupt("absurd gram count", func(b []byte) { b[28], b[29], b[30], b[31] = 0xFF, 0xFF, 0xFF, 0x7F })
	// Extent beyond maxLen in the back table (first uint16 after the
	// 32-byte header and the 16 KiB bitset).
	corrupt("absurd extent", func(b []byte) {
		off := 32 + pfTableWords*8
		b[off], b[off+1] = 0xFF, 0xFF
	})
}

func TestBitmapMemoryBetweenCompactAndFull(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBuilder()
	if err := b.AddSet(0, randomPatterns(rng, 800, 8, 24, 26)); err != nil {
		t.Fatal(err)
	}
	full, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	bm, err := b.BuildBitmap()
	if err != nil {
		t.Fatal(err)
	}
	compact, err := b.BuildCompact()
	if err != nil {
		t.Fatal(err)
	}
	if !(bm.MemoryBytes() < full.MemoryBytes()) {
		t.Errorf("bitmap (%d B) not smaller than full (%d B)", bm.MemoryBytes(), full.MemoryBytes())
	}
	if !(compact.MemoryBytes() < bm.MemoryBytes()) {
		t.Errorf("compact (%d B) not smaller than bitmap (%d B)", compact.MemoryBytes(), bm.MemoryBytes())
	}
}
