package mpm

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder()
	if err := b.AddSet(0, randomPatterns(rng, 200, 4, 12, 8)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSet(1, randomPatterns(rng, 150, 4, 12, 8)); err != nil {
		t.Fatal(err)
	}
	orig, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadACFull(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumStates() != orig.NumStates() ||
		loaded.NumAccepting() != orig.NumAccepting() ||
		loaded.NumPatterns() != orig.NumPatterns() ||
		loaded.Start() != orig.Start() {
		t.Fatalf("metadata mismatch: %d/%d/%d/%d vs %d/%d/%d/%d",
			loaded.NumStates(), loaded.NumAccepting(), loaded.NumPatterns(), loaded.Start(),
			orig.NumStates(), orig.NumAccepting(), orig.NumPatterns(), orig.Start())
	}
	// Behavioural equivalence on random text.
	for trial := 0; trial < 20; trial++ {
		text := randomText(rng, 2048, 8)
		want := scanAll(orig, text, AllSets)
		got := scanAll(loaded, text, AllSets)
		if !equalMatches(got, want) {
			t.Fatalf("trial %d: loaded automaton disagrees with original", trial)
		}
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	b := NewBuilder()
	if err := b.AddSet(0, []string{"alpha", "beta", "gamma"}); err != nil {
		t.Fatal(err)
	}
	a, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	// Truncations at many cut points must fail cleanly.
	for cut := 0; cut < len(snap); cut += len(snap)/37 + 1 {
		if _, err := ReadACFull(bytes.NewReader(snap[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), snap...)
	bad[0] ^= 0xFF
	if _, err := ReadACFull(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), snap...)
	bad[4] = 99
	if _, err := ReadACFull(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Absurd state count.
	bad = append([]byte(nil), snap...)
	bad[8], bad[9], bad[10], bad[11] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := ReadACFull(bytes.NewReader(bad)); err == nil {
		t.Error("absurd state count accepted")
	}
	// Out-of-range transition target.
	bad = append([]byte(nil), snap...)
	// First transition word begins after the 6 header uint32s.
	bad[24], bad[25], bad[26], bad[27] = 0xFF, 0xFF, 0xFF, 0x0F
	if _, err := ReadACFull(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range transition accepted")
	}
}

func TestBitmapMemoryBetweenCompactAndFull(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBuilder()
	if err := b.AddSet(0, randomPatterns(rng, 800, 8, 24, 26)); err != nil {
		t.Fatal(err)
	}
	full, err := b.BuildFull()
	if err != nil {
		t.Fatal(err)
	}
	bm, err := b.BuildBitmap()
	if err != nil {
		t.Fatal(err)
	}
	compact, err := b.BuildCompact()
	if err != nil {
		t.Fatal(err)
	}
	if !(bm.MemoryBytes() < full.MemoryBytes()) {
		t.Errorf("bitmap (%d B) not smaller than full (%d B)", bm.MemoryBytes(), full.MemoryBytes())
	}
	if !(compact.MemoryBytes() < bm.MemoryBytes()) {
		t.Errorf("compact (%d B) not smaller than bitmap (%d B)", compact.MemoryBytes(), bm.MemoryBytes())
	}
}
