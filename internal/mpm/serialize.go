package mpm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file serializes the full-table automaton. Building the merged
// DFA for a ClamAV-scale set takes seconds and hundreds of megabytes of
// churn; a controller that respawns instances frequently (scale-out,
// MCA² dedicated allocation — Section 4.3) can build once per
// configuration version and warm-start every subsequent instance from
// the snapshot.

const (
	snapMagic   = 0x44504941 // "DPIA"
	snapVersion = 1

	pfSnapMagic   = 0x44504950 // "DPIP"
	pfSnapVersion = 1
)

// Snapshot errors.
var (
	ErrBadSnapshot     = errors.New("mpm: malformed automaton snapshot")
	ErrSnapshotVersion = errors.New("mpm: unsupported snapshot version")
)

// WriteTo serializes the automaton.
func (a *ACFull) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		_, err := cw.Write(b[:])
		return err
	}
	if err := bw(snapMagic); err != nil {
		return cw.n, err
	}
	if err := bw(snapVersion); err != nil {
		return cw.n, err
	}
	for _, v := range []uint32{
		uint32(a.numStates), uint32(a.numAccepting),
		uint32(a.startState), uint32(a.numPatterns),
	} {
		if err := bw(v); err != nil {
			return cw.n, err
		}
	}
	// Transition table.
	buf := make([]byte, 4*4096)
	for off := 0; off < len(a.next); {
		chunk := len(a.next) - off
		if chunk > 4096 {
			chunk = 4096
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(a.next[off+i]))
		}
		if _, err := cw.Write(buf[:chunk*4]); err != nil {
			return cw.n, err
		}
		off += chunk
	}
	// Accepting-state bitmaps.
	var b8 [8]byte
	for _, bm := range a.bitmaps {
		binary.LittleEndian.PutUint64(b8[:], bm)
		if _, err := cw.Write(b8[:]); err != nil {
			return cw.n, err
		}
	}
	// Match table.
	for _, refs := range a.match {
		if err := bw(uint32(len(refs))); err != nil {
			return cw.n, err
		}
		for _, r := range refs {
			var rb [8]byte
			rb[0] = r.Set
			binary.LittleEndian.PutUint16(rb[2:4], r.ID)
			binary.LittleEndian.PutUint16(rb[4:6], r.Len)
			if _, err := cw.Write(rb[:]); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, nil
}

// ReadACFull deserializes a snapshot written by WriteTo.
func ReadACFull(r io.Reader) (*ACFull, error) {
	br := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	magic, err := br()
	if err != nil {
		return nil, err
	}
	if magic != snapMagic {
		return nil, ErrBadSnapshot
	}
	ver, err := br()
	if err != nil {
		return nil, err
	}
	if ver != snapVersion {
		return nil, ErrSnapshotVersion
	}
	var hdr [4]uint32
	for i := range hdr {
		if hdr[i], err = br(); err != nil {
			return nil, err
		}
	}
	numStates := int(hdr[0])
	const maxStates = 1 << 28 // 256M states ≈ 256 GB table: clearly corrupt
	if numStates <= 0 || numStates > maxStates {
		return nil, ErrBadSnapshot
	}
	a := &ACFull{
		numStates:    numStates,
		numAccepting: int32(hdr[1]),
		startState:   State(hdr[2]),
		numPatterns:  int(hdr[3]),
	}
	if a.numAccepting < 0 || int(a.numAccepting) > numStates || int(a.startState) >= numStates {
		return nil, ErrBadSnapshot
	}
	a.next = make([]int32, numStates*256)
	buf := make([]byte, 4*4096)
	for off := 0; off < len(a.next); {
		chunk := len(a.next) - off
		if chunk > 4096 {
			chunk = 4096
		}
		if _, err := io.ReadFull(r, buf[:chunk*4]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		for i := 0; i < chunk; i++ {
			s := int32(binary.LittleEndian.Uint32(buf[i*4:]))
			if s < 0 || int(s) >= numStates {
				return nil, ErrBadSnapshot
			}
			a.next[off+i] = s
		}
		off += chunk
	}
	a.bitmaps = make([]uint64, a.numAccepting)
	var b8 [8]byte
	for i := range a.bitmaps {
		if _, err := io.ReadFull(r, b8[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		a.bitmaps[i] = binary.LittleEndian.Uint64(b8[:])
	}
	a.match = make([][]PatternRef, a.numAccepting)
	for i := range a.match {
		n, err := br()
		if err != nil {
			return nil, err
		}
		if n == 0 || n > uint32(a.numPatterns)+1 {
			return nil, ErrBadSnapshot
		}
		refs := make([]PatternRef, n)
		for j := range refs {
			var rb [8]byte
			if _, err := io.ReadFull(r, rb[:]); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
			}
			refs[j] = PatternRef{
				Set: rb[0],
				ID:  binary.LittleEndian.Uint16(rb[2:4]),
				Len: binary.LittleEndian.Uint16(rb[4:6]),
			}
		}
		a.match[i] = refs
	}
	return a, nil
}

// WriteTo serializes the two-stage matcher: a prefilter header and
// tables, followed by the embedded exact-automaton snapshot. Window
// offsets are compile-time introspection only and are not serialized.
func (p *PrefilteredAC) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		_, err := cw.Write(b[:])
		return err
	}
	fallback := uint32(0)
	if p.fallback {
		fallback = 1
	}
	for _, v := range []uint32{
		pfSnapMagic, pfSnapVersion, fallback, uint32(p.stride),
		pfHashBits, uint32(p.minLen), uint32(p.maxLen), uint32(p.grams),
	} {
		if err := bw(v); err != nil {
			return cw.n, err
		}
	}
	if !p.fallback {
		var b8 [8]byte
		for _, word := range p.table {
			binary.LittleEndian.PutUint64(b8[:], word)
			if _, err := cw.Write(b8[:]); err != nil {
				return cw.n, err
			}
		}
		for _, arr := range [][]uint16{p.back, p.fwd} {
			buf := make([]byte, 2*4096)
			for off := 0; off < len(arr); {
				chunk := len(arr) - off
				if chunk > 4096 {
					chunk = 4096
				}
				for i := 0; i < chunk; i++ {
					binary.LittleEndian.PutUint16(buf[i*2:], arr[off+i])
				}
				if _, err := cw.Write(buf[:chunk*2]); err != nil {
					return cw.n, err
				}
				off += chunk
			}
		}
	}
	n, err := p.ac.WriteTo(cw)
	_ = n // already counted through cw
	return cw.n, err
}

// ReadPrefiltered deserializes a snapshot written by
// (*PrefilteredAC).WriteTo. The restored matcher scans identically to
// the original; WindowOffsets is not restored.
func ReadPrefiltered(r io.Reader) (*PrefilteredAC, error) {
	br := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	magic, err := br()
	if err != nil {
		return nil, err
	}
	if magic != pfSnapMagic {
		return nil, ErrBadSnapshot
	}
	ver, err := br()
	if err != nil {
		return nil, err
	}
	if ver != pfSnapVersion {
		return nil, ErrSnapshotVersion
	}
	var hdr [6]uint32
	for i := range hdr {
		if hdr[i], err = br(); err != nil {
			return nil, err
		}
	}
	fallback, stride := hdr[0] == 1, int(hdr[1])
	p := &PrefilteredAC{
		fallback: fallback,
		stride:   stride,
		minLen:   int(hdr[3]),
		maxLen:   int(hdr[4]),
		grams:    int(hdr[5]),
	}
	p.pool.New = func() any { return newPfScratch() }
	switch {
	case hdr[0] > 1, hdr[2] != pfHashBits:
		return nil, ErrBadSnapshot
	case !fallback && stride != 2 && stride != 4:
		return nil, ErrBadSnapshot
	case fallback && stride != 0:
		return nil, ErrBadSnapshot
	case p.minLen <= 0 || p.maxLen < p.minLen || p.maxLen >= 1<<16:
		return nil, ErrBadSnapshot
	case p.grams < 0 || p.grams > pfBuckets:
		return nil, ErrBadSnapshot
	}
	if !fallback {
		if p.grams > pfMaxFlagged {
			return nil, ErrBadSnapshot
		}
		p.table = make([]uint64, pfTableWords)
		var b8 [8]byte
		for i := range p.table {
			if _, err := io.ReadFull(r, b8[:]); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
			}
			p.table[i] = binary.LittleEndian.Uint64(b8[:])
		}
		p.back = make([]uint16, pfBuckets)
		p.fwd = make([]uint16, pfBuckets)
		buf := make([]byte, 2*4096)
		for _, arr := range [][]uint16{p.back, p.fwd} {
			for off := 0; off < len(arr); {
				chunk := len(arr) - off
				if chunk > 4096 {
					chunk = 4096
				}
				if _, err := io.ReadFull(r, buf[:chunk*2]); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
				}
				for i := 0; i < chunk; i++ {
					arr[off+i] = binary.LittleEndian.Uint16(buf[i*2:])
				}
				off += chunk
			}
		}
		for i := range p.back {
			if int(p.back[i]) >= p.maxLen || int(p.fwd[i]) > p.maxLen {
				return nil, ErrBadSnapshot
			}
		}
		p.bailDiv = 2 * p.maxLen
	}
	ac, err := ReadACFull(r)
	if err != nil {
		return nil, err
	}
	p.ac = ac
	return p, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
