package mpm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file serializes the full-table automaton. Building the merged
// DFA for a ClamAV-scale set takes seconds and hundreds of megabytes of
// churn; a controller that respawns instances frequently (scale-out,
// MCA² dedicated allocation — Section 4.3) can build once per
// configuration version and warm-start every subsequent instance from
// the snapshot.

const (
	snapMagic   = 0x44504941 // "DPIA"
	snapVersion = 1
)

// Snapshot errors.
var (
	ErrBadSnapshot     = errors.New("mpm: malformed automaton snapshot")
	ErrSnapshotVersion = errors.New("mpm: unsupported snapshot version")
)

// WriteTo serializes the automaton.
func (a *ACFull) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		_, err := cw.Write(b[:])
		return err
	}
	if err := bw(snapMagic); err != nil {
		return cw.n, err
	}
	if err := bw(snapVersion); err != nil {
		return cw.n, err
	}
	for _, v := range []uint32{
		uint32(a.numStates), uint32(a.numAccepting),
		uint32(a.startState), uint32(a.numPatterns),
	} {
		if err := bw(v); err != nil {
			return cw.n, err
		}
	}
	// Transition table.
	buf := make([]byte, 4*4096)
	for off := 0; off < len(a.next); {
		chunk := len(a.next) - off
		if chunk > 4096 {
			chunk = 4096
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(a.next[off+i]))
		}
		if _, err := cw.Write(buf[:chunk*4]); err != nil {
			return cw.n, err
		}
		off += chunk
	}
	// Accepting-state bitmaps.
	var b8 [8]byte
	for _, bm := range a.bitmaps {
		binary.LittleEndian.PutUint64(b8[:], bm)
		if _, err := cw.Write(b8[:]); err != nil {
			return cw.n, err
		}
	}
	// Match table.
	for _, refs := range a.match {
		if err := bw(uint32(len(refs))); err != nil {
			return cw.n, err
		}
		for _, r := range refs {
			var rb [8]byte
			rb[0] = r.Set
			binary.LittleEndian.PutUint16(rb[2:4], r.ID)
			binary.LittleEndian.PutUint16(rb[4:6], r.Len)
			if _, err := cw.Write(rb[:]); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, nil
}

// ReadACFull deserializes a snapshot written by WriteTo.
func ReadACFull(r io.Reader) (*ACFull, error) {
	br := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	magic, err := br()
	if err != nil {
		return nil, err
	}
	if magic != snapMagic {
		return nil, ErrBadSnapshot
	}
	ver, err := br()
	if err != nil {
		return nil, err
	}
	if ver != snapVersion {
		return nil, ErrSnapshotVersion
	}
	var hdr [4]uint32
	for i := range hdr {
		if hdr[i], err = br(); err != nil {
			return nil, err
		}
	}
	numStates := int(hdr[0])
	const maxStates = 1 << 28 // 256M states ≈ 256 GB table: clearly corrupt
	if numStates <= 0 || numStates > maxStates {
		return nil, ErrBadSnapshot
	}
	a := &ACFull{
		numStates:    numStates,
		numAccepting: int32(hdr[1]),
		startState:   State(hdr[2]),
		numPatterns:  int(hdr[3]),
	}
	if a.numAccepting < 0 || int(a.numAccepting) > numStates || int(a.startState) >= numStates {
		return nil, ErrBadSnapshot
	}
	a.next = make([]int32, numStates*256)
	buf := make([]byte, 4*4096)
	for off := 0; off < len(a.next); {
		chunk := len(a.next) - off
		if chunk > 4096 {
			chunk = 4096
		}
		if _, err := io.ReadFull(r, buf[:chunk*4]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		for i := 0; i < chunk; i++ {
			s := int32(binary.LittleEndian.Uint32(buf[i*4:]))
			if s < 0 || int(s) >= numStates {
				return nil, ErrBadSnapshot
			}
			a.next[off+i] = s
		}
		off += chunk
	}
	a.bitmaps = make([]uint64, a.numAccepting)
	var b8 [8]byte
	for i := range a.bitmaps {
		if _, err := io.ReadFull(r, b8[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		a.bitmaps[i] = binary.LittleEndian.Uint64(b8[:])
	}
	a.match = make([][]PatternRef, a.numAccepting)
	for i := range a.match {
		n, err := br()
		if err != nil {
			return nil, err
		}
		if n == 0 || n > uint32(a.numPatterns)+1 {
			return nil, ErrBadSnapshot
		}
		refs := make([]PatternRef, n)
		for j := range refs {
			var rb [8]byte
			if _, err := io.ReadFull(r, rb[:]); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
			}
			refs[j] = PatternRef{
				Set: rb[0],
				ID:  binary.LittleEndian.Uint16(rb[2:4]),
				Len: binary.LittleEndian.Uint16(rb[4:6]),
			}
		}
		a.match[i] = refs
	}
	return a, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
