package mpm

// ACFull is the full-table Aho-Corasick DFA with the paper's merged-set
// extensions (Section 5.1): every state has a complete 256-entry
// transition row, so the scan loop is one load and one compare per input
// byte; accepting states occupy the dense ID range [0, numAccepting);
// each accepting state carries a bitmap of the sets that care about it
// and a direct-access match-table entry with its (set, pattern) pairs.
type ACFull struct {
	next         []int32 // numStates*256, row-major
	match        [][]PatternRef
	bitmaps      []uint64
	numAccepting int32
	numStates    int
	numPatterns  int
	startState   State
}

// BuildFull constructs the full-table automaton from the builder's
// patterns.
func (b *Builder) BuildFull() (*ACFull, error) {
	t, err := b.buildTrie()
	if err != nil {
		return nil, err
	}
	oldToNew, newToOld, numAccepting := t.renumber()
	match, bitmaps := t.matchTable(newToOld, numAccepting)

	n := len(t.children)
	a := &ACFull{
		match:        match,
		bitmaps:      bitmaps,
		numAccepting: numAccepting,
		numStates:    n,
		numPatterns:  len(b.patterns),
		next:         make([]int32, n*256),
	}
	// Fill transition rows in BFS order: a missing goto edge copies the
	// failure target's (already complete) row entry. The root's missing
	// edges self-loop.
	rootNew := oldToNew[0]
	rootRow := a.next[int(rootNew)*256 : int(rootNew)*256+256]
	for i := range rootRow {
		rootRow[i] = rootNew
	}
	for c, child := range t.children[0] {
		rootRow[c] = oldToNew[child]
	}
	for _, s := range t.bfs[1:] {
		sNew := oldToNew[s]
		fNew := oldToNew[t.fail[s]]
		row := a.next[int(sNew)*256 : int(sNew)*256+256]
		copy(row, a.next[int(fNew)*256:int(fNew)*256+256])
		for c, child := range t.children[s] {
			row[c] = oldToNew[child]
		}
	}
	a.startState = rootNew
	return a, nil
}

// Start implements Automaton.
func (a *ACFull) Start() State { return a.startState }

// Scan implements Automaton. This is the hot loop of the DPI service:
// one table load per byte, one compare against numAccepting, and — only
// on the rare accepting states — one bitmap AND against the packet's
// active-middlebox mask (Section 5.2).
//
//dpi:hotpath
func (a *ACFull) Scan(data []byte, state State, active uint64, emit EmitFunc) State {
	next := a.next
	acc := a.numAccepting
	for i := 0; i < len(data); i++ {
		state = next[int(state)<<8|int(data[i])]
		if state < acc && a.bitmaps[state]&active != 0 {
			emit(a.match[state], i+1)
		}
	}
	return state
}

// NumStates implements Automaton.
func (a *ACFull) NumStates() int { return a.numStates }

// NumPatterns implements Automaton.
func (a *ACFull) NumPatterns() int { return a.numPatterns }

// NumAccepting reports f, the number of accepting states.
func (a *ACFull) NumAccepting() int { return int(a.numAccepting) }

// MatchRefs returns the match-table entry of an accepting state.
func (a *ACFull) MatchRefs(s State) []PatternRef {
	if s >= a.numAccepting {
		return nil
	}
	return a.match[s]
}

// MemoryBytes implements Automaton.
func (a *ACFull) MemoryBytes() int64 {
	bytes := int64(len(a.next)) * 4
	bytes += int64(len(a.bitmaps)) * 8
	for _, refs := range a.match {
		bytes += 24 + int64(len(refs))*8
	}
	return bytes
}
