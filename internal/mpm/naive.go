package mpm

import "strings"

// Naive is an obviously-correct whole-buffer matcher that checks every
// pattern at every position using the standard library. It exists purely
// as the reference implementation for property tests; never use it for
// real scanning.
type Naive struct {
	patterns []string
	refs     []PatternRef
}

// BuildNaive constructs the reference matcher.
func (b *Builder) BuildNaive() (*Naive, error) {
	if len(b.patterns) == 0 {
		return nil, ErrNoPatterns
	}
	n := &Naive{}
	for _, bp := range b.patterns {
		n.patterns = append(n.patterns, bp.pat)
		n.refs = append(n.refs, bp.ref)
	}
	return n, nil
}

// Find implements BufMatcher.
func (n *Naive) Find(data []byte, emit EmitFunc) {
	s := string(data)
	for pi, p := range n.patterns {
		for off := 0; ; {
			i := strings.Index(s[off:], p)
			if i < 0 {
				break
			}
			emit(n.refs[pi:pi+1], off+i+len(p))
			off += i + 1
		}
	}
}

// NumPatterns implements BufMatcher.
func (n *Naive) NumPatterns() int { return len(n.patterns) }

// MemoryBytes implements BufMatcher.
func (n *Naive) MemoryBytes() int64 {
	var bytes int64
	for _, p := range n.patterns {
		bytes += 16 + int64(len(p))
	}
	return bytes + int64(len(n.refs))*8
}
