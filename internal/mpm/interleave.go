package mpm

// Batch-interleaved scanning: several packets' DFA walks advance in
// lockstep inside one goroutine. A big merged automaton misses cache on
// most row loads, and a single scan chain serializes those misses — the
// next state load cannot issue until the previous one returns. Four
// independent chains give the core four loads in flight at once
// (memory-level parallelism), hiding most of the miss latency without
// threads. This is the software analogue of the paper's observation
// that the DFA walk, not pattern count, bounds throughput.

// Lane is one packet's scan in an interleaved batch: its payload, the
// DFA state to resume from, the active-set mask and the emit callback.
// ScanLanes updates State in place.
type Lane struct {
	Data   []byte
	State  State
	Active uint64
	Emit   EmitFunc
}

// ScanLanes advances every lane's scan to completion, interleaving them
// four at a time. The per-lane result — emitted matches and final
// state — is identical to calling Scan(l.Data, l.State, l.Active,
// l.Emit) lane by lane; only the instruction schedule differs.
//
//dpi:hotpath
func (a *ACFull) ScanLanes(lanes []Lane) {
	for len(lanes) >= 4 {
		a.scan4(lanes)
		lanes = lanes[4:]
	}
	for i := range lanes {
		l := &lanes[i]
		l.State = a.Scan(l.Data, l.State, l.Active, l.Emit)
	}
}

// scan4 runs four lanes in lockstep over their common length, then
// finishes each lane's remainder with a plain chain.
//
//dpi:hotpath
func (a *ACFull) scan4(l []Lane) {
	l0, l1, l2, l3 := &l[0], &l[1], &l[2], &l[3]
	d0, d1, d2, d3 := l0.Data, l1.Data, l2.Data, l3.Data
	s0, s1, s2, s3 := l0.State, l1.State, l2.State, l3.State
	n := len(d0)
	if len(d1) < n {
		n = len(d1)
	}
	if len(d2) < n {
		n = len(d2)
	}
	if len(d3) < n {
		n = len(d3)
	}
	next := a.next
	acc := a.numAccepting
	for i := 0; i < n; i++ {
		s0 = next[int(s0)<<8|int(d0[i])]
		s1 = next[int(s1)<<8|int(d1[i])]
		s2 = next[int(s2)<<8|int(d2[i])]
		s3 = next[int(s3)<<8|int(d3[i])]
		if s0 < acc && a.bitmaps[s0]&l0.Active != 0 {
			l0.Emit(a.match[s0], i+1)
		}
		if s1 < acc && a.bitmaps[s1]&l1.Active != 0 {
			l1.Emit(a.match[s1], i+1)
		}
		if s2 < acc && a.bitmaps[s2]&l2.Active != 0 {
			l2.Emit(a.match[s2], i+1)
		}
		if s3 < acc && a.bitmaps[s3]&l3.Active != 0 {
			l3.Emit(a.match[s3], i+1)
		}
	}
	l0.State = a.scanFrom(d0, n, s0, l0.Active, l0.Emit)
	l1.State = a.scanFrom(d1, n, s1, l1.Active, l1.Emit)
	l2.State = a.scanFrom(d2, n, s2, l2.Active, l2.Emit)
	l3.State = a.scanFrom(d3, n, s3, l3.Active, l3.Emit)
}

// scanFrom is Scan resuming at byte offset from, emitting positions in
// whole-buffer coordinates.
//
//dpi:hotpath
func (a *ACFull) scanFrom(data []byte, from int, state State, active uint64, emit EmitFunc) State {
	next := a.next
	acc := a.numAccepting
	for i := from; i < len(data); i++ {
		state = next[int(state)<<8|int(data[i])]
		if state < acc && a.bitmaps[state]&active != 0 {
			emit(a.match[state], i+1)
		}
	}
	return state
}
