package mpm

import "math/bits"

// ACBitmap is the bitmap-compressed Aho-Corasick automaton in the style
// of Tuck et al. (2004), the classic middle ground in the DPI
// space-time tradeoff the paper's related work surveys (Section 2.2):
// each state stores a 256-bit presence bitmap plus a dense array of its
// real transitions; an input byte indexes the bitmap, and a popcount
// over the preceding words locates the target without search. Misses
// chase failure links as in ACCompact, but hits cost O(1) instead of a
// binary search.
type ACBitmap struct {
	// Per-state: 4 words of bitmap; edge targets dense-packed.
	bitmaps   []uint64 // 4 per state
	edgeStart []int32
	edges     []int32
	fail      []int32

	match        [][]PatternRef
	setBitmaps   []uint64
	numAccepting int32
	numPatterns  int
	startState   State
}

// BuildBitmap constructs the bitmap-compressed automaton from the
// builder's patterns.
func (b *Builder) BuildBitmap() (*ACBitmap, error) {
	t, err := b.buildTrie()
	if err != nil {
		return nil, err
	}
	oldToNew, newToOld, numAccepting := t.renumber()
	match, setBitmaps := t.matchTable(newToOld, numAccepting)

	n := len(t.children)
	a := &ACBitmap{
		bitmaps:      make([]uint64, 4*n),
		edgeStart:    make([]int32, n+1),
		fail:         make([]int32, n),
		match:        match,
		setBitmaps:   setBitmaps,
		numAccepting: numAccepting,
		numPatterns:  len(b.patterns),
		startState:   oldToNew[0],
	}
	totalEdges := 0
	for _, ch := range t.children {
		totalEdges += len(ch)
	}
	a.edges = make([]int32, 0, totalEdges)
	for newID := int32(0); newID < int32(n); newID++ {
		a.edgeStart[newID] = int32(len(a.edges))
		old := newToOld[newID]
		a.fail[newID] = oldToNew[t.fail[old]]
		ch := t.children[old]
		if len(ch) == 0 {
			continue
		}
		bm := a.bitmaps[newID*4 : newID*4+4]
		for c := range ch {
			bm[c>>6] |= 1 << (c & 63)
		}
		// Append targets in ascending label order so popcount
		// indexing lines up.
		for c := 0; c < 256; c++ {
			if next, ok := ch[byte(c)]; ok {
				a.edges = append(a.edges, oldToNew[next])
			}
		}
	}
	a.edgeStart[n] = int32(len(a.edges))
	return a, nil
}

// Start implements Automaton.
func (a *ACBitmap) Start() State { return a.startState }

// step follows one byte, chasing failure links on misses.
func (a *ACBitmap) step(state State, c byte) State {
	for {
		bm := a.bitmaps[state*4 : state*4+4]
		word, bit := int(c>>6), uint(c&63)
		if bm[word]&(1<<bit) != 0 {
			// Rank of this edge: set bits before it.
			rank := bits.OnesCount64(bm[word] & (1<<bit - 1))
			for w := 0; w < word; w++ {
				rank += bits.OnesCount64(bm[w])
			}
			return a.edges[int(a.edgeStart[state])+rank]
		}
		if state == a.startState {
			return state
		}
		state = a.fail[state]
	}
}

// Scan implements Automaton.
//
//dpi:hotpath
func (a *ACBitmap) Scan(data []byte, state State, active uint64, emit EmitFunc) State {
	acc := a.numAccepting
	for i := 0; i < len(data); i++ {
		state = a.step(state, data[i])
		if state < acc && a.setBitmaps[state]&active != 0 {
			emit(a.match[state], i+1)
		}
	}
	return state
}

// NumStates implements Automaton.
func (a *ACBitmap) NumStates() int { return len(a.fail) }

// NumPatterns implements Automaton.
func (a *ACBitmap) NumPatterns() int { return a.numPatterns }

// NumAccepting reports f, the number of accepting states.
func (a *ACBitmap) NumAccepting() int { return int(a.numAccepting) }

// MemoryBytes implements Automaton.
func (a *ACBitmap) MemoryBytes() int64 {
	bytes := int64(len(a.bitmaps))*8 + int64(len(a.edgeStart))*4 + int64(len(a.edges))*4 + int64(len(a.fail))*4
	bytes += int64(len(a.setBitmaps)) * 8
	for _, refs := range a.match {
		bytes += 24 + int64(len(refs))*8
	}
	return bytes
}
