package wire

import (
	"bytes"
	"sync"
	"testing"

	"dpiservice/internal/netsim"
	"dpiservice/internal/packet"
)

// TestTraceExtRoundTrip encodes a traced data frame and parses it back,
// confirming the 12-byte trace extension sits between the data
// subheader and the payload and round-trips exactly.
func TestTraceExtRoundTrip(t *testing.T) {
	payload := []byte("GET / HTTP/1.1")
	const traceID = uint64(0xdeadbeefcafe0042)
	const pktIdx = uint32(7)

	buf := AppendDataTraced(nil, 9, testTuple, traceID, pktIdx, payload)
	if want := DataHdrLen + TraceExtLen + len(payload); len(buf) != want {
		t.Fatalf("len = %d, want %d", len(buf), want)
	}

	tag, tuple, rest, err := ParseDataHdr(buf)
	if err != nil {
		t.Fatalf("ParseDataHdr: %v", err)
	}
	if tag != 9 || tuple != testTuple {
		t.Fatalf("tag/tuple = %d/%+v", tag, tuple)
	}
	id, idx, body, err := ParseTraceExt(rest)
	if err != nil {
		t.Fatalf("ParseTraceExt: %v", err)
	}
	if id != traceID || idx != pktIdx {
		t.Fatalf("trace ctx = %#x/%d, want %#x/%d", id, idx, traceID, pktIdx)
	}
	if !bytes.Equal(body, payload) {
		t.Fatalf("body = %q, want %q", body, payload)
	}

	// Truncated extension is an error, not a short read.
	if _, _, _, err := ParseTraceExt(rest[:TraceExtLen-1]); err == nil {
		t.Fatal("truncated trace ext parsed")
	}
}

// TestTraceFlagSurvivesRetransmit drops the first emission of a traced
// frame and checks that the timer retransmit re-emits the header with
// FlagTrace still set, and that delivery hands the flag to Deliver.
func TestTraceFlagSurvivesRetransmit(t *testing.T) {
	a := NewEndpoint(7, Config{}, nil)
	b := NewEndpoint(7, Config{}, nil)

	var aOut []emittedFrame
	emit := collect(&aOut)
	if _, err := a.SendEx(TData, FlagTrace, []byte("traced"), 0, emit); err != nil {
		t.Fatalf("SendEx: %v", err)
	}
	if len(aOut) != 1 || aOut[0].h.Flags&FlagTrace == 0 {
		t.Fatalf("first emission flags = %+v", aOut)
	}

	// Drop the first copy; force a timer retransmit.
	aOut = nil
	a.Tick(2_000*ms, emit)
	if len(aOut) != 1 {
		t.Fatalf("retransmissions = %d, want 1", len(aOut))
	}
	if aOut[0].h.Flags&FlagTrace == 0 {
		t.Fatalf("retransmitted header lost FlagTrace: %+v", aOut[0].h)
	}

	// Deliver the retransmitted copy: flags reach the Deliver callback.
	var gotFlags uint8
	var gotPayload string
	deliver := func(typ Type, seq uint32, flags uint8, payload []byte) {
		gotFlags, gotPayload = flags, string(payload)
	}
	var bOut []emittedFrame
	b.HandleFrame(aOut[0].h, aOut[0].payload, 0, deliver, collect(&bOut))
	if gotPayload != "traced" || gotFlags&FlagTrace == 0 {
		t.Fatalf("delivered payload=%q flags=%#x", gotPayload, gotFlags)
	}
}

// TestWireTracePropagation runs traced and untraced sends through a
// real Conn/Server pair over netsim and asserts the handler observes
// the in-band trace context exactly on the traced frames.
func TestWireTracePropagation(t *testing.T) {
	nw := netsim.NewNetwork()
	ct := NewNetsimTransport("client")
	st := NewNetsimTransport("server")
	if err := nw.AddNode(ct); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddNode(st); err != nil {
		t.Fatal(err)
	}
	if err := nw.Connect(ct, st, netsim.LinkOpts{}); err != nil {
		t.Fatal(err)
	}

	type seen struct {
		id  uint64
		idx uint32
		ok  bool
	}
	var mu sync.Mutex
	dataSeen := make(map[string]seen)
	verdictSeen := make(map[string]seen)

	srv := NewServer(st, testKey, testCfg, nil)
	srv.OnData(func(s *Session, seq uint32, tag uint16, tuple packet.FiveTuple, payload []byte) {
		id, idx, ok := s.Trace()
		mu.Lock()
		dataSeen[string(payload)] = seen{id, idx, ok}
		mu.Unlock()
		if err := s.SendResult(seq, []byte("ok")); err != nil {
			t.Errorf("SendResult: %v", err)
		}
	})
	srv.OnVerdict(func(s *Session, tag uint16, tuple packet.FiveTuple, report []byte) {
		id, idx, ok := s.Trace()
		mu.Lock()
		verdictSeen[string(report)] = seen{id, idx, ok}
		mu.Unlock()
	})
	srv.Start()

	sink := newResultSink()
	c := NewConn(ct, IssueToken(testKey, 1), "tg-1", testCfg, nil)
	c.OnResult(sink.add)
	t.Cleanup(func() {
		c.Close()
		srv.Close()
		nw.Stop()
	})
	if err := c.Start(5e9); err != nil {
		t.Fatalf("Start: %v", err)
	}

	const traceID = uint64(0x1122334455667788)
	if _, err := c.SendDataTraced(3, testTuple, traceID, 42, []byte("traced-data")); err != nil {
		t.Fatalf("SendDataTraced: %v", err)
	}
	if _, err := c.SendData(3, testTuple, []byte("plain-data")); err != nil {
		t.Fatalf("SendData: %v", err)
	}
	if err := c.SendVerdictTraced(3, testTuple, traceID, 42, []byte("traced-verdict")); err != nil {
		t.Fatalf("SendVerdictTraced: %v", err)
	}
	if err := c.SendVerdict(3, testTuple, []byte("plain-verdict")); err != nil {
		t.Fatalf("SendVerdict: %v", err)
	}
	c.Flush()
	if err := c.WaitIdle(20e9); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	waitFor(t, 20e9, "all deliveries", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(dataSeen) == 2 && len(verdictSeen) == 2
	})

	mu.Lock()
	defer mu.Unlock()
	if s := dataSeen["traced-data"]; !s.ok || s.id != traceID || s.idx != 42 {
		t.Fatalf("traced data ctx = %+v", s)
	}
	if s := dataSeen["plain-data"]; s.ok || s.id != 0 {
		t.Fatalf("plain data saw trace ctx: %+v", s)
	}
	if s := verdictSeen["traced-verdict"]; !s.ok || s.id != traceID || s.idx != 42 {
		t.Fatalf("traced verdict ctx = %+v", s)
	}
	if s := verdictSeen["plain-verdict"]; s.ok || s.id != 0 {
		t.Fatalf("plain verdict saw trace ctx: %+v", s)
	}
}
