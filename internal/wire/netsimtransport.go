package wire

import (
	"sync"

	"dpiservice/internal/netsim"
)

// NetsimTransport adapts the in-process virtual network to the
// Transport interface: one netsim node whose links are "datagram"
// paths to its peers, addressed by node name. The wire protocol —
// sessions, retransmission, reordering — runs bit-for-bit identically
// over it, which is what makes the protocol testable under netsim's
// deterministic chaos faults (drop/dup/delay/reorder) without sockets.
// Netsim semantics are untouched: the adapter is a plain Node.
//
// Unlike the UDP transport the write path copies each datagram (netsim
// ports take ownership of their frames); this is the test fabric, not
// the performance path.
type NetsimTransport struct {
	name string

	mu    sync.Mutex
	ports map[string]*netsim.Port // peer name -> tx handle
	peers []string                // port index -> peer name
	idx   map[string]int          // peer name -> port index

	incoming chan Datagram
	done     chan struct{}
	closed   bool
}

// NewNetsimTransport creates a transport node named name. Add it to a
// netsim.Network and Connect it to its peers before traffic flows.
func NewNetsimTransport(name string) *NetsimTransport {
	return &NetsimTransport{
		name:     name,
		ports:    make(map[string]*netsim.Port),
		idx:      make(map[string]int),
		incoming: make(chan Datagram, 4096),
		done:     make(chan struct{}),
	}
}

// Name implements netsim.Node.
func (t *NetsimTransport) Name() string { return t.name }

// PortTo implements netsim.PortMapper: each peer gets its own port so
// Recv can attribute frames to senders.
func (t *NetsimTransport) PortTo(peer string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.idx[peer]; ok {
		return i
	}
	i := len(t.peers)
	t.peers = append(t.peers, peer)
	t.idx[peer] = i
	return i
}

// Attach implements netsim.Node.
func (t *NetsimTransport) Attach(port int, tx *netsim.Port) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if port >= 0 && port < len(t.peers) {
		t.ports[t.peers[port]] = tx
	}
}

// Recv implements netsim.Node: an arriving frame becomes one datagram.
// A full incoming queue drops, as a kernel socket buffer would.
func (t *NetsimTransport) Recv(port int, frame []byte) {
	t.mu.Lock()
	var peer string
	if port >= 0 && port < len(t.peers) {
		peer = t.peers[port]
	}
	t.mu.Unlock()
	select {
	case t.incoming <- Datagram{Addr: Addr{Name: peer}, Buf: frame}:
	default:
	}
}

// LocalAddr implements Transport.
func (t *NetsimTransport) LocalAddr() Addr { return Addr{Name: t.name} }

// WriteBatch implements Transport. A datagram with the zero Addr goes
// to the single connected peer (errors if there are several).
func (t *NetsimTransport) WriteBatch(dgs []Datagram) (int, error) {
	for i := range dgs {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return i, ErrClosed
		}
		var tx *netsim.Port
		if dgs[i].Addr.IsZero() {
			if len(t.peers) != 1 {
				t.mu.Unlock()
				return i, ErrNoSession
			}
			tx = t.ports[t.peers[0]]
		} else {
			tx = t.ports[dgs[i].Addr.Name]
		}
		t.mu.Unlock()
		if tx == nil {
			return i, ErrNoSession
		}
		// The port owns its frame; the staging buffer is reused.
		tx.Send(append([]byte(nil), dgs[i].Buf...))
	}
	return len(dgs), nil
}

// ReadBatch implements Transport: blocks for the first datagram, then
// drains whatever else is queued, up to len(dgs).
func (t *NetsimTransport) ReadBatch(dgs []Datagram) (int, error) {
	if len(dgs) == 0 {
		return 0, nil
	}
	var first Datagram
	select {
	case first = <-t.incoming:
	case <-t.done:
		return 0, ErrClosed
	}
	n := t.fill(&dgs[0], first)
	for n < len(dgs) {
		select {
		case dg := <-t.incoming:
			n += t.fill(&dgs[n], dg)
		default:
			return n, nil
		}
	}
	return n, nil
}

// fill copies one received frame into the caller's buffer, mirroring
// the UDP transport's semantics (caller owns its buffers; oversized
// frames are truncated away, i.e. dropped by the codec).
func (t *NetsimTransport) fill(dst *Datagram, src Datagram) int {
	buf := dst.Buf[:cap(dst.Buf)]
	if len(src.Buf) > len(buf) {
		return 0
	}
	dst.Buf = buf[:copy(buf, src.Buf)]
	dst.Addr = src.Addr
	return 1
}

// Close implements Transport.
func (t *NetsimTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.closed {
		t.closed = true
		close(t.done)
	}
	return nil
}
