package wire

import (
	"net"
	"net/netip"
)

// UDPTransport is the real-network Transport: one UDP socket, either
// bound (server; datagrams carry peer addresses) or connected (client;
// the zero Addr sends to the peer). On linux/amd64 and linux/arm64 the
// batch paths use sendmmsg/recvmmsg so one syscall moves a whole batch
// (batch_linux.go); elsewhere a portable loop provides the same
// interface one datagram at a time (batch_fallback.go).
type UDPTransport struct {
	conn      *net.UDPConn
	connected bool
	local     Addr

	// batch is the platform batch-syscall state; nil when unavailable
	// (non-linux, or raw-conn setup failed).
	batch *batchIO
}

// socketBufferBytes is requested for both socket buffers: a burst of
// full batches must not be dropped by the kernel while the reader is
// scanning.
const socketBufferBytes = 4 << 20

// ListenUDP opens a bound (server) transport on addr, e.g.
// "127.0.0.1:9300" or ":9300".
func ListenUDP(addr string) (*UDPTransport, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, err
	}
	return newUDPTransport(conn, false), nil
}

// DialUDP opens a connected (client) transport toward addr.
func DialUDP(addr string) (*UDPTransport, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, uaddr)
	if err != nil {
		return nil, err
	}
	return newUDPTransport(conn, true), nil
}

func newUDPTransport(conn *net.UDPConn, connected bool) *UDPTransport {
	conn.SetReadBuffer(socketBufferBytes)
	conn.SetWriteBuffer(socketBufferBytes)
	t := &UDPTransport{conn: conn, connected: connected}
	if la, ok := conn.LocalAddr().(*net.UDPAddr); ok {
		t.local = Addr{AP: la.AddrPort()}
	}
	t.batch = newBatchIO(conn, connected)
	return t
}

// LocalAddr implements Transport.
func (t *UDPTransport) LocalAddr() Addr { return t.local }

// Batched reports whether the platform batch syscalls are in use.
func (t *UDPTransport) Batched() bool { return t.batch != nil }

// Close implements Transport.
func (t *UDPTransport) Close() error { return t.conn.Close() }

// WriteBatch implements Transport.
func (t *UDPTransport) WriteBatch(dgs []Datagram) (int, error) {
	if len(dgs) == 0 {
		return 0, nil
	}
	if t.batch != nil {
		return t.batch.writeBatch(dgs)
	}
	return t.writeLoop(dgs)
}

// writeLoop is the portable fallback: one sendto per datagram.
func (t *UDPTransport) writeLoop(dgs []Datagram) (int, error) {
	for i := range dgs {
		var err error
		if t.connected || !dgs[i].Addr.AP.IsValid() {
			_, err = t.conn.Write(dgs[i].Buf)
		} else {
			_, err = t.conn.WriteToUDPAddrPort(dgs[i].Buf, dgs[i].Addr.AP)
		}
		if err != nil {
			return i, err
		}
	}
	return len(dgs), nil
}

// ReadBatch implements Transport.
func (t *UDPTransport) ReadBatch(dgs []Datagram) (int, error) {
	if len(dgs) == 0 {
		return 0, nil
	}
	if t.batch != nil {
		return t.batch.readBatch(dgs)
	}
	return t.readOne(dgs)
}

// readOne is the portable fallback: a single blocking recvfrom.
func (t *UDPTransport) readOne(dgs []Datagram) (int, error) {
	buf := dgs[0].Buf[:cap(dgs[0].Buf)]
	n, ap, err := t.conn.ReadFromUDPAddrPort(buf)
	if err != nil {
		return 0, err
	}
	dgs[0].Buf = buf[:n]
	dgs[0].Addr = Addr{AP: canonicalAP(ap)}
	return 1, nil
}

// canonicalAP unmaps 4-in-6 addresses so one peer always hashes to one
// session key regardless of socket family.
func canonicalAP(ap netip.AddrPort) netip.AddrPort {
	if ap.Addr().Is4In6() {
		return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	}
	return ap
}
