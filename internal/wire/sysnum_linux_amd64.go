//go:build linux && amd64

package wire

// The frozen stdlib syscall tables predate sendmmsg(2), so the batch
// syscall numbers are spelled out here per architecture.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
