package wire

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// The endpoint tests drive the reliability state machine under a
// virtual clock: emitted frames are captured in slices and shuttled
// (or deliberately dropped, duplicated, reordered) by hand, so every
// loss schedule is exact and no sockets or timers are involved.

type emittedFrame struct {
	h       Header
	payload []byte
}

// collect returns an Emit that snapshots frames (payloads are copied —
// the endpoint owns its buffers).
func collect(out *[]emittedFrame) Emit {
	return func(h Header, payload []byte) {
		*out = append(*out, emittedFrame{h, append([]byte(nil), payload...)})
	}
}

// delivered records in-order deliveries.
type delivered struct {
	typ     Type
	seq     uint32
	payload string
}

func sink(out *[]delivered) Deliver {
	return func(t Type, seq uint32, flags uint8, payload []byte) {
		*out = append(*out, delivered{t, seq, string(payload)})
	}
}

const ms = int64(time.Millisecond)

func TestEndpointInOrderDelivery(t *testing.T) {
	a := NewEndpoint(7, Config{}, nil)
	b := NewEndpoint(7, Config{}, nil)

	var aOut []emittedFrame
	var got []delivered
	emit := collect(&aOut)
	for i := 0; i < 10; i++ {
		seq, err := a.Send(TData, []byte(fmt.Sprintf("pkt-%d", i)), 0, emit)
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if seq != uint32(i+1) {
			t.Fatalf("send %d: seq = %d, want %d", i, seq, i+1)
		}
	}
	if a.InFlight() != 10 {
		t.Fatalf("InFlight = %d, want 10", a.InFlight())
	}

	var bOut []emittedFrame
	for _, f := range aOut {
		b.HandleFrame(f.h, f.payload, 0, sink(&got), collect(&bOut))
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d frames, want 10", len(got))
	}
	for i, d := range got {
		if d.seq != uint32(i+1) || d.payload != fmt.Sprintf("pkt-%d", i) {
			t.Fatalf("delivery %d = %+v", i, d)
		}
	}

	// Ack back: everything releases.
	if !b.AckDue() {
		t.Fatal("receiver owes an ack")
	}
	ackBuf := make([]byte, SackBytes(256))
	var acks []emittedFrame
	b.BuildAck(ackBuf, collect(&acks))
	if len(acks) != 1 || acks[0].h.Type != TAck {
		t.Fatalf("ack frames = %+v", acks)
	}
	a.HandleAck(acks[0].h.Ack, acks[0].payload, 0, emit)
	if a.InFlight() != 0 {
		t.Fatalf("InFlight after ack = %d, want 0", a.InFlight())
	}
}

func TestEndpointLossAndTimedRetransmit(t *testing.T) {
	a := NewEndpoint(7, Config{}, nil)
	b := NewEndpoint(7, Config{}, nil)

	var aOut []emittedFrame
	var got []delivered
	emit := collect(&aOut)
	for i := 0; i < 5; i++ {
		if _, err := a.Send(TResult, []byte{byte(i)}, 0, emit); err != nil {
			t.Fatal(err)
		}
	}

	// Frame 3 is lost; the rest arrive.
	var bOut []emittedFrame
	for _, f := range aOut {
		if f.h.Seq == 3 {
			continue
		}
		b.HandleFrame(f.h, f.payload, 0, sink(&got), collect(&bOut))
	}
	if len(got) != 2 { // 1, 2 delivered; 4, 5 buffered
		t.Fatalf("delivered %d, want 2", len(got))
	}

	// The selective ack marks 4 and 5 so only 3 retransmits.
	ackBuf := make([]byte, SackBytes(256))
	var acks []emittedFrame
	b.BuildAck(ackBuf, collect(&acks))
	if acks[0].h.Ack != 3 {
		t.Fatalf("cumulative ack = %d, want 3", acks[0].h.Ack)
	}
	a.HandleAck(acks[0].h.Ack, acks[0].payload, 0, emit)
	if a.InFlight() != 3 { // 3, 4, 5 unreleased (4, 5 sacked but held)
		t.Fatalf("InFlight = %d, want 3", a.InFlight())
	}

	// Before the RTO nothing fires; after it, exactly seq 3.
	aOut = aOut[:0]
	if !a.Tick(10*ms, emit) {
		t.Fatal("session died prematurely")
	}
	if len(aOut) != 0 {
		t.Fatalf("retransmitted %d frames before RTO", len(aOut))
	}
	if !a.Tick(100*ms, emit) {
		t.Fatal("session died prematurely")
	}
	if len(aOut) != 1 || aOut[0].h.Seq != 3 {
		t.Fatalf("retransmits = %+v, want exactly seq 3", aOut)
	}
	if a.Stats().Retransmits != 1 {
		t.Fatalf("Retransmits = %d, want 1", a.Stats().Retransmits)
	}

	// Delivery of the retransmitted 3 releases the buffered run.
	b.HandleFrame(aOut[0].h, aOut[0].payload, 100*ms, sink(&got), collect(&bOut))
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	for i, d := range got {
		if d.seq != uint32(i+1) || !bytes.Equal([]byte(d.payload), []byte{byte(i)}) {
			t.Fatalf("delivery %d = %+v", i, d)
		}
	}
	acks = acks[:0]
	b.BuildAck(ackBuf, collect(&acks))
	a.HandleAck(acks[0].h.Ack, acks[0].payload, 100*ms, emit)
	if a.InFlight() != 0 {
		t.Fatalf("InFlight = %d, want 0", a.InFlight())
	}
}

func TestEndpointFastRetransmitOnDupAcks(t *testing.T) {
	a := NewEndpoint(7, Config{}, nil)
	var aOut []emittedFrame
	emit := collect(&aOut)
	for i := 0; i < 4; i++ {
		if _, err := a.Send(TData, []byte{byte(i)}, 0, emit); err != nil {
			t.Fatal(err)
		}
	}
	aOut = aOut[:0]

	// Four cumulative acks at 1 (first sets the baseline, three dups):
	// the receiver is stuck missing seq 1.
	for i := 0; i < 4; i++ {
		a.HandleAck(1, nil, 0, emit)
	}
	if len(aOut) != 1 || aOut[0].h.Seq != 1 {
		t.Fatalf("fast retransmit frames = %+v, want seq 1", aOut)
	}
	if a.Stats().FastRetransmits != 1 {
		t.Fatalf("FastRetransmits = %d, want 1", a.Stats().FastRetransmits)
	}
	// Well before the RTO: the timer alone would not have fired.
	aOut = aOut[:0]
	a.Tick(1*ms, emit)
	if len(aOut) != 0 {
		t.Fatalf("timer retransmitted %d frames at 1ms", len(aOut))
	}
}

func TestEndpointReorderWindowOverflow(t *testing.T) {
	cfg := Config{Window: 4}
	a := NewEndpoint(7, cfg, nil)
	b := NewEndpoint(7, cfg, nil)

	var aOut []emittedFrame
	var got []delivered
	var bOut []emittedFrame
	emit := collect(&aOut)

	// Fill the window: seqs 1..4.
	for i := 0; i < 4; i++ {
		if _, err := a.Send(TData, []byte{byte(i)}, 0, emit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Send(TData, nil, 0, emit); err != ErrWindowFull {
		t.Fatalf("Send beyond window = %v, want ErrWindowFull", err)
	}

	// Seq 5 (forged far-ahead arrival) overflows receiver seq space
	// 1..4 and must be dropped un-acked.
	far := Header{Type: TData, Token: 7, Seq: 5, Ack: 1}
	b.HandleFrame(far, []byte{9}, 0, sink(&got), collect(&bOut))
	if b.Stats().OverflowDrops != 1 {
		t.Fatalf("OverflowDrops = %d, want 1", b.Stats().OverflowDrops)
	}
	if len(got) != 0 {
		t.Fatalf("delivered %d, want 0", len(got))
	}

	// The in-window frames deliver normally.
	for _, f := range aOut {
		b.HandleFrame(f.h, f.payload, 0, sink(&got), collect(&bOut))
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d, want 4", len(got))
	}
}

func TestEndpointDuplicateFramesDiscarded(t *testing.T) {
	a := NewEndpoint(7, Config{}, nil)
	b := NewEndpoint(7, Config{}, nil)
	var aOut []emittedFrame
	var got []delivered
	var bOut []emittedFrame
	a.Send(TData, []byte("x"), 0, collect(&aOut))

	b.HandleFrame(aOut[0].h, aOut[0].payload, 0, sink(&got), collect(&bOut))
	b.HandleFrame(aOut[0].h, aOut[0].payload, 0, sink(&got), collect(&bOut))
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1 (duplicate suppressed)", len(got))
	}
	if b.Stats().Dups != 1 {
		t.Fatalf("Dups = %d, want 1", b.Stats().Dups)
	}
	if !b.AckDue() {
		t.Fatal("duplicate must schedule a re-ack")
	}
}

func TestEndpointRetransmitLimitKillsSession(t *testing.T) {
	a := NewEndpoint(7, Config{MaxRetries: 3}, nil)
	var aOut []emittedFrame
	emit := collect(&aOut)
	if _, err := a.Send(TData, []byte("x"), 0, emit); err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	alive := true
	for i := 0; i < 50 && alive; i++ {
		now += int64(2 * time.Second)
		alive = a.Tick(now, emit)
	}
	if alive || !a.Dead() {
		t.Fatal("session survived past the retransmit limit")
	}
	if got := a.Stats().Retransmits; got != 3 {
		t.Fatalf("Retransmits = %d, want 3", got)
	}
	if _, err := a.Send(TData, nil, now, emit); err != ErrSessionDead {
		t.Fatalf("Send on dead session = %v, want ErrSessionDead", err)
	}
}

func TestEndpointRetransmitBackoffAndJitter(t *testing.T) {
	a := NewEndpoint(7, Config{JitterSeed: 42}, nil)
	var aOut []emittedFrame
	emit := collect(&aOut)
	a.Send(TData, []byte("x"), 0, emit)
	aOut = aOut[:0]

	// First retry fires within [RTOBase, RTOBase*1.5); the second only
	// after roughly twice that.
	a.Tick(39*ms, emit)
	if len(aOut) != 0 {
		t.Fatal("retransmitted before RTOBase")
	}
	a.Tick(61*ms, emit)
	if len(aOut) != 1 {
		t.Fatalf("first retry: %d frames, want 1", len(aOut))
	}
	a.Tick(100*ms, emit) // < 61ms + 80ms backoff
	if len(aOut) != 1 {
		t.Fatal("second retry fired before doubled RTO")
	}
	a.Tick(200*ms, emit)
	if len(aOut) != 2 {
		t.Fatalf("second retry missing: %d frames", len(aOut))
	}
}

func TestEndpointSackSuppressesRetransmit(t *testing.T) {
	a := NewEndpoint(7, Config{}, nil)
	var aOut []emittedFrame
	emit := collect(&aOut)
	for i := 0; i < 3; i++ {
		a.Send(TData, []byte{byte(i)}, 0, emit)
	}
	aOut = aOut[:0]

	// Receiver has 2 and 3 but not 1: cum ack 1, sack bits 0 and 1.
	a.HandleAck(1, []byte{0b11}, 0, emit)
	a.Tick(2_000*ms, emit)
	// Only seq 1 retries; 2 and 3 are sacked.
	if len(aOut) != 1 || aOut[0].h.Seq != 1 {
		t.Fatalf("retransmits = %+v, want only seq 1", aOut)
	}
}

func TestEndpointAckBeyondSentIgnored(t *testing.T) {
	a := NewEndpoint(7, Config{}, nil)
	var aOut []emittedFrame
	emit := collect(&aOut)
	a.Send(TData, []byte("x"), 0, emit)
	a.HandleAck(99, nil, 0, emit) // forged: nothing sent that far
	if a.InFlight() != 1 {
		t.Fatalf("forged ack released frames: InFlight = %d", a.InFlight())
	}
}

func TestEndpointPayloadTooLarge(t *testing.T) {
	a := NewEndpoint(7, Config{}, nil)
	var aOut []emittedFrame
	big := make([]byte, MaxFramePayload+1)
	if _, err := a.Send(TData, big, 0, collect(&aOut)); err != ErrPayloadSplit {
		t.Fatalf("oversized Send = %v, want ErrPayloadSplit", err)
	}
}

func TestSackBitmapRoundTrip(t *testing.T) {
	b := NewEndpoint(7, Config{}, nil)
	var got []delivered
	var bOut []emittedFrame
	// Receive 2, 4, 65, 66 (1 missing): bitmap marks offsets 0, 2, 63.
	for _, seq := range []uint32{2, 4, 65} {
		h := Header{Type: TData, Token: 7, Seq: seq, Ack: 1}
		b.HandleFrame(h, nil, 0, sink(&got), collect(&bOut))
	}
	ackBuf := make([]byte, SackBytes(256))
	var acks []emittedFrame
	b.BuildAck(ackBuf, collect(&acks))
	if acks[0].h.Ack != 1 {
		t.Fatalf("cum ack = %d, want 1", acks[0].h.Ack)
	}
	sack := acks[0].payload
	if len(sack) != SackBytes(256) {
		t.Fatalf("sack bitmap = %d bytes, want %d", len(sack), SackBytes(256))
	}
	// LSB-first: bit i covers seq cum+1+i.
	if sack[0] != 1<<0|1<<2 {
		t.Fatalf("sack[0] = %#08b, want bits 0 and 2 (seqs 2 and 4)", sack[0])
	}
	if sack[7] != 1<<7 {
		t.Fatalf("sack[7] = %#08b, want bit 7 (seq 65)", sack[7])
	}
	for i, by := range sack {
		if i != 0 && i != 7 && by != 0 {
			t.Fatalf("sack[%d] = %#08b, want 0", i, by)
		}
	}
}

// TestEndpointWindowWrap pushes the seq space through several window
// revolutions to exercise the int32 wraparound comparisons.
func TestEndpointWindowWrap(t *testing.T) {
	cfg := Config{Window: 8}
	a := NewEndpoint(7, cfg, nil)
	b := NewEndpoint(7, cfg, nil)
	var got []delivered
	ackBuf := make([]byte, SackBytes(256))

	next := byte(0)
	for round := 0; round < 100; round++ {
		var aOut []emittedFrame
		emit := collect(&aOut)
		for i := 0; i < 8; i++ {
			if _, err := a.Send(TData, []byte{next}, 0, emit); err != nil {
				t.Fatalf("round %d send %d: %v", round, i, err)
			}
			next++
		}
		var bOut []emittedFrame
		for _, f := range aOut {
			b.HandleFrame(f.h, f.payload, 0, sink(&got), collect(&bOut))
		}
		var acks []emittedFrame
		b.BuildAck(ackBuf, collect(&acks))
		a.HandleAck(acks[0].h.Ack, acks[0].payload, 0, emit)
		if a.InFlight() != 0 {
			t.Fatalf("round %d: InFlight = %d", round, a.InFlight())
		}
	}
	if len(got) != 800 {
		t.Fatalf("delivered %d, want 800", len(got))
	}
	for i, d := range got {
		if d.payload != string([]byte{byte(i)}) {
			t.Fatalf("delivery %d out of order", i)
		}
	}
}
