package wire

import (
	"encoding/binary"

	"dpiservice/internal/packet"
)

// PutDataHdr encodes the chain tag and five-tuple into b, which must
// hold DataHdrLen bytes.
//
//dpi:hotpath
func PutDataHdr(b []byte, tag uint16, tuple packet.FiveTuple) {
	_ = b[DataHdrLen-1]
	binary.BigEndian.PutUint16(b[0:2], tag)
	copy(b[2:6], tuple.Src[:])
	copy(b[6:10], tuple.Dst[:])
	binary.BigEndian.PutUint16(b[10:12], tuple.SrcPort)
	binary.BigEndian.PutUint16(b[12:14], tuple.DstPort)
	b[14] = tuple.Protocol
}

// ParseDataHdr decodes a TData (or TVerdict) subheader; rest aliases b.
//
//dpi:hotpath
func ParseDataHdr(b []byte) (tag uint16, tuple packet.FiveTuple, rest []byte, err error) {
	if len(b) < DataHdrLen {
		return 0, tuple, nil, ErrShortFrame
	}
	tag = binary.BigEndian.Uint16(b[0:2])
	copy(tuple.Src[:], b[2:6])
	copy(tuple.Dst[:], b[6:10])
	tuple.SrcPort = binary.BigEndian.Uint16(b[10:12])
	tuple.DstPort = binary.BigEndian.Uint16(b[12:14])
	tuple.Protocol = b[14]
	return tag, tuple, b[DataHdrLen:], nil
}

// AppendData builds a TData frame payload: subheader plus packet bytes.
//
//dpi:hotpath
func AppendData(dst []byte, tag uint16, tuple packet.FiveTuple, payload []byte) []byte {
	var hdr [DataHdrLen]byte
	PutDataHdr(hdr[:], tag, tuple)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// PutTraceExt encodes the in-band trace context into b, which must hold
// TraceExtLen bytes.
//
//dpi:hotpath
func PutTraceExt(b []byte, traceID uint64, pktIdx uint32) {
	_ = b[TraceExtLen-1]
	binary.BigEndian.PutUint64(b[0:8], traceID)
	binary.BigEndian.PutUint32(b[8:12], pktIdx)
}

// ParseTraceExt decodes the trace context that follows the data
// subheader of a FlagTrace frame; rest aliases b.
//
//dpi:hotpath
func ParseTraceExt(b []byte) (traceID uint64, pktIdx uint32, rest []byte, err error) {
	if len(b) < TraceExtLen {
		return 0, 0, nil, ErrShortFrame
	}
	traceID = binary.BigEndian.Uint64(b[0:8])
	pktIdx = binary.BigEndian.Uint32(b[8:12])
	return traceID, pktIdx, b[TraceExtLen:], nil
}

// AppendDataTraced builds a TData/TVerdict frame payload carrying the
// trace extension: subheader, trace context, then packet bytes. The
// matching frame must be sent with FlagTrace so receivers parse the
// extension.
//
//dpi:hotpath
func AppendDataTraced(dst []byte, tag uint16, tuple packet.FiveTuple, traceID uint64, pktIdx uint32, payload []byte) []byte {
	var hdr [DataHdrLen + TraceExtLen]byte
	PutDataHdr(hdr[:DataHdrLen], tag, tuple)
	PutTraceExt(hdr[DataHdrLen:], traceID, pktIdx)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}
