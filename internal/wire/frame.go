// Package wire is the real network transport of the DPI service: a
// length-prefixed framed codec with version, type and session fields
// shared by the data and control planes, a reliable seq/ack channel
// with jittered retransmission and an in-order reorder window for
// result frames, and batched datagram I/O (sendmmsg/recvmmsg-shaped,
// with a portable fallback) behind a Transport interface that both a
// real UDP socket and the deterministic netsim fabric satisfy.
//
// The paper's premise is that DPI becomes a *service*: middleboxes,
// DPI instances and the controller are separate machines joined by a
// network (Section 4). Package netsim simulates that network inside one
// process for tests; package wire is what the standalone daemons
// (cmd/dpictl, cmd/dpinstance, cmd/mboxd, cmd/trafficgen) speak when
// they run as genuinely separate OS processes.
package wire

import (
	"encoding/binary"
	"errors"
)

// Version is the wire protocol version stamped into every frame.
const Version = 1

// Type discriminates frames.
type Type uint8

// Frame types. Data, Result and Verdict frames ride the reliable
// channel (seq/ack, retransmitted); Hello carries its own retry loop
// and Ack frames are pure feedback.
const (
	// THello opens a session: the header token authenticates the
	// sender, the payload is its textual identity. Retransmitted by the
	// client until THelloAck arrives.
	THello Type = 1 + iota
	// THelloAck confirms a session. Seq echoes the Hello seq.
	THelloAck
	// TData carries one packet toward a DPI instance: a data subheader
	// (chain tag + five-tuple) followed by the payload. Reliable.
	TData
	// TResult answers one TData frame: 4 bytes echoing the data frame's
	// seq, then the encoded match report (empty = no matches). Reliable.
	TResult
	// TVerdict forwards one non-empty match verdict from a DPI instance
	// to a middlebox consumer: chain tag + five-tuple + encoded report.
	// Reliable.
	TVerdict
	// TAck acknowledges reliable frames: the header Ack field is the
	// cumulative ack, the payload a variable-length LSB-first
	// selective-ack bitmap where bit i covers seq Ack+1+i.
	TAck
)

// reliable reports whether frames of type t use the seq/ack channel.
//
//dpi:hotpath
func reliable(t Type) bool { return t == TData || t == TResult || t == TVerdict }

// HeaderLen is the fixed frame header size.
//
// Layout (big-endian):
//
//	off size field
//	0   1    version
//	1   1    type
//	2   1    flags (reserved, zero)
//	3   1    reserved (zero)
//	4   8    session token
//	12  4    seq
//	16  4    ack (cumulative: all seqs below it received)
//	20  4    payload length
//
// The explicit length makes frames self-delimiting, so several can be
// packed into one datagram and the identical codec runs over stream
// transports (the ctlproto control plane frames its JSON envelopes the
// same way).
const HeaderLen = 24

// MaxFramePayload bounds one frame's payload on the datagram planes —
// a jumbo-frame budget; bigger app payloads must be split by the
// caller. Stream consumers (the control plane) pass their own larger
// bound to ParseHeader.
const MaxFramePayload = 16 << 10

// MaxDatagram is the buffer size ReadBatch callers must provide: the
// largest frame plus headroom for small frames packed in front of it.
const MaxDatagram = MaxFramePayload + 512

// Codec errors.
var (
	ErrBadVersion   = errors.New("wire: unsupported frame version")
	ErrBadType      = errors.New("wire: unknown frame type")
	ErrShortFrame   = errors.New("wire: truncated frame")
	ErrFrameTooBig  = errors.New("wire: frame payload exceeds limit")
	ErrBadToken     = errors.New("wire: session token rejected")
	ErrWindowFull   = errors.New("wire: send window full")
	ErrSessionDead  = errors.New("wire: session dead (retransmit limit)")
	ErrClosed       = errors.New("wire: closed")
	ErrNoSession    = errors.New("wire: no session established")
	ErrPayloadSplit = errors.New("wire: payload exceeds MaxFramePayload")
)

// Header is one decoded frame header.
type Header struct {
	Version uint8
	Type    Type
	Flags   uint8
	Token   uint64
	Seq     uint32
	Ack     uint32
	Length  uint32
}

// PutHeader encodes h into b, which must hold HeaderLen bytes.
//
//dpi:hotpath
func PutHeader(b []byte, h Header) {
	_ = b[HeaderLen-1]
	b[0] = h.Version
	b[1] = uint8(h.Type)
	b[2] = h.Flags
	b[3] = 0
	binary.BigEndian.PutUint64(b[4:12], h.Token)
	binary.BigEndian.PutUint32(b[12:16], h.Seq)
	binary.BigEndian.PutUint32(b[16:20], h.Ack)
	binary.BigEndian.PutUint32(b[20:24], h.Length)
}

// AppendFrame appends a complete frame (header + payload) to dst.
//
//dpi:hotpath
func AppendFrame(dst []byte, h Header, payload []byte) []byte {
	h.Version = Version
	h.Length = uint32(len(payload))
	var hdr [HeaderLen]byte
	PutHeader(hdr[:], h)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ParseHeader decodes one header from b and validates version, type
// and the payload length against maxPayload.
//
//dpi:hotpath
func ParseHeader(b []byte, maxPayload uint32) (Header, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, ErrShortFrame
	}
	h.Version = b[0]
	h.Type = Type(b[1])
	h.Flags = b[2]
	h.Token = binary.BigEndian.Uint64(b[4:12])
	h.Seq = binary.BigEndian.Uint32(b[12:16])
	h.Ack = binary.BigEndian.Uint32(b[16:20])
	h.Length = binary.BigEndian.Uint32(b[20:24])
	if h.Version != Version {
		return h, ErrBadVersion
	}
	if h.Type < THello || h.Type > TAck {
		return h, ErrBadType
	}
	if h.Length > maxPayload {
		return h, ErrFrameTooBig
	}
	return h, nil
}

// NextFrame decodes the first frame in b and returns the remainder —
// the datagram iteration primitive. payload aliases b.
//
//dpi:hotpath
func NextFrame(b []byte) (h Header, payload, rest []byte, err error) {
	h, err = ParseHeader(b, MaxFramePayload)
	if err != nil {
		return h, nil, nil, err
	}
	end := HeaderLen + int(h.Length)
	if len(b) < end {
		return h, nil, nil, ErrShortFrame
	}
	return h, b[HeaderLen:end], b[end:], nil
}

// Frame flag bits (Header.Flags).
const (
	// FlagTrace marks a TData/TVerdict frame whose payload carries a
	// trace extension (TraceExtLen bytes) between the data subheader and
	// the application bytes: the packet belongs to a sampled flow and
	// every stage it crosses records spans under the carried trace ID.
	// The flag is stored per send slot, so retransmissions re-emit it.
	FlagTrace uint8 = 1 << 0
)

// TraceExtLen is the in-band trace context size: an 8-byte trace ID
// followed by a 4-byte per-flow packet index, both big-endian. Present
// only when FlagTrace is set.
const TraceExtLen = 12

// Data subheader: chain tag and five-tuple in front of a TData payload,
// identical to the TCP data plane's framing.
//
//	off size field
//	0   2    chain tag
//	2   4    src IPv4
//	6   4    dst IPv4
//	10  2    src port
//	12  2    dst port
//	14  1    protocol
const DataHdrLen = 15

// ResultHdrLen prefixes a TResult payload: the echoed TData seq that
// this result answers, so results pair with packets independent of
// scan completion order.
const ResultHdrLen = 4
