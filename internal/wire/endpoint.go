package wire

import "time"

// This file is the reliability core: one Endpoint per session side,
// owning an outgoing reliable stream (seq assignment, retransmission
// with exponential backoff and jitter, fast retransmit on duplicate
// acks) and an incoming reorder window (in-order delivery, duplicate
// suppression, selective acks). It is a pure state machine: the caller
// supplies the clock as nanoseconds and an emit callback that stages
// outgoing frames, so the whole protocol is testable under a virtual
// clock with no sockets and runs identically over UDP and netsim.
// Result frames must not be silently lost — fail-closed middlebox
// consumers drop traffic whose verdicts never arrive — so everything
// on the reliable channel is retransmitted until acked or the session
// is declared dead.
//
// An Endpoint is not internally synchronized; its owner (Conn or
// Server session) serializes calls under one mutex.

// Config tunes a session endpoint. The zero value selects defaults.
type Config struct {
	// Window is the send window and reorder window size in frames
	// (default 256). Frames arriving more than Window ahead of the next
	// expected seq are dropped (reorder-window overflow) and recovered
	// by sender retransmission.
	Window int
	// RTOBase is the initial retransmit timeout (default 40ms); each
	// retry doubles it up to RTOMax (default 1s), plus up to half
	// RTOBase of deterministic jitter so retransmit storms decorrelate.
	RTOBase time.Duration
	RTOMax  time.Duration
	// MaxRetries kills the session after this many retransmissions of a
	// single frame (default 12 — about 30 s of backoff).
	MaxRetries int
	// JitterSeed seeds the retransmit jitter generator (default 1);
	// tests fix it for reproducible schedules.
	JitterSeed uint64
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.RTOBase <= 0 {
		c.RTOBase = 40 * time.Millisecond
	}
	if c.RTOMax <= 0 {
		c.RTOMax = time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 12
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
}

// SackBytes returns the TAck bitmap size covering a window: one bit
// per seq past the cumulative ack. Ack buffers passed to BuildAck are
// sized with it, so selective acks span the entire send window — a
// short bitmap would force needless timer retransmits of received
// frames during a head-of-window stall.
func SackBytes(window int) int { return (window + 6) / 8 }

// Stats are an endpoint's protocol counters.
type Stats struct {
	Sent            uint64 // reliable frames first-sent
	Delivered       uint64 // reliable frames delivered in order
	Retransmits     uint64 // frames re-emitted (timer and fast)
	FastRetransmits uint64 // subset triggered by duplicate acks
	Dups            uint64 // duplicate frames received and discarded
	OverflowDrops   uint64 // frames beyond the reorder window
	AcksSent        uint64
}

type sendSlot struct {
	buf     []byte // frame payload; cap MaxFramePayload, set at setup
	seq     uint32
	typ     Type
	flags   uint8 // header flags, re-emitted on every retransmission
	sentAt  int64 // nanoseconds of last (re)transmission
	retries int
	inUse   bool
	sacked  bool // selectively acked; held until cumulative ack passes
}

type recvSlot struct {
	buf     []byte
	seq     uint32
	typ     Type
	flags   uint8
	present bool
}

// Emit stages one outgoing frame; the payload is owned by the endpoint
// and valid only until the next endpoint call.
type Emit func(h Header, payload []byte)

// Deliver hands one in-order reliable frame up; the payload is owned
// by the endpoint and valid only during the call. flags are the frame's
// header flags (FlagTrace marks an in-band trace extension).
type Deliver func(t Type, seq uint32, flags uint8, payload []byte)

// Endpoint is one side's reliable-channel state for a session.
type Endpoint struct {
	cfg   Config
	token uint64 // stamped into every emitted frame

	// Send state. seqs sendBase..sendSeq-1 are in flight.
	sendSeq  uint32
	sendBase uint32
	send     []sendSlot
	dupAcks  int
	lastCum  uint32
	fastSeq  uint32 // last seq fast-retransmitted; fires once per stall
	dead     bool

	// Receive state. recvNext is the next seq to deliver.
	recvNext  uint32
	recv      []recvSlot
	ackNeeded bool

	rng uint64 // xorshift64 jitter state

	stats Stats
	met   *Metrics
}

// NewEndpoint builds a session endpoint stamping token on every frame.
// All buffers are allocated here; the per-frame paths are allocation
// free. met may be nil.
func NewEndpoint(token uint64, cfg Config, met *Metrics) *Endpoint {
	cfg.defaults()
	//dpi:coldalloc(endpoint setup: window buffers preallocated once per session)
	e := &Endpoint{
		cfg:      cfg,
		token:    token,
		sendSeq:  1,
		sendBase: 1,
		recvNext: 1,
		rng:      cfg.JitterSeed,
		met:      met,
	}
	//dpi:coldalloc(endpoint setup: window buffers preallocated once per session)
	e.send = make([]sendSlot, cfg.Window)
	//dpi:coldalloc(endpoint setup: window buffers preallocated once per session)
	e.recv = make([]recvSlot, cfg.Window)
	for i := range e.send {
		//dpi:coldalloc(endpoint setup: window buffers preallocated once per session)
		e.send[i].buf = make([]byte, 0, MaxFramePayload)
	}
	for i := range e.recv {
		//dpi:coldalloc(endpoint setup: window buffers preallocated once per session)
		e.recv[i].buf = make([]byte, 0, MaxFramePayload)
	}
	return e
}

// Stats returns a snapshot of the protocol counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Dead reports whether the session hit its retransmit limit.
func (e *Endpoint) Dead() bool { return e.dead }

// InFlight returns the number of unacked reliable frames.
func (e *Endpoint) InFlight() int { return int(e.sendSeq - e.sendBase) }

// Token returns the session token this endpoint stamps on frames.
func (e *Endpoint) Token() uint64 { return e.token }

// xorshift advances the jitter generator.
//
//dpi:hotpath
func (e *Endpoint) xorshift() uint64 {
	x := e.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	e.rng = x
	return x
}

// rto returns the jittered timeout for a frame on its nth retry.
//
//dpi:hotpath
func (e *Endpoint) rto(retries int) int64 {
	d := int64(e.cfg.RTOBase) << uint(retries)
	if max := int64(e.cfg.RTOMax); d > max || d <= 0 {
		d = max
	}
	jitterSpan := int64(e.cfg.RTOBase) / 2
	if jitterSpan > 0 {
		d += int64(e.xorshift() % uint64(jitterSpan))
	}
	return d
}

// Send places payload on the reliable channel as a frame of type t and
// emits it. The payload is copied; the caller keeps ownership. It
// fails with ErrWindowFull when Window frames are unacked (the caller
// applies backpressure) and ErrSessionDead once the retransmit limit
// has been hit.
//
//dpi:hotpath
func (e *Endpoint) Send(t Type, payload []byte, now int64, emit Emit) (uint32, error) {
	return e.SendEx(t, 0, payload, now, emit)
}

// SendEx is Send with explicit header flags. The flags are stored with
// the send slot, so every retransmission of the frame carries them —
// an in-band trace extension (FlagTrace) survives loss and recovery.
//
//dpi:hotpath
func (e *Endpoint) SendEx(t Type, flags uint8, payload []byte, now int64, emit Emit) (uint32, error) {
	if e.dead {
		return 0, ErrSessionDead
	}
	if len(payload) > MaxFramePayload {
		return 0, ErrPayloadSplit
	}
	if int(e.sendSeq-e.sendBase) >= e.cfg.Window {
		return 0, ErrWindowFull
	}
	seq := e.sendSeq
	e.sendSeq++
	s := &e.send[int(seq)%e.cfg.Window]
	s.buf = append(s.buf[:0], payload...)
	s.seq = seq
	s.typ = t
	s.flags = flags
	s.sentAt = now
	s.retries = 0
	s.inUse = true
	s.sacked = false
	e.stats.Sent++
	emit(Header{Type: t, Flags: flags, Token: e.token, Seq: seq, Ack: e.recvNext}, s.buf)
	return seq, nil
}

// handleCumAck releases every slot below ack. countDup is set only for
// explicit TAck frames: frames coalesced into one datagram all carry
// the same piggybacked ack, so counting those as "duplicate acks"
// would fire a spurious fast retransmit on every batch.
//
//dpi:hotpath
func (e *Endpoint) handleCumAck(ack uint32, now int64, emit Emit, countDup bool) {
	if int32(ack-e.sendSeq) > 0 { // beyond anything sent: ignore
		return
	}
	advanced := false
	for int32(ack-e.sendBase) > 0 {
		s := &e.send[int(e.sendBase)%e.cfg.Window]
		if s.inUse && s.seq == e.sendBase {
			s.inUse = false
			s.sacked = false
		}
		e.sendBase++
		advanced = true
	}
	if advanced {
		e.dupAcks = 0
		e.lastCum = ack
		return
	}
	if countDup && ack == e.lastCum && e.sendBase == ack && e.InFlight() > 0 {
		e.dupAcks++
		// Three duplicate acks mean later frames are arriving while the
		// base is missing: retransmit it early — but only once per stall
		// (fastSeq); further dup acks are just more of the same evidence
		// and the timer covers a lost retransmission.
		if e.dupAcks >= 3 && e.fastSeq != e.sendBase {
			e.dupAcks = 0
			s := &e.send[int(e.sendBase)%e.cfg.Window]
			if s.inUse && s.seq == e.sendBase && !s.sacked {
				e.fastSeq = s.seq
				s.sentAt = now
				s.retries++
				e.stats.Retransmits++
				e.stats.FastRetransmits++
				e.met.addRetransmit()
				e.met.flightRetransmit(s.seq, s.retries)
				emit(Header{Type: s.typ, Flags: s.flags, Token: e.token, Seq: s.seq, Ack: e.recvNext}, s.buf)
			}
		}
		return
	}
	e.lastCum = ack
	if !countDup {
		return
	}
	e.dupAcks = 0
}

// HandleAck processes a TAck frame: the cumulative ack plus the
// selective bitmap payload (bit i, LSB-first within each byte, marks
// seq cum+1+i as received).
//
//dpi:hotpath
func (e *Endpoint) HandleAck(cum uint32, sack []byte, now int64, emit Emit) {
	e.handleCumAck(cum, now, emit, true)
	for b := 0; b < len(sack); b++ {
		bits := sack[b]
		if bits == 0 {
			continue
		}
		for j := 0; j < 8; j++ {
			if bits&(1<<uint(j)) == 0 {
				continue
			}
			seq := cum + 1 + uint32(8*b+j)
			if int32(seq-e.sendBase) < 0 || int32(seq-e.sendSeq) >= 0 {
				continue
			}
			s := &e.send[int(seq)%e.cfg.Window]
			if s.inUse && s.seq == seq {
				s.sacked = true
			}
		}
	}
}

// HandleFrame processes one incoming reliable frame: its piggybacked
// cumulative ack, then the seq against the reorder window. In-order
// frames (and any buffered successors they release) are handed to
// deliver; duplicates and frames beyond the window are dropped and
// counted. Every accepted or duplicate frame schedules an ack.
//
//dpi:hotpath
func (e *Endpoint) HandleFrame(h Header, payload []byte, now int64, deliver Deliver, emit Emit) {
	e.handleCumAck(h.Ack, now, emit, false)
	d := int32(h.Seq - e.recvNext)
	switch {
	case d < 0: // already delivered: re-ack so the sender releases it
		e.stats.Dups++
		e.met.addDup()
		e.ackNeeded = true
		return
	case int(d) >= e.cfg.Window: // beyond the reorder window
		e.stats.OverflowDrops++
		e.met.addOverflow()
		// Not acked: the sender retransmits once the window has moved.
		return
	}
	s := &e.recv[int(h.Seq)%e.cfg.Window]
	if s.present {
		e.stats.Dups++
		e.met.addDup()
		e.ackNeeded = true
		return
	}
	s.buf = append(s.buf[:0], payload...)
	s.seq = h.Seq
	s.typ = h.Type
	s.flags = h.Flags
	s.present = true
	e.ackNeeded = true
	// Drain the in-order run this frame may have completed.
	for {
		n := &e.recv[int(e.recvNext)%e.cfg.Window]
		if !n.present || n.seq != e.recvNext {
			return
		}
		n.present = false
		e.recvNext++
		e.stats.Delivered++
		deliver(n.typ, n.seq, n.flags, n.buf)
	}
}

// Tick retransmits every timed-out unacked frame and reports whether
// the session is still alive. Call it periodically (a fraction of
// RTOBase).
//
//dpi:hotpath
func (e *Endpoint) Tick(now int64, emit Emit) bool {
	if e.dead {
		return false
	}
	for seq := e.sendBase; int32(seq-e.sendSeq) < 0; seq++ {
		s := &e.send[int(seq)%e.cfg.Window]
		if !s.inUse || s.seq != seq || s.sacked {
			continue
		}
		if now-s.sentAt < e.rto(s.retries) {
			continue
		}
		if s.retries >= e.cfg.MaxRetries {
			e.dead = true
			e.met.flightSessionDead(e.token, true)
			return false
		}
		s.sentAt = now
		s.retries++
		e.stats.Retransmits++
		e.met.addRetransmit()
		e.met.flightRetransmit(s.seq, s.retries)
		emit(Header{Type: s.typ, Flags: s.flags, Token: e.token, Seq: s.seq, Ack: e.recvNext}, s.buf)
	}
	return true
}

// AckDue reports whether received frames are waiting to be acked.
func (e *Endpoint) AckDue() bool { return e.ackNeeded }

// BuildAck emits a TAck frame — cumulative ack in the header, the
// selective bitmap as payload — and clears the ack-due flag. ackBuf
// must hold SackBytes(Window) bytes; the bitmap spans as much of the
// reorder window as fits in it.
//
//dpi:hotpath
func (e *Endpoint) BuildAck(ackBuf []byte, emit Emit) {
	span := e.cfg.Window - 1
	if span > 8*len(ackBuf) {
		span = 8 * len(ackBuf)
	}
	buf := ackBuf[:(span+7)/8]
	for i := range buf {
		buf[i] = 0
	}
	for i := 0; i < span; i++ {
		s := &e.recv[int(e.recvNext+1+uint32(i))%e.cfg.Window]
		if s.present && s.seq == e.recvNext+1+uint32(i) {
			buf[i/8] |= 1 << uint(i%8)
		}
	}
	e.ackNeeded = false
	e.stats.AcksSent++
	e.met.addAck()
	emit(Header{Type: TAck, Token: e.token, Ack: e.recvNext}, buf)
}
