//go:build linux && arm64

package wire

// The frozen stdlib syscall tables predate sendmmsg(2), so the batch
// syscall numbers are spelled out here per architecture.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
