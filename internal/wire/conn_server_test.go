package wire

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dpiservice/internal/netsim"
	"dpiservice/internal/packet"
)

// testKey is the fixed cluster key of the in-process tests.
const testKey = uint64(0xfeedfacecafebeef)

// testCfg shrinks timers so loss recovery happens in test time.
var testCfg = Config{RTOBase: 10 * time.Millisecond, RTOMax: 100 * time.Millisecond, JitterSeed: 7}

var testTuple = packet.FiveTuple{
	Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{198, 51, 100, 7},
	SrcPort: 40000, DstPort: 80, Protocol: 6,
}

// resultSink collects results concurrently with the receive loop.
type resultSink struct {
	mu      sync.Mutex
	results map[uint32]string
}

func newResultSink() *resultSink { return &resultSink{results: make(map[uint32]string)} }

func (r *resultSink) add(seq uint32, report []byte) {
	r.mu.Lock()
	r.results[seq] = string(report)
	r.mu.Unlock()
}

func (r *resultSink) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.results)
}

func (r *resultSink) get(seq uint32) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.results[seq]
	return s, ok
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// echoServer answers every TData with a TResult echoing the payload
// uppercased-by-position (cheap but position-sensitive, so corruption
// or mispairing shows).
func echoServer(t *testing.T, tr Transport, met *Metrics) *Server {
	t.Helper()
	srv := NewServer(tr, testKey, testCfg, met)
	srv.OnData(func(s *Session, seq uint32, tag uint16, tuple packet.FiveTuple, payload []byte) {
		if tuple != testTuple {
			t.Errorf("tuple = %+v", tuple)
		}
		report := []byte(fmt.Sprintf("match:%d:%s", tag, payload))
		if err := s.SendResult(seq, report); err != nil {
			t.Errorf("SendResult: %v", err)
		}
	})
	srv.Start()
	return srv
}

// runExchange pushes n packets through the client and asserts every
// one's result arrives and pairs correctly.
func runExchange(t *testing.T, c *Conn, n int, sink *resultSink, seqs map[int]uint32) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq, err := c.SendData(3, testTuple, []byte(fmt.Sprintf("pkt-%05d", i)))
		if err != nil {
			t.Fatalf("SendData %d: %v", i, err)
		}
		seqs[i] = seq
	}
	c.Flush()
	if err := c.WaitIdle(20 * time.Second); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	waitFor(t, 20*time.Second, "all results", func() bool { return sink.len() >= n })
	for i := 0; i < n; i++ {
		got, ok := sink.get(seqs[i])
		want := fmt.Sprintf("match:3:pkt-%05d", i)
		if !ok || got != want {
			t.Fatalf("result %d = %q (ok=%v), want %q", i, got, ok, want)
		}
	}
}

func newNetsimPair(t *testing.T) (*Conn, *Server, *resultSink, *netsim.Network) {
	t.Helper()
	nw := netsim.NewNetwork()
	ct := NewNetsimTransport("client")
	st := NewNetsimTransport("server")
	if err := nw.AddNode(ct); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddNode(st); err != nil {
		t.Fatal(err)
	}
	if err := nw.Connect(ct, st, netsim.LinkOpts{}); err != nil {
		t.Fatal(err)
	}
	srv := echoServer(t, st, nil)
	sink := newResultSink()
	c := NewConn(ct, IssueToken(testKey, 1), "tg-1", testCfg, nil)
	c.OnResult(sink.add)
	t.Cleanup(func() {
		c.Close()
		srv.Close()
		nw.Stop()
	})
	return c, srv, sink, nw
}

func TestWireOverNetsim(t *testing.T) {
	c, srv, sink, _ := newNetsimPair(t)
	if err := c.Start(5 * time.Second); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	waitFor(t, 5*time.Second, "server session", func() bool { return srv.SessionCount() == 1 })
	runExchange(t, c, 200, sink, make(map[int]uint32))
	if st := c.Stats(); st.Delivered == 0 || st.Sent != 200 {
		t.Fatalf("client stats = %+v", st)
	}
}

func TestWireOverNetsimChaos(t *testing.T) {
	c, _, sink, nw := newNetsimPair(t)
	nw.SetChaosSeed(1234)
	fault := netsim.Fault{DropProb: 0.05, DupProb: 0.05, ReorderProb: 0.1}
	nw.SetLinkFault("client", "server", fault)
	nw.SetLinkFault("server", "client", fault)
	if err := c.Start(10 * time.Second); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	runExchange(t, c, 300, sink, make(map[int]uint32))
	cs := nw.ChaosStats()
	if cs.Dropped == 0 || cs.Reordered == 0 {
		t.Fatalf("chaos never fired: %+v", cs)
	}
	if st := c.Stats(); st.Retransmits == 0 {
		t.Fatalf("no retransmits despite %d drops: %+v", cs.Dropped, st)
	}
}

func TestWireOverUDP(t *testing.T) {
	st, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := echoServer(t, st, nil)
	ct, err := DialUDP(st.LocalAddr().AP.String())
	if err != nil {
		t.Fatal(err)
	}
	sink := newResultSink()
	c := NewConn(ct, IssueToken(testKey, 2), "tg-udp", testCfg, nil)
	c.OnResult(sink.add)
	t.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	if err := c.Start(5 * time.Second); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	runExchange(t, c, 500, sink, make(map[int]uint32))
}

func TestWireVerdictPath(t *testing.T) {
	// The instance→middlebox direction: a client forwards verdicts, the
	// server (mboxd) consumes them.
	st, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type verdict struct {
		tag    uint16
		tuple  packet.FiveTuple
		report string
	}
	var mu sync.Mutex
	var got []verdict
	srv := NewServer(st, testKey, testCfg, nil)
	srv.OnVerdict(func(s *Session, tag uint16, tuple packet.FiveTuple, report []byte) {
		mu.Lock()
		got = append(got, verdict{tag, tuple, string(report)})
		mu.Unlock()
	})
	srv.Start()

	ct, err := DialUDP(st.LocalAddr().AP.String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(ct, IssueToken(testKey, 9), "inst-1", testCfg, nil)
	t.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	if err := c.Start(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := c.SendVerdict(uint16(i), testTuple, []byte(fmt.Sprintf("rule-%d", i))); err != nil {
			t.Fatalf("SendVerdict %d: %v", i, err)
		}
	}
	c.Flush()
	if err := c.WaitIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "verdicts", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 50
	})
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v.tag != uint16(i) || v.tuple != testTuple || v.report != fmt.Sprintf("rule-%d", i) {
			t.Fatalf("verdict %d = %+v", i, v)
		}
	}
}

func TestWireBadTokenRejected(t *testing.T) {
	st, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, testKey, testCfg, nil)
	srv.Start()
	ct, err := DialUDP(st.LocalAddr().AP.String())
	if err != nil {
		t.Fatal(err)
	}
	// Token minted under the wrong key: hello must never complete.
	c := NewConn(ct, IssueToken(testKey^1, 1), "intruder", testCfg, nil)
	t.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	if err := c.Start(300 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("Start with forged token = %v, want ErrTimeout", err)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("server accepted %d forged sessions", n)
	}
}

func TestWireSessionRestartReplaces(t *testing.T) {
	// A client restarting on the same source address with a fresh token
	// must take the session over (the SIGKILL-and-restart case), not be
	// mistaken for the old peer.
	st, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := echoServer(t, st, nil)
	t.Cleanup(func() { srv.Close() })
	ra, err := net.ResolveUDPAddr("udp", st.LocalAddr().AP.String())
	if err != nil {
		t.Fatal(err)
	}

	conn1, err := net.DialUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}, ra)
	if err != nil {
		t.Fatal(err)
	}
	clientPort := conn1.LocalAddr().(*net.UDPAddr).Port
	sink1 := newResultSink()
	c1 := NewConn(newUDPTransport(conn1, true), IssueToken(testKey, 11), "tg-a", testCfg, nil)
	c1.OnResult(sink1.add)
	if err := c1.Start(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	runExchange(t, c1, 10, sink1, make(map[int]uint32))
	c1.Close() // releases the port

	conn2, err := net.DialUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: clientPort}, ra)
	if err != nil {
		t.Fatal(err)
	}
	sink2 := newResultSink()
	c2 := NewConn(newUDPTransport(conn2, true), IssueToken(testKey, 12), "tg-a-reborn", testCfg, nil)
	c2.OnResult(sink2.add)
	t.Cleanup(func() { c2.Close() })
	if err := c2.Start(5 * time.Second); err != nil {
		t.Fatalf("restarted client handshake: %v", err)
	}
	runExchange(t, c2, 10, sink2, make(map[int]uint32))
	if n := srv.SessionCount(); n != 1 {
		t.Fatalf("sessions = %d, want 1 (takeover, not a duplicate)", n)
	}
}
