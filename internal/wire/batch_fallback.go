//go:build !linux || !(amd64 || arm64)

package wire

import "net"

// batchIO is unavailable on this platform: newBatchIO returns nil and
// UDPTransport falls back to the portable per-datagram loop. The
// methods exist only to satisfy references from udp.go.
type batchIO struct{}

func newBatchIO(conn *net.UDPConn, connected bool) *batchIO { return nil }

func (b *batchIO) readBatch(dgs []Datagram) (int, error)  { panic("unreachable") }
func (b *batchIO) writeBatch(dgs []Datagram) (int, error) { panic("unreachable") }
