package wire

import (
	"dpiservice/internal/obs"
	"dpiservice/internal/trace"
)

// Metrics folds wire-transport counters into an obs registry. All add
// paths are nil-receiver safe so library code instruments
// unconditionally and only daemons that opt in pay the pointer
// indirection; obs counter updates themselves are lock- and
// allocation-free, safe on the hot send/recv path.
type Metrics struct {
	framesIn    *obs.Counter // frames decoded from the transport
	framesOut   *obs.Counter // frames handed to the transport
	batchesIn   *obs.Counter // ReadBatch calls that returned datagrams
	batchesOut  *obs.Counter // WriteBatch calls
	bytesIn     *obs.Counter
	bytesOut    *obs.Counter
	retransmits *obs.Counter // reliable frames re-emitted
	acks        *obs.Counter // TAck frames built
	dups        *obs.Counter // duplicate reliable frames discarded
	overflow    *obs.Counter // reorder-window overflow drops
	badToken    *obs.Counter // frames rejected for an invalid session token
	badFrame    *obs.Counter // frames rejected by the codec
	sessions    *obs.Gauge   // live sessions (server side)

	// fl is the optional flight recorder: retransmissions and session
	// deaths land there so a post-mortem dump shows the wire's last
	// moments. Set once at daemon setup, before traffic.
	fl *trace.Flight
}

// NewMetrics registers the wire instruments in reg (nil returns nil,
// which disables counting).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		framesIn:    reg.Counter("wire.frames_in"),
		framesOut:   reg.Counter("wire.frames_out"),
		batchesIn:   reg.Counter("wire.batches_in"),
		batchesOut:  reg.Counter("wire.batches_out"),
		bytesIn:     reg.Counter("wire.bytes_in"),
		bytesOut:    reg.Counter("wire.bytes_out"),
		retransmits: reg.Counter("wire.retransmits"),
		acks:        reg.Counter("wire.acks_sent"),
		dups:        reg.Counter("wire.dup_frames"),
		overflow:    reg.Counter("wire.reorder_overflow_drops"),
		badToken:    reg.Counter("wire.bad_token_drops"),
		badFrame:    reg.Counter("wire.bad_frame_drops"),
		sessions:    reg.Gauge("wire.sessions"),
	}
}

//dpi:hotpath
func (m *Metrics) addFramesIn(n, bytes uint64) {
	if m != nil {
		m.framesIn.Add(n)
		m.bytesIn.Add(bytes)
	}
}

//dpi:hotpath
func (m *Metrics) addFramesOut(n, bytes uint64) {
	if m != nil {
		m.framesOut.Add(n)
		m.bytesOut.Add(bytes)
	}
}

//dpi:hotpath
func (m *Metrics) addBatchIn(n uint64) {
	if m != nil && n > 0 {
		m.batchesIn.Inc()
	}
}

//dpi:hotpath
func (m *Metrics) addBatchOut() {
	if m != nil {
		m.batchesOut.Inc()
	}
}

//dpi:hotpath
func (m *Metrics) addRetransmit() {
	if m != nil {
		m.retransmits.Inc()
	}
}

//dpi:hotpath
func (m *Metrics) addAck() {
	if m != nil {
		m.acks.Inc()
	}
}

//dpi:hotpath
func (m *Metrics) addDup() {
	if m != nil {
		m.dups.Inc()
	}
}

//dpi:hotpath
func (m *Metrics) addOverflow() {
	if m != nil {
		m.overflow.Inc()
	}
}

//dpi:hotpath
func (m *Metrics) addBadToken() {
	if m != nil {
		m.badToken.Inc()
	}
}

//dpi:hotpath
func (m *Metrics) addBadFrame() {
	if m != nil {
		m.badFrame.Inc()
	}
}

func (m *Metrics) sessionDelta(d int64) {
	if m != nil {
		m.sessions.Add(d)
	}
}

// SetFlight attaches a flight recorder; wire-level rare events
// (retransmits, session deaths and expiries) are recorded into it.
// Call at setup time, before traffic flows.
func (m *Metrics) SetFlight(f *trace.Flight) {
	if m != nil {
		m.fl = f
	}
}

//dpi:hotpath
func (m *Metrics) flightRetransmit(seq uint32, retries int) {
	if m != nil {
		m.fl.Record(trace.EvRetransmit, uint64(seq), uint64(retries))
	}
}

//dpi:hotpath
func (m *Metrics) flightSessionDead(token uint64, retransmitLimit bool) {
	if m != nil {
		b := uint64(0)
		if retransmitLimit {
			b = 1
		}
		m.fl.Record(trace.EvSessionDead, token, b)
	}
}
