package wire

import "testing"

func TestTokenIssueAndValidate(t *testing.T) {
	key := NewClusterKey()
	for id := uint32(0); id < 100; id++ {
		tok := IssueToken(key, id)
		if !ValidToken(key, tok) {
			t.Fatalf("token for id %d rejected by its own key", id)
		}
		if TokenID(tok) != id {
			t.Fatalf("TokenID = %d, want %d", TokenID(tok), id)
		}
	}
}

func TestTokenRejectedByOtherKey(t *testing.T) {
	tok := IssueToken(0x1111, 7)
	trials, rejected := 0, 0
	for k := uint64(1); k <= 1000; k++ {
		if k == 0x1111 {
			continue
		}
		trials++
		if !ValidToken(k, tok) {
			rejected++
		}
	}
	// A 32-bit MAC: a forged key passing is a ~2^-32 event per trial.
	if rejected != trials {
		t.Fatalf("only %d/%d wrong keys rejected", rejected, trials)
	}
}

func TestTokenTamperRejected(t *testing.T) {
	key := uint64(0xfeedface)
	tok := IssueToken(key, 42)
	for bit := 0; bit < 64; bit++ {
		if ValidToken(key, tok^(1<<uint(bit))) {
			t.Fatalf("token with bit %d flipped still validates", bit)
		}
	}
}

func TestNewClusterKeyNonZero(t *testing.T) {
	if NewClusterKey() == 0 {
		t.Fatal("zero cluster key")
	}
	if NewClusterKey() == NewClusterKey() {
		t.Fatal("cluster keys repeat")
	}
}
