package wire

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dpiservice/internal/obs"
	"dpiservice/internal/trace"
)

// soakReport is the artifact the CI soak job uploads: everything
// needed to audit a run after the fact.
type soakReport struct {
	Seed        uint64        `json:"seed"`
	Packets     int           `json:"packets"`
	Results     int           `json:"results"`
	LostResults int           `json:"lost_results"`
	DurationMS  int64         `json:"duration_ms"`
	Client      Stats         `json:"client_endpoint"`
	Proxy       ChaosStats    `json:"proxy"`
	ServerWire  *obs.Snapshot `json:"server_wire"`
}

// TestWireSoak drives sustained traffic through a loopback UDP path
// that actively drops, duplicates and reorders datagrams, and asserts
// the protocol's core promise: zero lost result frames, with a bounded
// retransmit bill. The fault schedule is seeded (WIRE_SOAK_SEED) so a
// failing run reproduces exactly; WIRE_SOAK_SECONDS stretches the run
// for the CI soak tier and WIRE_SOAK_REPORT writes the JSON artifact.
func TestWireSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	seed := uint64(1)
	if s := os.Getenv("WIRE_SOAK_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("WIRE_SOAK_SEED: %v", err)
		}
		seed = v
	}
	runFor := time.Duration(0) // packet-count mode by default
	packets := 2000
	if s := os.Getenv("WIRE_SOAK_SECONDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("WIRE_SOAK_SECONDS: %v", err)
		}
		runFor = time.Duration(v) * time.Second
	}

	reg := obs.NewRegistry()
	st, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Always-on flight recorder on the server endpoint: a failing soak
	// run ships its recent retransmit/session events (written to
	// DPI_FLIGHT_DUMP_DIR when set, the CI artifact path).
	met := NewMetrics(reg)
	fl := trace.NewFlight("soak-server", trace.DefaultFlightCapacity)
	clk := trace.StartClock(0)
	t.Cleanup(clk.Stop)
	fl.SetClock(clk)
	met.SetFlight(fl)
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		var b strings.Builder
		if err := fl.WriteJSON(&b); err != nil {
			t.Logf("flight dump: %v", err)
			return
		}
		if dir := os.Getenv("DPI_FLIGHT_DUMP_DIR"); dir != "" {
			if err := os.MkdirAll(dir, 0o755); err == nil {
				path := filepath.Join(dir, "wire-soak-flight.json")
				if os.WriteFile(path, []byte(b.String()), 0o644) == nil {
					t.Logf("flight dump written to %s", path)
					return
				}
			}
		}
		t.Logf("== wire-soak flight ==\n%s", b.String())
	})
	srv := echoServer(t, st, met)

	proxy, err := NewChaosProxy(st.LocalAddr().AP.String(), ChaosConfig{
		Drop: 0.02, Dup: 0.02, Reorder: 0.05, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	ct, err := DialUDP(proxy.ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	sink := newResultSink()
	c := NewConn(ct, IssueToken(testKey, 77), "soak", testCfg, nil)
	c.OnResult(sink.add)
	t.Cleanup(func() {
		c.Close()
		proxy.Close()
		srv.Close()
	})
	if err := c.Start(10 * time.Second); err != nil {
		t.Fatalf("handshake through proxy: %v", err)
	}

	start := time.Now()
	seqs := make(map[int]uint32)
	sent := 0
	for {
		if runFor > 0 {
			if time.Since(start) >= runFor {
				break
			}
		} else if sent >= packets {
			break
		}
		seq, err := c.SendData(1, testTuple, []byte(fmt.Sprintf("soak-%06d", sent)))
		if err != nil {
			t.Fatalf("SendData %d: %v", sent, err)
		}
		seqs[sent] = seq
		sent++
	}
	c.Flush()
	if err := c.WaitIdle(60 * time.Second); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	waitFor(t, 60*time.Second, "all soak results", func() bool { return sink.len() >= sent })
	elapsed := time.Since(start)

	lost := 0
	for i := 0; i < sent; i++ {
		got, ok := sink.get(seqs[i])
		if !ok {
			lost++
			continue
		}
		want := fmt.Sprintf("match:1:soak-%06d", i)
		if got != want {
			t.Errorf("result %d corrupted: %q", i, got)
		}
	}
	cs := c.Stats()
	ps := proxy.Stats()

	if lost != 0 {
		t.Errorf("%d result frames lost", lost)
	}
	if ps.Dropped == 0 || ps.Reordered == 0 || ps.Duped == 0 {
		t.Errorf("chaos proxy never fired: %+v", ps)
	}
	// Bounded retransmits: with ~2%% datagram loss each direction, the
	// retransmit bill must stay a small fraction of traffic. A factor-4
	// margin over the expected ~4%% keeps the assertion loss-schedule
	// robust while still catching retransmit storms.
	maxRetr := uint64(sent)/6 + 50
	if cs.Retransmits > maxRetr {
		t.Errorf("retransmits = %d, want <= %d for %d packets", cs.Retransmits, maxRetr, sent)
	}

	rep := soakReport{
		Seed:        seed,
		Packets:     sent,
		Results:     sink.len(),
		LostResults: lost,
		DurationMS:  elapsed.Milliseconds(),
		Client:      cs,
		Proxy:       ps,
		ServerWire:  reg.Snapshot(),
	}
	t.Logf("soak: %d packets in %v, %d retransmits, proxy %+v", sent, elapsed, cs.Retransmits, ps)
	if path := os.Getenv("WIRE_SOAK_REPORT"); path != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatalf("writing soak report: %v", err)
		}
	}
}
