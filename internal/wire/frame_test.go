package wire

import (
	"bytes"
	"testing"

	"dpiservice/internal/packet"
)

func TestFrameRoundTrip(t *testing.T) {
	h := Header{Type: TData, Flags: 0, Token: 0xdeadbeefcafe, Seq: 42, Ack: 17}
	payload := []byte("hello dpi")
	buf := AppendFrame(nil, h, payload)
	if len(buf) != HeaderLen+len(payload) {
		t.Fatalf("frame length = %d", len(buf))
	}
	got, gotPayload, rest, err := NextFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TData || got.Token != h.Token || got.Seq != 42 || got.Ack != 17 {
		t.Fatalf("header = %+v", got)
	}
	if !bytes.Equal(gotPayload, payload) || len(rest) != 0 {
		t.Fatalf("payload = %q rest = %d", gotPayload, len(rest))
	}
}

func TestFrameCoalescing(t *testing.T) {
	// Several frames in one buffer iterate cleanly.
	var buf []byte
	for i := 0; i < 5; i++ {
		buf = AppendFrame(buf, Header{Type: TAck, Token: 1, Seq: uint32(i)}, []byte{byte(i)})
	}
	for i := 0; i < 5; i++ {
		h, payload, rest, err := NextFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if h.Seq != uint32(i) || payload[0] != byte(i) {
			t.Fatalf("frame %d: h=%+v payload=%v", i, h, payload)
		}
		buf = rest
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	good := AppendFrame(nil, Header{Type: TData, Token: 1, Seq: 1}, []byte("x"))

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"short header", func(b []byte) []byte { return b[:HeaderLen-1] }, ErrShortFrame},
		{"bad version", func(b []byte) []byte { b[0] = 99; return b }, ErrBadVersion},
		{"zero type", func(b []byte) []byte { b[1] = 0; return b }, ErrBadType},
		{"high type", func(b []byte) []byte { b[1] = byte(TAck) + 1; return b }, ErrBadType},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-1] }, ErrShortFrame},
		{"oversized length", func(b []byte) []byte {
			b[20], b[21], b[22], b[23] = 0xff, 0xff, 0xff, 0xff
			return b
		}, ErrFrameTooBig},
	}
	for _, tc := range cases {
		buf := tc.mut(append([]byte(nil), good...))
		if _, _, _, err := NextFrame(buf); err != tc.want {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDataHdrRoundTrip(t *testing.T) {
	tuple := packet.FiveTuple{
		Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2},
		SrcPort: 1234, DstPort: 80, Protocol: 6,
	}
	buf := AppendData(nil, 7, tuple, []byte("payload"))
	tag, got, rest, err := ParseDataHdr(buf)
	if err != nil {
		t.Fatal(err)
	}
	if tag != 7 || got != tuple || string(rest) != "payload" {
		t.Fatalf("tag=%d tuple=%+v rest=%q", tag, got, rest)
	}
	if _, _, _, err := ParseDataHdr(buf[:DataHdrLen-1]); err != ErrShortFrame {
		t.Fatalf("short subheader err = %v", err)
	}
}

// FuzzWireDecode asserts the decoder never panics on arbitrary bytes
// and that whatever it accepts re-encodes to a frame it parses back
// identically (semantic round-trip).
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, Header{Type: THello, Token: 1, Seq: 0}, []byte("mbox-1")))
	f.Add(AppendFrame(nil, Header{Type: TData, Token: 0xabcdef, Seq: 9, Ack: 3}, make([]byte, DataHdrLen+32)))
	two := AppendFrame(nil, Header{Type: TAck, Token: 2, Ack: 5}, make([]byte, 8))
	f.Add(AppendFrame(two, Header{Type: TResult, Token: 2, Seq: 1}, []byte{0, 0, 0, 1}))
	f.Add([]byte{Version, byte(TData), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 2, 0xff, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, rest, err := NextFrame(data)
		if err != nil {
			return
		}
		if len(payload) != int(h.Length) {
			t.Fatalf("payload %d bytes, header says %d", len(payload), h.Length)
		}
		if len(rest) != len(data)-HeaderLen-len(payload) {
			t.Fatalf("rest %d bytes of %d", len(rest), len(data))
		}
		// Re-encode and re-parse: all semantic fields survive.
		re := AppendFrame(nil, h, payload)
		h2, p2, r2, err := NextFrame(re)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if h2.Type != h.Type || h2.Flags != h.Flags || h2.Token != h.Token ||
			h2.Seq != h.Seq || h2.Ack != h.Ack || h2.Length != h.Length {
			t.Fatalf("header changed: %+v -> %+v", h, h2)
		}
		if !bytes.Equal(p2, payload) || len(r2) != 0 {
			t.Fatal("payload changed across re-encode")
		}
		// The nested decoders must not panic either.
		if h.Type == TData || h.Type == TVerdict {
			ParseDataHdr(payload)
		}
	})
}
