package wire

import (
	"crypto/rand"
	"encoding/binary"
)

// Session tokens (Section 4.1's trust boundary, adapted to a real
// network): the controller holds a cluster key and issues each sender —
// middlebox, traffic source, DPI instance — a 64-bit token at
// registration. A token packs a 32-bit session id with a 32-bit MAC
// derived from the key, so any service node holding the key validates
// any controller-issued token with pure arithmetic: no shared state, no
// registration-order races, nothing allocated per frame. This is an
// authenticity check against stray or stale traffic, not cryptographic
// protection (a 32-bit truncated mix is no HMAC); the control channel
// carrying the key is the trusted path, as in the paper.

// NewClusterKey draws a random cluster key. The controller generates
// one at startup (persisted with its state) and hands it to DPI
// instances in InstanceInit.
func NewClusterKey() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform entropy source is
		// broken; fall back to a fixed nonzero key rather than abort —
		// tokens still gate stray traffic, just predictably.
		return 0x9e3779b97f4a7c15
	}
	k := binary.BigEndian.Uint64(b[:])
	if k == 0 {
		k = 1
	}
	return k
}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed
// 64-bit mixing function.
//
//dpi:hotpath
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// IssueToken mints the token for session id under key.
func IssueToken(key uint64, id uint32) uint64 {
	mac := uint32(mix64(key^uint64(id)) >> 32)
	return uint64(id)<<32 | uint64(mac)
}

// ValidToken reports whether token was issued under key.
//
//dpi:hotpath
func ValidToken(key, token uint64) bool {
	id := uint32(token >> 32)
	return uint32(mix64(key^uint64(id))>>32) == uint32(token)
}

// TokenID extracts the session id half of a token (diagnostics).
func TokenID(token uint64) uint32 { return uint32(token >> 32) }
