package wire

import "net/netip"

// Addr identifies a transport peer. Exactly one half is set: the UDP
// transport uses AP (allocation-free, comparable), the netsim
// transport the peer node name. The zero Addr is "unaddressed" —
// legal for connected transports that have a single fixed peer.
type Addr struct {
	AP   netip.AddrPort
	Name string
}

// IsZero reports whether a names no peer.
func (a Addr) IsZero() bool { return a.Name == "" && !a.AP.IsValid() }

// String renders the address for diagnostics (allocates; not for the
// hot path).
func (a Addr) String() string {
	if a.Name != "" {
		return a.Name
	}
	return a.AP.String()
}

// Datagram is one transport message: a byte buffer and its peer.
type Datagram struct {
	Addr Addr
	Buf  []byte
}

// Transport moves datagrams in batches — the sendmmsg/recvmmsg shape:
// one call covers many messages so the per-packet syscall cost is
// amortized, with implementations free to fall back to a portable
// one-at-a-time loop. Implementations: UDPTransport (real sockets,
// batch syscalls on linux), NetsimTransport (deterministic in-process
// fabric), and the test chaos proxy's inner sockets.
//
// A Transport is safe for one concurrent reader and one concurrent
// writer.
type Transport interface {
	// WriteBatch sends the given datagrams, returning how many were
	// handed to the network. Datagrams to the zero Addr go to the
	// connected peer (connected transports only).
	WriteBatch(dgs []Datagram) (int, error)
	// ReadBatch blocks until at least one datagram is available, fills
	// up to len(dgs) entries and returns the count. Each dgs[i].Buf
	// must be preallocated with at least MaxDatagram capacity; on
	// return it is resliced to the received length and dgs[i].Addr is
	// the sender.
	ReadBatch(dgs []Datagram) (int, error)
	// LocalAddr returns the transport's own address.
	LocalAddr() Addr
	// Close unblocks readers and releases the transport.
	Close() error
}

// DefaultBatch is the batch size Conn and Server use for transport
// reads and writes.
const DefaultBatch = 32
