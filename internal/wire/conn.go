package wire

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"

	"dpiservice/internal/packet"
)

// ErrTimeout reports an expired wait (hello handshake, WaitIdle).
var ErrTimeout = errors.New("wire: timed out")

// coalesceBudget is the soft datagram size for frame coalescing: small
// frames (acks, results) pack together up to this size before a new
// datagram is opened. A single frame larger than the budget still gets
// its own datagram (up to MaxFramePayload).
const coalesceBudget = 1400

// stager coalesces emitted frames into datagrams and hands full
// batches to its write function. All buffers are preallocated; staging
// is allocation free. Owners serialize access under their own mutex.
type stager struct {
	dgs   []Datagram
	n     int // datagrams staged; dgs[n-1] is open for coalescing
	addr  Addr
	met   *Metrics
	write func(dgs []Datagram)
}

func newStager(addr Addr, met *Metrics, write func([]Datagram)) *stager {
	//dpi:coldalloc(session setup: all staging buffers preallocated once per peer)
	s := &stager{addr: addr, met: met, write: write}
	//dpi:coldalloc(session setup: all staging buffers preallocated once per peer)
	s.dgs = make([]Datagram, DefaultBatch)
	for i := range s.dgs {
		//dpi:coldalloc(session setup: all staging buffers preallocated once per peer)
		s.dgs[i].Buf = make([]byte, 0, MaxDatagram)
	}
	return s
}

// stage appends one frame, opening a new datagram when the current one
// is at budget and writing the whole batch out when all slots fill.
//
//dpi:hotpath
func (s *stager) stage(h Header, payload []byte) {
	need := HeaderLen + len(payload)
	if s.n == 0 || len(s.dgs[s.n-1].Buf)+need > coalesceBudget {
		if s.n == len(s.dgs) {
			s.flush()
		}
		s.n++
		cur := &s.dgs[s.n-1]
		cur.Buf = cur.Buf[:0]
		cur.Addr = s.addr
	}
	cur := &s.dgs[s.n-1]
	cur.Buf = AppendFrame(cur.Buf, h, payload)
	s.met.addFramesOut(1, uint64(HeaderLen+len(payload)))
}

// flush writes every staged datagram.
//
//dpi:hotpath
func (s *stager) flush() {
	if s.n == 0 {
		return
	}
	s.write(s.dgs[:s.n])
	s.n = 0
}

// Conn is the client side of a wire session: it dials a Transport,
// performs the Hello handshake with the controller-issued session
// token, and then exchanges reliable frames with the server. Two
// goroutines service it — a receive loop draining transport batches
// and a ticker driving retransmission — while callers block on
// SendData/SendVerdict under window backpressure.
type Conn struct {
	tr    Transport
	cfg   Config
	met   *Metrics
	id    string
	token uint64

	clockBase time.Time
	done      chan struct{}
	wg        sync.WaitGroup

	// onResult receives each in-order TResult: the echoed data seq and
	// the report bytes (valid only during the call). Runs on the receive
	// goroutine; set before Start.
	onResult func(dataSeq uint32, report []byte)

	mu      sync.Mutex
	cond    *sync.Cond
	ep      *Endpoint
	st      *stager
	emit    Emit
	helloOK bool
	closed  bool
	err     error
	ackBuf  []byte
	scratch []byte // frame payload assembly (data subheader + app bytes)
}

// NewConn wraps an already-dialed transport as a client session
// authenticated by token. cfg zero-values select defaults; met may be
// nil. Call Start to handshake.
func NewConn(tr Transport, token uint64, id string, cfg Config, met *Metrics) *Conn {
	cfg.defaults()
	c := &Conn{
		tr:        tr,
		cfg:       cfg,
		met:       met,
		id:        id,
		token:     token,
		clockBase: time.Now(),
		done:      make(chan struct{}),
		ackBuf:    make([]byte, SackBytes(cfg.Window)),
		scratch:   make([]byte, 0, MaxFramePayload),
	}
	c.cond = sync.NewCond(&c.mu)
	c.ep = NewEndpoint(token, cfg, met)
	c.st = newStager(Addr{}, met, c.writeOut)
	c.emit = c.st.stage
	return c
}

// OnResult registers the result callback. Must be called before Start.
func (c *Conn) OnResult(fn func(dataSeq uint32, report []byte)) { c.onResult = fn }

// now returns session-relative monotonic nanoseconds.
func (c *Conn) now() int64 { return int64(time.Since(c.clockBase)) }

// writeOut is the stager's sink; a transport error poisons the conn.
func (c *Conn) writeOut(dgs []Datagram) {
	if _, err := c.tr.WriteBatch(dgs); err != nil && c.err == nil && !c.closed {
		c.err = err
	}
	c.met.addBatchOut()
}

// Start launches the service goroutines and performs the Hello
// handshake, retrying until the server acks or timeout expires.
func (c *Conn) Start(timeout time.Duration) error {
	c.met.sessionDelta(1)
	c.wg.Add(2)
	go c.recvLoop()
	go c.tickLoop()
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		if c.helloOK {
			c.mu.Unlock()
			return nil
		}
		if err := c.stateErr(); err != nil {
			c.mu.Unlock()
			return err
		}
		c.st.stage(Header{Type: THello, Token: c.token}, []byte(c.id))
		c.st.flush()
		c.mu.Unlock()
		if time.Now().After(deadline) {
			return ErrTimeout
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// stateErr returns the sticky failure, if any. Caller holds mu.
func (c *Conn) stateErr() error {
	if c.err != nil {
		return c.err
	}
	if c.closed {
		return ErrClosed
	}
	return nil
}

// recvLoop drains transport batches into the endpoint.
func (c *Conn) recvLoop() {
	defer c.wg.Done()
	dgs := make([]Datagram, DefaultBatch)
	for i := range dgs {
		dgs[i].Buf = make([]byte, 0, MaxDatagram)
	}
	for {
		n, err := c.tr.ReadBatch(dgs)
		if err != nil {
			c.fail(err)
			return
		}
		now := c.now()
		c.mu.Lock()
		c.met.addBatchIn(uint64(n))
		for i := 0; i < n; i++ {
			c.handleDatagram(dgs[i].Buf, now)
		}
		if c.ep.AckDue() {
			c.ep.BuildAck(c.ackBuf, c.emit)
		}
		c.st.flush()
		c.mu.Unlock()
		c.cond.Broadcast()
	}
}

// handleDatagram walks the frames packed in one datagram. Caller holds
// mu.
//
//dpi:hotpath
func (c *Conn) handleDatagram(buf []byte, now int64) {
	for len(buf) > 0 {
		h, payload, rest, err := NextFrame(buf)
		if err != nil {
			c.met.addBadFrame()
			return
		}
		buf = rest
		c.met.addFramesIn(1, uint64(HeaderLen+len(payload)))
		if h.Token != c.token {
			c.met.addBadToken()
			continue
		}
		switch h.Type {
		case THelloAck:
			c.helloOK = true
		case TAck:
			c.ep.HandleAck(h.Ack, payload, now, c.emit)
		case TData, TResult, TVerdict:
			c.ep.HandleFrame(h, payload, now, c.deliver, c.emit)
		}
	}
}

// deliver dispatches in-order reliable frames; clients only consume
// results.
//
//dpi:hotpath
func (c *Conn) deliver(t Type, seq uint32, flags uint8, payload []byte) {
	if t != TResult || c.onResult == nil || len(payload) < ResultHdrLen {
		return
	}
	dataSeq := binary.BigEndian.Uint32(payload[:ResultHdrLen])
	c.onResult(dataSeq, payload[ResultHdrLen:])
}

// tickLoop drives retransmission and pending acks.
func (c *Conn) tickLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.RTOBase / 4)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			now := c.now()
			c.mu.Lock()
			alive := c.ep.Tick(now, c.emit)
			if c.ep.AckDue() {
				c.ep.BuildAck(c.ackBuf, c.emit)
			}
			c.st.flush()
			if !alive && c.err == nil {
				c.err = ErrSessionDead
			}
			c.mu.Unlock()
			c.cond.Broadcast()
		}
	}
}

// fail records a terminal error (unless the conn is closing).
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil && !c.closed {
		c.err = err
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// SendData queues one packet (chain tag, five-tuple, payload) on the
// reliable channel, blocking while the send window is full. It returns
// the frame seq, which the matching TResult echoes.
func (c *Conn) SendData(tag uint16, tuple packet.FiveTuple, payload []byte) (uint32, error) {
	return c.sendReliable(TData, 0, tag, tuple, 0, 0, payload)
}

// SendDataTraced is SendData with in-band trace context: the frame
// carries FlagTrace and the 12-byte trace extension, so every stage
// downstream records spans under traceID.
func (c *Conn) SendDataTraced(tag uint16, tuple packet.FiveTuple, traceID uint64, pktIdx uint32, payload []byte) (uint32, error) {
	return c.sendReliable(TData, FlagTrace, tag, tuple, traceID, pktIdx, payload)
}

// SendVerdict queues one match verdict (instance → middlebox
// consumer) on the reliable channel.
func (c *Conn) SendVerdict(tag uint16, tuple packet.FiveTuple, report []byte) error {
	_, err := c.sendReliable(TVerdict, 0, tag, tuple, 0, 0, report)
	return err
}

// SendVerdictTraced is SendVerdict with in-band trace context, so the
// consuming middlebox's spans join the packet's trace.
func (c *Conn) SendVerdictTraced(tag uint16, tuple packet.FiveTuple, traceID uint64, pktIdx uint32, report []byte) error {
	_, err := c.sendReliable(TVerdict, FlagTrace, tag, tuple, traceID, pktIdx, report)
	return err
}

// sendReliable assembles tag+tuple[+trace]+body and submits it, waiting
// out window backpressure.
func (c *Conn) sendReliable(t Type, flags uint8, tag uint16, tuple packet.FiveTuple, traceID uint64, pktIdx uint32, body []byte) (uint32, error) {
	c.mu.Lock()
	for {
		if err := c.stateErr(); err != nil {
			c.mu.Unlock()
			return 0, err
		}
		if flags&FlagTrace != 0 {
			c.scratch = AppendDataTraced(c.scratch[:0], tag, tuple, traceID, pktIdx, body)
		} else {
			c.scratch = AppendData(c.scratch[:0], tag, tuple, body)
		}
		seq, err := c.ep.SendEx(t, flags, c.scratch, c.now(), c.emit)
		if err == ErrWindowFull {
			c.cond.Wait()
			continue
		}
		c.mu.Unlock()
		return seq, err
	}
}

// Flush pushes any staged frames to the transport immediately.
func (c *Conn) Flush() {
	c.mu.Lock()
	c.st.flush()
	c.mu.Unlock()
}

// WaitIdle blocks until every sent frame has been acked, the session
// fails, or timeout expires.
func (c *Conn) WaitIdle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.ep.InFlight() > 0 || c.st.n > 0 {
		if err := c.stateErr(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return ErrTimeout
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
		c.mu.Lock()
	}
	return c.err
}

// Stats snapshots the endpoint protocol counters.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ep.Stats()
}

// Err returns the sticky failure, if any.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close shuts the conn down and waits for its goroutines.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	c.cond.Broadcast()
	c.tr.Close()
	c.wg.Wait()
	c.met.sessionDelta(-1)
	return nil
}
