package wire

import (
	"encoding/binary"
	"sync"
	"time"

	"dpiservice/internal/packet"
)

// defaultIdleTimeout expires sessions that have gone silent; a session
// whose peer was SIGKILLed is reclaimed after this long.
const defaultIdleTimeout = 2 * time.Minute

// Session is one authenticated peer on a Server: its reliability
// endpoint, its per-peer frame stager, and its identity from the Hello
// payload. Handler callbacks receive the session and may reply on it
// via SendResult/SendVerdict; those methods are only valid from
// handler context (the server's receive goroutine), which is also what
// serializes all session state.
type Session struct {
	srv      *Server
	addr     Addr
	id       string
	ep       *Endpoint
	st       *stager
	emit     Emit
	lastRecv int64

	// pending holds reliable frames that found the send window full.
	// Handlers run on the receive loop, so they cannot block on window
	// space the way Conn callers do; queued frames drain as acks arrive.
	// Reliability is preserved — nothing is dropped — at the cost of
	// cold-path allocation when a peer stops acking.
	pending []pendingFrame

	// Trace context of the frame currently being delivered (FlagTrace
	// frames only); valid in handler context, cleared after dispatch.
	curTraceID uint64
	curPktIdx  uint32
}

type pendingFrame struct {
	typ Type
	buf []byte
}

// ID returns the peer identity announced in its Hello.
func (s *Session) ID() string { return s.id }

// RemoteAddr returns the peer's transport address.
func (s *Session) RemoteAddr() Addr { return s.addr }

// Stats snapshots the session's endpoint counters. Handler context
// only.
func (s *Session) Stats() Stats { return s.ep.Stats() }

// Trace returns the in-band trace context of the frame currently being
// handled: the trace ID and per-flow packet index carried by a
// FlagTrace frame, or ok=false for untraced traffic. Handler context
// only.
func (s *Session) Trace() (traceID uint64, pktIdx uint32, ok bool) {
	return s.curTraceID, s.curPktIdx, s.curTraceID != 0
}

// SinceRecv returns the nanoseconds elapsed since the datagram batch
// carrying the current frame was read from the transport — the wire
// decode+dispatch latency of the packet being handled. Handler context
// only.
func (s *Session) SinceRecv() int64 { return s.srv.now() - s.srv.nowNanos }

// SendResult queues the reliable TResult answering dataSeq. Handler
// context only.
func (s *Session) SendResult(dataSeq uint32, report []byte) error {
	scratch := s.srv.scratch[:0]
	var hdr [ResultHdrLen]byte
	binary.BigEndian.PutUint32(hdr[:], dataSeq)
	scratch = append(scratch, hdr[:]...)
	scratch = append(scratch, report...)
	s.srv.scratch = scratch[:0]
	return s.sendReliable(TResult, scratch)
}

// SendVerdict queues a reliable TVerdict toward this peer. Handler
// context only.
func (s *Session) SendVerdict(tag uint16, tuple packet.FiveTuple, report []byte) error {
	scratch := AppendData(s.srv.scratch[:0], tag, tuple, report)
	s.srv.scratch = scratch[:0]
	return s.sendReliable(TVerdict, scratch)
}

// sendReliable submits one frame, spilling to the pending queue when
// the window is full (order-preserving: once anything is queued, all
// later frames queue behind it).
//
//dpi:hotpath
func (s *Session) sendReliable(t Type, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return ErrPayloadSplit
	}
	if s.ep.Dead() {
		return ErrSessionDead
	}
	if len(s.pending) == 0 {
		_, err := s.ep.Send(t, payload, s.srv.nowNanos, s.emit)
		if err != ErrWindowFull {
			return err
		}
	}
	s.enqueue(t, payload)
	return nil
}

// enqueue spills one frame to the overflow queue (cold path; this is
// the one allocating corner of the server, taken only when a peer
// stops draining its window).
func (s *Session) enqueue(t Type, payload []byte) {
	s.pending = append(s.pending, pendingFrame{typ: t, buf: append([]byte(nil), payload...)})
}

// drainPending moves queued frames into the window as space opens.
//
//dpi:hotpath
func (s *Session) drainPending(now int64) {
	i := 0
	for ; i < len(s.pending); i++ {
		if _, err := s.ep.Send(s.pending[i].typ, s.pending[i].buf, now, s.emit); err != nil {
			break
		}
	}
	if i > 0 {
		s.pending = s.pending[:copy(s.pending, s.pending[i:])]
	}
}

// Server terminates wire sessions on one transport: it validates
// controller-issued session tokens at Hello (cryptographically, via
// the cluster key) and per frame (against the session), runs one
// reliability endpoint per peer, and dispatches delivered frames to
// the OnData/OnVerdict handlers. Handlers run on the receive
// goroutine: the server is a single-threaded event loop, with a
// ticker goroutine borrowing the same lock for retransmission and
// session expiry.
type Server struct {
	tr  Transport
	cfg Config
	key uint64
	met *Metrics

	clockBase time.Time
	done      chan struct{}
	wg        sync.WaitGroup
	idle      time.Duration

	onHello   func(s *Session)
	onData    func(s *Session, seq uint32, tag uint16, tuple packet.FiveTuple, payload []byte)
	onVerdict func(s *Session, tag uint16, tuple packet.FiveTuple, report []byte)
	logf      func(format string, args ...any)

	mu       sync.Mutex
	sessions map[Addr]*Session
	closed   bool
	nowNanos int64 // clock snapshot for the event being processed
	ackBuf   []byte
	scratch  []byte // reply payload assembly, reused across handlers
	expired  []Addr // reusable scratch for the expiry sweep
	wrErr    error
}

// NewServer wraps a bound transport. key is the cluster key session
// tokens are validated against; cfg zero-values select defaults; met
// may be nil. Register handlers, then Start.
func NewServer(tr Transport, key uint64, cfg Config, met *Metrics) *Server {
	cfg.defaults()
	return &Server{
		tr:        tr,
		cfg:       cfg,
		key:       key,
		met:       met,
		clockBase: time.Now(),
		done:      make(chan struct{}),
		idle:      defaultIdleTimeout,
		logf:      func(string, ...any) {},
		sessions:  make(map[Addr]*Session),
		ackBuf:    make([]byte, SackBytes(cfg.Window)),
		scratch:   make([]byte, 0, MaxFramePayload),
	}
}

// OnHello registers the new-session callback. Before Start only.
func (v *Server) OnHello(fn func(s *Session)) { v.onHello = fn }

// OnData registers the packet handler. Before Start only.
func (v *Server) OnData(fn func(s *Session, seq uint32, tag uint16, tuple packet.FiveTuple, payload []byte)) {
	v.onData = fn
}

// OnVerdict registers the verdict handler. Before Start only.
func (v *Server) OnVerdict(fn func(s *Session, tag uint16, tuple packet.FiveTuple, report []byte)) {
	v.onVerdict = fn
}

// SetLogf routes server diagnostics. Before Start only.
func (v *Server) SetLogf(fn func(format string, args ...any)) { v.logf = fn }

// SetIdleTimeout overrides session expiry. Before Start only.
func (v *Server) SetIdleTimeout(d time.Duration) { v.idle = d }

// now returns server-relative monotonic nanoseconds.
func (v *Server) now() int64 { return int64(time.Since(v.clockBase)) }

// Start launches the receive and ticker goroutines.
func (v *Server) Start() {
	v.wg.Add(2)
	go v.recvLoop()
	go v.tickLoop()
}

// LocalAddr returns the bound transport address.
func (v *Server) LocalAddr() Addr { return v.tr.LocalAddr() }

// SessionCount returns the number of live sessions.
func (v *Server) SessionCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.sessions)
}

// writeOut is every session stager's sink.
func (v *Server) writeOut(dgs []Datagram) {
	if _, err := v.tr.WriteBatch(dgs); err != nil && v.wrErr == nil && !v.closed {
		v.wrErr = err
		v.logf("wire server: write: %v", err)
	}
	v.met.addBatchOut()
}

// recvLoop drains transport batches and dispatches frames to sessions.
func (v *Server) recvLoop() {
	defer v.wg.Done()
	dgs := make([]Datagram, DefaultBatch)
	for i := range dgs {
		dgs[i].Buf = make([]byte, 0, MaxDatagram)
	}
	for {
		n, err := v.tr.ReadBatch(dgs)
		if err != nil {
			v.mu.Lock()
			closed := v.closed
			v.mu.Unlock()
			if !closed {
				v.logf("wire server: read: %v", err)
			}
			return
		}
		now := v.now()
		v.mu.Lock()
		v.met.addBatchIn(uint64(n))
		v.nowNanos = now
		for i := 0; i < n; i++ {
			v.handleDatagram(dgs[i].Addr, dgs[i].Buf)
		}
		v.mu.Unlock()
	}
}

// handleDatagram walks one datagram's frames, then flushes the
// session's acks and staged replies. Caller holds mu.
//
//dpi:hotpath
func (v *Server) handleDatagram(from Addr, buf []byte) {
	var sess *Session
	for len(buf) > 0 {
		h, payload, rest, err := NextFrame(buf)
		if err != nil {
			v.met.addBadFrame()
			break
		}
		buf = rest
		v.met.addFramesIn(1, uint64(HeaderLen+len(payload)))
		if s := v.handleFrame(from, h, payload); s != nil {
			sess = s
		}
	}
	if sess == nil {
		return
	}
	sess.drainPending(v.nowNanos)
	if sess.ep.AckDue() {
		sess.ep.BuildAck(v.ackBuf, sess.emit)
	}
	sess.st.flush()
}

// handleFrame dispatches one frame and returns the session it belongs
// to (nil when rejected). Caller holds mu.
//
//dpi:hotpath
func (v *Server) handleFrame(from Addr, h Header, payload []byte) *Session {
	sess := v.sessions[from]
	if h.Type == THello {
		return v.handleHello(from, sess, h, payload)
	}
	if sess == nil || h.Token != sess.ep.Token() {
		v.met.addBadToken()
		return nil
	}
	sess.lastRecv = v.nowNanos
	switch h.Type {
	case TAck:
		sess.ep.HandleAck(h.Ack, payload, v.nowNanos, sess.emit)
	case TData, TResult, TVerdict:
		sess.ep.HandleFrame(h, payload, v.nowNanos, sess.deliver, sess.emit)
	}
	return sess
}

// handleHello validates the token, creating (or, on a client restart
// from the same address with a fresh token, replacing) the session,
// and re-acks duplicates idempotently.
func (v *Server) handleHello(from Addr, sess *Session, h Header, payload []byte) *Session {
	if sess == nil || sess.ep.Token() != h.Token {
		if !ValidToken(v.key, h.Token) {
			v.met.addBadToken()
			return nil
		}
		if sess != nil {
			v.met.sessionDelta(-1)
		}
		//dpi:coldalloc(hello path: one session per peer, identity copied once)
		sess = v.newSession(from, h.Token, string(payload))
		v.sessions[from] = sess
		v.met.sessionDelta(1)
		//dpi:coldalloc(hello path: logged once per session)
		v.logf("wire server: session %q from %s", sess.id, from.String())
		if v.onHello != nil {
			v.onHello(sess)
		}
	}
	sess.lastRecv = v.nowNanos
	sess.st.stage(Header{Type: THelloAck, Token: h.Token, Seq: h.Seq}, nil)
	return sess
}

// newSession builds the per-peer state.
func (v *Server) newSession(from Addr, token uint64, id string) *Session {
	//dpi:coldalloc(session setup: endpoint and buffers allocated once per peer)
	s := &Session{
		srv:      v,
		addr:     from,
		id:       id,
		ep:       NewEndpoint(token, v.cfg, v.met),
		lastRecv: v.nowNanos,
	}
	//dpi:coldalloc(session setup: endpoint and buffers allocated once per peer)
	s.st = newStager(from, v.met, v.writeOut)
	//dpi:coldalloc(session setup: method-value closure bound once per peer)
	s.emit = s.st.stage
	return s
}

// deliver dispatches one in-order reliable frame to the handlers,
// exposing any in-band trace context through Session.Trace for the
// duration of the dispatch.
//
//dpi:hotpath
func (s *Session) deliver(t Type, seq uint32, flags uint8, payload []byte) {
	switch t {
	case TData:
		if s.srv.onData == nil {
			return
		}
		tag, tuple, rest, err := ParseDataHdr(payload)
		if err != nil {
			s.srv.met.addBadFrame()
			return
		}
		if flags&FlagTrace != 0 {
			id, idx, body, err := ParseTraceExt(rest)
			if err != nil {
				s.srv.met.addBadFrame()
				return
			}
			s.curTraceID, s.curPktIdx, rest = id, idx, body
		}
		s.srv.onData(s, seq, tag, tuple, rest)
		s.curTraceID, s.curPktIdx = 0, 0
	case TVerdict:
		if s.srv.onVerdict == nil {
			return
		}
		tag, tuple, rest, err := ParseDataHdr(payload)
		if err != nil {
			s.srv.met.addBadFrame()
			return
		}
		if flags&FlagTrace != 0 {
			id, idx, body, err := ParseTraceExt(rest)
			if err != nil {
				s.srv.met.addBadFrame()
				return
			}
			s.curTraceID, s.curPktIdx, rest = id, idx, body
		}
		s.srv.onVerdict(s, tag, tuple, rest)
		s.curTraceID, s.curPktIdx = 0, 0
	}
}

// tickLoop drives retransmission, pending drains and session expiry.
func (v *Server) tickLoop() {
	defer v.wg.Done()
	t := time.NewTicker(v.cfg.RTOBase / 4)
	defer t.Stop()
	for {
		select {
		case <-v.done:
			return
		case <-t.C:
			v.tickOnce()
		}
	}
}

// tickOnce runs one maintenance pass over every session.
func (v *Server) tickOnce() {
	now := v.now()
	v.mu.Lock()
	v.nowNanos = now
	v.expired = v.expired[:0]
	for addr, sess := range v.sessions {
		alive := sess.ep.Tick(now, sess.emit)
		sess.drainPending(now)
		if sess.ep.AckDue() {
			sess.ep.BuildAck(v.ackBuf, sess.emit)
		}
		sess.st.flush()
		if !alive || now-sess.lastRecv > int64(v.idle) {
			v.expired = append(v.expired, addr)
		}
	}
	for _, addr := range v.expired {
		sess := v.sessions[addr]
		delete(v.sessions, addr)
		v.met.sessionDelta(-1)
		v.met.flightSessionDead(sess.ep.Token(), sess.ep.Dead())
		v.logf("wire server: session %q expired (dead=%v)", sess.id, sess.ep.Dead())
	}
	v.mu.Unlock()
}

// Close shuts the server down and waits for its goroutines.
func (v *Server) Close() error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return nil
	}
	v.closed = true
	close(v.done)
	n := len(v.sessions)
	v.sessions = make(map[Addr]*Session)
	v.mu.Unlock()
	for i := 0; i < n; i++ {
		v.met.sessionDelta(-1)
	}
	v.tr.Close()
	v.wg.Wait()
	return nil
}
