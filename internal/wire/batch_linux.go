//go:build linux && (amd64 || arm64)

package wire

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// Real batch I/O: sendmmsg(2)/recvmmsg(2) move up to DefaultBatch
// datagrams per syscall, so the transport's per-packet syscall cost is
// ~1/batch of the portable loop's — without this, kernel crossings
// would erase the per-packet wins of the batched scan path (PR 6).
// Restricted to linux on little-endian 64-bit, where the
// syscall.Msghdr layout below and the raw sockaddr byte order are
// known; every other platform uses the portable loop in udp.go.
//
// The structures are prepared once and reused: the only per-call work
// is pointer/length fixup, the syscall itself, and sockaddr decoding.

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// transferred-byte count.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

const (
	sizeofSockaddrInet4 = 16
	sizeofSockaddrInet6 = 28
	sockaddrBufLen      = 128 // sockaddr_storage

	afInet  = 2
	afInet6 = 10
)

// batchIO owns the reusable mmsg scratch for one socket. Read and
// write sides are independent, matching Transport's one-reader +
// one-writer contract.
type batchIO struct {
	rc        syscall.RawConn
	connected bool

	rhs    []mmsghdr
	riov   []syscall.Iovec
	rnames [][sockaddrBufLen]byte

	whs    []mmsghdr
	wiov   []syscall.Iovec
	wnames [][sockaddrBufLen]byte
}

// newBatchIO prepares batch state for conn; nil when the raw conn is
// unavailable.
func newBatchIO(conn *net.UDPConn, connected bool) *batchIO {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	b := &batchIO{rc: rc, connected: connected}
	b.rhs = make([]mmsghdr, DefaultBatch)
	b.riov = make([]syscall.Iovec, DefaultBatch)
	b.rnames = make([][sockaddrBufLen]byte, DefaultBatch)
	b.whs = make([]mmsghdr, DefaultBatch)
	b.wiov = make([]syscall.Iovec, DefaultBatch)
	b.wnames = make([][sockaddrBufLen]byte, DefaultBatch)
	return b
}

// readBatch fills dgs via one (or, under contention, a few) recvmmsg
// calls: it blocks via the runtime poller until at least one datagram
// is ready, then drains up to len(dgs) in the single syscall.
func (b *batchIO) readBatch(dgs []Datagram) (int, error) {
	n := len(dgs)
	if n > len(b.rhs) {
		n = len(b.rhs)
	}
	for i := 0; i < n; i++ {
		buf := dgs[i].Buf[:cap(dgs[i].Buf)]
		b.riov[i].Base = &buf[0]
		b.riov[i].Len = uint64(len(buf))
		h := &b.rhs[i].hdr
		h.Name = &b.rnames[i][0]
		h.Namelen = sockaddrBufLen
		h.Iov = &b.riov[i]
		h.Iovlen = 1
		h.Control = nil
		h.Controllen = 0
		h.Flags = 0
		b.rhs[i].n = 0
	}
	var got int
	var errno syscall.Errno
	err := b.rc.Read(func(fd uintptr) bool {
		r1, _, e := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&b.rhs[0])), uintptr(n),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false // park until readable, then retry
		}
		got, errno = int(r1), e
		return true
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	for i := 0; i < got; i++ {
		dgs[i].Buf = dgs[i].Buf[:cap(dgs[i].Buf)][:b.rhs[i].n]
		dgs[i].Addr = Addr{AP: decodeSockaddr(&b.rnames[i], b.rhs[i].hdr.Namelen)}
	}
	return got, nil
}

// writeBatch sends all of dgs, looping sendmmsg over partial sends.
func (b *batchIO) writeBatch(dgs []Datagram) (int, error) {
	sent := 0
	for sent < len(dgs) {
		n := len(dgs) - sent
		if n > len(b.whs) {
			n = len(b.whs)
		}
		for i := 0; i < n; i++ {
			dg := &dgs[sent+i]
			b.wiov[i].Base = &dg.Buf[0]
			b.wiov[i].Len = uint64(len(dg.Buf))
			h := &b.whs[i].hdr
			h.Iov = &b.wiov[i]
			h.Iovlen = 1
			h.Control = nil
			h.Controllen = 0
			h.Flags = 0
			if b.connected || !dg.Addr.AP.IsValid() {
				h.Name = nil
				h.Namelen = 0
			} else {
				h.Name = &b.wnames[i][0]
				h.Namelen = encodeSockaddr(&b.wnames[i], dg.Addr.AP)
			}
			b.whs[i].n = 0
		}
		var wrote int
		var errno syscall.Errno
		err := b.rc.Write(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&b.whs[0])), uintptr(n),
				syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EAGAIN {
				return false
			}
			wrote, errno = int(r1), e
			return true
		})
		if err != nil {
			return sent, err
		}
		if errno != 0 {
			return sent, errno
		}
		if wrote <= 0 {
			return sent, syscall.EIO
		}
		sent += wrote
	}
	return sent, nil
}

// decodeSockaddr converts a raw kernel sockaddr to netip. The host is
// little-endian (build tag), sin_port network order.
func decodeSockaddr(raw *[sockaddrBufLen]byte, namelen uint32) netip.AddrPort {
	if namelen < 4 {
		return netip.AddrPort{}
	}
	family := uint16(raw[0]) | uint16(raw[1])<<8
	port := uint16(raw[2])<<8 | uint16(raw[3])
	switch family {
	case afInet:
		if namelen < sizeofSockaddrInet4 {
			return netip.AddrPort{}
		}
		return netip.AddrPortFrom(netip.AddrFrom4([4]byte(raw[4:8])), port)
	case afInet6:
		if namelen < sizeofSockaddrInet6 {
			return netip.AddrPort{}
		}
		a := netip.AddrFrom16([16]byte(raw[8:24]))
		if a.Is4In6() {
			a = a.Unmap()
		}
		return netip.AddrPortFrom(a, port)
	}
	return netip.AddrPort{}
}

// encodeSockaddr writes ap as a raw sockaddr and returns its length.
func encodeSockaddr(raw *[sockaddrBufLen]byte, ap netip.AddrPort) uint32 {
	port := ap.Port()
	if ap.Addr().Is4() || ap.Addr().Is4In6() {
		a4 := ap.Addr().Unmap().As4()
		raw[0] = afInet
		raw[1] = 0
		raw[2] = byte(port >> 8)
		raw[3] = byte(port)
		copy(raw[4:8], a4[:])
		for i := 8; i < sizeofSockaddrInet4; i++ {
			raw[i] = 0
		}
		return sizeofSockaddrInet4
	}
	a16 := ap.Addr().As16()
	raw[0] = afInet6
	raw[1] = 0
	raw[2] = byte(port >> 8)
	raw[3] = byte(port)
	for i := 4; i < 8; i++ {
		raw[i] = 0 // flowinfo
	}
	copy(raw[8:24], a16[:])
	for i := 24; i < sizeofSockaddrInet6; i++ {
		raw[i] = 0 // scope id
	}
	return sizeofSockaddrInet6
}
