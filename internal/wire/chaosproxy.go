package wire

import (
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
)

// ChaosConfig sets the fault probabilities (0..1) a ChaosProxy applies
// per datagram, independently per direction. Seed makes every run's
// fault schedule reproducible.
type ChaosConfig struct {
	Drop    float64 // datagram silently discarded
	Dup     float64 // datagram forwarded twice
	Reorder float64 // datagram held and swapped with its successor
	Seed    uint64
}

// ChaosStats counts what the proxy did, so tests can assert the faults
// actually fired.
type ChaosStats struct {
	Forwarded uint64
	Dropped   uint64
	Duped     uint64
	Reordered uint64
}

// ChaosProxy is a loopback UDP man-in-the-middle for soak tests: it
// relays datagrams between one client and one server while injecting
// seeded, reproducible loss, duplication and reordering. The wire
// protocol must deliver every reliable frame through it regardless —
// that is the soak tier's assertion. The client dials the proxy's
// ClientAddr instead of the server; the proxy learns the client's
// address from its first datagram.
type ChaosProxy struct {
	cfg ChaosConfig

	lc *net.UDPConn // faces the client (bound)
	sc *net.UDPConn // faces the server (connected)

	clientMu sync.Mutex
	client   netip.AddrPort

	closed atomic.Bool
	wg     sync.WaitGroup

	forwarded atomic.Uint64
	dropped   atomic.Uint64
	duped     atomic.Uint64
	reordered atomic.Uint64
}

// NewChaosProxy starts a proxy on an ephemeral loopback port relaying
// to server.
func NewChaosProxy(server string, cfg ChaosConfig) (*ChaosProxy, error) {
	laddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	lc, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	saddr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		lc.Close()
		return nil, err
	}
	sc, err := net.DialUDP("udp", nil, saddr)
	if err != nil {
		lc.Close()
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p := &ChaosProxy{cfg: cfg, lc: lc, sc: sc}
	p.wg.Add(2)
	go p.clientToServer()
	go p.serverToClient()
	return p, nil
}

// ClientAddr is the address clients dial instead of the real server.
func (p *ChaosProxy) ClientAddr() string { return p.lc.LocalAddr().String() }

// Stats snapshots the fault counters.
func (p *ChaosProxy) Stats() ChaosStats {
	return ChaosStats{
		Forwarded: p.forwarded.Load(),
		Dropped:   p.dropped.Load(),
		Duped:     p.duped.Load(),
		Reordered: p.reordered.Load(),
	}
}

// Close stops both relay directions.
func (p *ChaosProxy) Close() error {
	p.closed.Store(true)
	p.lc.Close()
	p.sc.Close()
	p.wg.Wait()
	return nil
}

// chaosDir is one relay direction's fault state: its own RNG stream
// and its held-back datagram for reordering.
type chaosDir struct {
	p    *ChaosProxy
	rng  uint64
	held []byte
	has  bool
	send func(b []byte)
}

func (d *chaosDir) rand() uint64 {
	x := d.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	d.rng = x
	return x
}

func (d *chaosDir) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	return d.rand()%1000000 < uint64(p*1000000)
}

// relay applies the fault schedule to one datagram.
func (d *chaosDir) relay(b []byte) {
	if d.hit(d.p.cfg.Drop) {
		d.p.dropped.Add(1)
		return
	}
	if d.has {
		// A datagram is held: this one jumps the queue (the reorder).
		d.send(b)
		d.send(d.held)
		d.p.forwarded.Add(2)
		d.has = false
		return
	}
	if d.hit(d.p.cfg.Reorder) {
		d.held = append(d.held[:0], b...)
		d.has = true
		d.p.reordered.Add(1)
		return
	}
	d.send(b)
	d.p.forwarded.Add(1)
	if d.hit(d.p.cfg.Dup) {
		d.send(b)
		d.p.duped.Add(1)
	}
}

// flush releases a held datagram (on shutdown, so nothing is lost that
// the schedule meant to deliver late).
func (d *chaosDir) flush() {
	if d.has {
		d.send(d.held)
		d.p.forwarded.Add(1)
		d.has = false
	}
}

func (p *ChaosProxy) clientToServer() {
	defer p.wg.Done()
	d := &chaosDir{p: p, rng: p.cfg.Seed, send: func(b []byte) { p.sc.Write(b) }}
	defer d.flush()
	buf := make([]byte, MaxDatagram)
	for {
		n, from, err := p.lc.ReadFromUDPAddrPort(buf)
		if err != nil {
			return
		}
		p.clientMu.Lock()
		p.client = canonicalAP(from)
		p.clientMu.Unlock()
		d.relay(buf[:n])
	}
}

func (p *ChaosProxy) serverToClient() {
	defer p.wg.Done()
	d := &chaosDir{p: p, rng: p.cfg.Seed + 0x9e3779b97f4a7c15, send: func(b []byte) {
		p.clientMu.Lock()
		client := p.client
		p.clientMu.Unlock()
		if client.IsValid() {
			p.lc.WriteToUDPAddrPort(b, client)
		}
	}}
	defer d.flush()
	buf := make([]byte, MaxDatagram)
	for {
		n, err := p.sc.Read(buf)
		if err != nil {
			return
		}
		d.relay(buf[:n])
	}
}
