// Package packet implements the packet model used throughout the DPI
// service: a small, allocation-conscious layer codec in the style of
// gopacket, covering the layers the paper's data plane manipulates
// (Ethernet, VLAN and MPLS tags for policy-chain steering, IPv4 with the
// ECN match-mark, TCP/UDP), plus the match-report encapsulation described
// in Section 4.2 and Section 6.5 of the paper.
//
// Decoding follows the DecodingLayerParser idiom: a Parser decodes into
// preallocated layer structs with no per-packet allocation. Serialization
// follows the prepend idiom: layers serialize innermost-first into a
// SerializeBuffer.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// LayerType identifies a protocol layer within a frame.
type LayerType uint8

// Known layer types.
const (
	LayerTypeZero LayerType = iota
	LayerTypeEthernet
	LayerTypeVLAN
	LayerTypeMPLS
	LayerTypeIPv4
	LayerTypeTCP
	LayerTypeUDP
	LayerTypeReport  // NSH-like match-report shim header (Section 4.2)
	LayerTypePayload // opaque application payload
)

// String returns the conventional name of the layer type.
func (t LayerType) String() string {
	switch t {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeVLAN:
		return "VLAN"
	case LayerTypeMPLS:
		return "MPLS"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeReport:
		return "Report"
	case LayerTypePayload:
		return "Payload"
	default:
		return fmt.Sprintf("LayerType(%d)", uint8(t))
	}
}

// EtherType values used by the codec.
const (
	EtherTypeIPv4   uint16 = 0x0800
	EtherTypeVLAN   uint16 = 0x8100
	EtherTypeMPLS   uint16 = 0x8847
	EtherTypeReport uint16 = 0x894F // NSH ethertype, reused for the report shim
)

// IP protocol numbers.
const (
	IPProtoTCP uint8 = 6
	IPProtoUDP uint8 = 17
)

// VLANResultOnlyBit is OR-ed into a policy-chain tag to form the bypass
// tag carried by data packets whose chain is in result-only mode: the
// data packet is steered straight to its destination while the result
// packet follows the middlebox chain under the plain tag (Section 4.2,
// third option). Chain tags must stay below this bit.
const VLANResultOnlyBit uint16 = 0x800

// ECN codepoints within the IPv4 TOS byte. The paper's prototype marks
// packets that produced at least one match using the ECN field so that
// downstream middleboxes know a result packet follows (Section 6.1).
const (
	ECNNotECT uint8 = 0
	ECNECT1   uint8 = 1
	ECNECT0   uint8 = 2
	ECNCE     uint8 = 3 // used as the "has matches" mark
)

// Errors returned by layer decoding.
var (
	ErrTooShort     = errors.New("packet: buffer too short for layer")
	ErrBadVersion   = errors.New("packet: unsupported IP version")
	ErrUnknownLayer = errors.New("packet: no decoder for next layer")
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String formats the address in colon-hex notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IP4 is an IPv4 address.
type IP4 [4]byte

// String formats the address in dotted-quad notation.
func (a IP4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// DecodingLayer is implemented by layer structs that can decode themselves
// from the head of a buffer, report their payload, and name the layer type
// that follows them.
type DecodingLayer interface {
	// LayerType reports which layer this struct decodes.
	LayerType() LayerType
	// DecodeFromBytes parses the layer from the head of data.
	DecodeFromBytes(data []byte) error
	// Payload returns the bytes following this layer's header, valid
	// until the next DecodeFromBytes call.
	Payload() []byte
	// NextLayerType reports the type of the layer carried in Payload,
	// or LayerTypePayload when the payload is opaque.
	NextLayerType() LayerType
}

// Ethernet is the L2 header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16

	payload []byte
}

// EthernetHeaderLen is the length of an Ethernet header without tags.
const EthernetHeaderLen = 14

// LayerType implements DecodingLayer.
func (*Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// DecodeFromBytes implements DecodingLayer.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return ErrTooShort
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	e.payload = data[EthernetHeaderLen:]
	return nil
}

// Payload implements DecodingLayer.
func (e *Ethernet) Payload() []byte { return e.payload }

// NextLayerType implements DecodingLayer.
func (e *Ethernet) NextLayerType() LayerType { return layerForEtherType(e.EtherType) }

func layerForEtherType(et uint16) LayerType {
	switch et {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeVLAN:
		return LayerTypeVLAN
	case EtherTypeMPLS:
		return LayerTypeMPLS
	case EtherTypeReport:
		return LayerTypeReport
	default:
		return LayerTypePayload
	}
}

// VLAN is an 802.1Q tag. The TSA uses VLAN tags to steer packets along
// policy chains (Section 4.1).
type VLAN struct {
	Priority  uint8  // PCP, 3 bits
	ID        uint16 // VID, 12 bits
	EtherType uint16

	payload []byte
}

// VLANHeaderLen is the length of an 802.1Q tag.
const VLANHeaderLen = 4

// LayerType implements DecodingLayer.
func (*VLAN) LayerType() LayerType { return LayerTypeVLAN }

// DecodeFromBytes implements DecodingLayer.
func (v *VLAN) DecodeFromBytes(data []byte) error {
	if len(data) < VLANHeaderLen {
		return ErrTooShort
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	v.Priority = uint8(tci >> 13)
	v.ID = tci & 0x0fff
	v.EtherType = binary.BigEndian.Uint16(data[2:4])
	v.payload = data[VLANHeaderLen:]
	return nil
}

// Payload implements DecodingLayer.
func (v *VLAN) Payload() []byte { return v.payload }

// NextLayerType implements DecodingLayer.
func (v *VLAN) NextLayerType() LayerType { return layerForEtherType(v.EtherType) }

// MPLS is an MPLS label stack entry, an alternative steering tag
// (Section 4.2).
type MPLS struct {
	Label         uint32 // 20 bits
	TrafficClass  uint8  // 3 bits
	BottomOfStack bool
	TTL           uint8

	payload []byte
}

// MPLSHeaderLen is the length of one MPLS label stack entry.
const MPLSHeaderLen = 4

// LayerType implements DecodingLayer.
func (*MPLS) LayerType() LayerType { return LayerTypeMPLS }

// DecodeFromBytes implements DecodingLayer.
func (m *MPLS) DecodeFromBytes(data []byte) error {
	if len(data) < MPLSHeaderLen {
		return ErrTooShort
	}
	w := binary.BigEndian.Uint32(data[0:4])
	m.Label = w >> 12
	m.TrafficClass = uint8(w>>9) & 0x7
	m.BottomOfStack = w&0x100 != 0
	m.TTL = uint8(w)
	m.payload = data[MPLSHeaderLen:]
	return nil
}

// Payload implements DecodingLayer.
func (m *MPLS) Payload() []byte { return m.payload }

// NextLayerType implements DecodingLayer. An MPLS payload carries either
// another label stack entry or, at the bottom of the stack, IPv4 (this
// codec does not carry IPv6).
func (m *MPLS) NextLayerType() LayerType {
	if m.BottomOfStack {
		return LayerTypeIPv4
	}
	return LayerTypeMPLS
}

// IPv4 is the L3 header. Options are not generated but are skipped on
// decode.
type IPv4 struct {
	TOS      uint8 // DSCP<<2 | ECN
	Length   uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst IP4

	headerLen int
	payload   []byte
}

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// LayerType implements DecodingLayer.
func (*IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// DecodeFromBytes implements DecodingLayer.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return ErrTooShort
	}
	if data[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return ErrTooShort
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])
	ip.headerLen = ihl
	end := int(ip.Length)
	if end < ihl || end > len(data) {
		end = len(data)
	}
	ip.payload = data[ihl:end]
	return nil
}

// Payload implements DecodingLayer.
func (ip *IPv4) Payload() []byte { return ip.payload }

// NextLayerType implements DecodingLayer.
func (ip *IPv4) NextLayerType() LayerType {
	switch ip.Protocol {
	case IPProtoTCP:
		return LayerTypeTCP
	case IPProtoUDP:
		return LayerTypeUDP
	default:
		return LayerTypePayload
	}
}

// ECN returns the ECN codepoint from the TOS byte.
func (ip *IPv4) ECN() uint8 { return ip.TOS & 0x3 }

// TCP is the L4 TCP header. Options are skipped on decode and not
// generated.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16

	payload []byte
}

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// LayerType implements DecodingLayer.
func (*TCP) LayerType() LayerType { return LayerTypeTCP }

// DecodeFromBytes implements DecodingLayer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < TCPHeaderLen {
		return ErrTooShort
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	t.Flags = data[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	hl := int(t.DataOffset) * 4
	if hl < TCPHeaderLen || len(data) < hl {
		return ErrTooShort
	}
	t.payload = data[hl:]
	return nil
}

// Payload implements DecodingLayer.
func (t *TCP) Payload() []byte { return t.payload }

// NextLayerType implements DecodingLayer.
func (t *TCP) NextLayerType() LayerType { return LayerTypePayload }

// UDP is the L4 UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16

	payload []byte
}

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// LayerType implements DecodingLayer.
func (*UDP) LayerType() LayerType { return LayerTypeUDP }

// DecodeFromBytes implements DecodingLayer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return ErrTooShort
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	end := int(u.Length)
	if end < UDPHeaderLen || end > len(data) {
		end = len(data)
	}
	u.payload = data[UDPHeaderLen:end]
	return nil
}

// Payload implements DecodingLayer.
func (u *UDP) Payload() []byte { return u.payload }

// NextLayerType implements DecodingLayer.
func (u *UDP) NextLayerType() LayerType { return LayerTypePayload }
