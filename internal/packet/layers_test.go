package packet

import (
	"bytes"
	"testing"
)

var (
	testSrcMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	testDstMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	testSrcIP  = IP4{10, 0, 0, 1}
	testDstIP  = IP4{10, 0, 0, 2}
)

// buildTCPFrame serializes a canonical Eth/IPv4/TCP frame around payload.
func buildTCPFrame(t testing.TB, payload []byte) []byte {
	t.Helper()
	buf := NewSerializeBuffer(64)
	err := SerializeLayers(buf,
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoTCP, Src: testSrcIP, Dst: testDstIP},
		&TCP{SrcPort: 40000, DstPort: 80, Seq: 1, Flags: TCPAck | TCPPsh, Window: 65535},
		Payload(payload),
	)
	if err != nil {
		t.Fatalf("SerializeLayers: %v", err)
	}
	out := make([]byte, len(buf.Bytes()))
	copy(out, buf.Bytes())
	return out
}

func TestSerializeParseRoundTripTCP(t *testing.T) {
	payload := []byte("GET / HTTP/1.1\r\nHost: example.test\r\n\r\n")
	frame := buildTCPFrame(t, payload)

	var (
		eth Ethernet
		ip  IPv4
		tcp TCP
	)
	p := NewParser(LayerTypeEthernet, &eth, &ip, &tcp)
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		t.Fatalf("DecodeLayers: %v", err)
	}
	want := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeTCP}
	if len(decoded) != len(want) {
		t.Fatalf("decoded %v, want %v", decoded, want)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decoded %v, want %v", decoded, want)
		}
	}
	if eth.Src != testSrcMAC || eth.Dst != testDstMAC {
		t.Errorf("eth addrs = %v->%v", eth.Src, eth.Dst)
	}
	if ip.Src != testSrcIP || ip.Dst != testDstIP || ip.Protocol != IPProtoTCP {
		t.Errorf("ip = %+v", ip)
	}
	if int(ip.Length) != IPv4HeaderLen+TCPHeaderLen+len(payload) {
		t.Errorf("ip.Length = %d, want %d", ip.Length, IPv4HeaderLen+TCPHeaderLen+len(payload))
	}
	if tcp.SrcPort != 40000 || tcp.DstPort != 80 {
		t.Errorf("tcp ports = %d->%d", tcp.SrcPort, tcp.DstPort)
	}
	if !bytes.Equal(p.Rest(), payload) {
		t.Errorf("payload = %q, want %q", p.Rest(), payload)
	}
}

func TestSerializeParseRoundTripUDPWithVLAN(t *testing.T) {
	payload := []byte("dns-ish payload")
	buf := NewSerializeBuffer(64)
	err := SerializeLayers(buf,
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeVLAN},
		&VLAN{Priority: 3, ID: 42, EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: testSrcIP, Dst: testDstIP},
		&UDP{SrcPort: 5353, DstPort: 53},
		Payload(payload),
	)
	if err != nil {
		t.Fatalf("SerializeLayers: %v", err)
	}
	var (
		eth  Ethernet
		vlan VLAN
		ip   IPv4
		udp  UDP
	)
	p := NewParser(LayerTypeEthernet, &eth, &vlan, &ip, &udp)
	var decoded []LayerType
	if err := p.DecodeLayers(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("DecodeLayers: %v", err)
	}
	if vlan.ID != 42 || vlan.Priority != 3 {
		t.Errorf("vlan = %+v", vlan)
	}
	if udp.SrcPort != 5353 || udp.DstPort != 53 {
		t.Errorf("udp = %+v", udp)
	}
	if int(udp.Length) != UDPHeaderLen+len(payload) {
		t.Errorf("udp.Length = %d", udp.Length)
	}
	if !bytes.Equal(p.Rest(), payload) {
		t.Errorf("payload = %q, want %q", p.Rest(), payload)
	}
}

func TestMPLSRoundTrip(t *testing.T) {
	buf := NewSerializeBuffer(64)
	err := SerializeLayers(buf,
		&Ethernet{EtherType: EtherTypeMPLS},
		&MPLS{Label: 0xABCDE, TrafficClass: 5, BottomOfStack: true, TTL: 12},
		&IPv4{TTL: 1, Protocol: IPProtoUDP, Src: testSrcIP, Dst: testDstIP},
		&UDP{SrcPort: 1, DstPort: 2},
	)
	if err != nil {
		t.Fatalf("SerializeLayers: %v", err)
	}
	var (
		eth  Ethernet
		mpls MPLS
		ip   IPv4
		udp  UDP
	)
	p := NewParser(LayerTypeEthernet, &eth, &mpls, &ip, &udp)
	var decoded []LayerType
	if err := p.DecodeLayers(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("DecodeLayers: %v", err)
	}
	if mpls.Label != 0xABCDE || mpls.TrafficClass != 5 || !mpls.BottomOfStack || mpls.TTL != 12 {
		t.Errorf("mpls = %+v", mpls)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	frame := buildTCPFrame(t, []byte("x"))
	// Recompute the checksum over the serialized header; the Internet
	// checksum of a header including a correct checksum field is 0.
	hdr := frame[EthernetHeaderLen : EthernetHeaderLen+IPv4HeaderLen]
	var sum uint32
	for i := 0; i < IPv4HeaderLen; i += 2 {
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	if ^uint16(sum) != 0 {
		t.Errorf("serialized IPv4 checksum does not verify (residual %#x)", ^uint16(sum))
	}
}

func TestDecodeTruncatedBuffers(t *testing.T) {
	frame := buildTCPFrame(t, []byte("payload"))
	var (
		eth Ethernet
		ip  IPv4
		tcp TCP
	)
	p := NewParser(LayerTypeEthernet, &eth, &ip, &tcp)
	var decoded []LayerType
	// Every strict prefix short enough to cut a header must error, not
	// panic.
	for n := 0; n < EthernetHeaderLen+IPv4HeaderLen+TCPHeaderLen; n++ {
		if err := p.DecodeLayers(frame[:n], &decoded); err == nil {
			t.Errorf("DecodeLayers(frame[:%d]) = nil error, want failure", n)
		}
	}
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		t.Fatalf("full frame: %v", err)
	}
}

func TestParserUnknownLayerTruncates(t *testing.T) {
	frame := buildTCPFrame(t, []byte("payload"))
	var eth Ethernet
	p := NewParser(LayerTypeEthernet, &eth) // no IPv4 decoder registered
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		t.Fatalf("DecodeLayers: %v", err)
	}
	if !p.Truncated {
		t.Error("Truncated = false, want true")
	}
	if len(decoded) != 1 || decoded[0] != LayerTypeEthernet {
		t.Errorf("decoded = %v", decoded)
	}
	if len(p.Rest()) != len(frame)-EthernetHeaderLen {
		t.Errorf("Rest len = %d", len(p.Rest()))
	}
}

func TestIPv4BadVersionRejected(t *testing.T) {
	frame := buildTCPFrame(t, []byte("p"))
	frame[EthernetHeaderLen] = 6<<4 | 5 // claim IPv6
	var (
		eth Ethernet
		ip  IPv4
	)
	p := NewParser(LayerTypeEthernet, &eth, &ip)
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestLayerTypeString(t *testing.T) {
	for lt, want := range map[LayerType]string{
		LayerTypeEthernet: "Ethernet",
		LayerTypeVLAN:     "VLAN",
		LayerTypeMPLS:     "MPLS",
		LayerTypeIPv4:     "IPv4",
		LayerTypeTCP:      "TCP",
		LayerTypeUDP:      "UDP",
		LayerTypeReport:   "Report",
		LayerTypePayload:  "Payload",
		LayerType(99):     "LayerType(99)",
	} {
		if got := lt.String(); got != want {
			t.Errorf("LayerType(%d).String() = %q, want %q", lt, got, want)
		}
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := NewSerializeBuffer(0) // no headroom: every prepend must grow
	const chunk = 100
	total := 0
	for i := 0; i < 10; i++ {
		s := b.PrependBytes(chunk)
		for j := range s {
			s[j] = byte(i)
		}
		total += chunk
	}
	if len(b.Bytes()) != total {
		t.Fatalf("len = %d, want %d", len(b.Bytes()), total)
	}
	// Innermost prepend (first call) ends up last in the buffer.
	out := b.Bytes()
	for i := 0; i < 10; i++ {
		wantByte := byte(9 - i)
		for j := 0; j < chunk; j++ {
			if out[i*chunk+j] != wantByte {
				t.Fatalf("byte[%d] = %d, want %d", i*chunk+j, out[i*chunk+j], wantByte)
			}
		}
	}
}

func TestAppendBytes(t *testing.T) {
	b := NewSerializeBuffer(8)
	copy(b.AppendBytes(3), "abc")
	copy(b.AppendBytes(3), "def")
	copy(b.PrependBytes(1), "X")
	if got := string(b.Bytes()); got != "Xabcdef" {
		t.Errorf("Bytes() = %q, want %q", got, "Xabcdef")
	}
}

func TestStringFormatting(t *testing.T) {
	if got := testSrcMAC.String(); got != "02:00:00:00:00:01" {
		t.Errorf("MAC.String() = %q", got)
	}
	if got := testSrcIP.String(); got != "10.0.0.1" {
		t.Errorf("IP4.String() = %q", got)
	}
	ft := FiveTuple{Src: testSrcIP, Dst: testDstIP, SrcPort: 1234, DstPort: 80, Protocol: IPProtoTCP}
	if got := ft.String(); got != "10.0.0.1:1234->10.0.0.2:80/tcp" {
		t.Errorf("FiveTuple.String() = %q", got)
	}
}
