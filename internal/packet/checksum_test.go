package packet

import "testing"

func TestTCPChecksumRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, []byte("x"), []byte("hello world"), make([]byte, 1001)} {
		frame := buildTCPFrame(t, payload)
		// The fabric serializes with a zero checksum: "not set".
		if _, present := TCPChecksumValid(frame); present {
			t.Fatal("zero checksum reported as present")
		}
		if err := SetTCPChecksum(frame); err != nil {
			t.Fatal(err)
		}
		valid, present := TCPChecksumValid(frame)
		if !present || !valid {
			t.Fatalf("stamped checksum: valid=%v present=%v", valid, present)
		}
		// Flipping one payload byte must break it (odd-length payloads
		// exercise the trailing-byte fold).
		if len(payload) > 0 {
			frame[len(frame)-1] ^= 0xFF
			if valid, _ := TCPChecksumValid(frame); valid {
				t.Fatal("corrupted payload still validates")
			}
		}
	}
}

func TestCorruptTCPChecksum(t *testing.T) {
	frame := buildTCPFrame(t, []byte("poison segment"))
	if err := CorruptTCPChecksum(frame); err != nil {
		t.Fatal(err)
	}
	valid, present := TCPChecksumValid(frame)
	if !present {
		t.Fatal("corrupt checksum must still read as present (nonzero)")
	}
	if valid {
		t.Fatal("corrupt checksum validates")
	}
}

func TestSetEvilBit(t *testing.T) {
	frame := buildTCPFrame(t, []byte("labeled"))
	var s Summary
	if err := Summarize(frame, &s); err != nil {
		t.Fatal(err)
	}
	if s.IPEvil {
		t.Fatal("evil bit set on a clean frame")
	}
	if s.IPTTL != 64 {
		t.Fatalf("TTL = %d, want 64", s.IPTTL)
	}
	if err := SetEvilBit(frame); err != nil {
		t.Fatal(err)
	}
	if err := Summarize(frame, &s); err != nil {
		t.Fatal(err)
	}
	if !s.IPEvil {
		t.Fatal("evil bit not visible in Summary")
	}
	// The IP header checksum was repaired in place.
	var dec IPv4
	off := EthernetHeaderLen
	if err := dec.DecodeFromBytes(frame[off:]); err != nil {
		t.Fatalf("IPv4 reparse after evil bit: %v", err)
	}
	if got := ipChecksum(frame[off : off+IPv4HeaderLen]); got != 0 {
		t.Fatalf("IP checksum not repaired: residual %#x", got)
	}
}

func TestChecksumHelpersNonTCP(t *testing.T) {
	buf := NewSerializeBuffer(64)
	err := SerializeLayers(buf,
		&Ethernet{Src: MAC{2, 0, 0, 0, 0, 1}, Dst: MAC{2, 0, 0, 0, 0, 2}, EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: IP4{10, 0, 0, 1}, Dst: IP4{10, 0, 0, 2}},
		&UDP{SrcPort: 53, DstPort: 53},
		Payload([]byte("dns")),
	)
	if err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	if _, present := TCPChecksumValid(frame); present {
		t.Fatal("UDP frame reported a TCP checksum")
	}
	if err := SetTCPChecksum(frame); err == nil {
		t.Fatal("SetTCPChecksum accepted a UDP frame")
	}
	if err := CorruptTCPChecksum(frame); err == nil {
		t.Fatal("CorruptTCPChecksum accepted a UDP frame")
	}
}
