package packet

import "encoding/binary"

// FiveTuple identifies a transport flow. It is comparable and usable as a
// map key, in the style of gopacket's Flow.
type FiveTuple struct {
	Src, Dst         IP4
	SrcPort, DstPort uint16
	Protocol         uint8
}

// Reverse returns the tuple of the opposite direction.
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort, Protocol: f.Protocol}
}

// Canonical returns a direction-independent form of the tuple: the
// lexicographically smaller endpoint is placed first, so a flow and its
// reverse canonicalize identically. Stateful DPI keys its flow table on
// the directed tuple, while load balancing uses the canonical form to
// keep both directions on one instance.
func (f FiveTuple) Canonical() FiveTuple {
	a := endpointKey(f.Src, f.SrcPort)
	b := endpointKey(f.Dst, f.DstPort)
	if a <= b {
		return f
	}
	return f.Reverse()
}

func endpointKey(ip IP4, port uint16) uint64 {
	return uint64(binary.BigEndian.Uint32(ip[:]))<<16 | uint64(port)
}

// FastHash returns a quick, non-cryptographic, direction-symmetric hash of
// the tuple: a flow and its reverse hash identically, so hash-based
// sharding keeps both directions of a connection on the same DPI instance.
func (f FiveTuple) FastHash() uint64 {
	a := endpointKey(f.Src, f.SrcPort)
	b := endpointKey(f.Dst, f.DstPort)
	// Combine commutatively so that (a,b) and (b,a) collide by design,
	// then mix with an fmix64 finalizer for dispersion.
	h := a ^ b ^ (a+b)*0x9e3779b97f4a7c15 ^ uint64(f.Protocol)<<56
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// String formats the tuple as "src:port->dst:port/proto".
func (f FiveTuple) String() string {
	proto := "?"
	switch f.Protocol {
	case IPProtoTCP:
		proto = "tcp"
	case IPProtoUDP:
		proto = "udp"
	}
	return f.Src.String() + ":" + utoa(f.SrcPort) + "->" + f.Dst.String() + ":" + utoa(f.DstPort) + "/" + proto
}

func utoa(v uint16) string {
	if v == 0 {
		return "0"
	}
	var buf [5]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
