package packet

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSummarizeAgreesWithParser cross-validates the two decoders: the
// fast header walk (Summarize, used on the instance hot path) and the
// layer-by-layer Parser must extract identical tuples and payloads from
// the same frames, tagged or not, TCP or UDP.
func TestSummarizeAgreesWithParser(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	buf := NewSerializeBuffer(64)
	for trial := 0; trial < 300; trial++ {
		tuple := FiveTuple{
			Src:     IP4{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))},
			Dst:     IP4{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))},
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
		}
		payload := make([]byte, rng.Intn(200))
		for i := range payload {
			payload[i] = byte(rng.Intn(256))
		}
		useUDP := rng.Intn(2) == 0
		useVLAN := rng.Intn(2) == 0
		vlanID := uint16(rng.Intn(4096))

		layers := []SerializableLayer{}
		ethType := EtherTypeIPv4
		if useVLAN {
			ethType = EtherTypeVLAN
		}
		layers = append(layers, &Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: ethType})
		if useVLAN {
			layers = append(layers, &VLAN{ID: vlanID, EtherType: EtherTypeIPv4})
		}
		ipid := uint16(rng.Intn(65536))
		if useUDP {
			tuple.Protocol = IPProtoUDP
			layers = append(layers,
				&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: tuple.Src, Dst: tuple.Dst, ID: ipid},
				&UDP{SrcPort: tuple.SrcPort, DstPort: tuple.DstPort})
		} else {
			tuple.Protocol = IPProtoTCP
			layers = append(layers,
				&IPv4{TTL: 64, Protocol: IPProtoTCP, Src: tuple.Src, Dst: tuple.Dst, ID: ipid},
				&TCP{SrcPort: tuple.SrcPort, DstPort: tuple.DstPort, Seq: rng.Uint32(), Flags: TCPAck})
		}
		layers = append(layers, Payload(payload))
		if err := SerializeLayers(buf, layers...); err != nil {
			t.Fatal(err)
		}
		frame := buf.Bytes()

		// Decoder 1: Summarize.
		var sum Summary
		if err := Summarize(frame, &sum); err != nil {
			t.Fatalf("trial %d: Summarize: %v", trial, err)
		}
		// Decoder 2: Parser.
		var (
			eth  Ethernet
			vlan VLAN
			ip   IPv4
			tcp  TCP
			udp  UDP
		)
		p := NewParser(LayerTypeEthernet, &eth, &vlan, &ip, &tcp, &udp)
		var decoded []LayerType
		if err := p.DecodeLayers(frame, &decoded); err != nil {
			t.Fatalf("trial %d: DecodeLayers: %v", trial, err)
		}

		if sum.Tuple != tuple {
			t.Fatalf("trial %d: Summarize tuple %v, want %v", trial, sum.Tuple, tuple)
		}
		if ip.Src != tuple.Src || ip.Dst != tuple.Dst {
			t.Fatalf("trial %d: Parser IPs %v->%v", trial, ip.Src, ip.Dst)
		}
		if sum.IPID != ipid || ip.ID != ipid {
			t.Fatalf("trial %d: IPID %d/%d, want %d", trial, sum.IPID, ip.ID, ipid)
		}
		if sum.Tagged != useVLAN {
			t.Fatalf("trial %d: Tagged = %v", trial, sum.Tagged)
		}
		if useVLAN && (sum.VLANID != vlanID&0x0fff || vlan.ID != vlanID&0x0fff) {
			t.Fatalf("trial %d: vlan %d/%d, want %d", trial, sum.VLANID, vlan.ID, vlanID&0x0fff)
		}
		if !bytes.Equal(sum.Payload, payload) || !bytes.Equal(p.Rest(), payload) {
			t.Fatalf("trial %d: payload mismatch", trial)
		}
	}
}
