package packet

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestReportRoundTrip(t *testing.T) {
	var r Report
	r.PacketID = 0xDEADBEEF
	r.AddMatch(1, 10, 100)
	r.AddMatch(1, 11, 120)
	r.AddMatch(2, 10, 100)
	r.AddMatch(2, 500, 1)

	enc := r.AppendEncoded(nil)
	if len(enc) != r.EncodedLen() {
		t.Fatalf("EncodedLen = %d, actual %d", r.EncodedLen(), len(enc))
	}
	var got Report
	n, err := DecodeReport(enc, &got)
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d bytes", n, len(enc))
	}
	if !reflect.DeepEqual(&r, &got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestReportTupleRoundTrip(t *testing.T) {
	var r Report
	r.Flags = FlagHasTuple | FlagFinal
	r.Tuple = FiveTuple{Src: IP4{1, 2, 3, 4}, Dst: IP4{5, 6, 7, 8}, SrcPort: 1000, DstPort: 80, Protocol: IPProtoTCP}
	r.AddMatch(3, 1, 5)
	enc := r.AppendEncoded(nil)
	var got Report
	if _, err := DecodeReport(enc, &got); err != nil {
		t.Fatal(err)
	}
	if got.Tuple != r.Tuple || got.Flags != r.Flags {
		t.Errorf("got tuple %v flags %x", got.Tuple, got.Flags)
	}
}

func TestReportRangeCoalescing(t *testing.T) {
	// A pattern like "aaaa" matching inside "aaaaaaaa" fires at 5
	// sequential end positions; the report must coalesce them into one
	// 6-byte range entry (Section 6.5).
	var r Report
	for pos := uint32(4); pos <= 8; pos++ {
		r.AddMatch(1, 7, pos)
	}
	sec := r.SectionFor(1)
	if sec == nil || len(sec.Entries) != 1 {
		t.Fatalf("entries = %+v, want one coalesced range", r.Sections)
	}
	e := sec.Entries[0]
	if e.Pattern != 7 || e.Pos != 4 || e.Count != 5 {
		t.Errorf("entry = %+v, want {7 4 5}", e)
	}
	if e.EncodedLen() != 6 {
		t.Errorf("range EncodedLen = %d, want 6", e.EncodedLen())
	}
	if r.NumMatches() != 5 {
		t.Errorf("NumMatches = %d, want 5", r.NumMatches())
	}
}

func TestReportNoCoalesceAcrossGaps(t *testing.T) {
	var r Report
	r.AddMatch(1, 7, 4)
	r.AddMatch(1, 7, 6) // gap: not sequential
	r.AddMatch(1, 8, 7) // different pattern
	sec := r.SectionFor(1)
	if len(sec.Entries) != 3 {
		t.Fatalf("entries = %+v, want 3 distinct", sec.Entries)
	}
	for _, e := range sec.Entries {
		if e.Count != 1 {
			t.Errorf("entry %+v coalesced unexpectedly", e)
		}
	}
}

func TestReportSingleMatchIsFourBytes(t *testing.T) {
	// Headline claim of Section 6.5: a single match costs 4 bytes (plus
	// fixed per-packet and per-section framing).
	var one, two Report
	one.AddMatch(1, 1, 1)
	two.AddMatch(1, 1, 1)
	two.AddMatch(1, 2, 9)
	if d := two.EncodedLen() - one.EncodedLen(); d != 4 {
		t.Errorf("marginal single-match cost = %d bytes, want 4", d)
	}
}

func TestReportEmpty(t *testing.T) {
	var r Report
	if !r.Empty() {
		t.Error("fresh report not Empty")
	}
	r.AddMatch(1, 1, 1)
	if r.Empty() {
		t.Error("report with a match is Empty")
	}
	enc := r.AppendEncoded(nil)
	r.Reset()
	if !r.Empty() || len(r.Sections) != 0 {
		t.Error("Reset did not clear report")
	}
	var got Report
	if _, err := DecodeReport(enc, &got); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeReportMalformed(t *testing.T) {
	var r Report
	r.AddMatch(1, 1, 1)
	r.AddMatch(2, 2, 2)
	enc := r.AppendEncoded(nil)

	var got Report
	// Every strict prefix must fail cleanly.
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeReport(enc[:n], &got); err == nil {
			t.Errorf("DecodeReport(enc[:%d]) succeeded on truncated input", n)
		}
	}
	// Corrupt magic.
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := DecodeReport(bad, &got); err == nil {
		t.Error("DecodeReport accepted bad magic")
	}
	// Corrupt version.
	bad = append([]byte(nil), enc...)
	bad[2] = 0xFF
	if _, err := DecodeReport(bad, &got); err == nil {
		t.Error("DecodeReport accepted bad version")
	}
}

func TestReportRoundTripProperty(t *testing.T) {
	// Random reports built through AddMatch must round-trip exactly.
	rng := rand.New(rand.NewSource(42))
	f := func(nMatches uint8, packetID uint32) bool {
		var r Report
		r.PacketID = packetID
		pos := uint32(0)
		for i := 0; i < int(nMatches); i++ {
			mbox := uint8(rng.Intn(4))
			pat := uint16(rng.Intn(100))
			pos += uint32(rng.Intn(5)) // sometimes sequential, sometimes gapped
			r.AddMatch(mbox, pat, pos)
		}
		enc := r.AppendEncoded(nil)
		if len(enc) != r.EncodedLen() {
			return false
		}
		var got Report
		n, err := DecodeReport(enc, &got)
		if err != nil || n != len(enc) {
			return false
		}
		return reflect.DeepEqual(&r, &got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
