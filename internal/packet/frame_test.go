package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPushPopVLANRoundTrip(t *testing.T) {
	frame := buildTCPFrame(t, []byte("hello"))
	tagged, err := PushVLAN(frame, 7, 2)
	if err != nil {
		t.Fatalf("PushVLAN: %v", err)
	}
	if len(tagged) != len(frame)+VLANHeaderLen {
		t.Fatalf("tagged len = %d", len(tagged))
	}
	id, ok := OuterVLAN(tagged)
	if !ok || id != 7 {
		t.Fatalf("OuterVLAN = %d, %v", id, ok)
	}
	popped, err := PopVLAN(tagged)
	if err != nil {
		t.Fatalf("PopVLAN: %v", err)
	}
	if !bytes.Equal(popped, frame) {
		t.Error("pop(push(frame)) != frame")
	}
}

func TestPushVLANNested(t *testing.T) {
	frame := buildTCPFrame(t, []byte("hello"))
	t1, _ := PushVLAN(frame, 10, 0)
	t2, err := PushVLAN(t1, 20, 0)
	if err != nil {
		t.Fatalf("PushVLAN nested: %v", err)
	}
	if id, _ := OuterVLAN(t2); id != 20 {
		t.Fatalf("outer id = %d, want 20", id)
	}
	p1, _ := PopVLAN(t2)
	if id, _ := OuterVLAN(p1); id != 10 {
		t.Fatalf("after one pop, outer id = %d, want 10", id)
	}
	p2, _ := PopVLAN(p1)
	if !bytes.Equal(p2, frame) {
		t.Error("double pop != original")
	}
}

func TestPopVLANUntagged(t *testing.T) {
	frame := buildTCPFrame(t, []byte("hello"))
	if _, err := PopVLAN(frame); err == nil {
		t.Error("PopVLAN on untagged frame succeeded")
	}
	if _, ok := OuterVLAN(frame); ok {
		t.Error("OuterVLAN on untagged frame reported a tag")
	}
}

func TestSetVLAN(t *testing.T) {
	frame := buildTCPFrame(t, []byte("hello"))
	tagged, _ := PushVLAN(frame, 7, 5)
	if err := SetVLAN(tagged, 99); err != nil {
		t.Fatalf("SetVLAN: %v", err)
	}
	var v VLAN
	if err := v.DecodeFromBytes(tagged[EthernetHeaderLen:]); err != nil {
		t.Fatal(err)
	}
	if v.ID != 99 || v.Priority != 5 {
		t.Errorf("after SetVLAN: id=%d prio=%d, want 99/5", v.ID, v.Priority)
	}
	if err := SetVLAN(frame, 1); err == nil {
		t.Error("SetVLAN on untagged frame succeeded")
	}
}

func TestECNMark(t *testing.T) {
	frame := buildTCPFrame(t, []byte("payload"))
	if HasECNMark(frame) {
		t.Fatal("fresh frame already marked")
	}
	if err := SetECNMark(frame); err != nil {
		t.Fatalf("SetECNMark: %v", err)
	}
	if !HasECNMark(frame) {
		t.Fatal("mark not visible after SetECNMark")
	}
	// The header checksum must still verify after the in-place rewrite.
	hdr := frame[EthernetHeaderLen : EthernetHeaderLen+IPv4HeaderLen]
	var sum uint32
	for i := 0; i < IPv4HeaderLen; i += 2 {
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	if ^uint16(sum) != 0 {
		t.Error("checksum does not verify after SetECNMark")
	}
}

func TestECNMarkThroughVLAN(t *testing.T) {
	frame := buildTCPFrame(t, []byte("payload"))
	tagged, _ := PushVLAN(frame, 3, 0)
	if err := SetECNMark(tagged); err != nil {
		t.Fatalf("SetECNMark through tag: %v", err)
	}
	if !HasECNMark(tagged) {
		t.Error("mark not visible through VLAN tag")
	}
}

func TestSummarizeTCP(t *testing.T) {
	payload := []byte("summarize me")
	frame := buildTCPFrame(t, payload)
	var s Summary
	if err := Summarize(frame, &s); err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	want := FiveTuple{Src: testSrcIP, Dst: testDstIP, SrcPort: 40000, DstPort: 80, Protocol: IPProtoTCP}
	if s.Tuple != want {
		t.Errorf("tuple = %v, want %v", s.Tuple, want)
	}
	if s.Tagged || s.IsReport {
		t.Errorf("flags: tagged=%v isReport=%v", s.Tagged, s.IsReport)
	}
	if !bytes.Equal(s.Payload, payload) {
		t.Errorf("payload = %q", s.Payload)
	}
	if got := frame[s.PayloadOff:]; !bytes.Equal(got, payload) {
		t.Errorf("PayloadOff slice = %q", got)
	}
}

func TestSummarizeTagged(t *testing.T) {
	payload := []byte("tagged payload")
	frame := buildTCPFrame(t, payload)
	tagged, _ := PushVLAN(frame, 55, 0)
	var s Summary
	if err := Summarize(tagged, &s); err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if !s.Tagged || s.VLANID != 55 {
		t.Errorf("tagged=%v vlan=%d, want true/55", s.Tagged, s.VLANID)
	}
	if !bytes.Equal(s.Payload, payload) {
		t.Errorf("payload = %q", s.Payload)
	}
}

func TestSummarizeReportFrame(t *testing.T) {
	var rep Report
	rep.PacketID = 77
	rep.AddMatch(1, 3, 10)
	reportBytes := rep.AppendEncoded(nil)

	buf := NewSerializeBuffer(32)
	err := SerializeLayers(buf,
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeReport},
		Payload(reportBytes),
	)
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := Summarize(buf.Bytes(), &s); err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if !s.IsReport {
		t.Fatal("IsReport = false")
	}
	var got Report
	if _, err := DecodeReport(s.Payload, &got); err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if got.PacketID != 77 {
		t.Errorf("PacketID = %d", got.PacketID)
	}
}

func TestSummarizeNonIP(t *testing.T) {
	buf := NewSerializeBuffer(32)
	if err := SerializeLayers(buf, &Ethernet{EtherType: 0x0806 /* ARP */}, Payload([]byte{0})); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := Summarize(buf.Bytes(), &s); err != ErrUnknownLayer {
		t.Errorf("err = %v, want ErrUnknownLayer", err)
	}
}

func TestSummarizeTruncated(t *testing.T) {
	frame := buildTCPFrame(t, []byte("x"))
	var s Summary
	for n := 0; n < len(frame)-1; n++ {
		// Must never panic; errors are fine, and prefixes that still
		// contain full headers may succeed.
		_ = Summarize(frame[:n], &s)
	}
}

func TestFiveTupleFastHashSymmetric(t *testing.T) {
	f := func(a, b [4]byte, pa, pb uint16, proto uint8) bool {
		ft := FiveTuple{Src: IP4(a), Dst: IP4(b), SrcPort: pa, DstPort: pb, Protocol: proto}
		return ft.FastHash() == ft.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFiveTupleCanonicalSymmetric(t *testing.T) {
	f := func(a, b [4]byte, pa, pb uint16, proto uint8) bool {
		ft := FiveTuple{Src: IP4(a), Dst: IP4(b), SrcPort: pa, DstPort: pb, Protocol: proto}
		return ft.Canonical() == ft.Reverse().Canonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFastHashDispersion(t *testing.T) {
	// Sharding by FastHash across 8 buckets should be roughly uniform
	// for random flows; a catastrophically skewed hash would defeat the
	// paper's instance load balancing (Figure 3).
	rng := rand.New(rand.NewSource(1))
	const flows, buckets = 8000, 8
	var counts [buckets]int
	for i := 0; i < flows; i++ {
		ft := FiveTuple{
			Src:      IP4{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))},
			Dst:      IP4{192, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))},
			SrcPort:  uint16(rng.Intn(65536)),
			DstPort:  uint16(rng.Intn(65536)),
			Protocol: IPProtoTCP,
		}
		counts[ft.FastHash()%buckets]++
	}
	for i, c := range counts {
		if c < flows/buckets/2 || c > flows/buckets*2 {
			t.Errorf("bucket %d has %d of %d flows", i, c, flows)
		}
	}
}
