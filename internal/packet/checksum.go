package packet

import "encoding/binary"

// This file implements end-to-end TCP checksum handling over raw
// frames. The virtual fabric serializes TCP with a zero checksum
// ("not set") because it never corrupts frames; an adversarial sender,
// however, can inject segments whose checksum is wrong on purpose —
// the end host discards them, so a DPI reassembler that accepts them
// is desynchronized from the stream the host reconstructs. The
// reassembly normalizer uses TCPChecksumValid to reject those
// insertions before ingest.

// onesSum accumulates the one's-complement sum of b into sum. b must
// start at an even offset of the checksummed area.
func onesSum(b []byte, sum uint32) uint32 {
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	return sum
}

// TCPChecksum computes the TCP checksum over the IPv4 pseudo-header
// and the TCP segment (header plus payload), treating the segment's
// checksum field as zero. A computed value of 0 is returned as 0xffff
// (RFC 1071), preserving this codec's "0 means not set" convention.
func TCPChecksum(src, dst IP4, seg []byte) uint16 {
	var ph [12]byte
	copy(ph[0:4], src[:])
	copy(ph[4:8], dst[:])
	ph[9] = IPProtoTCP
	binary.BigEndian.PutUint16(ph[10:12], uint16(len(seg)))
	sum := onesSum(ph[:], 0)
	if len(seg) >= TCPHeaderLen {
		sum = onesSum(seg[:16], sum) // up to the checksum field
		sum = onesSum(seg[18:], sum) // past it (field taken as zero)
	} else {
		sum = onesSum(seg, sum)
	}
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	c := ^uint16(sum)
	if c == 0 {
		c = 0xffff
	}
	return c
}

// tcpSegment locates the TCP segment (header plus payload) of a raw
// Ethernet frame, skipping VLAN tags and IPv4 options.
func tcpSegment(frame []byte) (src, dst IP4, seg []byte, ok bool) {
	off := ipv4Offset(frame)
	if off < 0 {
		return src, dst, nil, false
	}
	h := frame[off:]
	ihl := int(h[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(h) < ihl || h[9] != IPProtoTCP {
		return src, dst, nil, false
	}
	totalLen := int(binary.BigEndian.Uint16(h[2:4]))
	if totalLen < ihl || totalLen > len(h) {
		totalLen = len(h)
	}
	seg = h[ihl:totalLen]
	if len(seg) < TCPHeaderLen {
		return src, dst, nil, false
	}
	copy(src[:], h[12:16])
	copy(dst[:], h[16:20])
	return src, dst, seg, true
}

// TCPChecksumValid verifies the TCP checksum of a raw frame. present
// is false when the frame carries no TCP segment or its checksum field
// is zero (this codec's "not set" convention); valid is meaningful
// only when present.
func TCPChecksumValid(frame []byte) (valid, present bool) {
	src, dst, seg, ok := tcpSegment(frame)
	if !ok {
		return false, false
	}
	stored := binary.BigEndian.Uint16(seg[16:18])
	if stored == 0 {
		return false, false
	}
	return stored == TCPChecksum(src, dst, seg), true
}

// SetTCPChecksum computes and writes the correct TCP checksum into a
// raw frame in place.
func SetTCPChecksum(frame []byte) error {
	src, dst, seg, ok := tcpSegment(frame)
	if !ok {
		return ErrUnknownLayer
	}
	binary.BigEndian.PutUint16(seg[16:18], TCPChecksum(src, dst, seg))
	return nil
}

// CorruptTCPChecksum writes a deliberately wrong, nonzero TCP checksum
// into a raw frame in place — the bad-checksum insertion attack the
// reassembly normalizer must reject.
func CorruptTCPChecksum(frame []byte) error {
	src, dst, seg, ok := tcpSegment(frame)
	if !ok {
		return ErrUnknownLayer
	}
	bad := TCPChecksum(src, dst, seg) ^ 0x5555
	if bad == 0 {
		bad = 0x5555
	}
	binary.BigEndian.PutUint16(seg[16:18], bad)
	return nil
}

// SetEvilBit sets the IPv4 reserved flag (the RFC 3514 "evil bit") in
// place and repairs the header checksum. Adversarial corpora stamp it
// on injected attack segments as in-band ground truth.
func SetEvilBit(frame []byte) error {
	off := ipv4Offset(frame)
	if off < 0 {
		return ErrUnknownLayer
	}
	h := frame[off:]
	ihl := int(h[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(h) < ihl {
		return ErrTooShort
	}
	h[6] |= 0x80
	h[10], h[11] = 0, 0
	binary.BigEndian.PutUint16(h[10:12], ipChecksum(h[:ihl]))
	return nil
}
