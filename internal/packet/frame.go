package packet

import "encoding/binary"

// This file contains in-place operations on raw Ethernet frames: the tag
// push/pop and field-rewrite actions an OpenFlow-style switch applies
// (Section 4.2's tagging option), and a fast header walk used by the DPI
// service instance to find the flow tuple and L7 payload of a frame
// without building layer objects.

// PushVLAN inserts an 802.1Q tag directly after the Ethernet header and
// returns the new frame. The original frame is not modified.
func PushVLAN(frame []byte, id uint16, priority uint8) ([]byte, error) {
	if len(frame) < EthernetHeaderLen {
		return nil, ErrTooShort
	}
	out := make([]byte, len(frame)+VLANHeaderLen)
	copy(out, frame[:12])
	binary.BigEndian.PutUint16(out[12:14], EtherTypeVLAN)
	binary.BigEndian.PutUint16(out[14:16], uint16(priority)<<13|id&0x0fff)
	copy(out[16:18], frame[12:14]) // inner ethertype
	copy(out[18:], frame[EthernetHeaderLen:])
	return out, nil
}

// PopVLAN removes the outermost 802.1Q tag and returns the new frame. It
// fails if the frame is untagged.
func PopVLAN(frame []byte) ([]byte, error) {
	if len(frame) < EthernetHeaderLen+VLANHeaderLen {
		return nil, ErrTooShort
	}
	if binary.BigEndian.Uint16(frame[12:14]) != EtherTypeVLAN {
		return nil, ErrUnknownLayer
	}
	out := make([]byte, len(frame)-VLANHeaderLen)
	copy(out, frame[:12])
	copy(out[12:14], frame[16:18]) // restore inner ethertype
	copy(out[14:], frame[18:])
	return out, nil
}

// OuterVLAN returns the VLAN ID of the outermost tag, or ok=false if the
// frame is untagged. The TSA tags each packet with its policy-chain
// identifier; the DPI service instance reads the tag to select the active
// pattern sets (Section 4.1).
func OuterVLAN(frame []byte) (id uint16, ok bool) {
	if len(frame) < EthernetHeaderLen+VLANHeaderLen {
		return 0, false
	}
	if binary.BigEndian.Uint16(frame[12:14]) != EtherTypeVLAN {
		return 0, false
	}
	return binary.BigEndian.Uint16(frame[14:16]) & 0x0fff, true
}

// SetVLAN rewrites the outermost VLAN ID in place, preserving priority.
func SetVLAN(frame []byte, id uint16) error {
	if _, ok := OuterVLAN(frame); !ok {
		return ErrUnknownLayer
	}
	tci := binary.BigEndian.Uint16(frame[14:16])
	binary.BigEndian.PutUint16(frame[14:16], tci&0xe000|id&0x0fff)
	return nil
}

// ipv4Offset returns the byte offset of the IPv4 header, skipping any
// VLAN tags, or -1 if the frame does not carry IPv4.
func ipv4Offset(frame []byte) int {
	off := 12
	for {
		if len(frame) < off+2 {
			return -1
		}
		switch binary.BigEndian.Uint16(frame[off : off+2]) {
		case EtherTypeVLAN:
			off += 4
		case EtherTypeIPv4:
			off += 2
			if len(frame) < off+IPv4HeaderLen {
				return -1
			}
			return off
		default:
			return -1
		}
	}
}

// SetECNMark sets the IPv4 ECN field to CE in place and repairs the
// header checksum. The paper's prototype uses this single-bit-style mark
// to tell downstream middleboxes that a match-report packet follows
// (Section 6.1); unmarked packets are forwarded entirely unmodified.
func SetECNMark(frame []byte) error {
	off := ipv4Offset(frame)
	if off < 0 {
		return ErrUnknownLayer
	}
	h := frame[off:]
	h[1] = h[1]&^0x3 | ECNCE
	h[10], h[11] = 0, 0
	ihl := int(h[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(h) < ihl {
		return ErrTooShort
	}
	binary.BigEndian.PutUint16(h[10:12], ipChecksum(h[:ihl]))
	return nil
}

// HasECNMark reports whether the frame's IPv4 ECN field is CE.
func HasECNMark(frame []byte) bool {
	off := ipv4Offset(frame)
	return off >= 0 && frame[off+1]&0x3 == ECNCE
}

// Summary is the result of a fast header walk over a raw frame.
type Summary struct {
	Tuple      FiveTuple
	VLANID     uint16 // outermost tag, 0 if none
	Tagged     bool
	IsReport   bool   // frame carries a Report shim instead of IPv4
	IPID       uint16 // IPv4 identification field, pairs data and result packets
	ECNMarked  bool   // IPv4 ECN is CE — a result packet follows
	IPTTL      uint8  // IPv4 TTL — short values suggest DPI-only segments
	IPEvil     bool   // IPv4 reserved flag set (RFC 3514 attack label)
	TCPFlags   uint8
	TCPSeq     uint32
	PayloadOff int // offset of the L7 payload within the frame
	Payload    []byte
}

// Summarize walks Ethernet, tags, IPv4 and TCP/UDP headers of a raw frame
// without allocating, filling s. Frames whose (possibly tag-nested)
// ethertype is EtherTypeReport are flagged IsReport with Payload set to
// the report bytes. Non-IP frames return ErrUnknownLayer.
func Summarize(frame []byte, s *Summary) error {
	*s = Summary{}
	if len(frame) < EthernetHeaderLen {
		return ErrTooShort
	}
	off := 12
	for {
		if len(frame) < off+2 {
			return ErrTooShort
		}
		et := binary.BigEndian.Uint16(frame[off : off+2])
		switch et {
		case EtherTypeVLAN:
			if len(frame) < off+6 {
				return ErrTooShort
			}
			if !s.Tagged {
				s.Tagged = true
				s.VLANID = binary.BigEndian.Uint16(frame[off+2:off+4]) & 0x0fff
			}
			off += 4
		case EtherTypeReport:
			s.IsReport = true
			s.PayloadOff = off + 2
			s.Payload = frame[off+2:]
			return nil
		case EtherTypeIPv4:
			return summarizeIPv4(frame, off+2, s)
		default:
			return ErrUnknownLayer
		}
	}
}

func summarizeIPv4(frame []byte, off int, s *Summary) error {
	if len(frame) < off+IPv4HeaderLen {
		return ErrTooShort
	}
	h := frame[off:]
	ihl := int(h[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(h) < ihl {
		return ErrTooShort
	}
	copy(s.Tuple.Src[:], h[12:16])
	copy(s.Tuple.Dst[:], h[16:20])
	s.Tuple.Protocol = h[9]
	s.IPID = binary.BigEndian.Uint16(h[4:6])
	s.ECNMarked = h[1]&0x3 == ECNCE
	s.IPTTL = h[8]
	s.IPEvil = h[6]&0x80 != 0
	totalLen := int(binary.BigEndian.Uint16(h[2:4]))
	if totalLen < ihl || totalLen > len(h) {
		totalLen = len(h)
	}
	l4 := h[ihl:totalLen]
	switch s.Tuple.Protocol {
	case IPProtoTCP:
		if len(l4) < TCPHeaderLen {
			return ErrTooShort
		}
		s.Tuple.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		s.Tuple.DstPort = binary.BigEndian.Uint16(l4[2:4])
		s.TCPSeq = binary.BigEndian.Uint32(l4[4:8])
		s.TCPFlags = l4[13] & 0x3f
		hl := int(l4[12]>>4) * 4
		if hl < TCPHeaderLen || len(l4) < hl {
			return ErrTooShort
		}
		s.PayloadOff = off + ihl + hl
		s.Payload = l4[hl:]
	case IPProtoUDP:
		if len(l4) < UDPHeaderLen {
			return ErrTooShort
		}
		s.Tuple.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		s.Tuple.DstPort = binary.BigEndian.Uint16(l4[2:4])
		s.PayloadOff = off + ihl + UDPHeaderLen
		s.Payload = l4[UDPHeaderLen:]
	default:
		s.PayloadOff = off + ihl
		s.Payload = l4
	}
	return nil
}
