package packet

// Parser decodes a known layer stack into preallocated layer structs with
// no per-packet allocation, in the style of gopacket's
// DecodingLayerParser. A Parser is not safe for concurrent use; create one
// per goroutine.
type Parser struct {
	first  LayerType
	layers map[LayerType]DecodingLayer

	// Truncated is set after DecodeLayers when decoding stopped because
	// no decoder was registered for the next layer type; the remaining
	// bytes are available via Rest.
	Truncated bool
	rest      []byte
}

// NewParser returns a Parser that starts decoding at first and dispatches
// to the given layers by type.
func NewParser(first LayerType, decoders ...DecodingLayer) *Parser {
	p := &Parser{first: first, layers: make(map[LayerType]DecodingLayer, len(decoders))}
	for _, d := range decoders {
		p.layers[d.LayerType()] = d
	}
	return p
}

// AddDecodingLayer registers an additional decoder.
func (p *Parser) AddDecodingLayer(d DecodingLayer) { p.layers[d.LayerType()] = d }

// DecodeLayers decodes data into the registered layers, appending each
// decoded layer's type to *decoded (which is truncated first). Decoding
// stops cleanly at LayerTypePayload or at the first type with no
// registered decoder (Truncated is set and Rest returns the remaining
// bytes). A decode error from a layer is returned as-is.
func (p *Parser) DecodeLayers(data []byte, decoded *[]LayerType) error {
	*decoded = (*decoded)[:0]
	p.Truncated = false
	p.rest = nil
	t := p.first
	for t != LayerTypePayload {
		d, ok := p.layers[t]
		if !ok {
			p.Truncated = true
			p.rest = data
			return nil
		}
		if err := d.DecodeFromBytes(data); err != nil {
			return err
		}
		*decoded = append(*decoded, t)
		data = d.Payload()
		t = d.NextLayerType()
	}
	p.rest = data
	return nil
}

// Rest returns the undecoded remainder after the last DecodeLayers call:
// the application payload on a clean stop, or the bytes of the first
// unknown layer when Truncated is set.
func (p *Parser) Rest() []byte { return p.rest }
