package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements the match-report wire format of Section 6.5: a
// single match is reported in 4 bytes, and runs of the same pattern at
// sequential positions (a repeated-character pattern matching a repeated
// input) coalesce into a 6-byte range report. Reports are grouped into
// per-middlebox sections so each middlebox on the chain extracts only its
// own results.
//
// A report travels either as an NSH-like shim layer in front of the
// original packet (EtherTypeReport), or as a dedicated result packet sent
// right after the ECN-marked data packet — the mode the paper's prototype
// uses (Section 6.1).

// Report header layout:
//
//	0      2      3      4        8         9
//	+------+------+------+--------+---------+
//	| "DR" | ver  | flags| pktID  | nSection|
//	+------+------+------+--------+---------+
//	[ 13-byte five-tuple when FlagHasTuple ]
//	sections...
//
// Section layout: mboxID(1) entryCount(2) entries.
// Entry layout: patternID(2, high bit = range) pos(2) [count(2) if range].
const (
	reportMagic0     = 'D'
	reportMagic1     = 'R'
	reportVersion    = 1
	reportHeaderLen  = 9
	tupleEncodedLen  = 13
	entryBaseLen     = 4
	entryRangeExtra  = 2
	sectionHeaderLen = 3

	// FlagHasTuple marks a report that embeds the flow five-tuple, so
	// read-only middleboxes can attribute results without receiving the
	// packet itself (Section 4.2, third option).
	FlagHasTuple uint8 = 1 << 0
	// FlagFinal marks the last report of a flow (emitted on flow
	// teardown by stateful scans).
	FlagFinal uint8 = 1 << 1

	rangeFlag uint16 = 1 << 15
	// MaxPatternID is the largest per-middlebox pattern identifier the
	// wire format can carry.
	MaxPatternID = int(rangeFlag - 1)
)

// ErrBadReport is returned when decoding a malformed report.
var ErrBadReport = errors.New("packet: malformed match report")

// Entry is one (possibly ranged) pattern occurrence within a section.
// Pos is the value of the scan counter at the match — the number of
// payload bytes consumed when the pattern's last byte matched — truncated
// to 16 bits on the wire. Count is the number of sequential occurrences
// at positions Pos, Pos+1, ..., Pos+Count-1; it is 1 for a plain match.
type Entry struct {
	Pattern uint16
	Pos     uint16
	Count   uint16
}

// EncodedLen returns the wire size of the entry: 4 bytes, or 6 for a
// range (Count > 1).
func (e Entry) EncodedLen() int {
	if e.Count > 1 {
		return entryBaseLen + entryRangeExtra
	}
	return entryBaseLen
}

// Section holds all results destined for one middlebox.
type Section struct {
	Mbox    uint8
	Entries []Entry
}

// Report is a decoded (or under-construction) match report.
type Report struct {
	PacketID uint32
	Flags    uint8
	Tuple    FiveTuple // meaningful only when Flags&FlagHasTuple != 0
	Sections []Section
}

// Reset clears r for reuse, retaining section storage.
func (r *Report) Reset() {
	r.PacketID = 0
	r.Flags = 0
	r.Tuple = FiveTuple{}
	r.Sections = r.Sections[:0]
}

// AddMatch records one occurrence of pattern for mbox at position pos,
// coalescing with the previous entry of the same section into a range
// when the positions are sequential. Matches must be added in scan order
// (non-decreasing pos) for coalescing to trigger; out-of-order adds are
// still recorded correctly, just without coalescing.
func (r *Report) AddMatch(mbox uint8, pattern uint16, pos uint32) {
	sec := r.section(mbox)
	p16 := uint16(pos)
	if n := len(sec.Entries); n > 0 {
		last := &sec.Entries[n-1]
		if last.Pattern == pattern && last.Count < 0xffff && p16 == last.Pos+last.Count {
			last.Count++
			return
		}
	}
	sec.Entries = append(sec.Entries, Entry{Pattern: pattern, Pos: p16, Count: 1})
}

func (r *Report) section(mbox uint8) *Section {
	for i := range r.Sections {
		if r.Sections[i].Mbox == mbox {
			return &r.Sections[i]
		}
	}
	r.Sections = append(r.Sections, Section{Mbox: mbox})
	return &r.Sections[len(r.Sections)-1]
}

// Clone returns a deep copy of the report sharing no storage with r,
// so the copy outlives any reuse of r's buffers.
func (r *Report) Clone() *Report {
	//dpi:coldalloc(match path: >90% of packets match nothing and never clone, §6.5)
	out := &Report{PacketID: r.PacketID, Flags: r.Flags, Tuple: r.Tuple}
	if len(r.Sections) > 0 {
		//dpi:coldalloc(match path: sections copied only for matched packets)
		out.Sections = make([]Section, len(r.Sections))
		for i := range r.Sections {
			out.Sections[i] = Section{
				Mbox:    r.Sections[i].Mbox,
				Entries: append([]Entry(nil), r.Sections[i].Entries...),
			}
		}
	}
	return out
}

// Empty reports whether the report carries no matches.
func (r *Report) Empty() bool {
	for i := range r.Sections {
		if len(r.Sections[i].Entries) > 0 {
			return false
		}
	}
	return true
}

// NumMatches returns the total number of occurrences carried, counting a
// range entry as Count occurrences.
func (r *Report) NumMatches() int {
	n := 0
	for i := range r.Sections {
		for _, e := range r.Sections[i].Entries {
			n += int(e.Count)
		}
	}
	return n
}

// EncodedLen returns the exact wire size of the report.
func (r *Report) EncodedLen() int {
	n := reportHeaderLen
	if r.Flags&FlagHasTuple != 0 {
		n += tupleEncodedLen
	}
	for i := range r.Sections {
		n += sectionHeaderLen
		for _, e := range r.Sections[i].Entries {
			n += e.EncodedLen()
		}
	}
	return n
}

// AppendEncoded appends the wire encoding of r to dst and returns the
// extended slice.
func (r *Report) AppendEncoded(dst []byte) []byte {
	if len(r.Sections) > 255 {
		panic(fmt.Sprintf("packet: %d report sections exceed wire limit", len(r.Sections)))
	}
	var hdr [reportHeaderLen]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = reportMagic0, reportMagic1, reportVersion, r.Flags
	binary.BigEndian.PutUint32(hdr[4:8], r.PacketID)
	hdr[8] = uint8(len(r.Sections))
	dst = append(dst, hdr[:]...)
	if r.Flags&FlagHasTuple != 0 {
		dst = append(dst, r.Tuple.Src[:]...)
		dst = append(dst, r.Tuple.Dst[:]...)
		var p [5]byte
		binary.BigEndian.PutUint16(p[0:2], r.Tuple.SrcPort)
		binary.BigEndian.PutUint16(p[2:4], r.Tuple.DstPort)
		p[4] = r.Tuple.Protocol
		dst = append(dst, p[:]...)
	}
	for i := range r.Sections {
		s := &r.Sections[i]
		var sh [sectionHeaderLen]byte
		sh[0] = s.Mbox
		binary.BigEndian.PutUint16(sh[1:3], uint16(len(s.Entries)))
		dst = append(dst, sh[:]...)
		for _, e := range s.Entries {
			var eb [entryBaseLen + entryRangeExtra]byte
			pid := e.Pattern
			n := entryBaseLen
			if e.Count > 1 {
				pid |= rangeFlag
				binary.BigEndian.PutUint16(eb[4:6], e.Count)
				n += entryRangeExtra
			}
			binary.BigEndian.PutUint16(eb[0:2], pid)
			binary.BigEndian.PutUint16(eb[2:4], e.Pos)
			dst = append(dst, eb[:n]...)
		}
	}
	return dst
}

// DecodeReport parses a wire-format report into r (which is Reset first)
// and returns the number of bytes consumed.
func DecodeReport(data []byte, r *Report) (int, error) {
	r.Reset()
	if len(data) < reportHeaderLen {
		return 0, ErrBadReport
	}
	if data[0] != reportMagic0 || data[1] != reportMagic1 || data[2] != reportVersion {
		return 0, ErrBadReport
	}
	r.Flags = data[3]
	r.PacketID = binary.BigEndian.Uint32(data[4:8])
	nSections := int(data[8])
	off := reportHeaderLen
	if r.Flags&FlagHasTuple != 0 {
		if len(data) < off+tupleEncodedLen {
			return 0, ErrBadReport
		}
		copy(r.Tuple.Src[:], data[off:off+4])
		copy(r.Tuple.Dst[:], data[off+4:off+8])
		r.Tuple.SrcPort = binary.BigEndian.Uint16(data[off+8 : off+10])
		r.Tuple.DstPort = binary.BigEndian.Uint16(data[off+10 : off+12])
		r.Tuple.Protocol = data[off+12]
		off += tupleEncodedLen
	}
	for s := 0; s < nSections; s++ {
		if len(data) < off+sectionHeaderLen {
			return 0, ErrBadReport
		}
		sec := Section{Mbox: data[off]}
		count := int(binary.BigEndian.Uint16(data[off+1 : off+3]))
		off += sectionHeaderLen
		sec.Entries = make([]Entry, 0, count)
		for e := 0; e < count; e++ {
			if len(data) < off+entryBaseLen {
				return 0, ErrBadReport
			}
			pid := binary.BigEndian.Uint16(data[off : off+2])
			ent := Entry{Pattern: pid &^ rangeFlag, Pos: binary.BigEndian.Uint16(data[off+2 : off+4]), Count: 1}
			off += entryBaseLen
			if pid&rangeFlag != 0 {
				if len(data) < off+entryRangeExtra {
					return 0, ErrBadReport
				}
				ent.Count = binary.BigEndian.Uint16(data[off : off+2])
				off += entryRangeExtra
			}
			sec.Entries = append(sec.Entries, ent)
		}
		r.Sections = append(r.Sections, sec)
	}
	return off, nil
}

// SectionFor returns the section destined for mbox, or nil.
func (r *Report) SectionFor(mbox uint8) *Section {
	for i := range r.Sections {
		if r.Sections[i].Mbox == mbox {
			return &r.Sections[i]
		}
	}
	return nil
}
