package packet

import "encoding/binary"

// SerializableLayer is implemented by layers that can write themselves
// onto the front of a SerializeBuffer. As in gopacket, serialization
// proceeds innermost-layer-first, each layer prepending its header and
// treating the buffer's current contents as its payload.
type SerializableLayer interface {
	// SerializeTo prepends the layer onto b. Layers that carry lengths
	// or checksums over their payload (IPv4, TCP, UDP) compute them
	// from the buffer's current contents.
	SerializeTo(b *SerializeBuffer) error
}

// SerializeBuffer accumulates a packet from the innermost layer outward.
// The zero value is ready to use; Reset allows reuse across packets.
type SerializeBuffer struct {
	buf   []byte
	start int
}

// NewSerializeBuffer returns an empty buffer with room for headroom bytes
// of headers to be prepended without reallocation.
func NewSerializeBuffer(headroom int) *SerializeBuffer {
	b := &SerializeBuffer{buf: make([]byte, headroom), start: headroom}
	return b
}

// Bytes returns the serialized packet so far.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:] }

// Reset empties the buffer, retaining its storage.
func (b *SerializeBuffer) Reset() { b.start = len(b.buf) }

// PrependBytes returns a writable slice of n bytes newly placed before
// the current contents.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if b.start < n {
		grown := make([]byte, n+len(b.buf)-b.start+64)
		copy(grown[n+64:], b.buf[b.start:])
		b.buf = grown
		b.start = n + 64
	}
	b.start -= n
	return b.buf[b.start : b.start+n]
}

// AppendBytes returns a writable slice of n bytes newly placed after the
// current contents. It is used to place the payload before prepending
// headers.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	old := len(b.buf)
	if cap(b.buf) >= old+n {
		b.buf = b.buf[:old+n]
	} else {
		grown := make([]byte, old+n, (old+n)*2)
		copy(grown, b.buf)
		b.buf = grown
	}
	return b.buf[old : old+n]
}

// SerializeLayers resets b and serializes the given layers outermost-first
// (the conventional reading order), so callers list layers the way they
// appear on the wire.
func SerializeLayers(b *SerializeBuffer, layers ...SerializableLayer) error {
	b.Reset()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return err
		}
	}
	return nil
}

// Payload is a SerializableLayer wrapping raw application bytes.
type Payload []byte

// SerializeTo implements SerializableLayer.
func (p Payload) SerializeTo(b *SerializeBuffer) error {
	copy(b.PrependBytes(len(p)), p)
	return nil
}

// SerializeTo implements SerializableLayer.
func (e *Ethernet) SerializeTo(b *SerializeBuffer) error {
	h := b.PrependBytes(EthernetHeaderLen)
	copy(h[0:6], e.Dst[:])
	copy(h[6:12], e.Src[:])
	binary.BigEndian.PutUint16(h[12:14], e.EtherType)
	return nil
}

// SerializeTo implements SerializableLayer.
func (v *VLAN) SerializeTo(b *SerializeBuffer) error {
	h := b.PrependBytes(VLANHeaderLen)
	binary.BigEndian.PutUint16(h[0:2], uint16(v.Priority)<<13|v.ID&0x0fff)
	binary.BigEndian.PutUint16(h[2:4], v.EtherType)
	return nil
}

// SerializeTo implements SerializableLayer.
func (m *MPLS) SerializeTo(b *SerializeBuffer) error {
	h := b.PrependBytes(MPLSHeaderLen)
	w := m.Label<<12 | uint32(m.TrafficClass&0x7)<<9 | uint32(m.TTL)
	if m.BottomOfStack {
		w |= 0x100
	}
	binary.BigEndian.PutUint32(h[0:4], w)
	return nil
}

// SerializeTo implements SerializableLayer. Length and Checksum are
// computed over the current buffer contents.
func (ip *IPv4) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	h := b.PrependBytes(IPv4HeaderLen)
	h[0] = 4<<4 | IPv4HeaderLen/4
	h[1] = ip.TOS
	binary.BigEndian.PutUint16(h[2:4], uint16(IPv4HeaderLen+payloadLen))
	binary.BigEndian.PutUint16(h[4:6], ip.ID)
	binary.BigEndian.PutUint16(h[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	h[8] = ip.TTL
	h[9] = ip.Protocol
	h[10], h[11] = 0, 0
	copy(h[12:16], ip.Src[:])
	copy(h[16:20], ip.Dst[:])
	binary.BigEndian.PutUint16(h[10:12], ipChecksum(h[:IPv4HeaderLen]))
	return nil
}

// SerializeTo implements SerializableLayer. The checksum field is left
// zero: the virtual network does not corrupt frames, and middleboxes that
// need end-to-end integrity recompute it via SetTCPChecksum.
func (t *TCP) SerializeTo(b *SerializeBuffer) error {
	h := b.PrependBytes(TCPHeaderLen)
	binary.BigEndian.PutUint16(h[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], t.DstPort)
	binary.BigEndian.PutUint32(h[4:8], t.Seq)
	binary.BigEndian.PutUint32(h[8:12], t.Ack)
	h[12] = (TCPHeaderLen / 4) << 4
	h[13] = t.Flags & 0x3f
	binary.BigEndian.PutUint16(h[14:16], t.Window)
	binary.BigEndian.PutUint16(h[16:18], t.Checksum)
	binary.BigEndian.PutUint16(h[18:20], t.Urgent)
	return nil
}

// SerializeTo implements SerializableLayer. Length is computed over the
// current buffer contents.
func (u *UDP) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	h := b.PrependBytes(UDPHeaderLen)
	binary.BigEndian.PutUint16(h[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], u.DstPort)
	binary.BigEndian.PutUint16(h[4:6], uint16(UDPHeaderLen+payloadLen))
	binary.BigEndian.PutUint16(h[6:8], u.Checksum)
	return nil
}

// ipChecksum computes the Internet checksum over b (the IPv4 header with
// its checksum field zeroed).
func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	return ^uint16(sum)
}
