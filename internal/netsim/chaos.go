package netsim

import (
	"math/rand"
	"sync"
	"time"
)

// This file is the fault-injection layer: per-link-direction drop,
// duplication, added delay and partition, plus whole-node crash and
// restart. Faults act at delivery time inside the link goroutines, so
// node and switch implementations stay oblivious — exactly like a
// Mininet experiment pulling a veth down under a live DPI deployment.
// The chaos RNG is explicitly seeded (SetChaosSeed) so CI failure
// schedules are reproducible.

// Fault describes the impairments of one link direction.
type Fault struct {
	// DropProb is the probability in [0,1] that a frame is discarded.
	DropProb float64
	// DupProb is the probability in [0,1] that a frame is delivered
	// twice (duplication happens after the drop decision).
	DupProb float64
	// ReorderProb is the probability in [0,1] that a frame is held back
	// and delivered after its successor on the same direction — a pure
	// transposition, no loss.
	ReorderProb float64
	// ExtraLatency is added to every delivered frame.
	ExtraLatency time.Duration
	// Partition drops every frame, as a severed cable would.
	Partition bool
}

// ChaosStats counts the layer's interventions.
type ChaosStats struct {
	Dropped    uint64 // frames discarded (faults and crashed nodes)
	Duplicated uint64 // extra copies delivered
	Delayed    uint64 // frames held back by ExtraLatency
	Reordered  uint64 // frames swapped with their successor
}

// chaosState lives inside Network, zero-valued until a fault is
// injected; the maps are created lazily so fault-free fabrics pay only
// a mutex check per delivery.
type chaosState struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults map[[2]string]Fault // [src,dst] direction
	down   map[string]bool
	stats  ChaosStats
}

// SetChaosSeed seeds the fault RNG; tests call it before injecting
// probabilistic faults so drop schedules are deterministic. The default
// seed is 1.
func (n *Network) SetChaosSeed(seed int64) {
	n.chaos.mu.Lock()
	defer n.chaos.mu.Unlock()
	n.chaos.rng = rand.New(rand.NewSource(seed))
}

// SetLinkFault installs f on the src -> dst direction (node names),
// replacing any previous fault. The reverse direction is untouched;
// call twice for a symmetric impairment.
func (n *Network) SetLinkFault(src, dst string, f Fault) {
	n.chaos.mu.Lock()
	defer n.chaos.mu.Unlock()
	if n.chaos.faults == nil {
		n.chaos.faults = make(map[[2]string]Fault)
	}
	n.chaos.faults[[2]string{src, dst}] = f
}

// ClearLinkFault removes the src -> dst fault.
func (n *Network) ClearLinkFault(src, dst string) {
	n.chaos.mu.Lock()
	defer n.chaos.mu.Unlock()
	delete(n.chaos.faults, [2]string{src, dst})
}

// CrashNode kills the named node: every frame to or from it is dropped
// until RestartNode. The node's goroutines and state are untouched — a
// crashed DPI instance still holds its flow state, mirroring a hung
// process — only its connectivity dies.
func (n *Network) CrashNode(name string) {
	n.chaos.mu.Lock()
	defer n.chaos.mu.Unlock()
	if n.chaos.down == nil {
		n.chaos.down = make(map[string]bool)
	}
	n.chaos.down[name] = true
}

// RestartNode reconnects a crashed node.
func (n *Network) RestartNode(name string) {
	n.chaos.mu.Lock()
	defer n.chaos.mu.Unlock()
	delete(n.chaos.down, name)
}

// NodeDown reports whether the node is currently crashed.
func (n *Network) NodeDown(name string) bool {
	n.chaos.mu.Lock()
	defer n.chaos.mu.Unlock()
	return n.chaos.down[name]
}

// ChaosStats returns a snapshot of the fault layer's intervention
// counters.
func (n *Network) ChaosStats() ChaosStats {
	n.chaos.mu.Lock()
	defer n.chaos.mu.Unlock()
	return n.chaos.stats
}

// chaosVerdict decides one delivery: drop it, duplicate it, hold it
// back behind its successor, and/or delay it. Called from link
// goroutines.
func (n *Network) chaosVerdict(src, dst string) (drop, dup, reorder bool, delay time.Duration) {
	c := &n.chaos
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down[src] || c.down[dst] {
		c.stats.Dropped++
		return true, false, false, 0
	}
	f, ok := c.faults[[2]string{src, dst}]
	if !ok {
		return false, false, false, 0
	}
	if f.Partition {
		c.stats.Dropped++
		return true, false, false, 0
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(1))
	}
	if f.DropProb > 0 && c.rng.Float64() < f.DropProb {
		c.stats.Dropped++
		return true, false, false, 0
	}
	if f.DupProb > 0 && c.rng.Float64() < f.DupProb {
		dup = true
		c.stats.Duplicated++
	}
	if f.ReorderProb > 0 && c.rng.Float64() < f.ReorderProb {
		reorder = true
		c.stats.Reordered++
	}
	if f.ExtraLatency > 0 {
		c.stats.Delayed++
	}
	return false, dup, reorder, f.ExtraLatency
}

// chaosActive cheaply reports whether any fault or crash is installed,
// letting the delivery path skip the verdict entirely on healthy
// fabrics.
func (n *Network) chaosActive() bool {
	c := &n.chaos
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.faults) > 0 || len(c.down) > 0
}
