package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpiservice/internal/packet"
)

func mkHost(t *testing.T, n *Network, name string, last byte) *Host {
	t.Helper()
	h := NewHost(name, packet.MAC{2, 0, 0, 0, 0, last}, packet.IP4{10, 0, 0, last})
	if err := n.AddNode(h); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHostToHostDelivery(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	a := mkHost(t, n, "a", 1)
	b := mkHost(t, n, "b", 2)
	if err := n.Connect(a, b, LinkOpts{}); err != nil {
		t.Fatal(err)
	}
	if !a.Send([]byte("hello")) {
		t.Fatal("send failed")
	}
	select {
	case got := <-b.Inbox():
		if string(got) != "hello" {
			t.Errorf("got %q", got)
		}
	case <-time.After(time.Second):
		t.Fatal("frame not delivered")
	}
	if b.Received() != 1 {
		t.Errorf("Received = %d", b.Received())
	}
}

func TestFIFOOrdering(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	a := mkHost(t, n, "a", 1)
	b := mkHost(t, n, "b", 2)
	var mu sync.Mutex
	var got []byte
	done := make(chan struct{})
	const count = 200
	b.SetHandler(func(frame []byte) {
		mu.Lock()
		got = append(got, frame[0])
		if len(got) == count {
			close(done)
		}
		mu.Unlock()
	})
	if err := n.Connect(a, b, LinkOpts{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		for !a.Send([]byte{byte(i)}) {
			time.Sleep(time.Microsecond) // queue momentarily full
		}
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("frames not delivered")
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("frame %d out of order (got %d) — link must be FIFO for result pairing", i, v)
		}
	}
}

func TestBidirectional(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	a := mkHost(t, n, "a", 1)
	b := mkHost(t, n, "b", 2)
	if err := n.Connect(a, b, LinkOpts{}); err != nil {
		t.Fatal(err)
	}
	a.Send([]byte("to-b"))
	b.Send([]byte("to-a"))
	for _, tc := range []struct {
		h    *Host
		want string
	}{{b, "to-b"}, {a, "to-a"}} {
		select {
		case got := <-tc.h.Inbox():
			if string(got) != tc.want {
				t.Errorf("%s got %q", tc.h.Name(), got)
			}
		case <-time.After(time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestQueueDrops(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	a := mkHost(t, n, "a", 1)
	b := mkHost(t, n, "b", 2)
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	b.SetHandler(func([]byte) {
		once.Do(func() { close(blocked) })
		<-release
	})
	if err := n.Connect(a, b, LinkOpts{Queue: 4}); err != nil {
		t.Fatal(err)
	}
	a.Send([]byte("x"))
	<-blocked // receiver wedged; queue fills
	dropped := false
	for i := 0; i < 100; i++ {
		if !a.Send([]byte("y")) {
			dropped = true
			break
		}
	}
	close(release)
	if !dropped {
		t.Error("no tail-drop on full queue")
	}
}

func TestLinkLatencyAndRate(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	a := mkHost(t, n, "a", 1)
	b := mkHost(t, n, "b", 2)
	// 10ms latency; 8 kb/s so a 100-byte frame adds 100ms.
	if err := n.Connect(a, b, LinkOpts{Latency: 10 * time.Millisecond, RateBps: 8000}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	a.Send(make([]byte, 100))
	select {
	case <-b.Inbox():
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~110ms with latency+rate", d)
	}
}

func TestAddNodeDuplicate(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	mkHost(t, n, "a", 1)
	if err := n.AddNode(NewHost("a", packet.MAC{}, packet.IP4{})); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestConnectUnknownNode(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	a := mkHost(t, n, "a", 1)
	ghost := NewHost("ghost", packet.MAC{}, packet.IP4{})
	if err := n.Connect(a, ghost, LinkOpts{}); err == nil {
		t.Error("connect to unadded node accepted")
	}
}

func TestStopIdempotentAndSendAfterStop(t *testing.T) {
	n := NewNetwork()
	a := mkHost(t, n, "a", 1)
	b := mkHost(t, n, "b", 2)
	if err := n.Connect(a, b, LinkOpts{}); err != nil {
		t.Fatal(err)
	}
	n.Stop()
	n.Stop()
	if a.Send([]byte("x")) {
		t.Error("send succeeded after Stop")
	}
	if err := n.Connect(a, b, LinkOpts{}); err != ErrStopped {
		t.Errorf("connect after stop err = %v", err)
	}
}

func TestFlush(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	a := mkHost(t, n, "a", 1)
	b := mkHost(t, n, "b", 2)
	var count atomic.Uint64
	b.SetHandler(func([]byte) { count.Add(1) })
	if err := n.Connect(a, b, LinkOpts{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a.Send([]byte("x"))
	}
	if !n.Flush(2 * time.Second) {
		t.Fatal("Flush timed out")
	}
	if got := count.Load(); got != 100 {
		t.Errorf("delivered %d of 100 after Flush", got)
	}
}

type fakeMapper struct {
	Host
	ports map[string]int
}

func (f *fakeMapper) PortTo(peer string) int { return f.ports[peer] }

func TestPortMapperUsed(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	recvPort := make(chan int, 1)
	fm := &fakeMapper{ports: map[string]int{"a": 7}}
	fm.Host = *NewHost("sw", packet.MAC{}, packet.IP4{})
	fm.SetHandler(nil) // use inbox path
	// Wrap Recv to capture the port.
	node := &portCapture{inner: fm, got: recvPort}
	if err := n.AddNode(node); err != nil {
		t.Fatal(err)
	}
	a := mkHost(t, n, "a", 1)
	if err := n.Connect(a, node, LinkOpts{}); err != nil {
		t.Fatal(err)
	}
	a.Send([]byte("x"))
	select {
	case p := <-recvPort:
		if p != 7 {
			t.Errorf("delivered on port %d, want 7 (PortMapper)", p)
		}
	case <-time.After(time.Second):
		t.Fatal("timeout")
	}
}

type portCapture struct {
	inner *fakeMapper
	got   chan int
}

func (p *portCapture) Name() string              { return p.inner.Name() }
func (p *portCapture) Attach(port int, tx *Port) { p.inner.Attach(port, tx) }
func (p *portCapture) PortTo(peer string) int    { return p.inner.PortTo(peer) }
func (p *portCapture) Recv(port int, frame []byte) {
	select {
	case p.got <- port:
	default:
	}
}
