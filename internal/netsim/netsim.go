// Package netsim is the in-process virtual network substituting for the
// paper's Mininet environment (Section 6.1): named nodes (hosts,
// switches, middlebox hosts, DPI service instances) connected by
// point-to-point duplex links that preserve ordering and can model
// queueing, latency and link rate. Frames are raw Ethernet byte slices;
// each link direction is a buffered queue drained by its own goroutine,
// so every node observes a FIFO stream per ingress port — the property
// the result-packet pairing of Section 4.2 relies on.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Node is a network element attached to the fabric.
type Node interface {
	// Name returns the node's unique name within its network.
	Name() string
	// Attach gives the node the transmit side of the link connected to
	// one of its ports. Called once per port before any Recv.
	Attach(port int, tx *Port)
	// Recv handles one frame arriving on port. It is invoked from the
	// delivering link's goroutine; a node with multiple ports may see
	// concurrent calls and must synchronize internally. The frame is
	// owned by the callee.
	Recv(port int, frame []byte)
}

// PortMapper lets multi-port nodes (switches) choose their own port
// numbering: PortTo is consulted when a link to the named peer is
// attached. Nodes without it (hosts) attach everything at port 0.
type PortMapper interface {
	PortTo(peer string) int
}

// LinkOpts model link properties.
type LinkOpts struct {
	// Latency is added to every frame's delivery.
	Latency time.Duration
	// RateBps limits the link to the given bits per second; 0 means
	// unlimited.
	RateBps int64
	// Queue is the per-direction queue depth in frames; 0 selects a
	// default of 512. A full queue drops (tail-drop), as a real switch
	// egress queue would.
	Queue int
}

const defaultQueueDepth = 512

// Port is the transmit handle of one link direction.
type Port struct {
	ch     chan []byte
	drops  atomic.Uint64
	sent   atomic.Uint64
	closed atomic.Bool
}

// Send enqueues a frame for delivery; it reports false when the frame
// was dropped (full queue or stopped network). The caller must not
// reuse the slice afterwards.
func (p *Port) Send(frame []byte) bool {
	if p == nil || p.closed.Load() {
		return false
	}
	select {
	case p.ch <- frame:
		p.sent.Add(1)
		return true
	default:
		p.drops.Add(1)
		return false
	}
}

// Stats reports frames sent and dropped on this direction.
func (p *Port) Stats() (sent, drops uint64) { return p.sent.Load(), p.drops.Load() }

// The network lock is held while wiring nodes (Connect starts pump
// goroutines that touch host and switch queues), so it sits above the
// per-node locks in the hierarchy.
//
//dpi:lockorder(netsim.Network.mu < netsim.Host.mu)
//dpi:lockorder(netsim.Network.mu < openflow.Switch.mu)

// Network owns nodes and links.
type Network struct {
	mu      sync.Mutex
	nodes   map[string]Node
	ports   []*Port
	done    chan struct{}
	wg      sync.WaitGroup
	stopped bool

	// chaos is the fault-injection layer (chaos.go); zero value = no
	// faults.
	chaos chaosState
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{nodes: make(map[string]Node), done: make(chan struct{})}
}

// Errors returned by topology construction.
var (
	ErrDuplicateNode = errors.New("netsim: duplicate node name")
	ErrUnknownNode   = errors.New("netsim: node not added to network")
	ErrStopped       = errors.New("netsim: network stopped")
)

// AddNode registers a node.
func (n *Network) AddNode(node Node) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[node.Name()]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, node.Name())
	}
	n.nodes[node.Name()] = node
	return nil
}

// Connect creates a duplex link between a's aPort and b's bPort. Nodes
// implementing PortMapper decide their own port numbers; plain nodes
// (hosts) receive everything on port 0 and the given port arguments are
// used for the peer-facing numbering of PortMapper nodes only.
func (n *Network) Connect(a, b Node, opts LinkOpts) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return ErrStopped
	}
	for _, node := range []Node{a, b} {
		if _, ok := n.nodes[node.Name()]; !ok {
			return fmt.Errorf("%w: %s", ErrUnknownNode, node.Name())
		}
	}
	n.startDirection(a, b, opts) // a -> b
	n.startDirection(b, a, opts) // b -> a
	return nil
}

// startDirection wires a queue from src toward dst and hands src the
// transmit handle. Caller holds n.mu.
func (n *Network) startDirection(src, dst Node, opts LinkOpts) {
	depth := opts.Queue
	if depth <= 0 {
		depth = defaultQueueDepth
	}
	p := &Port{ch: make(chan []byte, depth)}
	n.ports = append(n.ports, p)
	dstPort := portOf(dst, src.Name())
	srcName, dstName := src.Name(), dst.Name()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		// held is a frame the chaos layer transposed: it is delivered
		// right after the next frame on this direction.
		var held []byte
		hasHeld := false
		for {
			select {
			case frame := <-p.ch:
				if opts.Latency > 0 {
					time.Sleep(opts.Latency)
				}
				if opts.RateBps > 0 {
					time.Sleep(time.Duration(int64(len(frame)) * 8 * int64(time.Second) / opts.RateBps))
				}
				if n.chaosActive() {
					drop, dup, reorder, delay := n.chaosVerdict(srcName, dstName)
					if drop {
						continue
					}
					if delay > 0 {
						time.Sleep(delay)
					}
					if dup {
						// The callee owns its frame; the copy is made
						// before the original is handed over.
						dst.Recv(dstPort, append([]byte(nil), frame...))
					}
					if reorder && !hasHeld {
						held, hasHeld = frame, true
						continue
					}
				}
				dst.Recv(dstPort, frame)
				if hasHeld {
					dst.Recv(dstPort, held)
					held, hasHeld = nil, false
				}
			case <-n.done:
				return
			}
		}
	}()
	src.Attach(portOf(src, dst.Name()), p)
}

// portOf returns the port number node uses for its link to peer.
func portOf(node Node, peer string) int {
	if pm, ok := node.(PortMapper); ok {
		return pm.PortTo(peer)
	}
	return 0
}

// Stop shuts the fabric down: in-flight frames may be discarded, nodes
// simply stop receiving. Stop is idempotent.
func (n *Network) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	for _, p := range n.ports {
		p.closed.Store(true)
	}
	close(n.done)
	n.mu.Unlock()
	n.wg.Wait()
}

// Flush blocks until every link queue has been observed empty three
// times in a row — a practical quiescence barrier for tests and
// examples (the fabric has no global clock).
func (n *Network) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	idleStreak := 0
	for time.Now().Before(deadline) {
		n.mu.Lock()
		idle := true
		for _, p := range n.ports {
			if len(p.ch) > 0 {
				idle = false
				break
			}
		}
		n.mu.Unlock()
		if idle {
			idleStreak++
			if idleStreak >= 3 {
				return true
			}
		} else {
			idleStreak = 0
		}
		time.Sleep(time.Millisecond)
	}
	return false
}
