package netsim

import (
	"bytes"
	"io"
	"testing"
	"time"

	"dpiservice/internal/pcap"
)

func TestTapCapturesFrames(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	a := mkHost(t, n, "a", 1)
	var capture bytes.Buffer
	tap, err := NewTap("tap0", &capture)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode(tap); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(a, tap, LinkOpts{}); err != nil {
		t.Fatal(err)
	}

	frames := [][]byte{[]byte("frame-one"), []byte("frame-two"), []byte("frame-three")}
	for _, f := range frames {
		cp := make([]byte, len(f))
		copy(cp, f)
		a.Send(cp)
	}
	deadline := time.Now().Add(time.Second)
	for tap.Frames() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tap.Frames() != 3 || tap.Err() != nil {
		t.Fatalf("Frames = %d, Err = %v", tap.Frames(), tap.Err())
	}

	// The capture replays with identical contents.
	r, err := pcap.NewReader(&capture)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		frame, _, err := r.Next(nil)
		if err == io.EOF {
			if i != 3 {
				t.Fatalf("capture has %d frames", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, frames[i]) {
			t.Errorf("frame %d = %q", i, frame)
		}
	}
}
