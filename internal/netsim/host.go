package netsim

import (
	"sync"
	"sync/atomic"

	"dpiservice/internal/packet"
)

// Host is a single-homed end node: user machines, middlebox hosts and
// DPI service instances all embed or wrap one. Frames arriving at the
// host go to its handler if set, else to its inbox.
type Host struct {
	name string
	MAC  packet.MAC
	IP   packet.IP4

	mu      sync.Mutex
	tx      *Port
	handler func(frame []byte)

	inbox    chan []byte
	received atomic.Uint64
}

// NewHost creates a host with the given identity. The inbox holds up to
// 1024 frames when no handler is set.
func NewHost(name string, mac packet.MAC, ip packet.IP4) *Host {
	return &Host{name: name, MAC: mac, IP: ip, inbox: make(chan []byte, 1024)}
}

// Name implements Node.
func (h *Host) Name() string { return h.name }

// Attach implements Node.
func (h *Host) Attach(_ int, tx *Port) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.tx = tx
}

// SetHandler routes incoming frames to fn instead of the inbox. It must
// be called before traffic flows.
func (h *Host) SetHandler(fn func(frame []byte)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handler = fn
}

// Recv implements Node.
func (h *Host) Recv(_ int, frame []byte) {
	h.received.Add(1)
	h.mu.Lock()
	fn := h.handler
	h.mu.Unlock()
	if fn != nil {
		fn(frame)
		return
	}
	select {
	case h.inbox <- frame:
	default: // inbox full: drop, as a slow application would
	}
}

// Send transmits a frame on the host's link.
func (h *Host) Send(frame []byte) bool {
	h.mu.Lock()
	tx := h.tx
	h.mu.Unlock()
	return tx.Send(frame)
}

// Inbox returns the channel of frames received while no handler is set.
func (h *Host) Inbox() <-chan []byte { return h.inbox }

// Received reports the number of frames delivered to this host.
func (h *Host) Received() uint64 { return h.received.Load() }
