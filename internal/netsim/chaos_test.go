package netsim

import (
	"testing"
	"time"

	"dpiservice/internal/packet"
)

func chaosPair(t *testing.T) (*Network, *Host, *Host) {
	t.Helper()
	n := NewNetwork()
	t.Cleanup(n.Stop)
	a := NewHost("a", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP4{10, 0, 0, 1})
	b := NewHost("b", packet.MAC{2, 0, 0, 0, 0, 2}, packet.IP4{10, 0, 0, 2})
	for _, h := range []*Host{a, b} {
		if err := n.AddNode(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Connect(a, b, LinkOpts{}); err != nil {
		t.Fatal(err)
	}
	return n, a, b
}

func countFrames(h *Host, settle time.Duration) int {
	got := 0
	for {
		select {
		case <-h.Inbox():
			got++
		case <-time.After(settle):
			return got
		}
	}
}

func TestChaosPartitionAndHeal(t *testing.T) {
	n, a, b := chaosPair(t)
	n.SetLinkFault("a", "b", Fault{Partition: true})
	for i := 0; i < 5; i++ {
		a.Send([]byte{byte(i)})
	}
	n.Flush(time.Second)
	if got := countFrames(b, 20*time.Millisecond); got != 0 {
		t.Fatalf("partitioned link delivered %d frames", got)
	}
	if s := n.ChaosStats(); s.Dropped != 5 {
		t.Errorf("dropped = %d, want 5", s.Dropped)
	}
	// Reverse direction is unaffected.
	b.Send([]byte("reverse"))
	if got := countFrames(a, 50*time.Millisecond); got != 1 {
		t.Fatalf("reverse direction got %d frames", got)
	}
	// Healing restores delivery.
	n.ClearLinkFault("a", "b")
	a.Send([]byte("healed"))
	if got := countFrames(b, 50*time.Millisecond); got != 1 {
		t.Fatalf("healed link got %d frames", got)
	}
}

func TestChaosDropProbDeterministic(t *testing.T) {
	run := func() (delivered int, dropped uint64) {
		n, a, b := chaosPair(t)
		n.SetChaosSeed(42)
		n.SetLinkFault("a", "b", Fault{DropProb: 0.5})
		for i := 0; i < 100; i++ {
			a.Send([]byte{byte(i)})
		}
		n.Flush(time.Second)
		return countFrames(b, 20*time.Millisecond), n.ChaosStats().Dropped
	}
	d1, drop1 := run()
	d2, drop2 := run()
	if d1 != d2 || drop1 != drop2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", d1, drop1, d2, drop2)
	}
	if d1 == 0 || d1 == 100 {
		t.Errorf("drop prob 0.5 delivered %d/100", d1)
	}
	if uint64(d1)+drop1 != 100 {
		t.Errorf("delivered %d + dropped %d != 100", d1, drop1)
	}
}

func TestChaosDuplication(t *testing.T) {
	n, a, b := chaosPair(t)
	n.SetChaosSeed(7)
	n.SetLinkFault("a", "b", Fault{DupProb: 1.0})
	a.Send([]byte("twice"))
	n.Flush(time.Second)
	if got := countFrames(b, 20*time.Millisecond); got != 2 {
		t.Fatalf("delivered %d frames, want 2", got)
	}
	if s := n.ChaosStats(); s.Duplicated != 1 {
		t.Errorf("duplicated = %d", s.Duplicated)
	}
}

func TestChaosExtraLatency(t *testing.T) {
	n, a, b := chaosPair(t)
	n.SetLinkFault("a", "b", Fault{ExtraLatency: 30 * time.Millisecond})
	start := time.Now()
	a.Send([]byte("slow"))
	select {
	case <-b.Inbox():
	case <-time.After(time.Second):
		t.Fatal("frame never arrived")
	}
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Errorf("delivered after %v, want >= 30ms", el)
	}
	if s := n.ChaosStats(); s.Delayed != 1 {
		t.Errorf("delayed = %d", s.Delayed)
	}
}

func TestChaosCrashRestartNode(t *testing.T) {
	n, a, b := chaosPair(t)
	if n.NodeDown("b") {
		t.Fatal("fresh node reported down")
	}
	n.CrashNode("b")
	if !n.NodeDown("b") {
		t.Fatal("crashed node reported up")
	}
	// Frames toward and from the crashed node die.
	a.Send([]byte("to the dead"))
	b.Send([]byte("from the dead"))
	n.Flush(time.Second)
	if got := countFrames(b, 20*time.Millisecond); got != 0 {
		t.Fatalf("crashed node received %d frames", got)
	}
	if got := countFrames(a, 20*time.Millisecond); got != 0 {
		t.Fatalf("crashed node transmitted %d frames", got)
	}
	n.RestartNode("b")
	a.Send([]byte("back"))
	if got := countFrames(b, 50*time.Millisecond); got != 1 {
		t.Fatalf("restarted node got %d frames", got)
	}
}
