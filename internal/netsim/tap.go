package netsim

import (
	"io"
	"sync"
	"time"

	"dpiservice/internal/pcap"
)

// Tap is a capture sink node: frames delivered to it are appended to a
// pcap stream — a mirror/SPAN port in the virtual fabric, the way the
// paper's Big-Tap-style monitoring network taps production traffic
// (Section 4.2). Attach a Tap to the switch and add a second Output
// action to the rules whose traffic should be mirrored.
type Tap struct {
	name string

	mu     sync.Mutex
	w      *pcap.Writer
	frames uint64
	err    error
}

// NewTap creates a tap writing captures to w.
func NewTap(name string, w io.Writer) (*Tap, error) {
	pw, err := pcap.NewWriter(w, 0)
	if err != nil {
		return nil, err
	}
	return &Tap{name: name, w: pw}, nil
}

// Name implements Node.
func (t *Tap) Name() string { return t.name }

// Attach implements Node; a tap never transmits.
func (t *Tap) Attach(int, *Port) {}

// Recv implements Node.
func (t *Tap) Recv(_ int, frame []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.w.WritePacket(time.Now(), frame); err != nil {
		t.err = err
		return
	}
	t.frames++
}

// Frames reports how many frames were captured.
func (t *Tap) Frames() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.frames
}

// Err reports the first write error, if any.
func (t *Tap) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
