// Package traffic generates the synthetic workloads standing in for the
// paper's two traces (Section 6.2): a crawled-HTTP-content trace ("HTML,
// JavaScript, images, etc." from popular websites) and a campus wireless
// network trace. Generators control the properties the DPI data path is
// sensitive to — content mix, packet size distribution, flow structure,
// and the fraction of packets containing pattern matches (above 90% of
// trace packets contain none, Section 6.5) — and are fully deterministic
// in their seed. An adversarial generator produces the heavy,
// match-dense flows MCA² is designed to detect (Section 4.3.1).
package traffic

import (
	"math/rand"

	"dpiservice/internal/packet"
)

// Mix selects the content model.
type Mix int

// Content mixes.
const (
	// HTTPMix approximates the crawled website trace: ASCII-heavy
	// HTML/JS/CSS with some binary (image-like) ranges.
	HTTPMix Mix = iota
	// CampusMix approximates the campus trace: more binary and
	// compressed-looking content, smaller ASCII share.
	CampusMix
	// AttackMix produces adversarial payloads densely packed with
	// fragments and repetitions of the target pattern set.
	AttackMix
)

// Config tunes a Generator.
type Config struct {
	Seed int64
	Mix  Mix
	// MatchFraction is the fraction of packets into which a pattern
	// from InjectPatterns is planted (ignored by AttackMix, which is
	// all matches). The paper's traces have < 0.1.
	MatchFraction float64
	// InjectBurstMean, when > 1, makes a matching packet carry a
	// geometrically-distributed number of planted patterns with this
	// mean, reproducing trace packets that hit many rules at once
	// (HTTP headers typically match several IDS patterns).
	InjectBurstMean float64
	// InjectPatterns is the pool patterns are planted from (for
	// HTTPMix/CampusMix) or attacked with (AttackMix).
	InjectPatterns []string
	// MinPayload/MaxPayload bound L7 payload sizes; defaults 200/1400.
	MinPayload, MaxPayload int
}

func (c *Config) defaults() {
	if c.MinPayload <= 0 {
		c.MinPayload = 200
	}
	if c.MaxPayload < c.MinPayload {
		c.MaxPayload = 1400
	}
}

// Generator produces payloads and frames.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator creates a deterministic generator.
func NewGenerator(cfg Config) *Generator {
	cfg.defaults()
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

var (
	htmlTokens = []string{
		"<div class=\"", "</div>", "<a href=\"http://", "<img src=\"/static/",
		"<script type=\"text/javascript\">", "</script>", "<span>", "&nbsp;",
		"function(", "return ", "var ", "document.getElementById(\"",
		"{\"id\":", ",\"name\":\"", "http://", "GET /", "HTTP/1.1\r\n",
		"Content-Type: text/html\r\n", "Accept-Encoding: gzip\r\n",
		"charset=utf-8", "px;margin:", "display:none", "0123456789",
		"lorem ipsum dolor sit amet ", "consectetur adipiscing elit ",
	}
	wordChars = "abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789=/.-_:;,"
)

// Payload generates one packet payload of generator-chosen size.
func (g *Generator) Payload() []byte {
	size := g.cfg.MinPayload
	if g.cfg.MaxPayload > g.cfg.MinPayload {
		size += g.rng.Intn(g.cfg.MaxPayload - g.cfg.MinPayload + 1)
	}
	return g.PayloadN(size)
}

// PayloadN generates a payload of exactly n bytes.
func (g *Generator) PayloadN(n int) []byte {
	buf := make([]byte, 0, n)
	switch g.cfg.Mix {
	case AttackMix:
		buf = g.fillAttack(buf, n)
	case CampusMix:
		buf = g.fillCampus(buf, n)
	default:
		buf = g.fillHTTP(buf, n)
	}
	buf = buf[:n]
	if g.cfg.Mix != AttackMix && len(g.cfg.InjectPatterns) > 0 &&
		g.rng.Float64() < g.cfg.MatchFraction {
		g.inject(buf)
	}
	return buf
}

func (g *Generator) fillHTTP(buf []byte, n int) []byte {
	for len(buf) < n {
		switch g.rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // markup/JS tokens
			buf = append(buf, htmlTokens[g.rng.Intn(len(htmlTokens))]...)
		case 6, 7, 8: // wordish filler
			l := 4 + g.rng.Intn(12)
			for i := 0; i < l; i++ {
				buf = append(buf, wordChars[g.rng.Intn(len(wordChars))])
			}
			buf = append(buf, ' ')
		default: // binary run (inline image bytes)
			l := 16 + g.rng.Intn(64)
			for i := 0; i < l; i++ {
				buf = append(buf, byte(g.rng.Intn(256)))
			}
		}
	}
	return buf
}

func (g *Generator) fillCampus(buf []byte, n int) []byte {
	for len(buf) < n {
		if g.rng.Intn(4) == 0 { // occasional protocol chatter
			buf = append(buf, htmlTokens[g.rng.Intn(len(htmlTokens))]...)
		} else { // mostly binary/compressed-looking
			l := 32 + g.rng.Intn(96)
			for i := 0; i < l; i++ {
				buf = append(buf, byte(g.rng.Intn(256)))
			}
		}
	}
	return buf
}

// fillAttack packs the payload with pattern content: whole patterns,
// their prefixes (forcing deep DFA walks that never complete), and
// repeated-character runs that trigger range reports.
func (g *Generator) fillAttack(buf []byte, n int) []byte {
	pats := g.cfg.InjectPatterns
	if len(pats) == 0 {
		return append(buf, make([]byte, n)...)
	}
	for len(buf) < n {
		p := pats[g.rng.Intn(len(pats))]
		switch g.rng.Intn(3) {
		case 0: // full pattern: guaranteed match
			buf = append(buf, p...)
		case 1: // prefix: deep traversal, no report
			cut := 1 + g.rng.Intn(len(p))
			buf = append(buf, p[:cut]...)
		default: // repetition of the first byte
			l := 4 + g.rng.Intn(12)
			for i := 0; i < l; i++ {
				buf = append(buf, p[0])
			}
		}
	}
	return buf
}

// inject plants one or more patterns at random positions (overwriting
// content). With InjectBurstMean > 1 the count is geometric with that
// mean.
func (g *Generator) inject(buf []byte) {
	k := 1
	if m := g.cfg.InjectBurstMean; m > 1 {
		// Geometric with mean m: success probability 1/m.
		for k < 64 && g.rng.Float64() > 1/m {
			k++
		}
	}
	for i := 0; i < k; i++ {
		p := g.cfg.InjectPatterns[g.rng.Intn(len(g.cfg.InjectPatterns))]
		if len(p) >= len(buf) {
			copy(buf, p)
			return
		}
		off := g.rng.Intn(len(buf) - len(p))
		copy(buf[off:], p)
	}
}

// Corpus pregenerates payloads totalling at least totalBytes — the form
// benchmarks consume so generation cost stays out of the measured loop.
func (g *Generator) Corpus(totalBytes int) [][]byte {
	var out [][]byte
	for n := 0; n < totalBytes; {
		p := g.Payload()
		out = append(out, p)
		n += len(p)
	}
	return out
}

// Flow is a generated flow: a tuple and its packet payloads in order.
type Flow struct {
	Tuple    packet.FiveTuple
	Payloads [][]byte
}

// Flows generates nFlows flows with pktsPerFlow packets each, with
// distinct five-tuples.
func (g *Generator) Flows(nFlows, pktsPerFlow int) []Flow {
	flows := make([]Flow, nFlows)
	for i := range flows {
		flows[i].Tuple = packet.FiveTuple{
			Src:      packet.IP4{10, 0, byte(i >> 8), byte(i)},
			Dst:      packet.IP4{192, 168, byte(g.rng.Intn(256)), byte(g.rng.Intn(256))},
			SrcPort:  uint16(1024 + g.rng.Intn(60000)),
			DstPort:  80,
			Protocol: packet.IPProtoTCP,
		}
		flows[i].Payloads = make([][]byte, pktsPerFlow)
		for j := range flows[i].Payloads {
			flows[i].Payloads[j] = g.Payload()
		}
	}
	return flows
}

// FrameBuilder serializes flows into Ethernet frames for the virtual
// network. It stamps each frame with a sequential IPv4 ID so result
// packets pair with their data packets.
type FrameBuilder struct {
	SrcMAC, DstMAC packet.MAC
	buf            packet.SerializeBuffer
	nextID         uint16
}

// Build serializes one frame for the tuple's transport protocol.
func (fb *FrameBuilder) Build(tuple packet.FiveTuple, payload []byte) []byte {
	return fb.build(tuple, payload, packet.TCPAck)
}

// BuildFin serializes a TCP frame with FIN set, ending the flow's scan
// state at the DPI instance.
func (fb *FrameBuilder) BuildFin(tuple packet.FiveTuple, payload []byte) []byte {
	return fb.build(tuple, payload, packet.TCPAck|packet.TCPFin)
}

func (fb *FrameBuilder) build(tuple packet.FiveTuple, payload []byte, tcpFlags uint8) []byte {
	return fb.buildSeq(tuple, payload, tcpFlags, 0)
}

// BuildSeq serializes a TCP frame with an explicit sequence number, for
// driving stream reassembly.
func (fb *FrameBuilder) BuildSeq(tuple packet.FiveTuple, seq uint32, payload []byte, fin bool) []byte {
	flags := packet.TCPAck
	if fin {
		flags |= packet.TCPFin
	}
	return fb.buildSeq(tuple, payload, flags, seq)
}

// BuildSyn serializes the flow-opening SYN at the given initial
// sequence number.
func (fb *FrameBuilder) BuildSyn(tuple packet.FiveTuple, isn uint32) []byte {
	return fb.buildSeq(tuple, nil, packet.TCPSyn, isn)
}

func (fb *FrameBuilder) buildSeq(tuple packet.FiveTuple, payload []byte, tcpFlags uint8, seq uint32) []byte {
	return fb.buildFull(tuple, payload, tcpFlags, seq, 64, 0)
}

// buildFull serializes one frame with explicit IP-level knobs (TTL and
// the flags field carrying the adversarial "evil" bit).
func (fb *FrameBuilder) buildFull(tuple packet.FiveTuple, payload []byte, tcpFlags uint8, seq uint32, ttl, ipFlags uint8) []byte {
	fb.nextID++
	var l4 packet.SerializableLayer
	if tuple.Protocol == packet.IPProtoUDP {
		l4 = &packet.UDP{SrcPort: tuple.SrcPort, DstPort: tuple.DstPort}
	} else {
		l4 = &packet.TCP{SrcPort: tuple.SrcPort, DstPort: tuple.DstPort, Flags: tcpFlags, Window: 65535, Seq: seq}
	}
	err := packet.SerializeLayers(&fb.buf,
		&packet.Ethernet{Src: fb.SrcMAC, Dst: fb.DstMAC, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{TTL: ttl, Flags: ipFlags, Protocol: tuple.Protocol, Src: tuple.Src, Dst: tuple.Dst, ID: fb.nextID},
		l4,
		packet.Payload(payload),
	)
	if err != nil {
		return nil
	}
	out := make([]byte, len(fb.buf.Bytes()))
	copy(out, fb.buf.Bytes())
	return out
}
