package traffic

import (
	"bytes"
	"reflect"
	"testing"

	"dpiservice/internal/packet"
)

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Mix: HTTPMix, MatchFraction: 0.1, InjectPatterns: []string{"evil-pattern"}}
	a, b := NewGenerator(cfg), NewGenerator(cfg)
	for i := 0; i < 50; i++ {
		pa, pb := a.Payload(), b.Payload()
		if !bytes.Equal(pa, pb) {
			t.Fatalf("payload %d differs across same-seed generators", i)
		}
	}
	c := NewGenerator(Config{Seed: 43, Mix: HTTPMix})
	if bytes.Equal(NewGenerator(cfg).Payload(), c.Payload()) {
		t.Error("different seeds produced identical first payloads")
	}
}

func TestPayloadSizeBounds(t *testing.T) {
	g := NewGenerator(Config{Seed: 1, MinPayload: 100, MaxPayload: 300})
	for i := 0; i < 200; i++ {
		p := g.Payload()
		if len(p) < 100 || len(p) > 300 {
			t.Fatalf("payload size %d out of [100,300]", len(p))
		}
	}
	if got := g.PayloadN(777); len(got) != 777 {
		t.Errorf("PayloadN = %d bytes", len(got))
	}
}

func TestMatchFractionApproximatelyRespected(t *testing.T) {
	pat := "totally-unique-injected-pattern"
	g := NewGenerator(Config{Seed: 7, Mix: HTTPMix, MatchFraction: 0.1, InjectPatterns: []string{pat}})
	const n = 2000
	hits := 0
	for i := 0; i < n; i++ {
		if bytes.Contains(g.Payload(), []byte(pat)) {
			hits++
		}
	}
	// 10% +- 3% — the paper's traces have >90% of packets clean
	// (Section 6.5).
	if hits < n*7/100 || hits > n*13/100 {
		t.Errorf("injected fraction = %d/%d, want ~10%%", hits, n)
	}
}

func TestCampusMixDiffersFromHTTP(t *testing.T) {
	h := NewGenerator(Config{Seed: 5, Mix: HTTPMix})
	c := NewGenerator(Config{Seed: 5, Mix: CampusMix})
	ascii := func(p []byte) float64 {
		n := 0
		for _, b := range p {
			if b >= 0x20 && b < 0x7f {
				n++
			}
		}
		return float64(n) / float64(len(p))
	}
	var hSum, cSum float64
	for i := 0; i < 50; i++ {
		hSum += ascii(h.PayloadN(1000))
		cSum += ascii(c.PayloadN(1000))
	}
	if hSum <= cSum {
		t.Errorf("HTTP mix (%f) not more ASCII than campus mix (%f)", hSum/50, cSum/50)
	}
}

func TestAttackMixIsMatchDense(t *testing.T) {
	pats := []string{"attack-sig-one", "attack-sig-two"}
	g := NewGenerator(Config{Seed: 3, Mix: AttackMix, InjectPatterns: pats})
	payload := g.PayloadN(10000)
	count := bytes.Count(payload, []byte(pats[0])) + bytes.Count(payload, []byte(pats[1]))
	if count < 50 {
		t.Errorf("attack payload has only %d full pattern occurrences in 10kB", count)
	}
}

func TestAttackMixNoPatternsZeroFill(t *testing.T) {
	g := NewGenerator(Config{Seed: 3, Mix: AttackMix})
	p := g.PayloadN(100)
	if len(p) != 100 {
		t.Fatalf("len = %d", len(p))
	}
}

func TestCorpusCoversRequestedBytes(t *testing.T) {
	g := NewGenerator(Config{Seed: 9})
	corpus := g.Corpus(50_000)
	total := 0
	for _, p := range corpus {
		total += len(p)
	}
	if total < 50_000 {
		t.Errorf("corpus = %d bytes", total)
	}
}

func TestFlowsDistinctTuples(t *testing.T) {
	g := NewGenerator(Config{Seed: 11})
	flows := g.Flows(50, 3)
	seen := map[packet.FiveTuple]bool{}
	for _, f := range flows {
		if seen[f.Tuple] {
			t.Fatalf("duplicate tuple %v", f.Tuple)
		}
		seen[f.Tuple] = true
		if len(f.Payloads) != 3 {
			t.Fatalf("flow has %d payloads", len(f.Payloads))
		}
	}
}

func TestFrameBuilderRoundTrip(t *testing.T) {
	var fb FrameBuilder
	fb.SrcMAC = packet.MAC{2, 0, 0, 0, 0, 1}
	fb.DstMAC = packet.MAC{2, 0, 0, 0, 0, 2}
	tuple := packet.FiveTuple{
		Src: packet.IP4{10, 1, 2, 3}, Dst: packet.IP4{10, 4, 5, 6},
		SrcPort: 1234, DstPort: 80, Protocol: packet.IPProtoTCP,
	}
	payload := []byte("round trip payload")
	f1 := fb.Build(tuple, payload)
	f2 := fb.Build(tuple, payload)

	var s1, s2 packet.Summary
	if err := packet.Summarize(f1, &s1); err != nil {
		t.Fatal(err)
	}
	if err := packet.Summarize(f2, &s2); err != nil {
		t.Fatal(err)
	}
	if s1.Tuple != tuple || !bytes.Equal(s1.Payload, payload) {
		t.Errorf("summary = %+v", s1)
	}
	if s1.IPID == s2.IPID {
		t.Error("IP IDs not sequential — result pairing would break")
	}

	// UDP variant.
	udp := tuple
	udp.Protocol = packet.IPProtoUDP
	fu := fb.Build(udp, payload)
	var su packet.Summary
	if err := packet.Summarize(fu, &su); err != nil {
		t.Fatal(err)
	}
	if su.Tuple != udp || !bytes.Equal(su.Payload, payload) {
		t.Errorf("udp summary = %+v", su)
	}

	// FIN variant ends flows.
	ff := fb.BuildFin(tuple, payload)
	var sf packet.Summary
	if err := packet.Summarize(ff, &sf); err != nil {
		t.Fatal(err)
	}
	if sf.TCPFlags&packet.TCPFin == 0 {
		t.Error("FIN not set")
	}
}

func TestFlowsDeterministic(t *testing.T) {
	a := NewGenerator(Config{Seed: 4}).Flows(5, 2)
	b := NewGenerator(Config{Seed: 4}).Flows(5, 2)
	if !reflect.DeepEqual(a, b) {
		t.Error("Flows not deterministic")
	}
}
