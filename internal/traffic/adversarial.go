package traffic

// This file generates the evasion traffic real DPI boxes are
// fingerprinted with: overlapping TCP segments carrying conflicting
// data, bad-checksum insertions the end host would discard, short-TTL
// and evil-bit-labeled segments, retransmission floods, gap floods,
// tiny-segment splits, and out-of-order storms — all deterministic in
// their seed. A schedule is produced relative to a reference stream so
// differential tests know exactly which byte ranges are legitimately
// ambiguous (conflicting same-validity copies were sent) and which are
// only poisoned for a reassembler that skips normalization.

import (
	"math/rand"

	"dpiservice/internal/packet"
)

// Range is a half-open [Start, End) interval of stream byte offsets.
type Range struct{ Start, End int64 }

// Overlaps reports whether two ranges intersect.
func (r Range) Overlaps(o Range) bool { return r.Start < o.End && o.Start < r.End }

// OverlapsAny reports whether r intersects any range in rs.
func OverlapsAny(rs []Range, r Range) bool {
	for _, x := range rs {
		if x.Overlaps(r) {
			return true
		}
	}
	return false
}

// AdvSegment is one scheduled TCP segment of an adversarial stream.
// Offset is the byte offset of Data[0] within the stream (seq =
// ISN+1+Offset once anchored by a SYN).
type AdvSegment struct {
	Offset int64
	Data   []byte
	Fin    bool
	// BadChecksum marks a poison segment to be sent under a wrong,
	// nonzero TCP checksum: the end host discards it, so only a
	// reassembler that skips checksum validation ingests it.
	BadChecksum bool
	// Evil marks a poison segment stamped with the IPv4 reserved
	// ("evil") flag — the in-band attack label of adversarial corpora.
	Evil bool
	// ShortTTL marks a poison segment sent with a TTL too small to
	// reach the end host (it expires between the DPI and the host).
	ShortTTL bool
}

// Poison reports whether the segment is one a normalizing reassembler
// rejects before ingest.
func (s AdvSegment) Poison() bool { return s.BadChecksum || s.Evil || s.ShortTTL }

// AdvStream is a complete adversarial delivery schedule for one flow.
type AdvStream struct {
	// Ref is the genuine stream: what the end host reconstructs after
	// discarding poison and resolving its own overlap policy. Every
	// byte of Ref is covered by at least one genuine segment.
	Ref []byte
	// Segments is the schedule in send order.
	Segments []AdvSegment
	// Ambiguous lists ranges where conflicting same-validity copies
	// were sent: overlap policies may legitimately deliver different
	// bytes there, and pattern matches inside them are best-effort.
	Ambiguous []Range
	// Poisoned lists ranges covered by conflicting poison segments:
	// ambiguous only for a reassembler that skips normalization.
	Poisoned []Range
}

// AdvConfig tunes the adversarial scheduler; zero values get defaults.
// Probabilities are per genuine segment. A probability of -1 disables
// that attack entirely (0 means "default").
type AdvConfig struct {
	MeanSeg       int     // mean genuine segment size (default 160)
	TinyProb      float64 // tiny-segment episode (1–4 B splits), default 0.1
	ReorderWindow int     // out-of-order shuffle window in segments, default 8
	DupProb       float64 // retransmission flood, default 0.2
	ConflictProb  float64 // conflicting-overlap injection, default 0.1
	PoisonProb    float64 // bad-checksum/evil/short-TTL insertion, default 0.1
	GapFloodProb  float64 // segment held back to the end, default 0.05
	Fin           bool    // append a FIN segment at the very end
}

func prob(v, def float64) float64 {
	if v < 0 {
		return 0
	}
	if v == 0 {
		return def
	}
	return v
}

func (c *AdvConfig) defaults() {
	if c.MeanSeg <= 0 {
		c.MeanSeg = 160
	}
	if c.ReorderWindow <= 0 {
		c.ReorderWindow = 8
	}
	c.TinyProb = prob(c.TinyProb, 0.1)
	c.DupProb = prob(c.DupProb, 0.2)
	c.ConflictProb = prob(c.ConflictProb, 0.1)
	c.PoisonProb = prob(c.PoisonProb, 0.1)
	c.GapFloodProb = prob(c.GapFloodProb, 0.05)
}

// Plant copies patterns from pats into ref at n rng-chosen,
// non-overlapping sites and returns the sites. Patterns longer than
// ref are skipped. The returned ranges are the ground truth for
// no-false-negative assertions.
func Plant(rng *rand.Rand, ref []byte, pats []string, n int) []Range {
	var sites []Range
	for planted := 0; planted < n; planted++ {
		p := pats[rng.Intn(len(pats))]
		if len(p) == 0 || len(p) > len(ref) {
			continue
		}
		var site Range
		ok := false
		for try := 0; try < 32; try++ {
			off := int64(rng.Intn(len(ref) - len(p) + 1))
			site = Range{Start: off, End: off + int64(len(p))}
			if !OverlapsAny(sites, site) {
				ok = true
				break
			}
		}
		if !ok {
			continue
		}
		copy(ref[site.Start:site.End], p)
		sites = append(sites, site)
	}
	return sites
}

// Adversarial builds a seeded adversarial schedule delivering ref.
// Genuine segments cover every byte of ref; attack segments are woven
// around them.
func Adversarial(rng *rand.Rand, ref []byte, cfg AdvConfig) *AdvStream {
	cfg.defaults()
	adv := &AdvStream{Ref: ref}

	// 1. Split ref into genuine segments, with tiny-segment episodes.
	var plan []advSched
	tiny := 0
	for off := 0; off < len(ref); {
		var n int
		if tiny > 0 {
			n = 1 + rng.Intn(4)
			tiny--
		} else if rng.Float64() < cfg.TinyProb {
			tiny = 4 + rng.Intn(12) // enter a tiny-split episode
			continue
		} else {
			n = 1 + rng.Intn(2*cfg.MeanSeg)
		}
		if off+n > len(ref) {
			n = len(ref) - off
		}
		plan = append(plan, advSched{seg: AdvSegment{Offset: int64(off), Data: ref[off : off+n]}})
		off += n
	}

	// 2. Weave attacks around each genuine segment.
	var attacks []advSched
	for i := range plan {
		g := plan[i].seg
		// Retransmission flood: exact duplicates are harmless content-
		// wise but stress dedup and buffering.
		if rng.Float64() < cfg.DupProb {
			for k := 1 + rng.Intn(3); k > 0; k-- {
				attacks = append(attacks, advSched{seg: AdvSegment{Offset: g.Offset, Data: g.Data}, key: int64(i)})
			}
		}
		// Conflicting overlap: a same-validity copy of a subrange with
		// different content — the core reassembly ambiguity. Overlap
		// policies may legitimately disagree inside it.
		if rng.Float64() < cfg.ConflictProb {
			r := subrange(rng, g)
			attacks = append(attacks, advSched{seg: AdvSegment{Offset: r.Start, Data: conflict(ref[r.Start:r.End])}, key: int64(i)})
			adv.Ambiguous = append(adv.Ambiguous, r)
		}
		// Poison insertion: conflicting content under a failed checksum,
		// an evil-bit label, or a TTL that expires before the host. A
		// normalizing reassembler rejects these, so the range is only
		// ambiguous for a naive one.
		if rng.Float64() < cfg.PoisonProb {
			r := subrange(rng, g)
			seg := AdvSegment{Offset: r.Start, Data: conflict(ref[r.Start:r.End])}
			switch rng.Intn(3) {
			case 0:
				seg.BadChecksum = true
			case 1:
				seg.Evil = true
			default:
				seg.ShortTTL = true
			}
			attacks = append(attacks, advSched{seg: seg, key: int64(i)})
			adv.Poisoned = append(adv.Poisoned, r)
		}
	}

	// 3. Reorder: jitter genuine segments within the reorder window,
	// hold gap-flood victims back to the end, and let attack segments
	// land anywhere in their window.
	last := int64(len(plan))
	for i := range plan {
		if rng.Float64() < cfg.GapFloodProb {
			plan[i].key = last + int64(rng.Intn(len(plan)+1)) // long-lived gap
		} else {
			plan[i].key = int64(i) + int64(rng.Intn(cfg.ReorderWindow)) - int64(cfg.ReorderWindow/2)
		}
	}
	for i := range attacks {
		attacks[i].key += int64(rng.Intn(cfg.ReorderWindow)) - int64(cfg.ReorderWindow/2)
	}
	plan = append(plan, attacks...)
	// Deterministic order: stable sort by key, ties broken by arrival
	// construction order.
	sortSchedule(plan)
	for _, p := range plan {
		adv.Segments = append(adv.Segments, p.seg)
	}
	if cfg.Fin {
		adv.Segments = append(adv.Segments, AdvSegment{Offset: int64(len(ref)), Fin: true})
	}
	adv.Ambiguous = MergeRanges(adv.Ambiguous)
	adv.Poisoned = MergeRanges(adv.Poisoned)
	return adv
}

// subrange picks a nonempty subrange of a genuine segment.
func subrange(rng *rand.Rand, g AdvSegment) Range {
	n := 1 + rng.Intn(len(g.Data))
	off := rng.Intn(len(g.Data) - n + 1)
	return Range{Start: g.Offset + int64(off), End: g.Offset + int64(off+n)}
}

// conflict returns a copy of b guaranteed to differ at every byte.
func conflict(b []byte) []byte {
	out := make([]byte, len(b))
	for i, c := range b {
		out[i] = c ^ 0xA5
	}
	return out
}

// advSched pairs a segment with its schedule sort key.
type advSched struct {
	seg AdvSegment
	key int64
}

// sortSchedule stable-sorts by key (insertion sort is stable, so ties
// keep construction order and schedules stay deterministic).
func sortSchedule(plan []advSched) {
	for i := 1; i < len(plan); i++ {
		for j := i; j > 0 && plan[j].key < plan[j-1].key; j-- {
			plan[j], plan[j-1] = plan[j-1], plan[j]
		}
	}
}

// MergeRanges sorts and coalesces overlapping or adjacent ranges.
func MergeRanges(rs []Range) []Range {
	if len(rs) < 2 {
		return rs
	}
	sorted := make([]Range, len(rs))
	copy(sorted, rs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Start < sorted[j-1].Start; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:1]
	for _, r := range sorted[1:] {
		if r.Start <= out[len(out)-1].End {
			if r.End > out[len(out)-1].End {
				out[len(out)-1].End = r.End
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// ChecksumMode selects the TCP checksum stamped on a built frame.
type ChecksumMode int

// Checksum modes for BuildAdv.
const (
	// ChecksumNone leaves the field zero (this codec's "not set").
	ChecksumNone ChecksumMode = iota
	// ChecksumGood stamps the correct checksum.
	ChecksumGood
	// ChecksumBad stamps a deliberately wrong, nonzero checksum.
	ChecksumBad
)

// AdvFrameOpts controls the evasion-relevant header fields of a built
// frame.
type AdvFrameOpts struct {
	TTL      uint8 // 0 means the default 64
	Evil     bool  // set the IPv4 reserved ("evil") flag
	Checksum ChecksumMode
	Fin      bool
}

// BuildAdv serializes a TCP frame with adversarial header control:
// explicit TTL, the IPv4 evil bit, and a good or deliberately bad TCP
// checksum.
func (fb *FrameBuilder) BuildAdv(tuple packet.FiveTuple, seq uint32, payload []byte, o AdvFrameOpts) []byte {
	flags := packet.TCPAck
	if o.Fin {
		flags |= packet.TCPFin
	}
	ttl := o.TTL
	if ttl == 0 {
		ttl = 64
	}
	var ipFlags uint8
	if o.Evil {
		ipFlags = 0x4 // the reserved high bit of the 3-bit flags field
	}
	frame := fb.buildFull(tuple, payload, flags, seq, ttl, ipFlags)
	if frame == nil {
		return nil
	}
	switch o.Checksum {
	case ChecksumGood:
		_ = packet.SetTCPChecksum(frame)
	case ChecksumBad:
		_ = packet.CorruptTCPChecksum(frame)
	}
	return frame
}
