package traffic

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"dpiservice/internal/packet"
)

func TestPlantSites(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := NewGenerator(Config{Seed: 2, Mix: HTTPMix}).PayloadN(4096)
	pats := []string{"NEEDLE-ALPHA", "NEEDLE-BRAVO"}
	sites := Plant(rng, ref, pats, 10)
	if len(sites) == 0 {
		t.Fatal("no sites planted")
	}
	for i, s := range sites {
		got := string(ref[s.Start:s.End])
		if got != pats[0] && got != pats[1] {
			t.Errorf("site %d: ref[%d:%d] = %q, not a pattern", i, s.Start, s.End, got)
		}
		for j, o := range sites {
			if i != j && s.Overlaps(o) {
				t.Errorf("sites %d and %d overlap", i, j)
			}
		}
	}
}

func TestAdversarialDeterministic(t *testing.T) {
	ref := NewGenerator(Config{Seed: 3, Mix: CampusMix}).PayloadN(8192)
	a := Adversarial(rand.New(rand.NewSource(9)), ref, AdvConfig{Fin: true})
	b := Adversarial(rand.New(rand.NewSource(9)), ref, AdvConfig{Fin: true})
	if !reflect.DeepEqual(a.Segments, b.Segments) ||
		!reflect.DeepEqual(a.Ambiguous, b.Ambiguous) ||
		!reflect.DeepEqual(a.Poisoned, b.Poisoned) {
		t.Fatal("same seed produced different schedules")
	}
}

// TestAdversarialCoverage: genuine (non-poison) segments cover every
// byte, and outside the declared ambiguous ranges every genuine copy of
// a byte agrees with the reference.
func TestAdversarialCoverage(t *testing.T) {
	ref := NewGenerator(Config{Seed: 4, Mix: HTTPMix}).PayloadN(8192)
	adv := Adversarial(rand.New(rand.NewSource(10)), ref, AdvConfig{Fin: true})
	covered := make([]bool, len(ref))
	sawFin := false
	for _, seg := range adv.Segments {
		if seg.Fin {
			sawFin = true
		}
		if seg.Poison() {
			// Poison content must stay inside a declared poisoned range.
			r := Range{Start: seg.Offset, End: seg.Offset + int64(len(seg.Data))}
			if !OverlapsAny(adv.Poisoned, r) {
				t.Errorf("poison segment [%d,%d) outside declared poisoned ranges", r.Start, r.End)
			}
			continue
		}
		for i, b := range seg.Data {
			off := seg.Offset + int64(i)
			covered[off] = true
			if b != ref[off] && !OverlapsAny(adv.Ambiguous, Range{Start: off, End: off + 1}) {
				t.Fatalf("genuine segment disagrees with ref at %d outside ambiguous ranges", off)
			}
		}
	}
	if !sawFin {
		t.Error("Fin requested but no FIN segment scheduled")
	}
	for off, ok := range covered {
		if !ok {
			t.Fatalf("byte %d not covered by any genuine segment", off)
		}
	}
	if len(adv.Ambiguous) == 0 || len(adv.Poisoned) == 0 {
		t.Errorf("defaults produced %d ambiguous and %d poisoned ranges; want both nonzero",
			len(adv.Ambiguous), len(adv.Poisoned))
	}
}

// TestAdversarialClean: with conflicts and poison disabled every
// scheduled segment is verbatim reference content.
func TestAdversarialClean(t *testing.T) {
	ref := NewGenerator(Config{Seed: 5, Mix: HTTPMix}).PayloadN(4096)
	adv := Adversarial(rand.New(rand.NewSource(11)), ref, AdvConfig{ConflictProb: -1, PoisonProb: -1})
	if len(adv.Ambiguous) != 0 || len(adv.Poisoned) != 0 {
		t.Fatalf("disabled attacks still declared ranges: %v %v", adv.Ambiguous, adv.Poisoned)
	}
	for _, seg := range adv.Segments {
		if seg.Poison() {
			t.Fatal("poison segment scheduled with poison disabled")
		}
		if !bytes.Equal(seg.Data, ref[seg.Offset:seg.Offset+int64(len(seg.Data))]) {
			t.Fatalf("segment at %d is not verbatim reference content", seg.Offset)
		}
	}
}

func TestMergeRanges(t *testing.T) {
	got := MergeRanges([]Range{{10, 20}, {30, 40}, {15, 25}, {25, 30}})
	want := []Range{{10, 40}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeRanges = %v, want %v", got, want)
	}
	if out := MergeRanges(nil); len(out) != 0 {
		t.Errorf("MergeRanges(nil) = %v", out)
	}
}

func TestBuildAdvFrames(t *testing.T) {
	fb := &FrameBuilder{SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2}}
	tuple := packet.FiveTuple{
		Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2},
		SrcPort: 1234, DstPort: 80, Protocol: packet.IPProtoTCP,
	}
	payload := []byte("adversarial payload")

	good := fb.BuildAdv(tuple, 1000, payload, AdvFrameOpts{Checksum: ChecksumGood})
	if valid, present := packet.TCPChecksumValid(good); !present || !valid {
		t.Fatalf("good frame: valid=%v present=%v", valid, present)
	}
	bad := fb.BuildAdv(tuple, 1000, payload, AdvFrameOpts{Checksum: ChecksumBad})
	if valid, present := packet.TCPChecksumValid(bad); !present || valid {
		t.Fatalf("bad frame: valid=%v present=%v", valid, present)
	}
	none := fb.BuildAdv(tuple, 1000, payload, AdvFrameOpts{})
	if _, present := packet.TCPChecksumValid(none); present {
		t.Fatal("default frame has a checksum set")
	}

	var s packet.Summary
	evil := fb.BuildAdv(tuple, 2000, payload, AdvFrameOpts{TTL: 2, Evil: true, Fin: true})
	if err := packet.Summarize(evil, &s); err != nil {
		t.Fatal(err)
	}
	if !s.IPEvil || s.IPTTL != 2 {
		t.Errorf("evil frame: IPEvil=%v TTL=%d", s.IPEvil, s.IPTTL)
	}
	if s.TCPFlags&packet.TCPFin == 0 {
		t.Error("Fin option did not set FIN")
	}
	if s.TCPSeq != 2000 || !bytes.Equal(s.Payload, payload) {
		t.Errorf("seq/payload mismatch: seq=%d", s.TCPSeq)
	}
}
