package bench

import (
	"fmt"
	"strings"
	"time"

	"dpiservice/internal/core"
	"dpiservice/internal/netsim"
	"dpiservice/internal/packet"
	"dpiservice/internal/patterns"
	"dpiservice/internal/wire"
)

// WireRow is one transport measurement of the `wire` experiment: the
// full data-plane round trip (frame, send, scan, result back) over one
// Transport implementation.
type WireRow struct {
	Transport   string
	Packets     int
	Bytes       int64
	Mbps        float64
	Retransmits uint64
	Batched     bool // kernel sendmmsg/recvmmsg path in use
}

// Wire measures end-to-end wire-transport throughput: a client conn
// streams the corpus to a wire server running a real scan engine, and
// the row completes when every match report has come back. It runs the
// same workload over loopback UDP (the deployment path) and over a
// clean netsim link (the test fabric), demonstrating that the protocol
// is transport-portable. Display-only: wall-clock round-trip numbers
// are scheduling-sensitive, so this experiment is not part of the
// committed benchmark baseline.
func Wire(o Options) ([]WireRow, error) {
	o.defaults()
	nPat := 2000
	if o.Quick {
		nPat = 200
	}
	set := patterns.SnortLike(nPat, o.Seed)
	corpus := corpusFor(o, set)
	eng, tag, err := engineFor(core.AutoFull, set)
	if err != nil {
		return nil, err
	}

	key := wire.NewClusterKey()
	var rows []WireRow

	// Loopback UDP.
	str, err := wire.ListenUDP("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := newWireEchoServer(str, key, eng)
	ctr, err := wire.DialUDP(str.LocalAddr().AP.String())
	if err != nil {
		srv.Close()
		return nil, err
	}
	row, err := driveWireOnce("udp-loopback", ctr, key, tag, corpus)
	if err == nil {
		row.Batched = str.Batched()
		rows = append(rows, row)
	}
	srv.Close()
	if err != nil {
		return nil, err
	}

	// Netsim (clean link, same protocol).
	nw := netsim.NewNetwork()
	ct := wire.NewNetsimTransport("client")
	st := wire.NewNetsimTransport("server")
	if err := nw.AddNode(ct); err != nil {
		return nil, err
	}
	if err := nw.AddNode(st); err != nil {
		return nil, err
	}
	if err := nw.Connect(ct, st, netsim.LinkOpts{}); err != nil {
		return nil, err
	}
	srv2 := newWireEchoServer(st, key, eng)
	row, err = driveWireOnce("netsim", ct, key, tag, corpus)
	srv2.Close()
	nw.Stop()
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

// newWireEchoServer wires a scan engine behind a wire server: every
// delivered packet is inspected and answered with its encoded report.
func newWireEchoServer(tr wire.Transport, key uint64, eng *core.Engine) *wire.Server {
	srv := wire.NewServer(tr, key, wire.Config{}, nil)
	var enc []byte
	srv.OnData(func(s *wire.Session, seq uint32, tag uint16, tuple packet.FiveTuple, payload []byte) {
		rep, err := eng.Inspect(tag, tuple, payload)
		enc = enc[:0]
		if err == nil && rep != nil {
			enc = rep.AppendEncoded(enc)
		}
		s.SendResult(seq, enc)
	})
	srv.Start()
	return srv
}

// driveWireOnce streams the corpus through one client conn and waits
// for every result.
func driveWireOnce(name string, tr wire.Transport, key uint64, tag uint16, corpus [][]byte) (WireRow, error) {
	conn := wire.NewConn(tr, wire.IssueToken(key, 1), "dpibench", wire.Config{}, nil)
	results := make(chan struct{}, 1)
	var got int
	conn.OnResult(func(dataSeq uint32, report []byte) {
		got++ // receive goroutine only; read after the channel signal
		if got == len(corpus) {
			results <- struct{}{}
		}
	})
	if err := conn.Start(5 * time.Second); err != nil {
		conn.Close()
		return WireRow{}, fmt.Errorf("%s handshake: %w", name, err)
	}
	defer conn.Close()

	tuple := packet.FiveTuple{
		Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 80, Protocol: packet.IPProtoTCP,
	}
	var bytes int64
	start := time.Now()
	for _, p := range corpus {
		bytes += int64(len(p))
		if _, err := conn.SendData(tag, tuple, p); err != nil {
			return WireRow{}, fmt.Errorf("%s send: %w", name, err)
		}
	}
	conn.Flush()
	select {
	case <-results:
	case <-time.After(60 * time.Second):
		return WireRow{}, fmt.Errorf("%s: results timed out", name)
	}
	elapsed := time.Since(start)
	st := conn.Stats()
	return WireRow{
		Transport:   name,
		Packets:     len(corpus),
		Bytes:       bytes,
		Mbps:        float64(bytes) * 8 / 1e6 / elapsed.Seconds(),
		Retransmits: st.Retransmits,
	}, nil
}

// FormatWire renders the wire experiment rows.
func FormatWire(rows []WireRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %12s %12s %12s %8s\n",
		"transport", "packets", "MB", "Mbps", "retransmits", "batched")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10d %12.1f %12.0f %12d %8v\n",
			r.Transport, r.Packets, float64(r.Bytes)/1e6, r.Mbps, r.Retransmits, r.Batched)
	}
	return b.String()
}
