package bench

import (
	"strings"
	"testing"
)

var quick = Options{Quick: true, Seed: 5}

func TestFig8Quick(t *testing.T) {
	rows, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.StandaloneMbps <= 0 || r.OneVMMbps <= 0 || r.FourVMAvgMbps <= 0 {
			t.Errorf("non-positive throughput: %+v", r)
		}
	}
	// The paper's first finding: the pattern count has major impact.
	if rows[1].StandaloneMbps >= rows[0].StandaloneMbps {
		t.Logf("note: throughput did not drop with pattern count on tiny quick sets (%+v)", rows)
	}
}

func TestTable2Quick(t *testing.T) {
	rows, err := Table2(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Patterns+rows[1].Patterns != rows[2].Patterns {
		t.Errorf("combined patterns %d != %d + %d", rows[2].Patterns, rows[0].Patterns, rows[1].Patterns)
	}
	// Space observation of Table 2: merged < sum of separates.
	if rows[2].SpaceMB >= rows[0].SpaceMB+rows[1].SpaceMB {
		t.Errorf("merged space %.1f not below %.1f + %.1f",
			rows[2].SpaceMB, rows[0].SpaceMB, rows[1].SpaceMB)
	}
	for _, r := range rows {
		if r.Mbps <= 0 {
			t.Errorf("no throughput: %+v", r)
		}
	}
}

func TestFig9aQuick(t *testing.T) {
	rows, err := Fig9a(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.VirtualMbps <= r.PipelineMbps {
			t.Errorf("virtual DPI (%.0f) not faster than pipeline (%.0f) at %d patterns — "+
				"the paper's headline result must hold in shape",
				r.VirtualMbps, r.PipelineMbps, r.TotalPatterns)
		}
	}
	if s := FormatFig9(rows); !strings.Contains(s, "pipeline") {
		t.Errorf("FormatFig9 output %q", s)
	}
}

func TestFig9bQuick(t *testing.T) {
	rows, err := Fig9b(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.VirtualMbps <= r.PipelineMbps {
			t.Errorf("virtual (%.0f) <= pipeline (%.0f) at %d", r.VirtualMbps, r.PipelineMbps, r.TotalPatterns)
		}
	}
}

func TestFig10Quick(t *testing.T) {
	for name, fn := range map[string]func(Options) (*Fig10Result, error){
		"a": Fig10a, "b": Fig10b,
	} {
		res, err := fn(quick)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The triangle must exceed at least the slower middlebox's
		// rectangle side: when the faster set's box is idle, the
		// slower traffic class can borrow its capacity (the paper's
		// ClamAV-above-the-rectangle observation).
		slower := res.RectAMbps
		if res.RectBMbps < slower {
			slower = res.RectBMbps
		}
		if res.TriangleBudget <= slower {
			t.Errorf("%s: triangle budget %.0f does not exceed the slower side %.0f",
				name, res.TriangleBudget, slower)
		}
		if res.BorrowablePctA() <= 0 && res.BorrowablePctB() <= 0 {
			t.Errorf("%s: nothing borrowable on either axis: %+v", name, res)
		}
	}
}

func TestFig11Quick(t *testing.T) {
	res, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Fatal("no packets")
	}
	// Section 6.5: more than 90% of packets have no matches.
	if res.PctNoMatch < 80 {
		t.Errorf("PctNoMatch = %.1f%%, expected the large majority clean", res.PctNoMatch)
	}
	if res.MeanBytes <= 0 || len(res.CDF) == 0 {
		t.Errorf("result = %+v", res)
	}
	// CDF is monotone and ends at 100%.
	last := 0.0
	for _, p := range res.CDF {
		if p.CumPct < last {
			t.Fatalf("CDF not monotone at %+v", p)
		}
		last = p.CumPct
	}
	if last < 99.99 {
		t.Errorf("CDF ends at %.2f%%", last)
	}
	if res.P50 > res.P90 || res.P90 > res.P99 {
		t.Errorf("percentiles disordered: %+v", res)
	}
}

func TestSlowdownQuick(t *testing.T) {
	res, err := Slowdown(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Scanning must cost more than consuming results; the paper
	// reports >= 2.9x for Snort. Quick sets are small, so just require
	// a clear win.
	if res.Factor < 2 {
		t.Errorf("slowdown factor = %.1f, expected scanning >> consuming", res.Factor)
	}
}

func TestParallelQuick(t *testing.T) {
	rows, err := ParallelScaling(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	if rows[0].Workers != 1 || rows[0].Speedup != 1 {
		t.Errorf("first row must be the 1-worker baseline: %+v", rows[0])
	}
	for _, r := range rows {
		if r.Mbps <= 0 || r.Speedup <= 0 {
			t.Errorf("non-positive measurement: %+v", r)
		}
	}
	if s := FormatParallel(rows); !strings.Contains(s, "workers") {
		t.Errorf("FormatParallel output %q", s)
	}
	// No scaling assertion here: quick corpora are tiny and the test
	// host may have a single core. BenchmarkParallelInspect with
	// -cpu 1,2,4,8 is the scaling measurement.
}

func TestAblationMatchersQuick(t *testing.T) {
	rows, err := AblationMatchers(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %+v", rows)
	}
	byName := map[string]AblationMatcherRow{}
	for _, r := range rows {
		if r.Mbps <= 0 {
			t.Errorf("no throughput: %+v", r)
		}
		byName[r.Matcher] = r
	}
	if byName["ac-compact"].SpaceMB >= byName["ac-full"].SpaceMB {
		t.Error("compact AC not smaller than full AC")
	}
	if byName["ac-bitmap"].SpaceMB >= byName["ac-full"].SpaceMB {
		t.Error("bitmap AC not smaller than full AC")
	}
	if byName["ac-full"].Mbps <= byName["ac-compact"].Mbps {
		t.Error("full AC not faster than compact AC")
	}
}

func TestAblationBitmapQuick(t *testing.T) {
	rows, err := AblationBitmap(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %+v", rows)
	}
	// More active sets must never yield fewer matches.
	for i := 1; i < len(rows); i++ {
		if rows[i].Matches < rows[i-1].Matches {
			t.Errorf("matches decreased with more active sets: %+v", rows)
		}
	}
}

func TestAblationEngineKindsQuick(t *testing.T) {
	rows, err := AblationEngineKinds(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].SpaceMB <= rows[1].SpaceMB {
		t.Errorf("rows = %+v", rows)
	}
	// The prefiltered instance carries the full table plus the filter.
	if rows[2].Kind != "prefilter" || rows[2].SpaceMB < rows[0].SpaceMB {
		t.Errorf("prefilter row = %+v, want space >= full's %.1f", rows[2], rows[0].SpaceMB)
	}
}

func TestPrefilterQuick(t *testing.T) {
	rows, err := Prefilter(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %+v", rows)
	}
	byKey := map[string]PrefilterRow{}
	for _, r := range rows {
		if r.Mbps <= 0 {
			t.Errorf("no throughput: %+v", r)
		}
		byKey[r.Corpus+"/"+r.Matcher] = r
	}
	// Equivalence: both matchers must report identical match counts on
	// both corpora.
	for _, c := range []string{"low-match", "adversarial"} {
		if a, p := byKey[c+"/ac"], byKey[c+"/prefilter"]; a.Matches != p.Matches {
			t.Errorf("%s: ac found %d matches, prefilter %d", c, a.Matches, p.Matches)
		}
	}
	// The adversarial corpus must exercise the prefilter much harder
	// than the low-match one.
	low, adv := byKey["low-match/prefilter"], byKey["adversarial/prefilter"]
	if low.HitPct >= adv.HitPct {
		t.Errorf("hit rates: low-match %.2f%% >= adversarial %.2f%%", low.HitPct, adv.HitPct)
	}
	if s := FormatPrefilter(rows); !strings.Contains(s, "prefilter/ac") {
		t.Errorf("FormatPrefilter output %q", s)
	}
}

func TestMeasureResultString(t *testing.T) {
	r := Result{Name: "x", Patterns: 10, MemBytes: 2e6, Bytes: 1e6, Elapsed: 1e9}
	if r.ThroughputMbps() != 8 {
		t.Errorf("ThroughputMbps = %f", r.ThroughputMbps())
	}
	if !strings.Contains(r.String(), "Mbps") {
		t.Errorf("String = %q", r.String())
	}
	if (Result{}).ThroughputMbps() != 0 {
		t.Error("zero-elapsed result has throughput")
	}
}
