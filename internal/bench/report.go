package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"dpiservice/internal/obs"
	"dpiservice/internal/patterns"
)

// This file defines the machine-readable benchmark report emitted by
// cmd/dpibench -json (BENCH_*.json). Records carry enough detail —
// packets, ns/op, MB/s, allocations, the engine's metric snapshot — to
// compare runs over time; Compare implements the CI regression gate
// against a committed baseline (see EXPERIMENTS.md).

// Schema identifies the BENCH_*.json layout.
const Schema = "dpibench/v1"

// Record is one measurement in a benchmark report. Experiment+Name is
// the stable key regression comparisons match on.
type Record struct {
	Experiment  string  `json:"experiment"`
	Name        string  `json:"name"`
	Patterns    int     `json:"patterns"`
	Packets     int64   `json:"packets"`
	Bytes       int64   `json:"bytes"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBps        float64 `json:"mb_per_s"`
	Mbps        float64 `json:"mbps"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Matches     uint64  `json:"matches"`
	// Metrics is the engine's observability snapshot after the
	// measurement; absent for raw-automaton records.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Prefilter telemetry, present only for two-stage matcher records.
	PrefilterHitPct     float64 `json:"prefilter_hit_pct,omitempty"`
	PrefilterConfirmPct float64 `json:"prefilter_confirm_pct,omitempty"`
	PrefilterBailouts   uint64  `json:"prefilter_bailouts,omitempty"`
	PrefilterPlainScans uint64  `json:"prefilter_plain_scans,omitempty"`
	// Approximate scan-latency quantiles from the engine's core.scan_ns
	// histogram; present only when the measured path observed latency
	// (daemon-style entry points — the raw Inspect loop is clock-free).
	ScanP50Ns float64 `json:"scan_p50_ns,omitempty"`
	ScanP99Ns float64 `json:"scan_p99_ns,omitempty"`
}

// Report is a full dpibench JSON report.
type Report struct {
	Schema      string   `json:"schema"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Quick       bool     `json:"quick"`
	Seed        int64    `json:"seed"`
	CorpusBytes int      `json:"corpus_bytes"`
	Repeat      int      `json:"repeat"`
	Records     []Record `json:"records"`
}

// recordFrom converts one measurement; name overrides r.Name (pass ""
// to keep it) so sweep points stay unique within an experiment.
func recordFrom(experiment, name string, r Result) Record {
	if name == "" {
		name = r.Name
	}
	rec := Record{
		Experiment:          experiment,
		Name:                name,
		Patterns:            r.Patterns,
		Packets:             r.Packets,
		Bytes:               r.Bytes,
		NsPerOp:             r.NsPerOp(),
		MBps:                r.MBps(),
		Mbps:                r.ThroughputMbps(),
		AllocsPerOp:         r.AllocsPerOp(),
		Matches:             r.Matches,
		Metrics:             r.Metrics,
		PrefilterHitPct:     r.PfHitPct(),
		PrefilterConfirmPct: r.PfConfirmPct(),
		PrefilterBailouts:   r.PfBailouts,
		PrefilterPlainScans: r.PfPlain,
	}
	if r.Metrics != nil {
		if h, ok := r.Metrics.Histogram("core.scan_ns"); ok && h.Count > 0 {
			rec.ScanP50Ns = h.Quantile(0.50)
			rec.ScanP99Ns = h.Quantile(0.99)
		}
	}
	return rec
}

// CollectableExperiments lists the experiments Collect supports.
func CollectableExperiments() []string {
	return []string{"table2", "fig9a", "fig9b", "parallel", "prefilter"}
}

// Collect runs the given experiments and assembles their raw
// measurements into a report.
func Collect(experiments []string, o Options) (*Report, error) {
	o.defaults()
	rep := &Report{
		Schema:      Schema,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Quick:       o.Quick,
		Seed:        o.Seed,
		CorpusBytes: o.CorpusBytes,
		Repeat:      o.Repeat,
	}
	trials := o.Trials
	if trials < 1 {
		trials = 1
	}
	for _, exp := range experiments {
		recs, err := collectOne(exp, o)
		if err != nil {
			return nil, fmt.Errorf("bench: collect %s: %w", exp, err)
		}
		// Best-of-N: re-run and keep the fastest measurement per record.
		// A benchmark can only be slowed down by outside interference,
		// so the maximum is the least noisy throughput estimator.
		for t := 1; t < trials; t++ {
			again, err := collectOne(exp, o)
			if err != nil {
				return nil, fmt.Errorf("bench: collect %s (trial %d): %w", exp, t+1, err)
			}
			byKey := make(map[string]Record, len(again))
			for _, r := range again {
				byKey[r.Experiment+"/"+r.Name] = r
			}
			for i, r := range recs {
				if a, ok := byKey[r.Experiment+"/"+r.Name]; ok && a.Mbps > r.Mbps {
					recs[i] = a
				}
			}
		}
		rep.Records = append(rep.Records, recs...)
	}
	return rep, nil
}

func collectOne(exp string, o Options) ([]Record, error) {
	switch exp {
	case "table2":
		results, err := table2Results(o)
		if err != nil {
			return nil, err
		}
		var recs []Record
		for _, r := range results {
			recs = append(recs, recordFrom(exp, "", r))
		}
		return recs, nil
	case "fig9a":
		return collectFig9a(o)
	case "fig9b":
		return collectFig9b(o)
	case "parallel":
		results, err := parallelResults(o)
		if err != nil {
			return nil, err
		}
		var recs []Record
		for _, r := range results {
			recs = append(recs, recordFrom(exp, "", r))
		}
		return recs, nil
	case "prefilter":
		results, err := prefilterResults(o)
		if err != nil {
			return nil, err
		}
		var recs []Record
		for _, r := range results {
			recs = append(recs, recordFrom(exp, "", r))
		}
		return recs, nil
	default:
		return nil, fmt.Errorf("experiment %q has no record collector", exp)
	}
}

// collectFig9a records the underlying measurements of every Figure 9(a)
// sweep point (the figure's pipeline/virtual curves are pure functions
// of them).
func collectFig9a(o Options) ([]Record, error) {
	totals := []int{1089, 2178, 3267, patterns.SnortFullSize}
	if o.Quick {
		totals = []int{200, 600}
	}
	var recs []Record
	for _, total := range totals {
		full := patterns.SnortLike(total, o.Seed)
		halves, err := patterns.Split(full, 2, o.Seed)
		if err != nil {
			return nil, err
		}
		rA, rB, rC, err := fig9Measure(o, halves[0], halves[1], full)
		if err != nil {
			return nil, err
		}
		for _, r := range []Result{rA, rB, rC} {
			recs = append(recs, recordFrom("fig9a", fmt.Sprintf("%s-%d", r.Name, total), r))
		}
	}
	return recs, nil
}

// collectFig9b is collectFig9a for the Snort-vs-ClamAV sweep.
func collectFig9b(o Options) ([]Record, error) {
	snortN, clamCounts := patterns.SnortFullSize, []int{4356, 13000, 22000, patterns.ClamAVFullSize}
	if o.Quick {
		snortN, clamCounts = 300, []int{300, 600}
	}
	snort := patterns.SnortLike(snortN, o.Seed)
	var recs []Record
	for _, cn := range clamCounts {
		clam := patterns.ClamAVLike(cn, o.Seed)
		rA, rB, rC, err := fig9Measure(o, snort, clam, snort)
		if err != nil {
			return nil, err
		}
		for _, r := range []Result{rA, rB, rC} {
			recs = append(recs, recordFrom("fig9b", fmt.Sprintf("%s-%d", r.Name, snortN+cn), r))
		}
	}
	return recs, nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a BENCH_*.json report and checks its schema.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("bench: %s has schema %q, want %q", path, rep.Schema, Schema)
	}
	return &rep, nil
}

// Comparison is one baseline-vs-current throughput delta.
type Comparison struct {
	Experiment   string  `json:"experiment"`
	Name         string  `json:"name"`
	BaselineMbps float64 `json:"baseline_mbps"`
	CurrentMbps  float64 `json:"current_mbps"`
	// DeltaPct is the throughput change vs baseline; negative = slower.
	DeltaPct float64 `json:"delta_pct"`
}

// Compare matches records by Experiment+Name and returns one entry per
// record present in both reports. Records only one side measured (e.g.
// a worker count the other machine does not have) are skipped.
func Compare(baseline, current *Report) []Comparison {
	idx := make(map[string]Record, len(baseline.Records))
	for _, r := range baseline.Records {
		idx[r.Experiment+"/"+r.Name] = r
	}
	var out []Comparison
	for _, c := range current.Records {
		b, ok := idx[c.Experiment+"/"+c.Name]
		if !ok || b.Mbps <= 0 {
			continue
		}
		out = append(out, Comparison{
			Experiment:   c.Experiment,
			Name:         c.Name,
			BaselineMbps: b.Mbps,
			CurrentMbps:  c.Mbps,
			DeltaPct:     (c.Mbps - b.Mbps) / b.Mbps * 100,
		})
	}
	return out
}

// Regressed filters comparisons that got more than thresholdPct percent
// slower than baseline.
func Regressed(cmp []Comparison, thresholdPct float64) []Comparison {
	var out []Comparison
	for _, c := range cmp {
		if c.DeltaPct < -thresholdPct {
			out = append(out, c)
		}
	}
	return out
}
