// Package bench is the measurement harness that regenerates every table
// and figure of the paper's evaluation (Section 6): workload
// construction, throughput measurement of raw automata and full service
// instances, and the experiment drivers for Figure 8, Table 2,
// Figures 9(a)/9(b), Figures 10(a)/10(b), Figure 11 and the Section 1
// DPI-slowdown observation, plus ablations of this implementation's
// design choices. The cmd/dpibench binary prints the results in the
// paper's layout; EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"dpiservice/internal/core"
	"dpiservice/internal/mpm"
	"dpiservice/internal/obs"
	"dpiservice/internal/packet"
)

// Result is one throughput measurement.
type Result struct {
	Name     string
	Patterns int
	States   int
	MemBytes int64
	Bytes    int64
	Packets  int64
	Elapsed  time.Duration
	Matches  uint64
	// Allocs is the heap-allocation count of the whole measurement loop
	// (runtime mallocs delta), so AllocsPerOp covers harness overhead
	// too; the hot-path guarantee proper is asserted by
	// core.TestInspectMetricsAllocFree.
	Allocs uint64
	// Metrics is the engine's observability snapshot taken after the
	// measurement; nil for raw-automaton measurements.
	Metrics *obs.Snapshot
	// Prefilter telemetry, filled only when the measured automaton is a
	// *mpm.PrefilteredAC: probe and hit volume, bytes the exact stage
	// re-scanned, and the two escape hatches.
	PfProbes    uint64
	PfHits      uint64
	PfConfirmed uint64
	PfBailouts  uint64
	PfPlain     uint64
}

// PfHitPct returns the prefilter probe hit rate in percent.
func (r Result) PfHitPct() float64 {
	if r.PfProbes == 0 {
		return 0
	}
	return float64(r.PfHits) / float64(r.PfProbes) * 100
}

// PfConfirmPct returns the fraction of scanned bytes the exact stage had
// to re-scan, in percent.
func (r Result) PfConfirmPct() float64 {
	if r.Bytes == 0 {
		return 0
	}
	return float64(r.PfConfirmed) / float64(r.Bytes) * 100
}

// ThroughputMbps returns the measured scan rate in megabits per second
// (the unit of the paper's figures).
func (r Result) ThroughputMbps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / 1e6 / r.Elapsed.Seconds()
}

// MBps returns the scan rate in megabytes per second.
func (r Result) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// NsPerOp returns nanoseconds per inspected packet.
func (r Result) NsPerOp() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.Elapsed.Nanoseconds()) / float64(r.Packets)
}

// AllocsPerOp returns heap allocations per inspected packet.
func (r Result) AllocsPerOp() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.Allocs) / float64(r.Packets)
}

// mallocs reads the process-wide cumulative allocation count.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("%s: %d patterns, %.1f MB, %.0f Mbps",
		r.Name, r.Patterns, float64(r.MemBytes)/1e6, r.ThroughputMbps())
}

// MeasureAutomaton scans the corpus `repeat` times through a raw
// automaton and reports throughput — the pure-algorithm measurement of
// Figure 8.
func MeasureAutomaton(name string, a mpm.Automaton, corpus [][]byte, repeat int) Result {
	r := Result{Name: name, Patterns: a.NumPatterns(), States: a.NumStates(), MemBytes: a.MemoryBytes()}
	var matches uint64
	emit := func(refs []mpm.PatternRef, end int) { matches += uint64(len(refs)) }
	pf, _ := a.(*mpm.PrefilteredAC)
	var pfStats mpm.PrefilterStats
	// Untimed warm-up pass: the first scan through a pooled matcher may
	// lazily allocate its scratch (the prefilter's candidate-region
	// buffer), which must not count against the measured loop's allocs.
	if len(corpus) > 0 {
		a.Scan(corpus[0], a.Start(), mpm.AllSets, func(refs []mpm.PatternRef, end int) {})
	}
	m0 := mallocs()
	start := time.Now()
	for i := 0; i < repeat; i++ {
		state := a.Start()
		if pf != nil {
			for _, p := range corpus {
				state = pf.ScanStats(p, state, mpm.AllSets, emit, &pfStats)
				r.Bytes += int64(len(p))
			}
		} else {
			for _, p := range corpus {
				state = a.Scan(p, state, mpm.AllSets, emit)
				r.Bytes += int64(len(p))
			}
		}
	}
	r.Elapsed = time.Since(start)
	r.Allocs = mallocs() - m0
	r.Packets = int64(repeat) * int64(len(corpus))
	r.Matches = matches
	r.PfProbes, r.PfHits = pfStats.Probes, pfStats.Hits
	r.PfConfirmed = pfStats.ConfirmedBytes
	r.PfBailouts, r.PfPlain = pfStats.Bailouts, pfStats.PlainScans
	return r
}

// MeasureEngine pushes the corpus through a full DPI service instance
// (per-packet tag resolution, flow state, report construction) under
// one chain tag, rotating across nFlows flow tuples, and reports
// throughput.
func MeasureEngine(name string, e *core.Engine, tag uint16, corpus [][]byte, nFlows, repeat int) Result {
	r := Result{Name: name, Patterns: e.NumPatterns(), States: e.NumStates(), MemBytes: e.MemoryBytes()}
	tuples := benchTuples(nFlows)
	m0 := mallocs()
	start := time.Now()
	for i := 0; i < repeat; i++ {
		for j, p := range corpus {
			_, err := e.Inspect(tag, tuples[j%nFlows], p)
			if err != nil {
				panic(err) // harness misconfiguration, not a data error
			}
			r.Bytes += int64(len(p))
		}
	}
	r.Elapsed = time.Since(start)
	r.Allocs = mallocs() - m0
	r.Packets = int64(repeat) * int64(len(corpus))
	s := e.Snapshot()
	r.Matches = s.Matches
	r.Metrics = e.Metrics().Snapshot()
	return r
}

// benchTuples builds the harness's canonical nFlows five-tuples.
func benchTuples(nFlows int) []packet.FiveTuple {
	tuples := make([]packet.FiveTuple, nFlows)
	for i := range tuples {
		tuples[i] = packet.FiveTuple{
			Src:      packet.IP4{10, 0, byte(i >> 8), byte(i)},
			Dst:      packet.IP4{10, 0, 0, 2},
			SrcPort:  uint16(1024 + i),
			DstPort:  80,
			Protocol: packet.IPProtoTCP,
		}
	}
	return tuples
}

// minMbps returns the lower of two results' throughputs — the
// sustainable rate of a pipeline whose every packet crosses both
// (Figure 9's "two separate middleboxes" baseline).
func minMbps(a, b Result) float64 {
	ta, tb := a.ThroughputMbps(), b.ThroughputMbps()
	if ta < tb {
		return ta
	}
	return tb
}
