package bench

import (
	"fmt"

	"dpiservice/internal/patterns"
)

// This file is the prefilter experiment: plain AC versus the two-stage
// prefiltered matcher on the same pattern set, over a low-match corpus
// (the regime the prefilter is built for) and over the adversarial
// attack mix (its worst case — nearly every window flags, so the exact
// stage re-scans almost everything and the prefilter probes are pure
// overhead). The adversarial pair bounds the downside; the regression
// gate holds it within 10% of plain AC.

// PrefilterRow is one matcher-corpus measurement of the experiment.
type PrefilterRow struct {
	Corpus     string // "low-match" or "adversarial"
	Matcher    string // "ac" or "prefilter"
	Mbps       float64
	HitPct     float64 // flagged probes / probes (prefilter rows only)
	ConfirmPct float64 // exact-stage bytes / scanned bytes
	Bailouts   uint64
	PlainScans uint64
	Matches    uint64
}

// prefilterResults runs the four underlying measurements and returns the
// raw results in low/adv x ac/prefilter order.
func prefilterResults(o Options) ([]Result, error) {
	o.defaults()
	total := patterns.SnortFullSize
	if o.Quick {
		total = 400
	}
	set := patterns.SnortLike(total, o.Seed)
	plain, err := buildFull(set)
	if err != nil {
		return nil, err
	}
	pf, err := buildPrefiltered(set)
	if err != nil {
		return nil, err
	}
	low := corpusFor(o, set)
	advOpts := o
	advOpts.Adversarial = true
	adv := corpusFor(advOpts, set)

	return []Result{
		MeasureAutomaton("ac-low", plain, low, o.Repeat),
		MeasureAutomaton("prefilter-low", pf, low, o.Repeat),
		MeasureAutomaton("ac-adversarial", plain, adv, o.Repeat),
		MeasureAutomaton("prefilter-adversarial", pf, adv, o.Repeat),
	}, nil
}

// Prefilter runs the prefilter experiment and condenses the results.
func Prefilter(o Options) ([]PrefilterRow, error) {
	results, err := prefilterResults(o)
	if err != nil {
		return nil, err
	}
	corpora := []string{"low-match", "low-match", "adversarial", "adversarial"}
	matchers := []string{"ac", "prefilter", "ac", "prefilter"}
	var rows []PrefilterRow
	for i, r := range results {
		rows = append(rows, PrefilterRow{
			Corpus:     corpora[i],
			Matcher:    matchers[i],
			Mbps:       r.ThroughputMbps(),
			HitPct:     r.PfHitPct(),
			ConfirmPct: r.PfConfirmPct(),
			Bailouts:   r.PfBailouts,
			PlainScans: r.PfPlain,
			Matches:    r.Matches,
		})
	}
	return rows, nil
}

// FormatPrefilter renders the experiment with per-corpus speedups.
func FormatPrefilter(rows []PrefilterRow) string {
	out := fmt.Sprintf("%12s %10s %10s %8s %9s %9s %10s\n",
		"corpus", "matcher", "Mbps", "hit%", "confirm%", "bailouts", "matches")
	byCorpus := map[string][2]float64{}
	for _, r := range rows {
		out += fmt.Sprintf("%12s %10s %10.0f %8.2f %9.2f %9d %10d\n",
			r.Corpus, r.Matcher, r.Mbps, r.HitPct, r.ConfirmPct, r.Bailouts, r.Matches)
		pair := byCorpus[r.Corpus]
		if r.Matcher == "ac" {
			pair[0] = r.Mbps
		} else {
			pair[1] = r.Mbps
		}
		byCorpus[r.Corpus] = pair
	}
	for _, c := range []string{"low-match", "adversarial"} {
		if pair := byCorpus[c]; pair[0] > 0 && pair[1] > 0 {
			out += fmt.Sprintf("%12s: prefilter/ac = %.2fx\n", c, pair[1]/pair[0])
		}
	}
	return out
}
