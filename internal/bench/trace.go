package bench

import (
	"fmt"
	"sort"
	"strings"

	"dpiservice/internal/core"
	"dpiservice/internal/patterns"
	"dpiservice/internal/trace"
)

// StageLatency is one pipeline stage's latency distribution from a
// fully-traced run of the `trace` experiment.
type StageLatency struct {
	Stage  string
	Count  int
	P50Ns  int64
	P99Ns  int64
	P999Ns int64
}

// TraceStages drives the corpus through a full engine with every
// packet traced (rate-1 sampling) and reports per-stage latency
// percentiles computed from the recorded spans — the observability
// pipeline measuring itself. Display-only: wall-clock latencies are
// scheduling-sensitive, so this experiment is not part of the
// committed benchmark baseline.
func TraceStages(o Options) ([]StageLatency, error) {
	o.defaults()
	nPat := 2000
	if o.Quick {
		nPat = 200
	}
	set := patterns.SnortLike(nPat, o.Seed)
	corpus := corpusFor(o, set)
	eng, tag, err := engineFor(core.AutoFull, set)
	if err != nil {
		return nil, err
	}

	nFlows := 64
	tuples := benchTuples(nFlows)
	// Capacity covers the whole run so no span is evicted and the
	// percentiles see every packet.
	capacity := len(corpus) * trace.NumStages * o.Repeat
	tracer := trace.NewTracer("bench", capacity)
	sampler := trace.NewSampler(1, uint64(o.Seed))

	pktIdx := make([]uint32, nFlows)
	for rep := 0; rep < o.Repeat; rep++ {
		for j, p := range corpus {
			tuple := tuples[j%nFlows]
			id := sampler.TraceID(tuple)
			idx := pktIdx[j%nFlows]
			pktIdx[j%nFlows]++
			_, prepNs, scanNs, err := eng.InspectStaged(tag, tuple, p)
			if err != nil {
				return nil, err
			}
			tracer.Record(id, idx, trace.StageReassembly, 0, prepNs)
			tracer.Record(id, idx, trace.StageScan, prepNs, scanNs)
		}
	}

	byStage := make(map[string][]int64)
	for _, sp := range tracer.Snapshot() {
		byStage[sp.Stage.String()] = append(byStage[sp.Stage.String()], sp.DurNs)
	}
	stages := make([]string, 0, len(byStage))
	for s := range byStage {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	var out []StageLatency
	for _, s := range stages {
		durs := byStage[s]
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		out = append(out, StageLatency{
			Stage:  s,
			Count:  len(durs),
			P50Ns:  percentileNs(durs, 0.50),
			P99Ns:  percentileNs(durs, 0.99),
			P999Ns: percentileNs(durs, 0.999),
		})
	}
	return out, nil
}

// percentileNs returns the p-quantile of an ascending-sorted slice by
// nearest-rank.
func percentileNs(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// FormatTraceStages renders the trace experiment's per-stage table.
func FormatTraceStages(rows []StageLatency) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %12s\n", "stage", "spans", "p50[ns]", "p99[ns]", "p999[ns]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10d %12d %12d %12d\n", r.Stage, r.Count, r.P50Ns, r.P99Ns, r.P999Ns)
	}
	return b.String()
}
