package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// reportOpts keeps the Collect tests fast: tiny corpus, tiny sets.
var reportOpts = Options{Quick: true, Seed: 5, CorpusBytes: 64 << 10}

func TestCollectReport(t *testing.T) {
	rep, err := Collect([]string{"table2", "parallel"}, reportOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.GoVersion == "" || rep.GOMAXPROCS < 1 {
		t.Fatalf("report header = %+v", rep)
	}
	if !rep.Quick || rep.Seed != 5 || rep.CorpusBytes != 64<<10 {
		t.Fatalf("options not recorded: %+v", rep)
	}
	if len(rep.Records) < 4 {
		t.Fatalf("records = %d, want table2's 3 plus the worker sweep", len(rep.Records))
	}
	seen := map[string]bool{}
	var engineRecords int
	for _, r := range rep.Records {
		key := r.Experiment + "/" + r.Name
		if seen[key] {
			t.Errorf("duplicate record key %s", key)
		}
		seen[key] = true
		if r.Mbps <= 0 || r.MBps <= 0 || r.NsPerOp <= 0 || r.Packets <= 0 || r.Patterns <= 0 {
			t.Errorf("incomplete record: %+v", r)
		}
		if r.Metrics != nil {
			engineRecords++
			if got, ok := r.Metrics.Counter("core.packets"); !ok || got == 0 {
				t.Errorf("%s: engine record without core.packets: %v %v", key, got, ok)
			}
		}
	}
	if engineRecords == 0 {
		t.Error("no record carries an engine metric snapshot")
	}

	// Round trip through the file format.
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(rep.Records) || back.GoVersion != rep.GoVersion {
		t.Fatalf("round trip lost data: %d vs %d records", len(back.Records), len(rep.Records))
	}
}

func TestCollectUnknownExperiment(t *testing.T) {
	if _, err := Collect([]string{"fig11"}, reportOpts); err == nil ||
		!strings.Contains(err.Error(), "no record collector") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompareAndRegressed(t *testing.T) {
	base := &Report{Schema: Schema, Records: []Record{
		{Experiment: "fig9a", Name: "combined-200", Mbps: 1000},
		{Experiment: "fig9a", Name: "combined-600", Mbps: 500},
		{Experiment: "parallel", Name: "workers-8", Mbps: 900}, // absent in current
		{Experiment: "fig9a", Name: "zero", Mbps: 0},           // unusable baseline
	}}
	cur := &Report{Schema: Schema, Records: []Record{
		{Experiment: "fig9a", Name: "combined-200", Mbps: 1100}, // +10%
		{Experiment: "fig9a", Name: "combined-600", Mbps: 400},  // -20%
		{Experiment: "parallel", Name: "workers-2", Mbps: 800},  // absent in baseline
		{Experiment: "fig9a", Name: "zero", Mbps: 50},
	}}
	cmp := Compare(base, cur)
	if len(cmp) != 2 {
		t.Fatalf("comparisons = %+v", cmp)
	}
	reg := Regressed(cmp, 15)
	if len(reg) != 1 || reg[0].Name != "combined-600" {
		t.Fatalf("regressions = %+v", reg)
	}
	if reg[0].DeltaPct > -19.9 || reg[0].DeltaPct < -20.1 {
		t.Errorf("DeltaPct = %f, want -20", reg[0].DeltaPct)
	}
	// The -20% row survives a looser gate.
	if got := Regressed(cmp, 25); len(got) != 0 {
		t.Errorf("loose gate flagged %+v", got)
	}
}

func TestQuickDoesNotOverrideExplicitCorpus(t *testing.T) {
	o := Options{Quick: true, CorpusBytes: 1 << 20}
	o.defaults()
	if o.CorpusBytes != 1<<20 {
		t.Fatalf("explicit corpus overridden to %d", o.CorpusBytes)
	}
	o = Options{Quick: true}
	o.defaults()
	if o.CorpusBytes != 256<<10 {
		t.Fatalf("quick default corpus = %d", o.CorpusBytes)
	}
}
