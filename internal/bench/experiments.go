package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dpiservice/internal/core"
	"dpiservice/internal/mpm"
	"dpiservice/internal/packet"
	"dpiservice/internal/patterns"
	"dpiservice/internal/traffic"
)

// Options scale the experiments. The zero value reproduces the paper's
// full parameter ranges; Quick selects a configuration small enough for
// unit tests.
type Options struct {
	Seed        int64
	CorpusBytes int  // payload bytes per measurement; default 4 MiB
	Repeat      int  // corpus passes per measurement; default 1
	Quick       bool // shrink pattern counts and corpus for tests
	// Trials makes Collect keep the best (highest-throughput) of N runs
	// per record, damping scheduler and GC noise for the CI regression
	// gate; default 1. The figure/table drivers ignore it.
	Trials int
	// Adversarial switches corpus construction to the attack mix:
	// payloads densely packed with pattern material, the worst case for
	// the prefilter (near-100% candidate rate, constant confirm work).
	Adversarial bool
}

func (o *Options) defaults() {
	if o.CorpusBytes <= 0 {
		// Quick shrinks the corpus only when the caller did not size it
		// explicitly; an explicit -corpus always wins.
		if o.Quick {
			o.CorpusBytes = 256 << 10
		} else {
			o.CorpusBytes = 4 << 20
		}
	}
	if o.Repeat <= 0 {
		o.Repeat = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// corpusFor builds the HTTP-mix corpus used across experiments, with a
// sub-10% match fraction drawn from the given pattern set (Section 6.5:
// over 90% of trace packets have no matches). With Options.Adversarial
// it builds the attack mix instead: payloads stitched from pattern
// fragments, so nearly every prefilter window flags.
func corpusFor(o Options, set *patterns.Set) [][]byte {
	var inject []string
	if set != nil {
		all := set.Strings()
		// A small sample of the set keeps injection realistic.
		for i := 0; i < len(all) && i < 64; i += 1 {
			inject = append(inject, all[i])
		}
	}
	mix := traffic.HTTPMix
	if o.Adversarial {
		mix = traffic.AttackMix
	}
	g := traffic.NewGenerator(traffic.Config{
		Seed: o.Seed + 7, Mix: mix,
		MatchFraction: 0.08, InjectPatterns: inject,
	})
	return g.Corpus(o.CorpusBytes)
}

// buildFull builds a full-table automaton over one set.
func buildFull(set *patterns.Set) (*mpm.ACFull, error) {
	b := mpm.NewBuilder()
	if err := b.AddSet(0, set.Strings()); err != nil {
		return nil, err
	}
	return b.BuildFull()
}

// buildCombined builds a full-table automaton over several sets.
func buildCombined(sets ...*patterns.Set) (*mpm.ACFull, error) {
	b := mpm.NewBuilder()
	for i, s := range sets {
		if err := b.AddSet(i, s.Strings()); err != nil {
			return nil, err
		}
	}
	return b.BuildFull()
}

// buildPrefiltered builds a two-stage prefiltered automaton over several
// sets. BuildPrefiltered never fails on pattern shape — unsuitable sets
// compile in fallback mode and scan like plain AC.
func buildPrefiltered(sets ...*patterns.Set) (*mpm.PrefilteredAC, error) {
	b := mpm.NewBuilder()
	for i, s := range sets {
		if err := b.AddSet(i, s.Strings()); err != nil {
			return nil, err
		}
	}
	return b.BuildPrefiltered()
}

// engineFor wraps pattern sets into a one-chain service instance.
func engineFor(kind core.AutomatonKind, sets ...*patterns.Set) (*core.Engine, uint16, error) {
	cfg := core.Config{Kind: kind, Chains: map[uint16][]int{1: {}}}
	for i, s := range sets {
		cfg.Profiles = append(cfg.Profiles, core.Profile{ID: i, Name: s.Name, Patterns: s})
		cfg.Chains[1] = append(cfg.Chains[1], i)
	}
	e, err := core.NewEngine(cfg)
	return e, 1, err
}

// --- Figure 8 --------------------------------------------------------

// Fig8Row is one point of Figure 8: AC throughput vs pattern count for
// a stand-alone process, a single virtualized instance, and the average
// of four instances each on its own core.
type Fig8Row struct {
	Patterns       int
	StandaloneMbps float64
	OneVMMbps      float64
	FourVMAvgMbps  float64
}

// Fig8 reproduces Figure 8. Virtualization is modeled as a queue hop
// into a separate scanning goroutine (the virtio-style indirection a VM
// adds); "four VMs" are measured as four sequential instances since the
// paper pins each VM to its own core (see EXPERIMENTS.md).
func Fig8(o Options) ([]Fig8Row, error) {
	o.defaults()
	counts := []int{500, 1000, 2000, 4000, 8000, 16000, patterns.ClamAVFullSize}
	if o.Quick {
		counts = []int{100, 400}
	}
	var rows []Fig8Row
	for _, n := range counts {
		set := patterns.ClamAVLike(n, o.Seed)
		corpus := corpusFor(o, set)
		a, err := buildFull(set)
		if err != nil {
			return nil, err
		}
		row := Fig8Row{Patterns: n}
		row.StandaloneMbps = MeasureAutomaton("standalone", a, corpus, o.Repeat).ThroughputMbps()
		row.OneVMMbps = measureVM(a, corpus, o.Repeat).ThroughputMbps()
		var sum float64
		for vm := 0; vm < 4; vm++ {
			sum += measureVM(a, corpus, o.Repeat).ThroughputMbps()
		}
		row.FourVMAvgMbps = sum / 4
		rows = append(rows, row)
	}
	return rows, nil
}

// measureVM scans the corpus through a channel-fed goroutine,
// modeling the per-packet indirection of a virtualized NIC path.
func measureVM(a mpm.Automaton, corpus [][]byte, repeat int) Result {
	r := Result{Name: "vm", Patterns: a.NumPatterns(), MemBytes: a.MemoryBytes()}
	in := make(chan []byte, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		state := a.Start()
		emit := func(refs []mpm.PatternRef, end int) {}
		for p := range in {
			state = a.Scan(p, state, mpm.AllSets, emit)
		}
	}()
	start := time.Now()
	for i := 0; i < repeat; i++ {
		for _, p := range corpus {
			in <- p
			r.Bytes += int64(len(p))
		}
	}
	close(in)
	<-done
	r.Elapsed = time.Since(start)
	return r
}

// --- Table 2 ---------------------------------------------------------

// Table2Row is one row of Table 2.
type Table2Row struct {
	Sets     string
	Patterns int
	SpaceMB  float64
	Mbps     float64
}

// table2Results measures the three Table 2 configurations and returns
// the raw results (Table2 condenses them into the paper's rows).
func table2Results(o Options) ([]Result, error) {
	o.defaults()
	total := patterns.SnortFullSize
	if o.Quick {
		total = 600
	}
	full := patterns.SnortLike(total, o.Seed)
	halves, err := patterns.Split(full, 2, o.Seed)
	if err != nil {
		return nil, err
	}
	corpus := corpusFor(o, full)

	var results []Result
	for _, tc := range []struct {
		name string
		sets []*patterns.Set
	}{
		{"Snort1", halves[:1]},
		{"Snort2", halves[1:]},
		{"Snort1+Snort2", halves},
	} {
		a, err := buildCombined(tc.sets...)
		if err != nil {
			return nil, err
		}
		results = append(results, MeasureAutomaton(tc.name, a, corpus, o.Repeat))
	}
	return results, nil
}

// Table2 reproduces Table 2: Snort split into Snort1/Snort2, measured
// separately and merged.
func Table2(o Options) ([]Table2Row, error) {
	results, err := table2Results(o)
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, res := range results {
		rows = append(rows, Table2Row{
			Sets:     res.Name,
			Patterns: res.Patterns,
			SpaceMB:  float64(res.MemBytes) / 1e6,
			Mbps:     res.ThroughputMbps(),
		})
	}
	return rows, nil
}

// --- Figure 9 --------------------------------------------------------

// Fig9Row is one point of Figure 9: total pattern count vs the
// sustainable throughput of two pipelined middleboxes and of two
// virtual-DPI instances sharing the merged automaton.
type Fig9Row struct {
	TotalPatterns int
	PipelineMbps  float64 // two separate middleboxes in sequence
	VirtualMbps   float64 // two combined-DPI instances, load split
}

// Fig9a reproduces Figure 9(a): Snort-like patterns split into two
// middlebox sets, swept by total pattern count.
func Fig9a(o Options) ([]Fig9Row, error) {
	o.defaults()
	totals := []int{1089, 2178, 3267, patterns.SnortFullSize}
	if o.Quick {
		totals = []int{200, 600}
	}
	var rows []Fig9Row
	for _, total := range totals {
		full := patterns.SnortLike(total, o.Seed)
		halves, err := patterns.Split(full, 2, o.Seed)
		if err != nil {
			return nil, err
		}
		row, err := fig9Point(o, total, halves[0], halves[1], full)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// Fig9b reproduces Figure 9(b): the full Snort-like set as one
// middlebox and growing ClamAV-like sets as the other.
func Fig9b(o Options) ([]Fig9Row, error) {
	o.defaults()
	snortN, clamCounts := patterns.SnortFullSize, []int{4356, 13000, 22000, patterns.ClamAVFullSize}
	if o.Quick {
		snortN, clamCounts = 300, []int{300, 600}
	}
	snort := patterns.SnortLike(snortN, o.Seed)
	var rows []Fig9Row
	for _, cn := range clamCounts {
		clam := patterns.ClamAVLike(cn, o.Seed)
		row, err := fig9Point(o, snortN+cn, snort, clam, snort)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// fig9Measure runs the three underlying measurements of one Figure 9
// point: each half separately and the merged automaton. All three run
// the production two-stage matcher (prefilter + exact confirm), the
// engine's AutoPrefilter data path; sets whose patterns are unsuitable
// compile in fallback mode and measure as plain AC.
func fig9Measure(o Options, setA, setB, injectFrom *patterns.Set) (rA, rB, rC Result, err error) {
	corpus := corpusFor(o, injectFrom)
	aA, err := buildPrefiltered(setA)
	if err != nil {
		return rA, rB, rC, err
	}
	aB, err := buildPrefiltered(setB)
	if err != nil {
		return rA, rB, rC, err
	}
	comb, err := buildPrefiltered(setA, setB)
	if err != nil {
		return rA, rB, rC, err
	}
	rA = MeasureAutomaton(setA.Name, aA, corpus, o.Repeat)
	rB = MeasureAutomaton(setB.Name, aB, corpus, o.Repeat)
	rC = MeasureAutomaton("combined", comb, corpus, o.Repeat)
	return rA, rB, rC, nil
}

func fig9Point(o Options, total int, setA, setB, injectFrom *patterns.Set) (*Fig9Row, error) {
	rA, rB, rC, err := fig9Measure(o, setA, setB, injectFrom)
	if err != nil {
		return nil, err
	}
	return &Fig9Row{
		TotalPatterns: total,
		// Pipeline: every packet crosses both boxes; the slower one is
		// the bottleneck.
		PipelineMbps: minMbps(rA, rB),
		// Virtual DPI: the same two machines each run the merged
		// automaton and the load is split between them (Figure 2(b)).
		VirtualMbps: 2 * rC.ThroughputMbps(),
	}, nil
}

// --- Figure 10 -------------------------------------------------------

// Fig10Result summarizes one achievable-throughput region comparison:
// the rectangle of two dedicated middleboxes versus the triangle of two
// virtual-DPI machines (Figure 10).
type Fig10Result struct {
	NameA, NameB   string
	RectAMbps      float64 // max traffic-A throughput, dedicated box A
	RectBMbps      float64 // max traffic-B throughput, dedicated box B
	CombinedMbps   float64 // merged-automaton throughput of one machine
	TriangleBudget float64 // x + y <= TriangleBudget (= 2 * combined)
}

// BorrowablePctA reports how far traffic A can exceed its dedicated
// box's capacity when B is idle; negative means the triangle does not
// reach A's rectangle side there. The paper's Figure 10(b) example is
// the slower middlebox (ClamAV) exceeding 100% of its original
// capacity while the other is under-utilized.
func (f Fig10Result) BorrowablePctA() float64 { return borrowPct(f.TriangleBudget, f.RectAMbps) }

// BorrowablePctB is BorrowablePctA for the other axis.
func (f Fig10Result) BorrowablePctB() float64 { return borrowPct(f.TriangleBudget, f.RectBMbps) }

func borrowPct(budget, side float64) float64 {
	if side == 0 {
		return 0
	}
	return (budget - side) / side * 100
}

// Fig10a reproduces Figure 10(a) (Snort1 vs Snort2).
func Fig10a(o Options) (*Fig10Result, error) {
	o.defaults()
	total := patterns.SnortFullSize
	if o.Quick {
		total = 600
	}
	full := patterns.SnortLike(total, o.Seed)
	halves, err := patterns.Split(full, 2, o.Seed)
	if err != nil {
		return nil, err
	}
	return fig10Point(o, halves[0], halves[1], full)
}

// Fig10b reproduces Figure 10(b) (full Snort vs ClamAV).
func Fig10b(o Options) (*Fig10Result, error) {
	o.defaults()
	snortN, clamN := patterns.SnortFullSize, patterns.ClamAVFullSize
	if o.Quick {
		snortN, clamN = 300, 600
	}
	return fig10Point(o, patterns.SnortLike(snortN, o.Seed), patterns.ClamAVLike(clamN, o.Seed+1), nil)
}

func fig10Point(o Options, setA, setB, injectFrom *patterns.Set) (*Fig10Result, error) {
	if injectFrom == nil {
		injectFrom = setA
	}
	corpus := corpusFor(o, injectFrom)
	aA, err := buildFull(setA)
	if err != nil {
		return nil, err
	}
	aB, err := buildFull(setB)
	if err != nil {
		return nil, err
	}
	comb, err := buildCombined(setA, setB)
	if err != nil {
		return nil, err
	}
	rA := MeasureAutomaton(setA.Name, aA, corpus, o.Repeat)
	rB := MeasureAutomaton(setB.Name, aB, corpus, o.Repeat)
	rC := MeasureAutomaton("combined", comb, corpus, o.Repeat)
	return &Fig10Result{
		NameA: setA.Name, NameB: setB.Name,
		RectAMbps: rA.ThroughputMbps(), RectBMbps: rB.ThroughputMbps(),
		CombinedMbps:   rC.ThroughputMbps(),
		TriangleBudget: 2 * rC.ThroughputMbps(),
	}, nil
}

// --- Figure 11 -------------------------------------------------------

// Fig11Result is the match-report size analysis of Section 6.5.
type Fig11Result struct {
	Packets       int
	PctNoMatch    float64
	MeanBytes     float64
	P50, P90, P99 int
	// CDF maps a report size to the cumulative percentage of
	// non-empty reports at or below it, sampled at each distinct size.
	CDF []CDFPoint
}

// CDFPoint is one Figure 11 curve sample.
type CDFPoint struct {
	SizeBytes int
	CumPct    float64
}

// Fig11 reproduces Figure 11: the distribution of non-empty match
// report sizes over campus-like traffic.
func Fig11(o Options) (*Fig11Result, error) {
	o.defaults()
	total := patterns.SnortFullSize
	if o.Quick {
		total = 600
	}
	set := patterns.SnortLike(total, o.Seed)
	// A repeated-character rule exercises the 6-byte range reports of
	// Section 6.5 ("when a pattern consists of the same character ...
	// multiple matches of the same pattern should be reported").
	runPattern := "AAAAAAAA"
	set.Patterns = append(set.Patterns, patterns.Pattern{ID: len(set.Patterns), Content: runPattern})
	e, tag, err := engineFor(core.AutoFull, set)
	if err != nil {
		return nil, err
	}
	inject := append([]string{}, set.Strings()[:64]...)
	// Occasional long runs of the repeated character coalesce into
	// range entries.
	inject = append(inject, strings.Repeat("A", 40), strings.Repeat("A", 120))
	g := traffic.NewGenerator(traffic.Config{
		Seed: o.Seed + 3, Mix: traffic.CampusMix,
		MatchFraction: 0.08, InjectPatterns: inject,
		// Trace packets that match at all typically hit several rules
		// (HTTP headers intersect many IDS patterns).
		InjectBurstMean: 5,
	})
	corpus := g.Corpus(o.CorpusBytes)

	tuple := packet.FiveTuple{Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}, DstPort: 80, Protocol: packet.IPProtoTCP}
	var sizes []int
	res := &Fig11Result{}
	for i, p := range corpus {
		tuple.SrcPort = uint16(i)
		rep, err := e.Inspect(tag, tuple, p)
		if err != nil {
			return nil, err
		}
		res.Packets++
		if rep != nil {
			sizes = append(sizes, rep.EncodedLen())
		}
	}
	if res.Packets == 0 {
		return res, nil
	}
	res.PctNoMatch = float64(res.Packets-len(sizes)) / float64(res.Packets) * 100
	if len(sizes) == 0 {
		return res, nil
	}
	sort.Ints(sizes)
	var sum int
	for _, s := range sizes {
		sum += s
	}
	res.MeanBytes = float64(sum) / float64(len(sizes))
	res.P50 = sizes[len(sizes)*50/100]
	res.P90 = sizes[len(sizes)*90/100]
	res.P99 = sizes[len(sizes)*99/100]
	for i, s := range sizes {
		if i == len(sizes)-1 || sizes[i+1] != s {
			res.CDF = append(res.CDF, CDFPoint{SizeBytes: s, CumPct: float64(i+1) / float64(len(sizes)) * 100})
		}
	}
	return res, nil
}

// --- Section 1 footnote: DPI slowdown -------------------------------

// SlowdownResult quantifies the paper's opening observation that DPI
// slows middlebox packet processing by a factor of at least 2.9. Both
// paths perform the middlebox's whole per-packet job — frame parsing,
// rule counting and forwarding — and differ only in where the pattern
// information comes from: an in-box scan versus the DPI service's
// result packet.
type SlowdownResult struct {
	ScanNsPerPkt    float64
	ConsumeNsPerPkt float64
	Factor          float64
}

// Slowdown measures the slowdown factor using full Ethernet frames.
func Slowdown(o Options) (*SlowdownResult, error) {
	o.defaults()
	total := patterns.SnortFullSize
	if o.Quick {
		total = 600
	}
	set := patterns.SnortLike(total, o.Seed)
	corpus := corpusFor(o, set)

	// Build the data frames once, plus the result frames the DPI
	// service would have produced for them.
	eng, tag, err := engineFor(core.AutoFull, set)
	if err != nil {
		return nil, err
	}
	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}, DstPort: 80, Protocol: packet.IPProtoTCP}
	frames := make([][]byte, len(corpus))
	reports := make([][]byte, len(corpus))
	for i, p := range corpus {
		tuple.SrcPort = uint16(i % 64)
		frames[i] = fb.Build(tuple, p)
		rep, err := eng.Inspect(tag, tuple, p)
		if err != nil {
			return nil, err
		}
		if rep != nil {
			reports[i] = rep.AppendEncoded(nil)
		}
	}

	// Middlebox WITH DPI: parse, scan, count, forward.
	eng2, tag2, err := engineFor(core.AutoFull, set)
	if err != nil {
		return nil, err
	}
	sink := make([]byte, 2048)
	var sum packet.Summary
	var rules uint64
	start := time.Now()
	for r := 0; r < o.Repeat; r++ {
		for _, f := range frames {
			if err := packet.Summarize(f, &sum); err != nil {
				return nil, err
			}
			rep, err := eng2.Inspect(tag2, sum.Tuple, sum.Payload)
			if err != nil {
				return nil, err
			}
			if rep != nil {
				if sec := rep.SectionFor(0); sec != nil {
					for _, e := range sec.Entries {
						rules += uint64(e.Count)
					}
				}
			}
			copy(sink, f) // forward
		}
	}
	scanElapsed := time.Since(start)

	// Middlebox WITHOUT DPI: parse, decode the result, count, forward.
	var rep packet.Report
	start = time.Now()
	for r := 0; r < o.Repeat; r++ {
		for i, f := range frames {
			if err := packet.Summarize(f, &sum); err != nil {
				return nil, err
			}
			if enc := reports[i]; enc != nil {
				if _, err := packet.DecodeReport(enc, &rep); err != nil {
					return nil, err
				}
				if sec := rep.SectionFor(0); sec != nil {
					for _, e := range sec.Entries {
						rules += uint64(e.Count)
					}
				}
			}
			copy(sink, f) // forward
		}
	}
	consumeElapsed := time.Since(start)
	_ = rules

	n := float64(o.Repeat * len(frames))
	res := &SlowdownResult{
		ScanNsPerPkt:    float64(scanElapsed.Nanoseconds()) / n,
		ConsumeNsPerPkt: float64(consumeElapsed.Nanoseconds()) / n,
	}
	if res.ConsumeNsPerPkt > 0 {
		res.Factor = res.ScanNsPerPkt / res.ConsumeNsPerPkt
	}
	return res, nil
}

// --- Ablations -------------------------------------------------------

// AblationMatcherRow compares the matcher representations on one set.
type AblationMatcherRow struct {
	Matcher string
	Mbps    float64
	SpaceMB float64
}

// AblationMatchers compares full-table AC, compact AC and Wu-Manber on
// the same pattern set and corpus — the space-time tradeoff behind the
// MCA² dedicated instances.
func AblationMatchers(o Options) ([]AblationMatcherRow, error) {
	o.defaults()
	total := patterns.SnortFullSize
	if o.Quick {
		total = 400
	}
	set := patterns.SnortLike(total, o.Seed)
	corpus := corpusFor(o, set)
	b := mpm.NewBuilder()
	if err := b.AddSet(0, set.Strings()); err != nil {
		return nil, err
	}
	full, err := b.BuildFull()
	if err != nil {
		return nil, err
	}
	compact, err := b.BuildCompact()
	if err != nil {
		return nil, err
	}
	bitmap, err := b.BuildBitmap()
	if err != nil {
		return nil, err
	}
	wm, err := b.BuildWuManber()
	if err != nil {
		return nil, err
	}
	var rows []AblationMatcherRow
	for _, tc := range []struct {
		name string
		a    mpm.Automaton
	}{{"ac-full", full}, {"ac-bitmap", bitmap}, {"ac-compact", compact}} {
		r := MeasureAutomaton(tc.name, tc.a, corpus, o.Repeat)
		rows = append(rows, AblationMatcherRow{tc.name, r.ThroughputMbps(), float64(tc.a.MemoryBytes()) / 1e6})
	}
	// Wu-Manber is a whole-buffer matcher; measure Find.
	start := time.Now()
	var bytes int64
	emit := func(refs []mpm.PatternRef, end int) {}
	for i := 0; i < o.Repeat; i++ {
		for _, p := range corpus {
			wm.Find(p, emit)
			bytes += int64(len(p))
		}
	}
	el := time.Since(start)
	rows = append(rows, AblationMatcherRow{
		"wu-manber",
		float64(bytes) * 8 / 1e6 / el.Seconds(),
		float64(wm.MemoryBytes()) / 1e6,
	})
	return rows, nil
}

// AblationBitmapRow measures the per-state bitmap filter: scanning a
// merged automaton of k sets with only one set active should cost about
// the same as with all active, because irrelevant accepting states are
// dismissed with one AND.
type AblationBitmapRow struct {
	ActiveSets int
	Mbps       float64
	Matches    uint64
}

// AblationBitmap sweeps the number of active sets on an 8-set merged
// automaton.
func AblationBitmap(o Options) ([]AblationBitmapRow, error) {
	o.defaults()
	perSet := 500
	if o.Quick {
		perSet = 60
	}
	b := mpm.NewBuilder()
	var first *patterns.Set
	for s := 0; s < 8; s++ {
		set := patterns.SnortLike(perSet, o.Seed+int64(s))
		if s == 0 {
			first = set
		}
		if err := b.AddSet(s, set.Strings()); err != nil {
			return nil, err
		}
	}
	a, err := b.BuildFull()
	if err != nil {
		return nil, err
	}
	corpus := corpusFor(o, first)
	var rows []AblationBitmapRow
	for _, k := range []int{1, 2, 4, 8} {
		var active uint64
		for s := 0; s < k; s++ {
			active |= mpm.SetBit(s)
		}
		var matches uint64
		actMask := active
		emit := func(refs []mpm.PatternRef, end int) {
			for _, r := range refs {
				if actMask&(1<<uint(r.Set)) != 0 {
					matches++
				}
			}
		}
		start := time.Now()
		var bytes int64
		state := a.Start()
		for i := 0; i < o.Repeat; i++ {
			for _, p := range corpus {
				state = a.Scan(p, state, active, emit)
				bytes += int64(len(p))
			}
		}
		el := time.Since(start)
		rows = append(rows, AblationBitmapRow{
			ActiveSets: k,
			Mbps:       float64(bytes) * 8 / 1e6 / el.Seconds(),
			Matches:    matches,
		})
	}
	return rows, nil
}

// AblationKindRow compares full service instances on the two automaton
// representations — what a regular versus an MCA² dedicated instance
// runs.
type AblationKindRow struct {
	Kind    string
	Mbps    float64
	SpaceMB float64
}

// AblationEngineKinds measures instance-level throughput per kind.
func AblationEngineKinds(o Options) ([]AblationKindRow, error) {
	o.defaults()
	total := patterns.SnortFullSize
	if o.Quick {
		total = 400
	}
	set := patterns.SnortLike(total, o.Seed)
	corpus := corpusFor(o, set)
	var rows []AblationKindRow
	for _, tc := range []struct {
		name string
		kind core.AutomatonKind
	}{{"full", core.AutoFull}, {"compact", core.AutoCompact}, {"prefilter", core.AutoPrefilter}} {
		e, tag, err := engineFor(tc.kind, set)
		if err != nil {
			return nil, err
		}
		r := MeasureEngine(tc.name, e, tag, corpus, 64, o.Repeat)
		rows = append(rows, AblationKindRow{tc.name, r.ThroughputMbps(), float64(e.MemoryBytes()) / 1e6})
	}
	return rows, nil
}

// String helpers for the harness binary.

// FormatFig9 renders Figure 9 rows.
func FormatFig9(rows []Fig9Row) string {
	out := fmt.Sprintf("%14s %22s %22s %8s\n", "patterns", "pipeline [Mbps]", "virtual DPI [Mbps]", "gain")
	for _, r := range rows {
		gain := 0.0
		if r.PipelineMbps > 0 {
			gain = (r.VirtualMbps/r.PipelineMbps - 1) * 100
		}
		out += fmt.Sprintf("%14d %22.0f %22.0f %+7.0f%%\n", r.TotalPatterns, r.PipelineMbps, r.VirtualMbps, gain)
	}
	return out
}
