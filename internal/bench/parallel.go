package bench

import (
	"fmt"
	"runtime"
	"time"

	"dpiservice/internal/core"
	"dpiservice/internal/packet"
	"dpiservice/internal/patterns"
)

// This file measures the multi-core scaling of a single DPI instance:
// the sharded, re-entrant engine driven through InspectBatch with k
// workers should track the paper's "k VMs, one per core" aggregate
// (Figure 8 / Section 6.2), without the k separate automaton copies.

// ParallelRow is one point of the throughput-vs-cores curve.
type ParallelRow struct {
	Workers int
	Mbps    float64
	Speedup float64 // vs the 1-worker row
}

// parallelWorkerCounts picks the sweep: powers of two up to GOMAXPROCS,
// always including GOMAXPROCS itself.
func parallelWorkerCounts() []int {
	maxW := runtime.GOMAXPROCS(0)
	var counts []int
	for w := 1; w < maxW; w <<= 1 {
		counts = append(counts, w)
	}
	return append(counts, maxW)
}

// parallelResults runs the worker sweep and returns the raw results.
func parallelResults(o Options) ([]Result, error) {
	o.defaults()
	total := patterns.SnortFullSize
	if o.Quick {
		total = 400
	}
	set := patterns.SnortLike(total, o.Seed)
	corpus := corpusFor(o, set)
	e, tag, err := engineFor(core.AutoFull, set)
	if err != nil {
		return nil, err
	}
	var results []Result
	for _, w := range parallelWorkerCounts() {
		results = append(results, MeasureEngineParallel(fmt.Sprintf("workers-%d", w), e, tag, corpus, 256, o.Repeat, w))
	}
	return results, nil
}

// ParallelScaling sweeps InspectBatch workers over the HTTP-mix
// workload on one engine with the full Snort-like set.
func ParallelScaling(o Options) ([]ParallelRow, error) {
	results, err := parallelResults(o)
	if err != nil {
		return nil, err
	}
	var rows []ParallelRow
	for i, r := range results {
		row := ParallelRow{Workers: parallelWorkerCounts()[i], Mbps: r.ThroughputMbps()}
		if len(rows) > 0 && rows[0].Mbps > 0 {
			row.Speedup = row.Mbps / rows[0].Mbps
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MeasureEngineParallel pushes the corpus through a service instance
// with InspectBatch fanning packets across `workers` goroutines,
// rotating across nFlows flow tuples so the sharded flow table spreads
// the load, and reports aggregate throughput.
func MeasureEngineParallel(name string, e *core.Engine, tag uint16, corpus [][]byte, nFlows, repeat, workers int) Result {
	r := Result{Name: name, Patterns: e.NumPatterns(), States: e.NumStates(), MemBytes: e.MemoryBytes()}
	items := make([]core.BatchItem, len(corpus))
	for j, p := range corpus {
		f := j % nFlows
		items[j] = core.BatchItem{
			Tag: tag,
			Tuple: packet.FiveTuple{
				Src:      packet.IP4{10, 0, byte(f >> 8), byte(f)},
				Dst:      packet.IP4{10, 0, 0, 2},
				SrcPort:  uint16(1024 + f),
				DstPort:  80,
				Protocol: packet.IPProtoTCP,
			},
			Payload: p,
		}
		r.Bytes += int64(len(p))
	}
	r.Bytes *= int64(repeat)
	m0 := mallocs()
	start := time.Now()
	for i := 0; i < repeat; i++ {
		e.InspectBatch(items, workers)
	}
	r.Elapsed = time.Since(start)
	r.Allocs = mallocs() - m0
	r.Packets = int64(repeat) * int64(len(items))
	for i := range items {
		if items[i].Err != nil {
			panic(items[i].Err) // harness misconfiguration, not a data error
		}
	}
	s := e.Snapshot()
	r.Matches = s.Matches
	r.Metrics = e.Metrics().Snapshot()
	return r
}

// FormatParallel renders the throughput-vs-cores table.
func FormatParallel(rows []ParallelRow) string {
	out := fmt.Sprintf("%10s %14s %10s\n", "workers", "Mbps", "speedup")
	for _, r := range rows {
		out += fmt.Sprintf("%10d %14.0f %9.2fx\n", r.Workers, r.Mbps, r.Speedup)
	}
	return out
}
