package controller

import (
	"errors"
	"io"
	"net"
	"sync"

	"dpiservice/internal/ctlproto"
)

// Server exposes a Controller over the ctlproto wire protocol: it
// accepts connections from middleboxes (registration, pattern
// management), from the TSA (policy chains), and from DPI service
// instances (hello/init, telemetry).
type Server struct {
	ctl *Controller
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup

	// logFn receives diagnostic messages; nil keeps the library quiet.
	logFn func(format string, args ...any)
}

// Serve starts accepting control connections on ln; it returns
// immediately. logf, when non-nil, receives diagnostic messages (cmd/
// daemons pass log.Printf); it must be fixed at start so the accept
// loop never races a later assignment. Close stops the server.
func Serve(ctl *Controller, ln net.Listener, logf func(format string, args ...any)) *Server {
	s := &Server{ctl: ctl, ln: ln, conns: make(map[net.Conn]bool), logFn: logf}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// logf forwards to the configured sink, if any.
func (s *Server) logf(format string, args ...any) {
	if s.logFn != nil {
		s.logFn(format, args...)
	}
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		env, err := ctlproto.ReadMsg(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				s.logf("controller: read: %v", err)
			}
			return
		}
		if err := s.dispatch(conn, env); err != nil {
			s.logf("controller: %s (seq %d): %v", env.Type, env.Seq, err)
			if werr := ctlproto.WriteMsg(conn, ctlproto.TypeError, env.Seq,
				ctlproto.Error{AckSeq: env.Seq, Reason: err.Error()}); werr != nil {
				return
			}
		}
	}
}

func (s *Server) dispatch(conn net.Conn, env *ctlproto.Envelope) error {
	switch env.Type {
	case ctlproto.TypeRegister:
		var reg ctlproto.Register
		if err := env.Decode(&reg); err != nil {
			return err
		}
		set, err := s.ctl.Register(reg)
		if err != nil {
			return err
		}
		return ctlproto.WriteMsg(conn, ctlproto.TypeRegisterAck, env.Seq,
			ctlproto.RegisterAck{
				MboxID: reg.MboxID, Set: set,
				WireToken: s.ctl.IssueWireToken(reg.MboxID),
				WireKey:   s.ctl.WireKey(),
			})

	case ctlproto.TypeDeregister:
		var msg ctlproto.Deregister
		if err := env.Decode(&msg); err != nil {
			return err
		}
		if err := s.ctl.Deregister(msg.MboxID); err != nil {
			return err
		}
		return ctlproto.WriteMsg(conn, ctlproto.TypeAck, env.Seq, ctlproto.Ack{AckSeq: env.Seq})

	case ctlproto.TypeAddPatterns:
		var msg ctlproto.AddPatterns
		if err := env.Decode(&msg); err != nil {
			return err
		}
		if err := s.ctl.AddPatterns(msg.MboxID, msg.Patterns); err != nil {
			return err
		}
		return ctlproto.WriteMsg(conn, ctlproto.TypeAck, env.Seq, ctlproto.Ack{AckSeq: env.Seq})

	case ctlproto.TypeRemovePatterns:
		var msg ctlproto.RemovePatterns
		if err := env.Decode(&msg); err != nil {
			return err
		}
		if err := s.ctl.RemovePatterns(msg.MboxID, msg.RuleIDs); err != nil {
			return err
		}
		return ctlproto.WriteMsg(conn, ctlproto.TypeAck, env.Seq, ctlproto.Ack{AckSeq: env.Seq})

	case ctlproto.TypePolicyChains:
		var msg ctlproto.PolicyChains
		if err := env.Decode(&msg); err != nil {
			return err
		}
		// The TSA reports chains; tags it supplies are advisory — the
		// controller is the tag authority (Section 4.1).
		var defs []ctlproto.ChainDef
		for _, ch := range msg.Chains {
			tag, err := s.ctl.DefineChain(ch.Members)
			if err != nil {
				return err
			}
			defs = append(defs, ctlproto.ChainDef{Tag: tag, Members: ch.Members})
		}
		return ctlproto.WriteMsg(conn, ctlproto.TypePolicyChains, env.Seq,
			ctlproto.PolicyChains{Chains: defs})

	case ctlproto.TypeInstanceHello:
		var hello ctlproto.InstanceHello
		if err := env.Decode(&hello); err != nil {
			return err
		}
		var tags []uint16
		if len(hello.Chains) > 0 {
			tags = hello.Chains
		}
		init, err := s.ctl.InstanceInitMsg(hello.InstanceID, tags, hello.Dedicated)
		if err != nil {
			return err
		}
		s.ctl.AddInstance(hello.InstanceID, tags, hello.Dedicated)
		return ctlproto.WriteMsg(conn, ctlproto.TypeInstanceInit, env.Seq, init)

	case ctlproto.TypeLease:
		var lease ctlproto.Lease
		if err := env.Decode(&lease); err != nil {
			return err
		}
		if err := s.ctl.RenewLease(lease.InstanceID); err != nil {
			return err
		}
		return ctlproto.WriteMsg(conn, ctlproto.TypeLeaseAck, env.Seq, ctlproto.LeaseAck{
			InstanceID: lease.InstanceID,
			TTLMillis:  s.ctl.LeaseTTL().Milliseconds(),
			Version:    s.ctl.Version(),
		})

	case ctlproto.TypeSession:
		var req ctlproto.Session
		if err := env.Decode(&req); err != nil {
			return err
		}
		if req.PeerID == "" {
			return errors.New("session request with empty peer ID")
		}
		return ctlproto.WriteMsg(conn, ctlproto.TypeSessionAck, env.Seq,
			ctlproto.SessionAck{PeerID: req.PeerID, WireToken: s.ctl.IssueWireToken(req.PeerID)})

	case ctlproto.TypeTelemetry:
		var tel ctlproto.Telemetry
		if err := env.Decode(&tel); err != nil {
			return err
		}
		if err := s.ctl.ReportTelemetry(tel); err != nil {
			return err
		}
		return ctlproto.WriteMsg(conn, ctlproto.TypeAck, env.Seq, ctlproto.Ack{AckSeq: env.Seq})

	default:
		return errors.New("unsupported message type " + string(env.Type))
	}
}
