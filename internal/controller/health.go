package controller

import (
	"fmt"
	"sort"
	"time"

	"dpiservice/internal/trace"
)

// This file is the controller's failure domain (Section 4 of the
// paper): because every middlebox on a chain depends on the shared DPI
// service, a dead instance is a correctness event — traffic steered
// through it is blackholed and nothing downstream scans it. The
// controller therefore tracks per-instance liveness leases, demotes
// instances through Healthy -> Suspect -> Dead as renewals are missed,
// and on death computes a failover plan re-assigning the dead
// instance's chains to surviving instances. The SDN traffic-steering
// application consumes the plan to rewrite flow rules (sdn.TSA.
// FailoverInstance); per-flow scan state on the dead instance is lost
// and re-steered flows restart their scan from the failover point —
// the paper's design makes this loss cheap (a DFA state and an offset
// per flow, Section 4.3).

// HealthState is an instance's liveness classification.
type HealthState int

// Liveness states. Ordering matters: states only advance toward Dead
// between renewals.
const (
	// Healthy: the instance renewed its lease within the TTL.
	Healthy HealthState = iota
	// Suspect: one lease TTL elapsed without renewal; the instance
	// keeps its chains but is no longer a failover target.
	Suspect
	// Dead: DeadAfter elapsed without renewal; the instance's chains
	// have been re-assigned and a late renewal is rejected.
	Dead
)

// String renders the state for snapshots and logs.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// LeaseConfig sets the liveness timings.
type LeaseConfig struct {
	// TTL is the lease duration: an instance unheard-of for TTL is
	// marked Suspect.
	TTL time.Duration
	// DeadAfter is the time since the last renewal after which a
	// Suspect instance is declared Dead and failed over. Zero defaults
	// to 2*TTL; values below TTL are raised to TTL.
	DeadAfter time.Duration
}

// DefaultLeaseConfig mirrors the daemon defaults: mark Suspect after
// 15s of silence, fail over after 30s.
var DefaultLeaseConfig = LeaseConfig{TTL: 15 * time.Second, DeadAfter: 30 * time.Second}

// normalize fills the defaulting rules in.
func (lc LeaseConfig) normalize() LeaseConfig {
	if lc.TTL <= 0 {
		lc.TTL = DefaultLeaseConfig.TTL
	}
	if lc.DeadAfter == 0 {
		lc.DeadAfter = 2 * lc.TTL
	}
	if lc.DeadAfter < lc.TTL {
		lc.DeadAfter = lc.TTL
	}
	return lc
}

// ErrLeaseExpired is returned for a renewal from an instance already
// declared Dead: its chains have been re-assigned, so the instance must
// re-hello (and be re-admitted explicitly) instead of silently resuming.
var ErrLeaseExpired = fmt.Errorf("controller: lease expired; re-hello required")

// ConfigureLeases installs the liveness timings. Call before traffic;
// existing instances keep their renewal times.
func (c *Controller) ConfigureLeases(cfg LeaseConfig) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lease = cfg.normalize()
}

// LeaseTTL reports the configured lease duration (what LeaseAck
// advertises to instances).
func (c *Controller) LeaseTTL() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lease.TTL
}

// RenewLease records a liveness signal from an instance. A Suspect
// instance recovers to Healthy; a Dead one is rejected with
// ErrLeaseExpired (its chains are gone — it must re-hello).
func (c *Controller) RenewLease(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.instances[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	if rec.health == Dead {
		return fmt.Errorf("%w (instance %s)", ErrLeaseExpired, id)
	}
	rec.lastRenewal = c.now()
	rec.health = Healthy
	c.met.leasesRenewed.Inc()
	c.healthGaugesLocked()
	return nil
}

// InstanceHealth reports an instance's current liveness state.
func (c *Controller) InstanceHealth(id string) (HealthState, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.instances[id]
	if !ok {
		return Healthy, false
	}
	return rec.health, true
}

// Failover is one computed failover plan: the dead instance and, per
// chain tag it served, the surviving instance the chain was re-assigned
// to. Tags with no surviving candidate appear in Unassigned; the
// deployment layer may spawn a backup instance for them.
type Failover struct {
	Dead       string
	Reassigned map[uint16]string
	Unassigned []uint16
}

// OnFailover registers the callback receiving every failover plan
// SweepLeases produces. The callback runs without the controller lock
// held; register it before starting the lease monitor.
func (c *Controller) OnFailover(fn func(Failover)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onFailover = fn
}

// SweepLeases advances instance health by the clock: instances silent
// for TTL become Suspect, those silent for DeadAfter become Dead and
// are failed over. It returns the failover plans of newly-dead
// instances (also delivered to the OnFailover callback). The lease
// monitor calls this periodically; tests call it directly with a fake
// clock.
func (c *Controller) SweepLeases() []Failover {
	c.mu.Lock()
	now := c.now()
	var failovers []Failover
	ids := make([]string, 0, len(c.instances))
	for id := range c.instances {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic sweep and reassignment order
	for _, id := range ids {
		rec := c.instances[id]
		silent := now.Sub(rec.lastRenewal)
		switch {
		case rec.health == Dead:
			// Stays dead until it re-hellos (AddInstance).
		case silent >= c.lease.DeadAfter:
			rec.health = Dead
			c.met.leaseExpiries.Inc()
			c.fl.Record(trace.EvLeaseDead, trace.HashString(id), uint64(silent))
			failovers = append(failovers, c.failoverLocked(rec))
		case silent >= c.lease.TTL:
			if rec.health == Healthy {
				c.met.leaseMisses.Inc()
				c.fl.Record(trace.EvLeaseSuspect, trace.HashString(id), uint64(silent))
			}
			rec.health = Suspect
		}
	}
	c.healthGaugesLocked()
	cb := c.onFailover
	c.mu.Unlock()
	if cb != nil {
		for _, f := range failovers {
			cb(f)
		}
	}
	return failovers
}

// failoverLocked computes the failover plan for a newly-dead instance:
// each chain it served moves to the Healthy non-dedicated instance
// already serving that chain where possible, else to the least-loaded
// Healthy instance, else into Unassigned. The dead instance's chain
// list is cleared. Caller holds c.mu.
func (c *Controller) failoverLocked(dead *instanceRecord) Failover {
	f := Failover{Dead: dead.id, Reassigned: make(map[uint16]string)}
	for _, tag := range dead.chains {
		target := c.failoverTargetLocked(dead.id, tag)
		if target == nil {
			f.Unassigned = append(f.Unassigned, tag)
			c.met.failoversUnresolved.Inc()
			continue
		}
		if !hasTag(target.chains, tag) {
			target.chains = append(target.chains, tag)
		}
		f.Reassigned[tag] = target.id
		c.met.chainsReassigned.Inc()
	}
	dead.chains = nil
	c.met.failovers.Inc()
	c.fl.Record(trace.EvFailover, uint64(len(f.Reassigned)), uint64(len(f.Unassigned)))
	return f
}

// failoverTargetLocked picks the surviving instance for one chain tag:
// Healthy, not dedicated (MCA² dedicated instances run the compact
// automaton for diverted heavy flows, not general service), preferring
// instances already serving the tag (their engine config already
// includes it), then the fewest chains, then lexical order.
func (c *Controller) failoverTargetLocked(deadID string, tag uint16) *instanceRecord {
	var best *instanceRecord
	bestServes := false
	ids := make([]string, 0, len(c.instances))
	for id := range c.instances {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rec := c.instances[id]
		if rec.id == deadID || rec.health != Healthy || rec.dedicated {
			continue
		}
		// An instance with an empty chain list serves every chain.
		serves := len(rec.chains) == 0 || hasTag(rec.chains, tag)
		switch {
		case best == nil,
			serves && !bestServes,
			serves == bestServes && len(rec.chains) < len(best.chains):
			best, bestServes = rec, serves
		}
	}
	return best
}

func hasTag(tags []uint16, tag uint16) bool {
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}

// healthGaugesLocked re-derives the per-state instance gauges. Caller
// holds c.mu.
func (c *Controller) healthGaugesLocked() {
	var healthy, suspect, dead int64
	for _, rec := range c.instances {
		switch rec.health {
		case Healthy:
			healthy++
		case Suspect:
			suspect++
		case Dead:
			dead++
		}
	}
	c.met.instancesHealthy.Set(healthy)
	c.met.instancesSuspect.Set(suspect)
	c.met.instancesDead.Set(dead)
}

// LeaseSummary reports the current instance count per liveness state —
// the controller's /healthz lease-health digest.
func (c *Controller) LeaseSummary() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[string]int{"healthy": 0, "suspect": 0, "dead": 0}
	for _, rec := range c.instances {
		out[rec.health.String()]++
	}
	return out
}

// StartLeaseMonitor sweeps leases every interval until the returned
// stop function is called. Failover plans reach the OnFailover
// callback.
func (c *Controller) StartLeaseMonitor(every time.Duration) (stop func()) {
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				c.SweepLeases()
			}
		}
	}()
	return func() {
		close(done)
		<-stopped
	}
}
