package controller

import (
	"sort"
	"testing"

	"dpiservice/internal/ctlproto"
)

func TestControllerMetrics(t *testing.T) {
	c := New()
	if _, err := c.Register(ctlproto.Register{MboxID: "ids-1", Type: "ids"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctlproto.Register{MboxID: "av-1", Type: "av"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPatterns("ids-1", []ctlproto.PatternDef{
		{RuleID: 1, Content: []byte("attack")},
		{RuleID: 2, Content: []byte("evil")},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefineChain([]string{"ids-1", "av-1"}); err != nil {
		t.Fatal(err)
	}
	c.AddInstance("dpi-1", nil, false)
	c.AddInstance("dpi-2", nil, true)
	c.RemoveInstance("dpi-2")
	if err := c.ReportTelemetry(ctlproto.Telemetry{InstanceID: "dpi-1", Packets: 5}); err != nil {
		t.Fatal(err)
	}

	s := c.Metrics().Snapshot()
	for name, want := range map[string]uint64{
		"controller.registrations":     2,
		"controller.patterns_added":    2,
		"controller.chains_defined":    1,
		"controller.instances_added":   2,
		"controller.instances_removed": 1,
		"controller.telemetry_reports": 1,
	} {
		if got, ok := s.Counter(name); !ok || got != want {
			t.Errorf("%s = %d (present=%v), want %d", name, got, ok, want)
		}
	}
	for name, want := range map[string]int64{
		"controller.mboxes":          2,
		"controller.global_patterns": 2,
		"controller.chains":          1,
		"controller.instances":       1,
	} {
		if got, ok := s.Gauge(name); !ok || got != want {
			t.Errorf("%s = %d (present=%v), want %d", name, got, ok, want)
		}
	}
	if got, _ := s.Counter("controller.config_changes"); got != uint64(c.Version()) {
		t.Errorf("controller.config_changes = %d, want version %d", got, c.Version())
	}
}

func TestTelemetrySnapshotsSorted(t *testing.T) {
	c := New()
	// Insert in non-sorted order; map iteration would scramble further.
	for _, id := range []string{"dpi-9", "dpi-1", "dpi-5", "dpi-3"} {
		c.AddInstance(id, []uint16{1}, id == "dpi-5")
	}
	if err := c.ReportTelemetry(ctlproto.Telemetry{InstanceID: "dpi-3", Packets: 7}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		snaps := c.TelemetrySnapshots()
		ids := make([]string, len(snaps))
		for j, s := range snaps {
			ids[j] = s.ID
		}
		if !sort.StringsAreSorted(ids) {
			t.Fatalf("iteration %d: snapshots not sorted: %v", i, ids)
		}
		if len(snaps) != 4 {
			t.Fatalf("got %d snapshots, want 4", len(snaps))
		}
		for _, s := range snaps {
			switch s.ID {
			case "dpi-3":
				if !s.HasTelemetry || s.Telemetry.Packets != 7 {
					t.Fatalf("dpi-3 telemetry = %+v", s)
				}
			case "dpi-5":
				if !s.Dedicated {
					t.Fatal("dpi-5 should be dedicated")
				}
			default:
				if s.HasTelemetry {
					t.Fatalf("%s unexpectedly has telemetry", s.ID)
				}
			}
		}
	}
}
