package controller

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"dpiservice/internal/core"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/packet"
)

func startServer(t *testing.T) (*Controller, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctl := New()
	srv := Serve(ctl, ln, t.Logf)
	t.Cleanup(func() { srv.Close() })
	return ctl, srv
}

func dial(t *testing.T, srv *Server) *Client {
	t.Helper()
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl.SetRetryPolicy(RetryPolicy{Attempts: 2, Base: time.Millisecond, Max: 5 * time.Millisecond})
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestServerFullLifecycle(t *testing.T) {
	ctl, srv := startServer(t)

	// Middleboxes register and push patterns over the wire.
	ids := dial(t, srv)
	set, err := ids.Register(context.Background(), ctlproto.Register{MboxID: "ids-1", Type: "ids", Stateful: true, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ids.AddPatterns(context.Background(), "ids-1", []ctlproto.PatternDef{
		{RuleID: 0, Content: []byte("attack-sig")},
		{RuleID: 1, Regex: `regular\s*expression\s*\d+`},
	}); err != nil {
		t.Fatal(err)
	}

	av := dial(t, srv)
	set2, err := av.Register(context.Background(), ctlproto.Register{MboxID: "av-1", Type: "av"})
	if err != nil {
		t.Fatal(err)
	}
	if set == set2 {
		t.Error("distinct types share a set")
	}
	if err := av.AddPatterns(context.Background(), "av-1", []ctlproto.PatternDef{{RuleID: 0, Content: []byte("malware-body")}}); err != nil {
		t.Fatal(err)
	}

	// The TSA reports a policy chain.
	tsa := dial(t, srv)
	defs, err := tsa.ReportChains(context.Background(), [][]string{{"ids-1", "av-1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 1 || defs[0].Tag == 0 {
		t.Fatalf("chain defs = %+v", defs)
	}
	tag := defs[0].Tag

	// A DPI instance boots, fetches its init, and builds an engine.
	inst := dial(t, srv)
	init, err := inst.InstanceHello(context.Background(), "dpi-1", nil, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ConfigFromInit(init)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tuple := packet.FiveTuple{Protocol: packet.IPProtoTCP}
	rep, err := engine.Inspect(tag, tuple, []byte("attack-sig regular expression 7 malware-body"))
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.NumMatches() != 3 {
		t.Fatalf("report = %+v, want 3 matches", rep)
	}

	// The instance exports telemetry; the controller records it.
	if err := inst.SendTelemetry(context.Background(), ctlproto.Telemetry{InstanceID: "dpi-1", Packets: 1}); err != nil {
		t.Fatal(err)
	}
	tel, ok := ctl.InstanceTelemetry("dpi-1")
	if !ok || tel.Packets != 1 {
		t.Errorf("telemetry = %+v, %v", tel, ok)
	}
}

func TestServerDeregister(t *testing.T) {
	ctl, srv := startServer(t)
	cl := dial(t, srv)
	if _, err := cl.Register(context.Background(), ctlproto.Register{MboxID: "m1", Type: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddPatterns(context.Background(), "m1", []ctlproto.PatternDef{{RuleID: 0, Content: []byte("solo-pattern")}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Deregister(context.Background(), "m1"); err != nil {
		t.Fatal(err)
	}
	if got := ctl.GlobalPatternCount(); got != 0 {
		t.Errorf("patterns survive deregister: %d", got)
	}
	if err := cl.Deregister(context.Background(), "m1"); err == nil {
		t.Error("double deregister accepted")
	}
	// The ID is reusable.
	if _, err := cl.Register(context.Background(), ctlproto.Register{MboxID: "m1", Type: "t"}); err != nil {
		t.Errorf("re-register after deregister: %v", err)
	}
}

func TestServerErrorReplies(t *testing.T) {
	_, srv := startServer(t)
	cl := dial(t, srv)

	// Pattern push for an unregistered middlebox yields a protocol
	// error, and the connection remains usable afterwards.
	err := cl.AddPatterns(context.Background(), "ghost", []ctlproto.PatternDef{{RuleID: 0, Content: []byte("x")}})
	if err == nil || !strings.Contains(err.Error(), "unknown middlebox") {
		t.Fatalf("err = %v", err)
	}
	if _, err := cl.Register(context.Background(), ctlproto.Register{MboxID: "m", Type: "t"}); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestServerRejectsUnsupportedType(t *testing.T) {
	_, srv := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := ctlproto.WriteMsg(conn, ctlproto.MsgType("bogus"), 1, struct{}{}); err != nil {
		t.Fatal(err)
	}
	env, err := ctlproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != ctlproto.TypeError {
		t.Errorf("reply = %s, want error", env.Type)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	_, srv := startServer(t)
	cl := dial(t, srv)
	if _, err := cl.Register(context.Background(), ctlproto.Register{MboxID: "m", Type: "t"}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := cl.Register(context.Background(), ctlproto.Register{MboxID: "m2", Type: "t"}); err == nil {
		t.Error("request succeeded after server close")
	}
}
