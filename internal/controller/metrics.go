package controller

import (
	"sort"

	"dpiservice/internal/ctlproto"
	"dpiservice/internal/obs"
)

// ctlMetrics caches the controller's obs instruments. All updates
// happen under the controller mutex, so plain cached pointers suffice;
// the gauges mirror the sizes of the guarded maps after each mutation.
type ctlMetrics struct {
	reg *obs.Registry

	registrations    *obs.Counter
	deregistrations  *obs.Counter
	patternsAdded    *obs.Counter
	patternsRemoved  *obs.Counter
	chainsDefined    *obs.Counter
	telemetryReports *obs.Counter
	instancesAdded   *obs.Counter
	instancesRemoved *obs.Counter
	configChanges    *obs.Counter

	leasesRenewed       *obs.Counter
	leaseMisses         *obs.Counter
	leaseExpiries       *obs.Counter
	failovers           *obs.Counter
	chainsReassigned    *obs.Counter
	failoversUnresolved *obs.Counter

	mboxes         *obs.Gauge
	globalPatterns *obs.Gauge
	chains         *obs.Gauge
	instances      *obs.Gauge

	instancesHealthy *obs.Gauge
	instancesSuspect *obs.Gauge
	instancesDead    *obs.Gauge
}

func newCtlMetrics(reg *obs.Registry) *ctlMetrics {
	return &ctlMetrics{
		reg:              reg,
		registrations:    reg.Counter("controller.registrations"),
		deregistrations:  reg.Counter("controller.deregistrations"),
		patternsAdded:    reg.Counter("controller.patterns_added"),
		patternsRemoved:  reg.Counter("controller.patterns_removed"),
		chainsDefined:    reg.Counter("controller.chains_defined"),
		telemetryReports: reg.Counter("controller.telemetry_reports"),
		instancesAdded:   reg.Counter("controller.instances_added"),
		instancesRemoved: reg.Counter("controller.instances_removed"),
		configChanges:    reg.Counter("controller.config_changes"),

		leasesRenewed:       reg.Counter("controller.leases_renewed"),
		leaseMisses:         reg.Counter("controller.lease_misses"),
		leaseExpiries:       reg.Counter("controller.lease_expiries"),
		failovers:           reg.Counter("controller.failovers"),
		chainsReassigned:    reg.Counter("controller.chains_reassigned"),
		failoversUnresolved: reg.Counter("controller.failovers_unresolved"),

		mboxes:         reg.Gauge("controller.mboxes"),
		globalPatterns: reg.Gauge("controller.global_patterns"),
		chains:         reg.Gauge("controller.chains"),
		instances:      reg.Gauge("controller.instances"),

		instancesHealthy: reg.Gauge("controller.instances_healthy"),
		instancesSuspect: reg.Gauge("controller.instances_suspect"),
		instancesDead:    reg.Gauge("controller.instances_dead"),
	}
}

// Metrics returns the controller's metrics registry.
func (c *Controller) Metrics() *obs.Registry { return c.met.reg }

// bumpLocked advances the configuration version and counts the change.
// Caller holds c.mu.
func (c *Controller) bumpLocked() {
	c.version++
	c.met.configChanges.Inc()
}

// InstanceSnapshot is one DPI service instance's control-plane state:
// identity, served chains, and the latest load report.
type InstanceSnapshot struct {
	ID           string             `json:"id"`
	Chains       []uint16           `json:"chains,omitempty"`
	Dedicated    bool               `json:"dedicated,omitempty"`
	Health       string             `json:"health"`
	HasTelemetry bool               `json:"has_telemetry"`
	Telemetry    ctlproto.Telemetry `json:"telemetry"`
}

// TelemetrySnapshots returns a deterministic, ID-sorted snapshot of
// every known instance taken under one lock acquisition — the view
// MCA² evaluation and the dpictl /instances endpoint consume. Unlike
// ranging the instance map, repeated calls with unchanged state return
// identical slices.
func (c *Controller) TelemetrySnapshots() []InstanceSnapshot {
	c.mu.Lock()
	out := make([]InstanceSnapshot, 0, len(c.instances))
	for _, rec := range c.instances {
		out = append(out, InstanceSnapshot{
			ID:           rec.id,
			Chains:       append([]uint16(nil), rec.chains...),
			Dedicated:    rec.dedicated,
			Health:       rec.health.String(),
			HasTelemetry: rec.hasTel,
			Telemetry:    rec.telemetry,
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
