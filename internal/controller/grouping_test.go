package controller

import (
	"errors"
	"reflect"
	"testing"

	"dpiservice/internal/core"
)

// groupFixture registers k middlebox types m0..m(k-1) and returns a
// helper that defines a chain over the named types.
func groupFixture(t *testing.T, k int) (*Controller, func(types ...string) uint16) {
	t.Helper()
	c := New()
	for i := 0; i < k; i++ {
		id := "m" + string(rune('0'+i))
		if _, err := c.Register(reg(id, id)); err != nil {
			t.Fatal(err)
		}
		if err := c.AddPatterns(id, pats([]int{0}, []string{"pattern-of-" + id})); err != nil {
			t.Fatal(err)
		}
	}
	return c, func(types ...string) uint16 {
		tag, err := c.DefineChain(types)
		if err != nil {
			t.Fatal(err)
		}
		return tag
	}
}

func TestGroupChainsSimilarChainsShareGroup(t *testing.T) {
	c, chain := groupFixture(t, 4)
	t1 := chain("m0", "m1")
	t2 := chain("m1", "m0") // same sets, different order
	t3 := chain("m2", "m3")

	groups, err := c.GroupChains(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %+v, want 2", groups)
	}
	find := func(tag uint16) int {
		for i, g := range groups {
			for _, gt := range g.Tags {
				if gt == tag {
					return i
				}
			}
		}
		return -1
	}
	if find(t1) != find(t2) {
		t.Errorf("identical-set chains split across groups: %+v", groups)
	}
	if find(t1) == find(t3) {
		t.Errorf("disjoint chains share a group under a tight bound: %+v", groups)
	}
	// Each group's set count respects the bound.
	for _, g := range groups {
		if len(g.Sets) > 2 {
			t.Errorf("group %+v exceeds bound", g)
		}
	}
}

func TestGroupChainsSingleGroupWhenUnbounded(t *testing.T) {
	c, chain := groupFixture(t, 3)
	chain("m0")
	chain("m1", "m2")
	groups, err := c.GroupChains(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("groups = %+v", groups)
	}
	if !reflect.DeepEqual(groups[0].Sets, []int{0, 1, 2}) {
		t.Errorf("sets = %v", groups[0].Sets)
	}
}

func TestGroupChainsBoundViolations(t *testing.T) {
	c, chain := groupFixture(t, 3)
	chain("m0", "m1", "m2")
	if _, err := c.GroupChains(2); !errors.Is(err, ErrGroupBound) {
		t.Errorf("err = %v, want ErrGroupBound", err)
	}
}

func TestGroupChainsEmpty(t *testing.T) {
	c := New()
	groups, err := c.GroupChains(4)
	if err != nil || len(groups) != 0 {
		t.Errorf("groups = %+v, err = %v", groups, err)
	}
	groups, err = c.GroupChains(0)
	if err != nil || len(groups) != 0 {
		t.Errorf("unbounded: groups = %+v, err = %v", groups, err)
	}
}

// TestGroupedInstancesCoverAllChains closes the loop: every group's
// instance config builds, and together the groups cover every chain
// exactly once.
func TestGroupedInstancesCoverAllChains(t *testing.T) {
	c, chain := groupFixture(t, 6)
	tags := []uint16{
		chain("m0", "m1"),
		chain("m1", "m2"),
		chain("m3"),
		chain("m4", "m5"),
		chain("m5"),
	}
	groups, err := c.GroupChains(3)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[uint16]int{}
	for _, g := range groups {
		cfg, err := c.InstanceConfig(g.Tags, false)
		if err != nil {
			t.Fatalf("group %+v config: %v", g, err)
		}
		if _, err := core.NewEngine(cfg); err != nil {
			t.Fatalf("group %+v engine: %v", g, err)
		}
		if len(cfg.Profiles) > 3 {
			t.Errorf("group %+v merged %d sets, bound 3", g, len(cfg.Profiles))
		}
		for _, tag := range g.Tags {
			covered[tag]++
		}
	}
	for _, tag := range tags {
		if covered[tag] != 1 {
			t.Errorf("chain %d covered %d times", tag, covered[tag])
		}
	}
}
