package controller

import (
	"bytes"
	"context"
	"testing"

	"dpiservice/internal/ctlproto"
	"dpiservice/internal/wire"
)

func TestWireTokenIssuance(t *testing.T) {
	c := New()
	key := c.WireKey()
	if key == 0 {
		t.Fatal("cluster key is zero")
	}
	tok := c.IssueWireToken("mbox-1")
	if !wire.ValidToken(key, tok) {
		t.Fatalf("issued token %#x fails validation", tok)
	}
	if again := c.IssueWireToken("mbox-1"); again != tok {
		t.Fatalf("token not stable: %#x then %#x", tok, again)
	}
	tok2 := c.IssueWireToken("mbox-2")
	if tok2 == tok || wire.TokenID(tok2) == wire.TokenID(tok) {
		t.Fatalf("distinct peers share a session id: %#x %#x", tok, tok2)
	}
}

func TestWireKeyPersists(t *testing.T) {
	c := New()
	if _, err := c.Register(ctlproto.Register{MboxID: "ids-1", Type: "ids"}); err != nil {
		t.Fatal(err)
	}
	key := c.WireKey()
	tok := c.IssueWireToken("ids-1")

	var buf bytes.Buffer
	if err := c.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := New()
	if err := c2.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if c2.WireKey() != key {
		t.Fatalf("restored key %#x, want %#x", c2.WireKey(), key)
	}
	if got := c2.IssueWireToken("ids-1"); got != tok {
		t.Fatalf("restored token %#x, want %#x", got, tok)
	}
	// New peers after restore must not collide with persisted ids.
	fresh := c2.IssueWireToken("ids-2")
	if wire.TokenID(fresh) == wire.TokenID(tok) {
		t.Fatalf("session id reused after restore: %#x", fresh)
	}
}

func TestServerIssuesWireCredentials(t *testing.T) {
	ctl, srv := startServer(t)
	cl := dial(t, srv)

	ack, err := cl.RegisterFull(context.Background(), ctlproto.Register{MboxID: "ids-1", Type: "ids"})
	if err != nil {
		t.Fatal(err)
	}
	if ack.WireKey != ctl.WireKey() {
		t.Fatalf("ack key %#x, want %#x", ack.WireKey, ctl.WireKey())
	}
	if !wire.ValidToken(ack.WireKey, ack.WireToken) {
		t.Fatalf("ack token %#x invalid under key", ack.WireToken)
	}

	tok, err := cl.NewSession(context.Background(), "trafficgen-0")
	if err != nil {
		t.Fatal(err)
	}
	if !wire.ValidToken(ctl.WireKey(), tok) {
		t.Fatalf("session token %#x invalid", tok)
	}
	if again, err := cl.NewSession(context.Background(), "trafficgen-0"); err != nil || again != tok {
		t.Fatalf("session token not stable: %#x/%v then %#x", tok, err, again)
	}
	if _, err := cl.NewSession(context.Background(), ""); err == nil {
		t.Fatal("empty peer ID accepted")
	}

	// Instance init carries the key and the instance's own token.
	init, err := ctl.InstanceInitMsg("dpi-1", nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if init.WireKey != ctl.WireKey() || !wire.ValidToken(init.WireKey, init.WireToken) {
		t.Fatalf("instance init credentials: key %#x token %#x", init.WireKey, init.WireToken)
	}
}
