package controller

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"dpiservice/internal/core"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/packet"
)

// populatedController builds a controller with two middleboxes (one
// regex rule, one binary pattern, one shared pattern) and a chain.
func populatedController(t *testing.T) (*Controller, uint16) {
	t.Helper()
	c := New()
	if _, err := c.Register(ctlproto.Register{MboxID: "ids-1", Type: "ids", Stateful: true, ReadOnly: true, StopAfter: 4096}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(reg("av-1", "av")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPatterns("ids-1", []ctlproto.PatternDef{
		{RuleID: 0, Content: []byte("attack-sig")},
		{RuleID: 1, Content: []byte{0x00, 0xff, 0x13, 0x37, 0xde, 0xad}},
		{RuleID: 2, Regex: `evil\d+marker`},
		{RuleID: 3, Content: []byte("shared-bytes")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPatterns("av-1", []ctlproto.PatternDef{
		{RuleID: 0, Content: []byte("shared-bytes")},
	}); err != nil {
		t.Fatal(err)
	}
	tag, err := c.DefineChain([]string{"ids-1", "av-1"})
	if err != nil {
		t.Fatal(err)
	}
	c.AddInstance("dpi-1", []uint16{tag}, false)
	c.AddInstance("ded-1", nil, true)
	return c, tag
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, tag := populatedController(t)
	var buf bytes.Buffer
	if err := orig.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	restored := New()
	if err := restored.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Identical instance configurations (the operational essence).
	cfgA, err := orig.InstanceConfig(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	cfgB, err := restored.InstanceConfig(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfgA, cfgB) {
		t.Errorf("configs differ:\n%+v\n%+v", cfgA, cfgB)
	}
	// Engines behave identically on binary payloads.
	eA, err := core.NewEngine(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	eB, err := core.NewEngine(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("attack-sig \x00\xff\x13\x37\xde\xad evil42marker shared-bytes")
	tuple := packet.FiveTuple{Protocol: packet.IPProtoTCP}
	rA, err := eA.Inspect(tag, tuple, payload)
	if err != nil {
		t.Fatal(err)
	}
	rB, err := eB.Inspect(tag, tuple, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rA, rB) {
		t.Errorf("reports differ: %+v vs %+v", rA, rB)
	}
	// Global refcounting survived: shared pattern counted once.
	if orig.GlobalPatternCount() != restored.GlobalPatternCount() {
		t.Errorf("global patterns %d vs %d", orig.GlobalPatternCount(), restored.GlobalPatternCount())
	}
	// Tag allocation continues where it left off.
	t2a, err := orig.DefineChain([]string{"av-1"})
	if err != nil {
		t.Fatal(err)
	}
	t2b, err := restored.DefineChain([]string{"av-1"})
	if err != nil {
		t.Fatal(err)
	}
	if t2a != t2b {
		t.Errorf("next tag diverged: %d vs %d", t2a, t2b)
	}
	// Instances restored.
	if got := restored.Instances(true); !reflect.DeepEqual(got, []string{"ded-1"}) {
		t.Errorf("dedicated instances = %v", got)
	}
	// Refcount semantics still hold post-restore.
	if err := restored.RemovePatterns("ids-1", []int{3}); err != nil {
		t.Fatal(err)
	}
	cfg, err := restored.InstanceConfig(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	// av's copy of shared-bytes must survive.
	found := false
	for _, p := range cfg.Profiles {
		if p.Name == "av" && len(p.Patterns.Patterns) == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("shared pattern lost after restore+remove: %+v", cfg.Profiles)
	}
}

func TestLoadStateRejections(t *testing.T) {
	orig, _ := populatedController(t)
	var buf bytes.Buffer
	if err := orig.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// Non-empty target.
	if err := orig.LoadState(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("err = %v, want ErrNotEmpty", err)
	}
	// Bad JSON.
	if err := New().LoadState(strings.NewReader("{nope")); !errors.Is(err, ErrBadStateFile) {
		t.Errorf("bad json err = %v", err)
	}
	// Wrong version.
	if err := New().LoadState(strings.NewReader(`{"version": 99}`)); !errors.Is(err, ErrBadStateFile) {
		t.Errorf("bad version err = %v", err)
	}
	// Chain referencing an unknown middlebox.
	bad := strings.Replace(buf.String(), `"ids-1"`, `"ghost"`, 1)
	if err := New().LoadState(strings.NewReader(bad)); err == nil {
		t.Error("corrupted state accepted")
	}
}
