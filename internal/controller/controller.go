// Package controller implements the logically-centralized DPI controller
// (Section 4.1 of the paper). It registers middleboxes, maintains the
// global pattern set with internal IDs and per-middlebox reference
// counts, receives policy chains from the traffic steering application
// and assigns them tags, derives initialization configurations for DPI
// service instances (optionally grouped by chain, Section 4.3), and
// collects instance telemetry for the MCA²-style stress monitor
// (Section 4.3.1).
package controller

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dpiservice/internal/core"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/mpm"
	"dpiservice/internal/obs"
	"dpiservice/internal/patterns"
	"dpiservice/internal/trace"
	"dpiservice/internal/wire"
)

// Errors returned by the controller.
var (
	ErrUnknownMbox     = errors.New("controller: unknown middlebox")
	ErrDuplicateMbox   = errors.New("controller: middlebox already registered")
	ErrRuleConflict    = errors.New("controller: rule ID conflicts within pattern set")
	ErrUnknownChain    = errors.New("controller: unknown policy chain")
	ErrTooManySets     = errors.New("controller: pattern-set identifiers exhausted")
	ErrUnknownInstance = errors.New("controller: unknown instance")
)

// Controller is the control-plane brain of the DPI service.
type Controller struct {
	mu sync.Mutex

	mboxes  map[string]*mboxRecord
	sets    map[string]*setRecord // keyed by middlebox type
	nextSet int

	global map[string]*globalPattern // exact-pattern dedup across all sets

	chains  map[uint16][]string
	nextTag uint16

	instances map[string]*instanceRecord

	// wireKey is the cluster key under which wire-transport session
	// tokens are minted (generated at construction, persisted with the
	// state so tokens survive a controller restart). wireIDs maps each
	// peer to its stable 32-bit session id.
	wireKey    uint64
	wireIDs    map[string]uint32
	nextWireID uint32

	version uint64 // bumped on any change affecting instance configs

	// lease holds the liveness configuration (ConfigureLeases).
	lease LeaseConfig
	// onFailover, when set, receives every failover event computed by
	// SweepLeases; invoked without c.mu held.
	onFailover func(Failover)

	// now is the controller's clock, injectable for deterministic
	// health tests. Fixed at construction (tests overwrite it before
	// concurrent use).
	now func() time.Time

	// met caches the obs instruments (set once in New/NewWithMetrics).
	met *ctlMetrics

	// fl is the optional flight recorder: lease transitions and
	// failovers are recorded for post-mortem dumps. Set via SetFlight
	// before the lease monitor starts.
	fl *trace.Flight
}

// SetFlight attaches a flight recorder so lease transitions (Suspect,
// Dead) and failover plans are captured for post-mortem dumps. Call
// before StartLeaseMonitor; nil disables recording.
func (c *Controller) SetFlight(f *trace.Flight) {
	c.mu.Lock()
	c.fl = f
	c.mu.Unlock()
}

type mboxRecord struct {
	reg ctlproto.Register
	set *setRecord
}

type setRecord struct {
	index    int
	mboxType string
	// rules maps rule ID -> definition; all middleboxes of the type
	// share it. refs counts the middleboxes referencing each rule.
	rules map[int]ruleEntry
}

type ruleEntry struct {
	content string // exact bytes, or
	regex   string // regular expression (exactly one is set)
	refs    map[string]bool
}

type globalPattern struct {
	internalID int
	// refs: mboxID -> rule IDs referencing this content.
	refs map[string]map[int]bool
}

type instanceRecord struct {
	id        string
	chains    []uint16
	dedicated bool
	telemetry ctlproto.Telemetry
	hasTel    bool

	// Liveness (see health.go). lastRenewal is the clock reading of the
	// most recent lease renewal (or AddInstance); health advances
	// Healthy -> Suspect -> Dead as renewals are missed.
	lastRenewal time.Time
	health      HealthState
}

// New returns an empty controller with a private metrics registry.
func New() *Controller { return NewWithMetrics(nil) }

// NewWithMetrics returns an empty controller publishing its
// instruments into reg (nil selects a private registry, reachable via
// Metrics).
func NewWithMetrics(reg *obs.Registry) *Controller {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Controller{
		mboxes:     make(map[string]*mboxRecord),
		sets:       make(map[string]*setRecord),
		global:     make(map[string]*globalPattern),
		chains:     make(map[uint16][]string),
		nextTag:    1,
		instances:  make(map[string]*instanceRecord),
		wireKey:    wire.NewClusterKey(),
		wireIDs:    make(map[string]uint32),
		nextWireID: 1,
		lease:      DefaultLeaseConfig,
		now:        time.Now,
		met:        newCtlMetrics(reg),
	}
}

// Register adds a middlebox. Middleboxes of the same type — or one
// inheriting from an already-registered middlebox — share a pattern set
// (Section 4.1). It returns the assigned pattern-set index.
func (c *Controller) Register(reg ctlproto.Register) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if reg.MboxID == "" {
		return 0, fmt.Errorf("%w: empty middlebox ID", ErrUnknownMbox)
	}
	if prev, dup := c.mboxes[reg.MboxID]; dup {
		// Re-registering with an identical body is idempotent: a client
		// retrying after a lost ack gets the original answer back.
		// Diverging bodies are still a conflict.
		if prev.reg == reg {
			return prev.set.index, nil
		}
		return 0, fmt.Errorf("%w: %s", ErrDuplicateMbox, reg.MboxID)
	}
	typ := reg.Type
	if reg.InheritFrom != "" {
		parent, ok := c.mboxes[reg.InheritFrom]
		if !ok {
			return 0, fmt.Errorf("%w: inherit from %s", ErrUnknownMbox, reg.InheritFrom)
		}
		typ = parent.set.mboxType
	}
	if typ == "" {
		typ = reg.MboxID // untyped middleboxes get a private set
	}
	set, ok := c.sets[typ]
	if !ok {
		if c.nextSet >= mpm.MaxSets {
			return 0, ErrTooManySets
		}
		set = &setRecord{index: c.nextSet, mboxType: typ, rules: make(map[int]ruleEntry)}
		c.nextSet++
		c.sets[typ] = set
	}
	c.mboxes[reg.MboxID] = &mboxRecord{reg: reg, set: set}
	c.met.registrations.Inc()
	c.met.mboxes.Set(int64(len(c.mboxes)))
	c.bumpLocked()
	return set.index, nil
}

// Deregister removes a middlebox and drops its pattern references.
func (c *Controller) Deregister(mboxID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.mboxes[mboxID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownMbox, mboxID)
	}
	ids := make([]int, 0, len(rec.set.rules))
	for id, r := range rec.set.rules {
		if r.refs[mboxID] {
			ids = append(ids, id)
		}
	}
	c.removeLocked(rec, ids)
	delete(c.mboxes, mboxID)
	c.met.deregistrations.Inc()
	c.met.mboxes.Set(int64(len(c.mboxes)))
	c.met.globalPatterns.Set(int64(len(c.global)))
	c.bumpLocked()
	return nil
}

// AddPatterns registers patterns for a middlebox. A pattern already
// registered by another middlebox is tracked under the same internal ID
// with an additional reference (Section 4.1). A rule ID already present
// in the set with different content is a conflict.
func (c *Controller) AddPatterns(mboxID string, defs []ctlproto.PatternDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.mboxes[mboxID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownMbox, mboxID)
	}
	// Validate first so the update is all-or-nothing.
	for _, d := range defs {
		if d.RuleID < 0 || d.RuleID >= core.RegexReportBase {
			return fmt.Errorf("%w: rule ID %d out of range", ErrRuleConflict, d.RuleID)
		}
		if (len(d.Content) == 0) == (d.Regex == "") {
			return fmt.Errorf("%w: rule %d must carry exactly one of content or regex",
				ErrRuleConflict, d.RuleID)
		}
		if existing, ok := rec.set.rules[d.RuleID]; ok {
			if existing.content != string(d.Content) || existing.regex != d.Regex {
				return fmt.Errorf("%w: rule %d redefined with different body", ErrRuleConflict, d.RuleID)
			}
		}
	}
	for _, d := range defs {
		entry, ok := rec.set.rules[d.RuleID]
		if !ok {
			entry = ruleEntry{content: string(d.Content), regex: d.Regex, refs: make(map[string]bool)}
		}
		entry.refs[mboxID] = true
		rec.set.rules[d.RuleID] = entry
		if len(d.Content) > 0 {
			c.refGlobal(string(d.Content), mboxID, d.RuleID)
		}
	}
	c.met.patternsAdded.Add(uint64(len(defs)))
	c.met.globalPatterns.Set(int64(len(c.global)))
	c.bumpLocked()
	return nil
}

// RemovePatterns drops a middlebox's references to the given rule IDs.
// A rule (and its global pattern) survives while any other middlebox
// still references it.
func (c *Controller) RemovePatterns(mboxID string, ruleIDs []int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.mboxes[mboxID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownMbox, mboxID)
	}
	c.removeLocked(rec, ruleIDs)
	c.met.patternsRemoved.Add(uint64(len(ruleIDs)))
	c.met.globalPatterns.Set(int64(len(c.global)))
	c.bumpLocked()
	return nil
}

func (c *Controller) removeLocked(rec *mboxRecord, ruleIDs []int) {
	for _, id := range ruleIDs {
		entry, ok := rec.set.rules[id]
		if !ok || !entry.refs[rec.reg.MboxID] {
			continue
		}
		delete(entry.refs, rec.reg.MboxID)
		if entry.content != "" {
			c.unrefGlobal(entry.content, rec.reg.MboxID, id)
		}
		if len(entry.refs) == 0 {
			delete(rec.set.rules, id)
		}
	}
}

func (c *Controller) refGlobal(content, mboxID string, ruleID int) {
	gp, ok := c.global[content]
	if !ok {
		gp = &globalPattern{internalID: len(c.global), refs: make(map[string]map[int]bool)}
		c.global[content] = gp
	}
	if gp.refs[mboxID] == nil {
		gp.refs[mboxID] = make(map[int]bool)
	}
	gp.refs[mboxID][ruleID] = true
}

func (c *Controller) unrefGlobal(content, mboxID string, ruleID int) {
	gp, ok := c.global[content]
	if !ok {
		return
	}
	if rules := gp.refs[mboxID]; rules != nil {
		delete(rules, ruleID)
		if len(rules) == 0 {
			delete(gp.refs, mboxID)
		}
	}
	if len(gp.refs) == 0 {
		delete(c.global, content)
	}
}

// GlobalPatternCount reports the number of distinct exact patterns known
// across all middleboxes.
func (c *Controller) GlobalPatternCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.global)
}

// DefineChain records a policy chain received from the TSA and assigns
// it a tag (Section 4.1). Members must be registered middlebox IDs; the
// order is the traversal order.
func (c *Controller) DefineChain(members []string) (uint16, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range members {
		if _, ok := c.mboxes[m]; !ok {
			return 0, fmt.Errorf("%w: chain member %s", ErrUnknownMbox, m)
		}
	}
	tag := c.nextTag
	c.nextTag++
	c.chains[tag] = append([]string(nil), members...)
	c.met.chainsDefined.Inc()
	c.met.chains.Set(int64(len(c.chains)))
	c.bumpLocked()
	return tag, nil
}

// Chain returns the member middlebox IDs of a chain tag.
func (c *Controller) Chain(tag uint16) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.chains[tag]
	if !ok {
		return nil, fmt.Errorf("%w: tag %d", ErrUnknownChain, tag)
	}
	return append([]string(nil), m...), nil
}

// ChainTags returns all defined chain tags in ascending order.
func (c *Controller) ChainTags() []uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	tags := make([]uint16, 0, len(c.chains))
	for t := range c.chains {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags
}

// Version reports the configuration version, bumped on every change
// that affects instance configurations.
func (c *Controller) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// WireKey reports the cluster key under which wire-transport session
// tokens are minted. Wire servers (DPI instances, verdict consumers)
// receive it over the control channel and validate tokens locally.
func (c *Controller) WireKey() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wireKey
}

// IssueWireToken mints (or returns the previously-minted) wire session
// token for the named peer. Tokens are stable per peer ID, so retried
// registrations and restarted daemons get the same token back.
func (c *Controller) IssueWireToken(peerID string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wireTokenLocked(peerID)
}

func (c *Controller) wireTokenLocked(peerID string) uint64 {
	sid, ok := c.wireIDs[peerID]
	if !ok {
		sid = c.nextWireID
		c.nextWireID++
		c.wireIDs[peerID] = sid
	}
	return wire.IssueToken(c.wireKey, sid)
}

// InstanceConfig derives the engine configuration for a DPI service
// instance serving the given chain tags — the deployment-grouping
// mechanism of Section 4.3 (nil means all chains). Only middleboxes
// appearing on the served chains are included.
func (c *Controller) InstanceConfig(tags []uint16, compact bool) (core.Config, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tags == nil {
		tags = make([]uint16, 0, len(c.chains))
		for t := range c.chains {
			tags = append(tags, t)
		}
		sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	}
	cfg := core.Config{Chains: make(map[uint16][]int, len(tags))}
	if compact {
		cfg.Kind = core.AutoCompact
	}
	included := make(map[int]bool)
	for _, tag := range tags {
		members, ok := c.chains[tag]
		if !ok {
			return core.Config{}, fmt.Errorf("%w: tag %d", ErrUnknownChain, tag)
		}
		var ids []int
		seen := make(map[int]bool)
		for _, m := range members {
			rec := c.mboxes[m]
			if rec == nil {
				return core.Config{}, fmt.Errorf("%w: %s", ErrUnknownMbox, m)
			}
			idx := rec.set.index
			// A chain may list two middleboxes of one type; the
			// engine scans their shared set once.
			if !seen[idx] {
				seen[idx] = true
				ids = append(ids, idx)
			}
			if !included[idx] {
				included[idx] = true
				cfg.Profiles = append(cfg.Profiles, c.profileLocked(rec.set))
			}
		}
		cfg.Chains[tag] = ids
	}
	sort.Slice(cfg.Profiles, func(i, j int) bool { return cfg.Profiles[i].ID < cfg.Profiles[j].ID })
	return cfg, nil
}

// profileLocked assembles the engine profile of one pattern set,
// combining the properties of all middleboxes sharing it: the set is
// stateful if any member is, and its stopping condition is the deepest
// among members (0/unlimited dominating).
func (c *Controller) profileLocked(set *setRecord) core.Profile {
	p := core.Profile{ID: set.index, Name: set.mboxType, Patterns: &patterns.Set{Name: set.mboxType}}
	unlimited := false
	for _, rec := range c.mboxes {
		if rec.set != set {
			continue
		}
		if rec.reg.Stateful {
			p.Stateful = true
		}
		if rec.reg.StopAfter == 0 {
			unlimited = true
		} else if rec.reg.StopAfter > p.StopAfter {
			p.StopAfter = rec.reg.StopAfter
		}
		// ReadOnly is a routing property, not a scanning one; the TSA
		// consumes it via MboxInfo.
	}
	if unlimited {
		p.StopAfter = 0
	}
	ids := make([]int, 0, len(set.rules))
	for id := range set.rules {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := set.rules[id]
		if r.content != "" {
			p.Patterns.Patterns = append(p.Patterns.Patterns,
				patterns.Pattern{ID: id, Content: r.content})
		} else {
			p.Patterns.Regexes = append(p.Patterns.Regexes,
				patterns.Regex{ID: id, Expr: r.regex})
		}
	}
	return p
}

// InstanceInitMsg renders an InstanceConfig as the wire message sent to
// a remote DPI service instance.
func (c *Controller) InstanceInitMsg(instanceID string, tags []uint16, compact bool) (ctlproto.InstanceInit, error) {
	cfg, err := c.InstanceConfig(tags, compact)
	if err != nil {
		return ctlproto.InstanceInit{}, err
	}
	msg := ctlproto.InstanceInit{
		InstanceID: instanceID, Compact: compact, Decompress: cfg.Decompress,
		Version: c.Version(), WireKey: c.WireKey(), WireToken: c.IssueWireToken(instanceID),
	}
	for _, p := range cfg.Profiles {
		pd := ctlproto.ProfileDef{
			Set: p.ID, Name: p.Name, Stateful: p.Stateful,
			ReadOnly: p.ReadOnly, StopAfter: p.StopAfter,
			Mboxes: c.setMembers(p.ID),
		}
		for _, pat := range p.Patterns.Patterns {
			pd.Patterns = append(pd.Patterns, ctlproto.PatternDef{RuleID: pat.ID, Content: []byte(pat.Content)})
		}
		for _, rx := range p.Patterns.Regexes {
			pd.Patterns = append(pd.Patterns, ctlproto.PatternDef{RuleID: rx.ID, Regex: rx.Expr})
		}
		msg.Profiles = append(msg.Profiles, pd)
	}
	tagList := tags
	if tagList == nil {
		tagList = c.ChainTags()
	}
	for _, tag := range tagList {
		members, err := c.Chain(tag)
		if err != nil {
			return ctlproto.InstanceInit{}, err
		}
		msg.Chains = append(msg.Chains, ctlproto.ChainDef{Tag: tag, Members: members})
	}
	return msg, nil
}

// setMembers lists the registered middlebox IDs whose set has the given
// index, sorted for determinism.
func (c *Controller) setMembers(setIndex int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for id, rec := range c.mboxes {
		if rec.set.index == setIndex {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// ConfigFromInit reconstructs an engine configuration from an
// InstanceInit message — the instance-side half of initialization.
func ConfigFromInit(init ctlproto.InstanceInit) (core.Config, error) {
	cfg := core.Config{Chains: make(map[uint16][]int, len(init.Chains))}
	if init.Compact {
		cfg.Kind = core.AutoCompact
	}
	cfg.Decompress = init.Decompress
	byMbox := make(map[string]int)
	for _, pd := range init.Profiles {
		p := core.Profile{
			ID: pd.Set, Name: pd.Name, Stateful: pd.Stateful,
			ReadOnly: pd.ReadOnly, StopAfter: pd.StopAfter,
			Patterns: &patterns.Set{Name: pd.Name},
		}
		for _, d := range pd.Patterns {
			if d.Regex != "" {
				p.Patterns.Regexes = append(p.Patterns.Regexes, patterns.Regex{ID: d.RuleID, Expr: d.Regex})
			} else {
				p.Patterns.Patterns = append(p.Patterns.Patterns, patterns.Pattern{ID: d.RuleID, Content: string(d.Content)})
			}
		}
		cfg.Profiles = append(cfg.Profiles, p)
		for _, m := range pd.Mboxes {
			byMbox[m] = pd.Set
		}
		byMbox[pd.Name] = pd.Set
	}
	for _, ch := range init.Chains {
		var ids []int
		seen := make(map[int]bool)
		for _, m := range ch.Members {
			idx, ok := byMbox[m]
			if !ok {
				return core.Config{}, fmt.Errorf("%w: chain %d member %s", ErrUnknownMbox, ch.Tag, m)
			}
			if !seen[idx] {
				seen[idx] = true
				ids = append(ids, idx)
			}
		}
		cfg.Chains[ch.Tag] = ids
	}
	return cfg, nil
}

// MboxInfo describes a registered middlebox for the TSA.
type MboxInfo struct {
	MboxID   string
	Type     string
	Set      int
	ReadOnly bool
	Stateful bool
}

// Mbox returns registration info for one middlebox.
func (c *Controller) Mbox(id string) (MboxInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.mboxes[id]
	if !ok {
		return MboxInfo{}, fmt.Errorf("%w: %s", ErrUnknownMbox, id)
	}
	return MboxInfo{
		MboxID: id, Type: rec.set.mboxType, Set: rec.set.index,
		ReadOnly: rec.reg.ReadOnly, Stateful: rec.reg.Stateful,
	}, nil
}

// --- instance lifecycle and telemetry -------------------------------

// AddInstance records a deployed DPI service instance and the chains it
// serves. The instance starts Healthy with a fresh lease; a re-added
// instance (an instance re-helloing after the controller declared it
// dead) is restored to Healthy.
func (c *Controller) AddInstance(id string, tags []uint16, dedicated bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.instances[id]; !ok {
		c.met.instancesAdded.Inc()
	}
	c.instances[id] = &instanceRecord{
		id: id, chains: append([]uint16(nil), tags...), dedicated: dedicated,
		lastRenewal: c.now(), health: Healthy,
	}
	c.met.instances.Set(int64(len(c.instances)))
	c.healthGaugesLocked()
}

// RemoveInstance forgets an instance.
func (c *Controller) RemoveInstance(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.instances[id]; ok {
		c.met.instancesRemoved.Inc()
	}
	delete(c.instances, id)
	c.met.instances.Set(int64(len(c.instances)))
	c.healthGaugesLocked()
}

// ReportTelemetry ingests an instance's periodic report.
func (c *Controller) ReportTelemetry(tel ctlproto.Telemetry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.instances[tel.InstanceID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, tel.InstanceID)
	}
	rec.telemetry = tel
	rec.hasTel = true
	c.met.telemetryReports.Inc()
	return nil
}

// InstanceTelemetry returns the latest telemetry of an instance.
func (c *Controller) InstanceTelemetry(id string) (ctlproto.Telemetry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.instances[id]
	if !ok || !rec.hasTel {
		return ctlproto.Telemetry{}, false
	}
	return rec.telemetry, true
}

// Instances lists known instance IDs (sorted), optionally filtering for
// dedicated ones.
func (c *Controller) Instances(dedicatedOnly bool) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.instances))
	for id, rec := range c.instances {
		if dedicatedOnly && !rec.dedicated {
			continue
		}
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
