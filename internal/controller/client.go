package controller

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"dpiservice/internal/ctlproto"
)

// RetryPolicy bounds the client's retransmission of idempotent
// requests: exponential backoff from Base doubling up to Max, with up
// to half a step of random jitter so a controller restart is not hit by
// a synchronized thundering herd of middleboxes.
type RetryPolicy struct {
	// Attempts is the total number of tries (1 = no retry).
	Attempts int
	// Base is the delay before the first retry; each further retry
	// doubles it, capped at Max.
	Base time.Duration
	Max  time.Duration
}

// DefaultRetryPolicy retries transient transport failures three times
// over roughly half a second.
var DefaultRetryPolicy = RetryPolicy{Attempts: 4, Base: 50 * time.Millisecond, Max: 1 * time.Second}

// backoff returns the sleep before retry i (0-based), jittered.
func (p RetryPolicy) backoff(i int, rng *rand.Rand) time.Duration {
	d := p.Base << uint(i)
	if d > p.Max || d <= 0 {
		d = p.Max
	}
	if rng != nil && d > 1 {
		d += time.Duration(rng.Int63n(int64(d / 2)))
	}
	return d
}

// rejectionError marks a reply the controller deliberately refused
// (ctlproto.TypeError). Rejections are deterministic — retrying the
// same request yields the same answer — so the retry loop passes them
// through.
type rejectionError struct{ reason string }

func (e *rejectionError) Error() string { return e.reason }

// IsRejection reports whether err is a controller-side rejection rather
// than a transport failure.
func IsRejection(err error) bool {
	var rej *rejectionError
	return errors.As(err, &rej)
}

// IsLeaseExpired reports whether err is the controller refusing a lease
// renewal because the instance was already declared dead; the instance
// must re-hello to rejoin.
func IsLeaseExpired(err error) bool {
	return IsRejection(err) && strings.Contains(err.Error(), "lease expired")
}

// Client is the middlebox/instance-side handle to the DPI controller: a
// synchronous request/response wrapper over one control connection.
// Every call is bounded by its context, and idempotent requests
// (registration, pattern updates, hello, telemetry, lease renewal) are
// retried with backoff across redials when the transport fails. A
// Client serializes its calls internally and is safe for concurrent
// use.
type Client struct {
	mu    sync.Mutex
	conn  net.Conn
	seq   uint64
	addr  string // non-empty when Dial created the client; enables redial
	retry RetryPolicy
	rng   *rand.Rand
}

// Dial connects to a controller at addr (TCP). Clients created this way
// redial on retry after a transport failure.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn)
	c.addr = addr
	return c, nil
}

// NewClient wraps an established control connection. Without a dial
// address the client cannot redial, so transport failures are returned
// after the first attempt.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:  conn,
		retry: DefaultRetryPolicy,
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// SetRetryPolicy replaces the retry policy (tests use a fast one).
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = p
}

// Close closes the control connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends one request and reads its reply on the current
// connection. Caller holds c.mu.
func (c *Client) roundTrip(ctx context.Context, typ ctlproto.MsgType, body any) (*ctlproto.Envelope, error) {
	c.seq++
	if err := ctlproto.WriteMsgCtx(ctx, c.conn, typ, c.seq, body); err != nil {
		return nil, err
	}
	env, err := ctlproto.ReadMsgCtx(ctx, c.conn)
	if err != nil {
		return nil, err
	}
	if env.Type == ctlproto.TypeError {
		var e ctlproto.Error
		if err := env.Decode(&e); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("controller rejected %s: %w", typ, &rejectionError{reason: e.Reason})
	}
	if env.Seq != c.seq {
		return nil, fmt.Errorf("controller: reply seq %d for request %d", env.Seq, c.seq)
	}
	return env, nil
}

// call runs one request with the client's retry policy. Only idempotent
// requests retry: after a transport failure mid-exchange the client
// cannot know whether the controller applied the request, so a
// non-idempotent one must surface the error instead of risking a double
// apply. A retry closes the broken connection and redials (framing
// state after a partial exchange is unrecoverable), which requires a
// dial address; clients wrapping a caller-owned connection do not
// retry.
func (c *Client) call(ctx context.Context, typ ctlproto.MsgType, body any, idempotent bool) (*ctlproto.Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	attempts := c.retry.Attempts
	if !idempotent || c.addr == "" || attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.conn.Close()
			t := time.NewTimer(c.retry.backoff(i-1, c.rng))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
			conn, err := net.Dial("tcp", c.addr)
			if err != nil {
				lastErr = err
				continue
			}
			c.conn = conn
		}
		env, err := c.roundTrip(ctx, typ, body)
		if err == nil || IsRejection(err) || ctx.Err() != nil {
			return env, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// Register registers a middlebox and returns its pattern-set index. The
// controller treats re-registration with an identical body as
// idempotent, so lost-ack retries are safe.
//
//dpi:ctx
func (c *Client) Register(ctx context.Context, reg ctlproto.Register) (int, error) {
	ack, err := c.RegisterFull(ctx, reg)
	return ack.Set, err
}

// RegisterFull registers a middlebox and returns the whole ack,
// including the wire session token and cluster key a middlebox needs
// to speak the wire transport.
//
//dpi:ctx
func (c *Client) RegisterFull(ctx context.Context, reg ctlproto.Register) (ctlproto.RegisterAck, error) {
	env, err := c.call(ctx, ctlproto.TypeRegister, reg, true)
	if err != nil {
		return ctlproto.RegisterAck{}, err
	}
	if env.Type != ctlproto.TypeRegisterAck {
		return ctlproto.RegisterAck{}, errors.New("controller: unexpected reply " + string(env.Type))
	}
	var ack ctlproto.RegisterAck
	if err := env.Decode(&ack); err != nil {
		return ctlproto.RegisterAck{}, err
	}
	return ack, nil
}

// NewSession requests a wire session token for an unregistered peer (a
// traffic source or benchmark driver). Tokens are stable per peer ID,
// so retries are safe.
//
//dpi:ctx
func (c *Client) NewSession(ctx context.Context, peerID string) (uint64, error) {
	env, err := c.call(ctx, ctlproto.TypeSession, ctlproto.Session{PeerID: peerID}, true)
	if err != nil {
		return 0, err
	}
	if env.Type != ctlproto.TypeSessionAck {
		return 0, errors.New("controller: unexpected reply " + string(env.Type))
	}
	var ack ctlproto.SessionAck
	if err := env.Decode(&ack); err != nil {
		return 0, err
	}
	return ack.WireToken, nil
}

// Deregister removes a middlebox registration. Not retried: a repeat
// after a lost ack is rejected as unknown, which the caller would
// misread as failure.
//
//dpi:ctx
func (c *Client) Deregister(ctx context.Context, mboxID string) error {
	_, err := c.call(ctx, ctlproto.TypeDeregister, ctlproto.Deregister{MboxID: mboxID}, false)
	return err
}

// AddPatterns registers patterns for a middlebox. Re-adding identical
// patterns only refreshes references, so retries are safe.
//
//dpi:ctx
func (c *Client) AddPatterns(ctx context.Context, mboxID string, defs []ctlproto.PatternDef) error {
	_, err := c.call(ctx, ctlproto.TypeAddPatterns,
		ctlproto.AddPatterns{MboxID: mboxID, Patterns: defs}, true)
	return err
}

// RemovePatterns drops a middlebox's references to rule IDs. Removing
// an already-removed reference is a no-op, so retries are safe.
//
//dpi:ctx
func (c *Client) RemovePatterns(ctx context.Context, mboxID string, ruleIDs []int) error {
	_, err := c.call(ctx, ctlproto.TypeRemovePatterns,
		ctlproto.RemovePatterns{MboxID: mboxID, RuleIDs: ruleIDs}, true)
	return err
}

// ReportChains reports policy chains (as the TSA) and returns them with
// the controller-assigned tags. Not retried: each report defines new
// chains, so a blind repeat after a lost ack would duplicate them.
//
//dpi:ctx
func (c *Client) ReportChains(ctx context.Context, chains [][]string) ([]ctlproto.ChainDef, error) {
	msg := ctlproto.PolicyChains{}
	for _, members := range chains {
		msg.Chains = append(msg.Chains, ctlproto.ChainDef{Members: members})
	}
	env, err := c.call(ctx, ctlproto.TypePolicyChains, msg, false)
	if err != nil {
		return nil, err
	}
	var reply ctlproto.PolicyChains
	if err := env.Decode(&reply); err != nil {
		return nil, err
	}
	return reply.Chains, nil
}

// InstanceHello announces a DPI service instance and fetches its
// initialization. Re-helloing replaces the instance record, so retries
// are safe.
//
//dpi:ctx
func (c *Client) InstanceHello(ctx context.Context, instanceID string, chains []uint16, dedicated bool) (ctlproto.InstanceInit, error) {
	env, err := c.call(ctx, ctlproto.TypeInstanceHello,
		ctlproto.InstanceHello{InstanceID: instanceID, Chains: chains, Dedicated: dedicated}, true)
	if err != nil {
		return ctlproto.InstanceInit{}, err
	}
	if env.Type != ctlproto.TypeInstanceInit {
		return ctlproto.InstanceInit{}, errors.New("controller: unexpected reply " + string(env.Type))
	}
	var init ctlproto.InstanceInit
	if err := env.Decode(&init); err != nil {
		return ctlproto.InstanceInit{}, err
	}
	return init, nil
}

// SendTelemetry exports an instance's counters to the controller.
// Reports are absolute snapshots, so a duplicate overwrites itself.
//
//dpi:ctx
func (c *Client) SendTelemetry(ctx context.Context, tel ctlproto.Telemetry) error {
	_, err := c.call(ctx, ctlproto.TypeTelemetry, tel, true)
	return err
}

// RenewLease renews an instance's liveness lease and returns the lease
// TTL and the controller's configuration version. A renewal is a pure
// liveness signal, so retries are safe. IsLeaseExpired distinguishes
// the rejection that demands a fresh InstanceHello.
//
//dpi:ctx
func (c *Client) RenewLease(ctx context.Context, instanceID string) (ttl time.Duration, version uint64, err error) {
	env, err := c.call(ctx, ctlproto.TypeLease, ctlproto.Lease{InstanceID: instanceID}, true)
	if err != nil {
		return 0, 0, err
	}
	if env.Type != ctlproto.TypeLeaseAck {
		return 0, 0, errors.New("controller: unexpected reply " + string(env.Type))
	}
	var ack ctlproto.LeaseAck
	if err := env.Decode(&ack); err != nil {
		return 0, 0, err
	}
	return time.Duration(ack.TTLMillis) * time.Millisecond, ack.Version, nil
}
