package controller

import (
	"errors"
	"fmt"
	"net"

	"dpiservice/internal/ctlproto"
)

// Client is the middlebox/instance-side handle to the DPI controller: a
// synchronous request/response wrapper over one control connection. A
// Client is not safe for concurrent use.
type Client struct {
	conn net.Conn
	seq  uint64
}

// Dial connects to a controller at addr (TCP).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established control connection.
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Close closes the control connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its reply, surfacing protocol
// errors as Go errors.
func (c *Client) roundTrip(typ ctlproto.MsgType, body any) (*ctlproto.Envelope, error) {
	c.seq++
	if err := ctlproto.WriteMsg(c.conn, typ, c.seq, body); err != nil {
		return nil, err
	}
	env, err := ctlproto.ReadMsg(c.conn)
	if err != nil {
		return nil, err
	}
	if env.Type == ctlproto.TypeError {
		var e ctlproto.Error
		if err := env.Decode(&e); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("controller rejected %s: %s", typ, e.Reason)
	}
	if env.Seq != c.seq {
		return nil, fmt.Errorf("controller: reply seq %d for request %d", env.Seq, c.seq)
	}
	return env, nil
}

// Register registers a middlebox and returns its pattern-set index.
func (c *Client) Register(reg ctlproto.Register) (int, error) {
	env, err := c.roundTrip(ctlproto.TypeRegister, reg)
	if err != nil {
		return 0, err
	}
	if env.Type != ctlproto.TypeRegisterAck {
		return 0, errors.New("controller: unexpected reply " + string(env.Type))
	}
	var ack ctlproto.RegisterAck
	if err := env.Decode(&ack); err != nil {
		return 0, err
	}
	return ack.Set, nil
}

// Deregister removes a middlebox registration.
func (c *Client) Deregister(mboxID string) error {
	_, err := c.roundTrip(ctlproto.TypeDeregister, ctlproto.Deregister{MboxID: mboxID})
	return err
}

// AddPatterns registers patterns for a middlebox.
func (c *Client) AddPatterns(mboxID string, defs []ctlproto.PatternDef) error {
	_, err := c.roundTrip(ctlproto.TypeAddPatterns, ctlproto.AddPatterns{MboxID: mboxID, Patterns: defs})
	return err
}

// RemovePatterns drops a middlebox's references to rule IDs.
func (c *Client) RemovePatterns(mboxID string, ruleIDs []int) error {
	_, err := c.roundTrip(ctlproto.TypeRemovePatterns, ctlproto.RemovePatterns{MboxID: mboxID, RuleIDs: ruleIDs})
	return err
}

// ReportChains reports policy chains (as the TSA) and returns them with
// the controller-assigned tags.
func (c *Client) ReportChains(chains [][]string) ([]ctlproto.ChainDef, error) {
	msg := ctlproto.PolicyChains{}
	for _, members := range chains {
		msg.Chains = append(msg.Chains, ctlproto.ChainDef{Members: members})
	}
	env, err := c.roundTrip(ctlproto.TypePolicyChains, msg)
	if err != nil {
		return nil, err
	}
	var reply ctlproto.PolicyChains
	if err := env.Decode(&reply); err != nil {
		return nil, err
	}
	return reply.Chains, nil
}

// InstanceHello announces a DPI service instance and fetches its
// initialization.
func (c *Client) InstanceHello(instanceID string, chains []uint16, dedicated bool) (ctlproto.InstanceInit, error) {
	env, err := c.roundTrip(ctlproto.TypeInstanceHello,
		ctlproto.InstanceHello{InstanceID: instanceID, Chains: chains, Dedicated: dedicated})
	if err != nil {
		return ctlproto.InstanceInit{}, err
	}
	if env.Type != ctlproto.TypeInstanceInit {
		return ctlproto.InstanceInit{}, errors.New("controller: unexpected reply " + string(env.Type))
	}
	var init ctlproto.InstanceInit
	if err := env.Decode(&init); err != nil {
		return ctlproto.InstanceInit{}, err
	}
	return init, nil
}

// SendTelemetry exports an instance's counters to the controller.
func (c *Client) SendTelemetry(tel ctlproto.Telemetry) error {
	_, err := c.roundTrip(ctlproto.TypeTelemetry, tel)
	return err
}
