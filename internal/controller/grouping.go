package controller

import (
	"fmt"
	"sort"
)

// This file implements the deployment-grouping decision of Section 4.3:
// "a common deployment choice is to group together similar policy
// chains and to deploy instances that support only one group and not
// all the policy chains in the system". Grouping keeps each instance's
// merged automaton small (fewer pattern sets -> fewer states -> better
// cache behaviour, the dominant effect of Figure 8).

// ChainGroup is one deployment group: the chains an instance class
// serves and the pattern sets its automaton must merge.
type ChainGroup struct {
	Tags []uint16
	Sets []int
}

// ErrGroupBound is returned when one chain alone needs more pattern
// sets than the requested bound.
var ErrGroupBound = fmt.Errorf("controller: a single chain exceeds the group bound")

// GroupChains partitions all defined chains into groups whose merged
// pattern-set count stays within maxSetsPerGroup. The heuristic is
// greedy set-cover style: chains are placed largest-first into the
// group whose set union grows the least, opening a new group when none
// can absorb the chain. maxSetsPerGroup <= 0 puts everything in one
// group.
func (c *Controller) GroupChains(maxSetsPerGroup int) ([]ChainGroup, error) {
	c.mu.Lock()
	type chainSets struct {
		tag  uint16
		sets map[int]bool
	}
	chains := make([]chainSets, 0, len(c.chains))
	for tag, members := range c.chains {
		cs := chainSets{tag: tag, sets: make(map[int]bool)}
		for _, m := range members {
			if rec := c.mboxes[m]; rec != nil {
				cs.sets[rec.set.index] = true
			}
		}
		chains = append(chains, cs)
	}
	c.mu.Unlock()

	if maxSetsPerGroup <= 0 {
		all := ChainGroup{}
		seen := map[int]bool{}
		for _, cs := range chains {
			all.Tags = append(all.Tags, cs.tag)
			for s := range cs.sets {
				if !seen[s] {
					seen[s] = true
					all.Sets = append(all.Sets, s)
				}
			}
		}
		sort.Slice(all.Tags, func(i, j int) bool { return all.Tags[i] < all.Tags[j] })
		sort.Ints(all.Sets)
		if len(all.Tags) == 0 {
			return nil, nil
		}
		return []ChainGroup{all}, nil
	}

	// Largest chains first so the hardest placements happen while
	// groups are empty; ties broken by tag for determinism.
	sort.Slice(chains, func(i, j int) bool {
		if len(chains[i].sets) != len(chains[j].sets) {
			return len(chains[i].sets) > len(chains[j].sets)
		}
		return chains[i].tag < chains[j].tag
	})

	type group struct {
		tags []uint16
		sets map[int]bool
	}
	var groups []*group
	for _, cs := range chains {
		if len(cs.sets) > maxSetsPerGroup {
			return nil, fmt.Errorf("%w: chain %d needs %d sets, bound %d",
				ErrGroupBound, cs.tag, len(cs.sets), maxSetsPerGroup)
		}
		best, bestGrowth := -1, 1<<30
		for gi, g := range groups {
			growth := 0
			for s := range cs.sets {
				if !g.sets[s] {
					growth++
				}
			}
			if len(g.sets)+growth > maxSetsPerGroup {
				continue
			}
			// Prefer the tightest fit; ties go to the earlier group.
			if growth < bestGrowth {
				best, bestGrowth = gi, growth
			}
		}
		if best < 0 {
			groups = append(groups, &group{sets: make(map[int]bool)})
			best = len(groups) - 1
		}
		g := groups[best]
		g.tags = append(g.tags, cs.tag)
		for s := range cs.sets {
			g.sets[s] = true
		}
	}

	out := make([]ChainGroup, len(groups))
	for i, g := range groups {
		sort.Slice(g.tags, func(a, b int) bool { return g.tags[a] < g.tags[b] })
		sets := make([]int, 0, len(g.sets))
		for s := range g.sets {
			sets = append(sets, s)
		}
		sort.Ints(sets)
		out[i] = ChainGroup{Tags: g.tags, Sets: sets}
	}
	return out, nil
}
