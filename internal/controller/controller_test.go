package controller

import (
	"errors"
	"reflect"
	"testing"

	"dpiservice/internal/core"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/packet"
)

func reg(id, typ string) ctlproto.Register {
	return ctlproto.Register{MboxID: id, Name: id, Type: typ}
}

func pats(ids []int, contents []string) []ctlproto.PatternDef {
	defs := make([]ctlproto.PatternDef, len(ids))
	for i := range ids {
		defs[i] = ctlproto.PatternDef{RuleID: ids[i], Content: []byte(contents[i])}
	}
	return defs
}

func TestRegisterAssignsSetsByType(t *testing.T) {
	c := New()
	s1, err := c.Register(reg("ids-1", "ids"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Register(reg("ids-2", "ids"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("same-type middleboxes got sets %d and %d", s1, s2)
	}
	s3, err := c.Register(reg("av-1", "av"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Errorf("different types share set %d", s3)
	}
	// Identical re-registration is idempotent (lost-ack retry); a
	// diverging body is still a conflict.
	if s, err := c.Register(reg("ids-1", "ids")); err != nil || s != s1 {
		t.Errorf("idempotent re-registration = %d, %v; want %d, nil", s, err, s1)
	}
	if _, err := c.Register(ctlproto.Register{MboxID: "ids-1", Type: "av"}); !errors.Is(err, ErrDuplicateMbox) {
		t.Errorf("duplicate registration err = %v", err)
	}
	if _, err := c.Register(ctlproto.Register{}); err == nil {
		t.Error("empty MboxID accepted")
	}
}

func TestRegisterInherit(t *testing.T) {
	c := New()
	s1, err := c.Register(reg("ids-1", "ids"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Register(ctlproto.Register{MboxID: "clone-1", InheritFrom: "ids-1"})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("inherit: sets %d and %d", s1, s2)
	}
	if _, err := c.Register(ctlproto.Register{MboxID: "x", InheritFrom: "ghost"}); !errors.Is(err, ErrUnknownMbox) {
		t.Errorf("inherit from unknown err = %v", err)
	}
}

func TestPatternRefcounting(t *testing.T) {
	c := New()
	if _, err := c.Register(reg("ids-1", "ids")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(reg("av-1", "av")); err != nil {
		t.Fatal(err)
	}
	// Both register the same content under different rule IDs.
	if err := c.AddPatterns("ids-1", pats([]int{1}, []string{"shared-pattern"})); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPatterns("av-1", pats([]int{7}, []string{"shared-pattern"})); err != nil {
		t.Fatal(err)
	}
	if got := c.GlobalPatternCount(); got != 1 {
		t.Errorf("GlobalPatternCount = %d, want 1 (shared internal ID)", got)
	}
	// Removing one reference keeps the pattern alive.
	if err := c.RemovePatterns("ids-1", []int{1}); err != nil {
		t.Fatal(err)
	}
	if got := c.GlobalPatternCount(); got != 1 {
		t.Errorf("after first removal: %d, want 1", got)
	}
	// Removing the last reference deletes it (Section 4.1).
	if err := c.RemovePatterns("av-1", []int{7}); err != nil {
		t.Fatal(err)
	}
	if got := c.GlobalPatternCount(); got != 0 {
		t.Errorf("after last removal: %d, want 0", got)
	}
}

func TestPatternRefcountingSameSet(t *testing.T) {
	c := New()
	if _, err := c.Register(reg("ids-1", "ids")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(reg("ids-2", "ids")); err != nil {
		t.Fatal(err)
	}
	// Both instances of one type reference rule 3.
	if err := c.AddPatterns("ids-1", pats([]int{3}, []string{"sig"})); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPatterns("ids-2", pats([]int{3}, []string{"sig"})); err != nil {
		t.Fatal(err)
	}
	if err := c.RemovePatterns("ids-1", []int{3}); err != nil {
		t.Fatal(err)
	}
	// ids-2 still references the rule; the set must keep it.
	cfg := mustConfig(t, c, "ids-1")
	if len(cfg.Profiles[0].Patterns.Patterns) != 1 {
		t.Errorf("rule evicted while referenced: %+v", cfg.Profiles[0].Patterns)
	}
	if err := c.RemovePatterns("ids-2", []int{3}); err != nil {
		t.Fatal(err)
	}
	if c.GlobalPatternCount() != 0 {
		t.Error("pattern survived last same-set removal")
	}
}

func mustConfig(t *testing.T, c *Controller, members ...string) core.Config {
	t.Helper()
	tag, err := c.DefineChain(members)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := c.InstanceConfig([]uint16{tag}, false)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestAddPatternsValidation(t *testing.T) {
	c := New()
	if _, err := c.Register(reg("m", "t")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPatterns("ghost", pats([]int{1}, []string{"x"})); !errors.Is(err, ErrUnknownMbox) {
		t.Errorf("unknown mbox err = %v", err)
	}
	if err := c.AddPatterns("m", []ctlproto.PatternDef{{RuleID: -1, Content: []byte("x")}}); err == nil {
		t.Error("negative rule ID accepted")
	}
	if err := c.AddPatterns("m", []ctlproto.PatternDef{{RuleID: core.RegexReportBase, Content: []byte("x")}}); err == nil {
		t.Error("oversized rule ID accepted")
	}
	if err := c.AddPatterns("m", []ctlproto.PatternDef{{RuleID: 1}}); err == nil {
		t.Error("empty rule accepted")
	}
	if err := c.AddPatterns("m", []ctlproto.PatternDef{{RuleID: 1, Content: []byte("x"), Regex: "y"}}); err == nil {
		t.Error("rule with both content and regex accepted")
	}
	// Conflicting redefinition.
	if err := c.AddPatterns("m", pats([]int{1}, []string{"one"})); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPatterns("m", pats([]int{1}, []string{"other"})); !errors.Is(err, ErrRuleConflict) {
		t.Errorf("conflict err = %v", err)
	}
	// Identical re-add is idempotent.
	if err := c.AddPatterns("m", pats([]int{1}, []string{"one"})); err != nil {
		t.Errorf("idempotent re-add: %v", err)
	}
}

func TestDeregisterDropsReferences(t *testing.T) {
	c := New()
	if _, err := c.Register(reg("a", "t1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(reg("b", "t2")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPatterns("a", pats([]int{1, 2}, []string{"p1", "common"})); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPatterns("b", pats([]int{5}, []string{"common"})); err != nil {
		t.Fatal(err)
	}
	if err := c.Deregister("a"); err != nil {
		t.Fatal(err)
	}
	if got := c.GlobalPatternCount(); got != 1 {
		t.Errorf("GlobalPatternCount after deregister = %d, want 1", got)
	}
	if err := c.Deregister("a"); !errors.Is(err, ErrUnknownMbox) {
		t.Errorf("double deregister err = %v", err)
	}
}

func TestDefineChainAndConfig(t *testing.T) {
	c := New()
	if _, err := c.Register(ctlproto.Register{MboxID: "ids-1", Type: "ids", Stateful: true, ReadOnly: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(reg("av-1", "av")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPatterns("ids-1", pats([]int{0, 1}, []string{"attack-sig", "/etc/passwd"})); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPatterns("av-1", pats([]int{0}, []string{"malware-body"})); err != nil {
		t.Fatal(err)
	}
	tag1, err := c.DefineChain([]string{"ids-1", "av-1"})
	if err != nil {
		t.Fatal(err)
	}
	tag2, err := c.DefineChain([]string{"av-1"})
	if err != nil {
		t.Fatal(err)
	}
	if tag1 == tag2 {
		t.Error("chain tags not unique")
	}
	if _, err := c.DefineChain([]string{"ghost"}); !errors.Is(err, ErrUnknownMbox) {
		t.Errorf("bad member err = %v", err)
	}

	cfg, err := c.InstanceConfig(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Profiles) != 2 {
		t.Fatalf("profiles = %+v", cfg.Profiles)
	}
	// The engine built from this config must work end to end.
	e, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tuple := packet.FiveTuple{Src: packet.IP4{1, 1, 1, 1}, Dst: packet.IP4{2, 2, 2, 2}, Protocol: packet.IPProtoTCP}
	rep, err := e.Inspect(tag1, tuple, []byte("attack-sig and malware-body"))
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || len(rep.Sections) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	// Chain 2 excludes the IDS.
	rep, err = e.Inspect(tag2, tuple, []byte("attack-sig"))
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Errorf("IDS pattern reported on AV-only chain: %+v", rep)
	}
}

func TestInstanceConfigGrouping(t *testing.T) {
	c := New()
	for _, r := range []ctlproto.Register{reg("ids-1", "ids"), reg("av-1", "av"), reg("shaper-1", "shaper")} {
		if _, err := c.Register(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []string{"ids-1", "av-1", "shaper-1"} {
		if err := c.AddPatterns(m, pats([]int{0}, []string{"pattern-of-" + m})); err != nil {
			t.Fatal(err)
		}
	}
	tag1, _ := c.DefineChain([]string{"ids-1"})
	tag2, _ := c.DefineChain([]string{"av-1", "shaper-1"})

	// An instance grouped to serve only chain 1 must not carry the AV
	// or shaper sets (Section 4.3 deployment grouping).
	cfg, err := c.InstanceConfig([]uint16{tag1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Profiles) != 1 || cfg.Profiles[0].Name != "ids" {
		t.Errorf("grouped config profiles = %+v", cfg.Profiles)
	}
	if _, ok := cfg.Chains[tag2]; ok {
		t.Error("grouped config contains foreign chain")
	}
	if _, err := c.InstanceConfig([]uint16{999}, false); !errors.Is(err, ErrUnknownChain) {
		t.Errorf("unknown tag err = %v", err)
	}
}

func TestInstanceInitRoundTrip(t *testing.T) {
	c := New()
	if _, err := c.Register(ctlproto.Register{MboxID: "ids-1", Type: "ids", Stateful: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPatterns("ids-1", []ctlproto.PatternDef{
		{RuleID: 0, Content: []byte{0x00, 0xff, 'b', 'i', 'n', 0x01, 0x02, 0x03}},
		{RuleID: 1, Regex: `evil\d+marker`},
	}); err != nil {
		t.Fatal(err)
	}
	tag, err := c.DefineChain([]string{"ids-1"})
	if err != nil {
		t.Fatal(err)
	}
	init, err := c.InstanceInitMsg("dpi-1", nil, false)
	if err != nil {
		t.Fatal(err)
	}
	cfgRemote, err := ConfigFromInit(init)
	if err != nil {
		t.Fatal(err)
	}
	cfgLocal, err := c.InstanceConfig(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfgRemote.Chains, cfgLocal.Chains) {
		t.Errorf("chains differ: %v vs %v", cfgRemote.Chains, cfgLocal.Chains)
	}
	// Engines built both ways must agree on a binary payload.
	eL, err := core.NewEngine(cfgLocal)
	if err != nil {
		t.Fatal(err)
	}
	eR, err := core.NewEngine(cfgRemote)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("xx\x00\xffbin\x01\x02\x03 evil42marker yy")
	tuple := packet.FiveTuple{Protocol: packet.IPProtoTCP}
	rL, err := eL.Inspect(tag, tuple, payload)
	if err != nil {
		t.Fatal(err)
	}
	rR, err := eR.Inspect(tag, tuple, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rL, rR) {
		t.Errorf("local %+v vs remote %+v", rL, rR)
	}
	if rL == nil || rL.NumMatches() != 2 {
		t.Errorf("expected 2 matches, got %+v", rL)
	}
}

func TestTelemetryLifecycle(t *testing.T) {
	c := New()
	c.AddInstance("dpi-1", nil, false)
	c.AddInstance("dpi-2", nil, true)
	if got := c.Instances(false); !reflect.DeepEqual(got, []string{"dpi-1", "dpi-2"}) {
		t.Errorf("Instances = %v", got)
	}
	if got := c.Instances(true); !reflect.DeepEqual(got, []string{"dpi-2"}) {
		t.Errorf("dedicated Instances = %v", got)
	}
	tel := ctlproto.Telemetry{InstanceID: "dpi-1", Packets: 10, Bytes: 1000}
	if err := c.ReportTelemetry(tel); err != nil {
		t.Fatal(err)
	}
	got, ok := c.InstanceTelemetry("dpi-1")
	if !ok || got.Packets != 10 {
		t.Errorf("telemetry = %+v, %v", got, ok)
	}
	if _, ok := c.InstanceTelemetry("dpi-2"); ok {
		t.Error("telemetry for instance that never reported")
	}
	if err := c.ReportTelemetry(ctlproto.Telemetry{InstanceID: "ghost"}); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("ghost telemetry err = %v", err)
	}
	c.RemoveInstance("dpi-1")
	if got := c.Instances(false); !reflect.DeepEqual(got, []string{"dpi-2"}) {
		t.Errorf("after remove: %v", got)
	}
}

func TestVersionBumps(t *testing.T) {
	c := New()
	v0 := c.Version()
	if _, err := c.Register(reg("m", "t")); err != nil {
		t.Fatal(err)
	}
	v1 := c.Version()
	if v1 <= v0 {
		t.Error("Register did not bump version")
	}
	if err := c.AddPatterns("m", pats([]int{0}, []string{"p"})); err != nil {
		t.Fatal(err)
	}
	if c.Version() <= v1 {
		t.Error("AddPatterns did not bump version")
	}
}

func TestMboxInfo(t *testing.T) {
	c := New()
	set, err := c.Register(ctlproto.Register{MboxID: "ids-1", Type: "ids", ReadOnly: true, Stateful: true})
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Mbox("ids-1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Set != set || !info.ReadOnly || !info.Stateful || info.Type != "ids" {
		t.Errorf("info = %+v", info)
	}
	if _, err := c.Mbox("nope"); !errors.Is(err, ErrUnknownMbox) {
		t.Errorf("unknown mbox err = %v", err)
	}
}
