package controller

import (
	"context"
	"errors"
	"testing"
	"time"

	"dpiservice/internal/ctlproto"
)

// fakeClock drives the controller's injectable clock deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock(c *Controller) *fakeClock {
	f := &fakeClock{t: time.Unix(1000, 0)}
	c.now = f.now
	return f
}

func leaseCtl(t *testing.T, ttl, dead time.Duration) (*Controller, *fakeClock) {
	t.Helper()
	c := New()
	clk := newFakeClock(c)
	c.ConfigureLeases(LeaseConfig{TTL: ttl, DeadAfter: dead})
	return c, clk
}

func TestLeaseStateTransitions(t *testing.T) {
	c, clk := leaseCtl(t, 10*time.Second, 20*time.Second)
	c.AddInstance("dpi-1", []uint16{1}, false)

	assertHealth := func(want HealthState) {
		t.Helper()
		if got, ok := c.InstanceHealth("dpi-1"); !ok || got != want {
			t.Fatalf("health = %v, %v; want %v", got, ok, want)
		}
	}

	assertHealth(Healthy)
	clk.advance(9 * time.Second)
	c.SweepLeases()
	assertHealth(Healthy)

	clk.advance(2 * time.Second) // 11s silent > TTL
	if f := c.SweepLeases(); len(f) != 0 {
		t.Fatalf("failovers at suspect stage: %+v", f)
	}
	assertHealth(Suspect)

	// A renewal recovers a Suspect instance.
	if err := c.RenewLease("dpi-1"); err != nil {
		t.Fatal(err)
	}
	assertHealth(Healthy)

	// Full silence until DeadAfter kills it.
	clk.advance(21 * time.Second)
	f := c.SweepLeases()
	assertHealth(Dead)
	if len(f) != 1 || f[0].Dead != "dpi-1" {
		t.Fatalf("failovers = %+v", f)
	}
	// With no survivors the chain is unassigned.
	if len(f[0].Unassigned) != 1 || f[0].Unassigned[0] != 1 {
		t.Fatalf("unassigned = %v", f[0].Unassigned)
	}

	// A dead instance's renewal is rejected until it re-hellos.
	if err := c.RenewLease("dpi-1"); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("dead renewal err = %v", err)
	}
	c.AddInstance("dpi-1", []uint16{1}, false)
	assertHealth(Healthy)

	if err := c.RenewLease("ghost"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("unknown renewal err = %v", err)
	}
}

func TestFailoverReassignsChains(t *testing.T) {
	c, clk := leaseCtl(t, 10*time.Second, 20*time.Second)
	c.AddInstance("dpi-a", []uint16{1, 2}, false)
	c.AddInstance("dpi-b", []uint16{2}, false)
	c.AddInstance("dpi-c", []uint16{3}, false)
	c.AddInstance("dpi-ded", nil, true) // dedicated: never a failover target

	// Only dpi-a goes silent.
	clk.advance(21 * time.Second)
	for _, id := range []string{"dpi-b", "dpi-c", "dpi-ded"} {
		if err := c.RenewLease(id); err != nil {
			t.Fatal(err)
		}
	}
	fs := c.SweepLeases()
	if len(fs) != 1 {
		t.Fatalf("failovers = %+v", fs)
	}
	f := fs[0]
	// Chain 2 goes to dpi-b (already serving it); chain 1 to the
	// least-loaded survivor.
	if f.Reassigned[2] != "dpi-b" {
		t.Errorf("chain 2 -> %s, want dpi-b", f.Reassigned[2])
	}
	if got := f.Reassigned[1]; got != "dpi-b" && got != "dpi-c" {
		t.Errorf("chain 1 -> %s, want a survivor", got)
	}
	if len(f.Unassigned) != 0 {
		t.Errorf("unassigned = %v", f.Unassigned)
	}

	// The dead instance's record no longer owns chains; the target does.
	snaps := c.TelemetrySnapshots()
	for _, s := range snaps {
		if s.ID == "dpi-a" && len(s.Chains) != 0 {
			t.Errorf("dead instance keeps chains %v", s.Chains)
		}
		if s.ID == "dpi-a" && s.Health != "dead" {
			t.Errorf("snapshot health = %q", s.Health)
		}
	}

	// A second sweep does not re-fail the same instance.
	clk.advance(time.Second)
	if fs := c.SweepLeases(); len(fs) != 0 {
		t.Fatalf("repeated failover: %+v", fs)
	}
}

func TestOnFailoverCallback(t *testing.T) {
	c, clk := leaseCtl(t, time.Second, 2*time.Second)
	c.AddInstance("dpi-1", []uint16{7}, false)
	c.AddInstance("dpi-2", nil, false)
	var got []Failover
	c.OnFailover(func(f Failover) { got = append(got, f) })
	clk.advance(3 * time.Second)
	if err := c.RenewLease("dpi-2"); err != nil {
		t.Fatal(err)
	}
	c.SweepLeases()
	if len(got) != 1 || got[0].Dead != "dpi-1" || got[0].Reassigned[7] != "dpi-2" {
		t.Fatalf("callback got %+v", got)
	}
}

func TestLeaseOverWire(t *testing.T) {
	ctl, srv := startServer(t)
	ctl.ConfigureLeases(LeaseConfig{TTL: 30 * time.Second})
	cl := dial(t, srv)
	if _, err := cl.InstanceHello(context.Background(), "dpi-1", nil, false); err != nil {
		t.Fatal(err)
	}
	ttl, _, err := cl.RenewLease(context.Background(), "dpi-1")
	if err != nil {
		t.Fatal(err)
	}
	if ttl != 30*time.Second {
		t.Errorf("ttl = %v", ttl)
	}
	// Renewal for an unknown instance is a rejection, not a transport
	// error, and must not be retried into a different answer.
	if _, _, err := cl.RenewLease(context.Background(), "ghost"); !IsRejection(err) {
		t.Errorf("unknown instance err = %v", err)
	}
}

func TestLeaseConfigNormalize(t *testing.T) {
	cases := []struct{ in, want LeaseConfig }{
		{LeaseConfig{}, LeaseConfig{TTL: DefaultLeaseConfig.TTL, DeadAfter: 2 * DefaultLeaseConfig.TTL}},
		{LeaseConfig{TTL: 4 * time.Second}, LeaseConfig{TTL: 4 * time.Second, DeadAfter: 8 * time.Second}},
		{LeaseConfig{TTL: 4 * time.Second, DeadAfter: time.Second}, LeaseConfig{TTL: 4 * time.Second, DeadAfter: 4 * time.Second}},
	}
	for _, tc := range cases {
		if got := tc.in.normalize(); got != tc.want {
			t.Errorf("normalize(%+v) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestStartLeaseMonitor(t *testing.T) {
	c := New()
	c.ConfigureLeases(LeaseConfig{TTL: time.Millisecond, DeadAfter: 2 * time.Millisecond})
	c.AddInstance("dpi-1", []uint16{1}, false)
	fired := make(chan Failover, 1)
	c.OnFailover(func(f Failover) {
		select {
		case fired <- f:
		default:
		}
	})
	stop := c.StartLeaseMonitor(time.Millisecond)
	defer stop()
	select {
	case f := <-fired:
		if f.Dead != "dpi-1" {
			t.Errorf("dead = %s", f.Dead)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("lease monitor never failed the silent instance over")
	}
	// Telemetry snapshot reflects the death.
	if h, _ := c.InstanceHealth("dpi-1"); h != Dead {
		t.Errorf("health = %v", h)
	}
}

// Retries reach the ctlproto.Telemetry path too: a snapshot report is
// idempotent by construction.
func TestTelemetryIdempotent(t *testing.T) {
	ctl, srv := startServer(t)
	cl := dial(t, srv)
	if _, err := cl.InstanceHello(context.Background(), "dpi-1", nil, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := cl.SendTelemetry(context.Background(), ctlproto.Telemetry{InstanceID: "dpi-1", Packets: 5}); err != nil {
			t.Fatal(err)
		}
	}
	if tel, ok := ctl.InstanceTelemetry("dpi-1"); !ok || tel.Packets != 5 {
		t.Errorf("telemetry = %+v, %v", tel, ok)
	}
}
