package controller

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveStateFileAtomic(t *testing.T) {
	orig, tag := populatedController(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := orig.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp files linger after a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.json" {
		t.Fatalf("directory contents after save: %v", entries)
	}

	restored := New()
	if err := restored.LoadStateFile(path); err != nil {
		t.Fatal(err)
	}
	if got := restored.ChainTags(); len(got) != 1 || got[0] != tag {
		t.Fatalf("restored chains = %v, want [%d]", got, tag)
	}
	// Restored instances carry a fresh lease, not a zero renewal time
	// that the first sweep would declare dead.
	if h, ok := restored.InstanceHealth("dpi-1"); !ok || h != Healthy {
		t.Fatalf("restored dpi-1 health = %v, %v", h, ok)
	}
	if fails := restored.SweepLeases(); len(fails) != 0 {
		t.Fatalf("first sweep after restore failed over %v", fails)
	}
}

// TestCrashRecovery simulates a controller that died mid-save: a torn
// temp file sits next to a valid snapshot. The snapshot must load
// untouched — rename atomicity means the torn write never became the
// state file — and a truncated state file must be rejected, not
// half-loaded.
func TestCrashRecovery(t *testing.T) {
	orig, tag := populatedController(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := orig.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}
	// The crash artifact: a save that got halfway through writing.
	torn := filepath.Join(dir, "state.json.tmp-123456")
	if err := os.WriteFile(torn, []byte(`{"version":1,"mboxes":[{"mbox`), 0o644); err != nil {
		t.Fatal(err)
	}

	restored := New()
	if err := restored.LoadStateFile(path); err != nil {
		t.Fatal(err)
	}
	if got := restored.ChainTags(); len(got) != 1 || got[0] != tag {
		t.Fatalf("restored chains = %v, want [%d]", got, tag)
	}

	// A truncated snapshot (crash during a non-atomic write, or disk
	// corruption) is rejected outright.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "truncated.json")
	if err := os.WriteFile(trunc, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := New()
	if err := fresh.LoadStateFile(trunc); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("truncated load err = %v, want ErrBadStateFile", err)
	}
	// The failed load left it usable as an empty controller.
	if err := fresh.LoadStateFile(path); err == nil {
		// Partial loads may have populated sets; either a clean load or
		// ErrNotEmpty is acceptable — what matters is no torn state that
		// claims to be the full snapshot.
		if got := fresh.ChainTags(); len(got) != 1 || got[0] != tag {
			t.Fatalf("recovered chains = %v, want [%d]", got, tag)
		}
	}
}

func TestSaveStateFilePersistsFailMode(t *testing.T) {
	c := New()
	if _, err := c.Register(reg("ips-1", "ips")); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.mboxes["ips-1"].reg.FailMode = "fail-closed"
	c.mu.Unlock()
	path := filepath.Join(t.TempDir(), "state.json")
	if err := c.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.LoadStateFile(path); err != nil {
		t.Fatal(err)
	}
	restored.mu.Lock()
	mode := restored.mboxes["ips-1"].reg.FailMode
	restored.mu.Unlock()
	if mode != "fail-closed" {
		t.Fatalf("restored FailMode = %q", mode)
	}
}
