package controller

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"dpiservice/internal/ctlproto"
)

// This file persists the controller's registration state so a restarted
// dpictl resumes with the same middleboxes, pattern sets, chain tags
// and instances — the control-plane durability a logically-centralized
// component needs (Section 4.1). The snapshot is JSON for the same
// reason the control protocol is: it is inspectable and the volumes are
// small (pattern sets are kilobytes to a few megabytes).

const stateVersion = 1

type stateFile struct {
	Version   int             `json:"version"`
	Mboxes    []stateMbox     `json:"mboxes"`
	Sets      []stateSet      `json:"sets"`
	Chains    []stateChain    `json:"chains"`
	NextTag   uint16          `json:"next_tag"`
	NextSet   int             `json:"next_set"`
	Instances []stateInstance `json:"instances"`
	// WireKey and the session-id table make controller-issued wire
	// tokens survive a restart: daemons holding old tokens keep
	// working against servers that reload the same key. Zero WireKey
	// (a pre-wire snapshot) keeps the freshly-generated key.
	WireKey    uint64        `json:"wire_key,omitempty"`
	NextWireID uint32        `json:"next_wire_id,omitempty"`
	WireIDs    []stateWireID `json:"wire_ids,omitempty"`
}

type stateWireID struct {
	PeerID  string `json:"peer_id"`
	Session uint32 `json:"session"`
}

type stateMbox struct {
	MboxID      string `json:"mbox_id"`
	Name        string `json:"name"`
	Type        string `json:"mbox_type"`
	Stateful    bool   `json:"stateful,omitempty"`
	ReadOnly    bool   `json:"read_only,omitempty"`
	StopAfter   int    `json:"stop_after,omitempty"`
	InheritFrom string `json:"inherit_from,omitempty"`
	FailMode    string `json:"fail_mode,omitempty"`
	SetType     string `json:"set_type"` // resolved set key
}

type stateSet struct {
	Type  string      `json:"type"`
	Index int         `json:"index"`
	Rules []stateRule `json:"rules"`
}

type stateRule struct {
	ID      int      `json:"id"`
	Content []byte   `json:"content,omitempty"`
	Regex   string   `json:"regex,omitempty"`
	Refs    []string `json:"refs"`
}

type stateChain struct {
	Tag     uint16   `json:"tag"`
	Members []string `json:"members"`
}

type stateInstance struct {
	ID        string   `json:"id"`
	Tags      []uint16 `json:"tags,omitempty"`
	Dedicated bool     `json:"dedicated,omitempty"`
}

// Errors of the persistence layer.
var (
	ErrNotEmpty     = errors.New("controller: LoadState requires an empty controller")
	ErrBadStateFile = errors.New("controller: malformed state file")
)

// SaveState writes a snapshot of the controller's configuration.
func (c *Controller) SaveState(w io.Writer) error {
	c.mu.Lock()
	st := stateFile{
		Version: stateVersion, NextTag: c.nextTag, NextSet: c.nextSet,
		WireKey: c.wireKey, NextWireID: c.nextWireID,
	}
	for id, sid := range c.wireIDs {
		st.WireIDs = append(st.WireIDs, stateWireID{PeerID: id, Session: sid})
	}
	sort.Slice(st.WireIDs, func(i, j int) bool { return st.WireIDs[i].PeerID < st.WireIDs[j].PeerID })
	for id, rec := range c.mboxes {
		st.Mboxes = append(st.Mboxes, stateMbox{
			MboxID: id, Name: rec.reg.Name, Type: rec.reg.Type,
			Stateful: rec.reg.Stateful, ReadOnly: rec.reg.ReadOnly,
			StopAfter: rec.reg.StopAfter, InheritFrom: rec.reg.InheritFrom,
			FailMode: rec.reg.FailMode,
			SetType:  rec.set.mboxType,
		})
	}
	sort.Slice(st.Mboxes, func(i, j int) bool { return st.Mboxes[i].MboxID < st.Mboxes[j].MboxID })
	for typ, set := range c.sets {
		ss := stateSet{Type: typ, Index: set.index}
		ids := make([]int, 0, len(set.rules))
		for id := range set.rules {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			r := set.rules[id]
			sr := stateRule{ID: id, Regex: r.regex}
			if r.content != "" {
				sr.Content = []byte(r.content)
			}
			for ref := range r.refs {
				sr.Refs = append(sr.Refs, ref)
			}
			sort.Strings(sr.Refs)
			ss.Rules = append(ss.Rules, sr)
		}
		st.Sets = append(st.Sets, ss)
	}
	sort.Slice(st.Sets, func(i, j int) bool { return st.Sets[i].Index < st.Sets[j].Index })
	for tag, members := range c.chains {
		st.Chains = append(st.Chains, stateChain{Tag: tag, Members: append([]string(nil), members...)})
	}
	sort.Slice(st.Chains, func(i, j int) bool { return st.Chains[i].Tag < st.Chains[j].Tag })
	for id, rec := range c.instances {
		st.Instances = append(st.Instances, stateInstance{ID: id, Tags: rec.chains, Dedicated: rec.dedicated})
	}
	sort.Slice(st.Instances, func(i, j int) bool { return st.Instances[i].ID < st.Instances[j].ID })
	c.mu.Unlock()

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// LoadState restores a snapshot into an empty controller.
func (c *Controller) LoadState(r io.Reader) error {
	var st stateFile
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("%w: %v", ErrBadStateFile, err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("%w: version %d", ErrBadStateFile, st.Version)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.mboxes) != 0 || len(c.chains) != 0 || len(c.sets) != 0 {
		return ErrNotEmpty
	}
	// Sets first.
	setsByType := make(map[string]*setRecord, len(st.Sets))
	for _, ss := range st.Sets {
		set := &setRecord{index: ss.Index, mboxType: ss.Type, rules: make(map[int]ruleEntry)}
		for _, sr := range ss.Rules {
			if len(sr.Refs) == 0 {
				return fmt.Errorf("%w: rule %d of set %q has no refs", ErrBadStateFile, sr.ID, ss.Type)
			}
			entry := ruleEntry{content: string(sr.Content), regex: sr.Regex, refs: make(map[string]bool)}
			for _, ref := range sr.Refs {
				entry.refs[ref] = true
			}
			set.rules[sr.ID] = entry
		}
		setsByType[ss.Type] = set
		c.sets[ss.Type] = set
	}
	// Middleboxes reference their sets.
	for _, sm := range st.Mboxes {
		set, ok := setsByType[sm.SetType]
		if !ok {
			return fmt.Errorf("%w: middlebox %s references unknown set %q", ErrBadStateFile, sm.MboxID, sm.SetType)
		}
		c.mboxes[sm.MboxID] = &mboxRecord{
			reg: ctlRegister(sm),
			set: set,
		}
	}
	// Rebuild the global dedup table from set rules.
	for _, set := range c.sets {
		for id, rule := range set.rules {
			if rule.content == "" {
				continue
			}
			for ref := range rule.refs {
				c.refGlobal(rule.content, ref, id)
			}
		}
	}
	for _, sc := range st.Chains {
		for _, m := range sc.Members {
			if _, ok := c.mboxes[m]; !ok {
				return fmt.Errorf("%w: chain %d member %s unknown", ErrBadStateFile, sc.Tag, m)
			}
		}
		c.chains[sc.Tag] = append([]string(nil), sc.Members...)
	}
	for _, si := range st.Instances {
		// A freshly-restored instance gets a full lease: the controller
		// just restarted and has heard from nobody yet, which is not the
		// instance's fault.
		c.instances[si.ID] = &instanceRecord{
			id: si.ID, chains: si.Tags, dedicated: si.Dedicated,
			lastRenewal: c.now(), health: Healthy,
		}
	}
	c.nextTag = st.NextTag
	c.nextSet = st.NextSet
	if st.WireKey != 0 {
		c.wireKey = st.WireKey
		if st.NextWireID > 0 {
			c.nextWireID = st.NextWireID
		}
		for _, w := range st.WireIDs {
			c.wireIDs[w.PeerID] = w.Session
		}
	}
	// Restored state bypassed the mutation paths; resync the size gauges.
	c.met.mboxes.Set(int64(len(c.mboxes)))
	c.met.globalPatterns.Set(int64(len(c.global)))
	c.met.chains.Set(int64(len(c.chains)))
	c.met.instances.Set(int64(len(c.instances)))
	c.healthGaugesLocked()
	c.bumpLocked()
	return nil
}

func ctlRegister(sm stateMbox) ctlproto.Register {
	return ctlproto.Register{
		MboxID: sm.MboxID, Name: sm.Name, Type: sm.Type,
		Stateful: sm.Stateful, ReadOnly: sm.ReadOnly,
		StopAfter: sm.StopAfter, InheritFrom: sm.InheritFrom,
		FailMode: sm.FailMode,
	}
}

// SaveStateFile atomically persists the controller snapshot to path: the
// snapshot is written to a temp file in the same directory, fsynced,
// and renamed over the target, so a crash mid-save leaves either the
// old snapshot or the new one — never a torn file. The directory entry
// is fsynced too, making the rename itself durable.
func (c *Controller) SaveStateFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := c.SaveState(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadStateFile restores a snapshot written by SaveStateFile. Leftover
// temp files from a crashed save are ignored (and never loaded: only
// the renamed target is read).
func (c *Controller) LoadStateFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.LoadState(f)
}
