package middlebox

import (
	"sync"

	"dpiservice/internal/core"
	"dpiservice/internal/packet"
)

// This file adds the remaining middlebox types of Table 1: data leakage
// prevention (Check Point DLP row) and network analytics / protocol
// identification (Qosmos row).

// DLPLogic is a data-leakage-prevention middlebox: its rules are
// typically regular expressions (credit card numbers, identifiers), so
// it watches for regex-confirmed results — pattern IDs at or above
// core.RegexReportBase — and blocks the flow once a leak is seen.
type DLPLogic struct {
	mu      sync.Mutex
	blocked map[packet.FiveTuple]bool

	Leaks   int64 // leak occurrences observed
	Blocked int64 // packets dropped on blocked flows
}

// NewDLPLogic returns an empty DLP.
func NewDLPLogic() *DLPLogic { return &DLPLogic{blocked: make(map[packet.FiveTuple]bool)} }

// OnResult implements Logic: any regex-originated match marks the flow;
// the matching packet and all later packets of the flow are dropped.
func (l *DLPLogic) OnResult(tuple packet.FiveTuple, entries []packet.Entry, _ []byte) bool {
	key := tuple.Canonical()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range entries {
		if int(e.Pattern) >= core.RegexReportBase {
			l.Leaks += int64(e.Count)
			l.blocked[key] = true
		}
	}
	if l.blocked[key] {
		l.Blocked++
		return false
	}
	return true
}

// FlowBlocked reports whether a flow has been quarantined.
func (l *DLPLogic) FlowBlocked(tuple packet.FiveTuple) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.blocked[tuple.Canonical()]
}

// AnalyticsLogic is a passive network-analytics middlebox (protocol
// identification): each pattern identifies an application protocol, and
// the logic tallies flows and bytes per protocol. It never drops.
type AnalyticsLogic struct {
	mu        sync.Mutex
	protoOf   map[uint16]string // rule ID -> protocol name
	flowProto map[packet.FiveTuple]string
	flows     map[string]int
	bytes     map[string]int64
}

// NewAnalyticsLogic maps rule IDs to protocol names.
func NewAnalyticsLogic(protocols map[uint16]string) *AnalyticsLogic {
	return &AnalyticsLogic{
		protoOf:   protocols,
		flowProto: make(map[packet.FiveTuple]string),
		flows:     make(map[string]int),
		bytes:     make(map[string]int64),
	}
}

// OnResult implements Logic.
func (l *AnalyticsLogic) OnResult(tuple packet.FiveTuple, entries []packet.Entry, frame []byte) bool {
	key := tuple.Canonical()
	l.mu.Lock()
	defer l.mu.Unlock()
	proto, known := l.flowProto[key]
	if !known {
		for _, e := range entries {
			if p, ok := l.protoOf[e.Pattern]; ok {
				proto = p
				l.flowProto[key] = p
				l.flows[p]++
				break
			}
		}
	}
	if proto != "" {
		l.bytes[proto] += int64(len(frame))
	}
	return true
}

// Flows returns per-protocol flow counts.
func (l *AnalyticsLogic) Flows() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int, len(l.flows))
	for k, v := range l.flows {
		out[k] = v
	}
	return out
}

// Bytes returns per-protocol byte counts.
func (l *AnalyticsLogic) Bytes() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.bytes))
	for k, v := range l.bytes {
		out[k] = v
	}
	return out
}
