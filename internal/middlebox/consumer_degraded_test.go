package middlebox

import (
	"testing"
	"time"

	"dpiservice/internal/packet"
	"dpiservice/internal/traffic"
)

func TestPolicyFromFailMode(t *testing.T) {
	cases := []struct {
		mode string
		want LossPolicy
	}{
		{"fail-open", FailOpen},
		{"fail-closed", FailClosed},
		{"", FailClosed},      // unset: safe default
		{"bogus", FailClosed}, // unknown: safe default
	}
	for _, c := range cases {
		if got := PolicyFromFailMode(c.mode); got != c.want {
			t.Errorf("PolicyFromFailMode(%q) = %v, want %v", c.mode, got, c.want)
		}
	}
}

// markedFrame builds an ECN-marked data frame: the consumer buffers it
// awaiting a result packet that, in these tests, never comes.
func markedFrame(t *testing.T, fb *traffic.FrameBuilder, payload string) []byte {
	t.Helper()
	f := fb.Build(tpl, []byte(payload))
	if err := packet.SetECNMark(f); err != nil {
		t.Fatal(err)
	}
	return f
}

func waitCounter(t *testing.T, what string, c interface{ Load() uint64 }, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Load() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s = %d, want >= %d", what, c.Load(), want)
}

func TestConsumerFailOpenTimeout(t *testing.T) {
	h := &fakeHost{name: "m"}
	n := NewConsumerNode(h, 0, NewCountLogic())
	stop := n.SetLossPolicy(FailOpen, 10*time.Millisecond)
	defer stop()

	var fb traffic.FrameBuilder
	h.inject(markedFrame(t, &fb, "orphaned"))
	waitCounter(t, "Unscanned", &n.Unscanned, 1)
	if got := len(h.drain()); got != 1 {
		t.Fatalf("forwarded %d frames, want 1", got)
	}
	if n.PendingPairs() != 0 {
		t.Errorf("PendingPairs = %d after flush", n.PendingPairs())
	}
	if n.DroppedUnscanned.Load() != 0 {
		t.Errorf("DroppedUnscanned = %d under FailOpen", n.DroppedUnscanned.Load())
	}
}

func TestConsumerFailClosedTimeout(t *testing.T) {
	h := &fakeHost{name: "m"}
	n := NewConsumerNode(h, 0, NewCountLogic())
	stop := n.SetLossPolicy(FailClosed, 10*time.Millisecond)
	defer stop()

	var fb traffic.FrameBuilder
	h.inject(markedFrame(t, &fb, "orphaned"))
	waitCounter(t, "DroppedUnscanned", &n.DroppedUnscanned, 1)
	if got := len(h.drain()); got != 0 {
		t.Fatalf("FailClosed forwarded %d frames, want 0", got)
	}
	if n.PendingPairs() != 0 {
		t.Errorf("PendingPairs = %d after flush", n.PendingPairs())
	}
	if n.Unscanned.Load() != 0 {
		t.Errorf("Unscanned = %d under FailClosed", n.Unscanned.Load())
	}
}

// A result arriving inside the timeout pairs normally: the janitor only
// acts on pairs the DPI service actually abandoned.
func TestConsumerResultBeatsJanitor(t *testing.T) {
	h := &fakeHost{name: "m"}
	logic := NewCountLogic()
	n := NewConsumerNode(h, 0, logic)
	stop := n.SetLossPolicy(FailClosed, time.Minute)
	defer stop()

	var fb traffic.FrameBuilder
	frame := markedFrame(t, &fb, "paired")
	var sum packet.Summary
	if err := packet.Summarize(frame, &sum); err != nil {
		t.Fatal(err)
	}
	h.inject(frame)
	h.inject(mkReportFrame(t, &packet.Report{Tuple: tpl, PacketID: uint32(sum.IPID)}))

	if got := len(h.drain()); got != 2 { // data frame + relayed result
		t.Fatalf("forwarded %d frames, want 2", got)
	}
	if n.DroppedUnscanned.Load() != 0 || n.Unscanned.Load() != 0 {
		t.Errorf("degraded counters moved: unscanned=%d dropped=%d",
			n.Unscanned.Load(), n.DroppedUnscanned.Load())
	}
	if logic.Total() != 0 {
		t.Errorf("Total = %d, want 0 (empty report)", logic.Total())
	}
}

// Buffer-overflow eviction honors the loss policy too: an enforcing
// middlebox must not fail open just because its pairing buffer filled.
func TestConsumerOverflowFailsClosed(t *testing.T) {
	h := &fakeHost{name: "m"}
	n := NewConsumerNode(h, 0, NewCountLogic())
	stop := n.SetLossPolicy(FailClosed, 0) // policy only, no janitor
	defer stop()

	var fb traffic.FrameBuilder
	for i := 0; i < maxWaiting+10; i++ {
		h.inject(markedFrame(t, &fb, "data"))
	}
	if n.DroppedUnscanned.Load() == 0 {
		t.Error("no fail-closed drops recorded on overflow")
	}
	if got := len(h.drain()); got != 0 {
		t.Errorf("FailClosed overflow forwarded %d frames", got)
	}
}
