package middlebox

import (
	"testing"

	"dpiservice/internal/core"
	"dpiservice/internal/packet"
)

func TestDLPLogicBlocksFlowOnRegexLeak(t *testing.T) {
	l := NewDLPLogic()
	// Exact-match results don't trigger DLP.
	if !l.OnResult(tpl, []packet.Entry{{Pattern: 5, Count: 1}}, nil) {
		t.Fatal("exact match treated as leak")
	}
	// A regex-confirmed match (ID >= RegexReportBase) marks the flow
	// and drops the packet.
	leak := []packet.Entry{{Pattern: uint16(core.RegexReportBase + 2), Count: 3}}
	if l.OnResult(tpl, leak, nil) {
		t.Fatal("leaking packet forwarded")
	}
	if l.Leaks != 3 {
		t.Errorf("Leaks = %d, want 3", l.Leaks)
	}
	// Later clean packets of the same flow (either direction) stay
	// blocked.
	if l.OnResult(tpl.Reverse(), nil, nil) {
		t.Error("blocked flow's reverse direction forwarded")
	}
	if !l.FlowBlocked(tpl) {
		t.Error("FlowBlocked = false")
	}
	// Other flows unaffected.
	other := tpl
	other.SrcPort = 9
	if !l.OnResult(other, nil, nil) {
		t.Error("unrelated flow blocked")
	}
	if l.Blocked != 2 {
		t.Errorf("Blocked = %d, want 2", l.Blocked)
	}
}

func TestAnalyticsLogicClassifiesFlows(t *testing.T) {
	l := NewAnalyticsLogic(map[uint16]string{0: "http", 1: "sip"})
	frame := make([]byte, 100)
	// First packet of flow A identifies http.
	l.OnResult(tpl, []packet.Entry{{Pattern: 0, Count: 1}}, frame)
	// Subsequent packets (no matches) still accrue bytes.
	l.OnResult(tpl, nil, frame)
	l.OnResult(tpl.Reverse(), nil, frame)
	// Flow B identifies sip.
	b := tpl
	b.SrcPort = 7
	l.OnResult(b, []packet.Entry{{Pattern: 1, Count: 1}}, frame)
	// Flow C never identifies.
	c := tpl
	c.SrcPort = 8
	l.OnResult(c, nil, frame)

	flows := l.Flows()
	if flows["http"] != 1 || flows["sip"] != 1 {
		t.Errorf("Flows = %v", flows)
	}
	bytes := l.Bytes()
	if bytes["http"] != 300 || bytes["sip"] != 100 {
		t.Errorf("Bytes = %v", bytes)
	}
	// A flow's protocol is pinned by its first identification.
	l.OnResult(tpl, []packet.Entry{{Pattern: 1, Count: 1}}, frame)
	if l.Flows()["sip"] != 1 {
		t.Error("flow re-classified")
	}
}
