package middlebox

import (
	"math/rand"
	"testing"
	"time"

	"dpiservice/internal/core"
	"dpiservice/internal/packet"
	"dpiservice/internal/patterns"
	"dpiservice/internal/reassembly"
	"dpiservice/internal/traffic"
)

// TestAdversarialReassemblyPipeline drives a full adversarial corpus —
// conflicting overlaps, bad-checksum/evil-bit/short-TTL poison,
// retransmission floods, reordering — through the DPI node's
// reassembly→scan pipeline under every overlap policy. Patterns planted
// outside ambiguous and poisoned ranges must always be detected (zero
// false negatives), and the evasion counters must surface in the
// engine's metrics registry.
func TestAdversarialReassemblyPipeline(t *testing.T) {
	pats := []string{"attack-signature-42"}
	mkCfg := func() core.Config {
		return core.Config{
			Profiles: []core.Profile{{ID: 0, Stateful: true, Patterns: patterns.FromStrings("adv", pats)}},
			Chains:   map[uint16][]int{1: {0}},
		}
	}

	// One corpus for all policies so results are comparable.
	rng := rand.New(rand.NewSource(21))
	ref := traffic.NewGenerator(traffic.Config{Seed: 22, Mix: traffic.HTTPMix}).PayloadN(8 << 10)
	sites := traffic.Plant(rng, ref, pats, 12)
	adv := traffic.Adversarial(rng, ref, traffic.AdvConfig{Fin: true})
	noisy := traffic.MergeRanges(append(append([]traffic.Range{}, adv.Ambiguous...), adv.Poisoned...))
	clean := 0
	for _, s := range sites {
		if !traffic.OverlapsAny(noisy, s) {
			clean++
		}
	}
	if clean == 0 {
		t.Fatal("corpus left no pattern site outside attacked ranges")
	}

	for _, p := range reassembly.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			r := newDPIRig(t, mkCfg())
			r.node.SetReassembly(1, true)
			r.node.SetNormalization(10, true)
			r.node.SetReassemblyConfig(reassembly.Config{Policy: p, DropSuspicious: true})

			var fb traffic.FrameBuilder
			const isn = 5000
			tag := func(frame []byte) []byte {
				tagged, err := packet.PushVLAN(frame, 1, 0)
				if err != nil {
					t.Fatal(err)
				}
				return tagged
			}
			r.inject(tag(fb.BuildSyn(tpl, isn)))
			for _, seg := range adv.Segments {
				o := traffic.AdvFrameOpts{Checksum: traffic.ChecksumGood, Fin: seg.Fin}
				switch {
				case seg.BadChecksum:
					o.Checksum = traffic.ChecksumBad
				case seg.Evil:
					o.Evil = true
				case seg.ShortTTL:
					o.TTL = 2
				}
				r.inject(tag(fb.BuildAdv(tpl, isn+1+uint32(seg.Offset), seg.Data, o)))
			}

			deadline := time.Now().Add(2 * time.Second)
			for r.node.Engine().Snapshot().Matches < uint64(clean) && time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
			}
			if got := r.node.Engine().Snapshot().Matches; got < uint64(clean) {
				t.Errorf("matches = %d, want at least the %d clean pattern sites", got, clean)
			}

			// The evasion counters are exported via the engine registry —
			// the same one /metrics serves.
			ms := r.node.Engine().Metrics().Snapshot()
			for _, name := range []string{
				"reassembly.drop_bad_checksum",
				"reassembly.suspicious_segments",
				"reassembly.drop_suspicious",
				"reassembly.overlap_conflicts",
			} {
				if v, ok := ms.Counter(name); !ok || v == 0 {
					t.Errorf("counter %s = %d (ok=%v), want > 0", name, v, ok)
				}
			}
			if v, _ := ms.Counter("reassembly.delivered_bytes"); v != uint64(len(ref)) {
				t.Errorf("delivered_bytes = %d, want %d (whole reference, nothing more)", v, len(ref))
			}
		})
	}
}
