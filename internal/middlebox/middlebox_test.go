package middlebox

import (
	"sync"
	"testing"

	"dpiservice/internal/core"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/packet"
	"dpiservice/internal/patterns"
	"dpiservice/internal/traffic"
)

// fakeHost collects sent frames and lets tests inject received ones.
type fakeHost struct {
	mu      sync.Mutex
	name    string
	handler func([]byte)
	sent    [][]byte
}

func (f *fakeHost) Name() string { return f.name }
func (f *fakeHost) SetHandler(fn func([]byte)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handler = fn
}
func (f *fakeHost) Send(frame []byte) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sent = append(f.sent, frame)
	return true
}
func (f *fakeHost) inject(frame []byte) {
	f.mu.Lock()
	fn := f.handler
	f.mu.Unlock()
	fn(frame)
}
func (f *fakeHost) drain() [][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.sent
	f.sent = nil
	return out
}

var tpl = packet.FiveTuple{
	Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2},
	SrcPort: 1000, DstPort: 80, Protocol: packet.IPProtoTCP,
}

func mkReportFrame(t *testing.T, rep *packet.Report) []byte {
	t.Helper()
	buf := packet.NewSerializeBuffer(32)
	err := packet.SerializeLayers(buf,
		&packet.Ethernet{EtherType: packet.EtherTypeReport},
		packet.Payload(rep.AppendEncoded(nil)),
	)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(buf.Bytes()))
	copy(out, buf.Bytes())
	return out
}

func TestConsumerUnmarkedPassThrough(t *testing.T) {
	h := &fakeHost{name: "m"}
	logic := NewCountLogic()
	NewConsumerNode(h, 0, logic)

	var fb traffic.FrameBuilder
	frame := fb.Build(tpl, []byte("clean"))
	h.inject(frame)
	sent := h.drain()
	if len(sent) != 1 {
		t.Fatalf("forwarded %d frames, want 1", len(sent))
	}
	if logic.Total() != 0 {
		t.Errorf("counted %d on clean packet", logic.Total())
	}
}

func TestConsumerPairsMarkedDataWithResult(t *testing.T) {
	h := &fakeHost{name: "m"}
	logic := NewCountLogic()
	n := NewConsumerNode(h, 2, logic)

	var fb traffic.FrameBuilder
	frame := fb.Build(tpl, []byte("has evil"))
	var sum packet.Summary
	if err := packet.Summarize(frame, &sum); err != nil {
		t.Fatal(err)
	}
	if err := packet.SetECNMark(frame); err != nil {
		t.Fatal(err)
	}

	h.inject(frame)
	if got := h.drain(); len(got) != 0 {
		t.Fatalf("marked frame forwarded before its result (%d frames)", len(got))
	}
	if n.PendingPairs() != 1 {
		t.Fatalf("PendingPairs = %d", n.PendingPairs())
	}

	var rep packet.Report
	rep.PacketID = uint32(sum.IPID)
	rep.AddMatch(2, 11, 8)
	rep.AddMatch(2, 11, 9)
	rep.AddMatch(3, 99, 1) // another middlebox's section: ignored
	h.inject(mkReportFrame(t, &rep))

	sent := h.drain()
	if len(sent) != 2 {
		t.Fatalf("forwarded %d frames, want data+result", len(sent))
	}
	// Data first, result second, preserving pairing downstream.
	var s0 packet.Summary
	if err := packet.Summarize(sent[0], &s0); err != nil || s0.IsReport {
		t.Error("first forwarded frame is not the data packet")
	}
	var s1 packet.Summary
	if err := packet.Summarize(sent[1], &s1); err != nil || !s1.IsReport {
		t.Error("second forwarded frame is not the result packet")
	}
	if logic.Total() != 2 {
		t.Errorf("Total = %d, want 2 (own section only)", logic.Total())
	}
	if n.PendingPairs() != 0 {
		t.Errorf("PendingPairs = %d after pairing", n.PendingPairs())
	}
	if got := logic.PerPattern()[11]; got != 2 {
		t.Errorf("per-pattern count = %d", got)
	}
}

func TestConsumerResultOnlyMode(t *testing.T) {
	h := &fakeHost{name: "m"}
	logic := NewCountLogic()
	NewConsumerNode(h, 1, logic)
	var rep packet.Report
	rep.PacketID = 123
	rep.Flags |= packet.FlagHasTuple
	rep.Tuple = tpl
	rep.AddMatch(1, 4, 10)
	h.inject(mkReportFrame(t, &rep))
	if logic.Total() != 1 {
		t.Errorf("Total = %d", logic.Total())
	}
	// Result forwarded downstream even without a paired data packet.
	if sent := h.drain(); len(sent) != 1 {
		t.Errorf("forwarded %d, want 1 (the result)", len(sent))
	}
}

func TestConsumerIPSDropsBothFrames(t *testing.T) {
	h := &fakeHost{name: "ips"}
	logic := NewIPSLogic(7)
	NewConsumerNode(h, 0, logic)

	var fb traffic.FrameBuilder
	frame := fb.Build(tpl, []byte("blocked content"))
	var sum packet.Summary
	_ = packet.Summarize(frame, &sum)
	_ = packet.SetECNMark(frame)
	h.inject(frame)

	var rep packet.Report
	rep.PacketID = uint32(sum.IPID)
	rep.AddMatch(0, 7, 5)
	h.inject(mkReportFrame(t, &rep))

	if sent := h.drain(); len(sent) != 0 {
		t.Errorf("IPS forwarded %d frames, want 0", len(sent))
	}
	if logic.Drops.Load() != 1 {
		t.Errorf("Drops = %d", logic.Drops.Load())
	}
}

func TestConsumerOverflowFailsOpen(t *testing.T) {
	h := &fakeHost{name: "m"}
	n := NewConsumerNode(h, 0, NewCountLogic())
	var fb traffic.FrameBuilder
	for i := 0; i < maxWaiting+10; i++ {
		f := fb.Build(tpl, []byte("data"))
		_ = packet.SetECNMark(f)
		h.inject(f)
	}
	if n.PendingPairs() > maxWaiting {
		t.Errorf("PendingPairs = %d exceeds bound", n.PendingPairs())
	}
	if n.Unpaired.Load() == 0 {
		t.Error("no fail-open forwards recorded")
	}
	if len(h.drain()) == 0 {
		t.Error("overflowed frames were not forwarded")
	}
}

func TestLegacyNodeScansItself(t *testing.T) {
	h := &fakeHost{name: "legacy"}
	cfg := core.Config{
		Profiles: []core.Profile{{ID: 0, Patterns: patterns.FromStrings("p", []string{"attack"})}},
		Chains:   map[uint16][]int{1: {0}},
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logic := NewCountLogic()
	n := NewLegacyNode(h, eng, 1, 0, logic)

	var fb traffic.FrameBuilder
	h.inject(fb.Build(tpl, []byte("an attack here")))
	if logic.Total() != 1 {
		t.Errorf("Total = %d", logic.Total())
	}
	if len(h.drain()) != 1 {
		t.Error("legacy node did not forward")
	}
	if n.DataPackets.Load() != 1 {
		t.Errorf("DataPackets = %d", n.DataPackets.Load())
	}
}

func TestShaperLogic(t *testing.T) {
	l := NewShaperLogic(100)
	frame := make([]byte, 60)
	// Unmatched flow: never shaped.
	for i := 0; i < 5; i++ {
		if !l.OnResult(tpl, nil, frame) {
			t.Fatal("unmatched flow shaped")
		}
	}
	// Matched flow: budget consumed, then dropped.
	matched := tpl
	matched.SrcPort = 2222
	if !l.OnResult(matched, []packet.Entry{{Pattern: 1, Pos: 1, Count: 1}}, frame) {
		t.Fatal("first matched packet dropped (within budget)")
	}
	if l.OnResult(matched, nil, frame) {
		t.Error("second packet (120 bytes total) not shaped over 100-byte budget")
	}
	if l.Shaped.Load() != 1 {
		t.Errorf("Shaped = %d", l.Shaped.Load())
	}
}

func TestLBLogic(t *testing.T) {
	l := NewLBLogic("default", map[uint16]string{1: "video-pool", 2: "api-pool"})
	l.OnResult(tpl, []packet.Entry{{Pattern: 2, Count: 1}}, nil)
	if b, _ := l.BackendOf(tpl); b != "api-pool" {
		t.Errorf("backend = %q", b)
	}
	// Pinned: later different matches don't move the flow.
	l.OnResult(tpl, []packet.Entry{{Pattern: 1, Count: 1}}, nil)
	if b, _ := l.BackendOf(tpl.Reverse()); b != "api-pool" {
		t.Errorf("reverse-direction backend = %q (flow pinning must be symmetric)", b)
	}
	other := tpl
	other.SrcPort = 7777
	l.OnResult(other, nil, nil)
	if b, _ := l.BackendOf(other); b != "default" {
		t.Errorf("unmatched backend = %q", b)
	}
	if len(l.Assignments()) != 2 {
		t.Errorf("assignments = %v", l.Assignments())
	}
}

func TestFlowKeyRoundTrip(t *testing.T) {
	k := FlowKeyOf(tpl)
	got, ok := TupleOf(k)
	if !ok || got != tpl {
		t.Errorf("round trip = %+v, %v", got, ok)
	}
	for _, bad := range []ctlproto.FlowKey{
		{Src: "1.2.3", Dst: "1.2.3.4"},
		{Src: "1.2.3.4.5", Dst: "1.2.3.4"},
		{Src: "a.b.c.d", Dst: "1.2.3.4"},
		{Src: "256.1.1.1", Dst: "1.2.3.4"},
		{Src: "1..2.3", Dst: "1.2.3.4"},
	} {
		if _, ok := TupleOf(bad); ok {
			t.Errorf("TupleOf(%+v) accepted", bad)
		}
	}
}
