package middlebox

import (
	"sync"
	"sync/atomic"

	"dpiservice/internal/packet"
)

// Logic is the middlebox-internal rule logic that consumes DPI results:
// "The DPI service responsibility is only to indicate appearances of
// patterns, while resolving the logic behind a condition and performing
// the action itself is the middlebox's responsibility" (Section 4.1).
type Logic interface {
	// OnResult is invoked with the middlebox's section of a match
	// report (nil when the packet had no matches for this middlebox)
	// and the data frame (nil for a read-only middlebox in result-only
	// mode). It returns false to drop the packet (an IPS action).
	OnResult(tuple packet.FiveTuple, entries []packet.Entry, frame []byte) (forward bool)
}

// ConsumerNode is a middlebox that consumes DPI-service results instead
// of scanning: the paper's sample virtual middlebox application
// (Section 6.1). It pairs each ECN-marked data packet with the result
// packet that follows it (by IPv4 ID), invokes its Logic, and forwards
// both onward so downstream chain members can do the same.
type ConsumerNode struct {
	hostIface
	Set   uint8 // pattern-set index assigned at registration
	Logic Logic
	// StripShim marks the last middlebox of an inline-results chain
	// (Section 4.2, option 1): it removes the report shim and forwards
	// the original packet, re-tagged so the egress rule still matches.
	StripShim bool

	mu      sync.Mutex
	waiting map[uint32]pending // IPID -> data frame awaiting its result
	order   []uint32           // FIFO of waiting keys for bounded memory

	// Counters.
	DataPackets   atomic.Uint64
	ResultPackets atomic.Uint64
	RulesReported atomic.Uint64
	Dropped       atomic.Uint64
	Unpaired      atomic.Uint64
}

type pending struct {
	frame []byte
	tuple packet.FiveTuple
}

// maxWaiting bounds the pairing buffer; an overflow forwards the oldest
// frame without results (fail-open).
const maxWaiting = 1024

// hostIface is the part of *netsim.Host the nodes use; tests may supply
// fakes.
type hostIface interface {
	SetHandler(func([]byte))
	Send([]byte) bool
	Name() string
}

// NewConsumerNode wraps a host into a result-consuming middlebox for
// the given pattern set.
func NewConsumerNode(host hostIface, set uint8, logic Logic) *ConsumerNode {
	n := &ConsumerNode{hostIface: host, Set: set, Logic: logic, waiting: make(map[uint32]pending)}
	host.SetHandler(n.handleFrame)
	return n
}

func (n *ConsumerNode) handleFrame(frame []byte) {
	var sum packet.Summary
	if err := packet.Summarize(frame, &sum); err != nil {
		n.Send(frame)
		return
	}
	if sum.IsReport {
		n.handleReport(frame, sum.Payload, sum.VLANID)
		return
	}
	n.DataPackets.Add(1)
	if !sum.ECNMarked {
		// No result packet follows: process immediately with no
		// matches.
		n.finish(sum.Tuple, nil, frame)
		return
	}
	// Marked: hold until the result packet arrives.
	n.mu.Lock()
	key := uint32(sum.IPID)
	if len(n.waiting) >= maxWaiting {
		n.evictOldestLocked()
	}
	n.waiting[key] = pending{frame: frame, tuple: sum.Tuple}
	n.order = append(n.order, key)
	n.mu.Unlock()
}

func (n *ConsumerNode) evictOldestLocked() {
	for len(n.order) > 0 {
		k := n.order[0]
		n.order = n.order[1:]
		if p, ok := n.waiting[k]; ok {
			delete(n.waiting, k)
			n.Unpaired.Add(1)
			// Fail open: forward without results.
			n.mu.Unlock()
			n.finish(p.tuple, nil, p.frame)
			n.mu.Lock()
			return
		}
	}
}

func (n *ConsumerNode) handleReport(frame, body []byte, tag uint16) {
	n.ResultPackets.Add(1)
	var rep packet.Report
	inner, hasInner, err := SplitInline(body, &rep)
	if err != nil {
		n.Send(frame) // pass malformed reports along untouched
		return
	}
	var entries []packet.Entry
	if sec := rep.SectionFor(n.Set); sec != nil {
		entries = sec.Entries
		for _, e := range sec.Entries {
			n.RulesReported.Add(uint64(e.Count))
		}
	}
	if hasInner {
		// Inline shim frame (Section 4.2, option 1): data and results
		// travel together.
		n.DataPackets.Add(1)
		forward := true
		if n.Logic != nil {
			forward = n.Logic.OnResult(rep.Tuple, entries, inner)
		}
		if !forward {
			n.Dropped.Add(1)
			return
		}
		if n.StripShim {
			// Last middlebox: restore the original packet, keeping
			// the tag for the egress rule.
			bare := RebuildInnerFrame(packet.MAC{}, packet.MAC{}, inner)
			if tagged, err := packet.PushVLAN(bare, tag, 0); err == nil {
				n.Send(tagged)
			}
			return
		}
		n.Send(frame)
		return
	}
	// Pair with the buffered data packet.
	n.mu.Lock()
	p, ok := n.waiting[rep.PacketID]
	if ok {
		delete(n.waiting, rep.PacketID)
	}
	n.mu.Unlock()
	if !ok {
		// Result-only mode, or the data packet was dropped upstream:
		// consume the result standalone.
		if n.Logic != nil {
			n.Logic.OnResult(rep.Tuple, entries, nil)
		}
		n.Send(frame) // pass the result to downstream middleboxes
		return
	}
	forward := n.finish(p.tuple, entries, p.frame)
	if forward {
		// Data was forwarded; send the result right behind it for the
		// next middlebox on the chain.
		n.Send(frame)
	}
}

// finish runs the logic and forwards the data frame unless dropped.
func (n *ConsumerNode) finish(tuple packet.FiveTuple, entries []packet.Entry, frame []byte) bool {
	forward := true
	if n.Logic != nil {
		forward = n.Logic.OnResult(tuple, entries, frame)
	}
	if !forward {
		n.Dropped.Add(1)
		return false
	}
	n.Send(frame)
	return true
}

// PendingPairs reports the number of data packets awaiting results.
func (n *ConsumerNode) PendingPairs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.waiting)
}
