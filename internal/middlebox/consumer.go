package middlebox

import (
	"sync"
	"sync/atomic"
	"time"

	"dpiservice/internal/packet"
	"dpiservice/internal/trace"
)

// LossPolicy selects a consumer middlebox's degraded mode when DPI
// results stop arriving (a dead, crashed or partitioned DPI instance):
// every ECN-marked data packet promises a result packet, so a pairing
// buffer that only ages means the instance is gone.
type LossPolicy int32

const (
	// FailOpen forwards timed-out packets unscanned (counted in
	// Unscanned) — the monitoring posture: an IDS prefers passing
	// traffic it could not inspect over an outage.
	FailOpen LossPolicy = iota
	// FailClosed drops timed-out packets (counted in DroppedUnscanned) —
	// the enforcing posture: an IPS, AV or L7 firewall must not let
	// unscanned traffic through.
	FailClosed
)

// PolicyFromFailMode maps a ctlproto Register.FailMode string onto a
// LossPolicy; anything but "fail-open" is the safe FailClosed.
func PolicyFromFailMode(mode string) LossPolicy {
	if mode == "fail-open" {
		return FailOpen
	}
	return FailClosed
}

// Logic is the middlebox-internal rule logic that consumes DPI results:
// "The DPI service responsibility is only to indicate appearances of
// patterns, while resolving the logic behind a condition and performing
// the action itself is the middlebox's responsibility" (Section 4.1).
type Logic interface {
	// OnResult is invoked with the middlebox's section of a match
	// report (nil when the packet had no matches for this middlebox)
	// and the data frame (nil for a read-only middlebox in result-only
	// mode). It returns false to drop the packet (an IPS action).
	OnResult(tuple packet.FiveTuple, entries []packet.Entry, frame []byte) (forward bool)
}

// ConsumerNode is a middlebox that consumes DPI-service results instead
// of scanning: the paper's sample virtual middlebox application
// (Section 6.1). It pairs each ECN-marked data packet with the result
// packet that follows it (by IPv4 ID), invokes its Logic, and forwards
// both onward so downstream chain members can do the same.
type ConsumerNode struct {
	hostIface
	Set   uint8 // pattern-set index assigned at registration
	Logic Logic
	// StripShim marks the last middlebox of an inline-results chain
	// (Section 4.2, option 1): it removes the report shim and forwards
	// the original packet, re-tagged so the egress rule still matches.
	StripShim bool

	mu      sync.Mutex
	waiting map[uint32]pending // IPID -> data frame awaiting its result
	order   []uint32           // FIFO of waiting keys for bounded memory

	// policy is the degraded mode applied to packets whose results never
	// arrive (buffer overflow, or janitor timeout when armed via
	// SetLossPolicy). Defaults to FailOpen, the pre-failover behavior.
	policy atomic.Int32

	// Counters.
	DataPackets   atomic.Uint64
	ResultPackets atomic.Uint64
	RulesReported atomic.Uint64
	Dropped       atomic.Uint64
	Unpaired      atomic.Uint64
	// Unscanned counts packets forwarded without results under FailOpen;
	// DroppedUnscanned counts packets discarded under FailClosed. Both
	// only move while the DPI service is failing this middlebox.
	Unscanned        atomic.Uint64
	DroppedUnscanned atomic.Uint64

	// Flight is the optional flight recorder: every degraded packet
	// (forwarded or dropped unscanned) is recorded so a post-mortem
	// dump shows which flows lost coverage during a failover. Set once
	// before traffic.
	Flight *trace.Flight
}

type pending struct {
	frame []byte
	tuple packet.FiveTuple
	at    time.Time
}

// maxWaiting bounds the pairing buffer; an overflow forwards the oldest
// frame without results (fail-open).
const maxWaiting = 1024

// hostIface is the part of *netsim.Host the nodes use; tests may supply
// fakes.
type hostIface interface {
	SetHandler(func([]byte))
	Send([]byte) bool
	Name() string
}

// NewConsumerNode wraps a host into a result-consuming middlebox for
// the given pattern set.
func NewConsumerNode(host hostIface, set uint8, logic Logic) *ConsumerNode {
	n := &ConsumerNode{hostIface: host, Set: set, Logic: logic, waiting: make(map[uint32]pending)}
	host.SetHandler(n.handleFrame)
	return n
}

func (n *ConsumerNode) handleFrame(frame []byte) {
	var sum packet.Summary
	if err := packet.Summarize(frame, &sum); err != nil {
		n.Send(frame)
		return
	}
	if sum.IsReport {
		n.handleReport(frame, sum.Payload, sum.VLANID)
		return
	}
	n.DataPackets.Add(1)
	if !sum.ECNMarked {
		// No result packet follows: process immediately with no
		// matches.
		n.finish(sum.Tuple, nil, frame)
		return
	}
	// Marked: hold until the result packet arrives.
	n.mu.Lock()
	key := uint32(sum.IPID)
	var evicted pending
	hasEvicted := false
	if len(n.waiting) >= maxWaiting {
		evicted, hasEvicted = n.evictOldestLocked()
	}
	n.waiting[key] = pending{frame: frame, tuple: sum.Tuple, at: time.Now()}
	n.order = append(n.order, key)
	n.mu.Unlock()
	// Degrade outside the lock: it forwards or drops a frame, which
	// must never run under mu. Handing the evicted entry out (instead
	// of the old unlock-degrade-relock dance inside evictOldestLocked)
	// keeps the critical section contiguous, so the capacity check and
	// the insert can no longer interleave with another handleFrame.
	if hasEvicted {
		n.degrade(evicted)
	}
}

// evictOldestLocked pops the oldest live entry from the pairing buffer
// and returns it for the caller to degrade after releasing mu.
//
//dpi:locked(mu)
func (n *ConsumerNode) evictOldestLocked() (pending, bool) {
	for len(n.order) > 0 {
		k := n.order[0]
		n.order = n.order[1:]
		if p, ok := n.waiting[k]; ok {
			delete(n.waiting, k)
			n.Unpaired.Add(1)
			return p, true
		}
	}
	return pending{}, false
}

// LossPolicyValue reports the node's current degraded mode.
func (n *ConsumerNode) LossPolicyValue() LossPolicy { return LossPolicy(n.policy.Load()) }

// SetLossPolicy sets the degraded mode and, when resultTimeout > 0,
// starts a janitor that applies it to buffered data packets whose
// result packet has not arrived within resultTimeout — the signal that
// the DPI instance on this chain died with packets in flight. The
// returned stop function halts the janitor (idempotent).
func (n *ConsumerNode) SetLossPolicy(p LossPolicy, resultTimeout time.Duration) (stop func()) {
	n.policy.Store(int32(p))
	if resultTimeout <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	interval := resultTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				n.flushAged(time.Now().Add(-resultTimeout))
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// flushAged applies the loss policy to every buffered pair older than
// cutoff.
func (n *ConsumerNode) flushAged(cutoff time.Time) {
	n.mu.Lock()
	var aged []pending
	for len(n.order) > 0 {
		k := n.order[0]
		p, ok := n.waiting[k]
		if !ok {
			n.order = n.order[1:]
			continue
		}
		if p.at.After(cutoff) {
			break // FIFO: everything behind is younger
		}
		delete(n.waiting, k)
		n.order = n.order[1:]
		aged = append(aged, p)
	}
	n.mu.Unlock()
	for _, p := range aged {
		n.degrade(p)
	}
}

// degrade disposes of one data packet whose result is not coming.
func (n *ConsumerNode) degrade(p pending) {
	if n.LossPolicyValue() == FailClosed {
		n.DroppedUnscanned.Add(1)
		n.Flight.Record(trace.EvUnscanned, p.tuple.FastHash(), 1)
		return
	}
	n.Unscanned.Add(1)
	n.Flight.Record(trace.EvUnscanned, p.tuple.FastHash(), 0)
	n.finish(p.tuple, nil, p.frame)
}

func (n *ConsumerNode) handleReport(frame, body []byte, tag uint16) {
	n.ResultPackets.Add(1)
	var rep packet.Report
	inner, hasInner, err := SplitInline(body, &rep)
	if err != nil {
		n.Send(frame) // pass malformed reports along untouched
		return
	}
	var entries []packet.Entry
	if sec := rep.SectionFor(n.Set); sec != nil {
		entries = sec.Entries
		for _, e := range sec.Entries {
			n.RulesReported.Add(uint64(e.Count))
		}
	}
	if hasInner {
		// Inline shim frame (Section 4.2, option 1): data and results
		// travel together.
		n.DataPackets.Add(1)
		forward := true
		if n.Logic != nil {
			forward = n.Logic.OnResult(rep.Tuple, entries, inner)
		}
		if !forward {
			n.Dropped.Add(1)
			return
		}
		if n.StripShim {
			// Last middlebox: restore the original packet, keeping
			// the tag for the egress rule.
			bare := RebuildInnerFrame(packet.MAC{}, packet.MAC{}, inner)
			if tagged, err := packet.PushVLAN(bare, tag, 0); err == nil {
				n.Send(tagged)
			}
			return
		}
		n.Send(frame)
		return
	}
	// Pair with the buffered data packet.
	n.mu.Lock()
	p, ok := n.waiting[rep.PacketID]
	if ok {
		delete(n.waiting, rep.PacketID)
	}
	n.mu.Unlock()
	if !ok {
		// Result-only mode, or the data packet was dropped upstream:
		// consume the result standalone.
		if n.Logic != nil {
			n.Logic.OnResult(rep.Tuple, entries, nil)
		}
		n.Send(frame) // pass the result to downstream middleboxes
		return
	}
	forward := n.finish(p.tuple, entries, p.frame)
	if forward {
		// Data was forwarded; send the result right behind it for the
		// next middlebox on the chain.
		n.Send(frame)
	}
}

// finish runs the logic and forwards the data frame unless dropped.
func (n *ConsumerNode) finish(tuple packet.FiveTuple, entries []packet.Entry, frame []byte) bool {
	forward := true
	if n.Logic != nil {
		forward = n.Logic.OnResult(tuple, entries, frame)
	}
	if !forward {
		n.Dropped.Add(1)
		return false
	}
	n.Send(frame)
	return true
}

// PendingPairs reports the number of data packets awaiting results.
func (n *ConsumerNode) PendingPairs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.waiting)
}
