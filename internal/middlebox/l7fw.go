package middlebox

import (
	"strings"
	"sync"
	"sync/atomic"

	"dpiservice/internal/httpmsg"
	"dpiservice/internal/packet"
)

// L7FirewallLogic is an application-layer firewall (Table 1's "L7
// Firewall / ModSecurity" row): it combines HTTP structure — method,
// path, Host — with the DPI service's pattern results. A request is
// blocked when it violates a structural rule, or when a DPI rule listed
// in BlockOnRules matched anywhere in the packet. Once a flow is
// blocked, its remaining packets are dropped too.
type L7FirewallLogic struct {
	// BlockMethods drops requests using any of these methods.
	BlockMethods []string
	// BlockPathPrefixes drops requests whose path starts with any of
	// these prefixes.
	BlockPathPrefixes []string
	// BlockHosts drops requests to these Host header values.
	BlockHosts []string
	// BlockOnRules drops packets for which the DPI service reported
	// any of these rule IDs.
	BlockOnRules []uint16

	mu      sync.Mutex
	blocked map[packet.FiveTuple]bool

	Requests atomic.Uint64
	Blocked  atomic.Uint64
}

// NewL7FirewallLogic returns an empty firewall; configure the Block*
// fields before traffic flows.
func NewL7FirewallLogic() *L7FirewallLogic {
	return &L7FirewallLogic{blocked: make(map[packet.FiveTuple]bool)}
}

// OnResult implements Logic.
func (l *L7FirewallLogic) OnResult(tuple packet.FiveTuple, entries []packet.Entry, frame []byte) bool {
	key := tuple.Canonical()
	l.mu.Lock()
	alreadyBlocked := l.blocked[key]
	l.mu.Unlock()
	if alreadyBlocked {
		l.Blocked.Add(1)
		return false
	}
	if l.violatesRules(entries) || l.violatesHTTP(frame) {
		l.mu.Lock()
		l.blocked[key] = true
		l.mu.Unlock()
		l.Blocked.Add(1)
		return false
	}
	return true
}

func (l *L7FirewallLogic) violatesRules(entries []packet.Entry) bool {
	for _, e := range entries {
		for _, r := range l.BlockOnRules {
			if e.Pattern == r {
				return true
			}
		}
	}
	return false
}

func (l *L7FirewallLogic) violatesHTTP(frame []byte) bool {
	if frame == nil {
		return false
	}
	var sum packet.Summary
	if packet.Summarize(frame, &sum) != nil || !httpmsg.LooksLikeRequest(sum.Payload) {
		return false
	}
	req, err := httpmsg.ParseRequest(sum.Payload)
	if req == nil || (err != nil && err != httpmsg.ErrIncomplete) {
		return false
	}
	l.Requests.Add(1)
	for _, m := range l.BlockMethods {
		if req.Method == m {
			return true
		}
	}
	path := req.Path()
	for _, p := range l.BlockPathPrefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	host := req.Host()
	for _, h := range l.BlockHosts {
		if strings.EqualFold(host, h) {
			return true
		}
	}
	return false
}

// FlowBlocked reports whether a flow has been blocked.
func (l *L7FirewallLogic) FlowBlocked(tuple packet.FiveTuple) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.blocked[tuple.Canonical()]
}
