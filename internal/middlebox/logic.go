package middlebox

import (
	"sync"
	"sync/atomic"

	"dpiservice/internal/packet"
)

// This file provides sample rule logics for the middlebox types of
// Table 1. Each consumes match results; none scans.

// CountLogic counts reported rule occurrences per pattern — the paper's
// sample middlebox application "only counts the total number of rules
// that were reported to it" (Section 6.1).
type CountLogic struct {
	total atomic.Uint64
	mu    sync.Mutex
	byPat map[uint16]uint64
}

// NewCountLogic returns an empty counter.
func NewCountLogic() *CountLogic { return &CountLogic{byPat: make(map[uint16]uint64)} }

// OnResult implements Logic.
func (l *CountLogic) OnResult(_ packet.FiveTuple, entries []packet.Entry, _ []byte) bool {
	if len(entries) == 0 {
		return true
	}
	l.mu.Lock()
	for _, e := range entries {
		l.total.Add(uint64(e.Count))
		l.byPat[e.Pattern] += uint64(e.Count)
	}
	l.mu.Unlock()
	return true
}

// Total reports the count of rule occurrences seen.
func (l *CountLogic) Total() uint64 { return l.total.Load() }

// PerPattern returns a copy of the per-pattern counters.
func (l *CountLogic) PerPattern() map[uint16]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[uint16]uint64, len(l.byPat))
	for k, v := range l.byPat {
		out[k] = v
	}
	return out
}

// IPSLogic drops packets matching any of the given rule IDs — an
// intrusion prevention system, the paper's example of a middlebox that
// is NOT read-only (Section 4.1).
type IPSLogic struct {
	blocked map[uint16]bool
	Drops   atomic.Uint64
}

// NewIPSLogic blocks the given rule IDs.
func NewIPSLogic(blockRules ...uint16) *IPSLogic {
	m := make(map[uint16]bool, len(blockRules))
	for _, r := range blockRules {
		m[r] = true
	}
	return &IPSLogic{blocked: m}
}

// OnResult implements Logic.
func (l *IPSLogic) OnResult(_ packet.FiveTuple, entries []packet.Entry, _ []byte) bool {
	for _, e := range entries {
		if l.blocked[e.Pattern] {
			l.Drops.Add(1)
			return false
		}
	}
	return true
}

// ShaperLogic demotes flows that matched application-identifying
// patterns — a traffic shaper in the style of Table 1's Blue Coat
// PacketShaper. Matched flows are remembered and their further packets
// counted against a byte budget; packets beyond it are dropped
// (a crude but honest shaping action).
type ShaperLogic struct {
	mu        sync.Mutex
	flows     map[packet.FiveTuple]uint64 // bytes forwarded since match
	BudgetB   uint64
	Shaped    atomic.Uint64
	Forwarded atomic.Uint64
}

// NewShaperLogic creates a shaper allowing budgetBytes per matched flow.
func NewShaperLogic(budgetBytes uint64) *ShaperLogic {
	return &ShaperLogic{flows: make(map[packet.FiveTuple]uint64), BudgetB: budgetBytes}
}

// OnResult implements Logic.
func (l *ShaperLogic) OnResult(tuple packet.FiveTuple, entries []packet.Entry, frame []byte) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	used, tracked := l.flows[tuple.Canonical()]
	if len(entries) > 0 && !tracked {
		l.flows[tuple.Canonical()] = 0
		tracked = true
	}
	if !tracked {
		l.Forwarded.Add(1)
		return true
	}
	used += uint64(len(frame))
	l.flows[tuple.Canonical()] = used
	if used > l.BudgetB {
		l.Shaped.Add(1)
		return false
	}
	l.Forwarded.Add(1)
	return true
}

// LBLogic is an L7 load balancer: each pattern identifies an
// application/URL class mapped to a backend; flows are pinned to the
// backend of their first matched class (Table 1's F5/A10 row).
type LBLogic struct {
	mu       sync.Mutex
	backends map[uint16]string
	pinned   map[packet.FiveTuple]string
	Default  string
}

// NewLBLogic maps rule IDs to backend names.
func NewLBLogic(defaultBackend string, routes map[uint16]string) *LBLogic {
	return &LBLogic{backends: routes, pinned: make(map[packet.FiveTuple]string), Default: defaultBackend}
}

// OnResult implements Logic.
func (l *LBLogic) OnResult(tuple packet.FiveTuple, entries []packet.Entry, _ []byte) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := tuple.Canonical()
	if _, done := l.pinned[key]; !done {
		backend := l.Default
		for _, e := range entries {
			if b, ok := l.backends[e.Pattern]; ok {
				backend = b
				break
			}
		}
		l.pinned[key] = backend
	}
	return true
}

// BackendOf reports the backend a flow is pinned to.
func (l *LBLogic) BackendOf(tuple packet.FiveTuple) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.pinned[tuple.Canonical()]
	return b, ok
}

// Assignments returns a copy of all pinnings.
func (l *LBLogic) Assignments() map[packet.FiveTuple]string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[packet.FiveTuple]string, len(l.pinned))
	for k, v := range l.pinned {
		out[k] = v
	}
	return out
}
