package middlebox

import (
	"sync/atomic"

	"dpiservice/internal/core"
	"dpiservice/internal/packet"
)

// LegacyNode is a middlebox that performs its own DPI — the baseline
// architecture of Figure 1(a) and the comparison system of Section 6.1
// ("we also implement an application that does both [DPI and rule
// counting] and use it as a baseline"). It owns a single-set engine and
// scans every packet itself before applying its logic.
type LegacyNode struct {
	hostIface
	Engine *core.Engine
	Tag    uint16 // the chain tag the engine is keyed by
	Set    uint8
	Logic  Logic

	DataPackets   atomic.Uint64
	RulesReported atomic.Uint64
	Dropped       atomic.Uint64
}

// NewLegacyNode wraps a host into a self-scanning middlebox.
func NewLegacyNode(host hostIface, engine *core.Engine, tag uint16, set uint8, logic Logic) *LegacyNode {
	n := &LegacyNode{hostIface: host, Engine: engine, Tag: tag, Set: set, Logic: logic}
	host.SetHandler(n.handleFrame)
	return n
}

func (n *LegacyNode) handleFrame(frame []byte) {
	var sum packet.Summary
	if err := packet.Summarize(frame, &sum); err != nil || sum.IsReport {
		// A legacy middlebox has no use for result packets; pass them
		// along for any DPI-aware boxes downstream.
		n.Send(frame)
		return
	}
	n.DataPackets.Add(1)
	report, err := n.Engine.Inspect(n.Tag, sum.Tuple, sum.Payload)
	if err != nil {
		n.Send(frame)
		return
	}
	if sum.TCPFlags&(packet.TCPFin|packet.TCPRst) != 0 {
		n.Engine.EndFlow(sum.Tuple)
	}
	var entries []packet.Entry
	if report != nil {
		if sec := report.SectionFor(n.Set); sec != nil {
			entries = sec.Entries
			for _, e := range sec.Entries {
				n.RulesReported.Add(uint64(e.Count))
			}
		}
	}
	forward := true
	if n.Logic != nil {
		forward = n.Logic.OnResult(sum.Tuple, entries, frame)
	}
	if !forward {
		n.Dropped.Add(1)
		return
	}
	n.Send(frame)
}
