package middlebox

import (
	"testing"

	"dpiservice/internal/packet"
	"dpiservice/internal/traffic"
)

func httpFrame(t *testing.T, tuple packet.FiveTuple, request string) []byte {
	t.Helper()
	var fb traffic.FrameBuilder
	return fb.Build(tuple, []byte(request))
}

func TestL7FirewallBlocksByPath(t *testing.T) {
	fw := NewL7FirewallLogic()
	fw.BlockPathPrefixes = []string{"/admin/"}

	ok := fw.OnResult(tpl, nil, httpFrame(t, tpl, "GET /public/index.html HTTP/1.1\r\nHost: site.test\r\n\r\n"))
	if !ok {
		t.Fatal("benign request blocked")
	}
	bad := tpl
	bad.SrcPort = 2
	ok = fw.OnResult(bad, nil, httpFrame(t, bad, "GET /admin/panel?x=1 HTTP/1.1\r\nHost: site.test\r\n\r\n"))
	if ok {
		t.Fatal("admin path not blocked")
	}
	// The whole flow is now blocked, even for benign follow-ups.
	if fw.OnResult(bad, nil, httpFrame(t, bad, "GET /public HTTP/1.1\r\n\r\n")) {
		t.Error("blocked flow's next packet forwarded")
	}
	if !fw.FlowBlocked(bad) || fw.FlowBlocked(tpl) {
		t.Error("FlowBlocked bookkeeping wrong")
	}
	if fw.Blocked.Load() != 2 {
		t.Errorf("Blocked = %d", fw.Blocked.Load())
	}
}

func TestL7FirewallBlocksByMethodAndHost(t *testing.T) {
	fw := NewL7FirewallLogic()
	fw.BlockMethods = []string{"TRACE"}
	fw.BlockHosts = []string{"evil.test"}

	a := tpl
	a.SrcPort = 11
	if fw.OnResult(a, nil, httpFrame(t, a, "TRACE / HTTP/1.1\r\nHost: fine.test\r\n\r\n")) {
		t.Error("TRACE not blocked")
	}
	b := tpl
	b.SrcPort = 12
	if fw.OnResult(b, nil, httpFrame(t, b, "GET / HTTP/1.1\r\nHost: EVIL.test\r\n\r\n")) {
		t.Error("blocked host not blocked (case-insensitive)")
	}
	c := tpl
	c.SrcPort = 13
	if !fw.OnResult(c, nil, httpFrame(t, c, "GET / HTTP/1.1\r\nHost: fine.test\r\n\r\n")) {
		t.Error("benign request blocked")
	}
}

func TestL7FirewallBlocksOnDPIRules(t *testing.T) {
	fw := NewL7FirewallLogic()
	fw.BlockOnRules = []uint16{42}
	a := tpl
	a.SrcPort = 21
	// Non-HTTP payload, but the DPI service matched rule 42.
	frame := httpFrame(t, a, "arbitrary binary payload")
	if fw.OnResult(a, []packet.Entry{{Pattern: 42, Count: 1}}, frame) {
		t.Error("DPI-flagged packet not blocked")
	}
	b := tpl
	b.SrcPort = 22
	if !fw.OnResult(b, []packet.Entry{{Pattern: 7, Count: 1}}, frame) {
		t.Error("unlisted rule blocked")
	}
}

func TestL7FirewallIgnoresNonHTTP(t *testing.T) {
	fw := NewL7FirewallLogic()
	fw.BlockPathPrefixes = []string{"/"}
	a := tpl
	a.SrcPort = 31
	if !fw.OnResult(a, nil, httpFrame(t, a, "\x00\x01binary protocol")) {
		t.Error("non-HTTP payload blocked by HTTP rule")
	}
	// Nil frame (result-only mode): structural rules can't fire.
	if !fw.OnResult(a, nil, nil) {
		t.Error("nil frame blocked")
	}
	if fw.Requests.Load() != 0 {
		t.Errorf("Requests = %d", fw.Requests.Load())
	}
}
