// Package middlebox implements the data-plane nodes of the paper's
// architecture on top of the virtual network: the DPI service instance
// node (scans once, marks packets, emits result packets — Sections 4.2
// and 6.1), result-consuming middleboxes that buffer and pair data with
// results instead of scanning (the paper's sample virtual middlebox and
// Snort-plugin analogue), legacy middleboxes that run their own DPI (the
// baseline the paper compares against), and the rule-logic samples of
// Table 1 (IDS counting, IPS dropping, traffic shaping, L7 load
// balancing).
package middlebox

import (
	"strconv"
	"strings"
	"sync"
	"time"

	"dpiservice/internal/core"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/netsim"
	"dpiservice/internal/obs"
	"dpiservice/internal/packet"
	"dpiservice/internal/reassembly"
)

// ResultOnlyBit is OR-ed into a chain tag to form the bypass tag used
// when every middlebox on the chain is read-only: the data packet takes
// the bypass tag straight to its destination while the result packet
// follows the chain (Section 4.2, dedicated-packet option; cf. Big
// Switch Big Tap). Chain tags must stay below it.
const ResultOnlyBit = packet.VLANResultOnlyBit

// The node's mu is the outermost lock of the data plane: it may be held
// across calls into the reassembler, the engine's flow table, the
// metrics registry and the simulated NIC — never the reverse.
//
//dpi:lockorder(middlebox.DPINode.mu < reassembly.Assembler.mu)
//dpi:lockorder(middlebox.DPINode.mu < core.flowShard.mu)
//dpi:lockorder(middlebox.DPINode.mu < netsim.Host.mu)
//dpi:lockorder(middlebox.DPINode.mu < obs.Registry.mu)

// DPINode is a DPI service instance attached to the network: it scans
// each tagged packet once with the merged engine and communicates the
// results downstream.
type DPINode struct {
	*netsim.Host
	engine *core.Engine
	// met caches the node's instruments in the engine's registry; it is
	// re-resolved on SwapEngine so node counters follow the active
	// engine's registry (guarded by mu, like engine).
	met *nodeMetrics
	ID  string

	mu         sync.Mutex
	resultOnly map[uint16]bool
	reassemble map[uint16]bool
	inline     map[uint16]bool
	asm        *reassembly.Assembler
	curTag     uint16 // tag of the segment being fed to the assembler
	// Packet normalization knobs for the reassembly path: TCP segments
	// with a present-but-wrong checksum are rejected (the end host
	// would discard them), and segments with a TTL below normMinTTL or
	// the IPv4 evil bit set are flagged suspicious to the assembler.
	normChecksum bool
	normMinTTL   uint8

	// Scan worker pool (SetWorkers). submitMu guards pool/completions
	// and makes submission order equal completion-queue order, so the
	// finisher forwards frames in arrival order even though scans
	// complete out of order.
	submitMu    sync.Mutex
	pool        *core.Pool
	completions chan *core.Job
	finWG       sync.WaitGroup

	buf packet.SerializeBuffer
}

// frameScan is the pool-job context: the original frame, its parse,
// and the submit time feeding the queue-wait histogram.
type frameScan struct {
	frame     []byte
	sum       packet.Summary
	submitted time.Time
}

// nodeMetrics are the DPINode's instruments: frames seen/bypassed,
// reports emitted, and the worker-queue depth and wait time.
type nodeMetrics struct {
	frames      *obs.Counter
	untagged    *obs.Counter
	reportsSent *obs.Counter
	queueDepth  *obs.Gauge
	queueWait   *obs.Histogram
}

func newNodeMetrics(reg *obs.Registry) *nodeMetrics {
	return &nodeMetrics{
		frames:      reg.Counter("dpinode.frames"),
		untagged:    reg.Counter("dpinode.frames_untagged"),
		reportsSent: reg.Counter("dpinode.reports_sent"),
		queueDepth:  reg.Gauge("dpinode.queue_depth"),
		queueWait:   reg.Histogram("dpinode.queue_wait_ns", obs.LatencyBounds),
	}
}

// NewDPINode wraps a host and an engine into a service instance node
// and installs its frame handler.
func NewDPINode(id string, host *netsim.Host, engine *core.Engine) *DPINode {
	n := &DPINode{
		Host: host, engine: engine, ID: id,
		met:          newNodeMetrics(engine.Metrics()),
		resultOnly:   make(map[uint16]bool),
		reassemble:   make(map[uint16]bool),
		inline:       make(map[uint16]bool),
		normChecksum: true,
	}
	n.asm = reassembly.NewAssembler(reassembly.Config{Metrics: engine.Metrics()}, n.deliverStream)
	host.SetHandler(n.handleFrame)
	return n
}

// Engine returns the node's current engine (it may be replaced by
// SwapEngine at any time; callers must not cache it across updates).
func (n *DPINode) Engine() *core.Engine { return n.engineRef() }

func (n *DPINode) engineRef() *core.Engine {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.engine
}

// SwapEngine atomically replaces the node's engine — how an instance
// applies a controller-pushed pattern-set or chain update at runtime.
// Stateful flows restart their scan from the swap point; the paper's
// design makes this loss cheap (an instance holds only a DFA state and
// an offset per flow, Section 4.3).
func (n *DPINode) SwapEngine(e *core.Engine) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.engine = e
	n.met = newNodeMetrics(e.Metrics())
}

// metRef returns the node's current instruments (paired with the
// current engine's registry).
func (n *DPINode) metRef() *nodeMetrics {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.met
}

// SetReassembly enables TCP stream reassembly for a chain (the
// session-reconstruction service of the paper's future work,
// Section 7): segments are reordered before scanning, data packets are
// forwarded immediately, and stream-offset-keyed result packets follow
// the chain asynchronously. Implied read-only consumption: middleboxes
// receive the results standalone.
func (n *DPINode) SetReassembly(tag uint16, on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reassemble[tag] = on
}

// SetReassemblyConfig replaces the node's assembler with one built
// from cfg — the hook for selecting an overlap policy, normalization
// strictness and resource bounds. Stream state restarts empty; call it
// at configuration time, not mid-flow. A nil cfg.Metrics defaults to
// the engine's registry so evasion counters surface at /metrics.
func (n *DPINode) SetReassemblyConfig(cfg reassembly.Config) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cfg.Metrics == nil {
		cfg.Metrics = n.engine.Metrics()
	}
	n.asm.Close()
	n.asm = reassembly.NewAssembler(cfg, n.deliverStream)
}

// SetNormalization configures packet-level normalization on the
// reassembly path. verifyChecksums rejects TCP segments carrying a
// present-but-wrong checksum; minTTL flags segments below it as
// suspicious (0 disables the TTL heuristic). The IPv4 reserved "evil"
// bit is always flagged suspicious.
func (n *DPINode) SetNormalization(minTTL uint8, verifyChecksums bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.normMinTTL = minTTL
	n.normChecksum = verifyChecksums
}

// SetResultOnly marks a chain as read-only-consumers-only: data packets
// are diverted directly to their destination under the bypass tag and
// only result packets traverse the middlebox chain.
func (n *DPINode) SetResultOnly(tag uint16, on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.resultOnly[tag] = on
}

// handleFrame processes one frame: scan, mark, forward, report.
func (n *DPINode) handleFrame(frame []byte) {
	met := n.metRef()
	met.frames.Inc()
	var sum packet.Summary
	if packet.Summarize(frame, &sum) != nil || sum.IsReport || !sum.Tagged {
		// Not steerable DPI traffic; forward unchanged (the paper's
		// service is oblivious to traffic it was not asked to scan).
		met.untagged.Inc()
		n.Send(frame)
		return
	}
	tag := sum.VLANID
	n.mu.Lock()
	reasm := n.reassemble[tag] && sum.Tuple.Protocol == packet.IPProtoTCP
	minTTL, verify := n.normMinTTL, n.normChecksum
	n.mu.Unlock()
	if reasm {
		// Forward the data immediately; scanning happens on the
		// reassembled stream and reports follow asynchronously.
		fin := sum.TCPFlags&(packet.TCPFin|packet.TCPRst) != 0
		seq := sum.TCPSeq
		tuple := sum.Tuple
		payload := sum.Payload
		// Normalization verdicts travel with the segment: the end host
		// discards a bad-checksum segment, and short-TTL or evil-bit
		// segments are the classic "DPI sees it, host never does"
		// insertions — the assembler must not let them desynchronize
		// the scanned stream.
		var meta reassembly.SegmentMeta
		if verify {
			if valid, present := packet.TCPChecksumValid(frame); present && !valid {
				meta.BadChecksum = true
			}
		}
		if sum.IPEvil || (minTTL > 0 && sum.IPTTL < minTTL) {
			meta.Suspicious = true
		}
		n.Send(frame)
		n.mu.Lock()
		n.curTag = tag
		if sum.TCPFlags&packet.TCPSyn != 0 {
			n.asm.SYN(tuple, seq)
		}
		_ = n.asm.SegmentWithMeta(tuple, seq, payload, fin, meta)
		if fin {
			n.engine.EndFlow(tuple) // n.mu held
		}
		n.mu.Unlock()
		return
	}
	if n.trySubmit(frame, &sum, tag, met) {
		return
	}
	report, err := n.engineRef().InspectTimed(tag, sum.Tuple, sum.Payload)
	n.finishScan(frame, &sum, tag, report, err)
}

// trySubmit hands the frame to the scan worker pool when one is
// running. Completion-queue order equals submission order, so the
// finisher emits frames in arrival order.
func (n *DPINode) trySubmit(frame []byte, sum *packet.Summary, tag uint16, met *nodeMetrics) bool {
	n.submitMu.Lock()
	defer n.submitMu.Unlock()
	if n.pool == nil {
		return false
	}
	job := &core.Job{Tag: tag, Tuple: sum.Tuple, Payload: sum.Payload,
		Ctx: &frameScan{frame: frame, sum: *sum, submitted: time.Now()}}
	n.pool.Submit(job)
	n.completions <- job
	met.queueDepth.Add(1)
	return true
}

// SetWorkers starts a pool of count scan workers on the node (count <=
// 0 stops the pool and returns to synchronous scanning). With workers,
// packets of different flows scan on all cores while frames still leave
// the node in arrival order — the in-process version of the paper's
// one-instance-per-core deployment (Section 6.2).
func (n *DPINode) SetWorkers(count int) {
	n.submitMu.Lock()
	old, oldComp := n.pool, n.completions
	n.pool, n.completions = nil, nil
	n.submitMu.Unlock()
	if old != nil {
		old.Close()
		close(oldComp)
		n.finWG.Wait()
	}
	if count <= 0 {
		return
	}
	pool := core.NewPool(n.engineRef, count, 0)
	comp := make(chan *core.Job, count*8)
	n.finWG.Add(1)
	go func() {
		defer n.finWG.Done()
		for job := range comp {
			job.Wait()
			fc := job.Ctx.(*frameScan)
			met := n.metRef()
			met.queueDepth.Add(-1)
			met.queueWait.Observe(uint64(time.Since(fc.submitted)))
			n.finishScan(fc.frame, &fc.sum, job.Tag, job.Report, job.Err)
		}
	}()
	n.submitMu.Lock()
	n.pool, n.completions = pool, comp
	n.submitMu.Unlock()
}

// finishScan completes one scanned frame: flow teardown, result-passing
// mode resolution, marking, forwarding and report emission.
func (n *DPINode) finishScan(frame []byte, sum *packet.Summary, tag uint16, report *packet.Report, err error) {
	if err != nil {
		// Unknown chain: forward; steering is the TSA's problem.
		n.Send(frame)
		return
	}
	if sum.TCPFlags&(packet.TCPFin|packet.TCPRst) != 0 {
		n.engineRef().EndFlow(sum.Tuple)
	}

	n.mu.Lock()
	resultOnly := n.resultOnly[tag]
	inline := n.inline[tag]
	n.mu.Unlock()

	if report == nil {
		// No matches: the packet is forwarded entirely unmodified
		// (Section 4.2) — under the bypass tag in result-only mode.
		if resultOnly {
			_ = packet.SetVLAN(frame, tag|ResultOnlyBit)
		}
		n.Send(frame)
		return
	}
	report.PacketID = uint32(sum.IPID)
	report.Flags |= packet.FlagHasTuple
	report.Tuple = sum.Tuple

	if inline {
		// Option 1 of Section 4.2: the results ride the packet itself
		// as a shim layer.
		if out := n.buildInlineFrame(tag, report, frame); out != nil {
			n.Send(out)
		}
		return
	}
	if resultOnly {
		_ = packet.SetVLAN(frame, tag|ResultOnlyBit)
		n.Send(frame)
		n.sendReport(tag, report)
		return
	}
	// Mark the data packet so downstream middleboxes expect a result
	// packet right behind it (Section 6.1).
	_ = packet.SetECNMark(frame)
	n.Send(frame)
	n.sendReport(tag, report)
}

// deliverStream receives reassembled in-order stream chunks and scans
// them; it runs with n.mu held (synchronously under asm.Segment).
func (n *DPINode) deliverStream(tuple packet.FiveTuple, offset int64, data []byte, skipped int64) {
	// n.mu is held throughout (we are under asm.Segment).
	if skipped > 0 {
		// A gap was skipped: the DFA state no longer corresponds to
		// the stream; reset rather than match across unknown bytes.
		n.engine.EndFlow(tuple)
	}
	report, err := n.engine.Inspect(n.curTag, tuple, data)
	if err != nil || report == nil {
		return
	}
	report.PacketID = uint32(offset)
	report.Flags |= packet.FlagHasTuple
	report.Tuple = tuple
	n.sendReportLocked(n.curTag, report)
}

// sendReport emits a dedicated result packet carrying the report, under
// the chain tag so it follows the same steering rules as the data.
func (n *DPINode) sendReport(tag uint16, report *packet.Report) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sendReportLocked(tag, report)
}

func (n *DPINode) sendReportLocked(tag uint16, report *packet.Report) {
	body := report.AppendEncoded(nil)
	err := packet.SerializeLayers(&n.buf,
		&packet.Ethernet{Src: n.MAC, EtherType: packet.EtherTypeVLAN},
		&packet.VLAN{ID: tag, EtherType: packet.EtherTypeReport},
		packet.Payload(body),
	)
	if err != nil {
		return
	}
	out := make([]byte, len(n.buf.Bytes()))
	copy(out, n.buf.Bytes())
	n.met.reportsSent.Inc()
	n.Send(out)
}

// Telemetry assembles the instance's periodic controller report,
// including its heaviest flows by match density (Section 4.3.1).
func (n *DPINode) Telemetry(topK int) ctlproto.Telemetry {
	s := n.engineRef().Snapshot()
	tel := ctlproto.Telemetry{
		InstanceID:   n.ID,
		Packets:      s.Packets,
		Bytes:        s.Bytes,
		BytesScanned: s.BytesScanned,
		Matches:      s.Matches,
	}
	flows := n.engineRef().FlowStats()
	// Partial selection of the topK by matches-per-byte.
	for k := 0; k < topK && len(flows) > 0; k++ {
		best := 0
		for i := 1; i < len(flows); i++ {
			if density(flows[i]) > density(flows[best]) {
				best = i
			}
		}
		f := flows[best]
		flows[best] = flows[len(flows)-1]
		flows = flows[:len(flows)-1]
		tel.HeavyFlows = append(tel.HeavyFlows, ctlproto.FlowTelemetry{
			Flow:    FlowKeyOf(f.Tuple),
			Bytes:   f.Bytes,
			Matches: f.Matches,
		})
	}
	return tel
}

func density(f core.FlowStat) float64 {
	if f.Bytes == 0 {
		return 0
	}
	return float64(f.Matches) / float64(f.Bytes)
}

// FlowKeyOf converts a five-tuple to its wire representation.
func FlowKeyOf(t packet.FiveTuple) ctlproto.FlowKey {
	return ctlproto.FlowKey{
		Src: t.Src.String(), Dst: t.Dst.String(),
		SrcPort: t.SrcPort, DstPort: t.DstPort, Protocol: t.Protocol,
	}
}

// TupleOf converts a wire flow key back to a five-tuple; it reports
// false on a malformed address.
func TupleOf(k ctlproto.FlowKey) (packet.FiveTuple, bool) {
	src, ok1 := parseIP4(k.Src)
	dst, ok2 := parseIP4(k.Dst)
	if !ok1 || !ok2 {
		return packet.FiveTuple{}, false
	}
	return packet.FiveTuple{
		Src: src, Dst: dst, SrcPort: k.SrcPort, DstPort: k.DstPort, Protocol: k.Protocol,
	}, true
}

func parseIP4(s string) (packet.IP4, bool) {
	var ip packet.IP4
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, false
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || p == "" || v < 0 || v > 255 {
			return ip, false
		}
		ip[i] = byte(v)
	}
	return ip, true
}
