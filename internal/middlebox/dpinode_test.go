package middlebox

import (
	"testing"
	"time"

	"dpiservice/internal/core"
	"dpiservice/internal/netsim"
	"dpiservice/internal/packet"
	"dpiservice/internal/patterns"
	"dpiservice/internal/traffic"
)

// dpiRig wires a DPINode to a collector host over a two-node network so
// its transmissions can be observed directly.
type dpiRig struct {
	node      *DPINode
	dpiHost   *netsim.Host
	collector *netsim.Host
	net       *netsim.Network
}

func newDPIRig(t *testing.T, cfg core.Config) *dpiRig {
	t.Helper()
	n := netsim.NewNetwork()
	t.Cleanup(n.Stop)
	dpiHost := netsim.NewHost("dpi", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP4{10, 0, 0, 1})
	collector := netsim.NewHost("collector", packet.MAC{2, 0, 0, 0, 0, 2}, packet.IP4{10, 0, 0, 2})
	for _, h := range []*netsim.Host{dpiHost, collector} {
		if err := n.AddNode(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Connect(dpiHost, collector, netsim.LinkOpts{}); err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &dpiRig{
		node:      NewDPINode("dpi", dpiHost, engine),
		dpiHost:   dpiHost,
		collector: collector,
		net:       n,
	}
}

func dpiCfg() core.Config {
	return core.Config{
		Profiles: []core.Profile{{ID: 0, Name: "ids", Patterns: patterns.FromStrings("ids", []string{"attack-sig"})}},
		Chains:   map[uint16][]int{1: {0}},
	}
}

// inject delivers a frame to the DPI node as if it arrived on its link.
func (r *dpiRig) inject(frame []byte) { r.dpiHost.Recv(0, frame) }

func (r *dpiRig) collect(t *testing.T, n int) [][]byte {
	t.Helper()
	var out [][]byte
	deadline := time.Now().Add(2 * time.Second)
	for len(out) < n && time.Now().Before(deadline) {
		select {
		case f := <-r.collector.Inbox():
			out = append(out, f)
		case <-time.After(2 * time.Millisecond):
		}
	}
	if len(out) != n {
		t.Fatalf("collected %d frames, want %d", len(out), n)
	}
	return out
}

func (r *dpiRig) expectNothing(t *testing.T) {
	t.Helper()
	select {
	case f := <-r.collector.Inbox():
		t.Fatalf("unexpected frame: %x", f[:16])
	case <-time.After(30 * time.Millisecond):
	}
}

func taggedFrame(t *testing.T, tag uint16, payload string) []byte {
	t.Helper()
	var fb traffic.FrameBuilder
	frame := fb.Build(tpl, []byte(payload))
	tagged, err := packet.PushVLAN(frame, tag, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tagged
}

func TestDPINodeCleanPacketForwardedUnmodified(t *testing.T) {
	r := newDPIRig(t, dpiCfg())
	in := taggedFrame(t, 1, "perfectly clean")
	want := append([]byte(nil), in...)
	r.inject(in)
	out := r.collect(t, 1)[0]
	if string(out) != string(want) {
		t.Error("clean packet modified in flight")
	}
}

func TestDPINodeMatchEmitsMarkAndReport(t *testing.T) {
	r := newDPIRig(t, dpiCfg())
	r.inject(taggedFrame(t, 1, "with attack-sig"))
	frames := r.collect(t, 2)
	var s0, s1 packet.Summary
	if err := packet.Summarize(frames[0], &s0); err != nil || s0.IsReport || !s0.ECNMarked {
		t.Errorf("first frame: %+v, err %v (want marked data)", s0, err)
	}
	if err := packet.Summarize(frames[1], &s1); err != nil || !s1.IsReport {
		t.Errorf("second frame: %+v, err %v (want result)", s1, err)
	}
	var rep packet.Report
	if _, err := packet.DecodeReport(s1.Payload, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Flags&packet.FlagHasTuple == 0 || rep.Tuple != tpl {
		t.Errorf("report tuple = %+v", rep)
	}
	if rep.PacketID != uint32(s0.IPID) {
		t.Errorf("report PacketID %d != data IPID %d", rep.PacketID, s0.IPID)
	}
}

func TestDPINodeUntaggedAndUnknownChainPassThrough(t *testing.T) {
	r := newDPIRig(t, dpiCfg())
	var fb traffic.FrameBuilder
	// Untagged: not steered DPI traffic.
	r.inject(fb.Build(tpl, []byte("untagged attack-sig")))
	out := r.collect(t, 1)[0]
	var s packet.Summary
	if err := packet.Summarize(out, &s); err != nil || s.ECNMarked {
		t.Error("untagged frame scanned/marked")
	}
	// Unknown chain tag: forwarded unchanged, no report.
	r.inject(taggedFrame(t, 99, "attack-sig under unknown tag"))
	out = r.collect(t, 1)[0]
	if err := packet.Summarize(out, &s); err != nil || s.ECNMarked || s.IsReport {
		t.Error("unknown-tag frame handled as scanned traffic")
	}
	r.expectNothing(t)
	if got := r.node.Engine().Snapshot().Packets; got != 0 {
		t.Errorf("engine scanned %d packets", got)
	}
}

func TestDPINodeResultOnlyMode(t *testing.T) {
	r := newDPIRig(t, dpiCfg())
	r.node.SetResultOnly(1, true)
	// Clean packet: bypass tag, no report.
	r.inject(taggedFrame(t, 1, "clean"))
	out := r.collect(t, 1)[0]
	if id, ok := packet.OuterVLAN(out); !ok || id != 1|ResultOnlyBit {
		t.Errorf("bypass tag = %d/%v", id, ok)
	}
	// Matching packet: bypass-tagged data plus a chain-tagged report.
	r.inject(taggedFrame(t, 1, "attack-sig!"))
	frames := r.collect(t, 2)
	if id, _ := packet.OuterVLAN(frames[0]); id != 1|ResultOnlyBit {
		t.Errorf("data tag = %d", id)
	}
	var s packet.Summary
	if err := packet.Summarize(frames[1], &s); err != nil || !s.IsReport || s.VLANID != 1 {
		t.Errorf("report frame: %+v err %v", s, err)
	}
	// Data must NOT carry the ECN mark in result-only mode (nothing
	// downstream pairs it).
	if packet.HasECNMark(frames[0]) {
		t.Error("result-only data packet marked")
	}
}

func TestDPINodeInlineMode(t *testing.T) {
	r := newDPIRig(t, dpiCfg())
	r.node.SetInlineResults(1, true)
	r.inject(taggedFrame(t, 1, "attack-sig inline"))
	out := r.collect(t, 1)[0] // ONE frame carrying shim + packet
	var s packet.Summary
	if err := packet.Summarize(out, &s); err != nil || !s.IsReport {
		t.Fatalf("inline frame: %+v err %v", s, err)
	}
	var rep packet.Report
	inner, hasInner, err := SplitInline(s.Payload, &rep)
	if err != nil || !hasInner {
		t.Fatalf("SplitInline: %v %v", hasInner, err)
	}
	if rep.NumMatches() != 1 {
		t.Errorf("matches = %d", rep.NumMatches())
	}
	// The inner packet re-frames into the original.
	bare := RebuildInnerFrame(packet.MAC{}, packet.MAC{}, inner)
	var is packet.Summary
	if err := packet.Summarize(bare, &is); err != nil || is.Tuple != tpl {
		t.Errorf("inner summary %+v err %v", is, err)
	}
	// Clean packets stay single plain frames.
	r.inject(taggedFrame(t, 1, "clean"))
	out = r.collect(t, 1)[0]
	if err := packet.Summarize(out, &s); err != nil || s.IsReport {
		t.Error("clean packet shimmed")
	}
}

func TestDPINodeFinEndsFlow(t *testing.T) {
	cfg := core.Config{
		Profiles: []core.Profile{{ID: 0, Stateful: true, Patterns: patterns.FromStrings("s", []string{"split-pat"})}},
		Chains:   map[uint16][]int{1: {0}},
	}
	r := newDPIRig(t, cfg)
	var fb traffic.FrameBuilder
	mk := func(payload string, fin bool) []byte {
		var frame []byte
		if fin {
			frame = fb.BuildFin(tpl, []byte(payload))
		} else {
			frame = fb.Build(tpl, []byte(payload))
		}
		tagged, _ := packet.PushVLAN(frame, 1, 0)
		return tagged
	}
	r.inject(mk("..split-", true)) // FIN resets the flow state
	r.collect(t, 1)
	r.inject(mk("pat..", false))
	r.collect(t, 1)
	if r.node.Engine().ActiveFlows() > 1 {
		t.Errorf("ActiveFlows = %d", r.node.Engine().ActiveFlows())
	}
	if got := r.node.Engine().Snapshot().Matches; got != 0 {
		t.Errorf("match across FIN boundary: %d", got)
	}
}

func TestDPINodeTelemetryHeavyFlows(t *testing.T) {
	r := newDPIRig(t, dpiCfg())
	heavy := tpl
	heavy.SrcPort = 666
	for i := 0; i < 5; i++ {
		var fb traffic.FrameBuilder
		frame := fb.Build(heavy, []byte("attack-sig attack-sig attack-sig"))
		tagged, _ := packet.PushVLAN(frame, 1, 0)
		r.inject(tagged)
	}
	r.collect(t, 10) // 5 data + 5 reports
	tel := r.node.Telemetry(4)
	if tel.InstanceID != "dpi" || tel.Packets != 5 {
		t.Errorf("telemetry = %+v", tel)
	}
	if len(tel.HeavyFlows) == 0 {
		t.Fatal("no heavy flows reported")
	}
	flow, ok := TupleOf(tel.HeavyFlows[0].Flow)
	if !ok || flow != heavy {
		t.Errorf("heavy flow = %v", flow)
	}
}

func TestDPINodeSwapEngine(t *testing.T) {
	r := newDPIRig(t, dpiCfg())
	fresh, err := core.NewEngine(core.Config{
		Profiles: []core.Profile{{ID: 0, Patterns: patterns.FromStrings("v2", []string{"new-threat"})}},
		Chains:   map[uint16][]int{1: {0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.node.SwapEngine(fresh)
	r.inject(taggedFrame(t, 1, "attack-sig")) // old pattern: clean now
	out := r.collect(t, 1)[0]
	if packet.HasECNMark(out) {
		t.Error("old pattern still matches after swap")
	}
	r.inject(taggedFrame(t, 1, "new-threat"))
	frames := r.collect(t, 2)
	if !packet.HasECNMark(frames[0]) {
		t.Error("new pattern not matched after swap")
	}
}
