package middlebox

import (
	"dpiservice/internal/packet"
)

// This file implements the FIRST result-passing option of Section 4.2:
// the match results ride the data packet itself as an NSH-like shim
// layer inserted before the original IP packet ("adding match result
// information as an additional layer of information prior to the
// packet's payload ... the last middlebox can simply remove this layer
// and forward the original packet"). The wire layout of an inline
// frame is
//
//	Ethernet | VLAN(tag) | EtherTypeReport | report bytes | original IP packet
//
// The report encoding is self-delimiting, so the original packet starts
// exactly where DecodeReport stops.

// SetInlineResults switches a chain to inline (shim) result passing:
// matching packets are re-emitted as a single shim frame instead of a
// marked packet plus a dedicated result packet.
func (n *DPINode) SetInlineResults(tag uint16, on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.inline[tag] = on
}

// buildInlineFrame wraps the original frame's IP packet behind the
// report shim, preserving the chain tag.
func (n *DPINode) buildInlineFrame(tag uint16, report *packet.Report, origFrame []byte) []byte {
	// The inner packet is everything after Ethernet + tags: locate the
	// IP header by re-summarizing is wasteful; the original frame is
	// Ethernet(14) + VLAN(4) + IP..., both produced by our own fabric.
	inner := origFrame[packet.EthernetHeaderLen+packet.VLANHeaderLen:]
	body := report.AppendEncoded(nil)
	n.mu.Lock()
	defer n.mu.Unlock()
	err := packet.SerializeLayers(&n.buf,
		&packet.Ethernet{Src: n.MAC, EtherType: packet.EtherTypeVLAN},
		&packet.VLAN{ID: tag, EtherType: packet.EtherTypeReport},
		packet.Payload(body),
		packet.Payload(inner),
	)
	if err != nil {
		return nil
	}
	out := make([]byte, len(n.buf.Bytes()))
	copy(out, n.buf.Bytes())
	return out
}

// SplitInline decodes a shim frame's report and returns the inner IP
// packet bytes; ok is false when the frame carries a standalone report
// (no embedded packet).
func SplitInline(shimPayload []byte, rep *packet.Report) (inner []byte, ok bool, err error) {
	consumed, err := packet.DecodeReport(shimPayload, rep)
	if err != nil {
		return nil, false, err
	}
	if consumed >= len(shimPayload) {
		return nil, false, nil
	}
	return shimPayload[consumed:], true, nil
}

// RebuildInnerFrame re-frames an inner IP packet as a plain Ethernet
// frame — what the last middlebox does when stripping the shim.
func RebuildInnerFrame(srcMAC, dstMAC packet.MAC, inner []byte) []byte {
	out := make([]byte, packet.EthernetHeaderLen+len(inner))
	copy(out[0:6], dstMAC[:])
	copy(out[6:12], srcMAC[:])
	out[12] = byte(packet.EtherTypeIPv4 >> 8)
	out[13] = byte(packet.EtherTypeIPv4 & 0xff)
	copy(out[packet.EthernetHeaderLen:], inner)
	return out
}
