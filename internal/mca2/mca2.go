// Package mca2 implements the MCA²-style robustness layer of
// Section 4.3.1: the DPI controller takes the role of the central
// stress monitor, consuming per-instance telemetry, detecting the heavy
// flows characteristic of complexity attacks on DPI engines, and
// deciding which flows to divert to dedicated instances (which run the
// compact automaton better suited to cache-hostile traffic). Dedicated
// instances are allocated as an attack intensifies and deallocated as
// it wanes.
package mca2

import (
	"errors"
	"sync"

	"dpiservice/internal/controller"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/obs"
)

// Config tunes the stress monitor.
type Config struct {
	// MatchDensity is the matches-per-byte ratio above which a flow is
	// considered heavy (attack payloads force dense accepting-state
	// traversal). Default 0.05.
	MatchDensity float64
	// MinFlowBytes ignores flows smaller than this (too little
	// evidence). Default 1024.
	MinFlowBytes uint64
	// MaxMigrationsPerRound bounds churn per Evaluate call. Default 8.
	MaxMigrationsPerRound int
	// Metrics is the registry the monitor publishes its instruments
	// into; nil selects a private registry.
	Metrics *obs.Registry
}

func (c *Config) defaults() {
	if c.MatchDensity <= 0 {
		c.MatchDensity = 0.05
	}
	if c.MinFlowBytes == 0 {
		c.MinFlowBytes = 1024
	}
	if c.MaxMigrationsPerRound <= 0 {
		c.MaxMigrationsPerRound = 8
	}
}

// Decision is one migration the monitor wants executed: divert Flow,
// currently on From, to the dedicated instance To.
type Decision struct {
	From string
	To   string
	Flow ctlproto.FlowKey
}

// ErrNoDedicated is returned when heavy flows exist but no dedicated
// instance is registered to absorb them.
var ErrNoDedicated = errors.New("mca2: heavy flows detected but no dedicated instances")

// Monitor is the central stress monitor.
type Monitor struct {
	ctl *controller.Controller
	cfg Config
	met monMetrics

	mu       sync.Mutex
	rr       int
	migrated map[ctlproto.FlowKey]string // flow -> dedicated instance
}

// monMetrics are the monitor's instruments: stress detections,
// migration churn, and the diverted-flow population.
type monMetrics struct {
	reg           *obs.Registry
	heavyFlows    *obs.Counter
	migrations    *obs.Counter
	releases      *obs.Counter
	migratedFlows *obs.Gauge
}

// New creates a monitor over the controller's telemetry.
func New(ctl *controller.Controller, cfg Config) *Monitor {
	cfg.defaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Monitor{
		ctl: ctl, cfg: cfg,
		met: monMetrics{
			reg:           reg,
			heavyFlows:    reg.Counter("mca2.heavy_flows_seen"),
			migrations:    reg.Counter("mca2.migrations"),
			releases:      reg.Counter("mca2.releases"),
			migratedFlows: reg.Gauge("mca2.migrated_flows"),
		},
		migrated: make(map[ctlproto.FlowKey]string),
	}
}

// Metrics returns the monitor's metrics registry.
func (m *Monitor) Metrics() *obs.Registry { return m.met.reg }

// Evaluate examines the latest telemetry of every regular instance and
// returns the migrations to perform. Flows already migrated are not
// re-proposed. When heavy flows exist but no dedicated instance does,
// it returns ErrNoDedicated along with an empty decision list — the
// caller should allocate a dedicated instance and call again
// ("dedicated DPI instances can be dynamically allocated as an attack
// becomes more intense").
func (m *Monitor) Evaluate() ([]Decision, error) {
	// One sorted snapshot of every instance: deterministic iteration
	// order and a single consistent telemetry cut per round.
	snaps := m.ctl.TelemetrySnapshots()
	var dedicated []string
	for _, s := range snaps {
		if s.Dedicated {
			dedicated = append(dedicated, s.ID)
		}
	}
	var decisions []Decision
	heavySeen := false

	m.mu.Lock()
	defer m.mu.Unlock()
	for _, snap := range snaps {
		if snap.Dedicated || !snap.HasTelemetry {
			continue
		}
		for _, f := range snap.Telemetry.HeavyFlows {
			if f.Bytes < m.cfg.MinFlowBytes {
				continue
			}
			if float64(f.Matches)/float64(f.Bytes) < m.cfg.MatchDensity {
				continue
			}
			heavySeen = true
			m.met.heavyFlows.Inc()
			if _, done := m.migrated[f.Flow]; done {
				continue
			}
			if len(dedicated) == 0 {
				continue
			}
			if len(decisions) >= m.cfg.MaxMigrationsPerRound {
				break
			}
			target := dedicated[m.rr%len(dedicated)]
			m.rr++
			m.migrated[f.Flow] = target
			m.met.migrations.Inc()
			decisions = append(decisions, Decision{From: snap.ID, To: target, Flow: f.Flow})
		}
	}
	m.met.migratedFlows.Set(int64(len(m.migrated)))
	if heavySeen && len(dedicated) == 0 {
		return nil, ErrNoDedicated
	}
	return decisions, nil
}

// Release clears migration records for flows that no longer appear in
// any instance's heavy list — the attack has waned — and returns the
// flows released. Call after fresh telemetry arrives; released flows
// can then be re-steered to regular instances by the caller.
func (m *Monitor) Release() []ctlproto.FlowKey {
	stillHeavy := make(map[ctlproto.FlowKey]bool)
	for _, snap := range m.ctl.TelemetrySnapshots() {
		if !snap.HasTelemetry {
			continue
		}
		for _, f := range snap.Telemetry.HeavyFlows {
			if f.Bytes >= m.cfg.MinFlowBytes &&
				float64(f.Matches)/float64(f.Bytes) >= m.cfg.MatchDensity {
				stillHeavy[f.Flow] = true
			}
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var released []ctlproto.FlowKey
	for flow := range m.migrated {
		if !stillHeavy[flow] {
			released = append(released, flow)
			delete(m.migrated, flow)
		}
	}
	m.met.releases.Add(uint64(len(released)))
	m.met.migratedFlows.Set(int64(len(m.migrated)))
	return released
}

// IdleDedicated lists dedicated instances currently absorbing no
// migrated flows — candidates for deallocation as the attack's
// "significance decreases" (Section 4.3.1).
func (m *Monitor) IdleDedicated() []string {
	dedicated := m.ctl.Instances(true)
	m.mu.Lock()
	inUse := make(map[string]bool, len(m.migrated))
	for _, target := range m.migrated {
		inUse[target] = true
	}
	m.mu.Unlock()
	var idle []string
	for _, id := range dedicated {
		if !inUse[id] {
			idle = append(idle, id)
		}
	}
	return idle
}

// Forget clears the migration record of a flow (e.g. when it ends), so
// a recurrence would be re-evaluated.
func (m *Monitor) Forget(flow ctlproto.FlowKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.migrated, flow)
	m.met.migratedFlows.Set(int64(len(m.migrated)))
}

// MigratedCount reports how many flows are currently diverted.
func (m *Monitor) MigratedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.migrated)
}

// TargetOf reports the dedicated instance a flow was diverted to.
func (m *Monitor) TargetOf(flow ctlproto.FlowKey) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.migrated[flow]
	return t, ok
}
