package mca2

import (
	"errors"
	"testing"

	"dpiservice/internal/controller"
	"dpiservice/internal/ctlproto"
)

func heavyFlow(port uint16, bytes, matches uint64) ctlproto.FlowTelemetry {
	return ctlproto.FlowTelemetry{
		Flow:    ctlproto.FlowKey{Src: "10.0.0.1", Dst: "10.0.0.2", SrcPort: port, DstPort: 80, Protocol: 6},
		Bytes:   bytes,
		Matches: matches,
	}
}

func setup(t *testing.T, dedicated int) (*controller.Controller, *Monitor) {
	t.Helper()
	ctl := controller.New()
	ctl.AddInstance("dpi-1", nil, false)
	for i := 0; i < dedicated; i++ {
		ctl.AddInstance("ded-"+string(rune('a'+i)), nil, true)
	}
	return ctl, New(ctl, Config{})
}

func TestEvaluateDetectsHeavyFlow(t *testing.T) {
	ctl, m := setup(t, 1)
	tel := ctlproto.Telemetry{
		InstanceID: "dpi-1",
		HeavyFlows: []ctlproto.FlowTelemetry{
			heavyFlow(1, 10000, 5000), // density 0.5 >> 0.05: heavy
			heavyFlow(2, 10000, 10),   // density 0.001: benign
			heavyFlow(3, 100, 90),     // dense but too small
		},
	}
	if err := ctl.ReportTelemetry(tel); err != nil {
		t.Fatal(err)
	}
	decisions, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 {
		t.Fatalf("decisions = %+v, want exactly the heavy flow", decisions)
	}
	d := decisions[0]
	if d.From != "dpi-1" || d.To != "ded-a" || d.Flow.SrcPort != 1 {
		t.Errorf("decision = %+v", d)
	}
	if got, ok := m.TargetOf(d.Flow); !ok || got != "ded-a" {
		t.Errorf("TargetOf = %q, %v", got, ok)
	}

	// Re-evaluating must not re-propose the same flow.
	decisions, err = m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 0 {
		t.Errorf("repeat decisions = %+v", decisions)
	}
	if m.MigratedCount() != 1 {
		t.Errorf("MigratedCount = %d", m.MigratedCount())
	}

	// After Forget, a recurrence is re-proposed.
	m.Forget(d.Flow)
	decisions, _ = m.Evaluate()
	if len(decisions) != 1 {
		t.Errorf("after Forget: %+v", decisions)
	}
}

func TestEvaluateNoDedicated(t *testing.T) {
	ctl, m := setup(t, 0)
	if err := ctl.ReportTelemetry(ctlproto.Telemetry{
		InstanceID: "dpi-1",
		HeavyFlows: []ctlproto.FlowTelemetry{heavyFlow(1, 10000, 5000)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evaluate(); !errors.Is(err, ErrNoDedicated) {
		t.Errorf("err = %v, want ErrNoDedicated", err)
	}
	// Allocating a dedicated instance resolves it.
	ctl.AddInstance("ded-x", nil, true)
	decisions, err := m.Evaluate()
	if err != nil || len(decisions) != 1 || decisions[0].To != "ded-x" {
		t.Errorf("decisions = %+v, err = %v", decisions, err)
	}
}

func TestEvaluateRoundRobinAndCap(t *testing.T) {
	ctl, m := setup(t, 2)
	var flows []ctlproto.FlowTelemetry
	for i := 0; i < 20; i++ {
		flows = append(flows, heavyFlow(uint16(100+i), 10000, 9000))
	}
	if err := ctl.ReportTelemetry(ctlproto.Telemetry{InstanceID: "dpi-1", HeavyFlows: flows}); err != nil {
		t.Fatal(err)
	}
	decisions, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 8 { // default MaxMigrationsPerRound
		t.Fatalf("decisions = %d, want capped at 8", len(decisions))
	}
	targets := map[string]int{}
	for _, d := range decisions {
		targets[d.To]++
	}
	if targets["ded-a"] != 4 || targets["ded-b"] != 4 {
		t.Errorf("round-robin split = %v", targets)
	}
	// The rest arrive next round.
	decisions, _ = m.Evaluate()
	if len(decisions) != 8 {
		t.Errorf("second round = %d", len(decisions))
	}
}

func TestReleaseAndIdleDedicated(t *testing.T) {
	ctl, m := setup(t, 1)
	hf := heavyFlow(1, 10000, 5000)
	if err := ctl.ReportTelemetry(ctlproto.Telemetry{InstanceID: "dpi-1", HeavyFlows: []ctlproto.FlowTelemetry{hf}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evaluate(); err != nil {
		t.Fatal(err)
	}
	if idle := m.IdleDedicated(); len(idle) != 0 {
		t.Errorf("dedicated instance idle while absorbing a flow: %v", idle)
	}
	// Attack continues (flow still in someone's heavy list): no
	// release.
	if rel := m.Release(); len(rel) != 0 {
		t.Errorf("released while still heavy: %v", rel)
	}
	// Attack wanes: the flow disappears from telemetry.
	if err := ctl.ReportTelemetry(ctlproto.Telemetry{InstanceID: "dpi-1"}); err != nil {
		t.Fatal(err)
	}
	rel := m.Release()
	if len(rel) != 1 || rel[0] != hf.Flow {
		t.Fatalf("Release = %v", rel)
	}
	if m.MigratedCount() != 0 {
		t.Errorf("MigratedCount = %d after release", m.MigratedCount())
	}
	// The dedicated instance is now deallocatable.
	if idle := m.IdleDedicated(); len(idle) != 1 || idle[0] != "ded-a" {
		t.Errorf("IdleDedicated = %v", idle)
	}
}

func TestEvaluateIgnoresQuietInstances(t *testing.T) {
	ctl, m := setup(t, 1)
	// No telemetry at all: nothing to do, no error.
	decisions, err := m.Evaluate()
	if err != nil || len(decisions) != 0 {
		t.Errorf("decisions = %+v, err = %v", decisions, err)
	}
	// Dedicated instances' own telemetry is never evaluated.
	if err := ctl.ReportTelemetry(ctlproto.Telemetry{
		InstanceID: "ded-a",
		HeavyFlows: []ctlproto.FlowTelemetry{heavyFlow(1, 10000, 9000)},
	}); err != nil {
		t.Fatal(err)
	}
	decisions, err = m.Evaluate()
	if err != nil || len(decisions) != 0 {
		t.Errorf("dedicated telemetry produced decisions: %+v, %v", decisions, err)
	}
}
