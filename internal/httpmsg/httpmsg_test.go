package httpmsg

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

const sampleRequest = "GET /search?q=dpi+service HTTP/1.1\r\n" +
	"Host: example.test\r\n" +
	"User-Agent: test-agent/1.0\r\n" +
	"Content-Length: 12\r\n" +
	"\r\n" +
	"hello body.."

func TestParseRequestComplete(t *testing.T) {
	req, err := ParseRequest([]byte(sampleRequest))
	if err != nil {
		t.Fatal(err)
	}
	if !req.Complete {
		t.Fatal("Complete = false")
	}
	if req.Method != "GET" || req.Proto != "HTTP/1.1" {
		t.Errorf("request line = %q %q", req.Method, req.Proto)
	}
	if req.Target != "/search?q=dpi+service" || req.Path() != "/search" {
		t.Errorf("target = %q, path = %q", req.Target, req.Path())
	}
	if req.Host() != "example.test" {
		t.Errorf("host = %q", req.Host())
	}
	if v, ok := req.Header("user-agent"); !ok || v != "test-agent/1.0" {
		t.Errorf("user-agent = %q, %v (case-insensitive lookup)", v, ok)
	}
	if req.ContentLength() != 12 {
		t.Errorf("content-length = %d", req.ContentLength())
	}
	if got := sampleRequest[req.BodyOffset:]; got != "hello body.." {
		t.Errorf("body = %q", got)
	}
}

func TestParseRequestIncomplete(t *testing.T) {
	full := []byte(sampleRequest)
	// Cut inside the headers: partial parse with ErrIncomplete.
	req, err := ParseRequest(full[:50])
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v", err)
	}
	if req == nil || req.Method != "GET" || req.Complete {
		t.Errorf("partial req = %+v", req)
	}
	// Cut inside the request line: nothing parseable yet.
	if _, err := ParseRequest(full[:10]); !errors.Is(err, ErrIncomplete) {
		t.Errorf("short cut err = %v", err)
	}
}

func TestParseRequestRejections(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want error
	}{
		{"NOTAMETHOD / HTTP/1.1\r\n\r\n", ErrNotHTTP},
		{"random binary \x00\x01\x02", ErrNotHTTP},
		{"GET /\r\n\r\n", ErrMalformed},         // no proto
		{"GET / FTP/1.0\r\n\r\n", ErrMalformed}, // wrong proto
		{"GET / HTTP/1.1\r\nbadheader\r\n\r\n", ErrMalformed},
	} {
		if _, err := ParseRequest([]byte(tc.in)); !errors.Is(err, tc.want) {
			t.Errorf("ParseRequest(%q) err = %v, want %v", tc.in, err, tc.want)
		}
	}
}

func TestLooksLikeRequest(t *testing.T) {
	for _, yes := range []string{"GET /", "POST /x HTTP/1.1", "DELETE /r", "OPTIONS *"} {
		if !LooksLikeRequest([]byte(yes)) {
			t.Errorf("LooksLikeRequest(%q) = false", yes)
		}
	}
	for _, no := range []string{"", "G", "GETX /", "get /", "HTTP/1.1 200 OK"} {
		if LooksLikeRequest([]byte(no)) {
			t.Errorf("LooksLikeRequest(%q) = true", no)
		}
	}
}

func TestParseResponse(t *testing.T) {
	resp, err := ParseResponse([]byte("HTTP/1.1 404 Not Found\r\nContent-Type: text/html\r\n\r\nbody"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 || resp.Reason != "Not Found" || !resp.Complete {
		t.Errorf("resp = %+v", resp)
	}
	if v, ok := resp.Header("content-type"); !ok || v != "text/html" {
		t.Errorf("content-type = %q", v)
	}
	for _, bad := range []string{"FTP/1.0 200 OK\r\n\r\n", "HTTP/1.1 x OK\r\n\r\n", "HTTP/1.1 999 Huge\r\n\r\n"} {
		if _, err := ParseResponse([]byte(bad)); err == nil {
			t.Errorf("ParseResponse(%q) accepted", bad)
		}
	}
	if _, err := ParseResponse([]byte("HTTP/1.1 200 OK\r\nCut")); !errors.Is(err, ErrIncomplete) {
		t.Errorf("incomplete err = %v", err)
	}
}

func TestParseRequestNeverPanicsProperty(t *testing.T) {
	f := func(junk []byte) bool {
		_, _ = ParseRequest(junk)
		_, _ = ParseResponse(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Adversarial header floods must not blow up either.
	flood := "GET / HTTP/1.1\r\n" + strings.Repeat("X-A: b\r\n", 5000) + "\r\n"
	req, err := ParseRequest([]byte(flood))
	if err != nil || len(req.Headers) != 5000 {
		t.Errorf("flood parse: %d headers, err %v", len(req.Headers), err)
	}
}

func TestContentLengthEdgeCases(t *testing.T) {
	mk := func(cl string) *Request {
		req, err := ParseRequest([]byte("GET / HTTP/1.1\r\nContent-Length: " + cl + "\r\n\r\n"))
		if err != nil {
			t.Fatal(err)
		}
		return req
	}
	if got := mk("0").ContentLength(); got != 0 {
		t.Errorf("CL 0 = %d", got)
	}
	if got := mk("notanumber").ContentLength(); got != -1 {
		t.Errorf("CL garbage = %d", got)
	}
	if got := mk("-5").ContentLength(); got != -1 {
		t.Errorf("CL negative = %d", got)
	}
	req, err := ParseRequest([]byte("GET / HTTP/1.1\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if req.ContentLength() != -1 {
		t.Error("absent CL != -1")
	}
}
