package httpmsg

import (
	"errors"
	"testing"
)

// The header parsers run on reassembled attacker-controlled bytes, so
// the bar is: no panic on any input, errors from the known set, and any
// returned head safe to interrogate through its accessor methods.

func FuzzParseRequest(f *testing.F) {
	seeds := [][]byte{
		[]byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"),
		[]byte("POST /upload HTTP/1.1\r\nHost: a\r\nContent-Length: 12\r\n\r\nhello world!"),
		[]byte("GET /a?b=c HTTP/1.0\r\nX: y\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nHost: split.exam"), // head cut mid-header
		[]byte("GET /\r\n\r\n"),                      // no HTTP version
		[]byte("BREW /pot HTCPCP/1.0\r\n\r\n"),       // unknown method
		[]byte("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"),
		[]byte(""),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := ParseRequest(payload)
		checkParse(t, err, req == nil)
		if req == nil {
			return
		}
		// Accessors must be safe on complete and partial heads alike.
		_, _ = req.Header("Host")
		_ = req.Host()
		_ = req.Path()
		_ = req.ContentLength()
		if req.Complete {
			if req.BodyOffset < 0 || req.BodyOffset > len(payload) {
				t.Fatalf("BodyOffset %d outside payload of %d bytes", req.BodyOffset, len(payload))
			}
			if err != nil {
				t.Fatalf("complete head returned err %v", err)
			}
		}
	})
}

func FuzzParseResponse(f *testing.F) {
	seeds := [][]byte{
		[]byte("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n<html>"),
		[]byte("HTTP/1.0 404 Not Found\r\n\r\n"),
		[]byte("HTTP/1.1 301 Moved Permanently\r\nLocation: /new\r"), // cut mid-CRLF
		[]byte("HTTP/1.1 abc Bad\r\n\r\n"),
		[]byte("ICY 200 OK\r\n\r\n"),
		[]byte(""),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		resp, err := ParseResponse(payload)
		checkParse(t, err, resp == nil)
		if resp == nil {
			return
		}
		for _, h := range resp.Headers {
			if h.Name == "" {
				t.Fatal("accepted header with empty name")
			}
		}
		if resp.Complete {
			if resp.BodyOffset < 0 || resp.BodyOffset > len(payload) {
				t.Fatalf("BodyOffset %d outside payload of %d bytes", resp.BodyOffset, len(payload))
			}
			if err != nil {
				t.Fatalf("complete head returned err %v", err)
			}
		}
	})
}

// checkParse asserts the error contract shared by both parsers: nil or
// one of the package's sentinel errors, and a nil head only alongside a
// non-nil error.
func checkParse(t *testing.T, err error, headNil bool) {
	t.Helper()
	if err != nil && !errors.Is(err, ErrNotHTTP) && !errors.Is(err, ErrIncomplete) && !errors.Is(err, ErrMalformed) {
		t.Fatalf("error outside the sentinel set: %v", err)
	}
	if headNil && err == nil {
		t.Fatal("nil head with nil error")
	}
}
