// Package httpmsg parses HTTP/1.x message heads from raw packet
// payloads. Several Table 1 middleboxes operate on HTTP structure
// rather than raw bytes — L7 firewalls block by method/path/host, L7
// load balancers route by URL — and the paper's stopping-condition
// mechanism exists precisely because such middleboxes "only care about
// specific application-layer headers with a fixed or bounded length"
// (Section 5.1). The parser is tolerant: it parses as much of the head
// as is present in the payload and reports whether it is complete.
package httpmsg

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
)

// Errors returned by the parsers.
var (
	ErrNotHTTP    = errors.New("httpmsg: not an HTTP message")
	ErrMalformed  = errors.New("httpmsg: malformed message head")
	ErrIncomplete = errors.New("httpmsg: message head incomplete in this payload")
)

// Header is one message header in arrival order.
type Header struct {
	Name  string
	Value string
}

// Request is a parsed HTTP/1.x request head.
type Request struct {
	Method  string
	Target  string // request-target as sent (origin-form path, usually)
	Proto   string // "HTTP/1.1"
	Headers []Header
	// BodyOffset is the payload offset where the body starts; valid
	// only when Complete.
	BodyOffset int
	// Complete reports that the full head (terminating CRLFCRLF) was
	// present in the payload.
	Complete bool
}

// methods recognized as starting an HTTP request.
var methods = []string{"GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "PATCH", "TRACE", "CONNECT"}

// LooksLikeRequest cheaply tests whether payload begins with an HTTP
// request line.
func LooksLikeRequest(payload []byte) bool {
	for _, m := range methods {
		if len(payload) > len(m) && payload[len(m)] == ' ' &&
			string(payload[:len(m)]) == m {
			return true
		}
	}
	return false
}

// ParseRequest parses a request head from the start of payload. A head
// split across packets yields the parsed prefix with Complete=false and
// err=ErrIncomplete; callers needing the rest reassemble first
// (internal/reassembly).
func ParseRequest(payload []byte) (*Request, error) {
	if !LooksLikeRequest(payload) {
		return nil, ErrNotHTTP
	}
	lineEnd := bytes.Index(payload, []byte("\r\n"))
	if lineEnd < 0 {
		return nil, ErrIncomplete
	}
	parts := strings.SplitN(string(payload[:lineEnd]), " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, ErrMalformed
	}
	req := &Request{Method: parts[0], Target: parts[1], Proto: parts[2]}
	off := lineEnd + 2
	for {
		if off >= len(payload) {
			return req, ErrIncomplete
		}
		next := bytes.Index(payload[off:], []byte("\r\n"))
		if next < 0 {
			return req, ErrIncomplete
		}
		if next == 0 {
			req.Complete = true
			req.BodyOffset = off + 2
			return req, nil
		}
		line := payload[off : off+next]
		colon := bytes.IndexByte(line, ':')
		if colon <= 0 {
			return req, ErrMalformed
		}
		req.Headers = append(req.Headers, Header{
			Name:  string(line[:colon]),
			Value: strings.TrimSpace(string(line[colon+1:])),
		})
		off += next + 2
	}
}

// Header returns the first header with the given name,
// case-insensitively.
func (r *Request) Header(name string) (string, bool) {
	for _, h := range r.Headers {
		if strings.EqualFold(h.Name, name) {
			return h.Value, true
		}
	}
	return "", false
}

// Host returns the request's Host header.
func (r *Request) Host() string {
	v, _ := r.Header("Host")
	return v
}

// Path returns the request-target without query string.
func (r *Request) Path() string {
	if i := strings.IndexByte(r.Target, '?'); i >= 0 {
		return r.Target[:i]
	}
	return r.Target
}

// ContentLength returns the declared body length, or -1 when absent or
// unparsable.
func (r *Request) ContentLength() int64 {
	v, ok := r.Header("Content-Length")
	if !ok {
		return -1
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// Response is a parsed HTTP/1.x response head.
type Response struct {
	Proto      string
	StatusCode int
	Reason     string
	Headers    []Header
	BodyOffset int
	Complete   bool
}

// ParseResponse parses a response head from the start of payload.
func ParseResponse(payload []byte) (*Response, error) {
	if !bytes.HasPrefix(payload, []byte("HTTP/")) {
		return nil, ErrNotHTTP
	}
	lineEnd := bytes.Index(payload, []byte("\r\n"))
	if lineEnd < 0 {
		return nil, ErrIncomplete
	}
	parts := strings.SplitN(string(payload[:lineEnd]), " ", 3)
	if len(parts) < 2 {
		return nil, ErrMalformed
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil || code < 100 || code > 599 {
		return nil, ErrMalformed
	}
	resp := &Response{Proto: parts[0], StatusCode: code}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	off := lineEnd + 2
	for {
		if off >= len(payload) {
			return resp, ErrIncomplete
		}
		next := bytes.Index(payload[off:], []byte("\r\n"))
		if next < 0 {
			return resp, ErrIncomplete
		}
		if next == 0 {
			resp.Complete = true
			resp.BodyOffset = off + 2
			return resp, nil
		}
		line := payload[off : off+next]
		colon := bytes.IndexByte(line, ':')
		if colon <= 0 {
			return resp, ErrMalformed
		}
		resp.Headers = append(resp.Headers, Header{
			Name:  string(line[:colon]),
			Value: strings.TrimSpace(string(line[colon+1:])),
		})
		off += next + 2
	}
}

// Header returns the first header with the given name,
// case-insensitively.
func (r *Response) Header(name string) (string, bool) {
	for _, h := range r.Headers {
		if strings.EqualFold(h.Name, name) {
			return h.Value, true
		}
	}
	return "", false
}
