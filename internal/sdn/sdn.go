// Package sdn hosts the SDN control applications of the paper's
// architecture (Figure 5): a Traffic Steering Application in the style
// of SIMPLE that attaches policy chains to traffic and installs the
// flow rules realizing them, negotiating chain tags with the DPI
// controller (Section 4.1); reactive per-flow multiplexing of traffic
// across DPI service instances (the Figure 3 scenario); and the flow
// re-steering primitive that instance migration and MCA² rely on
// (Sections 4.3 and 4.3.1).
package sdn

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"dpiservice/internal/controller"
	"dpiservice/internal/openflow"
	"dpiservice/internal/packet"
)

// Rule priorities: exact-flow overrides beat chain rules, which beat
// the default drop.
const (
	PrioFlow  = 300 // reactive per-flow and migration rules
	PrioChain = 200 // proactive chain rules
	PrioBase  = 100 // classifiers
)

// ChainSpec describes one policy chain to install.
type ChainSpec struct {
	// Src and Dst are the endpoint node names (must be attached to the
	// switch).
	Src, Dst string
	// Elements are the middlebox IDs on the chain, in traversal order.
	// They must be registered with the DPI controller.
	Elements []string
	// Classify narrows which of Src's traffic enters the chain; zero
	// value (via openflow.NewMatch) means all of it. InPort is set by
	// the TSA.
	Classify openflow.Match
}

// TSA is the traffic steering application, controlling one switch. The
// paper's experimental topology attaches all hosts to a single switch
// (Section 6.1); richer fabrics would run one TSA per switch with
// PacketIn consults the switch's port map while holding the TSA lock,
// so the application lock precedes the switch lock; a switch callback
// must never call back into a TSA method that locks.
//
//dpi:lockorder(sdn.TSA.mu < openflow.Switch.mu)

// identical chain state.
type TSA struct {
	sw     *openflow.Switch
	dpictl *controller.Controller

	// FlowIdleTimeout, when set, arms reactive per-flow rules with an
	// idle expiry so the flow table does not accumulate finished flows
	// (set before installing balanced chains).
	FlowIdleTimeout time.Duration

	mu            sync.Mutex
	rr            int
	flows         map[packet.FiveTuple]steeredFlow // reactive flow state
	pending       []pendingChain
	installedHops map[string]bool // "tag/instance" hop rules laid
}

// steeredFlow records where a reactive flow is steered and which switch
// rule realizes it, so re-steering (migration, failover) can revoke the
// old rule instead of racing it on priority ties.
type steeredFlow struct {
	instance string
	tag      uint16
	entry    *openflow.FlowEntry
}

type pendingChain struct {
	tag       uint16
	spec      ChainSpec
	instances []string
}

// NewTSA creates a TSA controlling sw and negotiating with dpictl.
func NewTSA(sw *openflow.Switch, dpictl *controller.Controller) *TSA {
	t := &TSA{sw: sw, dpictl: dpictl, flows: make(map[packet.FiveTuple]steeredFlow)}
	return t
}

// Errors returned by the TSA.
var (
	ErrUnknownEndpoint = errors.New("sdn: endpoint not attached to switch")
	ErrNoInstances     = errors.New("sdn: no DPI instances given")
)

// port resolves an endpoint name to its switch port, allocating the
// number if the endpoint has not attached yet — chains may be installed
// before the DPI instances they reference are deployed (the controller
// spins instances up on demand, Section 4.3).
func (t *TSA) port(name string) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("%w: empty name", ErrUnknownEndpoint)
	}
	return t.sw.PortTo(name), nil
}

// InstallChainLegacy installs spec without a DPI service: traffic flows
// src -> elements... -> dst and every middlebox scans for itself
// (Figure 1(a)). It returns the chain's tag.
func (t *TSA) InstallChainLegacy(spec ChainSpec) (uint16, error) {
	tag, err := t.dpictl.DefineChain(spec.Elements)
	if err != nil {
		return 0, err
	}
	return tag, t.installPath(tag, spec, spec.Elements, PrioChain)
}

// InstallChainWithDPI installs spec with the DPI service instance
// prepended to the data path (Figure 1(b)): traffic flows
// src -> instance -> elements... -> dst, and result packets follow the
// same tagged path. It returns the chain's tag.
func (t *TSA) InstallChainWithDPI(spec ChainSpec, instance string) (uint16, error) {
	tag, err := t.dpictl.DefineChain(spec.Elements)
	if err != nil {
		return 0, err
	}
	path := append([]string{instance}, spec.Elements...)
	return tag, t.installPath(tag, spec, path, PrioChain)
}

// installPath lays the rules for one chain: classify+tag at the source
// port, in-port forwarding between elements, and tag pop at egress.
func (t *TSA) installPath(tag uint16, spec ChainSpec, path []string, prio int) error {
	srcPort, err := t.port(spec.Src)
	if err != nil {
		return err
	}
	dstPort, err := t.port(spec.Dst)
	if err != nil {
		return err
	}
	ports := make([]int, len(path))
	for i, el := range path {
		if ports[i], err = t.port(el); err != nil {
			return err
		}
	}
	// Ingress classifier: tag and send to the first element (or
	// straight to the destination for an empty chain).
	cls := spec.Classify
	if cls.InPort == 0 && cls.VLANID == 0 {
		// Zero value supplied; normalize to wildcards.
		cls = openflow.NewMatch()
	}
	cls.InPort = srcPort
	first := dstPort
	if len(ports) > 0 {
		first = ports[0]
	}
	if len(ports) == 0 {
		t.sw.AddFlowWithCookie(uint64(tag), prio, cls, openflow.Output(first))
		return nil
	}
	t.sw.AddFlowWithCookie(uint64(tag), prio, cls, openflow.PushVLAN(tag), openflow.Output(first))
	// Hop rules: frames (data or result) returning from element i go
	// to element i+1.
	for i := 0; i < len(ports)-1; i++ {
		m := openflow.NewMatch()
		m.InPort = ports[i]
		m.VLANID = int(tag)
		t.sw.AddFlowWithCookie(uint64(tag), prio, m, openflow.Output(ports[i+1]))
	}
	// Egress: pop the tag and deliver.
	last := openflow.NewMatch()
	last.InPort = ports[len(ports)-1]
	last.VLANID = int(tag)
	t.sw.AddFlowWithCookie(uint64(tag), prio, last, openflow.PopVLAN(), openflow.Output(dstPort))
	return nil
}

// InstallResultOnlyChain installs spec for a chain whose middleboxes
// are all read-only (Section 4.2, third option): data packets are
// scanned by the DPI instance, then steered straight to the destination
// under the bypass tag, while result packets traverse the middlebox
// chain under the plain tag and are discarded after the last member —
// the Big-Tap-style monitoring fabric. The caller must also enable
// result-only mode on the instance for this tag.
func (t *TSA) InstallResultOnlyChain(spec ChainSpec, instance string) (uint16, error) {
	tag, err := t.dpictl.DefineChain(spec.Elements)
	if err != nil {
		return 0, err
	}
	srcPort, err := t.port(spec.Src)
	if err != nil {
		return 0, err
	}
	dstPort, err := t.port(spec.Dst)
	if err != nil {
		return 0, err
	}
	instPort, err := t.port(instance)
	if err != nil {
		return 0, err
	}
	ports := make([]int, len(spec.Elements))
	for i, el := range spec.Elements {
		if ports[i], err = t.port(el); err != nil {
			return 0, err
		}
	}
	cls := spec.Classify
	if cls.InPort == 0 && cls.VLANID == 0 {
		cls = openflow.NewMatch()
	}
	cls.InPort = srcPort
	t.sw.AddFlowWithCookie(uint64(tag), PrioChain, cls, openflow.PushVLAN(tag), openflow.Output(instPort))
	// Data packets return from the instance under the bypass tag.
	bypass := openflow.NewMatch()
	bypass.InPort = instPort
	bypass.VLANID = int(tag | packet.VLANResultOnlyBit)
	t.sw.AddFlowWithCookie(uint64(tag), PrioChain+1, bypass, openflow.PopVLAN(), openflow.Output(dstPort))
	// Result packets walk the chain and die after the last member.
	if len(ports) > 0 {
		first := openflow.NewMatch()
		first.InPort = instPort
		first.VLANID = int(tag)
		t.sw.AddFlowWithCookie(uint64(tag), PrioChain, first, openflow.Output(ports[0]))
		for i := 0; i < len(ports)-1; i++ {
			hm := openflow.NewMatch()
			hm.InPort = ports[i]
			hm.VLANID = int(tag)
			t.sw.AddFlowWithCookie(uint64(tag), PrioChain, hm, openflow.Output(ports[i+1]))
		}
		last := openflow.NewMatch()
		last.InPort = ports[len(ports)-1]
		last.VLANID = int(tag)
		t.sw.AddFlowWithCookie(uint64(tag), PrioChain, last, openflow.Action{Type: openflow.ActDrop})
	}
	return tag, nil
}

// InstallBalancedChain installs spec so that flows are multiplexed
// across several DPI service instances (Figure 3): the classifier punts
// each new flow to the TSA, which picks an instance round-robin and
// installs exact-match rules for the flow. It returns the chain tag.
// The TSA must already be the switch's packet-in handler (SetController).
func (t *TSA) InstallBalancedChain(spec ChainSpec, instances []string) (uint16, error) {
	if len(instances) == 0 {
		return 0, ErrNoInstances
	}
	tag, err := t.dpictl.DefineChain(spec.Elements)
	if err != nil {
		return 0, err
	}
	srcPort, err := t.port(spec.Src)
	if err != nil {
		return 0, err
	}
	// Validate all names now so packet-in never fails.
	if _, err := t.port(spec.Dst); err != nil {
		return 0, err
	}
	for _, el := range append(append([]string{}, instances...), spec.Elements...) {
		if _, err := t.port(el); err != nil {
			return 0, err
		}
	}
	cls := spec.Classify
	if cls.InPort == 0 && cls.VLANID == 0 {
		cls = openflow.NewMatch()
	}
	cls.InPort = srcPort
	t.sw.AddFlowWithCookie(uint64(tag), PrioBase, cls, openflow.Action{Type: openflow.ActController})
	t.mu.Lock()
	t.pending = append(t.pending, pendingChain{tag: tag, spec: spec, instances: instances})
	t.mu.Unlock()
	return tag, nil
}

// PacketIn implements openflow.PacketInHandler: the reactive half of
// InstallBalancedChain. The first packet of a flow triggers rule
// installation and is re-injected so it follows the new rules.
func (t *TSA) PacketIn(sw *openflow.Switch, inPort int, frame []byte) {
	var sum packet.Summary
	if packet.Summarize(frame, &sum) != nil || sum.IsReport {
		return
	}
	t.mu.Lock()
	var pc *pendingChain
	for i := range t.pending {
		srcPort, err := t.port(t.pending[i].spec.Src)
		if err == nil && srcPort == inPort {
			pc = &t.pending[i]
			break
		}
	}
	if pc == nil {
		t.mu.Unlock()
		return
	}
	tag, spec := pc.tag, pc.spec
	instance := pc.instances[t.rr%len(pc.instances)]
	t.rr++
	// Claim the flow before releasing the lock so a concurrent packet-in
	// for the same flow does not double-steer it.
	if _, claimed := t.flows[sum.Tuple]; claimed {
		t.mu.Unlock()
		sw.Recv(inPort, frame)
		return
	}
	t.flows[sum.Tuple] = steeredFlow{instance: instance, tag: tag}
	t.mu.Unlock()

	fe, err := t.steerFlow(tag, spec, sum.Tuple, instance)
	if err != nil {
		t.mu.Lock()
		delete(t.flows, sum.Tuple)
		t.mu.Unlock()
		return
	}
	t.mu.Lock()
	if sf, ok := t.flows[sum.Tuple]; ok && sf.instance == instance && sf.entry == nil {
		sf.entry = fe
		t.flows[sum.Tuple] = sf
	} else {
		// The flow was re-steered (migration/failover) while we were
		// installing; our rule is stale.
		fe.Revoke()
	}
	t.mu.Unlock()

	// Re-inject: the frame now hits the per-flow rules.
	sw.Recv(inPort, frame)
}

// steerFlow installs exact five-tuple rules sending the flow through
// instance and then the chain elements, returning the steering rule.
func (t *TSA) steerFlow(tag uint16, spec ChainSpec, tuple packet.FiveTuple, instance string) (*openflow.FlowEntry, error) {
	srcPort, err := t.port(spec.Src)
	if err != nil {
		return nil, err
	}
	m := openflow.NewMatch()
	m.InPort = srcPort
	src, dst := tuple.Src, tuple.Dst
	m.SrcIP, m.DstIP = &src, &dst
	m.L4Src, m.L4Dst = tuple.SrcPort, tuple.DstPort
	m.IPProto = tuple.Protocol
	instPort, err := t.port(instance)
	if err != nil {
		return nil, err
	}
	fe := t.sw.AddFlowWithCookie(uint64(tag), PrioFlow, m, openflow.PushVLAN(tag), openflow.Output(instPort))
	if t.FlowIdleTimeout > 0 {
		fe.SetIdleTimeout(t.FlowIdleTimeout)
	}
	return fe, t.installHopsOnce(tag, spec, instance)
}

// MigrateFlow re-steers one flow of a balanced chain to a different
// instance — the mechanism MCA² uses to divert heavy flows to dedicated
// instances (Section 4.3.1). The override rule is installed at
// PrioFlow+1 so it unambiguously outranks the flow's original rule.
func (t *TSA) MigrateFlow(tag uint16, spec ChainSpec, tuple packet.FiveTuple, newInstance string) error {
	srcPort, err := t.port(spec.Src)
	if err != nil {
		return err
	}
	instPort, err := t.port(newInstance)
	if err != nil {
		return err
	}
	m := openflow.NewMatch()
	m.InPort = srcPort
	src, dst := tuple.Src, tuple.Dst
	m.SrcIP, m.DstIP = &src, &dst
	m.L4Src, m.L4Dst = tuple.SrcPort, tuple.DstPort
	m.IPProto = tuple.Protocol
	fe := t.sw.AddFlowWithCookie(uint64(tag), PrioFlow+1, m, openflow.PushVLAN(tag), openflow.Output(instPort))
	if t.FlowIdleTimeout > 0 {
		fe.SetIdleTimeout(t.FlowIdleTimeout)
	}
	// Ensure downstream hops exist for the new instance.
	if err := t.installHopsOnce(tag, spec, newInstance); err != nil {
		fe.Revoke()
		return err
	}
	t.mu.Lock()
	if old, ok := t.flows[tuple]; ok && old.entry != nil {
		// The override outranks the old rule by priority, but revoking it
		// keeps repeated re-steers (migrate, then failover) from piling
		// up equal-priority overrides where the oldest would win ties.
		old.entry.Revoke()
	}
	t.flows[tuple] = steeredFlow{instance: newInstance, tag: tag, entry: fe}
	t.mu.Unlock()
	return nil
}

// FailoverInstance re-steers every reactive flow currently pinned to the
// dead instance onto the replacement the controller chose for its chain
// tag (controller.Failover.Reassigned), and removes the dead instance
// from all balanced chains' round-robin sets so new flows avoid it. A
// flow whose tag has no surviving replacement has its rule revoked and
// its packets fall back to packet-in (re-steered if capacity returns).
// It returns how many flows were re-steered.
//
// Packets already in flight toward the dead instance, and flow scan
// state held by it, are lost: re-steered flows restart scanning at the
// replacement mid-stream (the paper accepts this — per-flow DPI state is
// a DFA state and an offset, Section 4.3).
func (t *TSA) FailoverInstance(dead string, replacements map[uint16]string) (int, error) {
	type job struct {
		tuple packet.FiveTuple
		sf    steeredFlow
	}
	t.mu.Lock()
	for i := range t.pending {
		pc := &t.pending[i]
		survivors := make([]string, 0, len(pc.instances))
		for _, in := range pc.instances {
			if in != dead {
				survivors = append(survivors, in)
			}
		}
		pc.instances = survivors
	}
	var jobs []job
	for tuple, sf := range t.flows {
		if sf.instance == dead {
			jobs = append(jobs, job{tuple: tuple, sf: sf})
		}
	}
	t.mu.Unlock()

	moved := 0
	var firstErr error
	for _, j := range jobs {
		repl, haveRepl := replacements[j.sf.tag]
		spec, haveSpec := t.chainSpec(j.sf.tag)
		if !haveRepl || !haveSpec {
			if j.sf.entry != nil {
				j.sf.entry.Revoke()
			}
			t.mu.Lock()
			if cur, ok := t.flows[j.tuple]; ok && cur.instance == dead {
				delete(t.flows, j.tuple)
			}
			t.mu.Unlock()
			continue
		}
		if err := t.MigrateFlow(j.sf.tag, spec, j.tuple, repl); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		moved++
	}
	return moved, firstErr
}

// chainSpec finds the balanced chain's spec by tag.
func (t *TSA) chainSpec(tag uint16) (ChainSpec, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, pc := range t.pending {
		if pc.tag == tag {
			return pc.spec, true
		}
	}
	return ChainSpec{}, false
}

// installHopsOnce lays the in-port forwarding rules for one
// (tag, instance) pair exactly once.
func (t *TSA) installHopsOnce(tag uint16, spec ChainSpec, instance string) error {
	key := fmt.Sprintf("%d/%s", tag, instance)
	t.mu.Lock()
	if t.installedHops == nil {
		t.installedHops = make(map[string]bool)
	}
	done := t.installedHops[key]
	t.installedHops[key] = true
	t.mu.Unlock()
	if done {
		return nil
	}
	path := append([]string{instance}, spec.Elements...)
	ports := make([]int, len(path))
	var err error
	for i, el := range path {
		if ports[i], err = t.port(el); err != nil {
			return err
		}
	}
	for i := 0; i < len(ports)-1; i++ {
		hm := openflow.NewMatch()
		hm.InPort = ports[i]
		hm.VLANID = int(tag)
		t.sw.AddFlowWithCookie(uint64(tag), PrioChain, hm, openflow.Output(ports[i+1]))
	}
	dstPort, err := t.port(spec.Dst)
	if err != nil {
		return err
	}
	last := openflow.NewMatch()
	last.InPort = ports[len(ports)-1]
	last.VLANID = int(tag)
	t.sw.AddFlowWithCookie(uint64(tag), PrioChain, last, openflow.PopVLAN(), openflow.Output(dstPort))
	return nil
}

// UninstallChain removes every rule belonging to a chain tag —
// classifiers, hop rules, reactive per-flow rules and migration
// overrides — and forgets the chain's reactive state. It returns the
// number of rules removed. The DPI controller still knows the chain;
// re-installation reuses the tag.
func (t *TSA) UninstallChain(tag uint16) int {
	removed := t.sw.DeleteFlows(uint64(tag))
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.pending[:0]
	for _, pc := range t.pending {
		if pc.tag != tag {
			kept = append(kept, pc)
		}
	}
	t.pending = kept
	for key := range t.installedHops {
		if strings.HasPrefix(key, fmt.Sprintf("%d/", tag)) {
			delete(t.installedHops, key)
		}
	}
	return removed
}

// InstanceOf reports which instance a reactive flow is steered through.
func (t *TSA) InstanceOf(tuple packet.FiveTuple) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sf, ok := t.flows[tuple]
	return sf.instance, ok
}
